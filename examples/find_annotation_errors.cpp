//===- examples/find_annotation_errors.cpp - Sec. 7's wrong-annotation hunt ----===//
//
// Reproduces the paper's qualitative result (Sec. 7): Typilus found
// human-written annotations that were *wrong* — e.g. tensor-dimension
// parameters annotated `float` in PyTorch/fairseq that it predicted `int`
// with 99.8% confidence (the accepted pull request). We plant analogous
// errors in held-out files and let core/Evaluator's audit helper —
// the same criterion the LSP publishes as Warning diagnostics — report
// where the model confidently disagrees.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include <cstdio>
#include <unordered_set>

using namespace typilus;

int main() {
  CorpusConfig CC;
  CC.NumFiles = 80;
  DatasetConfig DC;
  Workbench WB = Workbench::make(CC, DC);
  ModelConfig MC; // Typilus
  TrainOptions TO;
  TO.Epochs = 12;
  std::printf("training Typilus on %zu files...\n", WB.DS.Train.size());
  ModelRun Run = trainAndEvaluate(WB, MC, TO);

  // Plant fairseq-style annotation errors: in the *recorded annotation*
  // of every 7th int-typed test symbol, pretend the human wrote `float`
  // (dimension parameters annotated as float — exactly the fairseq bug).
  TypeRef IntTy = WB.U->parse("int");
  TypeRef FloatTy = WB.U->parse("float");
  std::vector<PredictionResult> Audited = Run.Preds;
  std::unordered_set<const PredictionResult *> PlantedSet;
  size_t Planted = 0, Checked = 0;
  int Stride = 0;
  for (PredictionResult &P : Audited) {
    if (!P.top())
      continue;
    ++Checked;
    if (P.Truth == IntTy && ++Stride % 7 == 0) {
      P.Truth = FloatTy; // the wrong human annotation
      PlantedSet.insert(&P);
      ++Planted;
    }
  }

  // Typilus flags a suspect annotation when it confidently predicts a
  // different type.
  std::vector<Disagreement> Suspects = findConfidentDisagreements(Audited, 0.8);
  size_t Flagged = 0, FalseAlarms = 0;
  std::printf("\nconfident disagreements with (planted) human annotations:\n");
  for (const Disagreement &D : Suspects) {
    if (PlantedSet.count(D.Pred)) {
      ++Flagged;
      if (Flagged <= 8)
        std::printf("  %-22s annotated %-8s but Typilus predicts %-8s "
                    "(confidence %.2f)  <- planted fairseq-style bug\n",
                    D.Pred->SymbolName.c_str(), D.Annotated->str().c_str(),
                    D.Predicted->str().c_str(), D.Confidence);
    } else {
      ++FalseAlarms;
    }
  }
  std::printf("\nplanted wrong annotations: %zu; flagged by Typilus: %zu "
              "(%.0f%%); false alarms on correct annotations: %zu/%zu "
              "(%.1f%%)\n",
              Planted, Flagged,
              Planted ? 100.0 * static_cast<double>(Flagged) /
                            static_cast<double>(Planted)
                      : 0.0,
              FalseAlarms, Checked - Planted,
              Checked > Planted
                  ? 100.0 * static_cast<double>(FalseAlarms) /
                        static_cast<double>(Checked - Planted)
                  : 0.0);
  std::printf("(paper: the fairseq and allennlp pull requests fixing such "
              "errors were both merged)\n");
  return 0;
}
