//===- examples/typespace_neighbors.cpp - Exploring the TypeSpace --------------===//
//
// Visualises what deep similarity learning (Eq. 3) builds: for a handful
// of query symbols, list the nearest type markers in the TypeSpace. Well-
// trained spaces show tight same-type neighbourhoods; the paper's Fig. 1
// sketches exactly this structure.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include <cstdio>

using namespace typilus;

int main() {
  CorpusConfig CC;
  CC.NumFiles = 60;
  DatasetConfig DC;
  Workbench WB = Workbench::make(CC, DC);
  ModelConfig MC; // Typilus
  TrainOptions TO;
  TO.Epochs = 10;
  std::printf("training Typilus on %zu files...\n", WB.DS.Train.size());
  auto Model = makeModel(MC, WB.DS, *WB.U);
  trainModel(*Model, WB.DS.Train, TO);

  // τmap over the training files.
  TypeMap Map(MC.HiddenDim);
  std::vector<std::string> MarkerNames;
  for (const FileExample &F : WB.DS.Train) {
    std::vector<const Target *> Targets;
    nn::Value Emb = Model->embed({&F}, &Targets);
    if (!Emb.defined())
      continue;
    for (size_t I = 0; I != Targets.size(); ++I) {
      Map.add(Emb.val().data() + static_cast<int64_t>(I) * Emb.val().cols(),
              Targets[I]->Type);
      MarkerNames.push_back(Targets[I]->Name);
    }
  }
  ExactIndex Index(Map);
  std::printf("TypeSpace contains %zu markers (%d dimensions, L1 metric)\n\n",
              Map.size(), Map.dim());

  // Show the neighbourhoods of the first few test symbols.
  int Shown = 0;
  for (const FileExample &F : WB.DS.Test) {
    std::vector<const Target *> Targets;
    nn::Value Emb = Model->embed({&F}, &Targets);
    if (!Emb.defined())
      continue;
    for (size_t I = 0; I != Targets.size() && Shown < 6; ++I, ++Shown) {
      const float *Q =
          Emb.val().data() + static_cast<int64_t>(I) * Emb.val().cols();
      std::printf("query '%s' (truth %s): nearest markers\n",
                  Targets[I]->Name.c_str(), Targets[I]->Type->str().c_str());
      for (auto [Idx, Dist] : Index.query(Q, 5))
        std::printf("    d=%6.2f  %-20s (marker symbol '%s')\n", Dist,
                    Map.type(static_cast<size_t>(Idx))->str().c_str(),
                    MarkerNames[static_cast<size_t>(Idx)].c_str());
    }
    if (Shown >= 6)
      break;
  }
  return 0;
}
