//===- examples/typespace_neighbors.cpp - Exploring the TypeSpace --------------===//
//
// Visualises what deep similarity learning (Eq. 3) builds: for a handful
// of query symbols, list the nearest type markers in the TypeSpace. Well-
// trained spaces show tight same-type neighbourhoods; the paper's Fig. 1
// sketches exactly this structure.
//
// The τmap is built through Predictor::knn — the same tagged fill the
// serving and editor paths use — so every marker knows which file owns
// it (TypeMap::fileTag), and retiring a file's markers
// (Predictor::removeMarkersForFile, the LSP's didClose) visibly drops
// them out of the neighbourhoods.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include <cstdio>

using namespace typilus;

int main() {
  CorpusConfig CC;
  CC.NumFiles = 60;
  DatasetConfig DC;
  Workbench WB = Workbench::make(CC, DC);
  ModelConfig MC; // Typilus
  TrainOptions TO;
  TO.Epochs = 10;
  std::printf("training Typilus on %zu files...\n", WB.DS.Train.size());
  auto Model = makeModel(MC, WB.DS, *WB.U);
  trainModel(*Model, WB.DS.Train, TO);

  // τmap over the training files — one call; markers arrive tagged with
  // their file of origin.
  std::vector<const FileExample *> MapFiles;
  for (const FileExample &F : WB.DS.Train)
    MapFiles.push_back(&F);
  KnnOptions KO;
  KO.Index = KnnIndexKind::Exact; // exact neighbourhoods for the printout
  Predictor P = Predictor::knn(*Model, MapFiles, KO);
  const TypeMap &Map = P.typeMap();
  ExactIndex Index(Map);
  std::printf("TypeSpace contains %zu markers (%d dimensions, L1 metric)\n\n",
              Map.size(), Map.dim());

  // Show the neighbourhoods of the first few test symbols.
  int Shown = 0;
  std::string_view CrowdedFile;
  for (const FileExample &F : WB.DS.Test) {
    std::vector<const Target *> Targets;
    nn::Value Emb = Model->embed({&F}, &Targets);
    if (!Emb.defined())
      continue;
    for (size_t I = 0; I != Targets.size() && Shown < 6; ++I, ++Shown) {
      const float *Q =
          Emb.val().data() + static_cast<int64_t>(I) * Emb.val().cols();
      std::printf("query '%s' (truth %s): nearest markers\n",
                  Targets[I]->Name.c_str(), Targets[I]->Type->str().c_str());
      for (auto [Idx, Dist] : Index.query(Q, 5)) {
        std::string_view Tag = Map.fileTag(static_cast<size_t>(Idx));
        std::printf("    d=%6.2f  %-20s (from %s)\n", Dist,
                    Map.type(static_cast<size_t>(Idx))->str().c_str(),
                    std::string(Tag).c_str());
        if (CrowdedFile.empty())
          CrowdedFile = Tag;
      }
    }
    if (Shown >= 6)
      break;
  }

  // The editor loop's mutation API, watched from outside: retire one
  // file's markers (tombstones — no index rebuild) and its rows vanish
  // from every neighbourhood.
  if (!CrowdedFile.empty()) {
    std::string Victim(CrowdedFile);
    size_t Before = Map.liveSize();
    size_t Removed = P.removeMarkersForFile(Victim);
    std::printf("\nremoveMarkersForFile(\"%s\"): retired %zu of %zu live "
                "markers (tombstone ratio now %.3f)\n",
                Victim.c_str(), Removed, Before, Map.tombstoneRatio());
  }
  return 0;
}
