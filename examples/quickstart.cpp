//===- examples/quickstart.cpp - Public-API tour -------------------------------===//
//
// The five-minute tour of the library: parse Python, build a Typilus
// graph, train a small model, predict types by kNN over the TypeSpace, and
// adapt the τmap to a *brand-new* type without retraining (the paper's
// open-vocabulary headline, Sec. 4.2).
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "pyfront/Parser.h"
#include "pyfront/SymbolTable.h"

#include <cstdio>

using namespace typilus;

int main() {
  // -- 1. Parse a snippet and inspect its Typilus graph (Fig. 3). --------
  const char *Snippet = "foo = get_foo(i, i + 1)\n";
  ParsedFile PF = parseFile("snippet.py", Snippet);
  SymbolTable ST;
  buildSymbolTable(PF, ST);
  TypilusGraph G = buildGraph(PF, ST);
  std::printf("snippet: %s", Snippet);
  std::printf("graph: %zu nodes, %zu edges\n", G.numNodes(), G.numEdges());
  auto Counts = G.edgeCounts();
  for (size_t I = 0; I != NumEdgeLabels; ++I)
    std::printf("  %-17s %zu\n", edgeLabelName(static_cast<EdgeLabel>(I)),
                Counts[I]);

  // -- 2. Train a small Typilus model on a synthetic corpus. -------------
  std::printf("\ntraining a small Typilus model...\n");
  CorpusConfig CC;
  CC.NumFiles = 60;
  DatasetConfig DC;
  Workbench WB = Workbench::make(CC, DC);
  ModelConfig MC; // Graph encoder + Eq. 4 loss = Typilus
  TrainOptions TO;
  TO.Epochs = 10;
  ModelRun Run = trainAndEvaluate(WB, MC, TO);
  std::printf("test exact match: %.1f%% (common %.1f%% / rare %.1f%%), "
              "type neutral %.1f%%\n",
              Run.Summary.ExactAll, Run.Summary.ExactCommon,
              Run.Summary.ExactRare, Run.Summary.Neutral);

  // -- 3. Look at a few concrete predictions. ----------------------------
  std::printf("\nsample predictions on unannotated test code:\n");
  int Shown = 0;
  for (const PredictionResult &P : Run.Preds) {
    if (Shown++ == 8)
      break;
    std::printf("  %-24s truth %-18s -> predicted %-18s (p=%.2f)\n",
                P.SymbolName.c_str(), P.Truth->str().c_str(),
                P.top() ? P.top()->str().c_str() : "?", P.confidence());
  }

  // -- 4. Open vocabulary: teach the τmap a never-seen type. -------------
  // Embed a fresh file that uses a type the model was never trained on,
  // add ONE marker for it, and predict it for a similar symbol.
  std::printf("\nopen-vocabulary adaptation (no retraining):\n");
  const char *NewCode = "def send_ping(radar_link: RadarLink) -> bool:\n"
                        "    status = radar_link.get_enabled()\n"
                        "    return status\n"
                        "def recv_pong(radar_link: RadarLink) -> bool:\n"
                        "    return radar_link.get_enabled()\n";
  CorpusFile NewFile{"new.py", NewCode};
  FileExample Ex = buildExample(NewFile, *WB.U, GraphBuildOptions{});
  std::vector<const FileExample *> MapFiles;
  for (const FileExample &F : WB.DS.Train)
    MapFiles.push_back(&F);
  // A large distance temperature p sharpens Eq. 5 towards the closest
  // marker — Fig. 6 shows this is the best-performing region.
  KnnOptions KO;
  KO.P = 4.0;
  Predictor P = Predictor::knn(*Run.Model, MapFiles, KO);

  TypeRef RadarLink = WB.U->parse("RadarLink");
  std::printf("  markers for RadarLink before: 0 (type never seen)\n");
  // Embed the first parameter and register it as a marker for RadarLink.
  std::vector<const Target *> Targets;
  nn::Value Emb = Run.Model->embed({&Ex}, &Targets);
  size_t ParamRow = 0;
  for (size_t I = 0; I != Targets.size(); ++I)
    if (Targets[I]->Kind == SymbolKind::Parameter)
      ParamRow = I;
  P.addMarker(Emb.val().data() +
                  static_cast<int64_t>(ParamRow) * Emb.val().cols(),
              RadarLink);
  // The *other* radar_link parameter should now resolve to RadarLink.
  auto Preds = P.predictFile(Ex);
  for (const PredictionResult &Pr : Preds)
    if (Pr.Kind == SymbolKind::Parameter &&
        Pr.NodeIdx != Targets[ParamRow]->NodeIdx)
      std::printf("  other 'radar_link' param now predicts: %s (p=%.2f)\n",
                  Pr.top() ? Pr.top()->str().c_str() : "?", Pr.confidence());
  return 0;
}
