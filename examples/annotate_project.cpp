//===- examples/annotate_project.cpp - End-to-end annotation workflow ----------===//
//
// The deployment scenario the paper motivates (Sec. 1): a developer wants
// to migrate an unannotated codebase to an annotated one. We train a
// Typilus model, point it at an "unannotated project" (the held-out test
// files), and emit suggested annotations — keeping only confident
// predictions that the optional type checker accepts (Fig. 1, right).
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "pyfront/Parser.h"

#include <cstdio>
#include <map>

using namespace typilus;

int main() {
  CorpusConfig CC;
  CC.NumFiles = 80;
  DatasetConfig DC;
  Workbench WB = Workbench::make(CC, DC);
  ModelConfig MC; // Typilus
  TrainOptions TO;
  TO.Epochs = 12;
  std::printf("training Typilus on %zu files...\n", WB.DS.Train.size());
  ModelRun Run = trainAndEvaluate(WB, MC, TO);

  const double ConfidenceThreshold = 0.5;
  // Checker-verified suggestions: substitute each confident prediction
  // into the (annotation-stripped) program and keep it only if no type
  // error appears — the paper's false-positive filter.
  auto Outcomes = runCheckerExperiment(WB, Run.Preds, /*InferLocals=*/false,
                                       /*StripProb=*/1.0, /*Seed=*/42);

  size_t Suggested = 0, Verified = 0, Correct = 0;
  std::printf("\nsuggested annotations (confidence >= %.2f, checker-verified):\n",
              ConfidenceThreshold);
  for (const CheckOutcome &O : Outcomes) {
    const PredictionResult &P = *O.Pred;
    if (P.confidence() < ConfidenceThreshold || !P.top())
      continue;
    ++Suggested;
    if (O.CausesError)
      continue; // filtered by the type checker
    ++Verified;
    bool IsCorrect = P.top() == P.Truth;
    Correct += IsCorrect;
    if (Verified <= 12)
      std::printf("  %-18s %-22s : %-20s  %s (truth: %s)\n",
                  P.FilePath.c_str(), P.SymbolName.c_str(),
                  P.top()->str().c_str(), IsCorrect ? "==" : "!=",
                  P.Truth->str().c_str());
  }
  std::printf("\n%zu confident suggestions; %zu pass the type checker; "
              "%.1f%% of the verified ones are exactly right\n",
              Suggested, Verified,
              Verified ? 100.0 * static_cast<double>(Correct) /
                             static_cast<double>(Verified)
                       : 0.0);
  std::printf("(the paper reports ~95%% type-neutral precision at the "
              "confidence level covering 70%% of symbols)\n");
  return 0;
}
