//===- models/Model.h - The Typilus model family -------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The nine model variants of Table 2 behind one class: an encoder
/// (GGNN / DeepTyper-style biGRU / code2seq-style paths / names-only for
/// the Table 4 ablation) producing type embeddings r_s, and a training
/// loss (classification Eq. 1, deep-similarity space loss Eq. 3, or the
/// combined Typilus loss Eq. 4).
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_MODELS_MODEL_H
#define TYPILUS_MODELS_MODEL_H

#include "models/Example.h"
#include "models/Vocab.h"
#include "nn/Layers.h"
#include "nn/Optim.h"
#include "support/Archive.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace typilus {

/// Which encoder computes the type embeddings.
enum class EncoderKind {
  Graph,     ///< GGNN over the Typilus graph (Sec. 4.3).
  Seq,       ///< 2-layer biGRU with consistency modules (DeepTyper).
  Path,      ///< AST-path encoder with attention (code2seq).
  NamesOnly, ///< Symbol-name subtokens only (Table 4 "Only Names").
};

/// Which training objective shapes the TypeSpace.
enum class LossKind {
  Class,   ///< Eq. 1 — closed-vocabulary classification.
  Space,   ///< Eq. 3 — deep similarity learning.
  Typilus, ///< Eq. 4 — Space + λ·Class over parameter-erased types.
};

/// Initial node representation (Table 4 bottom block).
enum class NodeRepKind { Subtoken, WholeToken, Character };

const char *encoderKindName(EncoderKind K);
const char *lossKindName(LossKind K);

struct ModelConfig;

/// Appends every ModelConfig field to the open chunk / reads them back.
/// readModelConfig validates enum ranges and fails on anything else.
void writeModelConfig(ArchiveWriter &W, const ModelConfig &C);
bool readModelConfig(ArchiveCursor &C, ModelConfig &Out, std::string *Err);

/// Hyper-parameters. Defaults are scaled-down but structurally faithful
/// (the paper uses D=64..128 and T=8 on GPUs; we default to CPU-friendly
/// sizes and let the benches raise them).
struct ModelConfig {
  EncoderKind Encoder = EncoderKind::Graph;
  LossKind Loss = LossKind::Typilus;
  NodeRepKind NodeRep = NodeRepKind::Subtoken;
  int HiddenDim = 32;          ///< D, also the TypeSpace dimensionality.
  int TimeSteps = 4;           ///< GGNN message-passing steps (paper: 8).
  float Margin = 2.0f;         ///< m of Eq. 3.
  float Lambda = 1.0f;         ///< λ of Eq. 4 (paper: 1).
  int MaxSeqLen = 700;         ///< biGRU truncation length.
  int MaxPathsPerSymbol = 8;   ///< code2seq paths sampled per symbol.
  uint64_t Seed = 0xC0FFEEull; ///< Parameter-init / path-sampling seed.
};

/// The type vocabularies a model classifies over, built from training data.
struct TypeVocabs {
  TypeIdMap Full;   ///< Canonical types (Eq. 1 head).
  TypeIdMap Erased; ///< Er(τ) types (Eq. 4 auxiliary head).
};

/// One model variant: encoder + loss + heads. Holds all parameters.
class TypeModel {
public:
  TypeModel(const ModelConfig &C, LabelVocab Vocab, TypeVocabs TV);

  /// Embeds every target of \p Files into the TypeSpace.
  /// \returns a [T, HiddenDim] Value; \p OutTargets (if non-null) receives
  /// the targets in row order.
  nn::Value embed(const std::vector<const FileExample *> &Files,
                  std::vector<const Target *> *OutTargets);

  /// The training loss for a batch of embeddings (per the config).
  nn::Value loss(nn::Value Emb, const std::vector<const Target *> &Targets);

  /// Softmax probabilities over the full type vocabulary [T, |Full|]
  /// (the prediction path of the *2Class baselines).
  Tensor classProbs(nn::Value Emb);

  /// True when concurrent embed() calls (and the parallel per-file path
  /// inside one call) are safe: the encoder must not touch mutable model
  /// state. Path samples from PathRng, so it must stay serial.
  bool supportsParallelEmbed() const;

  /// Appends the whole model — config ("mcfg"), label vocabulary
  /// ("lvoc"), type vocabularies ("tvoc"), RNG streams ("rngs") and every
  /// parameter tensor ("parm") — as chunks of \p W. \p TypeIds is the
  /// artifact's type table (TypeUniverse::save).
  void save(ArchiveWriter &W, const std::map<TypeRef, int> &TypeIds) const;

  /// Weights-only serialization — just the "rngs" and "parm" chunks.
  /// Checkpoints use this: resume already reconstructed the model (same
  /// config and vocabularies), so only the mutable state travels.
  void saveWeights(ArchiveWriter &W) const;
  bool loadWeights(const ArchiveReader &R, std::string *Err);

  /// Reconstructs a model from chunks written by save(). \p ById is the
  /// loaded type table; its types (and therefore the model's vocabulary
  /// TypeRefs) belong to the universe that loaded it. The restored
  /// parameters, vocabularies and RNG streams are bit-identical to the
  /// saved model's, so it predicts exactly like the original.
  static std::unique_ptr<TypeModel> load(const ArchiveReader &R,
                                         const std::vector<TypeRef> &ById,
                                         std::string *Err);

  nn::ParamSet &params() { return PS; }
  const ModelConfig &config() const { return Config; }
  const TypeVocabs &typeVocabs() const { return TV; }
  const LabelVocab &labelVocab() const { return Vocab; }

private:
  nn::Value statesForLabels(const std::vector<std::string> &Labels);
  nn::Value encodeGraphBatch(const std::vector<const FileExample *> &Files,
                             std::vector<const Target *> *OutTargets);
  nn::Value encodeSeqFile(const FileExample &F,
                          std::vector<const Target *> *OutTargets);
  nn::Value encodePathFile(const FileExample &F,
                           std::vector<const Target *> *OutTargets);
  nn::Value encodeNamesFile(const FileExample &F,
                            std::vector<const Target *> *OutTargets);
  nn::Value runGruSequence(const nn::GruCell &Cell, nn::Value X,
                           bool Reverse);
  nn::Value nameFallback(const Target &T);

  ModelConfig Config;
  LabelVocab Vocab;
  TypeVocabs TV;
  nn::ParamSet PS;
  Rng ParamRng;
  Rng PathRng;

  // Shared input representation.
  nn::Embedding SubEmb;
  nn::CharCnn CharEnc;

  // GGNN.
  std::vector<nn::Value> EdgeTransforms; ///< 2*NumEdgeLabels [D,D] matrices.
  nn::GruCell GraphGru;

  // biGRU baseline.
  nn::GruCell SeqF1, SeqB1, SeqF2, SeqB2;
  nn::Linear SeqOut;

  // Path baseline.
  nn::GruCell PathGru;
  nn::Linear PathCombine;
  nn::Value AttnW, AttnV;

  // Names-only ablation + fallback for symbols without occurrences.
  nn::Linear NamesOut;

  // Heads.
  nn::Linear ClassHead;  ///< Prototype embeddings + bias of Eq. 1.
  nn::Linear ErasedProj; ///< The linear map W of Eq. 4.
  nn::Linear ErasedHead;
};

} // namespace typilus

#endif // TYPILUS_MODELS_MODEL_H
