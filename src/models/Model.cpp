//===- models/Model.cpp - The Typilus model family ----------------------------===//

#include "models/Model.h"

#include "nn/Serialize.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace typilus;
using namespace typilus::nn;

const char *typilus::encoderKindName(EncoderKind K) {
  switch (K) {
  case EncoderKind::Graph: return "Graph";
  case EncoderKind::Seq: return "Seq";
  case EncoderKind::Path: return "Path";
  case EncoderKind::NamesOnly: return "NamesOnly";
  }
  return "?";
}

const char *typilus::lossKindName(LossKind K) {
  switch (K) {
  case LossKind::Class: return "Class";
  case LossKind::Space: return "Space";
  case LossKind::Typilus: return "Typilus";
  }
  return "?";
}

TypeModel::TypeModel(const ModelConfig &C, LabelVocab VocabIn, TypeVocabs TVIn)
    : Config(C), Vocab(std::move(VocabIn)), TV(std::move(TVIn)),
      ParamRng(C.Seed), PathRng(C.Seed ^ 0x9E3779B9ull) {
  const int64_t D = Config.HiddenDim;
  if (Config.NodeRep == NodeRepKind::Character)
    CharEnc = CharCnn(16, D, PS, ParamRng);
  else
    SubEmb = Embedding(static_cast<int64_t>(Vocab.size()), D, PS, ParamRng);

  switch (Config.Encoder) {
  case EncoderKind::Graph: {
    float Scale = 1.f / std::sqrt(static_cast<float>(D));
    for (size_t K = 0; K != 2 * NumEdgeLabels; ++K)
      EdgeTransforms.push_back(
          PS.make(Tensor::randn(D, D, ParamRng, Scale)));
    GraphGru = GruCell(D, D, PS, ParamRng);
    break;
  }
  case EncoderKind::Seq: {
    assert(D % 2 == 0 && "Seq encoder needs an even hidden dim");
    int64_t H = D / 2;
    SeqF1 = GruCell(D, H, PS, ParamRng);
    SeqB1 = GruCell(D, H, PS, ParamRng);
    SeqF2 = GruCell(D, H, PS, ParamRng);
    SeqB2 = GruCell(D, H, PS, ParamRng);
    SeqOut = Linear(D, D, PS, ParamRng);
    break;
  }
  case EncoderKind::Path: {
    PathGru = GruCell(D, D, PS, ParamRng);
    PathCombine = Linear(3 * D, D, PS, ParamRng);
    float Scale = 1.f / std::sqrt(static_cast<float>(D));
    AttnW = PS.make(Tensor::randn(D, D, ParamRng, Scale));
    AttnV = PS.make(Tensor::randn(D, 1, ParamRng, Scale));
    break;
  }
  case EncoderKind::NamesOnly:
    break;
  }
  NamesOut = Linear(D, D, PS, ParamRng);

  ClassHead = Linear(D, static_cast<int64_t>(std::max<size_t>(TV.Full.size(), 1)),
                     PS, ParamRng);
  ErasedProj = Linear(D, D, PS, ParamRng);
  ErasedHead =
      Linear(D, static_cast<int64_t>(std::max<size_t>(TV.Erased.size(), 1)),
             PS, ParamRng);
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

void typilus::writeModelConfig(ArchiveWriter &W, const ModelConfig &C) {
  W.writeU32(static_cast<uint32_t>(C.Encoder));
  W.writeU32(static_cast<uint32_t>(C.Loss));
  W.writeU32(static_cast<uint32_t>(C.NodeRep));
  W.writeI32(C.HiddenDim);
  W.writeI32(C.TimeSteps);
  W.writeF32(C.Margin);
  W.writeF32(C.Lambda);
  W.writeI32(C.MaxSeqLen);
  W.writeI32(C.MaxPathsPerSymbol);
  W.writeU64(C.Seed);
}

bool typilus::readModelConfig(ArchiveCursor &C, ModelConfig &Out,
                              std::string *Err) {
  ModelConfig MC;
  uint32_t Encoder = C.readU32();
  uint32_t Loss = C.readU32();
  uint32_t NodeRep = C.readU32();
  MC.HiddenDim = C.readI32();
  MC.TimeSteps = C.readI32();
  MC.Margin = C.readF32();
  MC.Lambda = C.readF32();
  MC.MaxSeqLen = C.readI32();
  MC.MaxPathsPerSymbol = C.readI32();
  MC.Seed = C.readU64();
  // Range-check everything that later sizes an allocation: a CRC-valid
  // but crafted config must fail here with a clean error, not reach a
  // multi-gigabyte Tensor constructor. The caps are far above any real
  // configuration (paper scale is D<=128, T=8).
  if (!C.ok() || Encoder > static_cast<uint32_t>(EncoderKind::NamesOnly) ||
      Loss > static_cast<uint32_t>(LossKind::Typilus) ||
      NodeRep > static_cast<uint32_t>(NodeRepKind::Character) ||
      MC.HiddenDim <= 0 || MC.HiddenDim > (1 << 14) || MC.TimeSteps < 0 ||
      MC.TimeSteps > (1 << 10) || MC.MaxSeqLen < 0 ||
      MC.MaxSeqLen > (1 << 24) || MC.MaxPathsPerSymbol < 0 ||
      MC.MaxPathsPerSymbol > (1 << 16)) {
    if (Err && Err->empty())
      *Err = "malformed model config";
    return false;
  }
  MC.Encoder = static_cast<EncoderKind>(Encoder);
  MC.Loss = static_cast<LossKind>(Loss);
  MC.NodeRep = static_cast<NodeRepKind>(NodeRep);
  Out = MC;
  return true;
}

void TypeModel::save(ArchiveWriter &W,
                     const std::map<TypeRef, int> &TypeIds) const {
  W.beginChunk("mcfg");
  writeModelConfig(W, Config);
  W.endChunk();

  W.beginChunk("lvoc");
  Vocab.save(W);
  W.endChunk();

  W.beginChunk("tvoc");
  TV.Full.save(W, TypeIds);
  TV.Erased.save(W, TypeIds);
  W.endChunk();

  saveWeights(W);
}

void TypeModel::saveWeights(ArchiveWriter &W) const {
  // The RNG stream positions. ParamRng is spent after construction, but
  // PathRng keeps advancing with every Path-encoder embed(): restoring it
  // is what makes a loaded Path model predict bit-identically to the
  // in-process one from this point on.
  W.beginChunk("rngs");
  W.writeU64(ParamRng.state());
  W.writeU64(PathRng.state());
  W.endChunk();

  W.beginChunk("parm");
  nn::writeParams(W, PS);
  W.endChunk();
}

bool TypeModel::loadWeights(const ArchiveReader &R, std::string *Err) {
  ArchiveCursor RngC = R.chunk("rngs", Err);
  uint64_t ParamState = RngC.readU64();
  uint64_t PathState = RngC.readU64();
  if (!RngC.ok()) {
    if (Err && Err->empty())
      *Err = "malformed RNG state chunk";
    return false;
  }
  ArchiveCursor ParmC = R.chunk("parm", Err);
  if (!nn::readParams(ParmC, PS, Err))
    return false;
  ParamRng.setState(ParamState);
  PathRng.setState(PathState);
  return true;
}

std::unique_ptr<TypeModel>
TypeModel::load(const ArchiveReader &R, const std::vector<TypeRef> &ById,
                std::string *Err) {
  ArchiveCursor CfgC = R.chunk("mcfg", Err);
  ModelConfig MC;
  if (!readModelConfig(CfgC, MC, Err))
    return nullptr;

  LabelVocab LV;
  ArchiveCursor LvC = R.chunk("lvoc", Err);
  if (!LV.load(LvC, Err))
    return nullptr;

  TypeVocabs TV;
  ArchiveCursor TvC = R.chunk("tvoc", Err);
  if (!TV.Full.load(TvC, ById, Err) || !TV.Erased.load(TvC, ById, Err))
    return nullptr;

  // Construction registers every parameter (in deterministic order) with
  // fresh random values; the parm chunk then overwrites them in place.
  auto Model = std::make_unique<TypeModel>(MC, std::move(LV), std::move(TV));
  if (!Model->loadWeights(R, Err))
    return nullptr;
  return Model;
}

//===----------------------------------------------------------------------===//
// Initial representations (Eq. 7 and the Table 4 variants)
//===----------------------------------------------------------------------===//

Value TypeModel::statesForLabels(const std::vector<std::string> &Labels) {
  const int64_t N = static_cast<int64_t>(Labels.size());
  assert(N > 0 && "no labels to embed");
  if (Config.NodeRep == NodeRepKind::Character) {
    // Encode all distinct labels in one batched kernel call, then gather
    // per node (a minibatch-wide graph hits this with thousands of nodes).
    std::map<std::string, int> UniqueRow;
    std::vector<std::string> Unique;
    std::vector<int> RowOf(Labels.size());
    for (size_t I = 0; I != Labels.size(); ++I) {
      auto [It, Inserted] =
          UniqueRow.emplace(Labels[I], static_cast<int>(Unique.size()));
      if (Inserted)
        Unique.push_back(Labels[I]);
      RowOf[I] = It->second;
    }
    return gatherRows(CharEnc.encodeBatch(Unique), RowOf);
  }
  // Subtoken / whole-token: mean of the (learned) id embeddings, Eq. 7.
  std::vector<int> FlatIds, Owner;
  for (size_t I = 0; I != Labels.size(); ++I)
    for (int Id : Vocab.idsOf(Labels[I])) {
      FlatIds.push_back(Id);
      Owner.push_back(static_cast<int>(I));
    }
  return scatterMean(SubEmb.rows(std::move(FlatIds)), std::move(Owner), N);
}

//===----------------------------------------------------------------------===//
// GGNN encoder (Sec. 4.3)
//===----------------------------------------------------------------------===//

Value TypeModel::encodeGraphBatch(const std::vector<const FileExample *> &Files,
                                  std::vector<const Target *> *OutTargets) {
  // Merge the file graphs into one disjoint batch graph.
  std::vector<std::string> Labels;
  std::array<std::vector<std::pair<int, int>>, NumEdgeLabels> Edges;
  std::vector<int> SupIdx;
  for (const FileExample *F : Files) {
    int Offset = static_cast<int>(Labels.size());
    for (const GraphNode &Nd : F->Graph.Nodes)
      Labels.push_back(Nd.Label);
    for (const GraphEdge &E : F->Graph.Edges)
      Edges[static_cast<size_t>(E.Label)].emplace_back(E.Src + Offset,
                                                       E.Dst + Offset);
    for (const Target &T : F->Targets) {
      SupIdx.push_back(T.NodeIdx + Offset);
      if (OutTargets)
        OutTargets->push_back(&T);
    }
  }
  const int64_t N = static_cast<int64_t>(Labels.size());
  Value H = statesForLabels(Labels);

  // Build the per-edge-label index lists once; every timestep reuses them
  // instead of re-scanning the edge set. Forward direction gathers sources
  // and delivers to destinations (transform E_k); backward gathers
  // destinations and delivers to sources (transform E_{k+L}).
  std::vector<std::vector<int>> FwdSrcs(NumEdgeLabels), RevSrcs(NumEdgeLabels);
  std::vector<int> Dsts;
  for (size_t K = 0; K != NumEdgeLabels; ++K) {
    const auto &EK = Edges[K];
    if (EK.empty())
      continue;
    FwdSrcs[K].reserve(EK.size());
    RevSrcs[K].reserve(EK.size());
    for (auto [S, T] : EK) {
      FwdSrcs[K].push_back(S);
      Dsts.push_back(T);
    }
    for (auto [S, T] : EK) {
      RevSrcs[K].push_back(T);
      Dsts.push_back(S);
    }
  }

  for (int Step = 0; Step != Config.TimeSteps && !Dsts.empty(); ++Step) {
    std::vector<Value> Msgs;
    for (size_t K = 0; K != NumEdgeLabels; ++K) {
      if (FwdSrcs[K].empty())
        continue;
      Msgs.push_back(matmul(gatherRows(H, FwdSrcs[K]), EdgeTransforms[K]));
      Msgs.push_back(matmul(gatherRows(H, RevSrcs[K]),
                            EdgeTransforms[NumEdgeLabels + K]));
    }
    // Max-pooling aggregation (the paper's meet-like operator).
    Value A = scatterMax(concatRows(Msgs), Dsts, N);
    H = GraphGru.step(A, H);
  }
  return gatherRows(H, SupIdx);
}

//===----------------------------------------------------------------------===//
// biGRU encoder with consistency modules (DeepTyper baseline)
//===----------------------------------------------------------------------===//

Value TypeModel::runGruSequence(const GruCell &Cell, Value X, bool Reverse) {
  const int L = static_cast<int>(X.val().rows());
  Value State = Value::constant(Tensor(static_cast<int64_t>(1),
                                       Cell.hiddenDim()));
  std::vector<Value> Rows(static_cast<size_t>(L));
  for (int S = 0; S != L; ++S) {
    int I = Reverse ? L - 1 - S : S;
    State = Cell.step(gatherRows(X, {I}), State);
    Rows[static_cast<size_t>(I)] = State;
  }
  return concatRows(Rows);
}

Value TypeModel::nameFallback(const Target &T) {
  return tanhOp(NamesOut.apply(statesForLabels({T.Name})));
}

Value TypeModel::encodeSeqFile(const FileExample &F,
                               std::vector<const Target *> *OutTargets) {
  const TypilusGraph &G = F.Graph;
  // Token nodes, in original token order (they are created first and in
  // order by the builder).
  std::vector<int> TokNodes;
  std::vector<std::string> TokLabels;
  for (size_t I = 0; I != G.Nodes.size(); ++I) {
    if (G.Nodes[I].Category != NodeCategory::Token)
      continue;
    if (static_cast<int>(TokNodes.size()) >= Config.MaxSeqLen)
      break;
    TokNodes.push_back(static_cast<int>(I));
    TokLabels.push_back(G.Nodes[I].Label);
  }
  // Occurrence lists: token position -> dense symbol id.
  std::map<int, int> NodeToPos;
  for (size_t P = 0; P != TokNodes.size(); ++P)
    NodeToPos[TokNodes[P]] = static_cast<int>(P);
  std::map<int, int> SymDense; // symbol node idx -> dense id
  std::vector<int> OccPos, OccSym;
  for (const GraphEdge &E : G.Edges) {
    if (E.Label != EdgeLabel::OccurrenceOf)
      continue;
    auto It = NodeToPos.find(E.Src);
    if (It == NodeToPos.end())
      continue;
    auto [SIt, Ins] = SymDense.emplace(E.Dst, static_cast<int>(SymDense.size()));
    OccPos.push_back(It->second);
    OccSym.push_back(SIt->second);
    (void)Ins;
  }

  std::vector<Value> TargetRows;
  if (!TokLabels.empty() && !OccPos.empty()) {
    Value X = statesForLabels(TokLabels);
    Value H1 = concatCols(runGruSequence(SeqF1, X, false),
                          runGruSequence(SeqB1, X, true));
    // Consistency module: add each symbol's mean representation back to
    // every bound position.
    int64_t S = static_cast<int64_t>(SymDense.size());
    Value Mu = scatterMean(gatherRows(H1, OccPos), OccSym, S);
    Value H1C = indexAddRows(H1, OccPos, gatherRows(Mu, OccSym));
    Value H2 = concatCols(runGruSequence(SeqF2, H1C, false),
                          runGruSequence(SeqB2, H1C, true));
    // Output consistency: one representation per symbol.
    Value SymRep = scatterMean(gatherRows(H2, OccPos), OccSym, S);
    Value Out = tanhOp(SeqOut.apply(SymRep));
    for (const Target &T : F.Targets) {
      if (OutTargets)
        OutTargets->push_back(&T);
      auto It = SymDense.find(T.NodeIdx);
      if (It != SymDense.end())
        TargetRows.push_back(gatherRows(Out, {It->second}));
      else
        TargetRows.push_back(nameFallback(T)); // truncated away
    }
  } else {
    for (const Target &T : F.Targets) {
      if (OutTargets)
        OutTargets->push_back(&T);
      TargetRows.push_back(nameFallback(T));
    }
  }
  if (TargetRows.empty())
    return Value();
  return concatRows(TargetRows);
}

//===----------------------------------------------------------------------===//
// Path encoder (code2seq baseline)
//===----------------------------------------------------------------------===//

Value TypeModel::encodePathFile(const FileExample &F,
                                std::vector<const Target *> *OutTargets) {
  const TypilusGraph &G = F.Graph;
  const int N = static_cast<int>(G.Nodes.size());
  // Tree structure from CHILD edges (first parent wins).
  std::vector<int> Parent(static_cast<size_t>(N), -1);
  for (const GraphEdge &E : G.Edges)
    if (E.Label == EdgeLabel::Child && Parent[static_cast<size_t>(E.Dst)] < 0)
      Parent[static_cast<size_t>(E.Dst)] = E.Src;
  // Candidate far endpoints: identifier-ish token leaves in the tree.
  std::vector<int> Leaves;
  for (int I = 0; I != N; ++I)
    if (G.Nodes[static_cast<size_t>(I)].Category == NodeCategory::Token &&
        Parent[static_cast<size_t>(I)] >= 0)
      Leaves.push_back(I);
  // Occurrences per symbol node.
  std::map<int, std::vector<int>> OccOf;
  for (const GraphEdge &E : G.Edges)
    if (E.Label == EdgeLabel::OccurrenceOf &&
        G.Nodes[static_cast<size_t>(E.Src)].Category == NodeCategory::Token)
      OccOf[E.Dst].push_back(E.Src);

  auto AncestorChain = [&](int Node) {
    std::vector<int> Chain;
    for (int Cur = Node; Cur >= 0; Cur = Parent[static_cast<size_t>(Cur)])
      Chain.push_back(Cur);
    return Chain;
  };

  std::vector<Value> TargetRows;
  for (const Target &T : F.Targets) {
    if (OutTargets)
      OutTargets->push_back(&T);
    auto OccIt = OccOf.find(T.NodeIdx);
    if (OccIt == OccOf.end() || OccIt->second.empty() || Leaves.size() < 2) {
      TargetRows.push_back(nameFallback(T));
      continue;
    }
    Rng R = PathRng.fork(static_cast<uint64_t>(T.NodeIdx) * 7919u +
                         static_cast<uint64_t>(F.Targets.size()));
    std::vector<Value> PathVecs;
    for (int P = 0; P != Config.MaxPathsPerSymbol; ++P) {
      int A = OccIt->second[static_cast<size_t>(P) % OccIt->second.size()];
      int B = Leaves[R.uniformInt(Leaves.size())];
      if (B == A)
        continue;
      // Interior path A -> LCA -> B.
      std::vector<int> ChainA = AncestorChain(A), ChainB = AncestorChain(B);
      std::map<int, size_t> PosInB;
      for (size_t I = 0; I != ChainB.size(); ++I)
        PosInB[ChainB[I]] = I;
      size_t AIdx = 0;
      while (AIdx < ChainA.size() && !PosInB.count(ChainA[AIdx]))
        ++AIdx;
      if (AIdx == ChainA.size())
        continue; // different trees (should not happen)
      std::vector<std::string> PathLabels;
      for (size_t I = 1; I <= AIdx; ++I)
        PathLabels.push_back(G.Nodes[static_cast<size_t>(ChainA[I])].Label);
      for (size_t I = PosInB[ChainA[AIdx]]; I-- > 1;)
        PathLabels.push_back(G.Nodes[static_cast<size_t>(ChainB[I])].Label);
      if (PathLabels.empty())
        PathLabels.push_back(G.Nodes[static_cast<size_t>(ChainA[AIdx])].Label);

      Value PathStates = statesForLabels(PathLabels);
      Value State = Value::constant(Tensor(static_cast<int64_t>(1),
                                           Config.HiddenDim));
      for (int I = 0; I != static_cast<int>(PathLabels.size()); ++I)
        State = PathGru.step(gatherRows(PathStates, {I}), State);
      Value EndA = statesForLabels({G.Nodes[static_cast<size_t>(A)].Label});
      Value EndB = statesForLabels({G.Nodes[static_cast<size_t>(B)].Label});
      PathVecs.push_back(tanhOp(PathCombine.apply(
          concatCols(concatCols(EndA, State), EndB))));
    }
    if (PathVecs.empty()) {
      TargetRows.push_back(nameFallback(T));
      continue;
    }
    Value Stacked = concatRows(PathVecs);
    Value Scores = matmul(tanhOp(matmul(Stacked, AttnW)), AttnV);
    TargetRows.push_back(attentionPool(Scores, Stacked));
  }
  if (TargetRows.empty())
    return Value();
  return concatRows(TargetRows);
}

//===----------------------------------------------------------------------===//
// Names-only ablation
//===----------------------------------------------------------------------===//

Value TypeModel::encodeNamesFile(const FileExample &F,
                                 std::vector<const Target *> *OutTargets) {
  std::vector<std::string> Names;
  for (const Target &T : F.Targets) {
    if (OutTargets)
      OutTargets->push_back(&T);
    Names.push_back(T.Name);
  }
  if (Names.empty())
    return Value();
  return tanhOp(NamesOut.apply(statesForLabels(Names)));
}

//===----------------------------------------------------------------------===//
// Shared entry points
//===----------------------------------------------------------------------===//

bool TypeModel::supportsParallelEmbed() const {
  // Graph/Seq/NamesOnly forwards only read model state, so concurrent
  // embed() calls are safe (Graph additionally batches the files of one
  // call into a single graph and relies on the kernels for parallelism).
  // Path samples from the mutable PathRng stream, so concurrent calls
  // would race and break determinism.
  return Config.Encoder != EncoderKind::Path;
}

Value TypeModel::embed(const std::vector<const FileExample *> &Files,
                       std::vector<const Target *> *OutTargets) {
  if (Config.Encoder == EncoderKind::Graph)
    return encodeGraphBatch(Files, OutTargets);
  // Per-file encoders: forward graphs of distinct files are independent
  // (parameters are only read), so thread-safe encoders embed files
  // data-parallel. Parts and targets are merged in file order, making the
  // result identical to the serial loop.
  std::vector<Value> PerFilePart(Files.size());
  std::vector<std::vector<const Target *>> PerFileTargets(Files.size());
  auto EncodeOne = [&](size_t I) {
    std::vector<const Target *> *TP = OutTargets ? &PerFileTargets[I] : nullptr;
    switch (Config.Encoder) {
    case EncoderKind::Seq:
      PerFilePart[I] = encodeSeqFile(*Files[I], TP);
      break;
    case EncoderKind::Path:
      PerFilePart[I] = encodePathFile(*Files[I], TP);
      break;
    case EncoderKind::NamesOnly:
      PerFilePart[I] = encodeNamesFile(*Files[I], TP);
      break;
    case EncoderKind::Graph:
      break;
    }
  };
  if (supportsParallelEmbed()) {
    parallelFor(0, static_cast<int64_t>(Files.size()), 1,
                [&](int64_t Lo, int64_t Hi) {
                  for (int64_t I = Lo; I != Hi; ++I)
                    EncodeOne(static_cast<size_t>(I));
                });
  } else {
    for (size_t I = 0; I != Files.size(); ++I)
      EncodeOne(I);
  }
  std::vector<Value> Parts;
  for (size_t I = 0; I != Files.size(); ++I) {
    if (PerFilePart[I].defined())
      Parts.push_back(PerFilePart[I]);
    if (OutTargets)
      OutTargets->insert(OutTargets->end(), PerFileTargets[I].begin(),
                         PerFileTargets[I].end());
  }
  if (Parts.empty())
    return Value();
  return concatRows(Parts);
}

Value TypeModel::loss(Value Emb, const std::vector<const Target *> &Targets) {
  assert(Emb.defined() &&
         Emb.val().rows() == static_cast<int64_t>(Targets.size()) &&
         "embedding/target mismatch");
  auto FullLabels = [&] {
    std::vector<int> L;
    for (const Target *T : Targets)
      L.push_back(TV.Full.lookup(T->Type));
    return L;
  };
  switch (Config.Loss) {
  case LossKind::Class:
    return softmaxCrossEntropy(ClassHead.apply(Emb), FullLabels());
  case LossKind::Space:
    return spaceLoss(pairwiseL1(Emb), FullLabels(), Config.Margin);
  case LossKind::Typilus: {
    Value LSpace = spaceLoss(pairwiseL1(Emb), FullLabels(), Config.Margin);
    std::vector<int> Erased;
    for (const Target *T : Targets)
      Erased.push_back(TV.Erased.lookup(T->ErasedType));
    Value LClass =
        softmaxCrossEntropy(ErasedHead.apply(ErasedProj.apply(Emb)), Erased);
    return add(LSpace, scale(LClass, Config.Lambda));
  }
  }
  return Value();
}

Tensor TypeModel::classProbs(Value Emb) {
  return softmaxRows(ClassHead.apply(Emb).val());
}
