//===- models/Vocab.cpp - Subtoken and type vocabularies ---------------------===//

#include "models/Vocab.h"

#include "support/Str.h"

using namespace typilus;

std::vector<std::string> LabelVocab::keysOf(const std::string &Label,
                                            Mode M) {
  if (M == Mode::WholeLabel)
    return {Label};
  std::vector<std::string> Subs = splitSubtokens(Label);
  if (Subs.empty())
    Subs.push_back(Label); // punctuation lexemes keep their spelling
  return Subs;
}

LabelVocab LabelVocab::build(const std::vector<const TypilusGraph *> &Graphs,
                             Mode M, int MinCount) {
  std::map<std::string, int> Counts;
  for (const TypilusGraph *G : Graphs)
    for (const GraphNode &N : G->Nodes)
      for (const std::string &K : keysOf(N.Label, M))
        ++Counts[K];
  LabelVocab V;
  V.M = M;
  for (const auto &[Key, Count] : Counts) {
    if (Count < MinCount)
      continue;
    V.Ids.emplace(Key, static_cast<int>(V.NextId));
    ++V.NextId;
  }
  return V;
}

std::vector<int> LabelVocab::idsOf(const std::string &Label) const {
  std::vector<int> Result;
  for (const std::string &K : keysOf(Label, M)) {
    auto It = Ids.find(K);
    Result.push_back(It == Ids.end() ? 0 : It->second);
  }
  return Result;
}
