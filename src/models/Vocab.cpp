//===- models/Vocab.cpp - Subtoken and type vocabularies ---------------------===//

#include "models/Vocab.h"

#include "support/Str.h"

using namespace typilus;

std::vector<std::string> LabelVocab::keysOf(const std::string &Label,
                                            Mode M) {
  if (M == Mode::WholeLabel)
    return {Label};
  std::vector<std::string> Subs = splitSubtokens(Label);
  if (Subs.empty())
    Subs.push_back(Label); // punctuation lexemes keep their spelling
  return Subs;
}

LabelVocab LabelVocab::Builder::finish() const {
  LabelVocab V;
  V.M = M;
  for (const auto &[Key, Count] : Counts) {
    if (Count < MinCount)
      continue;
    V.Ids.emplace(Key, static_cast<int>(V.NextId));
    ++V.NextId;
  }
  return V;
}

LabelVocab LabelVocab::build(const std::vector<const TypilusGraph *> &Graphs,
                             Mode M, int MinCount) {
  Builder B(M, MinCount);
  for (const TypilusGraph *G : Graphs)
    B.addGraph(*G);
  return B.finish();
}

void LabelVocab::save(ArchiveWriter &W) const {
  W.writeU8(M == Mode::WholeLabel ? 1 : 0);
  W.writeU64(NextId);
  W.writeU64(Ids.size());
  for (const auto &[Key, Id] : Ids) {
    W.writeStr(Key);
    W.writeI32(Id);
  }
}

bool LabelVocab::load(ArchiveCursor &C, std::string *Err) {
  uint8_t ModeByte = C.readU8();
  uint64_t SavedNextId = C.readU64();
  uint64_t Count = C.readU64();
  // build() assigns dense ids 1..Count, so NextId is exactly Count + 1;
  // anything else is a crafted table (size() feeds the embedding-matrix
  // allocation, so an unbounded NextId must not survive to load).
  if (!C.ok() || ModeByte > 1 || Count > C.remaining() ||
      SavedNextId != Count + 1) {
    if (Err && Err->empty())
      *Err = "malformed label vocabulary";
    return false;
  }
  std::map<std::string, int> NewIds;
  for (uint64_t I = 0; I != Count; ++I) {
    std::string Key = C.readStr();
    int Id = C.readI32();
    if (!C.ok() || Id <= 0 || static_cast<uint64_t>(Id) >= SavedNextId) {
      if (Err && Err->empty())
        *Err = "malformed label vocabulary entry";
      return false;
    }
    NewIds.emplace(std::move(Key), Id);
  }
  M = ModeByte ? Mode::WholeLabel : Mode::Subtoken;
  NextId = static_cast<size_t>(SavedNextId);
  Ids = std::move(NewIds);
  return true;
}

void TypeIdMap::save(ArchiveWriter &W,
                     const std::map<TypeRef, int> &TypeIds) const {
  W.writeU64(Types.size());
  for (TypeRef T : Types)
    W.writeI32(TypeIds.at(T));
}

bool TypeIdMap::load(ArchiveCursor &C, const std::vector<TypeRef> &ById,
                     std::string *Err) {
  uint64_t Count = C.readU64();
  if (!C.ok() || Count > C.remaining()) {
    if (Err && Err->empty())
      *Err = "malformed type-id map";
    return false;
  }
  Ids.clear();
  Types.clear();
  for (uint64_t I = 0; I != Count; ++I) {
    int Idx = C.readI32();
    if (!C.ok() || Idx < 0 || static_cast<size_t>(Idx) >= ById.size()) {
      if (Err && Err->empty())
        *Err = "type-id map references a type outside the type table";
      return false;
    }
    // add() dedups; a repeated entry would silently shift every later
    // class id away from the saved classification weights. Reject it.
    if (add(ById[static_cast<size_t>(Idx)]) != static_cast<int>(I)) {
      if (Err && Err->empty())
        *Err = "type-id map contains a duplicate type";
      return false;
    }
  }
  return true;
}

std::vector<int> LabelVocab::idsOf(const std::string &Label) const {
  std::vector<int> Result;
  for (const std::string &K : keysOf(Label, M)) {
    auto It = Ids.find(K);
    Result.push_back(It == Ids.end() ? 0 : It->second);
  }
  return Result;
}
