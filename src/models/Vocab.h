//===- models/Vocab.h - Subtoken and type vocabularies ------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vocabularies shared by the model variants: a label vocabulary (subtoken
/// or whole-lexeme mode, for Eq. 7 initial node states and the Table 4
/// representation ablation), and dense type-id maps used as classification
/// targets (full types for Eq. 1, parameter-erased types for the LClass
/// term of Eq. 4).
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_MODELS_VOCAB_H
#define TYPILUS_MODELS_VOCAB_H

#include "graph/Graph.h"
#include "support/Archive.h"
#include "typesys/Type.h"

#include <map>
#include <string>
#include <vector>

namespace typilus {

/// Maps node labels to integer ids, either per subtoken (default) or per
/// whole lexeme. Id 0 is the unknown token.
class LabelVocab {
public:
  enum class Mode { Subtoken, WholeLabel };

  /// Builds from the node labels of \p Graphs; keys seen fewer than
  /// \p MinCount times map to unknown.
  static LabelVocab build(const std::vector<const TypilusGraph *> &Graphs,
                          Mode M, int MinCount = 2);

  /// Incremental construction for streamed corpora: feed graphs one at a
  /// time, then finish(). Ids come from the sorted key histogram, so the
  /// result depends only on the multiset of graphs — build() over the
  /// same graphs yields the identical vocabulary.
  class Builder {
  public:
    explicit Builder(Mode M, int MinCount = 2) : M(M), MinCount(MinCount) {}
    void addGraph(const TypilusGraph &G) {
      for (const GraphNode &N : G.Nodes)
        for (const std::string &K : keysOf(N.Label, M))
          ++Counts[K];
    }
    LabelVocab finish() const;

  private:
    Mode M;
    int MinCount;
    std::map<std::string, int> Counts;
  };

  /// Ids for \p Label: its subtokens in Subtoken mode (falling back to the
  /// raw label for pure punctuation), or a single whole-label id. Never
  /// empty; unknown keys yield id 0.
  std::vector<int> idsOf(const std::string &Label) const;

  size_t size() const { return NextId; }
  Mode mode() const { return M; }

  /// Appends mode + the key/id table to the open chunk.
  void save(ArchiveWriter &W) const;
  /// Replaces *this with a table written by save().
  bool load(ArchiveCursor &C, std::string *Err);

private:
  /// Splits per mode; shared with build().
  static std::vector<std::string> keysOf(const std::string &Label, Mode M);

  std::map<std::string, int> Ids;
  size_t NextId = 1; // 0 = unknown
  Mode M = Mode::Subtoken;
};

/// Dense ids for interned types (insertion-ordered, deterministic).
class TypeIdMap {
public:
  /// Returns the id of \p T, inserting it if new.
  int add(TypeRef T) {
    auto [It, Inserted] = Ids.emplace(T, static_cast<int>(Types.size()));
    if (Inserted)
      Types.push_back(T);
    return It->second;
  }
  /// Returns the id of \p T or -1 when absent.
  int lookup(TypeRef T) const {
    auto It = Ids.find(T);
    return It == Ids.end() ? -1 : It->second;
  }
  TypeRef type(int Id) const { return Types[static_cast<size_t>(Id)]; }
  size_t size() const { return Types.size(); }

  /// Appends the id-ordered type list to the open chunk, referencing each
  /// type by its dense index in the artifact's type table.
  void save(ArchiveWriter &W, const std::map<TypeRef, int> &TypeIds) const;
  /// Replaces *this with a map written by save(); \p ById is the loaded
  /// type table.
  bool load(ArchiveCursor &C, const std::vector<TypeRef> &ById,
            std::string *Err);

private:
  std::map<TypeRef, int> Ids;
  std::vector<TypeRef> Types;
};

} // namespace typilus

#endif // TYPILUS_MODELS_VOCAB_H
