//===- models/Example.h - Training / evaluation examples ----------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The preprocessed per-file example every model consumes: the program
/// graph plus the resolved prediction targets (symbol supernode, ground
/// truth TypeRef, symbol kind). The sequence and path baselines derive
/// their views (token sequence, AST tree) from the same graph.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_MODELS_EXAMPLE_H
#define TYPILUS_MODELS_EXAMPLE_H

#include "graph/Graph.h"
#include "typesys/Type.h"

#include <string>
#include <vector>

namespace typilus {

/// One annotatable symbol with a known ground-truth type.
struct Target {
  int NodeIdx = -1; ///< Graph node index of the symbol supernode.
  TypeRef Type = nullptr;
  TypeRef ErasedType = nullptr; ///< Er(Type), cached for Eq. 4's LClass.
  SymbolKind Kind = SymbolKind::Variable;
  std::string Name;
};

/// One preprocessed source file.
struct FileExample {
  std::string Path;
  TypilusGraph Graph;
  std::vector<Target> Targets;
};

} // namespace typilus

#endif // TYPILUS_MODELS_EXAMPLE_H
