//===- corpus/Generator.h - Synthetic Python corpus ----------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data substrate standing in for the paper's 600-repository GitHub
/// corpus (Sec. 6 "Data"): a generator of annotated Python-subset projects
/// whose type distribution is Zipfian with a long tail of user-defined
/// types, and whose identifier names / structural idioms correlate noisily
/// with types — exactly the signals Typilus learns from. Fully
/// deterministic given the seed.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORPUS_GENERATOR_H
#define TYPILUS_CORPUS_GENERATOR_H

#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace typilus {

/// One generated source file.
struct CorpusFile {
  std::string Path;
  std::string Source;
};

/// A generated user-defined type (UDT); also used to register the class in
/// the TypeHierarchy for neutrality checks.
struct UdtSpec {
  std::string Name;
  std::string Base; ///< Base class name; "" = object.
  struct Attr {
    std::string Name;
    std::string TypeText;
  };
  std::vector<Attr> Attrs;
  struct Method {
    std::string Name;
    std::string ReturnTypeText;
    std::string ReturnAttr; ///< The attribute the method returns.
  };
  std::vector<Method> Methods;
};

/// Generation knobs.
struct CorpusConfig {
  int NumFiles = 200;
  int NumUdts = 150;        ///< User-defined classes in the long tail.
  double ZipfSkew = 0.85;  ///< Type-frequency skew (paper: fat-tailed Zipf).
  double NameNoise = 0.25; ///< Probability of a type-uninformative name.
  int MinFuncsPerFile = 2;
  int MaxFuncsPerFile = 5;
  /// Fraction of files emitted as near-duplicates of earlier files, to
  /// exercise the dedup step (Lopes et al. observed heavy duplication).
  double DuplicateFraction = 0.05;
  uint64_t Seed = 20200613;
};

/// Generates a deterministic synthetic corpus.
class CorpusGenerator {
public:
  explicit CorpusGenerator(const CorpusConfig &C);
  ~CorpusGenerator(); // Out of line: Profile is an implementation detail.
  CorpusGenerator(const CorpusGenerator &) = delete;
  CorpusGenerator &operator=(const CorpusGenerator &) = delete;

  /// Generates all files. Idempotent.
  std::vector<CorpusFile> generate();

  /// The UDTs used by the corpus (valid after construction).
  const std::vector<UdtSpec> &udts() const { return Udts; }

private:
  struct Profile;
  void makeBuiltinProfiles();
  void makeUdts();
  const Profile &sampleProfile(Rng &R) const;
  std::string varName(const Profile &P, Rng &R, int &NameCounter) const;
  std::string fileSource(int FileIdx, Rng &R) const;
  std::string classSource(const UdtSpec &U) const;

  CorpusConfig Config;
  std::vector<Profile> Profiles; ///< Builtins first, then UDTs (the tail).
  std::vector<UdtSpec> Udts;
  std::vector<double> ProfileCdf;
};

} // namespace typilus

#endif // TYPILUS_CORPUS_GENERATOR_H
