//===- corpus/Dataset.h - Parsed & split dataset -------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns raw corpus files into model-ready FileExamples: dedup, parse,
/// build graphs, resolve annotation ground truths to interned types, and
/// split 70/10/20 (Sec. 6). Registers the corpus UDTs in the type
/// hierarchy so neutrality checks see the user-defined classes.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORPUS_DATASET_H
#define TYPILUS_CORPUS_DATASET_H

#include "corpus/Generator.h"
#include "models/Example.h"
#include "typesys/Hierarchy.h"

#include <map>
#include <vector>

namespace typilus {

/// Split fractions and preprocessing options.
struct DatasetConfig {
  double TrainFrac = 0.7;
  double ValidFrac = 0.1; ///< Remainder is the test split.
  GraphBuildOptions GraphOpts;
  bool RunDedup = true;
  double DedupThreshold = 0.8;
  uint64_t SplitSeed = 99;
  /// Types seen at least this often in training annotations are "common"
  /// (the paper uses 100 on its 252k-annotation corpus; scaled here).
  int CommonThreshold = 10;
};

/// The preprocessed dataset.
struct Dataset {
  std::vector<FileExample> Train, Valid, Test;
  /// Training-annotation frequency per type (common/rare split, Fig. 5).
  std::map<TypeRef, int> TrainTypeCounts;
  int CommonThreshold = 10;

  bool isRare(TypeRef T) const {
    auto It = TrainTypeCounts.find(T);
    int N = It == TrainTypeCounts.end() ? 0 : It->second;
    return N < CommonThreshold;
  }
  size_t numTargets() const {
    size_t N = 0;
    for (const auto *Split : {&Train, &Valid, &Test})
      for (const FileExample &F : *Split)
        N += F.Targets.size();
    return N;
  }
};

/// The corpus-order side of dataset construction: which files survive
/// dedup, the seeded shuffle, and where the 70/10/20 split boundaries
/// fall. Shared by buildDataset and the sharded builder
/// (corpus/ShardWriter) so the file-to-split assignment cannot drift
/// between the two — their bit-identity contract depends on it.
struct CorpusSplitPlan {
  std::vector<const CorpusFile *> Shuffled; ///< Kept files, visit order.
  size_t NumTrain = 0;
  size_t NumValid = 0; ///< Remainder after train+valid is the test split.
  size_t DedupDropped = 0; ///< Near-duplicate files removed before the split.

  /// Split of the file at shuffled position \p I: 0 train, 1 valid,
  /// 2 test (matches corpus/ShardWriter's SplitKind values).
  int splitOf(size_t I) const {
    return I < NumTrain ? 0 : I < NumTrain + NumValid ? 1 : 2;
  }
};

CorpusSplitPlan planCorpusSplit(const std::vector<CorpusFile> &Files,
                                const DatasetConfig &Config);

/// Builds the dataset. \p Hierarchy (if non-null) learns the UDT classes.
Dataset buildDataset(const std::vector<CorpusFile> &Files,
                     const std::vector<UdtSpec> &Udts, TypeUniverse &U,
                     TypeHierarchy *Hierarchy, const DatasetConfig &Config);

/// Registers the corpus UDT classes in \p Hierarchy (shared by the
/// in-memory and sharded builders).
void registerUdts(const std::vector<UdtSpec> &Udts, TypeHierarchy &Hierarchy);

/// Parses and graph-izes a single file into a FileExample (shared with the
/// examples and the qualitative tooling). Targets get ground truths from
/// the in-source annotations; Any/None/malformed annotations are skipped.
FileExample buildExample(const CorpusFile &File, TypeUniverse &U,
                         const GraphBuildOptions &Opts);

/// Rebuilds \p Ex.Targets from its graph's supernode annotations,
/// interning ground truths into \p U. This is the target-resolution step
/// of buildExample, shared with shard decoding (corpus/ShardedDataset) so
/// a decoded example resolves types through the exact same path — and
/// therefore bit-identically — as a freshly built one.
void resolveTargets(FileExample &Ex, TypeUniverse &U);

} // namespace typilus

#endif // TYPILUS_CORPUS_DATASET_H
