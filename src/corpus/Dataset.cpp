//===- corpus/Dataset.cpp - Parsed & split dataset -----------------------------===//

#include "corpus/Dataset.h"

#include "corpus/Dedup.h"
#include "pyfront/Parser.h"
#include "pyfront/SymbolTable.h"

#include <algorithm>
#include <cassert>

using namespace typilus;

void typilus::resolveTargets(FileExample &Ex, TypeUniverse &U) {
  Ex.Targets.clear();
  for (const Supernode &S : Ex.Graph.Supernodes) {
    if (S.AnnotationText.empty())
      continue;
    TypeRef T = U.parse(S.AnnotationText);
    if (!T || U.isExcludedAnnotation(T))
      continue; // footnote 2: Any/None ground truths are excluded
    Target Tg;
    Tg.NodeIdx = S.NodeIdx;
    Tg.Type = T;
    Tg.ErasedType = U.erase(T);
    Tg.Kind = S.Kind;
    Tg.Name = S.Name;
    Ex.Targets.push_back(std::move(Tg));
  }
}

FileExample typilus::buildExample(const CorpusFile &File, TypeUniverse &U,
                                  const GraphBuildOptions &Opts) {
  FileExample Ex;
  Ex.Path = File.Path;
  ParsedFile PF = parseFile(File.Path, File.Source);
  SymbolTable ST;
  buildSymbolTable(PF, ST);
  Ex.Graph = buildGraph(PF, ST, Opts);
  resolveTargets(Ex, U);
  return Ex;
}

void typilus::registerUdts(const std::vector<UdtSpec> &Udts,
                           TypeHierarchy &Hierarchy) {
  for (const UdtSpec &Udt : Udts)
    Hierarchy.addClass(Udt.Name, Udt.Base.empty()
                                     ? std::vector<std::string>{}
                                     : std::vector<std::string>{Udt.Base});
}

CorpusSplitPlan typilus::planCorpusSplit(const std::vector<CorpusFile> &Files,
                                         const DatasetConfig &Config) {
  // Dedup before splitting, as the paper stresses.
  std::vector<const CorpusFile *> Kept;
  if (Config.RunDedup) {
    std::vector<size_t> Drop =
        findNearDuplicates(Files, Config.DedupThreshold);
    size_t DropPos = 0;
    for (size_t I = 0; I != Files.size(); ++I) {
      if (DropPos < Drop.size() && Drop[DropPos] == I) {
        ++DropPos;
        continue;
      }
      Kept.push_back(&Files[I]);
    }
  } else {
    for (const CorpusFile &F : Files)
      Kept.push_back(&F);
  }

  // Deterministic shuffled 70/10/20 split.
  CorpusSplitPlan Plan;
  Plan.DedupDropped = Files.size() - Kept.size();
  Rng R(Config.SplitSeed);
  Plan.Shuffled = std::move(Kept);
  R.shuffle(Plan.Shuffled);
  Plan.NumTrain = static_cast<size_t>(
      Config.TrainFrac * static_cast<double>(Plan.Shuffled.size()));
  Plan.NumValid = static_cast<size_t>(
      Config.ValidFrac * static_cast<double>(Plan.Shuffled.size()));
  return Plan;
}

Dataset typilus::buildDataset(const std::vector<CorpusFile> &Files,
                              const std::vector<UdtSpec> &Udts,
                              TypeUniverse &U, TypeHierarchy *Hierarchy,
                              const DatasetConfig &Config) {
  if (Hierarchy)
    registerUdts(Udts, *Hierarchy);

  CorpusSplitPlan Plan = planCorpusSplit(Files, Config);
  Dataset DS;
  DS.CommonThreshold = Config.CommonThreshold;
  for (size_t I = 0; I != Plan.Shuffled.size(); ++I) {
    FileExample Ex = buildExample(*Plan.Shuffled[I], U, Config.GraphOpts);
    switch (Plan.splitOf(I)) {
    case 0:
      DS.Train.push_back(std::move(Ex));
      break;
    case 1:
      DS.Valid.push_back(std::move(Ex));
      break;
    default:
      DS.Test.push_back(std::move(Ex));
    }
  }
  for (const FileExample &F : DS.Train)
    for (const Target &T : F.Targets)
      ++DS.TrainTypeCounts[T.Type];
  return DS;
}
