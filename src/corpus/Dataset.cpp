//===- corpus/Dataset.cpp - Parsed & split dataset -----------------------------===//

#include "corpus/Dataset.h"

#include "corpus/Dedup.h"
#include "pyfront/Parser.h"
#include "pyfront/SymbolTable.h"

#include <algorithm>
#include <cassert>

using namespace typilus;

FileExample typilus::buildExample(const CorpusFile &File, TypeUniverse &U,
                                  const GraphBuildOptions &Opts) {
  FileExample Ex;
  Ex.Path = File.Path;
  ParsedFile PF = parseFile(File.Path, File.Source);
  SymbolTable ST;
  buildSymbolTable(PF, ST);
  Ex.Graph = buildGraph(PF, ST, Opts);
  for (const Supernode &S : Ex.Graph.Supernodes) {
    if (S.AnnotationText.empty())
      continue;
    TypeRef T = U.parse(S.AnnotationText);
    if (!T || U.isExcludedAnnotation(T))
      continue; // footnote 2: Any/None ground truths are excluded
    Target Tg;
    Tg.NodeIdx = S.NodeIdx;
    Tg.Type = T;
    Tg.ErasedType = U.erase(T);
    Tg.Kind = S.Kind;
    Tg.Name = S.Name;
    Ex.Targets.push_back(std::move(Tg));
  }
  return Ex;
}

Dataset typilus::buildDataset(const std::vector<CorpusFile> &Files,
                              const std::vector<UdtSpec> &Udts,
                              TypeUniverse &U, TypeHierarchy *Hierarchy,
                              const DatasetConfig &Config) {
  if (Hierarchy)
    for (const UdtSpec &Udt : Udts)
      Hierarchy->addClass(Udt.Name,
                          Udt.Base.empty()
                              ? std::vector<std::string>{}
                              : std::vector<std::string>{Udt.Base});

  // Dedup before splitting, as the paper stresses.
  std::vector<const CorpusFile *> Kept;
  if (Config.RunDedup) {
    std::vector<size_t> Drop =
        findNearDuplicates(Files, Config.DedupThreshold);
    size_t DropPos = 0;
    for (size_t I = 0; I != Files.size(); ++I) {
      if (DropPos < Drop.size() && Drop[DropPos] == I) {
        ++DropPos;
        continue;
      }
      Kept.push_back(&Files[I]);
    }
  } else {
    for (const CorpusFile &F : Files)
      Kept.push_back(&F);
  }

  // Deterministic shuffled 70/10/20 split.
  Rng R(Config.SplitSeed);
  std::vector<const CorpusFile *> Shuffled = Kept;
  R.shuffle(Shuffled);
  size_t NumTrain =
      static_cast<size_t>(Config.TrainFrac * static_cast<double>(Shuffled.size()));
  size_t NumValid =
      static_cast<size_t>(Config.ValidFrac * static_cast<double>(Shuffled.size()));

  Dataset DS;
  DS.CommonThreshold = Config.CommonThreshold;
  for (size_t I = 0; I != Shuffled.size(); ++I) {
    FileExample Ex = buildExample(*Shuffled[I], U, Config.GraphOpts);
    if (I < NumTrain)
      DS.Train.push_back(std::move(Ex));
    else if (I < NumTrain + NumValid)
      DS.Valid.push_back(std::move(Ex));
    else
      DS.Test.push_back(std::move(Ex));
  }
  for (const FileExample &F : DS.Train)
    for (const Target &T : F.Targets)
      ++DS.TrainTypeCounts[T.Type];
  return DS;
}
