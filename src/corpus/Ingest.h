//===- corpus/Ingest.h - Real-tree corpus ingestion ---------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crawl-scale corpus ingestion: walk a directory tree of real `.py`
/// files into `CorpusFile`s ready for the dedup + shard pipeline
/// (Sec. 6's 600-project corpus, minus the crawler). The walk is
/// deterministic (each directory's entries visited in name order) so a
/// given tree always yields the same corpus — and therefore the same
/// shards — on every machine.
///
/// Robustness contract: a file the pyfront parser rejects is *skipped
/// and reported* — counted, logged with file:line context — never
/// fatal. Real trees contain Python the supported subset cannot parse;
/// ingestion must survive all of it.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORPUS_INGEST_H
#define TYPILUS_CORPUS_INGEST_H

#include "corpus/Generator.h"

#include <string>
#include <vector>

namespace typilus {

/// One file the ingestion walk skipped, with an actionable reason.
struct IngestReject {
  std::string Path;   ///< Root-relative path of the skipped file.
  std::string Reason; ///< "path:line: message" of the first diagnostic.
};

/// What an ingestion walk saw and kept.
struct IngestReport {
  size_t FilesSeen = 0;       ///< `.py` files found under the root.
  size_t FilesAccepted = 0;   ///< Parsed cleanly; entered the corpus.
  size_t FilesUnreadable = 0; ///< I/O failures (counted, skipped).
  std::vector<IngestReject> Rejects; ///< Parser-rejected files.
};

/// Walks \p Root recursively for `.py` files, visiting each directory's
/// entries in name order (dot-entries skipped), and appends every file
/// the pyfront parser accepts to \p Out with a root-relative path.
/// Rejected and unreadable files are recorded in \p Report and skipped.
/// \returns false and sets \p Err only on environment errors (e.g.
/// \p Root is not a readable directory) — never because of file content.
bool collectPyTree(const std::string &Root, std::vector<CorpusFile> &Out,
                   IngestReport &Report, std::string *Err);

} // namespace typilus

#endif // TYPILUS_CORPUS_INGEST_H
