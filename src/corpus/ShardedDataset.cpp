//===- corpus/ShardedDataset.cpp - Streaming shard reader ----------------------===//

#include "corpus/ShardedDataset.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

using namespace typilus;

//===----------------------------------------------------------------------===//
// Shard file reading
//===----------------------------------------------------------------------===//

bool typilus::readShardFile(const std::string &Path, TypeUniverse &U,
                            std::vector<FileExample> &Out, SplitKind *SplitOut,
                            std::string *Err) {
  if (Err)
    Err->clear();
  ArchiveReader R;
  if (!R.openFile(Path, Err, kShardMagic))
    return false;
  if (R.formatVersion() != kShardFormatVersion) {
    if (Err)
      *Err = "shard format version " + std::to_string(R.formatVersion()) +
             "; this build reads version " + std::to_string(kShardFormatVersion);
    return false;
  }

  ArchiveCursor MC = R.chunk("smet", Err);
  uint8_t Split = MC.readU8();
  uint64_t NumFiles = MC.readU64();
  uint64_t NumTargets = MC.readU64();
  if (!MC.atEnd() || Split >= kNumSplits) {
    if (Err && Err->empty())
      *Err = "malformed shard metadata chunk";
    return false;
  }
  if (SplitOut)
    *SplitOut = static_cast<SplitKind>(Split);

  ArchiveCursor EC = R.chunk("exmp", Err);
  uint64_t Count = EC.readU64();
  if (!EC.ok() || Count != NumFiles || Count > EC.remaining()) {
    if (Err && Err->empty())
      *Err = "shard example count disagrees with its metadata";
    return false;
  }
  Out.clear();
  Out.reserve(static_cast<size_t>(Count));
  uint64_t Targets = 0;
  for (uint64_t I = 0; I != Count; ++I) {
    FileExample Ex;
    if (!readFileExample(EC, U, Ex, Err))
      return false;
    Targets += Ex.Targets.size();
    Out.push_back(std::move(Ex));
  }
  if (!EC.atEnd() || Targets != NumTargets) {
    // The target count is derived data (resolveTargets over the decoded
    // graphs); a mismatch means the payload does not say what the
    // metadata promised.
    if (Err && Err->empty())
      *Err = "shard target count disagrees with its payload";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// SplitSource
//===----------------------------------------------------------------------===//

/// The ExampleSource view of one split: global index -> (shard, local)
/// through a prefix-sum table, decoding through the owner's LRU.
class ShardedDataset::SplitSource : public ExampleSource {
public:
  SplitSource(ShardedDataset &DS, SplitKind S) : DS(DS) {
    for (size_t I = 0; I != DS.Shards.size(); ++I)
      if (DS.Shards[I].Split == S) {
        ShardIdx.push_back(I);
        Prefix.push_back(Total);
        Total += DS.Shards[I].Files;
      }
    Prefix.push_back(Total);
    NumTargets = DS.Targets[static_cast<int>(S)];
  }

  size_t size() const override { return Total; }
  size_t numTargets() const override { return NumTargets; }

  const FileExample &get(size_t I, ExamplePin &Pin) override {
    size_t Which =
        static_cast<size_t>(std::upper_bound(Prefix.begin(), Prefix.end(), I) -
                            Prefix.begin()) -
        1;
    std::shared_ptr<const std::vector<FileExample>> Decoded =
        DS.shard(ShardIdx[Which]);
    const FileExample &Ex = (*Decoded)[I - Prefix[Which]];
    Pin.Keep = std::move(Decoded);
    return Ex;
  }

  void shuffleEpochOrder(std::vector<int> &Order, Rng &R,
                         bool ShardAware) override {
    if (!ShardAware) {
      // The global Fisher-Yates of the in-memory path: identical RNG
      // consumption and identical visitation order for any shard layout.
      R.shuffle(Order);
      return;
    }
    // Shard-aware: visit shards in a shuffled order, each shard's
    // examples shuffled within it — one decode per shard per epoch.
    std::vector<int> Visit(ShardIdx.size());
    std::iota(Visit.begin(), Visit.end(), 0);
    R.shuffle(Visit);
    Order.clear();
    std::vector<int> Local;
    for (int V : Visit) {
      Local.clear();
      for (size_t I = Prefix[static_cast<size_t>(V)];
           I != Prefix[static_cast<size_t>(V) + 1]; ++I)
        Local.push_back(static_cast<int>(I));
      R.shuffle(Local);
      Order.insert(Order.end(), Local.begin(), Local.end());
    }
  }

private:
  ShardedDataset &DS;
  std::vector<size_t> ShardIdx; ///< This split's shards, stream order.
  std::vector<size_t> Prefix;   ///< Cumulative file counts (size + 1).
  size_t Total = 0;
  size_t NumTargets = 0;
};

//===----------------------------------------------------------------------===//
// ShardedDataset
//===----------------------------------------------------------------------===//

ShardedDataset::~ShardedDataset() = default;

std::shared_ptr<const std::vector<FileExample>>
ShardedDataset::shard(size_t Idx) {
  for (auto It = Cache.begin(); It != Cache.end(); ++It)
    if (It->Idx == Idx) {
      Cache.splice(Cache.begin(), Cache, It); // refresh recency
      return Cache.front().Decoded;
    }

  auto Decoded = std::make_shared<std::vector<FileExample>>();
  std::string Err;
  SplitKind Split;
  if (!readShardFile(Dir + "/" + Shards[Idx].Name, *U, *Decoded, &Split,
                     &Err) ||
      Split != Shards[Idx].Split ||
      Decoded->size() != Shards[Idx].Files) {
    // get() hands out plain references (vector-compatible by design), so
    // mid-stream shard damage has no error channel; it is an environment
    // failure — fail loudly rather than serve a wrong corpus.
    std::fprintf(stderr, "fatal: shard '%s/%s': %s\n", Dir.c_str(),
                 Shards[Idx].Name.c_str(),
                 Err.empty() ? "disagrees with the manifest" : Err.c_str());
    std::abort();
  }
  ++Decodes;
  Cache.push_front(CacheEntry{Idx, std::move(Decoded)});
  size_t Max =
      Opts.MaxResidentShards < 1 ? 1 : static_cast<size_t>(Opts.MaxResidentShards);
  while (Cache.size() > Max)
    Cache.pop_back(); // pins keep evicted shards alive until released
  return Cache.front().Decoded;
}

ExampleSource &ShardedDataset::split(SplitKind S) {
  return *Splits[static_cast<int>(S)];
}

std::unique_ptr<ShardedDataset>
ShardedDataset::open(const std::string &Dir, TypeUniverse &U,
                     const ShardedDatasetOptions &Opts, std::string *Err) {
  if (Err)
    Err->clear();
  ArchiveReader R;
  if (!R.openFile(Dir + "/" + kShardManifestName, Err, kShardMagic))
    return nullptr;
  if (R.formatVersion() != kShardFormatVersion) {
    if (Err)
      *Err = "shard-set format version " + std::to_string(R.formatVersion()) +
             "; this build reads version " + std::to_string(kShardFormatVersion);
    return nullptr;
  }
  auto Fail = [&](const char *Why) -> std::unique_ptr<ShardedDataset> {
    if (Err && Err->empty())
      *Err = std::string("malformed shard manifest: ") + Why;
    return nullptr;
  };

  std::unique_ptr<ShardedDataset> DS(new ShardedDataset());
  DS->Dir = Dir;
  DS->U = &U;
  DS->Opts = Opts;

  ArchiveCursor MC = R.chunk("mset", Err);
  DS->CommonThreshold = MC.readI32();
  uint64_t NumShards = MC.readU64();
  for (size_t &F : DS->Files)
    F = static_cast<size_t>(MC.readU64());
  for (size_t &T : DS->Targets)
    T = static_cast<size_t>(MC.readU64());
  if (!MC.atEnd())
    return Fail("settings chunk");

  ArchiveCursor SC = R.chunk("shrd", Err);
  uint64_t N = SC.readU64();
  if (!SC.ok() || N != NumShards || N > SC.remaining())
    return Fail("shard table size");
  uint64_t Files[kNumSplits] = {}, Targets[kNumSplits] = {};
  DS->Shards.reserve(static_cast<size_t>(N));
  for (uint64_t I = 0; I != N; ++I) {
    ShardInfo SI;
    SI.Name = SC.readStr();
    uint8_t Split = SC.readU8();
    SI.Files = static_cast<size_t>(SC.readU64());
    SI.Targets = static_cast<size_t>(SC.readU64());
    if (!SC.ok() || Split >= kNumSplits || SI.Name.empty() ||
        SI.Name.find('/') != std::string::npos)
      return Fail("shard table entry");
    SI.Split = static_cast<SplitKind>(Split);
    Files[Split] += SI.Files;
    Targets[Split] += SI.Targets;
    DS->Shards.push_back(std::move(SI));
  }
  for (int S = 0; S != kNumSplits; ++S)
    if (Files[S] != DS->Files[S] || Targets[S] != DS->Targets[S])
      return Fail("per-split totals disagree with the shard table");

  ArchiveCursor TC = R.chunk("tcnt", Err);
  uint64_t NumTypes = TC.readU64();
  if (!TC.ok() || NumTypes > TC.remaining())
    return Fail("type-count table size");
  for (uint64_t I = 0; I != NumTypes; ++I) {
    std::string Repr = TC.readStr();
    int64_t Count = TC.readI64();
    if (!TC.ok() || Count < 0)
      return Fail("type-count entry");
    TypeRef T = U.parse(Repr);
    if (!T)
      return Fail("unparsable type in the count table");
    DS->TrainCounts[T] += static_cast<int>(Count);
  }

  for (int S = 0; S != kNumSplits; ++S)
    DS->Splits[S] =
        std::make_unique<SplitSource>(*DS, static_cast<SplitKind>(S));
  DS->TrainValidSrc = std::make_unique<ConcatExampleSource>(
      std::vector<ExampleSource *>{DS->Splits[0].get(), DS->Splits[1].get()});
  return DS;
}
