//===- corpus/ShardedDataset.cpp - Streaming shard reader ----------------------===//

#include "corpus/ShardedDataset.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>

using namespace typilus;

//===----------------------------------------------------------------------===//
// Shard file reading
//===----------------------------------------------------------------------===//

namespace {

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The universe-free half of readShardFile: framing, CRCs, version,
/// metadata and graph payloads. \p MetaTargets receives the smet target
/// count; targets themselves stay unresolved (`Ex.Targets` empty). This
/// is the only decode the prefetch worker runs — it touches no shared
/// state at all.
bool readShardFileRaw(const std::string &Path, std::vector<FileExample> &Out,
                      SplitKind *SplitOut, uint64_t *MetaTargets,
                      std::string *Err) {
  if (Err)
    Err->clear();
  ArchiveReader R;
  if (!R.openFile(Path, Err, kShardMagic))
    return false;
  if (R.formatVersion() != kShardFormatVersion) {
    if (Err)
      *Err = "shard format version " + std::to_string(R.formatVersion()) +
             "; this build reads version " + std::to_string(kShardFormatVersion);
    return false;
  }

  ArchiveCursor MC = R.chunk("smet", Err);
  uint8_t Split = MC.readU8();
  uint64_t NumFiles = MC.readU64();
  uint64_t NumTargets = MC.readU64();
  if (!MC.atEnd() || Split >= kNumSplits) {
    if (Err && Err->empty())
      *Err = "malformed shard metadata chunk";
    return false;
  }
  if (SplitOut)
    *SplitOut = static_cast<SplitKind>(Split);
  if (MetaTargets)
    *MetaTargets = NumTargets;

  ArchiveCursor EC = R.chunk("exmp", Err);
  uint64_t Count = EC.readU64();
  if (!EC.ok() || Count != NumFiles || Count > EC.remaining()) {
    if (Err && Err->empty())
      *Err = "shard example count disagrees with its metadata";
    return false;
  }
  Out.clear();
  Out.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I != Count; ++I) {
    FileExample Ex;
    if (!readFileExampleGraph(EC, Ex, Err))
      return false;
    Out.push_back(std::move(Ex));
  }
  if (!EC.atEnd()) {
    if (Err && Err->empty())
      *Err = "shard target count disagrees with its payload";
    return false;
  }
  return true;
}

/// The claim-time half: resolve every example's targets through \p U (in
/// file order, the same intern sequence a synchronous decode produces)
/// and cross-check the derived target count against the metadata.
bool resolveShardTargets(std::vector<FileExample> &Out, TypeUniverse &U,
                         uint64_t MetaTargets, std::string *Err) {
  uint64_t Targets = 0;
  for (FileExample &Ex : Out) {
    resolveTargets(Ex, U);
    Targets += Ex.Targets.size();
  }
  if (Targets != MetaTargets) {
    // The target count is derived data (resolveTargets over the decoded
    // graphs); a mismatch means the payload does not say what the
    // metadata promised.
    if (Err && Err->empty())
      *Err = "shard target count disagrees with its payload";
    return false;
  }
  return true;
}

} // namespace

bool typilus::readShardFile(const std::string &Path, TypeUniverse &U,
                            std::vector<FileExample> &Out, SplitKind *SplitOut,
                            std::string *Err) {
  uint64_t MetaTargets = 0;
  return readShardFileRaw(Path, Out, SplitOut, &MetaTargets, Err) &&
         resolveShardTargets(Out, U, MetaTargets, Err);
}

//===----------------------------------------------------------------------===//
// SplitSource
//===----------------------------------------------------------------------===//

/// The ExampleSource view of one split: global index -> (shard, local)
/// through a prefix-sum table, decoding through the owner's LRU.
class ShardedDataset::SplitSource : public ExampleSource {
public:
  SplitSource(ShardedDataset &DS, SplitKind S) : DS(DS) {
    for (size_t I = 0; I != DS.Shards.size(); ++I)
      if (DS.Shards[I].Split == S) {
        ShardIdx.push_back(I);
        Prefix.push_back(Total);
        Total += DS.Shards[I].Files;
      }
    Prefix.push_back(Total);
    NumTargets = DS.Targets[static_cast<int>(S)];
  }

  size_t size() const override { return Total; }
  size_t numTargets() const override { return NumTargets; }

  const FileExample &get(size_t I, ExamplePin &Pin) override {
    size_t Which =
        static_cast<size_t>(std::upper_bound(Prefix.begin(), Prefix.end(), I) -
                            Prefix.begin()) -
        1;
    std::shared_ptr<const std::vector<FileExample>> Decoded =
        DS.shard(ShardIdx[Which]);
    const FileExample &Ex = (*Decoded)[I - Prefix[Which]];
    Pin.Keep = std::move(Decoded);
    return Ex;
  }

  void planPrefetch(const std::vector<int> &Order, size_t Begin) override {
    // Translate the split-local visit order into the global shard
    // sequence the LRU will see, collapsing consecutive repeats (one
    // plan entry per shard *transition*).
    std::vector<size_t> Seq;
    for (size_t P = Begin; P < Order.size(); ++P) {
      size_t I = static_cast<size_t>(Order[P]);
      size_t Which =
          static_cast<size_t>(
              std::upper_bound(Prefix.begin(), Prefix.end(), I) -
              Prefix.begin()) -
          1;
      size_t G = ShardIdx[Which];
      if (Seq.empty() || Seq.back() != G)
        Seq.push_back(G);
    }
    DS.setPrefetchPlan(std::move(Seq));
  }

  void shuffleEpochOrder(std::vector<int> &Order, Rng &R,
                         bool ShardAware) override {
    if (!ShardAware) {
      // The global Fisher-Yates of the in-memory path: identical RNG
      // consumption and identical visitation order for any shard layout.
      R.shuffle(Order);
      return;
    }
    // Shard-aware: visit shards in a shuffled order, each shard's
    // examples shuffled within it — one decode per shard per epoch.
    std::vector<int> Visit(ShardIdx.size());
    std::iota(Visit.begin(), Visit.end(), 0);
    R.shuffle(Visit);
    Order.clear();
    std::vector<int> Local;
    for (int V : Visit) {
      Local.clear();
      for (size_t I = Prefix[static_cast<size_t>(V)];
           I != Prefix[static_cast<size_t>(V) + 1]; ++I)
        Local.push_back(static_cast<int>(I));
      R.shuffle(Local);
      Order.insert(Order.end(), Local.begin(), Local.end());
    }
  }

private:
  ShardedDataset &DS;
  std::vector<size_t> ShardIdx; ///< This split's shards, stream order.
  std::vector<size_t> Prefix;   ///< Cumulative file counts (size + 1).
  size_t Total = 0;
  size_t NumTargets = 0;
};

//===----------------------------------------------------------------------===//
// ShardedDataset
//===----------------------------------------------------------------------===//

ShardedDataset::~ShardedDataset() {
  if (PfThread.joinable()) {
    {
      std::lock_guard<std::mutex> L(PfMutex);
      PfShutdown = true;
    }
    PfWake.notify_all();
    PfThread.join();
  }
}

std::shared_ptr<const std::vector<FileExample>>
ShardedDataset::shard(size_t Idx) {
  for (auto It = Cache.begin(); It != Cache.end(); ++It)
    if (It->Idx == Idx) {
      Cache.splice(Cache.begin(), Cache, It); // refresh recency
      if (PfOn)
        aimPrefetch(Idx); // track demand so the one-ahead aim advances
      return Cache.front().Decoded;
    }

  uint64_t T0 = nowMicros();
  std::shared_ptr<const std::vector<FileExample>> Decoded;
  if (PfOn) {
    Decoded = claimPrefetched(Idx);
    if (Decoded)
      ++PfHits;
    else
      ++PfMisses;
  }
  if (!Decoded) {
    auto Fresh = std::make_shared<std::vector<FileExample>>();
    std::string Err;
    SplitKind Split;
    if (!readShardFile(Dir + "/" + Shards[Idx].Name, *U, *Fresh, &Split,
                       &Err) ||
        Split != Shards[Idx].Split || Fresh->size() != Shards[Idx].Files) {
      // get() hands out plain references (vector-compatible by design), so
      // mid-stream shard damage has no error channel; it is an environment
      // failure — fail loudly rather than serve a wrong corpus.
      std::fprintf(stderr, "fatal: shard '%s/%s': %s\n", Dir.c_str(),
                   Shards[Idx].Name.c_str(),
                   Err.empty() ? "disagrees with the manifest" : Err.c_str());
      std::abort();
    }
    Decoded = std::move(Fresh);
  }
  // Demand-driven either way: a prefetched shard counts on claim, so the
  // decode count is identical with prefetch on or off.
  ++Decodes;
  StallMicros += nowMicros() - T0;
  Cache.push_front(CacheEntry{Idx, std::move(Decoded)});
  size_t Max =
      Opts.MaxResidentShards < 1 ? 1 : static_cast<size_t>(Opts.MaxResidentShards);
  while (Cache.size() > Max)
    Cache.pop_back(); // pins keep evicted shards alive until released
  if (PfOn)
    aimPrefetch(Idx);
  return Cache.front().Decoded;
}

//===----------------------------------------------------------------------===//
// Prefetcher
//===----------------------------------------------------------------------===//

void ShardedDataset::startPrefetcher() {
  if (Shards.size() < 2)
    return; // nothing to decode ahead of
  PfOn = true;
  PfThread = std::thread([this] { prefetchLoop(); });
}

void ShardedDataset::prefetchLoop() {
  std::unique_lock<std::mutex> L(PfMutex);
  for (;;) {
    PfWake.wait(L, [&] { return PfShutdown || PfWant != kNoShard; });
    if (PfShutdown)
      return;
    size_t Idx = PfWant;
    PfWant = kNoShard;
    PfInFlight = Idx;
    L.unlock();

    // Off-lock, off-thread: parse shard bytes into graphs. No universe,
    // no cache, no counters — decode failure is published as an empty
    // result, never acted on here (the consumer re-decodes synchronously
    // to produce the canonical fatal diagnostic).
    auto Raw = std::make_shared<std::vector<FileExample>>();
    SplitKind Split = SplitKind::Train;
    uint64_t MetaTargets = 0;
    std::string Err;
    bool Ok = readShardFileRaw(Dir + "/" + Shards[Idx].Name, *Raw, &Split,
                               &MetaTargets, &Err);

    L.lock();
    PfInFlight = kNoShard;
    if (!PfShutdown) {
      PfReadyIdx = Idx;
      PfReadyRaw = Ok ? std::move(Raw) : nullptr;
      PfReadySplit = Split;
      PfReadyTargets = MetaTargets;
    }
    PfDone.notify_all();
  }
}

std::shared_ptr<const std::vector<FileExample>>
ShardedDataset::claimPrefetched(size_t Idx) {
  std::shared_ptr<std::vector<FileExample>> Raw;
  SplitKind Split = SplitKind::Train;
  uint64_t MetaTargets = 0;
  {
    std::unique_lock<std::mutex> L(PfMutex);
    if (PfWant == Idx || PfInFlight == Idx) {
      // The needed shard is aimed or mid-decode: waiting beats starting
      // a second decode of the same bytes. The wait is the stall the
      // counters report.
      uint64_t W0 = nowMicros();
      PfDone.wait(L, [&] {
        return PfReadyIdx == Idx ||
               (PfWant != Idx && PfInFlight != Idx);
      });
      PfWaitMicros += nowMicros() - W0;
    }
    if (PfReadyIdx != Idx) {
      if (PfReadyIdx != kNoShard) {
        // A stale slot from a diverged plan: drop it so the double
        // buffer frees up and the residency bound holds.
        PfReadyIdx = kNoShard;
        PfReadyRaw.reset();
      }
      return nullptr;
    }
    Raw = std::move(PfReadyRaw);
    Split = PfReadySplit;
    MetaTargets = PfReadyTargets;
    PfReadyIdx = kNoShard;
    PfReadyRaw.reset();
  }
  if (!Raw)
    return nullptr; // raw decode failed; sync path re-diagnoses fatally
  std::string Err;
  if (Split != Shards[Idx].Split || Raw->size() != Shards[Idx].Files ||
      !resolveShardTargets(*Raw, *U, MetaTargets, &Err))
    return nullptr; // ditto: damage goes through the canonical fatal path
  return Raw;
}

void ShardedDataset::aimPrefetch(size_t Idx) {
  if (Idx == PfLastAccess)
    return; // still inside the same shard; the aim is already current
  PfLastAccess = Idx;

  auto IsResident = [&](size_t Q) {
    for (const CacheEntry &E : Cache)
      if (E.Idx == Q)
        return true;
    return false;
  };

  size_t Target = kNoShard;
  bool Planned = false;
  if (!PlanSeq.empty()) {
    // Advance to the consumer's position; a consumer that follows the
    // plan moves at most one entry per shard transition, so this scan
    // is O(1) amortized.
    size_t P = PlanPos;
    while (P < PlanSeq.size() && PlanSeq[P] != Idx)
      ++P;
    if (P < PlanSeq.size()) {
      PlanPos = P;
      Planned = true;
      for (size_t Q = P + 1; Q < PlanSeq.size(); ++Q)
        if (!IsResident(PlanSeq[Q])) {
          Target = PlanSeq[Q];
          break;
        }
    } else {
      // The consumer diverged (a different source is streaming now);
      // drop the plan and fall back to the monotone heuristic.
      PlanSeq.clear();
      PlanPos = 0;
    }
  }
  if (!Planned)
    // No plan: manifest order is split-contiguous, so every sequential
    // consumer (τmap fill, evaluation sweeps, predict) walks shard
    // indices monotonically — decode ahead of that walk.
    for (size_t Q = Idx + 1; Q < Shards.size(); ++Q)
      if (!IsResident(Q)) {
        Target = Q;
        break;
      }
  if (Target != kNoShard)
    aimPrefetchAt(Target);
}

void ShardedDataset::aimPrefetchAt(size_t Target) {
  std::lock_guard<std::mutex> L(PfMutex);
  if (PfWant == Target || PfInFlight == Target || PfReadyIdx == Target)
    return; // already on its way
  if (PfInFlight != kNoShard || PfReadyIdx != kNoShard)
    return; // double buffer full: at most one speculative shard alive
  PfWant = Target;
  PfWake.notify_one();
}

void ShardedDataset::setPrefetchPlan(std::vector<size_t> Seq) {
  PlanSeq = std::move(Seq);
  PlanPos = 0;
  PfLastAccess = kNoShard;
  if (!PfOn || PlanSeq.empty())
    return;
  // Warm the buffer with the epoch's first non-resident shard so the
  // very first batch never waits on a cold decode.
  for (size_t Q : PlanSeq) {
    bool Resident = false;
    for (const CacheEntry &E : Cache)
      if (E.Idx == Q) {
        Resident = true;
        break;
      }
    if (!Resident) {
      aimPrefetchAt(Q);
      break;
    }
  }
}

ExampleSource &ShardedDataset::split(SplitKind S) {
  return *Splits[static_cast<int>(S)];
}

std::unique_ptr<ShardedDataset>
ShardedDataset::open(const std::string &Dir, TypeUniverse &U,
                     const ShardedDatasetOptions &Opts, std::string *Err) {
  if (Err)
    Err->clear();
  ArchiveReader R;
  if (!R.openFile(Dir + "/" + kShardManifestName, Err, kShardMagic))
    return nullptr;
  if (R.formatVersion() != kShardFormatVersion) {
    if (Err)
      *Err = "shard-set format version " + std::to_string(R.formatVersion()) +
             "; this build reads version " + std::to_string(kShardFormatVersion);
    return nullptr;
  }
  auto Fail = [&](const char *Why) -> std::unique_ptr<ShardedDataset> {
    if (Err && Err->empty())
      *Err = std::string("malformed shard manifest: ") + Why;
    return nullptr;
  };

  std::unique_ptr<ShardedDataset> DS(new ShardedDataset());
  DS->Dir = Dir;
  DS->U = &U;
  DS->Opts = Opts;

  ArchiveCursor MC = R.chunk("mset", Err);
  DS->CommonThreshold = MC.readI32();
  uint64_t NumShards = MC.readU64();
  for (size_t &F : DS->Files)
    F = static_cast<size_t>(MC.readU64());
  for (size_t &T : DS->Targets)
    T = static_cast<size_t>(MC.readU64());
  if (!MC.atEnd())
    return Fail("settings chunk");

  ArchiveCursor SC = R.chunk("shrd", Err);
  uint64_t N = SC.readU64();
  if (!SC.ok() || N != NumShards || N > SC.remaining())
    return Fail("shard table size");
  uint64_t Files[kNumSplits] = {}, Targets[kNumSplits] = {};
  DS->Shards.reserve(static_cast<size_t>(N));
  for (uint64_t I = 0; I != N; ++I) {
    ShardInfo SI;
    SI.Name = SC.readStr();
    uint8_t Split = SC.readU8();
    SI.Files = static_cast<size_t>(SC.readU64());
    SI.Targets = static_cast<size_t>(SC.readU64());
    if (!SC.ok() || Split >= kNumSplits || SI.Name.empty() ||
        SI.Name.find('/') != std::string::npos)
      return Fail("shard table entry");
    SI.Split = static_cast<SplitKind>(Split);
    Files[Split] += SI.Files;
    Targets[Split] += SI.Targets;
    DS->Shards.push_back(std::move(SI));
  }
  for (int S = 0; S != kNumSplits; ++S)
    if (Files[S] != DS->Files[S] || Targets[S] != DS->Targets[S])
      return Fail("per-split totals disagree with the shard table");

  ArchiveCursor TC = R.chunk("tcnt", Err);
  uint64_t NumTypes = TC.readU64();
  if (!TC.ok() || NumTypes > TC.remaining())
    return Fail("type-count table size");
  for (uint64_t I = 0; I != NumTypes; ++I) {
    std::string Repr = TC.readStr();
    int64_t Count = TC.readI64();
    if (!TC.ok() || Count < 0)
      return Fail("type-count entry");
    TypeRef T = U.parse(Repr);
    if (!T)
      return Fail("unparsable type in the count table");
    DS->TrainCounts[T] += static_cast<int>(Count);
  }

  for (int S = 0; S != kNumSplits; ++S)
    DS->Splits[S] =
        std::make_unique<SplitSource>(*DS, static_cast<SplitKind>(S));
  DS->TrainValidSrc = std::make_unique<ConcatExampleSource>(
      std::vector<ExampleSource *>{DS->Splits[0].get(), DS->Splits[1].get()});
  if (Opts.Prefetch)
    DS->startPrefetcher();
  return DS;
}
