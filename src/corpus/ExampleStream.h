//===- corpus/ExampleStream.h - Streaming example access ----------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming abstraction every corpus consumer (training loop, τmap
/// construction, evaluation sweeps) iterates instead of a concrete
/// `std::vector<FileExample>`: an `ExampleSource` hands out borrowed
/// examples one index at a time, and an `ExamplePin` keeps the storage
/// behind each borrow alive — for in-memory vectors the pin is a no-op,
/// for `ShardedDataset` it holds the decoded shard so the LRU cache may
/// evict freely without invalidating in-flight batches.
///
/// The in-memory adapters below make a plain `Dataset` behave as one
/// implicit shard, so every consumer refactored onto `ExampleSource` is
/// bit-identical to its historical vector-based behavior.
///
/// Sources are not thread-safe: one thread drives `get`, then fans the
/// pinned examples out to the pool (the pins, being shared ownership,
/// keep them valid for the duration).
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORPUS_EXAMPLESTREAM_H
#define TYPILUS_CORPUS_EXAMPLESTREAM_H

#include "models/Example.h"
#include "support/Rng.h"

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

namespace typilus {

/// Shared ownership of whatever storage backs a borrowed FileExample.
/// Reset (or destroy) the pin once the example is no longer referenced.
struct ExamplePin {
  std::shared_ptr<const void> Keep;
  void reset() { Keep.reset(); }
};

/// A randomly addressable, bounded-residency stream of FileExamples.
class ExampleSource {
public:
  virtual ~ExampleSource() = default;

  /// Number of examples (files) in the stream.
  virtual size_t size() const = 0;

  /// Total prediction targets across the stream — known from metadata
  /// without decoding (feeds e.g. TypeMap::reserve).
  virtual size_t numTargets() const = 0;

  /// Borrows example \p I; \p Pin keeps its backing storage alive until
  /// reset. The reference is valid for the pin's lifetime.
  virtual const FileExample &get(size_t I, ExamplePin &Pin) = 0;

  /// Shuffles one epoch's visitation order in place with \p R.
  ///
  /// The base behavior — used by every in-memory source, which is one
  /// implicit shard — is a global Fisher-Yates over the existing order,
  /// exactly the historical training shuffle; it is independent of any
  /// shard layout, which is what makes sharded training bit-identical to
  /// in-memory training. Sharded sources additionally honour
  /// \p ShardAware = true by shuffling the shard visitation order first
  /// and then within each shard, trading the global-shuffle contract for
  /// one-decode-per-shard-per-epoch cache behavior (still deterministic
  /// in \p R, run to run).
  virtual void shuffleEpochOrder(std::vector<int> &Order, Rng &R,
                                 bool ShardAware) {
    (void)ShardAware; // one implicit shard: within-shard == global
    R.shuffle(Order);
  }

  /// Announces the upcoming visitation order starting at \p Begin so a
  /// backing store may decode ahead of demand. Purely advisory: sources
  /// with no decode cost (every in-memory adapter) ignore it, and the
  /// stream's observable behavior — bytes, digests, intern order — is
  /// identical whether or not it is called. `Trainer::run` announces
  /// each epoch's order (and the resume cursor) here; sequential
  /// consumers like the τmap fill need no plan, the sharded source
  /// prefetches ahead of a monotone walk on its own.
  virtual void planPrefetch(const std::vector<int> &Order, size_t Begin) {
    (void)Order;
    (void)Begin;
  }
};

/// One implicit shard over a borrowed `std::vector<FileExample>` — the
/// adapter the in-memory `Dataset` splits stream through.
class VectorExampleSource : public ExampleSource {
public:
  explicit VectorExampleSource(const std::vector<FileExample> &Files)
      : Files(Files) {
    for (const FileExample &F : Files)
      Targets += F.Targets.size();
  }

  size_t size() const override { return Files.size(); }
  size_t numTargets() const override { return Targets; }
  const FileExample &get(size_t I, ExamplePin &Pin) override {
    Pin.reset(); // vector storage outlives the source; nothing to hold
    return Files[I];
  }

private:
  const std::vector<FileExample> &Files;
  size_t Targets = 0;
};

/// Same adapter over a vector of borrowed pointers (the historical
/// τmap-construction calling convention).
class PtrExampleSource : public ExampleSource {
public:
  explicit PtrExampleSource(const std::vector<const FileExample *> &Files)
      : Files(Files) {
    for (const FileExample *F : Files)
      Targets += F->Targets.size();
  }

  size_t size() const override { return Files.size(); }
  size_t numTargets() const override { return Targets; }
  const FileExample &get(size_t I, ExamplePin &Pin) override {
    Pin.reset();
    return *Files[I];
  }

private:
  const std::vector<const FileExample *> &Files;
  size_t Targets = 0;
};

/// Concatenation of borrowed sources, in order — e.g. train followed by
/// valid for the paper's τmap (Sec. 7).
class ConcatExampleSource : public ExampleSource {
public:
  explicit ConcatExampleSource(std::vector<ExampleSource *> Parts)
      : Parts(std::move(Parts)) {}

  size_t size() const override {
    size_t N = 0;
    for (ExampleSource *S : Parts)
      N += S->size();
    return N;
  }
  size_t numTargets() const override {
    size_t N = 0;
    for (ExampleSource *S : Parts)
      N += S->numTargets();
    return N;
  }
  const FileExample &get(size_t I, ExamplePin &Pin) override {
    for (ExampleSource *S : Parts) {
      if (I < S->size())
        return S->get(I, Pin);
      I -= S->size();
    }
    assert(false && "ConcatExampleSource index out of range");
    return Parts.front()->get(0, Pin); // unreachable under the contract
  }

private:
  std::vector<ExampleSource *> Parts;
};

} // namespace typilus

#endif // TYPILUS_CORPUS_EXAMPLESTREAM_H
