//===- corpus/ShardWriter.h - Corpus shard format & writer --------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk corpus shard format and its writer. A shard set is a
/// directory of "TYPS" archives (the PR-3 chunked container under a
/// shard-specific magic):
///
///   manifest.typs      directory: shard table, per-split totals, the
///                      merged train-annotation type counts, and any
///                      caller chunks (the CLI stores its corpus recipe)
///   shard-NNNNN.typs   one deterministic chunk of preprocessed files
///
/// Each shard carries, per chunk with its own CRC32:
///
///   "smet"   split assignment + file/target counts (cross-checked
///            against the manifest and the decoded payload on read)
///   "exmp"   the serialized FileExamples: path + full program graph
///            (nodes, edges, supernodes incl. annotation text)
///   "tcnt"   this shard's ground-truth type histogram — the sidecar
///            the writer merges into the manifest's global
///            TrainTypeCounts for train shards
///
/// Prediction targets are deliberately NOT serialized: decoding re-runs
/// `resolveTargets` over the supernode annotations, the exact code path
/// `buildExample` uses, so a decoded example is bit-identical to a
/// freshly built one and types intern through the reader's universe.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORPUS_SHARDWRITER_H
#define TYPILUS_CORPUS_SHARDWRITER_H

#include "corpus/Dataset.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace typilus {

/// Payload format version of corpus shards and their manifest. Bump when
/// the meaning of any chunk changes; readers reject other versions.
inline constexpr uint32_t kShardFormatVersion = 1;

/// The archive magic of shard-set files (model artifacts use "TYPA").
inline constexpr const char *kShardMagic = "TYPS";

/// File name of the shard-set directory's manifest.
inline constexpr const char *kShardManifestName = "manifest.typs";

/// Which dataset split a shard belongs to. Values are serialized.
enum class SplitKind : uint8_t { Train = 0, Valid = 1, Test = 2 };

inline constexpr int kNumSplits = 3;

/// Returns "train" / "valid" / "test".
const char *splitKindName(SplitKind S);

/// Serializes \p Ex (path + graph; targets are re-derived on read) into
/// the open chunk.
void writeFileExample(ArchiveWriter &W, const FileExample &Ex);

/// Reads one example's path + graph written by writeFileExample without
/// touching any type universe (`Ex.Targets` stays empty — run
/// `resolveTargets` to fill it). This is the half of decoding the
/// background prefetcher may run off-thread. \returns false and sets
/// \p Err on malformed input.
bool readFileExampleGraph(ArchiveCursor &C, FileExample &Ex,
                          std::string *Err);

/// Reads one example written by writeFileExample and resolves its
/// targets into \p U. \returns false and sets \p Err on malformed input.
bool readFileExample(ArchiveCursor &C, TypeUniverse &U, FileExample &Ex,
                     std::string *Err);

/// Sharded-build knobs.
struct ShardBuildOptions {
  std::string Dir;        ///< Output directory (created if missing).
  int FilesPerShard = 32; ///< Files per shard; the residency granule.
  /// Ways of parallelism for chunk building: 0 leaves the process-wide
  /// pool at its current size, N > 0 sizes it to N for the build (and
  /// restores it). Output bytes are identical for every value.
  int NumThreads = 0;
  /// When set, appends caller chunks to the manifest (the CLI stores the
  /// corpus recipe here so `train --shards` artifacts keep the recipe).
  std::function<void(ArchiveWriter &)> ManifestExtra;
};

/// What a shard build did — dedup, rejects and output shape — for the
/// CLI's ingestion report and the corpus-stats bench.
struct ShardBuildStats {
  size_t FilesIn = 0;      ///< Corpus files offered to the builder.
  size_t DedupDropped = 0; ///< Near-duplicates removed before the split.
  size_t FilesSharded = 0; ///< Files written into shards.
  size_t ShardsWritten = 0;
};

/// One shard serialized in memory, ready to be committed to disk. Built
/// concurrently by the parallel shard builder; committing stays strictly
/// sequential so shard numbering and manifest order are scheduling-free.
struct EncodedShard {
  EncodedShard();
  ArchiveWriter W; ///< The finished "TYPS" archive.
  SplitKind Split = SplitKind::Train;
  uint64_t Files = 0;
  uint64_t Targets = 0;
  /// This shard's ground-truth histogram (the "tcnt" sidecar), keyed by
  /// canonical type repr — merged into the manifest on commit.
  std::map<std::string, int64_t> Counts;
};

/// Serializes \p Examples as one shard archive of \p Split. Pure: no
/// I/O, no shared state — safe to run on any thread, and the bytes
/// depend only on the examples (types are spelled canonically, never by
/// universe identity).
EncodedShard encodeShard(SplitKind Split,
                         const std::vector<FileExample> &Examples);

/// Writes one shard set: feed it example chunks split by split, then
/// finish() the manifest. Chunks become shards in call order, which is
/// the stream order readers see.
class ShardWriter {
public:
  explicit ShardWriter(std::string Dir);

  /// Writes \p Examples as the next shard of \p Split and merges its
  /// type-count sidecar into the global train histogram when \p Split is
  /// Train. \returns false and sets \p Err on I/O failure.
  bool addShard(SplitKind Split, const std::vector<FileExample> &Examples,
                std::string *Err);

  /// Flushes an already-encoded shard as the next shard on disk and
  /// merges its sidecar. The commit order defines shard numbering, so
  /// parallel builders must call this in plan order.
  bool commit(const EncodedShard &E, std::string *Err);

  /// Writes manifest.typs. \p Extra, when non-null, may append caller
  /// chunks (e.g. the CLI's corpus recipe) before the file is flushed.
  bool finish(int CommonThreshold,
              const std::function<void(ArchiveWriter &)> &Extra,
              std::string *Err);

  size_t numShards() const { return Shards.size(); }

private:
  struct ShardInfo {
    std::string Name;
    SplitKind Split = SplitKind::Train;
    uint64_t Files = 0;
    uint64_t Targets = 0;
  };

  std::string Dir;
  std::vector<ShardInfo> Shards;
  /// Merged train-annotation histogram, keyed by canonical type repr
  /// (std::map: deterministic serialization order).
  std::map<std::string, int64_t> TrainTypeCounts;
};

/// The sharded twin of buildDataset: identical dedup, shuffle and
/// 70/10/20 split (same RNG consumption, so the file-to-split assignment
/// matches buildDataset bit for bit), but examples are built in
/// deterministic FilesPerShard-sized chunks and written to disk as they
/// are produced — peak residency is one wave of chunks, not the corpus.
/// Chunk boundaries are fixed up front from the split plan; waves of
/// chunks parse/graph-ize/encode data-parallel through the thread pool
/// and commit in shard order, so every file on disk is bit-identical to
/// the serial build for any `NumThreads`. \p Hierarchy (if non-null)
/// learns the UDT classes, as in buildDataset. \p Stats (if non-null)
/// receives the build report.
bool buildShards(const std::vector<CorpusFile> &Files,
                 const std::vector<UdtSpec> &Udts, TypeUniverse &U,
                 TypeHierarchy *Hierarchy, const DatasetConfig &Config,
                 const ShardBuildOptions &Opts, std::string *Err,
                 ShardBuildStats *Stats = nullptr);

} // namespace typilus

#endif // TYPILUS_CORPUS_SHARDWRITER_H
