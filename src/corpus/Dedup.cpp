//===- corpus/Dedup.cpp - Near-duplicate detection -----------------------------===//

#include "corpus/Dedup.h"

#include "pyfront/Lexer.h"

#include <algorithm>
#include <set>

using namespace typilus;

namespace {

/// Sorted unique 3-token shingle hashes of one file.
std::vector<uint64_t> shingleSet(const CorpusFile &F) {
  std::vector<Diagnostic> Diags;
  std::vector<Token> Toks = lexSource(F.Source, Diags);
  std::vector<uint64_t> Hashes;
  uint64_t H1 = 0, H2 = 0;
  auto HashText = [](const Token &T) {
    uint64_t H = 1469598103934665603ull;
    for (char C : T.Text)
      H = (H ^ static_cast<unsigned char>(C)) * 1099511628211ull;
    return H ^ (static_cast<uint64_t>(T.Kind) << 56);
  };
  size_t Count = 0;
  for (const Token &T : Toks) {
    if (T.Kind == TokKind::Newline || T.Kind == TokKind::Indent ||
        T.Kind == TokKind::Dedent || T.Kind == TokKind::Eof)
      continue;
    uint64_t H0 = HashText(T);
    if (Count >= 2)
      Hashes.push_back(H2 * 0x9E3779B97F4A7C15ull + H1 * 31 + H0);
    H2 = H1;
    H1 = H0;
    ++Count;
  }
  std::sort(Hashes.begin(), Hashes.end());
  Hashes.erase(std::unique(Hashes.begin(), Hashes.end()), Hashes.end());
  return Hashes;
}

double jaccard(const std::vector<uint64_t> &A,
               const std::vector<uint64_t> &B) {
  if (A.empty() && B.empty())
    return 1.0;
  size_t Inter = 0, I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] == B[J]) {
      ++Inter;
      ++I;
      ++J;
    } else if (A[I] < B[J]) {
      ++I;
    } else {
      ++J;
    }
  }
  size_t Uni = A.size() + B.size() - Inter;
  return Uni == 0 ? 1.0 : static_cast<double>(Inter) / static_cast<double>(Uni);
}

} // namespace

std::vector<size_t>
typilus::findNearDuplicates(const std::vector<CorpusFile> &Files,
                            double Threshold) {
  std::vector<std::vector<uint64_t>> Shingles;
  Shingles.reserve(Files.size());
  for (const CorpusFile &F : Files)
    Shingles.push_back(shingleSet(F));

  std::vector<size_t> Drop;
  std::vector<char> Dropped(Files.size(), 0);
  for (size_t I = 0; I != Files.size(); ++I) {
    if (Dropped[I])
      continue;
    for (size_t J = I + 1; J != Files.size(); ++J) {
      if (Dropped[J])
        continue;
      // Size-ratio pruning: Jaccard is bounded by min/max set size.
      double SizeA = static_cast<double>(Shingles[I].size());
      double SizeB = static_cast<double>(Shingles[J].size());
      if (std::min(SizeA, SizeB) <
          Threshold * std::max(SizeA, SizeB))
        continue;
      if (jaccard(Shingles[I], Shingles[J]) >= Threshold) {
        Dropped[J] = 1;
        Drop.push_back(J);
      }
    }
  }
  std::sort(Drop.begin(), Drop.end());
  return Drop;
}
