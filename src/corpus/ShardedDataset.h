//===- corpus/ShardedDataset.h - Streaming shard reader -----------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reading half of the sharded corpus pipeline (format in
/// corpus/ShardWriter.h): opens a shard-set directory, exposes each
/// split as an `ExampleSource`, and bounds decoded-example residency
/// with an LRU cache of `MaxResidentShards` shards. Examples borrowed
/// through an `ExamplePin` stay valid across evictions — the pin shares
/// ownership of its decoded shard — so consumers may hold a minibatch
/// while streaming past it.
///
/// Determinism contract: a decoded example is bit-identical to the
/// freshly built one (graphs round-trip exactly; targets re-resolve
/// through the same `resolveTargets` path), stream order is manifest
/// order, and the default epoch shuffle is the same global Fisher-Yates
/// the in-memory path uses — so training, τmap construction and
/// prediction over shards are bit-identical to the in-memory `Dataset`
/// for any shard size, thread count and residency bound (pinned by
/// tests/ShardTest.cpp). The opt-in shard-aware shuffle (see
/// `ExampleSource::shuffleEpochOrder`) keeps epochs at one decode per
/// shard instead, still bit-identical run to run.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORPUS_SHARDEDDATASET_H
#define TYPILUS_CORPUS_SHARDEDDATASET_H

#include "corpus/ExampleStream.h"
#include "corpus/ShardWriter.h"

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace typilus {

/// Reads and fully validates one shard file written by ShardWriter:
/// container framing and CRCs, format version, split metadata, payload
/// decode and the target-count cross-check. Ground truths intern into
/// \p U. \returns false and sets \p Err on any damage; \p SplitOut (if
/// non-null) receives the shard's split assignment.
bool readShardFile(const std::string &Path, TypeUniverse &U,
                   std::vector<FileExample> &Out, SplitKind *SplitOut,
                   std::string *Err);

/// Reader knobs.
struct ShardedDatasetOptions {
  /// Decoded shards kept resident at once (the peak-RAM knob). Pinned
  /// shards stay alive beyond this bound until their pins drop.
  int MaxResidentShards = 4;
  /// Background-decode the next shard the consumer will need (one
  /// double-buffer slot on top of MaxResidentShards). Purely a latency
  /// knob: every byte, digest and type-intern order is identical on or
  /// off — the worker only parses graphs; target resolution (the part
  /// that touches the universe) always runs on the consumer thread at
  /// claim time, in demand order.
  bool Prefetch = true;
};

/// A shard set opened for streaming.
class ShardedDataset {
public:
  /// Opens \p Dir's manifest and validates it. Ground-truth types intern
  /// into \p U, which must outlive the dataset. \returns null and sets
  /// \p Err on missing/corrupt/version-mismatched manifests.
  static std::unique_ptr<ShardedDataset>
  open(const std::string &Dir, TypeUniverse &U,
       const ShardedDatasetOptions &Opts, std::string *Err);
  static std::unique_ptr<ShardedDataset> open(const std::string &Dir,
                                              TypeUniverse &U,
                                              std::string *Err) {
    return open(Dir, U, ShardedDatasetOptions{}, Err);
  }

  ~ShardedDataset(); // out of line: SplitSource is an implementation detail

  /// The streaming view of one split. The source borrows this dataset.
  ExampleSource &split(SplitKind S);

  /// Train followed by valid — the paper's τmap population (Sec. 7).
  ExampleSource &trainValid() { return *TrainValidSrc; }

  size_t numFiles(SplitKind S) const {
    return Files[static_cast<int>(S)];
  }
  size_t numTargets(SplitKind S) const {
    return Targets[static_cast<int>(S)];
  }

  /// The merged train-annotation histogram from the manifest, re-interned
  /// into the reader's universe (mirrors Dataset::TrainTypeCounts).
  const std::map<TypeRef, int> &trainTypeCounts() const {
    return TrainCounts;
  }
  int commonThreshold() const { return CommonThreshold; }
  bool isRare(TypeRef T) const {
    auto It = TrainCounts.find(T);
    return (It == TrainCounts.end() ? 0 : It->second) < CommonThreshold;
  }

  /// Observability for tests and the bench: shards decoded so far
  /// (counting re-decodes after eviction) and currently cached. A
  /// prefetched shard counts when the consumer claims it, so the decode
  /// count is demand-driven and prefetch-independent.
  size_t decodeCount() const { return Decodes; }
  size_t residentShards() const { return Cache.size(); }

  /// Prefetch observability (consumer-thread values). A "hit" is a
  /// non-resident shard served from the prefetcher (possibly after
  /// waiting for it — the wait is in prefetchWaitMicros); a "miss" is
  /// one the consumer had to decode synchronously. decodeStallMicros is
  /// the total consumer time spent obtaining non-resident shards —
  /// sync decodes, prefetch waits and claim-time target resolution —
  /// i.e. the stall the prefetcher exists to hide.
  bool prefetchEnabled() const { return PfOn; }
  size_t prefetchHits() const { return PfHits; }
  size_t prefetchMisses() const { return PfMisses; }
  uint64_t prefetchWaitMicros() const { return PfWaitMicros; }
  uint64_t decodeStallMicros() const { return StallMicros; }

  /// Announces the global-shard visitation sequence of the upcoming
  /// epoch (consecutive duplicates collapsed). The prefetcher follows
  /// the plan one shard ahead of the consumer; without a plan it decodes
  /// ahead of a monotone walk (manifest order is split-contiguous, so
  /// the τmap fill, evaluation sweeps and `predict` all walk monotonically).
  /// Aims the first planned shard immediately.
  void setPrefetchPlan(std::vector<size_t> Seq);

private:
  struct ShardInfo {
    std::string Name;
    SplitKind Split = SplitKind::Train;
    size_t Files = 0;
    size_t Targets = 0;
  };
  class SplitSource;

  ShardedDataset() = default;

  /// Returns shard \p Idx decoded, serving from / refreshing the LRU.
  /// Decode failures abort: shard damage is an environment error the
  /// streaming API (vector-compatible by design) cannot surface per-get.
  std::shared_ptr<const std::vector<FileExample>> shard(size_t Idx);

  /// Claims shard \p Idx from the prefetcher if it is ready or in
  /// flight, resolving targets on this thread. \returns null on a miss.
  std::shared_ptr<const std::vector<FileExample>> claimPrefetched(size_t Idx);

  /// Re-aims the prefetcher after the consumer obtained shard \p Idx:
  /// the next planned (or, with no plan, next-in-manifest) non-resident
  /// shard, at most one outstanding.
  void aimPrefetch(size_t Idx);
  void aimPrefetchAt(size_t Target); ///< Locks PfMutex; no-op if aimed.
  void startPrefetcher();            ///< Spawns the worker once.
  void prefetchLoop();               ///< The worker thread body.

  std::string Dir;
  TypeUniverse *U = nullptr;
  ShardedDatasetOptions Opts;
  std::vector<ShardInfo> Shards;
  size_t Files[kNumSplits] = {};
  size_t Targets[kNumSplits] = {};
  std::map<TypeRef, int> TrainCounts;
  int CommonThreshold = 10;

  /// LRU of decoded shards, most recent first.
  struct CacheEntry {
    size_t Idx;
    std::shared_ptr<const std::vector<FileExample>> Decoded;
  };
  std::list<CacheEntry> Cache;
  size_t Decodes = 0;

  //===--------------------------------------------------------------===//
  // Prefetcher state.
  //
  // One worker thread, one in-flight decode, one ready slot: a double
  // buffer over the LRU. Everything the worker shares with the consumer
  // (Want/InFlight/Ready*) lives under PfMutex; the LRU, the plan and
  // every counter are consumer-thread-only. The worker parses shard
  // bytes into graphs and nothing else — it never touches the type
  // universe, the cache or a counter, which is what keeps prefetched
  // streams bit-identical to synchronous ones.
  //===--------------------------------------------------------------===//

  bool PfOn = false;          ///< Worker running (Opts.Prefetch && >1 shard).
  std::thread PfThread;
  std::mutex PfMutex;
  std::condition_variable PfWake; ///< Worker waits for Want / shutdown.
  std::condition_variable PfDone; ///< Consumer waits for a publish.
  static constexpr size_t kNoShard = static_cast<size_t>(-1);
  size_t PfWant = kNoShard;     ///< Next shard the worker should decode.
  size_t PfInFlight = kNoShard; ///< Shard the worker is decoding now.
  size_t PfReadyIdx = kNoShard; ///< Published shard (kNoShard = empty slot).
  /// Graphs of the published shard; null with PfReadyIdx set = the raw
  /// decode failed (the consumer re-decodes synchronously for the
  /// canonical fatal diagnostic).
  std::shared_ptr<std::vector<FileExample>> PfReadyRaw;
  SplitKind PfReadySplit = SplitKind::Train;
  uint64_t PfReadyTargets = 0; ///< smet target count of the ready shard.
  bool PfShutdown = false;

  /// Consumer-side epoch plan: global shard indices in visit order.
  std::vector<size_t> PlanSeq;
  size_t PlanPos = 0;
  size_t PfLastAccess = kNoShard; ///< Last shard demanded (aim dedup).

  /// Consumer-side counters (see the public accessors).
  size_t PfHits = 0, PfMisses = 0;
  uint64_t PfWaitMicros = 0, StallMicros = 0;

  std::unique_ptr<SplitSource> Splits[kNumSplits];
  std::unique_ptr<ConcatExampleSource> TrainValidSrc;
};

} // namespace typilus

#endif // TYPILUS_CORPUS_SHARDEDDATASET_H
