//===- corpus/ShardedDataset.h - Streaming shard reader -----------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reading half of the sharded corpus pipeline (format in
/// corpus/ShardWriter.h): opens a shard-set directory, exposes each
/// split as an `ExampleSource`, and bounds decoded-example residency
/// with an LRU cache of `MaxResidentShards` shards. Examples borrowed
/// through an `ExamplePin` stay valid across evictions — the pin shares
/// ownership of its decoded shard — so consumers may hold a minibatch
/// while streaming past it.
///
/// Determinism contract: a decoded example is bit-identical to the
/// freshly built one (graphs round-trip exactly; targets re-resolve
/// through the same `resolveTargets` path), stream order is manifest
/// order, and the default epoch shuffle is the same global Fisher-Yates
/// the in-memory path uses — so training, τmap construction and
/// prediction over shards are bit-identical to the in-memory `Dataset`
/// for any shard size, thread count and residency bound (pinned by
/// tests/ShardTest.cpp). The opt-in shard-aware shuffle (see
/// `ExampleSource::shuffleEpochOrder`) keeps epochs at one decode per
/// shard instead, still bit-identical run to run.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORPUS_SHARDEDDATASET_H
#define TYPILUS_CORPUS_SHARDEDDATASET_H

#include "corpus/ExampleStream.h"
#include "corpus/ShardWriter.h"

#include <list>
#include <memory>

namespace typilus {

/// Reads and fully validates one shard file written by ShardWriter:
/// container framing and CRCs, format version, split metadata, payload
/// decode and the target-count cross-check. Ground truths intern into
/// \p U. \returns false and sets \p Err on any damage; \p SplitOut (if
/// non-null) receives the shard's split assignment.
bool readShardFile(const std::string &Path, TypeUniverse &U,
                   std::vector<FileExample> &Out, SplitKind *SplitOut,
                   std::string *Err);

/// Reader knobs.
struct ShardedDatasetOptions {
  /// Decoded shards kept resident at once (the peak-RAM knob). Pinned
  /// shards stay alive beyond this bound until their pins drop.
  int MaxResidentShards = 4;
};

/// A shard set opened for streaming.
class ShardedDataset {
public:
  /// Opens \p Dir's manifest and validates it. Ground-truth types intern
  /// into \p U, which must outlive the dataset. \returns null and sets
  /// \p Err on missing/corrupt/version-mismatched manifests.
  static std::unique_ptr<ShardedDataset>
  open(const std::string &Dir, TypeUniverse &U,
       const ShardedDatasetOptions &Opts, std::string *Err);
  static std::unique_ptr<ShardedDataset> open(const std::string &Dir,
                                              TypeUniverse &U,
                                              std::string *Err) {
    return open(Dir, U, ShardedDatasetOptions{}, Err);
  }

  ~ShardedDataset(); // out of line: SplitSource is an implementation detail

  /// The streaming view of one split. The source borrows this dataset.
  ExampleSource &split(SplitKind S);

  /// Train followed by valid — the paper's τmap population (Sec. 7).
  ExampleSource &trainValid() { return *TrainValidSrc; }

  size_t numFiles(SplitKind S) const {
    return Files[static_cast<int>(S)];
  }
  size_t numTargets(SplitKind S) const {
    return Targets[static_cast<int>(S)];
  }

  /// The merged train-annotation histogram from the manifest, re-interned
  /// into the reader's universe (mirrors Dataset::TrainTypeCounts).
  const std::map<TypeRef, int> &trainTypeCounts() const {
    return TrainCounts;
  }
  int commonThreshold() const { return CommonThreshold; }
  bool isRare(TypeRef T) const {
    auto It = TrainCounts.find(T);
    return (It == TrainCounts.end() ? 0 : It->second) < CommonThreshold;
  }

  /// Observability for tests and the bench: shards decoded so far
  /// (counting re-decodes after eviction) and currently cached.
  size_t decodeCount() const { return Decodes; }
  size_t residentShards() const { return Cache.size(); }

private:
  struct ShardInfo {
    std::string Name;
    SplitKind Split = SplitKind::Train;
    size_t Files = 0;
    size_t Targets = 0;
  };
  class SplitSource;

  ShardedDataset() = default;

  /// Returns shard \p Idx decoded, serving from / refreshing the LRU.
  /// Decode failures abort: shard damage is an environment error the
  /// streaming API (vector-compatible by design) cannot surface per-get.
  std::shared_ptr<const std::vector<FileExample>> shard(size_t Idx);

  std::string Dir;
  TypeUniverse *U = nullptr;
  ShardedDatasetOptions Opts;
  std::vector<ShardInfo> Shards;
  size_t Files[kNumSplits] = {};
  size_t Targets[kNumSplits] = {};
  std::map<TypeRef, int> TrainCounts;
  int CommonThreshold = 10;

  /// LRU of decoded shards, most recent first.
  struct CacheEntry {
    size_t Idx;
    std::shared_ptr<const std::vector<FileExample>> Decoded;
  };
  std::list<CacheEntry> Cache;
  size_t Decodes = 0;

  std::unique_ptr<SplitSource> Splits[kNumSplits];
  std::unique_ptr<ConcatExampleSource> TrainValidSrc;
};

} // namespace typilus

#endif // TYPILUS_CORPUS_SHARDEDDATASET_H
