//===- corpus/Dedup.h - Near-duplicate detection -------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token-shingle near-duplicate detection, standing in for the dedup tool
/// of Allamanis [2019] that the paper applies before splitting (Sec. 6:
/// failing to remove clones "would significantly bias our results").
/// Files are lexed, 3-token shingles hashed, and pairs above a Jaccard
/// threshold are clustered; one exemplar per cluster is kept.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORPUS_DEDUP_H
#define TYPILUS_CORPUS_DEDUP_H

#include "corpus/Generator.h"

#include <cstddef>
#include <vector>

namespace typilus {

/// Returns the indices of files to *drop*: for each cluster of
/// near-duplicates (pairwise token-shingle Jaccard >= \p Threshold), every
/// member except the first is dropped. Comments are ignored by
/// construction (the lexer strips them).
std::vector<size_t> findNearDuplicates(const std::vector<CorpusFile> &Files,
                                       double Threshold = 0.8);

} // namespace typilus

#endif // TYPILUS_CORPUS_DEDUP_H
