//===- corpus/Generator.cpp - Synthetic Python corpus -------------------------===//

#include "corpus/Generator.h"

#include "support/Str.h"
#include "support/Zipf.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <functional>

using namespace typilus;

/// A "type profile": a concrete type plus the naming and usage idioms that
/// correlate with it in real code.
struct CorpusGenerator::Profile {
  std::string TypeText;
  std::vector<std::string> Stems;    ///< Type-indicative variable names.
  std::vector<std::string> Literals; ///< Initializer expressions.
  /// Usage statement templates; "{v}" is the variable, a leading '>' adds
  /// one indentation level to that line.
  std::vector<std::vector<std::string>> Uses;
  bool IsUdt = false;
  int UdtIndex = -1;
};

namespace {

/// Generic names used when name noise strikes.
const std::vector<std::string> NoiseNames = {
    "value", "tmp",  "data", "result", "item", "obj",
    "thing", "aux",  "val",  "x",      "y",    "z",
};

std::string snakeCase(const std::string &CamelName) {
  std::string Out;
  for (size_t I = 0; I != CamelName.size(); ++I) {
    char C = CamelName[I];
    if (std::isupper(static_cast<unsigned char>(C)) && I != 0)
      Out.push_back('_');
    Out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(C))));
  }
  return Out;
}

std::string replaceAll(std::string Text, const std::string &From,
                       const std::string &To) {
  size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Text;
}

/// Indentation-aware source emitter.
class Emitter {
public:
  void line(const std::string &Text) {
    for (int I = 0; I != Indent; ++I)
      Out += "    ";
    Out += Text;
    Out += '\n';
  }
  void blank() { Out += '\n'; }
  void indent() { ++Indent; }
  void dedent() { --Indent; }

  /// Emits a template statement: '>' prefixes add indent for that line.
  void stmt(const std::vector<std::string> &Template, const std::string &Var) {
    for (const std::string &Raw : Template) {
      std::string L = Raw;
      int Extra = 0;
      while (!L.empty() && L[0] == '>') {
        ++Extra;
        L.erase(L.begin());
      }
      Indent += Extra;
      line(replaceAll(L, "{v}", Var));
      Indent -= Extra;
    }
  }

  std::string str() const { return Out; }

private:
  std::string Out;
  int Indent = 0;
};

} // namespace

CorpusGenerator::~CorpusGenerator() = default;

CorpusGenerator::CorpusGenerator(const CorpusConfig &C) : Config(C) {
  makeBuiltinProfiles();
  makeUdts();
  // Zipf CDF over all profiles (builtins head, UDT tail).
  ZipfSampler Z(Profiles.size(), Config.ZipfSkew);
  ProfileCdf.resize(Profiles.size());
  double Acc = 0;
  for (size_t I = 0; I != Profiles.size(); ++I) {
    Acc += Z.pmf(I);
    ProfileCdf[I] = Acc;
  }
}

void CorpusGenerator::makeBuiltinProfiles() {
  auto Add = [&](std::string Type, std::vector<std::string> Stems,
                 std::vector<std::string> Lits,
                 std::vector<std::vector<std::string>> Uses) {
    Profile P;
    P.TypeText = std::move(Type);
    P.Stems = std::move(Stems);
    P.Literals = std::move(Lits);
    P.Uses = std::move(Uses);
    Profiles.push_back(std::move(P));
  };

  Add("int",
      {"count", "num_items", "index", "size", "total", "offset", "depth",
       "step_count", "capacity", "retries"},
      {"0", "1", "42", "100"},
      {{"{v} += 1"},
       {"{v} = {v} + 1"},
       {"{v} = {v} * 2"},
       {"if {v} > 0:", ">{v} -= 1"},
       {"while {v} > 0:", ">{v} -= 1"}});
  Add("str",
      {"name", "label", "message", "path", "text", "prefix", "filename",
       "title", "key_name"},
      {"'data'", "'hello'", "''", "'section'"},
      {{"{v} = {v} + '_suffix'"},
       {"{v} = {v}.strip()"},
       {"print({v})"},
       {"if {v}:", ">{v} = {v}.lower()"}});
  Add("float",
      {"ratio", "score", "weight", "alpha", "learning_rate", "scale",
       "mean_value", "threshold"},
      {"0.0", "1.5", "0.25", "100.0"},
      {{"{v} = {v} * 0.5"}, {"{v} += 0.1"}, {"if {v} > 0.5:", ">{v} = 0.0"}});
  Add("bool",
      {"is_valid", "has_items", "done", "enabled", "found", "is_empty",
       "verbose", "should_retry"},
      {"True", "False"},
      {{"{v} = not {v}"}, {"if {v}:", ">pass"}, {"{v} = {v} and True"}});
  Add("List[int]",
      {"counts", "indices", "sizes", "id_list", "offsets"},
      {"[]", "[1, 2, 3]", "[0]"},
      {{"{v}.append(1)"},
       {"for entry in {v}:", ">pass"},
       {"{v} = {v} + [4]"}});
  Add("List[str]",
      {"names", "labels", "words", "lines", "tokens"},
      {"[]", "['a', 'b']"},
      {{"{v}.append('s')"}, {"for entry in {v}:", ">pass"}});
  Add("Dict[str, int]",
      {"counts_by_name", "index_map", "name_to_id", "frequency_table"},
      {"{}", "{'a': 1}"},
      {{"{v}['key'] = 3"}, {"{v} = {v}"}});
  Add("Optional[int]",
      {"maybe_count", "cached_size", "limit", "timeout_override"},
      {"None", "3"},
      {{"if {v} is None:", ">{v} = 0"}});
  Add("Optional[str]",
      {"nickname", "maybe_path", "cached_name", "note"},
      {"None", "'s'"},
      {{"if {v} is None:", ">{v} = ''"}});
  Add("List[float]",
      {"scores", "weights", "ratios", "samples"},
      {"[]", "[0.5, 1.5]"},
      {{"{v}.append(0.5)"}, {"for entry in {v}:", ">pass"}});
  Add("bytes",
      {"raw_data", "payload", "blob", "chunk"},
      {"b''", "b'abc'"},
      {{"{v} = {v} + b'x'"}});
  Add("Set[str]",
      {"seen", "visited_names", "unique_words", "stopwords"},
      {"{'a'}", "{'seed', 'word'}"},
      {{"{v}.add('x')"}, {"for entry in {v}:", ">pass"}});
  Add("Set[int]",
      {"visited", "seen_ids", "open_ports"},
      {"{1}", "{1, 2}"},
      {{"{v}.add(3)"}});
  Add("Tuple[int, int]",
      {"pair", "position", "shape", "coords", "span"},
      {"(0, 0)", "(1, 2)"},
      {{"{v} = {v}"}});
  Add("Dict[str, str]",
      {"aliases", "env_vars", "headers", "replacements"},
      {"{}", "{'k': 'v'}"},
      {{"{v}['name'] = 'v'"}});
  Add("Dict[str, float]",
      {"score_by_name", "weight_map", "price_table"},
      {"{}", "{'a': 0.5}"},
      {{"{v}['key'] = 0.5"}});
  Add("List[List[int]]",
      {"grid", "matrix_rows", "buckets"},
      {"[[1], [2]]", "[[0, 0]]"},
      {{"{v}.append([1])"}});
  Add("Optional[float]",
      {"best_score", "cached_ratio", "override_weight"},
      {"None", "0.5"},
      {{"if {v} is None:", ">{v} = 0.0"}});
  Add("Tuple[str, int]",
      {"entry_pair", "name_and_count", "header_pair"},
      {"('a', 1)", "('k', 0)"},
      {{"{v} = {v}"}});
  Add("List[Tuple[int, int]]",
      {"edges", "ranges", "intervals"},
      {"[(0, 1)]", "[]"},
      {{"{v}.append((1, 2))"}});
}

void CorpusGenerator::makeUdts() {
  static const std::vector<std::string> Heads = {
      "Token",  "Parser", "Config", "Session", "Buffer", "Cache",
      "Node",   "Worker", "Channel", "Layout", "Metric", "Route",
      "Widget", "Schema", "Cursor", "Packet", "Lexer",  "Graph",
      "Tensor", "Index",  "Policy", "Agent",  "Batch",  "Event",
      "Frame",  "Handle", "Job",    "Kernel", "Logger", "Model"};
  static const std::vector<std::string> Prefixes = {
      "",     "Http", "Json", "Async", "Meta", "Base", "User",
      "File", "Net",  "Data", "Sync",  "Mini", "Core", "Temp"};
  // Attribute type pool: indices into the builtin profiles.
  Rng R(Config.Seed ^ 0x0DDB1A5Eull);
  std::vector<std::string> SeenNames;
  for (int I = 0; I != Config.NumUdts; ++I) {
    UdtSpec U;
    // Deterministic unique name.
    do {
      U.Name = Prefixes[R.uniformInt(Prefixes.size())] +
               Heads[R.uniformInt(Heads.size())];
    } while (std::find(SeenNames.begin(), SeenNames.end(), U.Name) !=
             SeenNames.end());
    SeenNames.push_back(U.Name);
    // ~20% of UDTs inherit from an earlier UDT (builds a type hierarchy).
    if (!Udts.empty() && R.flip(0.2))
      U.Base = Udts[R.uniformInt(Udts.size())].Name;

    size_t NumAttrs = 1 + R.uniformInt(3);
    for (size_t A = 0; A != NumAttrs; ++A) {
      const Profile &AP = Profiles[R.uniformInt(Profiles.size())];
      std::string AttrName = AP.Stems[R.uniformInt(AP.Stems.size())];
      bool Dup = false;
      for (const auto &Existing : U.Attrs)
        Dup |= Existing.Name == AttrName;
      if (Dup)
        continue;
      U.Attrs.push_back(UdtSpec::Attr{AttrName, AP.TypeText});
    }
    if (U.Attrs.empty())
      U.Attrs.push_back(UdtSpec::Attr{"tag", "int"});
    // One getter per (up to two) attributes.
    size_t NumMethods = std::min<size_t>(U.Attrs.size(), 2);
    for (size_t M = 0; M != NumMethods; ++M) {
      const auto &A = U.Attrs[M];
      U.Methods.push_back(
          UdtSpec::Method{"get_" + A.Name, A.TypeText, A.Name});
    }
    Udts.push_back(std::move(U));
  }

  // A profile per UDT (the Zipf tail).
  for (size_t I = 0; I != Udts.size(); ++I) {
    const UdtSpec &U = Udts[I];
    Profile P;
    P.TypeText = U.Name;
    P.IsUdt = true;
    P.UdtIndex = static_cast<int>(I);
    std::string Snake = snakeCase(U.Name);
    P.Stems = {Snake, "current_" + Snake, Snake + "_obj"};
    // Constructor call with literal arguments matching __init__. Element
    // types matter: the generated programs must type check cleanly.
    std::function<std::string(const std::string &)> LitFor =
        [&](const std::string &T) -> std::string {
      if (T == "int")
        return "1";
      if (T == "str")
        return "'v'";
      if (T == "float")
        return "0.5";
      if (T == "bool")
        return "True";
      if (T == "bytes")
        return "b'v'";
      if (T.rfind("List", 0) == 0)
        return "[]";
      if (T.rfind("Dict", 0) == 0)
        return "{}";
      if (T == "Set[str]")
        return "{'v'}";
      if (T.rfind("Set", 0) == 0)
        return "{1}";
      if (T.rfind("Tuple[", 0) == 0) {
        // Tuple[A, B, ...]: literal per element type.
        std::string Inner = T.substr(6, T.size() - 7);
        std::string Out = "(";
        size_t Depth = 0, Start = 0;
        for (size_t I = 0; I <= Inner.size(); ++I) {
          if (I == Inner.size() || (Inner[I] == ',' && Depth == 0)) {
            std::string Elt(trim(Inner.substr(Start, I - Start)));
            if (Start != 0)
              Out += ", ";
            Out += LitFor(Elt);
            Start = I + 1;
          } else if (Inner[I] == '[') {
            ++Depth;
          } else if (Inner[I] == ']') {
            --Depth;
          }
        }
        return Out + ")";
      }
      return "None"; // Optional[...] and unknown cases
    };
    std::string Ctor = U.Name + "(";
    for (size_t A = 0; A != U.Attrs.size(); ++A) {
      if (A != 0)
        Ctor += ", ";
      Ctor += LitFor(U.Attrs[A].TypeText);
    }
    Ctor += ")";
    P.Literals = {Ctor};
    for (const auto &M : U.Methods)
      P.Uses.push_back({"{v}." + M.Name + "()"});
    if (P.Uses.empty())
      P.Uses.push_back({"{v} = {v}"});
    Profiles.push_back(std::move(P));
  }
}

const CorpusGenerator::Profile &
CorpusGenerator::sampleProfile(Rng &R) const {
  double Ux = R.uniformReal();
  auto It = std::lower_bound(ProfileCdf.begin(), ProfileCdf.end(), Ux);
  size_t I = It == ProfileCdf.end() ? ProfileCdf.size() - 1
                                    : static_cast<size_t>(It - ProfileCdf.begin());
  return Profiles[I];
}

std::string CorpusGenerator::varName(const Profile &P, Rng &R,
                                     int &NameCounter) const {
  std::string Base;
  if (R.flip(Config.NameNoise))
    Base = NoiseNames[R.uniformInt(NoiseNames.size())];
  else
    Base = P.Stems[R.uniformInt(P.Stems.size())];
  // Suffix to keep names unique within a scope.
  Base += strformat("_%d", NameCounter++);
  return Base;
}

std::string CorpusGenerator::classSource(const UdtSpec &U) const {
  Emitter E;
  if (U.Base.empty())
    E.line("class " + U.Name + ":");
  else
    E.line("class " + U.Name + "(" + U.Base + "):");
  E.indent();
  // __init__ assigning all attributes from annotated parameters.
  std::string Sig = "def __init__(self";
  for (const auto &A : U.Attrs)
    Sig += ", " + A.Name + ": " + A.TypeText;
  Sig += ") -> None:";
  E.line(Sig);
  E.indent();
  for (const auto &A : U.Attrs)
    E.line("self." + A.Name + ": " + A.TypeText + " = " + A.Name);
  E.dedent();
  for (const auto &M : U.Methods) {
    E.line("def " + M.Name + "(self) -> " + M.ReturnTypeText + ":");
    E.indent();
    E.line("return self." + M.ReturnAttr);
    E.dedent();
  }
  E.dedent();
  return E.str();
}

std::string CorpusGenerator::fileSource(int FileIdx, Rng &R) const {
  Emitter E;
  E.line("from typing import Dict, List, Optional, Set, Tuple");

  // Decide which UDTs this file can reference: 0-2 defined locally plus
  // 0-3 imported from the shared project module.
  std::vector<int> LocalUdts, ImportedUdts;
  size_t NumLocal = R.uniformInt(3);
  size_t NumImported = R.uniformInt(4);
  for (size_t I = 0; I != NumLocal && !Udts.empty(); ++I)
    LocalUdts.push_back(static_cast<int>(R.uniformInt(Udts.size())));
  for (size_t I = 0; I != NumImported && !Udts.empty(); ++I) {
    int U = static_cast<int>(R.uniformInt(Udts.size()));
    if (std::find(LocalUdts.begin(), LocalUdts.end(), U) == LocalUdts.end())
      ImportedUdts.push_back(U);
  }
  if (!ImportedUdts.empty()) {
    std::string Imp = "from project.types import ";
    for (size_t I = 0; I != ImportedUdts.size(); ++I) {
      if (I != 0)
        Imp += ", ";
      Imp += Udts[static_cast<size_t>(ImportedUdts[I])].Name;
    }
    E.line(Imp);
  }
  E.blank();
  std::vector<int> Usable = LocalUdts;
  Usable.insert(Usable.end(), ImportedUdts.begin(), ImportedUdts.end());

  for (int U : LocalUdts) {
    // classSource re-emits at indent 0.
    for (const std::string &Line :
         splitChar(classSource(Udts[static_cast<size_t>(U)]), '\n'))
      E.line(Line);
    E.blank();
  }

  // Resolves a Zipf draw to a profile usable in this file: a UDT that is
  // not visible here is substituted by one of the file's visible UDTs, so
  // the global UDT (rare-type) mass is preserved.
  size_t UdtProfileStart = Profiles.size() - Udts.size();
  auto SampleUsable = [&]() -> const Profile & {
    const Profile &P = sampleProfile(R);
    if (!P.IsUdt)
      return P;
    if (std::find(Usable.begin(), Usable.end(), P.UdtIndex) != Usable.end())
      return P;
    if (!Usable.empty())
      return Profiles[UdtProfileStart +
                      static_cast<size_t>(Usable[R.uniformInt(Usable.size())])];
    return Profiles[0]; // int — always usable
  };

  struct VarInfo {
    std::string Name;
    const Profile *P;
  };

  static const std::vector<std::string> Verbs = {
      "compute", "build", "get", "make", "load", "update", "resolve",
      "collect", "find", "prepare"};

  int NumFuncs = static_cast<int>(
      R.uniformRange(Config.MinFuncsPerFile, Config.MaxFuncsPerFile));
  struct FuncInfo {
    std::string Name;
    std::vector<const Profile *> ParamTypes;
    const Profile *Ret;
  };
  std::vector<FuncInfo> Funcs;

  for (int F = 0; F != NumFuncs; ++F) {
    int NameCounter = 0;
    std::vector<VarInfo> Params, Locals;
    size_t NumParams = 1 + R.uniformInt(3);
    for (size_t I = 0; I != NumParams; ++I) {
      const Profile &P = SampleUsable();
      Params.push_back(VarInfo{varName(P, R, NameCounter), &P});
    }
    size_t NumLocals = 1 + R.uniformInt(3);
    for (size_t I = 0; I != NumLocals; ++I) {
      const Profile &P = SampleUsable();
      Locals.push_back(VarInfo{varName(P, R, NameCounter), &P});
    }
    // The function returns one of its variables; its name and annotation
    // derive from that variable's type.
    std::vector<VarInfo> All = Params;
    All.insert(All.end(), Locals.begin(), Locals.end());
    const VarInfo &RetVar = All[R.uniformInt(All.size())];

    std::string FuncName =
        Verbs[R.uniformInt(Verbs.size())] + "_" +
        RetVar.P->Stems[R.uniformInt(RetVar.P->Stems.size())] +
        strformat("_%d", F);
    Funcs.push_back(FuncInfo{FuncName, {}, RetVar.P});
    for (const VarInfo &V : Params)
      Funcs.back().ParamTypes.push_back(V.P);

    std::string Sig = "def " + FuncName + "(";
    for (size_t I = 0; I != Params.size(); ++I) {
      if (I != 0)
        Sig += ", ";
      Sig += Params[I].Name + ": " + Params[I].P->TypeText;
    }
    Sig += ") -> " + RetVar.P->TypeText + ":";
    E.line(Sig);
    E.indent();
    for (const VarInfo &V : Locals)
      E.line(V.Name + ": " + V.P->TypeText + " = " +
             V.P->Literals[R.uniformInt(V.P->Literals.size())]);
    // 1-3 idiomatic uses of random variables.
    size_t NumUses = 1 + R.uniformInt(3);
    for (size_t I = 0; I != NumUses; ++I) {
      const VarInfo &V = All[R.uniformInt(All.size())];
      E.stmt(V.P->Uses[R.uniformInt(V.P->Uses.size())], V.Name);
    }
    E.line("return " + RetVar.Name);
    E.dedent();
    E.blank();
  }

  // Module-level code: annotated constants and calls into the functions
  // above (call-site signal for return types).
  int NameCounter = 1000;
  size_t NumConsts = 1 + R.uniformInt(2);
  for (size_t I = 0; I != NumConsts; ++I) {
    const Profile &P = SampleUsable();
    E.line(varName(P, R, NameCounter) + ": " + P.TypeText + " = " +
           P.Literals[R.uniformInt(P.Literals.size())]);
  }
  for (const FuncInfo &F : Funcs) {
    if (!R.flip(0.6))
      continue;
    std::string Call = F.Name + "(";
    for (size_t I = 0; I != F.ParamTypes.size(); ++I) {
      if (I != 0)
        Call += ", ";
      const auto &Lits = F.ParamTypes[I]->Literals;
      Call += Lits[R.uniformInt(Lits.size())];
    }
    Call += ")";
    const Profile *Ret = F.Ret;
    E.line(varName(*Ret, R, NameCounter) + ": " + Ret->TypeText + " = " +
           Call);
  }
  (void)FileIdx;
  return E.str();
}

std::vector<CorpusFile> CorpusGenerator::generate() {
  std::vector<CorpusFile> Files;
  Rng Root(Config.Seed);
  int NumOriginal = static_cast<int>(
      static_cast<double>(Config.NumFiles) * (1.0 - Config.DuplicateFraction));
  for (int I = 0; I != Config.NumFiles; ++I) {
    CorpusFile F;
    F.Path = strformat("proj/module_%03d.py", I);
    if (I < NumOriginal || Files.empty()) {
      Rng FileRng = Root.fork(static_cast<uint64_t>(I) + 1);
      F.Source = fileSource(I, FileRng);
    } else {
      // Near-duplicate: copy an earlier file with a cosmetic comment, the
      // kind of clone the dedup step must remove.
      Rng FileRng = Root.fork(static_cast<uint64_t>(I) + 1);
      const CorpusFile &Orig = Files[FileRng.uniformInt(Files.size())];
      F.Source = "# vendored copy\n" + Orig.Source;
    }
    Files.push_back(std::move(F));
  }
  return Files;
}
