//===- corpus/Ingest.cpp - Real-tree corpus ingestion --------------------------===//

#include "corpus/Ingest.h"

#include "pyfront/Parser.h"

#include <algorithm>
#include <cstdio>
#include <dirent.h>
#include <sys/stat.h>

using namespace typilus;

namespace {

/// Reads \p Path whole. \returns false on any I/O failure.
bool readWholeFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  Out.clear();
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  return Ok;
}

bool endsWithPy(const std::string &Name) {
  return Name.size() > 3 && Name.compare(Name.size() - 3, 3, ".py") == 0;
}

/// One directory level of the walk. \p Rel is the root-relative prefix
/// ("" at the root, "pkg/sub/" below). Entries are visited in name order
/// so the corpus — and everything derived from it — is reproducible.
bool walkDir(const std::string &Root, const std::string &Rel,
             std::vector<CorpusFile> &Out, IngestReport &Report,
             std::string *Err) {
  std::string Abs = Rel.empty() ? Root : Root + "/" + Rel;
  DIR *D = ::opendir(Abs.c_str());
  if (!D) {
    if (Err)
      *Err = "cannot open directory '" + Abs + "'";
    return false;
  }
  std::vector<std::string> Names;
  while (struct dirent *E = ::readdir(D)) {
    if (E->d_name[0] == '.')
      continue; // ., .., and hidden trees (.git and friends)
    Names.emplace_back(E->d_name);
  }
  ::closedir(D);
  std::sort(Names.begin(), Names.end());

  for (const std::string &Name : Names) {
    std::string RelPath = Rel.empty() ? Name : Rel + "/" + Name;
    std::string AbsPath = Root + "/" + RelPath;
    struct stat St;
    if (::stat(AbsPath.c_str(), &St) != 0)
      continue; // raced away; nothing to ingest
    if (S_ISDIR(St.st_mode)) {
      if (!walkDir(Root, RelPath, Out, Report, Err))
        return false;
      continue;
    }
    if (!S_ISREG(St.st_mode) || !endsWithPy(Name))
      continue;

    ++Report.FilesSeen;
    CorpusFile File;
    File.Path = RelPath;
    if (!readWholeFile(AbsPath, File.Source)) {
      ++Report.FilesUnreadable;
      continue;
    }
    // The accept gate: the exact parser the pipeline will run. A file
    // with any diagnostic is skipped with file:line context — the
    // supported subset is narrower than real Python, and partial parses
    // would silently truncate graphs.
    ParsedFile PF = parseFile(File.Path, File.Source);
    if (PF.hasErrors()) {
      IngestReject Rej;
      Rej.Path = RelPath;
      Rej.Reason = formatDiagnostic(RelPath, PF.Diags.front());
      Report.Rejects.push_back(std::move(Rej));
      continue;
    }
    ++Report.FilesAccepted;
    Out.push_back(std::move(File));
  }
  return true;
}

} // namespace

bool typilus::collectPyTree(const std::string &Root,
                            std::vector<CorpusFile> &Out,
                            IngestReport &Report, std::string *Err) {
  if (Err)
    Err->clear();
  Report = IngestReport();
  struct stat St;
  if (::stat(Root.c_str(), &St) != 0 || !S_ISDIR(St.st_mode)) {
    if (Err)
      *Err = "'" + Root + "' is not a directory";
    return false;
  }
  return walkDir(Root, "", Out, Report, Err);
}
