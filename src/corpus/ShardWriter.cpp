//===- corpus/ShardWriter.cpp - Corpus shard format & writer -------------------===//

#include "corpus/ShardWriter.h"

#include <cerrno>
#include <cstdio>
#include <sys/stat.h>

using namespace typilus;

const char *typilus::splitKindName(SplitKind S) {
  switch (S) {
  case SplitKind::Train:
    return "train";
  case SplitKind::Valid:
    return "valid";
  case SplitKind::Test:
    return "test";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// FileExample serialization
//===----------------------------------------------------------------------===//

void typilus::writeFileExample(ArchiveWriter &W, const FileExample &Ex) {
  W.writeStr(Ex.Path);
  W.writeU64(Ex.Graph.Nodes.size());
  for (const GraphNode &N : Ex.Graph.Nodes) {
    W.writeU8(static_cast<uint8_t>(N.Category));
    W.writeStr(N.Label);
    W.writeI32(N.SymbolId);
    W.writeI32(N.TokenIdx);
  }
  W.writeU64(Ex.Graph.Edges.size());
  for (const GraphEdge &E : Ex.Graph.Edges) {
    W.writeI32(E.Src);
    W.writeI32(E.Dst);
    W.writeU8(static_cast<uint8_t>(E.Label));
  }
  W.writeU64(Ex.Graph.Supernodes.size());
  for (const Supernode &S : Ex.Graph.Supernodes) {
    W.writeI32(S.NodeIdx);
    W.writeI32(S.SymbolId);
    W.writeU8(static_cast<uint8_t>(S.Kind));
    W.writeStr(S.Name);
    W.writeStr(S.AnnotationText);
  }
}

bool typilus::readFileExample(ArchiveCursor &C, TypeUniverse &U,
                              FileExample &Ex, std::string *Err) {
  auto Fail = [&](const char *Why) {
    if (Err && Err->empty())
      *Err = std::string("malformed shard example: ") + Why;
    return false;
  };
  Ex = FileExample();
  Ex.Path = C.readStr();

  uint64_t NumNodes = C.readU64();
  if (!C.ok() || NumNodes > C.remaining())
    return Fail("node count");
  Ex.Graph.Nodes.reserve(static_cast<size_t>(NumNodes));
  for (uint64_t I = 0; I != NumNodes; ++I) {
    GraphNode N;
    uint8_t Cat = C.readU8();
    N.Label = C.readStr();
    N.SymbolId = C.readI32();
    N.TokenIdx = C.readI32();
    if (!C.ok() || Cat > static_cast<uint8_t>(NodeCategory::SymbolNode))
      return Fail("node record");
    N.Category = static_cast<NodeCategory>(Cat);
    Ex.Graph.Nodes.push_back(std::move(N));
  }

  uint64_t NumEdges = C.readU64();
  if (!C.ok() || NumEdges > C.remaining())
    return Fail("edge count");
  Ex.Graph.Edges.reserve(static_cast<size_t>(NumEdges));
  for (uint64_t I = 0; I != NumEdges; ++I) {
    GraphEdge E;
    E.Src = C.readI32();
    E.Dst = C.readI32();
    uint8_t L = C.readU8();
    if (!C.ok() || L >= NumEdgeLabels || E.Src < 0 || E.Dst < 0 ||
        static_cast<uint64_t>(E.Src) >= NumNodes ||
        static_cast<uint64_t>(E.Dst) >= NumNodes)
      return Fail("edge record");
    E.Label = static_cast<EdgeLabel>(L);
    Ex.Graph.Edges.push_back(E);
  }

  uint64_t NumSuper = C.readU64();
  if (!C.ok() || NumSuper > C.remaining())
    return Fail("supernode count");
  Ex.Graph.Supernodes.reserve(static_cast<size_t>(NumSuper));
  for (uint64_t I = 0; I != NumSuper; ++I) {
    Supernode S;
    S.NodeIdx = C.readI32();
    S.SymbolId = C.readI32();
    uint8_t K = C.readU8();
    S.Name = C.readStr();
    S.AnnotationText = C.readStr();
    if (!C.ok() || K > static_cast<uint8_t>(SymbolKind::External) ||
        S.NodeIdx < 0 || static_cast<uint64_t>(S.NodeIdx) >= NumNodes)
      return Fail("supernode record");
    S.Kind = static_cast<SymbolKind>(K);
    Ex.Graph.Supernodes.push_back(std::move(S));
  }

  // Ground truths intern through the same path buildExample uses, so a
  // decoded example is bit-identical to a freshly built one.
  resolveTargets(Ex, U);
  return true;
}

//===----------------------------------------------------------------------===//
// ShardWriter
//===----------------------------------------------------------------------===//

ShardWriter::ShardWriter(std::string Dir) : Dir(std::move(Dir)) {}

bool ShardWriter::addShard(SplitKind Split,
                           const std::vector<FileExample> &Examples,
                           std::string *Err) {
  ArchiveWriter W(kShardFormatVersion, kShardMagic);

  uint64_t Targets = 0;
  for (const FileExample &Ex : Examples)
    Targets += Ex.Targets.size();

  W.beginChunk("smet");
  W.writeU8(static_cast<uint8_t>(Split));
  W.writeU64(Examples.size());
  W.writeU64(Targets);
  W.endChunk();

  W.beginChunk("exmp");
  W.writeU64(Examples.size());
  for (const FileExample &Ex : Examples)
    writeFileExample(W, Ex);
  W.endChunk();

  // The type-count sidecar: this shard's ground-truth histogram, merged
  // into the manifest's global TrainTypeCounts for train shards.
  std::map<std::string, int64_t> Counts;
  for (const FileExample &Ex : Examples)
    for (const Target &T : Ex.Targets)
      ++Counts[T.Type->str()];
  W.beginChunk("tcnt");
  W.writeU64(Counts.size());
  for (const auto &[Repr, N] : Counts)
    W.writeStr(Repr), W.writeI64(N);
  W.endChunk();

  char Name[32];
  std::snprintf(Name, sizeof(Name), "shard-%05zu.typs", Shards.size());
  if (!W.writeFile(Dir + "/" + Name, Err))
    return false;

  if (Split == SplitKind::Train)
    for (const auto &[Repr, N] : Counts)
      TrainTypeCounts[Repr] += N;
  Shards.push_back(ShardInfo{Name, Split, Examples.size(), Targets});
  return true;
}

bool ShardWriter::finish(int CommonThreshold,
                         const std::function<void(ArchiveWriter &)> &Extra,
                         std::string *Err) {
  uint64_t Files[kNumSplits] = {}, Targets[kNumSplits] = {};
  for (const ShardInfo &S : Shards) {
    Files[static_cast<int>(S.Split)] += S.Files;
    Targets[static_cast<int>(S.Split)] += S.Targets;
  }

  ArchiveWriter W(kShardFormatVersion, kShardMagic);
  W.beginChunk("mset");
  W.writeI32(CommonThreshold);
  W.writeU64(Shards.size());
  for (uint64_t F : Files)
    W.writeU64(F);
  for (uint64_t T : Targets)
    W.writeU64(T);
  W.endChunk();

  W.beginChunk("shrd");
  W.writeU64(Shards.size());
  for (const ShardInfo &S : Shards) {
    W.writeStr(S.Name);
    W.writeU8(static_cast<uint8_t>(S.Split));
    W.writeU64(S.Files);
    W.writeU64(S.Targets);
  }
  W.endChunk();

  W.beginChunk("tcnt");
  W.writeU64(TrainTypeCounts.size());
  for (const auto &[Repr, N] : TrainTypeCounts)
    W.writeStr(Repr), W.writeI64(N);
  W.endChunk();

  if (Extra)
    Extra(W);
  return W.writeFile(Dir + "/" + kShardManifestName, Err);
}

//===----------------------------------------------------------------------===//
// buildShards
//===----------------------------------------------------------------------===//

bool typilus::buildShards(const std::vector<CorpusFile> &Files,
                          const std::vector<UdtSpec> &Udts, TypeUniverse &U,
                          TypeHierarchy *Hierarchy, const DatasetConfig &Config,
                          const ShardBuildOptions &Opts, std::string *Err) {
  if (::mkdir(Opts.Dir.c_str(), 0777) != 0 && errno != EEXIST) {
    if (Err)
      *Err = "cannot create shard directory '" + Opts.Dir + "'";
    return false;
  }

  if (Hierarchy)
    registerUdts(Udts, *Hierarchy);

  // The same dedup + seeded shuffle + split-boundary computation
  // buildDataset uses — one shared implementation, so the file-to-split
  // assignment cannot drift between the in-memory and sharded paths.
  CorpusSplitPlan Plan = planCorpusSplit(Files, Config);
  const std::vector<const CorpusFile *> &Shuffled = Plan.Shuffled;
  auto SplitOf = [&](size_t I) {
    return static_cast<SplitKind>(Plan.splitOf(I));
  };

  size_t PerShard =
      Opts.FilesPerShard < 1 ? 1 : static_cast<size_t>(Opts.FilesPerShard);
  ShardWriter Writer(Opts.Dir);
  std::vector<FileExample> Chunk;
  SplitKind Cur = SplitKind::Train;
  auto Flush = [&]() {
    if (Chunk.empty())
      return true;
    bool Ok = Writer.addShard(Cur, Chunk, Err);
    Chunk.clear();
    return Ok;
  };
  for (size_t I = 0; I != Shuffled.size(); ++I) {
    SplitKind S = SplitOf(I);
    // Shards never straddle a split boundary, and a full chunk flushes —
    // peak residency is one chunk of examples, not the corpus.
    if ((S != Cur || Chunk.size() >= PerShard) && !Flush())
      return false;
    Cur = S;
    Chunk.push_back(buildExample(*Shuffled[I], U, Config.GraphOpts));
  }
  if (!Flush())
    return false;
  return Writer.finish(Config.CommonThreshold, Opts.ManifestExtra, Err);
}
