//===- corpus/ShardWriter.cpp - Corpus shard format & writer -------------------===//

#include "corpus/ShardWriter.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <sys/stat.h>

using namespace typilus;

const char *typilus::splitKindName(SplitKind S) {
  switch (S) {
  case SplitKind::Train:
    return "train";
  case SplitKind::Valid:
    return "valid";
  case SplitKind::Test:
    return "test";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// FileExample serialization
//===----------------------------------------------------------------------===//

void typilus::writeFileExample(ArchiveWriter &W, const FileExample &Ex) {
  W.writeStr(Ex.Path);
  W.writeU64(Ex.Graph.Nodes.size());
  for (const GraphNode &N : Ex.Graph.Nodes) {
    W.writeU8(static_cast<uint8_t>(N.Category));
    W.writeStr(N.Label);
    W.writeI32(N.SymbolId);
    W.writeI32(N.TokenIdx);
  }
  W.writeU64(Ex.Graph.Edges.size());
  for (const GraphEdge &E : Ex.Graph.Edges) {
    W.writeI32(E.Src);
    W.writeI32(E.Dst);
    W.writeU8(static_cast<uint8_t>(E.Label));
  }
  W.writeU64(Ex.Graph.Supernodes.size());
  for (const Supernode &S : Ex.Graph.Supernodes) {
    W.writeI32(S.NodeIdx);
    W.writeI32(S.SymbolId);
    W.writeU8(static_cast<uint8_t>(S.Kind));
    W.writeStr(S.Name);
    W.writeStr(S.AnnotationText);
  }
}

bool typilus::readFileExampleGraph(ArchiveCursor &C, FileExample &Ex,
                                   std::string *Err) {
  auto Fail = [&](const char *Why) {
    if (Err && Err->empty())
      *Err = std::string("malformed shard example: ") + Why;
    return false;
  };
  Ex = FileExample();
  Ex.Path = C.readStr();

  uint64_t NumNodes = C.readU64();
  if (!C.ok() || NumNodes > C.remaining())
    return Fail("node count");
  Ex.Graph.Nodes.reserve(static_cast<size_t>(NumNodes));
  for (uint64_t I = 0; I != NumNodes; ++I) {
    GraphNode N;
    uint8_t Cat = C.readU8();
    N.Label = C.readStr();
    N.SymbolId = C.readI32();
    N.TokenIdx = C.readI32();
    if (!C.ok() || Cat > static_cast<uint8_t>(NodeCategory::SymbolNode))
      return Fail("node record");
    N.Category = static_cast<NodeCategory>(Cat);
    Ex.Graph.Nodes.push_back(std::move(N));
  }

  uint64_t NumEdges = C.readU64();
  if (!C.ok() || NumEdges > C.remaining())
    return Fail("edge count");
  Ex.Graph.Edges.reserve(static_cast<size_t>(NumEdges));
  for (uint64_t I = 0; I != NumEdges; ++I) {
    GraphEdge E;
    E.Src = C.readI32();
    E.Dst = C.readI32();
    uint8_t L = C.readU8();
    if (!C.ok() || L >= NumEdgeLabels || E.Src < 0 || E.Dst < 0 ||
        static_cast<uint64_t>(E.Src) >= NumNodes ||
        static_cast<uint64_t>(E.Dst) >= NumNodes)
      return Fail("edge record");
    E.Label = static_cast<EdgeLabel>(L);
    Ex.Graph.Edges.push_back(E);
  }

  uint64_t NumSuper = C.readU64();
  if (!C.ok() || NumSuper > C.remaining())
    return Fail("supernode count");
  Ex.Graph.Supernodes.reserve(static_cast<size_t>(NumSuper));
  for (uint64_t I = 0; I != NumSuper; ++I) {
    Supernode S;
    S.NodeIdx = C.readI32();
    S.SymbolId = C.readI32();
    uint8_t K = C.readU8();
    S.Name = C.readStr();
    S.AnnotationText = C.readStr();
    if (!C.ok() || K > static_cast<uint8_t>(SymbolKind::External) ||
        S.NodeIdx < 0 || static_cast<uint64_t>(S.NodeIdx) >= NumNodes)
      return Fail("supernode record");
    S.Kind = static_cast<SymbolKind>(K);
    Ex.Graph.Supernodes.push_back(std::move(S));
  }
  return true;
}

bool typilus::readFileExample(ArchiveCursor &C, TypeUniverse &U,
                              FileExample &Ex, std::string *Err) {
  if (!readFileExampleGraph(C, Ex, Err))
    return false;
  // Ground truths intern through the same path buildExample uses, so a
  // decoded example is bit-identical to a freshly built one.
  resolveTargets(Ex, U);
  return true;
}

//===----------------------------------------------------------------------===//
// ShardWriter
//===----------------------------------------------------------------------===//

EncodedShard::EncodedShard() : W(kShardFormatVersion, kShardMagic) {}

EncodedShard typilus::encodeShard(SplitKind Split,
                                  const std::vector<FileExample> &Examples) {
  EncodedShard E;
  E.Split = Split;
  E.Files = Examples.size();
  for (const FileExample &Ex : Examples)
    E.Targets += Ex.Targets.size();

  E.W.beginChunk("smet");
  E.W.writeU8(static_cast<uint8_t>(Split));
  E.W.writeU64(E.Files);
  E.W.writeU64(E.Targets);
  E.W.endChunk();

  E.W.beginChunk("exmp");
  E.W.writeU64(Examples.size());
  for (const FileExample &Ex : Examples)
    writeFileExample(E.W, Ex);
  E.W.endChunk();

  // The type-count sidecar: this shard's ground-truth histogram, merged
  // into the manifest's global TrainTypeCounts for train shards. Keyed by
  // canonical repr, so the bytes are independent of universe intern order
  // — the property that lets parallel builders use per-chunk universes.
  for (const FileExample &Ex : Examples)
    for (const Target &T : Ex.Targets)
      ++E.Counts[T.Type->str()];
  E.W.beginChunk("tcnt");
  E.W.writeU64(E.Counts.size());
  for (const auto &[Repr, N] : E.Counts)
    E.W.writeStr(Repr), E.W.writeI64(N);
  E.W.endChunk();
  return E;
}

ShardWriter::ShardWriter(std::string Dir) : Dir(std::move(Dir)) {}

bool ShardWriter::addShard(SplitKind Split,
                           const std::vector<FileExample> &Examples,
                           std::string *Err) {
  return commit(encodeShard(Split, Examples), Err);
}

bool ShardWriter::commit(const EncodedShard &E, std::string *Err) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "shard-%05zu.typs", Shards.size());
  if (!E.W.writeFile(Dir + "/" + Name, Err))
    return false;

  if (E.Split == SplitKind::Train)
    for (const auto &[Repr, N] : E.Counts)
      TrainTypeCounts[Repr] += N;
  Shards.push_back(ShardInfo{Name, E.Split, E.Files, E.Targets});
  return true;
}

bool ShardWriter::finish(int CommonThreshold,
                         const std::function<void(ArchiveWriter &)> &Extra,
                         std::string *Err) {
  uint64_t Files[kNumSplits] = {}, Targets[kNumSplits] = {};
  for (const ShardInfo &S : Shards) {
    Files[static_cast<int>(S.Split)] += S.Files;
    Targets[static_cast<int>(S.Split)] += S.Targets;
  }

  ArchiveWriter W(kShardFormatVersion, kShardMagic);
  W.beginChunk("mset");
  W.writeI32(CommonThreshold);
  W.writeU64(Shards.size());
  for (uint64_t F : Files)
    W.writeU64(F);
  for (uint64_t T : Targets)
    W.writeU64(T);
  W.endChunk();

  W.beginChunk("shrd");
  W.writeU64(Shards.size());
  for (const ShardInfo &S : Shards) {
    W.writeStr(S.Name);
    W.writeU8(static_cast<uint8_t>(S.Split));
    W.writeU64(S.Files);
    W.writeU64(S.Targets);
  }
  W.endChunk();

  W.beginChunk("tcnt");
  W.writeU64(TrainTypeCounts.size());
  for (const auto &[Repr, N] : TrainTypeCounts)
    W.writeStr(Repr), W.writeI64(N);
  W.endChunk();

  if (Extra)
    Extra(W);
  return W.writeFile(Dir + "/" + kShardManifestName, Err);
}

//===----------------------------------------------------------------------===//
// buildShards
//===----------------------------------------------------------------------===//

bool typilus::buildShards(const std::vector<CorpusFile> &Files,
                          const std::vector<UdtSpec> &Udts, TypeUniverse &U,
                          TypeHierarchy *Hierarchy, const DatasetConfig &Config,
                          const ShardBuildOptions &Opts, std::string *Err,
                          ShardBuildStats *Stats) {
  if (::mkdir(Opts.Dir.c_str(), 0777) != 0 && errno != EEXIST) {
    if (Err)
      *Err = "cannot create shard directory '" + Opts.Dir + "'";
    return false;
  }

  if (Hierarchy)
    registerUdts(Udts, *Hierarchy);

  // The same dedup + seeded shuffle + split-boundary computation
  // buildDataset uses — one shared implementation, so the file-to-split
  // assignment cannot drift between the in-memory and sharded paths.
  CorpusSplitPlan Plan = planCorpusSplit(Files, Config);
  const std::vector<const CorpusFile *> &Shuffled = Plan.Shuffled;

  // Shard bytes never depend on universe intern order (targets are not
  // serialized; sidecars key by canonical repr), so chunks build against
  // per-chunk universes below and the caller's universe is untouched.
  (void)U;

  // Chunk boundaries are a pure function of the plan: maximal runs of one
  // split, cut into PerShard-sized pieces — exactly where the serial
  // flush-on-boundary loop would cut them.
  size_t PerShard =
      Opts.FilesPerShard < 1 ? 1 : static_cast<size_t>(Opts.FilesPerShard);
  struct ChunkPlan {
    size_t Begin = 0, End = 0;
    SplitKind Split = SplitKind::Train;
  };
  std::vector<ChunkPlan> Chunks;
  for (size_t I = 0; I != Shuffled.size();) {
    ChunkPlan CP;
    CP.Begin = I;
    CP.Split = static_cast<SplitKind>(Plan.splitOf(I));
    size_t End = I + 1;
    while (End != Shuffled.size() && End - I < PerShard &&
           static_cast<SplitKind>(Plan.splitOf(End)) == CP.Split)
      ++End;
    CP.End = End;
    Chunks.push_back(CP);
    I = End;
  }

  // Parallelism: NumThreads > 0 temporarily sizes the process-wide pool
  // (restored on every exit path, as Trainer::run does); 0 uses it as-is.
  struct PoolSizeGuard {
    int Saved = globalNumThreads();
    ~PoolSizeGuard() { setGlobalNumThreads(Saved); }
  } Guard;
  if (Opts.NumThreads > 0)
    setGlobalNumThreads(Opts.NumThreads);
  size_t Ways = static_cast<size_t>(std::max(1, globalNumThreads()));

  // Waves of `Ways` chunks build data-parallel (parse + graph + encode),
  // then commit strictly in chunk order — shard numbering, manifest order
  // and every byte on disk are independent of scheduling. Peak residency
  // is one wave of encoded shards, not the corpus.
  ShardWriter Writer(Opts.Dir);
  for (size_t C0 = 0; C0 < Chunks.size(); C0 += Ways) {
    size_t C1 = std::min(Chunks.size(), C0 + Ways);
    std::vector<EncodedShard> Wave(C1 - C0);
    parallelFor(
        static_cast<int64_t>(C0), static_cast<int64_t>(C1), /*Grain=*/1,
        [&](int64_t B, int64_t E) {
          for (int64_t C = B; C != E; ++C) {
            const ChunkPlan &CP = Chunks[static_cast<size_t>(C)];
            TypeUniverse Local;
            std::vector<FileExample> Examples;
            Examples.reserve(CP.End - CP.Begin);
            for (size_t I = CP.Begin; I != CP.End; ++I)
              Examples.push_back(
                  buildExample(*Shuffled[I], Local, Config.GraphOpts));
            Wave[static_cast<size_t>(C) - C0] =
                encodeShard(CP.Split, Examples);
          }
        },
        /*MaxWays=*/static_cast<int>(Ways));
    for (const EncodedShard &E : Wave)
      if (!Writer.commit(E, Err))
        return false;
  }

  if (Stats) {
    Stats->FilesIn = Files.size();
    Stats->DedupDropped = Plan.DedupDropped;
    Stats->FilesSharded = Shuffled.size();
    Stats->ShardsWritten = Writer.numShards();
  }
  return Writer.finish(Config.CommonThreshold, Opts.ManifestExtra, Err);
}
