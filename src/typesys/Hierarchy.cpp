//===- typesys/Hierarchy.cpp - Subtyping lattice & neutrality --------------===//

#include "typesys/Hierarchy.h"

#include <cassert>

using namespace typilus;

TypeHierarchy::TypeHierarchy(TypeUniverse &U) : U(U) {
  // Numeric tower (PEP 484 treats bool/int/float/complex as a tower).
  addClass("complex");
  addClass("float", {"complex"});
  addClass("int", {"float"});
  addClass("bool", {"int"});
  // Iteration / container protocol skeleton.
  addClass("Iterable");
  addClass("Iterator", {"Iterable"});
  addClass("Generator", {"Iterator"});
  addClass("Collection", {"Iterable"});
  addClass("Sequence", {"Collection"});
  addClass("Mapping", {"Collection"});
  addClass("MutableMapping", {"Mapping"});
  addClass("list", {"Sequence"});
  addClass("List", {"Sequence"});
  addClass("tuple", {"Sequence"});
  addClass("Tuple", {"Sequence"});
  addClass("str", {"Sequence"});
  addClass("bytes", {"Sequence"});
  addClass("set", {"Collection"});
  addClass("Set", {"Collection"});
  addClass("FrozenSet", {"Collection"});
  addClass("dict", {"MutableMapping"});
  addClass("Dict", {"MutableMapping"});
  addClass("Callable");
  addClass("type");
  addClass("Type", {"type"});
  addClass("None");
  addClass("...");
}

void TypeHierarchy::addClass(const std::string &Name,
                             std::vector<std::string> BaseNames) {
  if (BaseNames.empty() && Name != "object")
    BaseNames.push_back("object");
  Bases[Name] = std::move(BaseNames);
}

bool TypeHierarchy::knowsName(const std::string &Name) const {
  return Name == "object" || Bases.count(Name) != 0;
}

bool TypeHierarchy::isSubtypeName(const std::string &Derived,
                                  const std::string &Base) const {
  if (Derived == Base || Base == "object")
    return true;
  // Builtin aliases: typing.List and list are the same constructor, etc.
  auto Alias = [](const std::string &N) -> std::string {
    if (N == "list")
      return "List";
    if (N == "dict")
      return "Dict";
    if (N == "set")
      return "Set";
    if (N == "tuple")
      return "Tuple";
    if (N == "frozenset")
      return "FrozenSet";
    if (N == "type")
      return "Type";
    return N;
  };
  if (Alias(Derived) == Alias(Base))
    return true;
  auto It = Bases.find(Derived);
  if (It == Bases.end())
    return false;
  for (const std::string &B : It->second)
    if (isSubtypeName(B, Base))
      return true;
  return false;
}

bool TypeHierarchy::isSubtype(TypeRef A, TypeRef B) const {
  assert(A && B && "subtype query on null type");
  if (A == B)
    return true;
  // Gradual typing: Any is compatible in both directions.
  if (A == U.any() || B == U.any())
    return true;
  if (B == U.object())
    return true;
  // Union on the left: every member must fit.
  if (A->name() == "Union") {
    for (TypeRef M : A->args())
      if (!isSubtype(M, B))
        return false;
    return true;
  }
  if (A->name() == "Optional")
    return isSubtype(A->args()[0], B) && isSubtype(U.none(), B);
  // Union/Optional on the right: some member must accept A.
  if (B->name() == "Union") {
    for (TypeRef M : B->args())
      if (isSubtype(A, M))
        return true;
    return false;
  }
  if (B->name() == "Optional")
    return A == U.none() || isSubtype(A, B->args()[0]);
  if (A == U.none())
    return B == U.none();
  // Nominal step on the constructor, then universal covariance on the
  // arguments. A parametric type is a subtype of its bare constructor
  // (List[int] :< List); a bare constructor is read as C[Any, ...].
  if (!isSubtypeName(A->name(), B->name()))
    return false;
  if (B->args().empty())
    return true;
  if (A->args().empty())
    return true; // A == A[Any,...] and Any fits every parameter.
  // Tuple[int, str] vs Tuple[int, str]: compare pairwise as far as both go.
  size_t N = std::min(A->args().size(), B->args().size());
  for (size_t I = 0; I != N; ++I)
    if (!isSubtype(A->args()[I], B->args()[I]))
      return false;
  // Extra parameters on either side are treated as Any (arity-tolerant,
  // matching the paper's coarse lattice).
  return true;
}

bool TypeHierarchy::isNeutral(TypeRef Ground, TypeRef Pred) const {
  assert(Ground && Pred && "neutrality query on null type");
  if (isTop(Pred))
    return false;
  TypeRef G = U.rewriteDeep(Ground);
  TypeRef P = U.rewriteDeep(Pred);
  return isSubtype(G, P);
}
