//===- typesys/Type.cpp - Python-style structural types --------------------===//

#include "typesys/Type.h"

#include "support/Str.h"

#include <algorithm>
#include <cassert>
#include <cctype>

using namespace typilus;

int Type::depth() const {
  int MaxArg = 0;
  for (TypeRef A : Args)
    MaxArg = std::max(MaxArg, A->depth());
  return 1 + (Args.empty() ? 0 : MaxArg);
}

TypeUniverse::TypeUniverse() {
  AnyTy = internRaw("Any", {});
  NoneTy = internRaw("None", {});
  ObjectTy = internRaw("object", {});
}

static std::string renderType(std::string_view Name,
                              const std::vector<TypeRef> &Args) {
  // The pseudo-constructor "[]" is a bare bracketed list (Callable's
  // parameter list); it renders without a head name.
  std::string Repr(Name == "[]" ? std::string_view() : Name);
  if (Args.empty() && Name != "[]")
    return Repr;
  Repr += '[';
  for (size_t I = 0; I != Args.size(); ++I) {
    if (I != 0)
      Repr += ", ";
    Repr += Args[I]->str();
  }
  Repr += ']';
  return Repr;
}

TypeRef TypeUniverse::internRaw(std::string_view Name,
                                std::vector<TypeRef> Args) {
  std::string Repr = renderType(Name, Args);
  auto It = Interned.find(Repr);
  if (It != Interned.end())
    return It->second.get();
  auto Owned = std::unique_ptr<Type>(
      new Type(std::string(Name), std::move(Args), Repr));
  TypeRef Result = Owned.get();
  Interned.emplace(std::move(Repr), std::move(Owned));
  return Result;
}

TypeRef TypeUniverse::get(std::string_view Name, std::vector<TypeRef> Args) {
  // Normalise Optional[T] to a single-argument "Optional"; Union[T, None]
  // also canonicalises to Optional[T]. Union arguments are flattened,
  // deduplicated and sorted so Union[int, str] == Union[str, int].
  if (Name == "Union") {
    std::vector<TypeRef> Flat;
    bool SawNone = false;
    for (TypeRef A : Args) {
      if (A == NoneTy) {
        SawNone = true;
        continue;
      }
      if (A->name() == "Union") {
        for (TypeRef Inner : A->args())
          Flat.push_back(Inner);
        continue;
      }
      if (A->name() == "Optional") {
        SawNone = true;
        Flat.push_back(A->args()[0]);
        continue;
      }
      Flat.push_back(A);
    }
    std::sort(Flat.begin(), Flat.end(),
              [](TypeRef A, TypeRef B) { return A->str() < B->str(); });
    Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
    if (Flat.empty())
      return SawNone ? NoneTy : AnyTy;
    TypeRef Inner = Flat.size() == 1 ? Flat[0] : internRaw("Union", Flat);
    if (SawNone)
      return internRaw("Optional", {Inner});
    return Inner;
  }
  if (Name == "Optional") {
    if (Args.size() != 1)
      return nullptr;
    if (Args[0] == NoneTy)
      return NoneTy;
    if (Args[0]->name() == "Optional")
      return Args[0];
    if (Args[0]->name() == "Union")
      return get("Union", {Args[0], NoneTy});
    return internRaw("Optional", std::move(Args));
  }
  return internRaw(Name, std::move(Args));
}

/// Parses one type term starting at \p Pos; advances \p Pos past it.
TypeRef TypeUniverse::parseImpl(std::string_view Text, size_t &Pos) {
  auto SkipWs = [&] {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  };
  SkipWs();
  if (Pos >= Text.size())
    return nullptr;
  // Ellipsis, as in Callable[..., int] or Tuple[int, ...].
  if (Text.compare(Pos, 3, "...") == 0) {
    Pos += 3;
    return internRaw("...", {});
  }
  // A bare bracketed list: Callable[[int, str], bool].
  if (Text[Pos] == '[') {
    ++Pos;
    std::vector<TypeRef> Args;
    SkipWs();
    while (Pos < Text.size() && Text[Pos] != ']') {
      TypeRef Arg = parseImpl(Text, Pos);
      if (!Arg)
        return nullptr;
      Args.push_back(Arg);
      SkipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        SkipWs();
      }
    }
    if (Pos >= Text.size() || Text[Pos] != ']')
      return nullptr;
    ++Pos;
    return internRaw("[]", std::move(Args));
  }
  size_t Start = Pos;
  while (Pos < Text.size() &&
         (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
          Text[Pos] == '_' || Text[Pos] == '.'))
    ++Pos;
  if (Pos == Start)
    return nullptr;
  std::string Name(Text.substr(Start, Pos - Start));
  SkipWs();
  if (Pos >= Text.size() || Text[Pos] != '[')
    return get(Name);
  ++Pos; // consume '['
  std::vector<TypeRef> Args;
  while (true) {
    TypeRef Arg = parseImpl(Text, Pos);
    if (!Arg)
      return nullptr;
    Args.push_back(Arg);
    SkipWs();
    if (Pos < Text.size() && Text[Pos] == ',') {
      ++Pos;
      continue;
    }
    break;
  }
  SkipWs();
  if (Pos >= Text.size() || Text[Pos] != ']')
    return nullptr;
  ++Pos;
  return get(Name, std::move(Args));
}

TypeRef TypeUniverse::parse(std::string_view Text) {
  size_t Pos = 0;
  TypeRef Result = parseImpl(Text, Pos);
  if (!Result)
    return nullptr;
  while (Pos < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Pos])))
    ++Pos;
  if (Pos != Text.size())
    return nullptr;
  return Result;
}

std::map<const Type *, int> TypeUniverse::save(ArchiveWriter &W) const {
  // Interned is keyed by the canonical repr, so iteration order (and with
  // it the dense ids) is deterministic for a given set of types.
  W.writeU64(Interned.size());
  std::map<const Type *, int> Ids;
  for (const auto &[Repr, Owned] : Interned) {
    Ids.emplace(Owned.get(), static_cast<int>(Ids.size()));
    W.writeStr(Repr);
  }
  return Ids;
}

bool TypeUniverse::load(ArchiveCursor &C, std::vector<const Type *> &ById,
                        std::string *Err) {
  uint64_t Count = C.readU64();
  if (!C.ok() || Count > C.remaining()) {
    if (Err && Err->empty())
      *Err = "malformed type table";
    return false;
  }
  ById.clear();
  ById.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I != Count; ++I) {
    std::string Repr = C.readStr();
    if (!C.ok()) {
      if (Err && Err->empty())
        *Err = "malformed type table";
      return false;
    }
    // Parametric reprs re-intern through parse(), which recreates every
    // component type. Argument-less reprs intern directly: erase() mints
    // bare parametric heads ("Optional", "Union") that parse() would
    // reject or normalise away.
    TypeRef T = Repr.find('[') == std::string::npos ? internRaw(Repr, {})
                                                    : parse(Repr);
    if (!T) {
      if (Err && Err->empty())
        *Err = "type table entry " + std::to_string(I) + " ('" + Repr +
               "') does not parse";
      return false;
    }
    ById.push_back(T);
  }
  return true;
}

TypeRef TypeUniverse::erase(TypeRef T) {
  assert(T && "erase of null type");
  if (!T->isParametric())
    return T;
  return internRaw(T->name(), {});
}

static TypeRef rewriteDeepImpl(TypeUniverse &U, TypeRef T, int Level) {
  // Outermost constructor is level 1; any component at level >= 3 becomes
  // Any (paper example: List[List[List[int]]] -> List[List[Any]]).
  if (Level >= 3)
    return U.any();
  if (!T->isParametric())
    return T;
  std::vector<TypeRef> Args;
  Args.reserve(T->args().size());
  for (TypeRef A : T->args())
    Args.push_back(rewriteDeepImpl(U, A, Level + 1));
  return U.get(T->name(), std::move(Args));
}

TypeRef TypeUniverse::rewriteDeep(TypeRef T) {
  assert(T && "rewrite of null type");
  return rewriteDeepImpl(*this, T, 1);
}
