//===- typesys/Hierarchy.h - Subtyping lattice & neutrality ------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The nominal type hierarchy and the subtyping relation `:<` used for the
/// paper's *type neutrality* criterion (Sec. 6.1): a prediction τp is
/// neutral with ground truth τg iff τg :< τp and τp is not the lattice top.
/// Parametric types are ordered assuming universal covariance, exactly as
/// the paper's fast-but-unsound approximation does.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_TYPESYS_HIERARCHY_H
#define TYPILUS_TYPESYS_HIERARCHY_H

#include "typesys/Type.h"

#include <map>
#include <string>
#include <vector>

namespace typilus {

/// Nominal hierarchy over type constructor names plus the structural
/// subtyping rules (covariance, Union/Optional, numeric tower).
class TypeHierarchy {
public:
  /// Builds a hierarchy preloaded with the Python builtins (numeric tower
  /// bool :< int :< float :< complex; containers under
  /// Sequence/Mapping/Iterable; everything under object).
  explicit TypeHierarchy(TypeUniverse &U);

  /// Registers a user-defined class \p Name with base classes \p Bases
  /// (class names; defaults to {"object"} when empty).
  void addClass(const std::string &Name, std::vector<std::string> Bases = {});

  /// True if a class named \p Name has been registered or is builtin.
  bool knowsName(const std::string &Name) const;

  /// Reflexive-transitive nominal subtyping over constructor names.
  bool isSubtypeName(const std::string &Derived, const std::string &Base) const;

  /// Structural subtyping `A :< B` assuming universal covariance.
  /// Any is compatible in both directions (gradual typing).
  bool isSubtype(TypeRef A, TypeRef B) const;

  /// The paper's type-neutrality approximation: τg :< τp and τp != ⊤.
  /// Both sides are first depth-rewritten (Sec. 6.1).
  bool isNeutral(TypeRef Ground, TypeRef Pred) const;

  /// True for the lattice top (object / Any).
  bool isTop(TypeRef T) const {
    return T == U.any() || T == U.object();
  }

  TypeUniverse &universe() const { return U; }

private:
  TypeUniverse &U;
  /// Name -> direct bases. Builtins are seeded in the constructor.
  std::map<std::string, std::vector<std::string>> Bases;
};

} // namespace typilus

#endif // TYPILUS_TYPESYS_HIERARCHY_H
