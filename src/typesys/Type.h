//===- typesys/Type.h - Python-style structural types ------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The representation of Python type annotations: interned, immutable trees
/// of the form `Name[Arg1, ..., ArgN]` (e.g. `Dict[str, List[int]]`,
/// `Optional[torch.Tensor]`). A TypeUniverse interns types so equality is
/// pointer identity, parses annotation strings, and implements the two
/// normalisations the paper uses: type erasure `Er(τ)` (Eq. 4, drops all
/// type parameters) and the depth rewriting of Sec. 6.1 (components nested
/// more than two levels deep become `Any`).
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_TYPESYS_TYPE_H
#define TYPILUS_TYPESYS_TYPE_H

#include "support/Archive.h"

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace typilus {

class TypeUniverse;

/// An immutable, interned type. Obtain instances through TypeUniverse.
class Type {
public:
  const std::string &name() const { return Name; }
  const std::vector<const Type *> &args() const { return Args; }
  bool isParametric() const { return !Args.empty(); }

  /// Canonical rendering, e.g. "Dict[str, List[int]]".
  const std::string &str() const { return Repr; }

  /// Maximum nesting level: "int" -> 1, "List[int]" -> 2,
  /// "List[List[int]]" -> 3.
  int depth() const;

private:
  friend class TypeUniverse;
  Type(std::string Name, std::vector<const Type *> Args, std::string Repr)
      : Name(std::move(Name)), Args(std::move(Args)), Repr(std::move(Repr)) {}

  std::string Name;
  std::vector<const Type *> Args;
  std::string Repr;
};

/// A convenience alias: types are always handled by interned pointer.
using TypeRef = const Type *;

/// Creates, interns, parses and normalises types. All TypeRefs are owned by
/// (and valid for the lifetime of) the universe that created them.
class TypeUniverse {
public:
  TypeUniverse();
  TypeUniverse(const TypeUniverse &) = delete;
  TypeUniverse &operator=(const TypeUniverse &) = delete;

  /// Interns the type `Name[Args...]` after normalisation (Union flattening,
  /// dedup and sorting; `Union[T, None]` canonicalised to `Optional[T]`).
  TypeRef get(std::string_view Name, std::vector<TypeRef> Args = {});

  /// Parses an annotation such as "Dict[str, List[int]]". Dotted names
  /// (e.g. "torch.Tensor") and "..." (Ellipsis) are accepted.
  /// \returns nullptr on malformed input.
  TypeRef parse(std::string_view Text);

  /// Type erasure Er(τ): drops all type parameters ("List[int]" -> "List").
  TypeRef erase(TypeRef T);

  /// Sec. 6.1 preprocessing: components of a parametric type nested more
  /// than two levels deep are rewritten to Any
  /// ("List[List[List[int]]]" -> "List[List[Any]]").
  TypeRef rewriteDeep(TypeRef T);

  /// Well-known types.
  TypeRef any() const { return AnyTy; }
  TypeRef none() const { return NoneTy; }
  TypeRef object() const { return ObjectTy; }

  /// True for types the evaluation excludes as a ground truth (Any, None)
  /// per footnote 2 of the paper.
  bool isExcludedAnnotation(TypeRef T) const {
    return T == AnyTy || T == NoneTy;
  }

  /// Number of distinct interned types (for stats).
  size_t size() const { return Interned.size(); }

  /// Appends the interning table (every type's canonical repr, in the
  /// deterministic repr-sorted order) to the open chunk and returns the
  /// TypeRef -> dense-index map other chunks use to reference types.
  std::map<const Type *, int> save(ArchiveWriter &W) const;

  /// Re-interns a table written by save() into *this* universe, filling
  /// \p ById so index I resolves the types other chunks reference.
  /// Fails with \p Err on malformed or unparsable entries.
  bool load(ArchiveCursor &C, std::vector<const Type *> &ById,
            std::string *Err);

private:
  TypeRef internRaw(std::string_view Name, std::vector<TypeRef> Args);
  TypeRef parseImpl(std::string_view Text, size_t &Pos);

  std::map<std::string, std::unique_ptr<Type>> Interned;
  TypeRef AnyTy = nullptr;
  TypeRef NoneTy = nullptr;
  TypeRef ObjectTy = nullptr;
};

} // namespace typilus

#endif // TYPILUS_TYPESYS_TYPE_H
