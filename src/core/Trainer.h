//===- core/Trainer.h - Training loop ------------------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-batch training loop shared by all nine Table 2 variants:
/// shuffle files, embed each batch, apply the configured loss, Adam-step.
/// Also builds the model's type vocabularies from the training split.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORE_TRAINER_H
#define TYPILUS_CORE_TRAINER_H

#include "corpus/Dataset.h"
#include "models/Model.h"

#include <memory>

namespace typilus {

/// Training-loop knobs.
struct TrainOptions {
  int Epochs = 8;
  int BatchFiles = 4; ///< Files per minibatch (symbols pool across files).
  float LearningRate = 1e-3f;
  float ClipNorm = 5.f;
  uint64_t Seed = 31337;
  bool Verbose = false; ///< Prints per-epoch mean loss to stdout.
  /// Ways of parallelism for embedding/kernel work (0 = all hardware
  /// threads). Every kernel is bit-reproducible across thread counts, so
  /// NumThreads=1 and NumThreads=N produce identical losses and weights;
  /// 1 additionally runs everything inline (today's serial behavior).
  int NumThreads = 0;
};

/// Builds the classification vocabularies (full + erased types) from the
/// training split, as the paper's closed-vocabulary baselines do.
TypeVocabs buildTypeVocabs(const std::vector<FileExample> &Train,
                           TypeUniverse &U);

/// Builds the label vocabulary for the configured node representation.
LabelVocab buildLabelVocab(const std::vector<FileExample> &Train,
                           NodeRepKind Rep);

/// Constructs a model wired to vocabularies derived from \p DS.
std::unique_ptr<TypeModel> makeModel(const ModelConfig &Config,
                                     const Dataset &DS, TypeUniverse &U);

/// Runs the training loop. Returns the final-epoch mean loss.
double trainModel(TypeModel &Model, const std::vector<FileExample> &Train,
                  const TrainOptions &Opts);

} // namespace typilus

#endif // TYPILUS_CORE_TRAINER_H
