//===- core/Trainer.h - Training loop ------------------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-batch training loop shared by all nine Table 2 variants:
/// shuffle files, embed each batch, apply the configured loss, Adam-step.
/// Also builds the model's type vocabularies from the training split.
///
/// The `Trainer` class adds durable checkpoints: `saveCheckpoint` writes
/// the mutable training state (weights, RNG streams, Adam moments, the
/// shuffle order and epoch counter) as a versioned archive, and
/// `resumeFrom` restores it so the continued run is bit-identical to one
/// that never stopped.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORE_TRAINER_H
#define TYPILUS_CORE_TRAINER_H

#include "corpus/Dataset.h"
#include "corpus/ExampleStream.h"
#include "models/Model.h"

#include <memory>
#include <string>

namespace typilus {

/// Payload format version of training checkpoints. Version 2 added the
/// mid-epoch cursor (position in the shuffled order plus the running
/// epoch-loss accumulators) for checkpoint-every-N-steps resume.
inline constexpr uint32_t kCheckpointVersion = 2;

/// Training-loop knobs.
struct TrainOptions {
  int Epochs = 8;
  int BatchFiles = 4; ///< Files per minibatch (symbols pool across files).
  float LearningRate = 1e-3f;
  float ClipNorm = 5.f;
  uint64_t Seed = 31337;
  bool Verbose = false; ///< Prints per-epoch mean loss to stdout.
  /// Ways of parallelism for embedding/kernel work (0 = all hardware
  /// threads). Every kernel is bit-reproducible across thread counts, so
  /// NumThreads=1 and NumThreads=N produce identical losses and weights;
  /// 1 additionally runs everything inline (today's serial behavior).
  int NumThreads = 0;
  /// When non-empty, a resumable checkpoint is written here after every
  /// epoch (failures are reported to stderr but do not abort training).
  std::string CheckpointPath;
  /// Additionally checkpoint every N optimizer steps (0 = per-epoch
  /// only). Mid-epoch checkpoints carry the position within the shuffled
  /// order, so resuming one is bit-identical to never having stopped.
  int CheckpointEverySteps = 0;
  /// Stop run() after N optimizer steps this invocation (0 = train to
  /// completion) — budgeted training, and the deterministic "interrupt"
  /// the mid-epoch resume tests use. A final checkpoint is written at
  /// the stop point when CheckpointPath is set.
  int StopAfterSteps = 0;
  /// Epoch order policy: false (default) is the global Fisher-Yates
  /// shuffle — identical visitation for in-memory and sharded sources,
  /// the bit-identity contract. true asks the source for a shard-aware
  /// order (shards shuffled, then within-shard) that streams each shard
  /// once per epoch; in-memory sources are one implicit shard, for which
  /// the two policies coincide. Resume with the same setting.
  bool ShardAwareShuffle = false;
};

/// Builds the classification vocabularies (full + erased types) from the
/// training split, as the paper's closed-vocabulary baselines do. The
/// streaming form decodes one residency-bounded window at a time; the
/// vector form is the one-implicit-shard adapter over it.
TypeVocabs buildTypeVocabs(ExampleSource &Train, TypeUniverse &U);
TypeVocabs buildTypeVocabs(const std::vector<FileExample> &Train,
                           TypeUniverse &U);

/// Builds the label vocabulary for the configured node representation.
LabelVocab buildLabelVocab(ExampleSource &Train, NodeRepKind Rep);
LabelVocab buildLabelVocab(const std::vector<FileExample> &Train,
                           NodeRepKind Rep);

/// Constructs a model wired to vocabularies derived from the training
/// stream (or, for the convenience overload, from \p DS's train split).
std::unique_ptr<TypeModel> makeModel(const ModelConfig &Config,
                                     ExampleSource &Train, TypeUniverse &U);
std::unique_ptr<TypeModel> makeModel(const ModelConfig &Config,
                                     const Dataset &DS, TypeUniverse &U);

/// The resumable training loop for one model.
class Trainer {
public:
  Trainer(TypeModel &Model, const TrainOptions &Opts);

  /// Trains the remaining epochs [epochsDone(), Opts.Epochs) — resuming
  /// mid-epoch at the checkpointed cursor when there is one — and
  /// returns the final-epoch mean loss (the last checkpointed loss when
  /// nothing is left to train). \p Train may be an in-memory adapter or
  /// a ShardedDataset split; minibatch examples are pinned for the step,
  /// so decoded-shard residency stays bounded. Returns NaN without
  /// training when a resumed checkpoint's shuffle order does not match
  /// \p Train's size — the checkpoint belongs to a different split.
  double run(ExampleSource &Train);
  double run(const std::vector<FileExample> &Train) {
    VectorExampleSource Src(Train);
    return run(Src);
  }

  /// Writes the mutable training state to \p Path.
  bool saveCheckpoint(const std::string &Path, std::string *Err) const;

  /// Restores state written by saveCheckpoint into this trainer and its
  /// model, which must have been constructed with the same configuration
  /// and data (shape drift is rejected). After resuming, run() continues
  /// exactly where the checkpointed run left off.
  bool resumeFrom(const std::string &Path, std::string *Err);

  int epochsDone() const { return EpochsDone; }
  double lastEpochLoss() const { return LastEpochLoss; }

private:
  TypeModel &Model;
  TrainOptions Opts;
  nn::Adam Opt;
  Rng R;
  /// The file visitation order; shuffled in place every epoch, so it is
  /// part of the resumable state.
  std::vector<int> Order;
  bool Resumed = false;
  int EpochsDone = 0;
  double LastEpochLoss = 0;
  /// Mid-epoch cursor (checkpoint-every-N-steps): when MidEpoch is set,
  /// Order is already shuffled for the in-progress epoch and training
  /// continues at CursorPos with the epoch-loss accumulators restored.
  bool MidEpoch = false;
  uint64_t CursorPos = 0;
  double EpochSum = 0;
  int EpochSteps = 0;
};

/// Runs the training loop start to finish. Returns the final-epoch mean
/// loss. (Convenience wrapper over Trainer for callers that never resume.)
double trainModel(TypeModel &Model, ExampleSource &Train,
                  const TrainOptions &Opts);
double trainModel(TypeModel &Model, const std::vector<FileExample> &Train,
                  const TrainOptions &Opts);

} // namespace typilus

#endif // TYPILUS_CORE_TRAINER_H
