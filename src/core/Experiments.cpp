//===- core/Experiments.cpp - Shared experiment harness -------------------------===//

#include "core/Experiments.h"

#include "pyfront/Parser.h"

#include <cstdlib>
#include <ctime>
#include <map>

using namespace typilus;

Workbench Workbench::make(const CorpusConfig &CC, const DatasetConfig &DC) {
  Workbench WB;
  WB.U = std::make_unique<TypeUniverse>();
  WB.H = std::make_unique<TypeHierarchy>(*WB.U);
  CorpusGenerator Gen(CC);
  WB.Files = Gen.generate();
  WB.Udts = Gen.udts();
  WB.DS = buildDataset(WB.Files, WB.Udts, *WB.U, WB.H.get(), DC);
  return WB;
}

BenchScale BenchScale::fromEnv() {
  BenchScale S;
  if (const char *E = std::getenv("TYPILUS_BENCH_FILES"))
    S.NumFiles = std::max(20, std::atoi(E));
  if (const char *E = std::getenv("TYPILUS_BENCH_EPOCHS"))
    S.Epochs = std::max(1, std::atoi(E));
  return S;
}

ModelRun typilus::trainAndEvaluate(Workbench &WB, const ModelConfig &MC,
                                   const TrainOptions &TO,
                                   const KnnOptions &KO) {
  // The whole harness runs on the streaming layer; the in-memory splits
  // are one-implicit-shard adapters, so results are bit-identical to the
  // historical vector-based path (and to a ShardedDataset of the same
  // corpus — tests/ShardTest.cpp pins that equivalence).
  VectorExampleSource TrainSrc(WB.DS.Train), ValidSrc(WB.DS.Valid),
      TestSrc(WB.DS.Test);

  ModelRun Run;
  Run.Model = makeModel(MC, TrainSrc, *WB.U);
  std::clock_t T0 = std::clock();
  trainModel(*Run.Model, TrainSrc, TO);
  Run.TrainSeconds =
      static_cast<double>(std::clock() - T0) / CLOCKS_PER_SEC;

  if (MC.Loss == LossKind::Class) {
    Predictor P = Predictor::classifier(*Run.Model);
    Run.Preds = P.predictAll(TestSrc);
  } else {
    // τmap over train + valid, as in the paper (Sec. 7: "we built the type
    // map over the training and the validation sets").
    ConcatExampleSource MapSrc({&TrainSrc, &ValidSrc});
    Predictor P = Predictor::knn(*Run.Model, MapSrc, KO);
    Run.Preds = P.predictAll(TestSrc);
  }
  Run.Js = judgePredictions(Run.Preds, WB.DS, *WB.H);
  Run.Summary = summarize(Run.Js);
  return Run;
}

std::vector<CheckOutcome>
typilus::runCheckerExperiment(Workbench &WB,
                              const std::vector<PredictionResult> &Preds,
                              bool InferLocals, double StripProb,
                              uint64_t Seed) {
  // Group predictions per file path. Results carry no dataset pointers,
  // so the graph (for NodeIdx -> SymbolId) is found again by path.
  std::map<std::string, std::vector<const PredictionResult *>> ByFile;
  for (const PredictionResult &P : Preds)
    ByFile[P.FilePath].push_back(&P);
  std::map<std::string, const CorpusFile *> SourceOf;
  for (const CorpusFile &F : WB.Files)
    SourceOf[F.Path] = &F;
  std::map<std::string, const FileExample *> ExampleOf;
  for (const auto *Split : {&WB.DS.Train, &WB.DS.Valid, &WB.DS.Test})
    for (const FileExample &F : *Split)
      ExampleOf[F.Path] = &F;

  Checker Check(*WB.U, *WB.H, CheckerOptions{InferLocals});
  std::vector<CheckOutcome> Outcomes;

  for (const auto &[Path, FilePreds] : ByFile) {
    auto SrcIt = SourceOf.find(Path);
    if (SrcIt == SourceOf.end())
      continue;
    // Re-parse: symbol ids are deterministic, so graph SymbolIds align.
    ParsedFile PF = parseFile(Path, SrcIt->second->Source);
    SymbolTable ST;
    buildSymbolTable(PF, ST);

    // Strip a deterministic fraction of annotations (the ε→τ population).
    Rng R(Seed ^ std::hash<std::string>{}(Path));
    std::vector<std::string> Original(ST.size());
    for (size_t I = 0; I != ST.size(); ++I) {
      Original[I] = ST[I]->AnnotationText;
      if (!Original[I].empty() && R.flip(StripProb))
        ST[I]->AnnotationText.clear();
    }
    size_t Baseline = Check.check(PF, ST).size();
    if (Baseline != 0)
      continue; // paper: discard programs that fail before substitution

    auto ExIt = ExampleOf.find(Path);
    if (ExIt == ExampleOf.end())
      continue;
    const FileExample *Ex = ExIt->second;
    for (const PredictionResult *P : FilePreds) {
      TypeRef Pred = P->top();
      if (!Pred || Pred == WB.U->any())
        continue; // paper: Any predictions are skipped
      int SymId =
          Ex->Graph.Nodes[static_cast<size_t>(P->NodeIdx)].SymbolId;
      if (SymId < 0 || static_cast<size_t>(SymId) >= ST.size())
        continue;
      Symbol *Sym = ST[static_cast<size_t>(SymId)];

      CheckOutcome O;
      O.Confidence = P->confidence();
      O.Pred = P;
      const std::string &Cur = Sym->AnnotationText;
      if (Cur.empty())
        O.Kind = CheckOutcome::Case::EpsToTau;
      else if (WB.U->parse(Cur) == Pred)
        O.Kind = CheckOutcome::Case::TauToTau;
      else
        O.Kind = CheckOutcome::Case::TauToTauPrime;

      std::string Saved = Sym->AnnotationText;
      Sym->AnnotationText = Pred->str();
      O.CausesError = !Check.check(PF, ST).empty();
      Sym->AnnotationText = Saved;
      Outcomes.push_back(O);
    }
  }
  return Outcomes;
}
