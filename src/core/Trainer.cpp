//===- core/Trainer.cpp - Training loop ----------------------------------------===//

#include "core/Trainer.h"

#include "support/Archive.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <limits>

using namespace typilus;

TypeVocabs typilus::buildTypeVocabs(const std::vector<FileExample> &Train,
                                    TypeUniverse &U) {
  TypeVocabs TV;
  for (const FileExample &F : Train)
    for (const Target &T : F.Targets) {
      TV.Full.add(T.Type);
      TV.Erased.add(U.erase(T.Type));
    }
  return TV;
}

LabelVocab typilus::buildLabelVocab(const std::vector<FileExample> &Train,
                                    NodeRepKind Rep) {
  std::vector<const TypilusGraph *> Graphs;
  Graphs.reserve(Train.size());
  for (const FileExample &F : Train)
    Graphs.push_back(&F.Graph);
  return LabelVocab::build(Graphs,
                           Rep == NodeRepKind::WholeToken
                               ? LabelVocab::Mode::WholeLabel
                               : LabelVocab::Mode::Subtoken);
}

std::unique_ptr<TypeModel> typilus::makeModel(const ModelConfig &Config,
                                              const Dataset &DS,
                                              TypeUniverse &U) {
  return std::make_unique<TypeModel>(Config,
                                     buildLabelVocab(DS.Train, Config.NodeRep),
                                     buildTypeVocabs(DS.Train, U));
}

Trainer::Trainer(TypeModel &Model, const TrainOptions &Opts)
    : Model(Model), Opts(Opts),
      Opt(Model.params(), Opts.LearningRate, Opts.ClipNorm), R(Opts.Seed) {}

double Trainer::run(const std::vector<FileExample> &Train) {
  // Size the process-wide pool for the run and restore it afterwards (so
  // e.g. NumThreads=1 training does not leave later prediction serial).
  // Minibatch files embed data-parallel (for thread-safe encoders) and the
  // tensor kernels fan out below that, with gradients accumulated by the
  // single backward pass over the merged graph. All of it is
  // bit-reproducible for any NumThreads.
  struct PoolSizeGuard {
    int Prev = globalNumThreads();
    ~PoolSizeGuard() { setGlobalNumThreads(Prev); }
  } Guard;
  setGlobalNumThreads(Opts.NumThreads);

  if (Order.size() != Train.size()) {
    // A restored shuffle order sized for a different split means the
    // checkpoint belongs to other data: refuse to train rather than
    // silently void the resume-equals-uninterrupted contract. (A resumed
    // checkpoint written before any epoch has an empty order; fresh
    // initialization is exactly the uninterrupted behavior then.)
    if (Resumed && !Order.empty()) {
      std::fprintf(stderr,
                   "error: checkpoint shuffle order covers %zu files but the "
                   "training split has %zu; refusing to resume\n",
                   Order.size(), Train.size());
      return std::numeric_limits<double>::quiet_NaN();
    }
    Order.resize(Train.size());
    for (size_t I = 0; I != Train.size(); ++I)
      Order[I] = static_cast<int>(I);
  }

  for (int Epoch = EpochsDone; Epoch < Opts.Epochs; ++Epoch) {
    R.shuffle(Order);
    double Sum = 0;
    int Steps = 0;
    for (size_t Start = 0; Start < Order.size();
         Start += static_cast<size_t>(Opts.BatchFiles)) {
      std::vector<const FileExample *> Batch;
      for (size_t I = Start;
           I < Order.size() && I < Start + static_cast<size_t>(Opts.BatchFiles);
           ++I)
        Batch.push_back(&Train[static_cast<size_t>(Order[I])]);
      std::vector<const Target *> Targets;
      nn::Value Emb = Model.embed(Batch, &Targets);
      if (!Emb.defined() || Targets.empty())
        continue;
      nn::Value Loss = Model.loss(Emb, Targets);
      Model.params().zeroGrads();
      nn::backward(Loss);
      Opt.step();
      Sum += Loss.val()[0];
      ++Steps;
    }
    LastEpochLoss = Steps > 0 ? Sum / Steps : 0;
    EpochsDone = Epoch + 1;
    if (Opts.Verbose)
      std::printf("  epoch %d/%d: mean loss %.4f\n", Epoch + 1, Opts.Epochs,
                  LastEpochLoss);
    if (!Opts.CheckpointPath.empty()) {
      std::string Err;
      if (!saveCheckpoint(Opts.CheckpointPath, &Err))
        std::fprintf(stderr, "warning: checkpoint not written: %s\n",
                     Err.c_str());
    }
  }
  return LastEpochLoss;
}

bool Trainer::saveCheckpoint(const std::string &Path, std::string *Err) const {
  ArchiveWriter W(kCheckpointVersion);
  W.beginChunk("tmet");
  W.writeI32(EpochsDone);
  W.writeF64(LastEpochLoss);
  W.writeU64(R.state());
  W.writeU64(Order.size());
  for (int I : Order)
    W.writeI32(I);
  W.endChunk();

  Model.saveWeights(W); // "rngs" + "parm"

  W.beginChunk("adam");
  Opt.save(W);
  W.endChunk();
  return W.writeFile(Path, Err);
}

bool Trainer::resumeFrom(const std::string &Path, std::string *Err) {
  if (Err)
    Err->clear(); // inner loaders preserve the first error set
  ArchiveReader Rd;
  if (!Rd.openFile(Path, Err))
    return false;
  if (Rd.formatVersion() != kCheckpointVersion) {
    if (Err)
      *Err = "checkpoint format version " +
             std::to_string(Rd.formatVersion()) +
             "; this build reads version " + std::to_string(kCheckpointVersion);
    return false;
  }

  ArchiveCursor MC = Rd.chunk("tmet", Err);
  int32_t NewEpochsDone = MC.readI32();
  double NewLoss = MC.readF64();
  uint64_t RngState = MC.readU64();
  uint64_t OrderSize = MC.readU64();
  if (!MC.ok() || NewEpochsDone < 0 || OrderSize > MC.remaining()) {
    if (Err && Err->empty())
      *Err = "malformed trainer state chunk";
    return false;
  }
  std::vector<int> NewOrder;
  NewOrder.reserve(static_cast<size_t>(OrderSize));
  for (uint64_t I = 0; I != OrderSize; ++I) {
    int V = MC.readI32();
    if (!MC.ok() || V < 0 || static_cast<uint64_t>(V) >= OrderSize) {
      if (Err && Err->empty())
        *Err = "malformed shuffle order in checkpoint";
      return false;
    }
    NewOrder.push_back(V);
  }

  if (!Model.loadWeights(Rd, Err))
    return false;
  ArchiveCursor AC = Rd.chunk("adam", Err);
  if (!Opt.load(AC, Err))
    return false;

  EpochsDone = NewEpochsDone;
  LastEpochLoss = NewLoss;
  R.setState(RngState);
  Order = std::move(NewOrder);
  Resumed = true;
  return true;
}

double typilus::trainModel(TypeModel &Model,
                           const std::vector<FileExample> &Train,
                           const TrainOptions &Opts) {
  Trainer T(Model, Opts);
  return T.run(Train);
}
