//===- core/Trainer.cpp - Training loop ----------------------------------------===//

#include "core/Trainer.h"

#include "support/Archive.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <limits>

using namespace typilus;

TypeVocabs typilus::buildTypeVocabs(ExampleSource &Train, TypeUniverse &U) {
  // One sequential pass: within a shard the examples stream in order, so
  // at most one decoded shard is pinned at a time.
  TypeVocabs TV;
  ExamplePin Pin;
  for (size_t I = 0, N = Train.size(); I != N; ++I) {
    const FileExample &F = Train.get(I, Pin);
    for (const Target &T : F.Targets) {
      TV.Full.add(T.Type);
      TV.Erased.add(U.erase(T.Type));
    }
  }
  return TV;
}

TypeVocabs typilus::buildTypeVocabs(const std::vector<FileExample> &Train,
                                    TypeUniverse &U) {
  VectorExampleSource Src(Train);
  return buildTypeVocabs(Src, U);
}

LabelVocab typilus::buildLabelVocab(ExampleSource &Train, NodeRepKind Rep) {
  LabelVocab::Builder B(Rep == NodeRepKind::WholeToken
                            ? LabelVocab::Mode::WholeLabel
                            : LabelVocab::Mode::Subtoken);
  ExamplePin Pin;
  for (size_t I = 0, N = Train.size(); I != N; ++I)
    B.addGraph(Train.get(I, Pin).Graph);
  return B.finish();
}

LabelVocab typilus::buildLabelVocab(const std::vector<FileExample> &Train,
                                    NodeRepKind Rep) {
  VectorExampleSource Src(Train);
  return buildLabelVocab(Src, Rep);
}

std::unique_ptr<TypeModel> typilus::makeModel(const ModelConfig &Config,
                                              ExampleSource &Train,
                                              TypeUniverse &U) {
  // One merged pass feeds both vocabularies, so a sharded train split
  // decodes each shard once here, not once per vocabulary. Identical
  // results to the separate builds: the label vocabulary comes from a
  // sorted histogram and the type vocabulary sees targets in the same
  // stream order either way.
  LabelVocab::Builder B(Config.NodeRep == NodeRepKind::WholeToken
                            ? LabelVocab::Mode::WholeLabel
                            : LabelVocab::Mode::Subtoken);
  TypeVocabs TV;
  ExamplePin Pin;
  for (size_t I = 0, N = Train.size(); I != N; ++I) {
    const FileExample &F = Train.get(I, Pin);
    B.addGraph(F.Graph);
    for (const Target &T : F.Targets) {
      TV.Full.add(T.Type);
      TV.Erased.add(U.erase(T.Type));
    }
  }
  return std::make_unique<TypeModel>(Config, B.finish(), std::move(TV));
}

std::unique_ptr<TypeModel> typilus::makeModel(const ModelConfig &Config,
                                              const Dataset &DS,
                                              TypeUniverse &U) {
  VectorExampleSource Src(DS.Train);
  return makeModel(Config, Src, U);
}

Trainer::Trainer(TypeModel &Model, const TrainOptions &Opts)
    : Model(Model), Opts(Opts),
      Opt(Model.params(), Opts.LearningRate, Opts.ClipNorm), R(Opts.Seed) {}

double Trainer::run(ExampleSource &Train) {
  // Size the process-wide pool for the run and restore it afterwards (so
  // e.g. NumThreads=1 training does not leave later prediction serial).
  // Minibatch files embed data-parallel (for thread-safe encoders) and the
  // tensor kernels fan out below that, with gradients accumulated by the
  // single backward pass over the merged graph. All of it is
  // bit-reproducible for any NumThreads.
  struct PoolSizeGuard {
    int Prev = globalNumThreads();
    ~PoolSizeGuard() { setGlobalNumThreads(Prev); }
  } Guard;
  setGlobalNumThreads(Opts.NumThreads);

  if (Order.size() != Train.size()) {
    // A restored shuffle order sized for a different split means the
    // checkpoint belongs to other data: refuse to train rather than
    // silently void the resume-equals-uninterrupted contract. (A resumed
    // checkpoint written before any epoch has an empty order; fresh
    // initialization is exactly the uninterrupted behavior then.)
    if (Resumed && !Order.empty()) {
      std::fprintf(stderr,
                   "error: checkpoint shuffle order covers %zu files but the "
                   "training split has %zu; refusing to resume\n",
                   Order.size(), Train.size());
      return std::numeric_limits<double>::quiet_NaN();
    }
    Order.resize(Train.size());
    for (size_t I = 0; I != Train.size(); ++I)
      Order[I] = static_cast<int>(I);
  }

  auto WriteCheckpoint = [&] {
    if (Opts.CheckpointPath.empty())
      return;
    std::string Err;
    if (!saveCheckpoint(Opts.CheckpointPath, &Err))
      std::fprintf(stderr, "warning: checkpoint not written: %s\n",
                   Err.c_str());
  };

  int StepsThisRun = 0;
  for (int Epoch = EpochsDone; Epoch < Opts.Epochs; ++Epoch) {
    size_t StartPos = 0;
    double Sum = 0;
    int Steps = 0;
    if (MidEpoch) {
      // A mid-epoch checkpoint restored the shuffled order, the cursor
      // and the running loss accumulators: pick up exactly there.
      StartPos = static_cast<size_t>(CursorPos);
      Sum = EpochSum;
      Steps = EpochSteps;
      MidEpoch = false;
    } else {
      Train.shuffleEpochOrder(Order, R, Opts.ShardAwareShuffle);
    }
    // Advisory: lets a sharded source decode ahead of the epoch (from
    // the resume cursor when mid-epoch). No effect on any digest.
    Train.planPrefetch(Order, StartPos);
    int SinceCheckpoint = 0;
    for (size_t Start = StartPos; Start < Order.size();
         Start += static_cast<size_t>(Opts.BatchFiles)) {
      // Pins keep each minibatch's backing shards alive for the step;
      // residency beyond the batch is the stream's LRU bound.
      std::vector<ExamplePin> Pins;
      std::vector<const FileExample *> Batch;
      for (size_t I = Start;
           I < Order.size() && I < Start + static_cast<size_t>(Opts.BatchFiles);
           ++I) {
        Pins.emplace_back();
        Batch.push_back(
            &Train.get(static_cast<size_t>(Order[I]), Pins.back()));
      }
      std::vector<const Target *> Targets;
      nn::Value Emb = Model.embed(Batch, &Targets);
      if (!Emb.defined() || Targets.empty())
        continue;
      nn::Value Loss = Model.loss(Emb, Targets);
      Model.params().zeroGrads();
      nn::backward(Loss);
      Opt.step();
      Sum += Loss.val()[0];
      ++Steps;
      ++SinceCheckpoint;
      ++StepsThisRun;

      bool MoreInEpoch =
          Start + static_cast<size_t>(Opts.BatchFiles) < Order.size();
      bool StopNow =
          Opts.StopAfterSteps > 0 && StepsThisRun >= Opts.StopAfterSteps;
      if (MoreInEpoch &&
          (StopNow || (Opts.CheckpointEverySteps > 0 &&
                       SinceCheckpoint >= Opts.CheckpointEverySteps))) {
        // Record the cursor so the checkpoint resumes at the next batch;
        // the members also let a later run() on this trainer continue.
        MidEpoch = true;
        CursorPos = Start + static_cast<size_t>(Opts.BatchFiles);
        EpochSum = Sum;
        EpochSteps = Steps;
        WriteCheckpoint();
        SinceCheckpoint = 0;
        if (StopNow)
          return Steps > 0 ? Sum / Steps : LastEpochLoss;
        MidEpoch = false;
      }
    }
    LastEpochLoss = Steps > 0 ? Sum / Steps : 0;
    EpochsDone = Epoch + 1;
    CursorPos = 0;
    EpochSum = 0;
    EpochSteps = 0;
    if (Opts.Verbose)
      std::printf("  epoch %d/%d: mean loss %.4f\n", Epoch + 1, Opts.Epochs,
                  LastEpochLoss);
    WriteCheckpoint();
    if (Opts.StopAfterSteps > 0 && StepsThisRun >= Opts.StopAfterSteps)
      return LastEpochLoss;
  }
  return LastEpochLoss;
}

bool Trainer::saveCheckpoint(const std::string &Path, std::string *Err) const {
  ArchiveWriter W(kCheckpointVersion);
  W.beginChunk("tmet");
  W.writeI32(EpochsDone);
  W.writeF64(LastEpochLoss);
  W.writeU64(R.state());
  // v2: the mid-epoch cursor. MidEpoch unset means "between epochs" and
  // the cursor fields are ignored on resume.
  W.writeU8(MidEpoch ? 1 : 0);
  W.writeU64(CursorPos);
  W.writeF64(EpochSum);
  W.writeI32(EpochSteps);
  W.writeU64(Order.size());
  for (int I : Order)
    W.writeI32(I);
  W.endChunk();

  Model.saveWeights(W); // "rngs" + "parm"

  W.beginChunk("adam");
  Opt.save(W);
  W.endChunk();
  return W.writeFile(Path, Err);
}

bool Trainer::resumeFrom(const std::string &Path, std::string *Err) {
  if (Err)
    Err->clear(); // inner loaders preserve the first error set
  ArchiveReader Rd;
  if (!Rd.openFile(Path, Err))
    return false;
  if (Rd.formatVersion() != kCheckpointVersion) {
    if (Err)
      *Err = "checkpoint format version " +
             std::to_string(Rd.formatVersion()) +
             "; this build reads version " + std::to_string(kCheckpointVersion);
    return false;
  }

  ArchiveCursor MC = Rd.chunk("tmet", Err);
  int32_t NewEpochsDone = MC.readI32();
  double NewLoss = MC.readF64();
  uint64_t RngState = MC.readU64();
  uint8_t NewMidEpoch = MC.readU8();
  uint64_t NewCursorPos = MC.readU64();
  double NewEpochSum = MC.readF64();
  int32_t NewEpochSteps = MC.readI32();
  uint64_t OrderSize = MC.readU64();
  if (!MC.ok() || NewEpochsDone < 0 || NewMidEpoch > 1 ||
      NewCursorPos > OrderSize || NewEpochSteps < 0 ||
      OrderSize > MC.remaining()) {
    if (Err && Err->empty())
      *Err = "malformed trainer state chunk";
    return false;
  }
  std::vector<int> NewOrder;
  NewOrder.reserve(static_cast<size_t>(OrderSize));
  for (uint64_t I = 0; I != OrderSize; ++I) {
    int V = MC.readI32();
    if (!MC.ok() || V < 0 || static_cast<uint64_t>(V) >= OrderSize) {
      if (Err && Err->empty())
        *Err = "malformed shuffle order in checkpoint";
      return false;
    }
    NewOrder.push_back(V);
  }

  if (!Model.loadWeights(Rd, Err))
    return false;
  ArchiveCursor AC = Rd.chunk("adam", Err);
  if (!Opt.load(AC, Err))
    return false;

  EpochsDone = NewEpochsDone;
  LastEpochLoss = NewLoss;
  R.setState(RngState);
  MidEpoch = NewMidEpoch != 0;
  CursorPos = NewCursorPos;
  EpochSum = NewEpochSum;
  EpochSteps = NewEpochSteps;
  Order = std::move(NewOrder);
  Resumed = true;
  return true;
}

double typilus::trainModel(TypeModel &Model, ExampleSource &Train,
                           const TrainOptions &Opts) {
  Trainer T(Model, Opts);
  return T.run(Train);
}

double typilus::trainModel(TypeModel &Model,
                           const std::vector<FileExample> &Train,
                           const TrainOptions &Opts) {
  VectorExampleSource Src(Train);
  return trainModel(Model, Src, Opts);
}
