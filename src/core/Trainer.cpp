//===- core/Trainer.cpp - Training loop ----------------------------------------===//

#include "core/Trainer.h"

#include "support/ThreadPool.h"

#include <cstdio>

using namespace typilus;

TypeVocabs typilus::buildTypeVocabs(const std::vector<FileExample> &Train,
                                    TypeUniverse &U) {
  TypeVocabs TV;
  for (const FileExample &F : Train)
    for (const Target &T : F.Targets) {
      TV.Full.add(T.Type);
      TV.Erased.add(U.erase(T.Type));
    }
  return TV;
}

LabelVocab typilus::buildLabelVocab(const std::vector<FileExample> &Train,
                                    NodeRepKind Rep) {
  std::vector<const TypilusGraph *> Graphs;
  Graphs.reserve(Train.size());
  for (const FileExample &F : Train)
    Graphs.push_back(&F.Graph);
  return LabelVocab::build(Graphs,
                           Rep == NodeRepKind::WholeToken
                               ? LabelVocab::Mode::WholeLabel
                               : LabelVocab::Mode::Subtoken);
}

std::unique_ptr<TypeModel> typilus::makeModel(const ModelConfig &Config,
                                              const Dataset &DS,
                                              TypeUniverse &U) {
  return std::make_unique<TypeModel>(Config,
                                     buildLabelVocab(DS.Train, Config.NodeRep),
                                     buildTypeVocabs(DS.Train, U));
}

double typilus::trainModel(TypeModel &Model,
                           const std::vector<FileExample> &Train,
                           const TrainOptions &Opts) {
  // Size the process-wide pool for the run and restore it afterwards (so
  // e.g. NumThreads=1 training does not leave later prediction serial).
  // Minibatch files embed data-parallel (for thread-safe encoders) and the
  // tensor kernels fan out below that, with gradients accumulated by the
  // single backward pass over the merged graph. All of it is
  // bit-reproducible for any NumThreads.
  struct PoolSizeGuard {
    int Prev = globalNumThreads();
    ~PoolSizeGuard() { setGlobalNumThreads(Prev); }
  } Guard;
  setGlobalNumThreads(Opts.NumThreads);
  nn::Adam Opt(Model.params(), Opts.LearningRate, Opts.ClipNorm);
  Rng R(Opts.Seed);
  std::vector<int> Order(Train.size());
  for (size_t I = 0; I != Train.size(); ++I)
    Order[I] = static_cast<int>(I);

  double LastEpochLoss = 0;
  for (int Epoch = 0; Epoch != Opts.Epochs; ++Epoch) {
    R.shuffle(Order);
    double Sum = 0;
    int Steps = 0;
    for (size_t Start = 0; Start < Order.size();
         Start += static_cast<size_t>(Opts.BatchFiles)) {
      std::vector<const FileExample *> Batch;
      for (size_t I = Start;
           I < Order.size() && I < Start + static_cast<size_t>(Opts.BatchFiles);
           ++I)
        Batch.push_back(&Train[static_cast<size_t>(Order[I])]);
      std::vector<const Target *> Targets;
      nn::Value Emb = Model.embed(Batch, &Targets);
      if (!Emb.defined() || Targets.empty())
        continue;
      nn::Value Loss = Model.loss(Emb, Targets);
      Model.params().zeroGrads();
      nn::backward(Loss);
      Opt.step();
      Sum += Loss.val()[0];
      ++Steps;
    }
    LastEpochLoss = Steps > 0 ? Sum / Steps : 0;
    if (Opts.Verbose)
      std::printf("  epoch %d/%d: mean loss %.4f\n", Epoch + 1, Opts.Epochs,
                  LastEpochLoss);
  }
  return LastEpochLoss;
}
