//===- core/Predictor.cpp - Type prediction ------------------------------------===//

#include "core/Predictor.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace typilus;

Predictor Predictor::knn(TypeModel &Model,
                         const std::vector<const FileExample *> &MapFiles,
                         const KnnOptions &Opts) {
  Predictor P(Model);
  P.IsKnn = true;
  P.Knn = Opts;
  P.Map = std::make_unique<TypeMap>(Model.config().HiddenDim);

  // Embed the map files (data-parallel when the encoder is thread-safe;
  // each file's forward pass only reads the trained parameters), then fill
  // the τmap in file order so the marker layout never depends on threads.
  std::vector<Tensor> Embs(MapFiles.size());
  std::vector<std::vector<const Target *>> Targets(MapFiles.size());
  auto EmbedOne = [&](size_t I) {
    nn::Value Emb = Model.embed({MapFiles[I]}, &Targets[I]);
    if (Emb.defined())
      Embs[I] = Emb.val();
  };
  if (Model.supportsParallelEmbed()) {
    parallelFor(
        0, static_cast<int64_t>(MapFiles.size()), 1,
        [&](int64_t Lo, int64_t Hi) {
          for (int64_t I = Lo; I != Hi; ++I)
            EmbedOne(static_cast<size_t>(I));
        },
        Opts.NumThreads);
  } else {
    for (size_t I = 0; I != MapFiles.size(); ++I)
      EmbedOne(I);
  }

  size_t Total = 0;
  for (const auto &T : Targets)
    Total += T.size();
  P.Map->reserve(Total);
  for (size_t F = 0; F != MapFiles.size(); ++F) {
    const Tensor &E = Embs[F];
    if (E.numel() == 0)
      continue;
    for (size_t I = 0; I != Targets[F].size(); ++I)
      P.Map->add(E.data() + static_cast<int64_t>(I) * E.cols(),
                 Targets[F][I]->Type);
  }
  P.rebuildIndex();
  return P;
}

Predictor Predictor::classifier(TypeModel &Model) {
  Predictor P(Model);
  P.IsKnn = false;
  return P;
}

//===----------------------------------------------------------------------===//
// Artifact save / load (train-once, serve-many)
//===----------------------------------------------------------------------===//

void Predictor::writeArtifact(ArchiveWriter &W, const TypeUniverse &U) const {
  W.beginChunk("tuni");
  std::map<TypeRef, int> TypeIds = U.save(W);
  W.endChunk();

  Model->save(W, TypeIds);

  W.beginChunk("pred");
  W.writeU8(IsKnn ? 1 : 0);
  W.writeI32(Knn.K);
  W.writeF64(Knn.P);
  W.writeU8(Knn.UseAnnoy ? 1 : 0);
  W.endChunk();

  if (IsKnn) {
    W.beginChunk("tmap");
    Map->save(W, TypeIds);
    W.endChunk();
    if (Annoy) {
      // The built forest ships with the markers, so serving processes
      // skip the index rebuild entirely.
      W.beginChunk("anny");
      Annoy->save(W);
      W.endChunk();
    }
  }
}

bool Predictor::save(const std::string &Path, const TypeUniverse &U,
                     std::string *Err) const {
  ArchiveWriter W(kModelArtifactVersion);
  writeArtifact(W, U);
  return W.writeFile(Path, Err);
}

std::unique_ptr<Predictor> Predictor::load(const ArchiveReader &R,
                                           std::string *Err) {
  // Inner loaders never overwrite an already-set error, so the first —
  // most specific — failure is the one reported. Start from a clean slate.
  if (Err)
    Err->clear();
  if (R.formatVersion() != kModelArtifactVersion) {
    if (Err)
      *Err = "artifact format version " + std::to_string(R.formatVersion()) +
             "; this build reads version " +
             std::to_string(kModelArtifactVersion);
    return nullptr;
  }

  std::unique_ptr<Predictor> P(new Predictor());
  P->OwnedU = std::make_unique<TypeUniverse>();
  std::vector<TypeRef> ById;
  ArchiveCursor UC = R.chunk("tuni", Err);
  if (!P->OwnedU->load(UC, ById, Err))
    return nullptr;

  P->OwnedModel = TypeModel::load(R, ById, Err);
  if (!P->OwnedModel)
    return nullptr;
  P->Model = P->OwnedModel.get();

  ArchiveCursor MC = R.chunk("pred", Err);
  uint8_t Kind = MC.readU8();
  P->Knn.K = MC.readI32();
  P->Knn.P = MC.readF64();
  P->Knn.UseAnnoy = MC.readU8() != 0;
  if (!MC.ok() || Kind > 1 || P->Knn.K <= 0) {
    if (Err && Err->empty())
      *Err = "malformed predictor chunk";
    return nullptr;
  }
  P->IsKnn = Kind == 1;
  if (!P->IsKnn)
    return P;

  P->Map = std::make_unique<TypeMap>(P->Model->config().HiddenDim);
  ArchiveCursor TC = R.chunk("tmap", Err);
  if (!P->Map->load(TC, ById, Err))
    return nullptr;
  if (P->Map->dim() != P->Model->config().HiddenDim) {
    if (Err)
      *Err = "type-map dimensionality does not match the model";
    return nullptr;
  }
  if (R.hasChunk("anny")) {
    ArchiveCursor AC = R.chunk("anny", Err);
    P->Annoy = AnnoyIndex::load(AC, *P->Map, Err);
    if (!P->Annoy)
      return nullptr;
  } else if (P->Knn.UseAnnoy && P->Map->size() > 0) {
    if (Err)
      *Err = "invalid artifact: missing chunk 'anny'";
    return nullptr;
  }
  P->Exact = std::make_unique<ExactIndex>(*P->Map);
  return P;
}

std::unique_ptr<Predictor> Predictor::load(const std::string &Path,
                                           std::string *Err) {
  ArchiveReader R;
  if (!R.openFile(Path, Err))
    return nullptr;
  return load(R, Err);
}

//===----------------------------------------------------------------------===//
// Prediction
//===----------------------------------------------------------------------===//

void Predictor::rebuildIndex() {
  assert(Map && "kNN predictor without a type map");
  if (Knn.UseAnnoy && Map->size() > 0)
    Annoy = std::make_unique<AnnoyIndex>(*Map, /*NumTrees=*/8,
                                         /*LeafSize=*/16, /*Seed=*/0xA220,
                                         Knn.NumThreads);
  else
    Annoy.reset(); // also drops a stale forest when switching to exact
  Exact = std::make_unique<ExactIndex>(*Map);
}

void Predictor::setKnnOptions(const KnnOptions &O) {
  bool NeedRebuild = O.UseAnnoy != Knn.UseAnnoy;
  Knn = O;
  if (NeedRebuild && IsKnn)
    rebuildIndex();
}

void Predictor::addMarker(const float *Embedding, TypeRef T) {
  assert(IsKnn && "markers only apply to kNN predictors");
  Map->add(Embedding, T);
  rebuildIndex();
}

void Predictor::addMarkersFrom(const FileExample &File) {
  assert(IsKnn && "markers only apply to kNN predictors");
  std::vector<const Target *> Targets;
  nn::Value Emb = Model->embed({&File}, &Targets);
  if (!Emb.defined())
    return;
  const Tensor &E = Emb.val();
  Map->reserve(Targets.size());
  for (size_t I = 0; I != Targets.size(); ++I)
    Map->add(E.data() + static_cast<int64_t>(I) * E.cols(), Targets[I]->Type);
  rebuildIndex();
}

/// Copies the stable identity of target row \p I of \p File into \p R —
/// everything downstream consumers need once the dataset is gone.
static void fillIdentity(PredictionResult &R, const FileExample &File,
                         const std::vector<const Target *> &Targets,
                         size_t I) {
  R.FilePath = File.Path;
  R.TargetIdx = static_cast<int>(I);
  R.NodeIdx = Targets[I]->NodeIdx;
  R.SymbolName = Targets[I]->Name;
  R.Kind = Targets[I]->Kind;
  R.Truth = Targets[I]->Type;
}

std::vector<PredictionResult> Predictor::predictFile(const FileExample &File) {
  std::vector<PredictionResult> Results;
  std::vector<const Target *> Targets;
  nn::Value Emb = Model->embed({&File}, &Targets);
  if (!Emb.defined())
    return Results;
  const Tensor &E = Emb.val();

  if (IsKnn) {
    // One bulk index probe for the whole file, answered through the pool.
    int64_t NumQ = static_cast<int64_t>(Targets.size());
    std::vector<NeighborList> Neigh =
        Annoy && Knn.UseAnnoy
            ? Annoy->queryBatch(E.data(), NumQ, Knn.K, /*SearchK=*/-1,
                                Knn.NumThreads)
            : Exact->queryBatch(E.data(), NumQ, Knn.K, Knn.NumThreads);
    for (size_t I = 0; I != Targets.size(); ++I) {
      PredictionResult R;
      fillIdentity(R, File, Targets, I);
      R.Candidates = scoreNeighbors(*Map, Neigh[I], Knn.P);
      Results.push_back(std::move(R));
    }
    return Results;
  }

  // Classification path.
  Tensor Probs = Model->classProbs(Emb);
  const TypeIdMap &Full = Model->typeVocabs().Full;
  for (size_t I = 0; I != Targets.size(); ++I) {
    PredictionResult R;
    fillIdentity(R, File, Targets, I);
    // Keep the top few candidates for PR sweeps.
    std::vector<std::pair<float, int>> Ranked;
    for (int64_t C = 0; C != Probs.cols(); ++C)
      Ranked.emplace_back(Probs.at(static_cast<int64_t>(I), C),
                          static_cast<int>(C));
    size_t Keep = std::min<size_t>(10, Ranked.size());
    std::partial_sort(Ranked.begin(), Ranked.begin() + static_cast<long>(Keep),
                      Ranked.end(), [](const auto &A, const auto &B) {
                        if (A.first != B.first)
                          return A.first > B.first;
                        return A.second < B.second;
                      });
    for (size_t C = 0; C != Keep; ++C)
      R.Candidates.push_back(
          ScoredType{Full.type(Ranked[C].second), Ranked[C].first});
    Results.push_back(std::move(R));
  }
  return Results;
}

std::vector<PredictionResult>
Predictor::predictAll(const std::vector<FileExample> &Files) {
  std::vector<PredictionResult> All;
  for (const FileExample &F : Files) {
    auto Part = predictFile(F);
    All.insert(All.end(), Part.begin(), Part.end());
  }
  return All;
}
