//===- core/Predictor.cpp - Type prediction ------------------------------------===//

#include "core/Predictor.h"

#include "corpus/Dataset.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

using namespace typilus;

const char *typilus::knnIndexName(KnnIndexKind K) {
  switch (K) {
  case KnnIndexKind::Exact:
    return "exact";
  case KnnIndexKind::Annoy:
    return "annoy";
  case KnnIndexKind::Hnsw:
    return "hnsw";
  }
  return "exact";
}

bool typilus::parseKnnIndexKind(std::string_view Name, KnnIndexKind *Out) {
  if (Name == "exact")
    *Out = KnnIndexKind::Exact;
  else if (Name == "annoy")
    *Out = KnnIndexKind::Annoy;
  else if (Name == "hnsw")
    *Out = KnnIndexKind::Hnsw;
  else
    return false;
  return true;
}

/// Microseconds elapsed since \p T0 (stats counters; never affects
/// results).
static uint64_t microsSince(std::chrono::steady_clock::time_point T0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
}

Predictor Predictor::knn(TypeModel &Model, ExampleSource &MapFiles,
                         const KnnOptions &Opts) {
  Predictor P(Model);
  P.IsKnn = true;
  P.Knn = Opts;
  P.Map = std::make_unique<TypeMap>(Model.config().HiddenDim);

  // Pre-size from the stream's metadata (a shard set knows its target
  // totals without decoding anything), then fill window by window: pin a
  // window of files, embed it data-parallel when the encoder is
  // thread-safe (each file's forward pass only reads the trained
  // parameters), and append markers in file order. Windowing changes no
  // bits — every file goes through the same single-file embed, and the
  // marker layout is file order either way — while residency stays one
  // window of decoded shards instead of the whole corpus.
  P.Map->reserve(MapFiles.numTargets());
  constexpr size_t WindowFiles = 32;
  size_t N = MapFiles.size();
  for (size_t Lo = 0; Lo < N; Lo += WindowFiles) {
    size_t Hi = std::min(N, Lo + WindowFiles);
    size_t W = Hi - Lo;
    std::vector<ExamplePin> Pins(W);
    std::vector<const FileExample *> Window(W);
    for (size_t I = 0; I != W; ++I)
      Window[I] = &MapFiles.get(Lo + I, Pins[I]);

    std::vector<Tensor> Embs(W);
    std::vector<std::vector<const Target *>> Targets(W);
    auto EmbedOne = [&](size_t I) {
      nn::Value Emb = Model.embed({Window[I]}, &Targets[I]);
      if (Emb.defined())
        Embs[I] = Emb.val();
    };
    if (Model.supportsParallelEmbed()) {
      parallelFor(
          0, static_cast<int64_t>(W), 1,
          [&](int64_t Lo2, int64_t Hi2) {
            for (int64_t I = Lo2; I != Hi2; ++I)
              EmbedOne(static_cast<size_t>(I));
          },
          Opts.NumThreads);
    } else {
      // Sequential encoders (Path) consume their sampling RNG in file
      // order — identical to the unwindowed fill.
      for (size_t I = 0; I != W; ++I)
        EmbedOne(I);
    }

    P.EmbedCalls += W;
    for (size_t F = 0; F != W; ++F) {
      const Tensor &E = Embs[F];
      if (E.numel() == 0)
        continue;
      // Tag each marker with its source file so the editor loop can
      // retire a file's rows later. Tags are sidecar state: the marker
      // bytes and layout are unchanged.
      for (size_t I = 0; I != Targets[F].size(); ++I)
        P.Map->add(E.data() + static_cast<int64_t>(I) * E.cols(),
                   Targets[F][I]->Type, Window[F]->Path);
    }
  }
  // τmap compaction, in order: bound the marker count over the exact f32
  // coordinates first, then (optionally) quantize the survivors, then
  // build the index over whatever representation will actually serve.
  if (Opts.MaxMarkers > 0)
    P.Map->subsampleCoreset(Opts.MaxMarkers);
  if (Opts.Store != MarkerStore::F32)
    P.Map->quantize(Opts.Store);
  P.rebuildIndex();
  return P;
}

Predictor Predictor::knn(TypeModel &Model,
                         const std::vector<const FileExample *> &MapFiles,
                         const KnnOptions &Opts) {
  PtrExampleSource Src(MapFiles);
  return knn(Model, Src, Opts);
}

Predictor Predictor::classifier(TypeModel &Model) {
  Predictor P(Model);
  P.IsKnn = false;
  return P;
}

//===----------------------------------------------------------------------===//
// Artifact save / load (train-once, serve-many)
//===----------------------------------------------------------------------===//

void Predictor::writeArtifact(ArchiveWriter &W, const TypeUniverse &U) const {
  W.beginChunk("tuni");
  std::map<TypeRef, int> TypeIds = U.save(W);
  W.endChunk();

  Model->save(W, TypeIds);

  W.beginChunk("pred");
  W.writeU8(IsKnn ? 1 : 0);
  W.writeI32(Knn.K);
  W.writeF64(Knn.P);
  // Historically the UseAnnoy bool; the index-kind encoding keeps 0 =
  // exact and 1 = Annoy, so pre-HNSW artifacts are byte-identical.
  W.writeU8(static_cast<uint8_t>(Knn.Index));
  W.endChunk();

  if (IsKnn) {
    // The chunk tag encodes the marker store, so a reader knows the
    // payload layout before parsing it: "tmap" is the unchanged f32
    // stream, "tm16"/"tmq8" the version-2 quantized forms.
    W.beginChunk(Map->store() == MarkerStore::F32   ? "tmap"
                 : Map->store() == MarkerStore::F16 ? "tm16"
                                                    : "tmq8");
    Map->save(W, TypeIds);
    W.endChunk();
    if (Annoy) {
      // The built forest ships with the markers, so serving processes
      // skip the index rebuild entirely.
      W.beginChunk("anny");
      Annoy->save(W);
      W.endChunk();
    }
    if (Hnsw) {
      // Same deal for the HNSW graph (version-3 chunk).
      W.beginChunk("hnsw");
      Hnsw->save(W);
      W.endChunk();
    }
  }
}

uint32_t Predictor::artifactVersion() const {
  if (IsKnn && Hnsw)
    return 3;
  bool Quantized = IsKnn && Map && Map->store() != MarkerStore::F32;
  return Quantized ? 2 : 1;
}

bool Predictor::save(const std::string &Path, const TypeUniverse &U,
                     std::string *Err) const {
  ArchiveWriter W(artifactVersion());
  writeArtifact(W, U);
  return W.writeFile(Path, Err);
}

std::unique_ptr<Predictor> Predictor::load(const ArchiveReader &R,
                                           std::string *Err) {
  // Inner loaders never overwrite an already-set error, so the first —
  // most specific — failure is the one reported. Start from a clean slate.
  if (Err)
    Err->clear();
  if (R.formatVersion() < kModelArtifactVersionMin ||
      R.formatVersion() > kModelArtifactVersion) {
    if (Err)
      *Err = "artifact format version " + std::to_string(R.formatVersion()) +
             "; this build reads versions " +
             std::to_string(kModelArtifactVersionMin) + ".." +
             std::to_string(kModelArtifactVersion);
    return nullptr;
  }

  std::unique_ptr<Predictor> P(new Predictor());
  P->OwnedU = std::make_unique<TypeUniverse>();
  std::vector<TypeRef> ById;
  ArchiveCursor UC = R.chunk("tuni", Err);
  if (!P->OwnedU->load(UC, ById, Err))
    return nullptr;

  P->OwnedModel = TypeModel::load(R, ById, Err);
  if (!P->OwnedModel)
    return nullptr;
  P->Model = P->OwnedModel.get();

  ArchiveCursor MC = R.chunk("pred", Err);
  uint8_t Kind = MC.readU8();
  P->Knn.K = MC.readI32();
  P->Knn.P = MC.readF64();
  uint8_t IndexKind = MC.readU8();
  if (!MC.ok() || Kind > 1 || P->Knn.K <= 0 ||
      IndexKind > static_cast<uint8_t>(KnnIndexKind::Hnsw)) {
    if (Err && Err->empty())
      *Err = "malformed predictor chunk";
    return nullptr;
  }
  P->Knn.Index = static_cast<KnnIndexKind>(IndexKind);
  P->IsKnn = Kind == 1;
  if (!P->IsKnn)
    return P;

  P->Map = std::make_unique<TypeMap>(P->Model->config().HiddenDim);
  // Exactly one τmap chunk is present; its tag names the store. Probing
  // for the quantized tags first keeps the common f32 miss cheap and
  // makes the "missing chunk" error name the canonical tag.
  MarkerStore Store = MarkerStore::F32;
  const char *Tag = "tmap";
  if (R.hasChunk("tm16")) {
    Store = MarkerStore::F16;
    Tag = "tm16";
  } else if (R.hasChunk("tmq8")) {
    Store = MarkerStore::Int8;
    Tag = "tmq8";
  }
  ArchiveCursor TC = R.chunk(Tag, Err);
  if (!P->Map->load(TC, ById, Err, Store))
    return nullptr;
  P->Knn.Store = P->Map->store();
  if (P->Map->dim() != P->Model->config().HiddenDim) {
    if (Err)
      *Err = "type-map dimensionality does not match the model";
    return nullptr;
  }
  if (R.hasChunk("anny")) {
    ArchiveCursor AC = R.chunk("anny", Err);
    P->Annoy = AnnoyIndex::load(AC, *P->Map, Err);
    if (!P->Annoy)
      return nullptr;
  } else if (P->Knn.Index == KnnIndexKind::Annoy && P->Map->size() > 0) {
    if (Err)
      *Err = "invalid artifact: missing chunk 'anny'";
    return nullptr;
  }
  if (R.hasChunk("hnsw")) {
    ArchiveCursor HC = R.chunk("hnsw", Err);
    P->Hnsw = HnswIndex::load(HC, *P->Map, Err);
    if (!P->Hnsw)
      return nullptr;
  } else if (P->Knn.Index == KnnIndexKind::Hnsw && P->Map->size() > 0) {
    if (Err)
      *Err = "invalid artifact: missing chunk 'hnsw'";
    return nullptr;
  }
  P->Exact = std::make_unique<ExactIndex>(*P->Map);
  return P;
}

std::unique_ptr<Predictor> Predictor::load(const std::string &Path,
                                           std::string *Err) {
  ArchiveReader R;
  if (!R.openFile(Path, Err))
    return nullptr;
  return load(R, Err);
}

//===----------------------------------------------------------------------===//
// Prediction
//===----------------------------------------------------------------------===//

void Predictor::rebuildIndex() {
  assert(Map && "kNN predictor without a type map");
  if (Knn.Index == KnnIndexKind::Annoy && Map->size() > 0)
    Annoy = std::make_unique<AnnoyIndex>(*Map, /*NumTrees=*/8,
                                         /*LeafSize=*/16, /*Seed=*/0xA220,
                                         Knn.NumThreads);
  else
    Annoy.reset(); // also drops a stale forest when switching away
  if (Knn.Index == KnnIndexKind::Hnsw && Map->size() > 0)
    Hnsw = std::make_unique<HnswIndex>(*Map, /*M=*/16,
                                       /*EfConstruction=*/128,
                                       /*Seed=*/0x45317, Knn.NumThreads);
  else
    Hnsw.reset();
  Exact = std::make_unique<ExactIndex>(*Map);
}

void Predictor::setKnnOptions(const KnnOptions &O) {
  // EfSearch is a query-time knob; only an index *kind* change forces a
  // rebuild.
  bool NeedRebuild = O.Index != Knn.Index;
  Knn = O;
  if (NeedRebuild && IsKnn)
    rebuildIndex();
}

bool Predictor::setMarkerStore(MarkerStore S, std::string *Err) {
  if (!IsKnn || !Map) {
    if (Err)
      *Err = "marker storage formats apply to kNN predictors only";
    return false;
  }
  if (Map->store() == S)
    return true;
  if (Map->store() != MarkerStore::F32) {
    if (Err)
      *Err = std::string("cannot requantize a ") +
             markerStoreName(Map->store()) + " type map to " +
             markerStoreName(S) +
             "; quantization is one-way (start from the f32 artifact)";
    return false;
  }
  Map->quantize(S);
  Knn.Store = S;
  rebuildIndex();
  return true;
}

void Predictor::addMarker(const float *Embedding, TypeRef T) {
  assert(IsKnn && "markers only apply to kNN predictors");
  // No index rebuild: rows appended after the forest was built are
  // answered by queryNeighbors' exact delta scan until the next
  // compaction (or explicit rebuild) folds them in.
  Map->add(Embedding, T);
}

void Predictor::addMarkersFrom(const FileExample &File) {
  assert(IsKnn && "markers only apply to kNN predictors");
  std::vector<const Target *> Targets;
  nn::Value Emb = Model->embed({&File}, &Targets);
  ++EmbedCalls;
  if (!Emb.defined())
    return;
  const Tensor &E = Emb.val();
  Map->reserve(Map->size() + Targets.size()); // reserve() takes a total
  for (size_t I = 0; I != Targets.size(); ++I)
    Map->add(E.data() + static_cast<int64_t>(I) * E.cols(),
             Targets[I]->Type, File.Path);
}

/// Copies the stable identity of target \p T (index \p I of \p File's
/// Targets) into \p R — everything downstream consumers need once the
/// dataset is gone.
static void fillIdentity(PredictionResult &R, const FileExample &File,
                         const Target &T, size_t I) {
  R.FilePath = File.Path;
  R.TargetIdx = static_cast<int>(I);
  R.NodeIdx = T.NodeIdx;
  R.SymbolId = T.NodeIdx >= 0 &&
                       static_cast<size_t>(T.NodeIdx) < File.Graph.Nodes.size()
                   ? File.Graph.Nodes[static_cast<size_t>(T.NodeIdx)].SymbolId
                   : -1;
  R.SymbolName = T.Name;
  R.Kind = T.Kind;
  R.Truth = T.Type;
}

std::vector<PredictionResult> Predictor::predictFile(const FileExample &File) {
  return std::move(predictBatch({&File}).front());
}

std::vector<NeighborList> Predictor::queryNeighbors(const float *Qs,
                                                    int64_t NumQ) {
  std::vector<NeighborList> Neigh;
  size_t From = 0;
  if (Knn.Index == KnnIndexKind::Annoy && Annoy) {
    Neigh = Annoy->queryBatch(Qs, NumQ, Knn.K, /*SearchK=*/-1,
                              Knn.NumThreads);
    From = Annoy->indexedMarkers();
  } else if (Knn.Index == KnnIndexKind::Hnsw && Hnsw) {
    Neigh = Hnsw->queryBatch(Qs, NumQ, Knn.K,
                             Knn.EfSearch > 0 ? Knn.EfSearch : -1,
                             Knn.NumThreads);
    From = Hnsw->indexedMarkers();
  } else {
    return Exact->queryBatch(Qs, NumQ, Knn.K, Knn.NumThreads);
  }
  // Rows appended after the index was built are invisible to it; an
  // exact scan over that delta merges into each answer under the same
  // (distance, index) order the indexes use, so folding the delta into a
  // rebuilt index would change no bits.
  if (From < Map->size()) {
    const int64_t D = Map->dim();
    for (int64_t Q = 0; Q != NumQ; ++Q) {
      NeighborList &L = Neigh[static_cast<size_t>(Q)];
      const float *Query = Qs + Q * D;
      for (size_t I = From; I != Map->size(); ++I)
        if (Map->isLive(I))
          L.emplace_back(static_cast<int>(I), Map->l1DistanceTo(Query, I));
      std::sort(L.begin(), L.end(), [](const auto &A, const auto &B) {
        if (A.second != B.second)
          return A.second < B.second;
        return A.first < B.first;
      });
      if (L.size() > static_cast<size_t>(Knn.K))
        L.resize(static_cast<size_t>(Knn.K));
    }
  }
  return Neigh;
}

std::vector<std::vector<PredictionResult>>
Predictor::predictSources(const std::vector<CorpusFile> &Files) {
  TypeUniverse *U = universe();
  if (!U)
    throw std::runtime_error(
        "predictSource needs a type universe: load an artifact or call "
        "setUniverse first");
  std::vector<FileExample> Examples;
  Examples.reserve(Files.size());
  for (const CorpusFile &F : Files)
    Examples.push_back(buildExample(F, *U, {}));
  std::vector<const FileExample *> Ptrs;
  Ptrs.reserve(Examples.size());
  for (const FileExample &E : Examples)
    Ptrs.push_back(&E);
  return predictBatch(Ptrs);
}

std::vector<PredictionResult>
Predictor::predictSource(const std::string &Path, const std::string &Source) {
  return std::move(predictSources({CorpusFile{Path, Source}}).front());
}

std::vector<PredictionResult>
Predictor::annotateIncremental(const std::string &Path,
                               const std::string &Source) {
  assert(IsKnn && "the incremental loop is a kNN-predictor feature");
  TypeUniverse *U = universe();
  if (!U)
    throw std::runtime_error(
        "annotateIncremental needs a type universe: load an artifact or "
        "call setUniverse first");
  // 1. Retire the file's previous markers: its own stale rows must never
  //    answer its queries (and a single-file session's digest therefore
  //    matches predictSource over the untouched artifact — CI pins this).
  Map->removeMarkersForFile(Path);
  // 2. Parse and embed only this file — exactly one encoder pass, which
  //    embedCalls() lets tests pin.
  FileExample Ex = buildExample(CorpusFile{Path, Source}, *U, {});
  std::vector<const Target *> Targets;
  auto EmbedT0 = std::chrono::steady_clock::now();
  nn::Value Emb = Model->embed({&Ex}, &Targets);
  ++EmbedCalls;
  EmbedMicros += microsSince(EmbedT0);
  std::vector<PredictionResult> Out;
  if (Emb.defined() && !Targets.empty()) {
    const Tensor &E = Emb.val();
    // 3. kNN against the updated index, through the same merged query
    //    kernel predictBatch uses.
    auto KnnT0 = std::chrono::steady_clock::now();
    std::vector<NeighborList> Neigh =
        queryNeighbors(E.data(), static_cast<int64_t>(Targets.size()));
    KnnMicros += microsSince(KnnT0);
    Out.reserve(Targets.size());
    for (size_t I = 0; I != Targets.size(); ++I) {
      PredictionResult R;
      fillIdentity(R, Ex, *Targets[I], I);
      R.Candidates = scoreNeighbors(*Map, Neigh[I], Knn.P);
      Out.push_back(std::move(R));
    }
    // 4. Swap in the file's current markers so other files' queries see
    //    its content. Unchanged rows resurrect their tombstones in place
    //    — the τmap is bit-identical to the pre-edit state.
    for (size_t I = 0; I != Targets.size(); ++I)
      if (Targets[I]->Type)
        Map->add(E.data() + static_cast<int64_t>(I) * E.cols(),
                 Targets[I]->Type, Path);
  }
  // 5. Amortized compaction: only past the policy ratio do tombstones get
  //    dropped and the forest rebuilt (over the live rows only).
  maybeCompact();
  return Out;
}

size_t Predictor::removeMarkersForFile(const std::string &Path) {
  if (!IsKnn || !Map)
    return 0;
  size_t Removed = Map->removeMarkersForFile(Path);
  if (Removed)
    maybeCompact();
  return Removed;
}

bool Predictor::compactMarkers() {
  if (!IsKnn || !Map || !Map->compact())
    return false;
  rebuildIndex();
  return true;
}

void Predictor::maybeCompact() {
  if (Knn.CompactRatio > 0 && Map->tombstoneRatio() > Knn.CompactRatio)
    compactMarkers();
}

std::vector<std::vector<PredictionResult>>
Predictor::predictBatch(const std::vector<const FileExample *> &Files) {
  std::vector<std::vector<PredictionResult>> Out(Files.size());
  if (Files.empty())
    return Out;

  // File-level data parallelism: each file goes through the exact
  // single-file embed call predictFile would make — bit-identity with
  // single-shot prediction holds by construction — and thread-safe
  // encoders embed files concurrently through the pool. (A merged
  // multi-file batch graph was measured slower here: the batched node
  // matrix blows the cache while the small per-request GEMMs were never
  // parallel to begin with. File granularity scales with cores instead.)
  size_t N = Files.size();
  std::vector<Tensor> Embs(N);
  std::vector<std::vector<const Target *>> Targets(N);
  auto EmbedOne = [&](size_t I) {
    nn::Value Emb = Model->embed({Files[I]}, &Targets[I]);
    if (Emb.defined())
      Embs[I] = Emb.val();
  };
  auto EmbedT0 = std::chrono::steady_clock::now();
  if (Model->supportsParallelEmbed()) {
    parallelFor(
        0, static_cast<int64_t>(N), 1,
        [&](int64_t Lo, int64_t Hi) {
          for (int64_t I = Lo; I != Hi; ++I)
            EmbedOne(static_cast<size_t>(I));
        },
        Knn.NumThreads);
  } else {
    // Path consumes its sampling RNG sequentially — file order here is
    // the same order separate predictFile calls would consume it in.
    for (size_t I = 0; I != N; ++I)
      EmbedOne(I);
  }
  EmbedCalls += N;
  EmbedMicros += microsSince(EmbedT0);

  if (IsKnn) {
    // One bulk index probe for every target of every file, answered
    // through the pool against the already-loaded τmap.
    int64_t D = Map->dim();
    std::vector<float> Queries;
    int64_t NumQ = 0;
    for (size_t I = 0; I != N; ++I)
      NumQ += static_cast<int64_t>(Targets[I].size());
    Queries.reserve(static_cast<size_t>(NumQ * D));
    for (size_t I = 0; I != N; ++I)
      if (Embs[I].numel() > 0)
        Queries.insert(Queries.end(), Embs[I].data(),
                       Embs[I].data() + Embs[I].numel());
    auto KnnT0 = std::chrono::steady_clock::now();
    std::vector<NeighborList> Neigh = queryNeighbors(Queries.data(), NumQ);
    KnnMicros += microsSince(KnnT0);
    size_t Row = 0;
    for (size_t F = 0; F != N; ++F)
      for (size_t I = 0; I != Targets[F].size(); ++I) {
        PredictionResult R;
        fillIdentity(R, *Files[F], *Targets[F][I], I);
        R.Candidates = scoreNeighbors(*Map, Neigh[Row++], Knn.P);
        Out[F].push_back(std::move(R));
      }
    return Out;
  }

  // Classification path: per-file softmax over the closed vocabulary
  // (row results are independent, so per-file equals one stacked pass).
  const TypeIdMap &Full = Model->typeVocabs().Full;
  for (size_t F = 0; F != N; ++F) {
    if (Embs[F].numel() == 0)
      continue;
    Tensor Probs = Model->classProbs(nn::Value::constant(Embs[F]));
    for (size_t I = 0; I != Targets[F].size(); ++I) {
      PredictionResult R;
      fillIdentity(R, *Files[F], *Targets[F][I], I);
      // Keep the top few candidates for PR sweeps.
      std::vector<std::pair<float, int>> Ranked;
      for (int64_t C = 0; C != Probs.cols(); ++C)
        Ranked.emplace_back(Probs.at(static_cast<int64_t>(I), C),
                            static_cast<int>(C));
      size_t Keep = std::min<size_t>(10, Ranked.size());
      std::partial_sort(Ranked.begin(),
                        Ranked.begin() + static_cast<long>(Keep), Ranked.end(),
                        [](const auto &A, const auto &B) {
                          if (A.first != B.first)
                            return A.first > B.first;
                          return A.second < B.second;
                        });
      for (size_t C = 0; C != Keep; ++C)
        R.Candidates.push_back(
            ScoredType{Full.type(Ranked[C].second), Ranked[C].first});
      Out[F].push_back(std::move(R));
    }
  }
  return Out;
}

std::vector<PredictionResult> Predictor::predictAll(ExampleSource &Files) {
  // Chunked so a whole-corpus call does not materialize one giant batch
  // graph (and a streamed split never decodes more than a chunk's worth
  // of shards); results are identical for any chunk size.
  constexpr size_t ChunkFiles = 32;
  std::vector<PredictionResult> All;
  size_t N = Files.size();
  for (size_t Lo = 0; Lo < N; Lo += ChunkFiles) {
    size_t Hi = std::min(N, Lo + ChunkFiles);
    std::vector<ExamplePin> Pins(Hi - Lo);
    std::vector<const FileExample *> Chunk;
    Chunk.reserve(Hi - Lo);
    for (size_t I = Lo; I != Hi; ++I)
      Chunk.push_back(&Files.get(I, Pins[I - Lo]));
    for (std::vector<PredictionResult> &Part : predictBatch(Chunk))
      All.insert(All.end(), std::make_move_iterator(Part.begin()),
                 std::make_move_iterator(Part.end()));
  }
  return All;
}

std::vector<PredictionResult>
Predictor::predictAll(const std::vector<FileExample> &Files) {
  VectorExampleSource Src(Files);
  return predictAll(Src);
}

uint64_t typilus::predictionDigest(const std::vector<PredictionResult> &Preds) {
  uint64_t H = 0xCBF29CE484222325ull;
  auto Mix = [&H](const void *Data, size_t N) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != N; ++I) {
      H ^= P[I];
      H *= 0x100000001B3ull;
    }
  };
  for (const PredictionResult &P : Preds) {
    Mix(P.FilePath.data(), P.FilePath.size());
    Mix(&P.TargetIdx, sizeof(P.TargetIdx));
    for (const ScoredType &S : P.Candidates) {
      const std::string &T = S.Type->str();
      Mix(T.data(), T.size());
      Mix(&S.Prob, sizeof(S.Prob));
    }
  }
  return H;
}
