//===- core/Evaluator.h - Evaluation metrics -----------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's three criteria (Sec. 6.1) — exact match, match up to the
/// parametric type, and type neutrality — with the common/rare breakdown
/// of Table 2, the per-kind breakdown of Table 3, precision-recall sweeps
/// (Figs. 4 and 7) and the annotation-count buckets of Fig. 5.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORE_EVALUATOR_H
#define TYPILUS_CORE_EVALUATOR_H

#include "core/Predictor.h"
#include "corpus/Dataset.h"
#include "typesys/Hierarchy.h"

#include <vector>

namespace typilus {

/// One judged prediction.
struct Judged {
  TypeRef Truth = nullptr;
  TypeRef Pred = nullptr;
  double Confidence = 0;
  bool Exact = false;
  bool UpToParametric = false;
  bool Neutral = false;
  bool Rare = false; ///< Ground truth seen < CommonThreshold times in train.
  SymbolKind Kind = SymbolKind::Variable;
  int TrainCount = 0; ///< Annotations of the truth type in training.
};

/// Judges top-1 predictions against ground truth. The rareness split
/// needs only the training-annotation histogram, so streamed corpora
/// (corpus/ShardedDataset, whose manifest carries the merged counts)
/// judge through the first form; the Dataset form is a convenience over
/// it.
std::vector<Judged> judgePredictions(const std::vector<PredictionResult> &Preds,
                                     const std::map<TypeRef, int> &TrainCounts,
                                     int CommonThreshold,
                                     const TypeHierarchy &H);
std::vector<Judged> judgePredictions(const std::vector<PredictionResult> &Preds,
                                     const Dataset &DS,
                                     const TypeHierarchy &H);

/// Aggregate percentages in [0,100], following Table 2's columns.
struct EvalSummary {
  double ExactAll = 0, ExactCommon = 0, ExactRare = 0;
  double UpAll = 0, UpCommon = 0, UpRare = 0;
  double Neutral = 0;
  size_t Count = 0, RareCount = 0;
};

EvalSummary summarize(const std::vector<Judged> &Js);

/// Summary restricted to one symbol kind (Table 3).
EvalSummary summarizeKind(const std::vector<Judged> &Js, SymbolKind K);

/// Which criterion a PR sweep scores on.
enum class Criterion { Exact, UpToParametric, Neutral };

/// One precision/recall point at a confidence threshold.
struct PrPoint {
  double Threshold = 0;
  double Recall = 0;    ///< Fraction of symbols predicted at this threshold.
  double Precision = 0; ///< Fraction of those that satisfy the criterion.
};

/// Sweeps confidence thresholds (Figs. 4/7). \p NumPoints evenly spaced
/// quantile thresholds.
std::vector<PrPoint> prCurve(const std::vector<Judged> &Js, Criterion C,
                             int NumPoints = 20);

/// Sec. 7's wrong-annotation audit: a prediction that confidently
/// disagrees with the file's existing annotation (the fairseq/allennlp
/// pull-request hunt). The same criterion the LSP publishes as Warning
/// diagnostics.
struct Disagreement {
  const PredictionResult *Pred = nullptr; ///< Points into the input vector.
  TypeRef Annotated = nullptr;            ///< The annotation disagreed with.
  TypeRef Predicted = nullptr;            ///< The model's top candidate.
  double Confidence = 0;
};

/// Scans \p Preds for predictions whose top candidate differs from the
/// recorded annotation (PredictionResult::Truth) at confidence >=
/// \p MinConfidence. Unannotated targets and empty candidate lists are
/// skipped. Input order is preserved.
std::vector<Disagreement>
findConfidentDisagreements(const std::vector<PredictionResult> &Preds,
                           double MinConfidence = 0.8);

/// Fig. 5: accuracy bucketed by the truth type's training-annotation count.
struct Bucket {
  int MaxCount = 0; ///< Bucket upper bound (inclusive).
  double Exact = 0;
  double UpToParametric = 0;
  size_t Num = 0;
};
std::vector<Bucket> bucketByAnnotationCount(const std::vector<Judged> &Js,
                                            const std::vector<int> &Bounds);

} // namespace typilus

#endif // TYPILUS_CORE_EVALUATOR_H
