//===- core/Evaluator.cpp - Evaluation metrics ---------------------------------===//

#include "core/Evaluator.h"

#include <algorithm>
#include <functional>
#include <cassert>

using namespace typilus;

std::vector<Judged>
typilus::judgePredictions(const std::vector<PredictionResult> &Preds,
                          const std::map<TypeRef, int> &TrainCounts,
                          int CommonThreshold, const TypeHierarchy &H) {
  TypeUniverse &U = H.universe();
  std::vector<Judged> Out;
  Out.reserve(Preds.size());
  for (const PredictionResult &P : Preds) {
    Judged J;
    J.Truth = P.Truth;
    J.Pred = P.top();
    J.Confidence = P.confidence();
    J.Kind = P.Kind;
    auto It = TrainCounts.find(J.Truth);
    J.TrainCount = It == TrainCounts.end() ? 0 : It->second;
    J.Rare = J.TrainCount < CommonThreshold;
    if (J.Pred) {
      J.Exact = J.Pred == J.Truth;
      J.UpToParametric = U.erase(J.Pred) == U.erase(J.Truth);
      J.Neutral = H.isNeutral(J.Truth, J.Pred);
    }
    Out.push_back(J);
  }
  return Out;
}

std::vector<Judged>
typilus::judgePredictions(const std::vector<PredictionResult> &Preds,
                          const Dataset &DS, const TypeHierarchy &H) {
  return judgePredictions(Preds, DS.TrainTypeCounts, DS.CommonThreshold, H);
}

static EvalSummary summarizeIf(const std::vector<Judged> &Js,
                               const std::function<bool(const Judged &)> &Keep) {
  EvalSummary S;
  size_t Common = 0;
  size_t ExactAll = 0, ExactC = 0, ExactR = 0;
  size_t UpAll = 0, UpC = 0, UpR = 0, Neut = 0;
  for (const Judged &J : Js) {
    if (!Keep(J))
      continue;
    ++S.Count;
    if (J.Rare)
      ++S.RareCount;
    else
      ++Common;
    ExactAll += J.Exact;
    UpAll += J.UpToParametric;
    Neut += J.Neutral;
    if (J.Rare) {
      ExactR += J.Exact;
      UpR += J.UpToParametric;
    } else {
      ExactC += J.Exact;
      UpC += J.UpToParametric;
    }
  }
  auto Pct = [](size_t Hit, size_t Total) {
    return Total == 0 ? 0.0
                      : 100.0 * static_cast<double>(Hit) /
                            static_cast<double>(Total);
  };
  S.ExactAll = Pct(ExactAll, S.Count);
  S.ExactCommon = Pct(ExactC, Common);
  S.ExactRare = Pct(ExactR, S.RareCount);
  S.UpAll = Pct(UpAll, S.Count);
  S.UpCommon = Pct(UpC, Common);
  S.UpRare = Pct(UpR, S.RareCount);
  S.Neutral = Pct(Neut, S.Count);
  return S;
}

EvalSummary typilus::summarize(const std::vector<Judged> &Js) {
  return summarizeIf(Js, [](const Judged &) { return true; });
}

EvalSummary typilus::summarizeKind(const std::vector<Judged> &Js,
                                   SymbolKind K) {
  return summarizeIf(Js, [K](const Judged &J) { return J.Kind == K; });
}

std::vector<PrPoint> typilus::prCurve(const std::vector<Judged> &Js,
                                      Criterion C, int NumPoints) {
  auto Hit = [C](const Judged &J) {
    switch (C) {
    case Criterion::Exact: return J.Exact;
    case Criterion::UpToParametric: return J.UpToParametric;
    case Criterion::Neutral: return J.Neutral;
    }
    return false;
  };
  std::vector<double> Confs;
  Confs.reserve(Js.size());
  for (const Judged &J : Js)
    Confs.push_back(J.Confidence);
  std::sort(Confs.begin(), Confs.end());

  std::vector<PrPoint> Curve;
  for (int I = 0; I != NumPoints; ++I) {
    double Thr =
        Confs.empty()
            ? 0
            : Confs[std::min(Confs.size() - 1,
                             Confs.size() * static_cast<size_t>(I) /
                                 static_cast<size_t>(NumPoints))];
    size_t Kept = 0, Correct = 0;
    for (const Judged &J : Js) {
      if (J.Confidence < Thr)
        continue;
      ++Kept;
      Correct += Hit(J);
    }
    PrPoint P;
    P.Threshold = Thr;
    P.Recall = Js.empty() ? 0
                          : static_cast<double>(Kept) /
                                static_cast<double>(Js.size());
    P.Precision = Kept == 0 ? 1.0
                            : static_cast<double>(Correct) /
                                  static_cast<double>(Kept);
    Curve.push_back(P);
  }
  return Curve;
}

std::vector<Bucket>
typilus::bucketByAnnotationCount(const std::vector<Judged> &Js,
                                 const std::vector<int> &Bounds) {
  std::vector<Bucket> Buckets;
  for (int B : Bounds) {
    Bucket Bu;
    Bu.MaxCount = B;
    Buckets.push_back(Bu);
  }
  for (const Judged &J : Js) {
    for (Bucket &B : Buckets) {
      if (J.TrainCount <= B.MaxCount) {
        ++B.Num;
        B.Exact += J.Exact;
        B.UpToParametric += J.UpToParametric;
        break;
      }
    }
  }
  for (Bucket &B : Buckets) {
    if (B.Num > 0) {
      B.Exact = 100.0 * B.Exact / static_cast<double>(B.Num);
      B.UpToParametric = 100.0 * B.UpToParametric / static_cast<double>(B.Num);
    }
  }
  return Buckets;
}

std::vector<Disagreement>
typilus::findConfidentDisagreements(const std::vector<PredictionResult> &Preds,
                                    double MinConfidence) {
  std::vector<Disagreement> Out;
  for (const PredictionResult &P : Preds) {
    TypeRef Top = P.top();
    if (!Top || !P.Truth || Top == P.Truth ||
        P.confidence() < MinConfidence)
      continue;
    Disagreement D;
    D.Pred = &P;
    D.Annotated = P.Truth;
    D.Predicted = Top;
    D.Confidence = P.confidence();
    Out.push_back(D);
  }
  return Out;
}
