//===- core/Experiments.h - Shared experiment harness --------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The harness shared by every bench binary: builds one corpus/dataset
/// (the "workbench"), trains a model variant on it, predicts over the test
/// split and judges the predictions. Also implements the Sec. 6.3 protocol
/// (substitute one prediction at a time and type check).
///
/// Benches honour two environment variables so the full harness scales:
///   TYPILUS_BENCH_FILES  — corpus size (default 120)
///   TYPILUS_BENCH_EPOCHS — training epochs (default 16)
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORE_EXPERIMENTS_H
#define TYPILUS_CORE_EXPERIMENTS_H

#include "checker/Checker.h"
#include "core/Evaluator.h"
#include "core/Trainer.h"

#include <memory>

namespace typilus {

/// One corpus + dataset + type universe, shared across model variants so
/// Table 2's nine rows see identical data.
struct Workbench {
  std::unique_ptr<TypeUniverse> U;
  std::unique_ptr<TypeHierarchy> H;
  std::vector<CorpusFile> Files;
  std::vector<UdtSpec> Udts;
  Dataset DS;

  static Workbench make(const CorpusConfig &CC, const DatasetConfig &DC);
};

/// Scaled experiment sizes (env-var overridable, see file comment).
struct BenchScale {
  int NumFiles = 120;
  int Epochs = 16;
  static BenchScale fromEnv();
};

/// A trained and evaluated model variant.
struct ModelRun {
  std::unique_ptr<TypeModel> Model;
  std::vector<PredictionResult> Preds; ///< Over the workbench test split.
  std::vector<Judged> Js;
  EvalSummary Summary;
  double TrainSeconds = 0;
};

/// Trains \p MC on the workbench and evaluates on its test split.
/// Class-loss models predict by classification; Space/Typilus models build
/// the τmap from train+valid and predict by kNN (Eq. 5).
ModelRun trainAndEvaluate(Workbench &WB, const ModelConfig &MC,
                          const TrainOptions &TO, const KnnOptions &KO = {});

/// One substituted-prediction outcome of the Sec. 6.3 experiment.
struct CheckOutcome {
  enum class Case {
    EpsToTau,      ///< Previously unannotated symbol gets the prediction.
    TauToTauPrime, ///< Prediction differs from the original annotation.
    TauToTau,      ///< Prediction equals the original annotation.
  };
  Case Kind = Case::EpsToTau;
  bool CausesError = false; ///< New type errors vs. the baseline program.
  double Confidence = 0;
  /// The substituted prediction (outcomes are filtered and grouped by
  /// file, so positional alignment with the input does NOT hold).
  const PredictionResult *Pred = nullptr;
};

/// Runs the type-checking protocol: for each test prediction, substitute
/// it into a partially annotated version of its file (a deterministic
/// \p StripProb fraction of annotations is removed first, yielding the
/// ε→τ population), re-check, and compare against the baseline error set.
/// Files with baseline type errors are discarded, as in the paper.
std::vector<CheckOutcome>
runCheckerExperiment(Workbench &WB, const std::vector<PredictionResult> &Preds,
                     bool InferLocals, double StripProb, uint64_t Seed);

} // namespace typilus

#endif // TYPILUS_CORE_EXPERIMENTS_H
