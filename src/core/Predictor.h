//===- core/Predictor.h - Type prediction --------------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inference (Fig. 1, right): embed query symbols with the trained
/// encoder, then either (a) look up the k nearest type markers in the
/// τmap and score candidates with Eq. 5 (Space / Typilus models), or
/// (b) softmax over the closed type vocabulary (the *2Class baselines).
///
/// A predictor can be built from a live model (training process) or
/// loaded from a saved artifact (serving process): `save()` snapshots the
/// type universe, model, τmap and kNN index into one versioned archive
/// and `load()` reconstitutes a self-contained predictor from it — no
/// training `Dataset` in memory, predictions bit-identical to the
/// original's.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORE_PREDICTOR_H
#define TYPILUS_CORE_PREDICTOR_H

#include "corpus/ExampleStream.h"
#include "corpus/Generator.h"
#include "knn/TypeMap.h"
#include "models/Model.h"
#include "support/Archive.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace typilus {

/// Payload format version of model artifacts (the `typilus` CLI's
/// .typilus files). Bump when the meaning of any chunk changes; loaders
/// accept [kModelArtifactVersionMin, kModelArtifactVersion] and reject
/// anything else with a clear error (see docs/ARCHITECTURE.md
/// "Artifacts & versioning").
///
/// Version history:
///   1 — initial chunked format (tuni/parm-family/pred/tmap/anny).
///   2 — adds the quantized τmap chunks tm16/tmq8. Writers stamp 2 only
///       when such a chunk is present, so f32 artifacts remain
///       byte-identical to version-1 writers (Predictor::artifactVersion).
///   3 — adds the HNSW graph chunk hnsw (and index kind 2 in pred).
///       Stamped only when the chunk is present, so exact/Annoy artifacts
///       keep their version-1/2 bytes.
inline constexpr uint32_t kModelArtifactVersion = 3;
inline constexpr uint32_t kModelArtifactVersionMin = 1;

/// Candidate predictions for one target symbol. Self-contained: results
/// carry stable copies/ids (file path, target index, symbol facts)
/// rather than pointers into the dataset, so they remain valid after the
/// `FileExample`s they were predicted from are gone. The `TypeRef`s are
/// owned by the universe the model predicts into.
struct PredictionResult {
  std::string FilePath;  ///< Path of the predicted file.
  int TargetIdx = -1;    ///< Index into the file's `Targets` vector.
  int NodeIdx = -1;      ///< Graph node index of the symbol supernode.
  int SymbolId = -1;     ///< Symbol-table id of that supernode (-1 none);
                         ///< lets consumers (checker gating, the LSP) map
                         ///< a prediction to a re-parsed file's symbol
                         ///< without keeping the graph around. Not part
                         ///< of predictionDigest().
  std::string SymbolName;
  SymbolKind Kind = SymbolKind::Variable;
  TypeRef Truth = nullptr; ///< Ground-truth type (null when unknown).
  std::vector<ScoredType> Candidates; ///< Sorted by descending probability.

  TypeRef top() const {
    return Candidates.empty() ? nullptr : Candidates.front().Type;
  }
  double confidence() const {
    return Candidates.empty() ? 0 : Candidates.front().Prob;
  }
};

/// Which index answers τmap queries. The numeric values are the
/// serialized pred-chunk encoding (the byte that historically held the
/// UseAnnoy bool, so exact/Annoy artifacts keep identical bytes) —
/// append only.
enum class KnnIndexKind : uint8_t { Exact = 0, Annoy = 1, Hnsw = 2 };

/// "exact" | "annoy" | "hnsw" (CLI flags, `inspect` output, bench labels).
const char *knnIndexName(KnnIndexKind K);
/// Parses knnIndexName()'s strings; \returns false on anything else.
bool parseKnnIndexKind(std::string_view Name, KnnIndexKind *Out);

/// kNN settings for the type-map predictor (Eq. 5).
struct KnnOptions {
  int K = 10;
  double P = 1.0;      ///< Distance-weighting temperature.
  /// Index structure answering the kNN probes: the blocked exact scan,
  /// the Annoy-style kd-forest, or the deterministic HNSW graph (see the
  /// index matrix in docs/ARCHITECTURE.md "Index layer").
  KnnIndexKind Index = KnnIndexKind::Annoy;
  /// HNSW per-request query-time budget: layer-0 beam width, i.e. how
  /// many candidates one request may inspect (<= 0 = the index default,
  /// max(4·K, 64)). Larger = better recall, more latency. Ignored by the
  /// other index kinds.
  int EfSearch = 0;
  /// Caps the ways of parallelism used for τmap construction and query
  /// batches (0 = no cap, i.e. the full process-wide pool; 1 = fully
  /// serial). The pool itself is sized by setGlobalNumThreads /
  /// TrainOptions::NumThreads. Results are identical for any value.
  int NumThreads = 0;
  /// Marker storage format. Applied once by Predictor::knn after the map
  /// is filled (subsample, then quantize, then build the index); on a
  /// loaded predictor it reflects the artifact's actual store. Changing
  /// it through setKnnOptions has no effect — quantization is one-way.
  MarkerStore Store = MarkerStore::F32;
  /// Caps the τmap at this many markers via coreset subsampling before
  /// quantization (0 = keep every marker).
  size_t MaxMarkers = 0;
  /// Editor-loop compaction policy: once more than this fraction of the
  /// τmap's rows are tombstones (markers retired by annotateIncremental /
  /// removeMarkersForFile), the map is compacted and the index rebuilt
  /// over the live rows. Below the threshold mutation never touches the
  /// forest — removals are tombstones the queries skip, additions are
  /// covered by an exact delta scan. <= 0 disables automatic compaction.
  double CompactRatio = 0.25;
};

/// Inference engine for one trained model.
class Predictor {
public:
  /// kNN predictor: seeds the τmap with the markers of \p MapFiles
  /// (the paper uses train+valid annotations). The stream form fills the
  /// τmap one residency-bounded window at a time — embedding each window
  /// data-parallel, appending markers in file order — so construction
  /// RAM is bounded by shard residency, not the corpus; the map is
  /// pre-sized from the stream's target metadata. Marker layout (and
  /// every downstream prediction) is bit-identical to the historical
  /// all-at-once fill for any window size and thread count.
  static Predictor knn(TypeModel &Model, ExampleSource &MapFiles,
                       const KnnOptions &Opts = {});
  static Predictor knn(TypeModel &Model,
                       const std::vector<const FileExample *> &MapFiles,
                       const KnnOptions &Opts = {});

  /// Closed-vocabulary classification predictor.
  static Predictor classifier(TypeModel &Model);

  /// Loads an artifact written by save() into a self-contained predictor
  /// that owns its own `TypeUniverse` and `TypeModel` — the serve-many
  /// path: any number of processes can load the same file and predict
  /// without the training corpus. \returns null and sets \p Err on
  /// corrupt, truncated or version-mismatched artifacts.
  static std::unique_ptr<Predictor> load(const std::string &Path,
                                         std::string *Err);
  /// Same, over an already-opened archive (lets callers read extra
  /// chunks of their own, as the CLI does with its corpus recipe).
  static std::unique_ptr<Predictor> load(const ArchiveReader &R,
                                         std::string *Err);

  /// The payload format version save() stamps for *this* predictor: 1
  /// unless a quantized τmap forces the new chunk kinds, so f32 artifacts
  /// stay byte-identical to what version-1 writers produced (the CI
  /// digest-equality checks pin exactly this).
  uint32_t artifactVersion() const;

  /// Writes the complete serving artifact to \p Path. \p U must be the
  /// universe the model's (and τmap's) types were interned in.
  bool save(const std::string &Path, const TypeUniverse &U,
            std::string *Err) const;
  /// Chunk-level variant of save() for callers composing an archive with
  /// extra chunks of their own.
  void writeArtifact(ArchiveWriter &W, const TypeUniverse &U) const;

  /// Predicts candidates for every target of \p File.
  std::vector<PredictionResult> predictFile(const FileExample &File);

  /// The one in-memory-source entry point: parses \p Source through
  /// pyfront/, builds the graph against universe(), and predicts — the
  /// CLI's `predict --source`, the serve daemon and the LSP all route
  /// through this, so their digests agree by construction. Requires a
  /// universe (loaded predictors own one; live-model predictors get one
  /// via setUniverse). Propagates pyfront parse errors as exceptions,
  /// like buildExample does.
  std::vector<PredictionResult> predictSource(const std::string &Path,
                                              const std::string &Source);
  /// Batched predictSource: builds every example, then answers all of
  /// them through one predictBatch call (the daemon's coalesced path).
  /// \returns per-file results, index-aligned with \p Files.
  std::vector<std::vector<PredictionResult>>
  predictSources(const std::vector<CorpusFile> &Files);

  /// The editor loop (one didChange): tombstones \p Path's τmap markers,
  /// re-parses and re-embeds *only this file* (exactly one encoder pass —
  /// embedCalls() observability), answers its targets through the same
  /// query kernel predictBatch uses against the updated index, then
  /// re-adds the file's markers tagged with \p Path. Re-adding unchanged
  /// content resurrects the tombstoned rows in place, so the τmap — and
  /// every subsequent prediction — is bit-identical to the pre-edit
  /// state. Applies the CompactRatio policy afterwards.
  std::vector<PredictionResult>
  annotateIncremental(const std::string &Path, const std::string &Source);

  /// Tombstones \p Path's markers (the LSP's didClose) and applies the
  /// compaction policy. \returns the number of markers retired.
  size_t removeMarkersForFile(const std::string &Path);
  /// Drops tombstoned rows and rebuilds the index over the live markers;
  /// no-op without tombstones. \returns true when work was done.
  bool compactMarkers();

  /// The batched serving entry point: every file goes through the exact
  /// single-file encoder pass predictFile would make — data-parallel
  /// across files on the thread pool when the encoder allows it — and
  /// all targets of all files are answered through one bulk kNN probe
  /// against the already-loaded τmap, with no per-request setup.
  /// \returns per-file results, index-aligned with \p Files,
  /// bit-identical to calling predictFile on each file by construction
  /// (tests/ServeTest.cpp pins this, incl. the classifier path).
  std::vector<std::vector<PredictionResult>>
  predictBatch(const std::vector<const FileExample *> &Files);

  /// Convenience: predicts over a whole split (through predictBatch, in
  /// bounded chunks — a streamed split decodes at most a window of
  /// shards at a time).
  std::vector<PredictionResult> predictAll(ExampleSource &Files);
  std::vector<PredictionResult>
  predictAll(const std::vector<FileExample> &Files);

  /// Adds a marker to the τmap without retraining — the open-vocabulary
  /// adaptation of Sec. 4.2. The row is appended without rebuilding the
  /// forest; queries cover it through the exact delta scan until the next
  /// compaction or rebuild.
  void addMarker(const float *Embedding, TypeRef T);

  /// Embeds one file's targets and adds all of them as markers, tagged
  /// with the file's path (so they participate in the mutation API).
  void addMarkersFrom(const FileExample &File);

  bool isKnn() const { return IsKnn; }
  TypeModel &model() { return *Model; }
  /// The universe predictions are interned in: the one a loaded predictor
  /// owns, else whatever setUniverse provided (null for a live-model
  /// predictor that was never given one).
  TypeUniverse *universe() { return OwnedU ? OwnedU.get() : ExternU; }
  /// Points a live-model predictor at the caller-owned universe its types
  /// were interned in, enabling predictSource/annotateIncremental.
  void setUniverse(TypeUniverse &U) { ExternU = &U; }
  /// Encoder passes made so far (one per embedded file) — lets tests pin
  /// that the incremental path re-embeds exactly one file per edit.
  uint64_t embedCalls() const { return EmbedCalls; }
  /// Cumulative wall time spent embedding queries / probing the kNN
  /// index across predictBatch and annotateIncremental — the serve
  /// daemon diffs these around each batch for its stats breakdown.
  /// Observability only: timing never influences results.
  uint64_t embedMicros() const { return EmbedMicros; }
  uint64_t knnMicros() const { return KnnMicros; }
  const TypeMap &typeMap() const { return *Map; }
  /// The live HNSW graph, or nullptr when another index kind is active —
  /// `inspect` reads the build parameters off it.
  const HnswIndex *hnswIndex() const { return Hnsw.get(); }
  const KnnOptions &knnOptions() const { return Knn; }
  void setKnnOptions(const KnnOptions &O);

  /// Quantizes the τmap to \p S and rebuilds the index — the CLI's
  /// `save --tmap-store` path: requantize an f32 artifact without
  /// retraining. No-op when already stored as \p S. \returns false and
  /// sets \p Err for non-kNN predictors or a map already quantized to a
  /// different store (quantization is one-way; start from the f32
  /// artifact).
  bool setMarkerStore(MarkerStore S, std::string *Err);

private:
  explicit Predictor(TypeModel &Model) : Model(&Model) {}
  Predictor() = default;
  void rebuildIndex();
  /// The one kNN probe every prediction path shares: the forest (or the
  /// exact index), plus an exact scan over rows appended after the forest
  /// was built, merged under the same (distance, index) order. Skips
  /// tombstones throughout. \p Qs holds \p NumQ rows of dim() floats.
  std::vector<NeighborList> queryNeighbors(const float *Qs, int64_t NumQ);
  /// Applies KnnOptions::CompactRatio (compact + rebuild when exceeded).
  void maybeCompact();

  // Declared first so loaded models/maps (whose TypeRefs point into it)
  // are destroyed before the universe goes away.
  std::unique_ptr<TypeUniverse> OwnedU;
  std::unique_ptr<TypeModel> OwnedModel;
  TypeUniverse *ExternU = nullptr;
  TypeModel *Model = nullptr;
  bool IsKnn = false;
  KnnOptions Knn;
  std::unique_ptr<TypeMap> Map;
  std::unique_ptr<AnnoyIndex> Annoy;
  std::unique_ptr<HnswIndex> Hnsw;
  std::unique_ptr<ExactIndex> Exact;
  uint64_t EmbedCalls = 0;
  uint64_t EmbedMicros = 0;
  uint64_t KnnMicros = 0;
};

/// FNV-1a over the full prediction set: file paths, target indexes, and
/// every candidate's type spelling + probability *bit pattern*.
/// Predictions are bit-identical across processes and thread counts, so
/// so is the digest — the CLI, the serving daemon and CI all compare
/// serving paths through this one function.
uint64_t predictionDigest(const std::vector<PredictionResult> &Preds);

} // namespace typilus

#endif // TYPILUS_CORE_PREDICTOR_H
