//===- core/Predictor.h - Type prediction --------------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inference (Fig. 1, right): embed query symbols with the trained
/// encoder, then either (a) look up the k nearest type markers in the
/// τmap and score candidates with Eq. 5 (Space / Typilus models), or
/// (b) softmax over the closed type vocabulary (the *2Class baselines).
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CORE_PREDICTOR_H
#define TYPILUS_CORE_PREDICTOR_H

#include "knn/TypeMap.h"
#include "models/Model.h"

#include <memory>
#include <vector>

namespace typilus {

/// Candidate predictions for one target symbol.
struct PredictionResult {
  const Target *Tgt = nullptr;
  const FileExample *File = nullptr;
  std::vector<ScoredType> Candidates; ///< Sorted by descending probability.

  TypeRef top() const {
    return Candidates.empty() ? nullptr : Candidates.front().Type;
  }
  double confidence() const {
    return Candidates.empty() ? 0 : Candidates.front().Prob;
  }
};

/// kNN settings for the type-map predictor (Eq. 5).
struct KnnOptions {
  int K = 10;
  double P = 1.0;      ///< Distance-weighting temperature.
  bool UseAnnoy = true; ///< Approximate index (exact otherwise).
  /// Caps the ways of parallelism used for τmap construction and query
  /// batches (0 = no cap, i.e. the full process-wide pool; 1 = fully
  /// serial). The pool itself is sized by setGlobalNumThreads /
  /// TrainOptions::NumThreads. Results are identical for any value.
  int NumThreads = 0;
};

/// Inference engine for one trained model.
class Predictor {
public:
  /// kNN predictor: seeds the τmap with the markers of \p MapFiles
  /// (the paper uses train+valid annotations).
  static Predictor knn(TypeModel &Model,
                       const std::vector<const FileExample *> &MapFiles,
                       const KnnOptions &Opts = {});

  /// Closed-vocabulary classification predictor.
  static Predictor classifier(TypeModel &Model);

  /// Predicts candidates for every target of \p File.
  std::vector<PredictionResult> predictFile(const FileExample &File);

  /// Convenience: predicts over a whole split.
  std::vector<PredictionResult>
  predictAll(const std::vector<FileExample> &Files);

  /// Adds a marker to the τmap without retraining — the open-vocabulary
  /// adaptation of Sec. 4.2. Rebuilds the spatial index.
  void addMarker(const float *Embedding, TypeRef T);

  /// Embeds one file's targets and adds all of them as markers.
  void addMarkersFrom(const FileExample &File);

  const TypeMap &typeMap() const { return *Map; }
  const KnnOptions &knnOptions() const { return Knn; }
  void setKnnOptions(const KnnOptions &O);

private:
  explicit Predictor(TypeModel &Model) : Model(Model) {}
  void rebuildIndex();

  TypeModel &Model;
  bool IsKnn = false;
  KnnOptions Knn;
  std::unique_ptr<TypeMap> Map;
  std::unique_ptr<AnnoyIndex> Annoy;
  std::unique_ptr<ExactIndex> Exact;
};

} // namespace typilus

#endif // TYPILUS_CORE_PREDICTOR_H
