//===- pyfront/SymbolTable.h - Scopes and symbols ----------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-file symbol table mirroring CPython's `symtable`: one Symbol per
/// unique variable / parameter / function / class / attribute, plus the
/// paper's *function return* symbols (Sec. 5.1: "For functions, we introduce
/// a symbol node for each parameter and a separate symbol node for their
/// return"). Each symbol records its bound token and AST-node occurrences —
/// exactly what the OCCURRENCE_OF graph edges need.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_PYFRONT_SYMBOLTABLE_H
#define TYPILUS_PYFRONT_SYMBOLTABLE_H

#include "pyfront/Parser.h"

#include <memory>
#include <string>
#include <vector>

namespace typilus {

/// What a symbol denotes.
enum class SymbolKind {
  Variable,  ///< Local or module-level variable.
  Parameter, ///< Function parameter.
  Function,  ///< Function (the callable itself, not its return).
  Class,     ///< Class definition.
  Return,    ///< The return "slot" of a function.
  Attribute, ///< `self.attr` attribute of a class.
  External,  ///< Imported or builtin name used but not defined here.
};

/// Returns a stable name for \p K.
const char *symbolKindName(SymbolKind K);

/// A unique program symbol within one file.
struct Symbol {
  int Id = -1;
  std::string Name;
  SymbolKind Kind = SymbolKind::Variable;
  /// Ground-truth annotation text ("" when unannotated).
  std::string AnnotationText;
  FunctionDef *OwnerFunc = nullptr; ///< For Parameter / Return symbols.
  ClassDef *OwnerClass = nullptr;   ///< For Attribute symbols and methods.
  /// Token indices bound to this symbol, in program order.
  std::vector<int> OccTokens;
  /// AST nodes bound to this symbol (NameExpr, ParamDecl, ReturnStmt, ...).
  std::vector<const AstNode *> OccNodes;

  /// True for the symbol kinds whose types Typilus predicts
  /// (variables, parameters, function returns — Sec. 1).
  bool isPredictionTarget() const {
    return Kind == SymbolKind::Variable || Kind == SymbolKind::Parameter ||
           Kind == SymbolKind::Return || Kind == SymbolKind::Attribute;
  }
};

/// Owns the symbols of one file.
class SymbolTable {
public:
  /// Creates a new symbol; id is its index.
  Symbol *create(std::string Name, SymbolKind Kind) {
    auto Owned = std::make_unique<Symbol>();
    Owned->Id = static_cast<int>(Symbols.size());
    Owned->Name = std::move(Name);
    Owned->Kind = Kind;
    Symbols.push_back(std::move(Owned));
    return Symbols.back().get();
  }

  const std::vector<std::unique_ptr<Symbol>> &symbols() const {
    return Symbols;
  }
  size_t size() const { return Symbols.size(); }
  Symbol *operator[](size_t I) { return Symbols[I].get(); }

private:
  std::vector<std::unique_ptr<Symbol>> Symbols;
};

/// Builds the symbol table for \p PF, resolving NameExpr/AttributeExpr/
/// ParamDecl/FunctionDef symbol pointers in the AST as it goes.
void buildSymbolTable(ParsedFile &PF, SymbolTable &ST);

} // namespace typilus

#endif // TYPILUS_PYFRONT_SYMBOLTABLE_H
