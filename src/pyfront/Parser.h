//===- pyfront/Parser.h - Python-subset parser --------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing the pyfront AST. Type annotations are
/// consumed into canonical strings (and their tokens flagged `InAnnotation`
/// so the graph builder skips them); the parser recovers from errors at
/// statement granularity.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_PYFRONT_PARSER_H
#define TYPILUS_PYFRONT_PARSER_H

#include "pyfront/Ast.h"
#include "pyfront/Lexer.h"
#include "pyfront/Token.h"

#include <memory>
#include <string>
#include <vector>

namespace typilus {

/// A parsed source file: source text, token stream, AST and diagnostics.
struct ParsedFile {
  std::string Path;
  std::string Source;
  std::vector<Token> Tokens;
  std::unique_ptr<Module> Mod;
  std::vector<Diagnostic> Diags;

  bool hasErrors() const { return !Diags.empty(); }
};

/// Lexes and parses \p Source. Always returns a (possibly partial) module;
/// check `Diags` for errors.
ParsedFile parseFile(std::string Path, std::string Source);

} // namespace typilus

#endif // TYPILUS_PYFRONT_PARSER_H
