//===- pyfront/Ast.cpp - Python-subset abstract syntax tree ----------------===//

#include "pyfront/Ast.h"

using namespace typilus;

const char *typilus::nodeKindName(AstNode::NodeKind K) {
  switch (K) {
  case AstNode::NodeKind::Module: return "Module";
  case AstNode::NodeKind::FunctionDef: return "FunctionDef";
  case AstNode::NodeKind::ParamDecl: return "ParamDecl";
  case AstNode::NodeKind::ClassDef: return "ClassDef";
  case AstNode::NodeKind::AssignStmt: return "Assign";
  case AstNode::NodeKind::ExprStmt: return "ExprStmt";
  case AstNode::NodeKind::ReturnStmt: return "Return";
  case AstNode::NodeKind::PassStmt: return "Pass";
  case AstNode::NodeKind::BreakStmt: return "Break";
  case AstNode::NodeKind::ContinueStmt: return "Continue";
  case AstNode::NodeKind::IfStmt: return "If";
  case AstNode::NodeKind::WhileStmt: return "While";
  case AstNode::NodeKind::ForStmt: return "For";
  case AstNode::NodeKind::ImportStmt: return "Import";
  case AstNode::NodeKind::GlobalStmt: return "Global";
  case AstNode::NodeKind::RaiseStmt: return "Raise";
  case AstNode::NodeKind::AssertStmt: return "Assert";
  case AstNode::NodeKind::DelStmt: return "Del";
  case AstNode::NodeKind::NameExpr: return "Name";
  case AstNode::NodeKind::IntLit: return "IntLit";
  case AstNode::NodeKind::FloatLit: return "FloatLit";
  case AstNode::NodeKind::StringLit: return "StrLit";
  case AstNode::NodeKind::BoolLit: return "BoolLit";
  case AstNode::NodeKind::NoneLit: return "NoneLit";
  case AstNode::NodeKind::EllipsisLit: return "Ellipsis";
  case AstNode::NodeKind::UnaryExpr: return "UnaryOp";
  case AstNode::NodeKind::BinaryExpr: return "BinOp";
  case AstNode::NodeKind::CallExpr: return "Call";
  case AstNode::NodeKind::AttributeExpr: return "Attribute";
  case AstNode::NodeKind::SubscriptExpr: return "Subscript";
  case AstNode::NodeKind::ListExpr: return "ListExpr";
  case AstNode::NodeKind::TupleExpr: return "TupleExpr";
  case AstNode::NodeKind::SetExpr: return "SetExpr";
  case AstNode::NodeKind::DictExpr: return "DictExpr";
  case AstNode::NodeKind::YieldExpr: return "Yield";
  }
  return "?";
}

const char *typilus::binOpSpelling(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add: return "+";
  case BinOpKind::Sub: return "-";
  case BinOpKind::Mult: return "*";
  case BinOpKind::Div: return "/";
  case BinOpKind::FloorDiv: return "//";
  case BinOpKind::Mod: return "%";
  case BinOpKind::Pow: return "**";
  case BinOpKind::BitAnd: return "&";
  case BinOpKind::BitOr: return "|";
  case BinOpKind::And: return "and";
  case BinOpKind::Or: return "or";
  case BinOpKind::Eq: return "==";
  case BinOpKind::NotEq: return "!=";
  case BinOpKind::Lt: return "<";
  case BinOpKind::LtE: return "<=";
  case BinOpKind::Gt: return ">";
  case BinOpKind::GtE: return ">=";
  case BinOpKind::In: return "in";
  case BinOpKind::NotIn: return "not in";
  case BinOpKind::Is: return "is";
  case BinOpKind::IsNot: return "is not";
  }
  return "?";
}

void Module::forEachChild(const AstNode *N,
                          const std::function<void(const AstNode *)> &Fn) {
  auto Each = [&](const auto &Vec) {
    for (const AstNode *C : Vec)
      if (C)
        Fn(C);
  };
  auto One = [&](const AstNode *C) {
    if (C)
      Fn(C);
  };
  switch (N->kind()) {
  case AstNode::NodeKind::Module:
    Each(cast<Module>(N)->Body);
    break;
  case AstNode::NodeKind::FunctionDef: {
    const auto *F = cast<FunctionDef>(N);
    Each(F->Params);
    Each(F->Body);
    break;
  }
  case AstNode::NodeKind::ParamDecl:
    One(cast<ParamDecl>(N)->Default);
    break;
  case AstNode::NodeKind::ClassDef:
    Each(cast<ClassDef>(N)->Body);
    break;
  case AstNode::NodeKind::AssignStmt: {
    const auto *A = cast<AssignStmt>(N);
    One(A->Target);
    One(A->Value);
    break;
  }
  case AstNode::NodeKind::ExprStmt:
    One(cast<ExprStmt>(N)->E);
    break;
  case AstNode::NodeKind::ReturnStmt:
    One(cast<ReturnStmt>(N)->Value);
    break;
  case AstNode::NodeKind::PassStmt:
  case AstNode::NodeKind::BreakStmt:
  case AstNode::NodeKind::ContinueStmt:
  case AstNode::NodeKind::ImportStmt:
  case AstNode::NodeKind::GlobalStmt:
    break;
  case AstNode::NodeKind::IfStmt: {
    const auto *I = cast<IfStmt>(N);
    One(I->Cond);
    Each(I->Then);
    Each(I->Else);
    break;
  }
  case AstNode::NodeKind::WhileStmt: {
    const auto *W = cast<WhileStmt>(N);
    One(W->Cond);
    Each(W->Body);
    break;
  }
  case AstNode::NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(N);
    One(F->Target);
    One(F->Iter);
    Each(F->Body);
    break;
  }
  case AstNode::NodeKind::RaiseStmt:
    One(cast<RaiseStmt>(N)->E);
    break;
  case AstNode::NodeKind::AssertStmt: {
    const auto *A = cast<AssertStmt>(N);
    One(A->Cond);
    One(A->Msg);
    break;
  }
  case AstNode::NodeKind::DelStmt:
    One(cast<DelStmt>(N)->E);
    break;
  case AstNode::NodeKind::NameExpr:
  case AstNode::NodeKind::IntLit:
  case AstNode::NodeKind::FloatLit:
  case AstNode::NodeKind::StringLit:
  case AstNode::NodeKind::BoolLit:
  case AstNode::NodeKind::NoneLit:
  case AstNode::NodeKind::EllipsisLit:
    break;
  case AstNode::NodeKind::UnaryExpr:
    One(cast<UnaryExpr>(N)->Operand);
    break;
  case AstNode::NodeKind::BinaryExpr: {
    const auto *B = cast<BinaryExpr>(N);
    One(B->Lhs);
    One(B->Rhs);
    break;
  }
  case AstNode::NodeKind::CallExpr: {
    const auto *C = cast<CallExpr>(N);
    One(C->Callee);
    Each(C->Args);
    Each(C->KwValues);
    break;
  }
  case AstNode::NodeKind::AttributeExpr:
    One(cast<AttributeExpr>(N)->Value);
    break;
  case AstNode::NodeKind::SubscriptExpr: {
    const auto *S = cast<SubscriptExpr>(N);
    One(S->Value);
    One(S->Index);
    break;
  }
  case AstNode::NodeKind::ListExpr:
    Each(cast<ListExpr>(N)->Elts);
    break;
  case AstNode::NodeKind::TupleExpr:
    Each(cast<TupleExpr>(N)->Elts);
    break;
  case AstNode::NodeKind::SetExpr:
    Each(cast<SetExpr>(N)->Elts);
    break;
  case AstNode::NodeKind::DictExpr: {
    const auto *D = cast<DictExpr>(N);
    for (size_t I = 0; I != D->Keys.size(); ++I) {
      One(D->Keys[I]);
      One(D->Values[I]);
    }
    break;
  }
  case AstNode::NodeKind::YieldExpr:
    One(cast<YieldExpr>(N)->Value);
    break;
  }
}
