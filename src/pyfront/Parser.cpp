//===- pyfront/Parser.cpp - Python-subset parser ---------------------------===//

#include "pyfront/Parser.h"

#include "support/Str.h"

#include <cassert>
#include <cstdlib>

using namespace typilus;

namespace {

/// The recursive-descent parser. One instance per file.
class ParserImpl {
public:
  ParserImpl(ParsedFile &PF) : PF(PF), Toks(PF.Tokens) {}

  void run();

private:
  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool check(TokKind K) const { return cur().Kind == K; }
  bool accept(TokKind K) {
    if (!check(K))
      return false;
    ++Pos;
    return true;
  }
  bool expect(TokKind K, const char *Context) {
    if (accept(K))
      return true;
    error(strformat("expected '%s' %s, found '%s'", tokKindName(K), Context,
                    tokKindName(cur().Kind)));
    return false;
  }
  void error(const std::string &Msg) {
    PF.Diags.push_back(Diagnostic{cur().Line, Msg});
  }

  /// Skips to just past the next Newline (error recovery).
  void syncToNewline() {
    while (!check(TokKind::Eof) && !accept(TokKind::Newline))
      ++Pos;
  }

  template <typename T, typename... ArgTs> T *make(ArgTs &&...Args) {
    return PF.Mod->create<T>(std::forward<ArgTs>(Args)...);
  }
  template <typename T> T *finish(T *N, int FirstTok) {
    N->FirstTok = FirstTok;
    N->LastTok = static_cast<int>(Pos) - 1;
    return N;
  }

  // Statements.
  void parseStmtInto(std::vector<Stmt *> &Out);
  void parseSuite(std::vector<Stmt *> &Out);
  Stmt *parseFunctionDef();
  Stmt *parseClassDef();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseFor();
  Stmt *parseImport();
  Stmt *parseSimpleExprOrAssign();

  // Annotations.
  std::string parseAnnotationText();
  std::string parseAnnotationTerm();

  // Expressions (by descending precedence level).
  Expr *parseTestlist();
  Expr *parseExpr() { return parseOr(); }
  Expr *parseOr();
  Expr *parseAnd();
  Expr *parseNot();
  Expr *parseComparison();
  Expr *parseBitOr();
  Expr *parseBitAnd();
  Expr *parseArith();
  Expr *parseTerm();
  Expr *parseUnary();
  Expr *parsePower();
  Expr *parsePostfix();
  Expr *parseAtom();

  void markStore(Expr *Target);

  ParsedFile &PF;
  std::vector<Token> &Toks;
  size_t Pos = 0;
};

} // namespace

void ParserImpl::run() {
  PF.Mod = std::make_unique<Module>();
  PF.Mod->FirstTok = 0;
  while (!check(TokKind::Eof)) {
    if (accept(TokKind::Newline) || accept(TokKind::Indent) ||
        accept(TokKind::Dedent) || accept(TokKind::Error))
      continue;
    size_t Before = Pos;
    parseStmtInto(PF.Mod->Body);
    if (Pos == Before)
      ++Pos; // Ensure forward progress on malformed input.
  }
  PF.Mod->LastTok = static_cast<int>(Pos);
}

void ParserImpl::parseStmtInto(std::vector<Stmt *> &Out) {
  int First = static_cast<int>(Pos);
  switch (cur().Kind) {
  case TokKind::KwDef:
    Out.push_back(cast<Stmt>(finish(parseFunctionDef(), First)));
    return;
  case TokKind::KwClass:
    Out.push_back(cast<Stmt>(finish(parseClassDef(), First)));
    return;
  case TokKind::KwIf:
    Out.push_back(cast<Stmt>(finish(parseIf(), First)));
    return;
  case TokKind::KwWhile:
    Out.push_back(cast<Stmt>(finish(parseWhile(), First)));
    return;
  case TokKind::KwFor:
    Out.push_back(cast<Stmt>(finish(parseFor(), First)));
    return;
  case TokKind::KwReturn: {
    ++Pos;
    Expr *Value = nullptr;
    if (!check(TokKind::Newline) && !check(TokKind::Eof))
      Value = parseTestlist();
    Stmt *S = finish(make<ReturnStmt>(Value), First);
    expect(TokKind::Newline, "after return statement");
    Out.push_back(S);
    return;
  }
  case TokKind::KwPass:
    ++Pos;
    Out.push_back(finish(make<PassStmt>(), First));
    expect(TokKind::Newline, "after pass");
    return;
  case TokKind::KwBreak:
    ++Pos;
    Out.push_back(finish(make<BreakStmt>(), First));
    expect(TokKind::Newline, "after break");
    return;
  case TokKind::KwContinue:
    ++Pos;
    Out.push_back(finish(make<ContinueStmt>(), First));
    expect(TokKind::Newline, "after continue");
    return;
  case TokKind::KwImport:
  case TokKind::KwFrom:
    Out.push_back(cast<Stmt>(finish(parseImport(), First)));
    return;
  case TokKind::KwGlobal: {
    ++Pos;
    auto *G = make<GlobalStmt>();
    do {
      if (check(TokKind::Identifier)) {
        G->Names.push_back(cur().Text);
        ++Pos;
      } else {
        error("expected name in global statement");
        break;
      }
    } while (accept(TokKind::Comma));
    expect(TokKind::Newline, "after global statement");
    Out.push_back(finish(G, First));
    return;
  }
  case TokKind::KwRaise: {
    ++Pos;
    Expr *E = nullptr;
    if (!check(TokKind::Newline) && !check(TokKind::Eof))
      E = parseExpr();
    Stmt *S = finish(make<RaiseStmt>(E), First);
    expect(TokKind::Newline, "after raise");
    Out.push_back(S);
    return;
  }
  case TokKind::KwAssert: {
    ++Pos;
    Expr *Cond = parseExpr();
    Expr *Msg = nullptr;
    if (accept(TokKind::Comma))
      Msg = parseExpr();
    Stmt *S = finish(make<AssertStmt>(Cond, Msg), First);
    expect(TokKind::Newline, "after assert");
    Out.push_back(S);
    return;
  }
  case TokKind::KwDel: {
    ++Pos;
    Expr *E = parseExpr();
    Stmt *S = finish(make<DelStmt>(E), First);
    expect(TokKind::Newline, "after del");
    Out.push_back(S);
    return;
  }
  default:
    Out.push_back(cast<Stmt>(finish(parseSimpleExprOrAssign(), First)));
    return;
  }
}

void ParserImpl::parseSuite(std::vector<Stmt *> &Out) {
  if (!expect(TokKind::Colon, "before suite")) {
    syncToNewline();
    return;
  }
  if (!accept(TokKind::Newline)) {
    // Inline suite: a single simple statement on the same line.
    parseStmtInto(Out);
    return;
  }
  if (!expect(TokKind::Indent, "to open block")) {
    return;
  }
  while (!check(TokKind::Dedent) && !check(TokKind::Eof)) {
    if (accept(TokKind::Newline) || accept(TokKind::Error))
      continue;
    size_t Before = Pos;
    parseStmtInto(Out);
    if (Pos == Before)
      ++Pos;
  }
  accept(TokKind::Dedent);
}

Stmt *ParserImpl::parseFunctionDef() {
  expect(TokKind::KwDef, "at function definition");
  int NameTok = static_cast<int>(Pos);
  std::string Name = check(TokKind::Identifier) ? cur().Text : "<error>";
  if (!expect(TokKind::Identifier, "as function name"))
    syncToNewline();
  auto *F = make<FunctionDef>(Name, NameTok);
  expect(TokKind::LParen, "after function name");
  while (!check(TokKind::RParen) && !check(TokKind::Eof)) {
    if (check(TokKind::Star) || check(TokKind::DoubleStar)) {
      ++Pos; // *args / **kwargs marker; parameter name follows.
    }
    int PTok = static_cast<int>(Pos);
    if (!check(TokKind::Identifier)) {
      error("expected parameter name");
      break;
    }
    auto *P = make<ParamDecl>(cur().Text, PTok);
    ++Pos;
    if (check(TokKind::Colon)) {
      Toks[Pos].InAnnotation = true;
      ++Pos;
      P->AnnotationText = parseAnnotationText();
    }
    if (accept(TokKind::Assign))
      P->Default = parseExpr();
    finish(P, PTok);
    F->Params.push_back(P);
    if (!accept(TokKind::Comma))
      break;
  }
  expect(TokKind::RParen, "to close parameter list");
  if (check(TokKind::Arrow)) {
    Toks[Pos].InAnnotation = true;
    ++Pos;
    F->ReturnsText = parseAnnotationText();
  }
  parseSuite(F->Body);
  return F;
}

Stmt *ParserImpl::parseClassDef() {
  expect(TokKind::KwClass, "at class definition");
  int NameTok = static_cast<int>(Pos);
  std::string Name = check(TokKind::Identifier) ? cur().Text : "<error>";
  if (!expect(TokKind::Identifier, "as class name"))
    syncToNewline();
  auto *C = make<ClassDef>(Name, NameTok);
  if (accept(TokKind::LParen)) {
    while (check(TokKind::Identifier)) {
      std::string Base = cur().Text;
      ++Pos;
      while (accept(TokKind::Dot)) {
        if (check(TokKind::Identifier)) {
          Base += "." + cur().Text;
          ++Pos;
        }
      }
      C->Bases.push_back(Base);
      if (!accept(TokKind::Comma))
        break;
    }
    expect(TokKind::RParen, "to close base-class list");
  }
  parseSuite(C->Body);
  return C;
}

Stmt *ParserImpl::parseIf() {
  ++Pos; // if / elif
  auto *I = make<IfStmt>(parseExpr());
  parseSuite(I->Then);
  if (check(TokKind::KwElif)) {
    int First = static_cast<int>(Pos);
    I->Else.push_back(cast<Stmt>(finish(parseIf(), First)));
  } else if (accept(TokKind::KwElse)) {
    parseSuite(I->Else);
  }
  return I;
}

Stmt *ParserImpl::parseWhile() {
  ++Pos;
  auto *W = make<WhileStmt>(parseExpr());
  parseSuite(W->Body);
  return W;
}

Stmt *ParserImpl::parseFor() {
  ++Pos;
  // The target is parsed below the comparison level so the `in` keyword is
  // left for the loop header.
  int First = static_cast<int>(Pos);
  Expr *Target = parsePostfix();
  if (check(TokKind::Comma)) {
    auto *T = make<TupleExpr>();
    T->Elts.push_back(Target);
    while (accept(TokKind::Comma)) {
      if (check(TokKind::KwIn))
        break;
      T->Elts.push_back(parsePostfix());
    }
    Target = finish(T, First);
  }
  markStore(Target);
  expect(TokKind::KwIn, "in for statement");
  Expr *Iter = parseTestlist();
  auto *F = make<ForStmt>(Target, Iter);
  parseSuite(F->Body);
  return F;
}

Stmt *ParserImpl::parseImport() {
  auto *I = make<ImportStmt>();
  auto ParseDotted = [&]() {
    std::string Name;
    if (check(TokKind::Identifier)) {
      Name = cur().Text;
      ++Pos;
      while (accept(TokKind::Dot)) {
        if (check(TokKind::Identifier)) {
          Name += "." + cur().Text;
          ++Pos;
        }
      }
    }
    return Name;
  };
  if (accept(TokKind::KwImport)) {
    I->ModuleName = ParseDotted();
    if (accept(TokKind::KwAs) && check(TokKind::Identifier)) {
      I->ModuleAlias = cur().Text;
      ++Pos;
    }
  } else {
    expect(TokKind::KwFrom, "at import");
    I->ModuleName = ParseDotted();
    expect(TokKind::KwImport, "after module name");
    do {
      std::string Name = ParseDotted();
      std::string Alias;
      if (accept(TokKind::KwAs) && check(TokKind::Identifier)) {
        Alias = cur().Text;
        ++Pos;
      }
      if (!Name.empty())
        I->Names.emplace_back(Name, Alias);
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::Newline, "after import");
  return I;
}

Stmt *ParserImpl::parseSimpleExprOrAssign() {
  Expr *First = parseTestlist();
  if (check(TokKind::Colon)) {
    // Annotated assignment: `target: T [= value]`.
    Toks[Pos].InAnnotation = true;
    ++Pos;
    std::string Ann = parseAnnotationText();
    Expr *Value = nullptr;
    if (accept(TokKind::Assign))
      Value = parseTestlist();
    auto *A = make<AssignStmt>(First, Value);
    A->AnnotationText = Ann;
    markStore(First);
    expect(TokKind::Newline, "after annotated assignment");
    return A;
  }
  if (accept(TokKind::Assign)) {
    Expr *Value = parseTestlist();
    // Chained assignment `a = b = e`: fold left-to-right.
    while (accept(TokKind::Assign)) {
      markStore(Value);
      Value = parseTestlist();
    }
    auto *A = make<AssignStmt>(First, Value);
    markStore(First);
    expect(TokKind::Newline, "after assignment");
    return A;
  }
  auto AugOp = [&]() -> const BinOpKind * {
    static const BinOpKind Add = BinOpKind::Add, Sub = BinOpKind::Sub,
                           Mul = BinOpKind::Mult, Div = BinOpKind::Div;
    switch (cur().Kind) {
    case TokKind::PlusAssign: return &Add;
    case TokKind::MinusAssign: return &Sub;
    case TokKind::StarAssign: return &Mul;
    case TokKind::SlashAssign: return &Div;
    default: return nullptr;
    }
  };
  if (const BinOpKind *Op = AugOp()) {
    ++Pos;
    Expr *Value = parseTestlist();
    auto *A = make<AssignStmt>(First, Value);
    A->IsAug = true;
    A->AugOp = *Op;
    markStore(First);
    expect(TokKind::Newline, "after augmented assignment");
    return A;
  }
  auto *E = make<ExprStmt>(First);
  expect(TokKind::Newline, "after expression statement");
  return E;
}

//===----------------------------------------------------------------------===//
// Annotations
//===----------------------------------------------------------------------===//

/// One annotation term: dotted name, None, Ellipsis, a quoted forward
/// reference, or a bracketed list (for Callable's parameter list), each
/// optionally subscripted.
std::string ParserImpl::parseAnnotationTerm() {
  auto MarkAndAdvance = [&]() -> std::string {
    Toks[Pos].InAnnotation = true;
    return Toks[Pos++].Text;
  };
  std::string Text;
  if (check(TokKind::Identifier)) {
    Text = MarkAndAdvance();
    while (check(TokKind::Dot)) {
      Text += MarkAndAdvance();
      if (check(TokKind::Identifier))
        Text += MarkAndAdvance();
    }
  } else if (check(TokKind::KwNone)) {
    MarkAndAdvance();
    Text = "None";
  } else if (check(TokKind::EllipsisTok)) {
    MarkAndAdvance();
    Text = "...";
  } else if (check(TokKind::StringLit)) {
    // Forward reference: 'Foo' — strip the quotes.
    std::string Raw = MarkAndAdvance();
    if (Raw.size() >= 2)
      Text = Raw.substr(1, Raw.size() - 2);
  } else if (check(TokKind::LBracket)) {
    // Bracketed parameter list, e.g. Callable[[int, str], bool].
    MarkAndAdvance();
    Text = "[";
    bool First = true;
    while (!check(TokKind::RBracket) && !check(TokKind::Eof)) {
      if (!First)
        Text += ", ";
      First = false;
      Text += parseAnnotationTerm();
      if (!check(TokKind::Comma))
        break;
      MarkAndAdvance();
    }
    if (check(TokKind::RBracket))
      MarkAndAdvance();
    Text += "]";
    return Text;
  } else {
    error("malformed type annotation");
    return "Any";
  }
  if (check(TokKind::LBracket)) {
    MarkAndAdvance();
    Text += "[";
    bool First = true;
    while (!check(TokKind::RBracket) && !check(TokKind::Eof)) {
      if (!First)
        Text += ", ";
      First = false;
      Text += parseAnnotationTerm();
      if (!check(TokKind::Comma))
        break;
      MarkAndAdvance();
    }
    if (expect(TokKind::RBracket, "to close type arguments"))
      Toks[Pos - 1].InAnnotation = true;
    Text += "]";
  }
  return Text;
}

std::string ParserImpl::parseAnnotationText() { return parseAnnotationTerm(); }

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *ParserImpl::parseTestlist() {
  int First = static_cast<int>(Pos);
  Expr *E = parseExpr();
  if (!check(TokKind::Comma))
    return E;
  auto *T = make<TupleExpr>();
  T->Elts.push_back(E);
  while (accept(TokKind::Comma)) {
    if (check(TokKind::Newline) || check(TokKind::RParen) ||
        check(TokKind::RBracket) || check(TokKind::Eof) ||
        check(TokKind::Assign) || check(TokKind::Colon))
      break; // trailing comma
    T->Elts.push_back(parseExpr());
  }
  return finish(T, First);
}

Expr *ParserImpl::parseOr() {
  int First = static_cast<int>(Pos);
  Expr *L = parseAnd();
  while (accept(TokKind::KwOr))
    L = finish(make<BinaryExpr>(BinOpKind::Or, L, parseAnd()), First);
  return L;
}

Expr *ParserImpl::parseAnd() {
  int First = static_cast<int>(Pos);
  Expr *L = parseNot();
  while (accept(TokKind::KwAnd))
    L = finish(make<BinaryExpr>(BinOpKind::And, L, parseNot()), First);
  return L;
}

Expr *ParserImpl::parseNot() {
  int First = static_cast<int>(Pos);
  if (accept(TokKind::KwNot))
    return finish(make<UnaryExpr>(UnaryOpKind::Not, parseNot()), First);
  return parseComparison();
}

Expr *ParserImpl::parseComparison() {
  int First = static_cast<int>(Pos);
  Expr *L = parseBitOr();
  while (true) {
    BinOpKind Op;
    if (accept(TokKind::EqEq))
      Op = BinOpKind::Eq;
    else if (accept(TokKind::NotEq))
      Op = BinOpKind::NotEq;
    else if (accept(TokKind::Lt))
      Op = BinOpKind::Lt;
    else if (accept(TokKind::Le))
      Op = BinOpKind::LtE;
    else if (accept(TokKind::Gt))
      Op = BinOpKind::Gt;
    else if (accept(TokKind::Ge))
      Op = BinOpKind::GtE;
    else if (accept(TokKind::KwIn))
      Op = BinOpKind::In;
    else if (check(TokKind::KwNot) && peek().Kind == TokKind::KwIn) {
      Pos += 2;
      Op = BinOpKind::NotIn;
    } else if (check(TokKind::KwIs) && peek().Kind == TokKind::KwNot) {
      Pos += 2;
      Op = BinOpKind::IsNot;
    } else if (accept(TokKind::KwIs)) {
      Op = BinOpKind::Is;
    } else {
      break;
    }
    L = finish(make<BinaryExpr>(Op, L, parseBitOr()), First);
  }
  return L;
}

Expr *ParserImpl::parseBitOr() {
  int First = static_cast<int>(Pos);
  Expr *L = parseBitAnd();
  while (accept(TokKind::Pipe))
    L = finish(make<BinaryExpr>(BinOpKind::BitOr, L, parseBitAnd()), First);
  return L;
}

Expr *ParserImpl::parseBitAnd() {
  int First = static_cast<int>(Pos);
  Expr *L = parseArith();
  while (accept(TokKind::Amp))
    L = finish(make<BinaryExpr>(BinOpKind::BitAnd, L, parseArith()), First);
  return L;
}

Expr *ParserImpl::parseArith() {
  int First = static_cast<int>(Pos);
  Expr *L = parseTerm();
  while (true) {
    if (accept(TokKind::Plus))
      L = finish(make<BinaryExpr>(BinOpKind::Add, L, parseTerm()), First);
    else if (accept(TokKind::Minus))
      L = finish(make<BinaryExpr>(BinOpKind::Sub, L, parseTerm()), First);
    else
      return L;
  }
}

Expr *ParserImpl::parseTerm() {
  int First = static_cast<int>(Pos);
  Expr *L = parseUnary();
  while (true) {
    BinOpKind Op;
    if (accept(TokKind::Star))
      Op = BinOpKind::Mult;
    else if (accept(TokKind::Slash))
      Op = BinOpKind::Div;
    else if (accept(TokKind::DoubleSlash))
      Op = BinOpKind::FloorDiv;
    else if (accept(TokKind::Percent))
      Op = BinOpKind::Mod;
    else
      return L;
    L = finish(make<BinaryExpr>(Op, L, parseUnary()), First);
  }
}

Expr *ParserImpl::parseUnary() {
  int First = static_cast<int>(Pos);
  if (accept(TokKind::Minus))
    return finish(make<UnaryExpr>(UnaryOpKind::Neg, parseUnary()), First);
  if (accept(TokKind::Plus))
    return finish(make<UnaryExpr>(UnaryOpKind::Pos, parseUnary()), First);
  return parsePower();
}

Expr *ParserImpl::parsePower() {
  int First = static_cast<int>(Pos);
  Expr *L = parsePostfix();
  if (accept(TokKind::DoubleStar))
    return finish(make<BinaryExpr>(BinOpKind::Pow, L, parseUnary()), First);
  return L;
}

Expr *ParserImpl::parsePostfix() {
  int First = static_cast<int>(Pos);
  Expr *E = parseAtom();
  while (true) {
    if (accept(TokKind::LParen)) {
      auto *C = make<CallExpr>(E);
      while (!check(TokKind::RParen) && !check(TokKind::Eof)) {
        if (check(TokKind::Identifier) && peek().Kind == TokKind::Assign) {
          C->KwNames.push_back(cur().Text);
          C->KwNameToks.push_back(static_cast<int>(Pos));
          Pos += 2; // name '='
          C->KwValues.push_back(parseExpr());
        } else {
          if (check(TokKind::Star) || check(TokKind::DoubleStar))
            ++Pos; // *args / **kwargs forwarding
          C->Args.push_back(parseExpr());
        }
        if (!accept(TokKind::Comma))
          break;
      }
      expect(TokKind::RParen, "to close call");
      E = finish(C, First);
      continue;
    }
    if (accept(TokKind::Dot)) {
      int AttrTok = static_cast<int>(Pos);
      std::string Attr = check(TokKind::Identifier) ? cur().Text : "<error>";
      expect(TokKind::Identifier, "after '.'");
      E = finish(make<AttributeExpr>(E, Attr, AttrTok), First);
      continue;
    }
    if (accept(TokKind::LBracket)) {
      Expr *Index = parseTestlist();
      expect(TokKind::RBracket, "to close subscript");
      E = finish(make<SubscriptExpr>(E, Index), First);
      continue;
    }
    return E;
  }
}

Expr *ParserImpl::parseAtom() {
  int First = static_cast<int>(Pos);
  switch (cur().Kind) {
  case TokKind::Identifier: {
    auto *N = make<NameExpr>(cur().Text, First);
    ++Pos;
    return finish(N, First);
  }
  case TokKind::IntLit: {
    long long V = std::strtoll(cur().Text.c_str(), nullptr, 10);
    ++Pos;
    return finish(make<IntLit>(V), First);
  }
  case TokKind::FloatLit: {
    double V = std::strtod(cur().Text.c_str(), nullptr);
    ++Pos;
    return finish(make<FloatLit>(V), First);
  }
  case TokKind::StringLit: {
    auto *S = make<StringLit>(cur().Text, false);
    ++Pos;
    return finish(S, First);
  }
  case TokKind::BytesLit: {
    auto *S = make<StringLit>(cur().Text, true);
    ++Pos;
    return finish(S, First);
  }
  case TokKind::KwTrue:
    ++Pos;
    return finish(make<BoolLit>(true), First);
  case TokKind::KwFalse:
    ++Pos;
    return finish(make<BoolLit>(false), First);
  case TokKind::KwNone:
    ++Pos;
    return finish(make<NoneLit>(), First);
  case TokKind::EllipsisTok:
    ++Pos;
    return finish(make<EllipsisLit>(), First);
  case TokKind::KwYield: {
    ++Pos;
    Expr *V = nullptr;
    if (!check(TokKind::Newline) && !check(TokKind::RParen) &&
        !check(TokKind::Eof))
      V = parseExpr();
    return finish(make<YieldExpr>(V), First);
  }
  case TokKind::LParen: {
    ++Pos;
    if (accept(TokKind::RParen))
      return finish(make<TupleExpr>(), First);
    Expr *Inner = parseTestlist();
    expect(TokKind::RParen, "to close parenthesis");
    Inner->LastTok = static_cast<int>(Pos) - 1;
    return Inner;
  }
  case TokKind::LBracket: {
    ++Pos;
    auto *L = make<ListExpr>();
    while (!check(TokKind::RBracket) && !check(TokKind::Eof)) {
      L->Elts.push_back(parseExpr());
      if (!accept(TokKind::Comma))
        break;
    }
    expect(TokKind::RBracket, "to close list display");
    return finish(L, First);
  }
  case TokKind::LBrace: {
    ++Pos;
    if (accept(TokKind::RBrace))
      return finish(make<DictExpr>(), First);
    Expr *FirstItem = parseExpr();
    if (accept(TokKind::Colon)) {
      auto *D = make<DictExpr>();
      D->Keys.push_back(FirstItem);
      D->Values.push_back(parseExpr());
      while (accept(TokKind::Comma)) {
        if (check(TokKind::RBrace))
          break;
        D->Keys.push_back(parseExpr());
        expect(TokKind::Colon, "in dict display");
        D->Values.push_back(parseExpr());
      }
      expect(TokKind::RBrace, "to close dict display");
      return finish(D, First);
    }
    auto *S = make<SetExpr>();
    S->Elts.push_back(FirstItem);
    while (accept(TokKind::Comma)) {
      if (check(TokKind::RBrace))
        break;
      S->Elts.push_back(parseExpr());
    }
    expect(TokKind::RBrace, "to close set display");
    return finish(S, First);
  }
  default:
    error(strformat("unexpected token '%s' in expression",
                    tokKindName(cur().Kind)));
    ++Pos;
    return finish(make<NoneLit>(), First);
  }
}

void ParserImpl::markStore(Expr *Target) {
  if (auto *N = dyn_cast<NameExpr>(Target)) {
    N->IsStore = true;
    return;
  }
  if (auto *A = dyn_cast<AttributeExpr>(Target)) {
    A->IsStore = true;
    return;
  }
  if (auto *T = dyn_cast<TupleExpr>(Target)) {
    for (Expr *E : T->Elts)
      markStore(E);
    return;
  }
  if (auto *L = dyn_cast<ListExpr>(Target)) {
    for (Expr *E : L->Elts)
      markStore(E);
    return;
  }
  // Subscript stores (d[k] = v) carry no symbol binding; nothing to mark.
}

ParsedFile typilus::parseFile(std::string Path, std::string Source) {
  ParsedFile PF;
  PF.Path = std::move(Path);
  PF.Source = std::move(Source);
  PF.Tokens = lexSource(PF.Source, PF.Diags);
  ParserImpl(PF).run();
  return PF;
}
