//===- pyfront/Dataflow.cpp - Use-def dataflow edges ------------------------===//

#include "pyfront/Dataflow.h"

#include <algorithm>
#include <map>
#include <set>

using namespace typilus;

namespace {

/// Abstract walk computing NEXT_MAY_USE. The state is, per symbol, the set
/// of token occurrences that may be the "most recent" use at this program
/// point. Branches are explored independently and merged; loop bodies are
/// walked twice so loop-carried uses are connected (a standard one-step
/// fixpoint approximation).
class MayUseWalker {
public:
  using Frontier = std::map<const Symbol *, std::set<int>>;

  std::set<std::pair<int, int>> Edges;

  void use(const Symbol *Sym, int Tok) {
    if (!Sym || Tok < 0)
      return;
    auto &Prev = Front[Sym];
    for (int P : Prev)
      if (P != Tok)
        Edges.insert({P, Tok});
    Prev = {Tok};
  }

  void walkExpr(const Expr *E) {
    if (!E)
      return;
    if (const auto *N = dyn_cast<NameExpr>(E)) {
      use(N->Sym, N->TokIdx);
      return;
    }
    if (const auto *A = dyn_cast<AttributeExpr>(E)) {
      walkExpr(A->Value);
      use(A->Sym, A->AttrTokIdx);
      return;
    }
    Module::forEachChild(E, [&](const AstNode *C) {
      walkExpr(cast<Expr>(C));
    });
  }

  static Frontier merged(const Frontier &A, const Frontier &B) {
    Frontier Out = A;
    for (const auto &[Sym, Toks] : B)
      Out[Sym].insert(Toks.begin(), Toks.end());
    return Out;
  }

  void walkStmts(const std::vector<Stmt *> &Stmts) {
    for (const Stmt *S : Stmts)
      walkStmt(S);
  }

  void walkStmt(const Stmt *S) {
    switch (S->kind()) {
    case AstNode::NodeKind::AssignStmt: {
      const auto *A = cast<AssignStmt>(S);
      walkExpr(A->Value); // RHS evaluates before the store.
      walkExpr(A->Target);
      return;
    }
    case AstNode::NodeKind::IfStmt: {
      const auto *I = cast<IfStmt>(S);
      walkExpr(I->Cond);
      Frontier AtCond = Front;
      walkStmts(I->Then);
      Frontier AfterThen = std::move(Front);
      Front = AtCond;
      walkStmts(I->Else);
      Front = merged(AfterThen, Front);
      return;
    }
    case AstNode::NodeKind::WhileStmt: {
      const auto *W = cast<WhileStmt>(S);
      walkExpr(W->Cond);
      Frontier AtEntry = Front;
      walkStmts(W->Body);
      // Second pass connects loop-carried uses (end of body -> cond/body).
      Front = merged(AtEntry, Front);
      walkExpr(W->Cond);
      walkStmts(W->Body);
      Front = merged(AtEntry, Front);
      return;
    }
    case AstNode::NodeKind::ForStmt: {
      const auto *F = cast<ForStmt>(S);
      walkExpr(F->Iter);
      walkExpr(F->Target);
      Frontier AtEntry = Front;
      walkStmts(F->Body);
      Front = merged(AtEntry, Front);
      walkExpr(F->Target);
      walkStmts(F->Body);
      Front = merged(AtEntry, Front);
      return;
    }
    case AstNode::NodeKind::FunctionDef: {
      // A nested flow: parameters seed the frontier; the surrounding
      // frontier is untouched (defaults evaluate in the enclosing flow).
      const auto *F = cast<FunctionDef>(S);
      for (const ParamDecl *P : F->Params)
        walkExpr(P->Default);
      Frontier Saved = std::move(Front);
      Front.clear();
      for (const ParamDecl *P : F->Params)
        if (P->Sym)
          use(P->Sym, P->NameTok);
      walkStmts(F->Body);
      Front = std::move(Saved);
      return;
    }
    case AstNode::NodeKind::ClassDef:
      walkStmts(cast<ClassDef>(S)->Body);
      return;
    case AstNode::NodeKind::ExprStmt:
      walkExpr(cast<ExprStmt>(S)->E);
      return;
    case AstNode::NodeKind::ReturnStmt:
      walkExpr(cast<ReturnStmt>(S)->Value);
      return;
    case AstNode::NodeKind::RaiseStmt:
      walkExpr(cast<RaiseStmt>(S)->E);
      return;
    case AstNode::NodeKind::AssertStmt: {
      const auto *A = cast<AssertStmt>(S);
      walkExpr(A->Cond);
      walkExpr(A->Msg);
      return;
    }
    case AstNode::NodeKind::DelStmt:
      walkExpr(cast<DelStmt>(S)->E);
      return;
    default:
      return;
    }
  }

private:
  Frontier Front;
};

} // namespace

DataflowEdges typilus::computeDataflow(const ParsedFile &PF,
                                       const SymbolTable &ST) {
  DataflowEdges Result;

  // NEXT_LEXICAL_USE: chain each symbol's occurrences in token order.
  for (const auto &SymPtr : ST.symbols()) {
    // Only variable-like symbols participate (Table 1: "token bound to a
    // variable").
    if (SymPtr->Kind == SymbolKind::Function ||
        SymPtr->Kind == SymbolKind::Class)
      continue;
    std::vector<int> Occ = SymPtr->OccTokens;
    std::sort(Occ.begin(), Occ.end());
    Occ.erase(std::unique(Occ.begin(), Occ.end()), Occ.end());
    for (size_t I = 1; I < Occ.size(); ++I)
      Result.NextLexicalUse.emplace_back(Occ[I - 1], Occ[I]);
  }

  MayUseWalker Walker;
  Walker.walkStmts(PF.Mod->Body);
  Result.NextMayUse.assign(Walker.Edges.begin(), Walker.Edges.end());
  return Result;
}
