//===- pyfront/Lexer.cpp - Python-subset lexer -----------------------------===//

#include "pyfront/Lexer.h"

#include "support/Str.h"

#include <cassert>
#include <cctype>
#include <map>

using namespace typilus;

std::string typilus::formatDiagnostic(const std::string &Path,
                                      const Diagnostic &D) {
  return Path + ":" + std::to_string(D.Line) + ": " + D.Message;
}

const char *typilus::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof: return "eof";
  case TokKind::Newline: return "newline";
  case TokKind::Indent: return "indent";
  case TokKind::Dedent: return "dedent";
  case TokKind::Error: return "error";
  case TokKind::Identifier: return "identifier";
  case TokKind::IntLit: return "int";
  case TokKind::FloatLit: return "float";
  case TokKind::StringLit: return "string";
  case TokKind::BytesLit: return "bytes";
  case TokKind::KwDef: return "def";
  case TokKind::KwReturn: return "return";
  case TokKind::KwIf: return "if";
  case TokKind::KwElif: return "elif";
  case TokKind::KwElse: return "else";
  case TokKind::KwWhile: return "while";
  case TokKind::KwFor: return "for";
  case TokKind::KwIn: return "in";
  case TokKind::KwClass: return "class";
  case TokKind::KwPass: return "pass";
  case TokKind::KwNone: return "None";
  case TokKind::KwTrue: return "True";
  case TokKind::KwFalse: return "False";
  case TokKind::KwImport: return "import";
  case TokKind::KwFrom: return "from";
  case TokKind::KwAs: return "as";
  case TokKind::KwNot: return "not";
  case TokKind::KwAnd: return "and";
  case TokKind::KwOr: return "or";
  case TokKind::KwYield: return "yield";
  case TokKind::KwBreak: return "break";
  case TokKind::KwContinue: return "continue";
  case TokKind::KwGlobal: return "global";
  case TokKind::KwIs: return "is";
  case TokKind::KwRaise: return "raise";
  case TokKind::KwAssert: return "assert";
  case TokKind::KwDel: return "del";
  case TokKind::KwWith: return "with";
  case TokKind::KwLambda: return "lambda";
  case TokKind::LParen: return "(";
  case TokKind::RParen: return ")";
  case TokKind::LBracket: return "[";
  case TokKind::RBracket: return "]";
  case TokKind::LBrace: return "{";
  case TokKind::RBrace: return "}";
  case TokKind::Comma: return ",";
  case TokKind::Colon: return ":";
  case TokKind::Semicolon: return ";";
  case TokKind::Dot: return ".";
  case TokKind::Arrow: return "->";
  case TokKind::EllipsisTok: return "...";
  case TokKind::Assign: return "=";
  case TokKind::PlusAssign: return "+=";
  case TokKind::MinusAssign: return "-=";
  case TokKind::StarAssign: return "*=";
  case TokKind::SlashAssign: return "/=";
  case TokKind::Plus: return "+";
  case TokKind::Minus: return "-";
  case TokKind::Star: return "*";
  case TokKind::DoubleStar: return "**";
  case TokKind::Slash: return "/";
  case TokKind::DoubleSlash: return "//";
  case TokKind::Percent: return "%";
  case TokKind::Amp: return "&";
  case TokKind::Pipe: return "|";
  case TokKind::EqEq: return "==";
  case TokKind::NotEq: return "!=";
  case TokKind::Lt: return "<";
  case TokKind::Gt: return ">";
  case TokKind::Le: return "<=";
  case TokKind::Ge: return ">=";
  }
  return "?";
}

static const std::map<std::string, TokKind> &keywordMap() {
  static const std::map<std::string, TokKind> Map = {
      {"def", TokKind::KwDef},         {"return", TokKind::KwReturn},
      {"if", TokKind::KwIf},           {"elif", TokKind::KwElif},
      {"else", TokKind::KwElse},       {"while", TokKind::KwWhile},
      {"for", TokKind::KwFor},         {"in", TokKind::KwIn},
      {"class", TokKind::KwClass},     {"pass", TokKind::KwPass},
      {"None", TokKind::KwNone},       {"True", TokKind::KwTrue},
      {"False", TokKind::KwFalse},     {"import", TokKind::KwImport},
      {"from", TokKind::KwFrom},       {"as", TokKind::KwAs},
      {"not", TokKind::KwNot},         {"and", TokKind::KwAnd},
      {"or", TokKind::KwOr},           {"yield", TokKind::KwYield},
      {"break", TokKind::KwBreak},     {"continue", TokKind::KwContinue},
      {"global", TokKind::KwGlobal},   {"is", TokKind::KwIs},
      {"raise", TokKind::KwRaise},     {"assert", TokKind::KwAssert},
      {"del", TokKind::KwDel},         {"with", TokKind::KwWith},
      {"lambda", TokKind::KwLambda},
  };
  return Map;
}

namespace {

/// Stateful lexer over a single source buffer.
class LexerImpl {
public:
  LexerImpl(std::string_view Source, std::vector<Diagnostic> &Diags)
      : Src(Source), Diags(Diags) {
    IndentStack.push_back(0);
  }

  std::vector<Token> run();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  bool atEnd() const { return Pos >= Src.size(); }

  void emit(TokKind K, std::string Text, int TokLine, int TokCol) {
    Toks.push_back(Token{K, std::move(Text), TokLine, TokCol, false});
  }
  void error(const std::string &Msg) {
    Diags.push_back(Diagnostic{Line, Msg});
    emit(TokKind::Error, "", Line, Col);
  }

  void handleLineStart();
  void lexNumber();
  void lexString(char Prefix);
  void lexIdentifier();
  void lexOperator();

  std::string_view Src;
  std::vector<Diagnostic> &Diags;
  std::vector<Token> Toks;
  std::vector<int> IndentStack;
  size_t Pos = 0;
  int Line = 1, Col = 1;
  int BracketDepth = 0;
  bool LineHasContent = false;
};

} // namespace

void LexerImpl::handleLineStart() {
  // Measure indentation; skip blank and comment-only lines entirely.
  while (true) {
    size_t Start = Pos;
    int Spaces = 0;
    while (!atEnd() && (peek() == ' ' || peek() == '\t')) {
      Spaces += peek() == '\t' ? 8 - (Spaces % 8) : 1;
      advance();
    }
    if (atEnd())
      return;
    if (peek() == '\n') {
      advance();
      continue; // blank line
    }
    if (peek() == '#') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    (void)Start;
    if (Spaces > IndentStack.back()) {
      IndentStack.push_back(Spaces);
      emit(TokKind::Indent, "", Line, 1);
    } else {
      while (Spaces < IndentStack.back()) {
        IndentStack.pop_back();
        emit(TokKind::Dedent, "", Line, 1);
      }
      if (Spaces != IndentStack.back())
        error("inconsistent dedent");
    }
    return;
  }
}

void LexerImpl::lexNumber() {
  int TokLine = Line, TokCol = Col;
  std::string Text;
  bool IsFloat = false;
  while (!atEnd() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == '_')) {
    // A '.' not followed by a digit terminates the number (attribute access
    // on an int literal is not in our subset; '...' is handled elsewhere).
    if (peek() == '.') {
      if (IsFloat || !std::isdigit(static_cast<unsigned char>(peek(1))))
        break;
      IsFloat = true;
    }
    char C = advance();
    if (C != '_')
      Text.push_back(C);
  }
  // Exponent part.
  if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
    IsFloat = true;
    Text.push_back(advance());
    if (peek() == '+' || peek() == '-')
      Text.push_back(advance());
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Text.push_back(advance());
  }
  emit(IsFloat ? TokKind::FloatLit : TokKind::IntLit, std::move(Text), TokLine,
       TokCol);
}

void LexerImpl::lexString(char Prefix) {
  int TokLine = Line, TokCol = Col;
  bool IsBytes = false;
  std::string Text;
  if (Prefix == 'b' || Prefix == 'B' || Prefix == 'f' || Prefix == 'F' ||
      Prefix == 'r' || Prefix == 'R') {
    IsBytes = Prefix == 'b' || Prefix == 'B';
    Text.push_back(advance());
  }
  char Quote = advance();
  Text.push_back(Quote);
  while (!atEnd() && peek() != Quote && peek() != '\n') {
    char C = advance();
    Text.push_back(C);
    if (C == '\\' && !atEnd())
      Text.push_back(advance());
  }
  if (atEnd() || peek() == '\n') {
    error("unterminated string literal");
    return;
  }
  Text.push_back(advance()); // closing quote
  emit(IsBytes ? TokKind::BytesLit : TokKind::StringLit, std::move(Text),
       TokLine, TokCol);
}

void LexerImpl::lexIdentifier() {
  int TokLine = Line, TokCol = Col;
  std::string Text;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    Text.push_back(advance());
  auto It = keywordMap().find(Text);
  if (It != keywordMap().end()) {
    emit(It->second, std::move(Text), TokLine, TokCol);
    return;
  }
  emit(TokKind::Identifier, std::move(Text), TokLine, TokCol);
}

void LexerImpl::lexOperator() {
  int TokLine = Line, TokCol = Col;
  char C = advance();
  auto Two = [&](char Next, TokKind IfTwo, TokKind IfOne) {
    if (peek() == Next) {
      advance();
      std::string T(1, C);
      T.push_back(Next);
      emit(IfTwo, T, TokLine, TokCol);
    } else {
      emit(IfOne, std::string(1, C), TokLine, TokCol);
    }
  };
  switch (C) {
  case '(': ++BracketDepth; emit(TokKind::LParen, "(", TokLine, TokCol); break;
  case ')': --BracketDepth; emit(TokKind::RParen, ")", TokLine, TokCol); break;
  case '[': ++BracketDepth; emit(TokKind::LBracket, "[", TokLine, TokCol); break;
  case ']': --BracketDepth; emit(TokKind::RBracket, "]", TokLine, TokCol); break;
  case '{': ++BracketDepth; emit(TokKind::LBrace, "{", TokLine, TokCol); break;
  case '}': --BracketDepth; emit(TokKind::RBrace, "}", TokLine, TokCol); break;
  case ',': emit(TokKind::Comma, ",", TokLine, TokCol); break;
  case ':': emit(TokKind::Colon, ":", TokLine, TokCol); break;
  case ';': emit(TokKind::Semicolon, ";", TokLine, TokCol); break;
  case '.':
    if (peek() == '.' && peek(1) == '.') {
      advance();
      advance();
      emit(TokKind::EllipsisTok, "...", TokLine, TokCol);
    } else {
      emit(TokKind::Dot, ".", TokLine, TokCol);
    }
    break;
  case '+': Two('=', TokKind::PlusAssign, TokKind::Plus); break;
  case '-':
    if (peek() == '>') {
      advance();
      emit(TokKind::Arrow, "->", TokLine, TokCol);
    } else {
      Two('=', TokKind::MinusAssign, TokKind::Minus);
    }
    break;
  case '*':
    if (peek() == '*') {
      advance();
      emit(TokKind::DoubleStar, "**", TokLine, TokCol);
    } else {
      Two('=', TokKind::StarAssign, TokKind::Star);
    }
    break;
  case '/':
    if (peek() == '/') {
      advance();
      emit(TokKind::DoubleSlash, "//", TokLine, TokCol);
    } else {
      Two('=', TokKind::SlashAssign, TokKind::Slash);
    }
    break;
  case '%': emit(TokKind::Percent, "%", TokLine, TokCol); break;
  case '&': emit(TokKind::Amp, "&", TokLine, TokCol); break;
  case '|': emit(TokKind::Pipe, "|", TokLine, TokCol); break;
  case '=': Two('=', TokKind::EqEq, TokKind::Assign); break;
  case '!':
    if (peek() == '=') {
      advance();
      emit(TokKind::NotEq, "!=", TokLine, TokCol);
    } else {
      error("unexpected character '!'");
    }
    break;
  case '<': Two('=', TokKind::Le, TokKind::Lt); break;
  case '>': Two('=', TokKind::Ge, TokKind::Gt); break;
  default:
    error(strformat("unexpected character '%c'", C));
  }
}

std::vector<Token> LexerImpl::run() {
  bool AtLineStart = true;
  while (!atEnd()) {
    if (AtLineStart && BracketDepth == 0) {
      handleLineStart();
      AtLineStart = false;
      LineHasContent = false;
      if (atEnd())
        break;
    }
    char C = peek();
    if (C == '\n') {
      advance();
      if (BracketDepth > 0)
        continue; // implicit line joining
      if (LineHasContent)
        emit(TokKind::Newline, "", Line - 1, Col);
      LineHasContent = false;
      AtLineStart = true;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      advance();
      continue;
    }
    if (C == '#') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '\\' && peek(1) == '\n') {
      advance();
      advance();
      continue; // explicit line joining
    }
    LineHasContent = true;
    if (std::isdigit(static_cast<unsigned char>(C))) {
      lexNumber();
      continue;
    }
    if ((C == 'b' || C == 'B' || C == 'f' || C == 'F' || C == 'r' ||
         C == 'R') &&
        (peek(1) == '"' || peek(1) == '\'')) {
      lexString(C);
      continue;
    }
    if (C == '"' || C == '\'') {
      lexString('\0');
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      lexIdentifier();
      continue;
    }
    lexOperator();
  }
  if (LineHasContent)
    emit(TokKind::Newline, "", Line, Col);
  while (IndentStack.size() > 1) {
    IndentStack.pop_back();
    emit(TokKind::Dedent, "", Line, 1);
  }
  emit(TokKind::Eof, "", Line, Col);
  return std::move(Toks);
}

std::vector<Token> typilus::lexSource(std::string_view Source,
                                      std::vector<Diagnostic> &Diags) {
  return LexerImpl(Source, Diags).run();
}
