//===- pyfront/Token.h - Python-subset tokens --------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token record produced by the lexer. Tokens carry an
/// `InAnnotation` flag set by the parser on lexemes that belong to a type
/// annotation: the graph builder must skip those, since the prediction task
/// erases all annotations from the model's input (Sec. 6.1).
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_PYFRONT_TOKEN_H
#define TYPILUS_PYFRONT_TOKEN_H

#include <string>

namespace typilus {

/// Token kinds of the Python subset. Keywords get individual kinds; the
/// layout pseudo-tokens (Newline/Indent/Dedent/Eof) never become graph
/// nodes.
enum class TokKind {
  Eof,
  Newline,
  Indent,
  Dedent,
  Error,
  Identifier,
  IntLit,
  FloatLit,
  StringLit,
  BytesLit,
  // Keywords.
  KwDef,
  KwReturn,
  KwIf,
  KwElif,
  KwElse,
  KwWhile,
  KwFor,
  KwIn,
  KwClass,
  KwPass,
  KwNone,
  KwTrue,
  KwFalse,
  KwImport,
  KwFrom,
  KwAs,
  KwNot,
  KwAnd,
  KwOr,
  KwYield,
  KwBreak,
  KwContinue,
  KwGlobal,
  KwIs,
  KwRaise,
  KwAssert,
  KwDel,
  KwWith,
  KwLambda,
  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Colon,
  Semicolon,
  Dot,
  Arrow,
  EllipsisTok,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  Plus,
  Minus,
  Star,
  DoubleStar,
  Slash,
  DoubleSlash,
  Percent,
  Amp,
  Pipe,
  EqEq,
  NotEq,
  Lt,
  Gt,
  Le,
  Ge,
};

/// Returns a stable human-readable name for \p K (for diagnostics/tests).
const char *tokKindName(TokKind K);

/// One lexed token.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;  ///< Raw lexeme (string literals keep their quotes).
  int Line = 0;      ///< 1-based source line.
  int Col = 0;       ///< 1-based source column.
  /// True if this lexeme is part of a type annotation (set by the parser);
  /// such tokens are invisible to the graph builder.
  bool InAnnotation = false;

  bool is(TokKind K) const { return Kind == K; }
  bool isIdentifierLike() const { return Kind == TokKind::Identifier; }
};

} // namespace typilus

#endif // TYPILUS_PYFRONT_TOKEN_H
