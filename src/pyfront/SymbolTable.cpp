//===- pyfront/SymbolTable.cpp - Scopes and symbols ------------------------===//

#include "pyfront/SymbolTable.h"

#include <cassert>
#include <map>
#include <set>

using namespace typilus;

const char *typilus::symbolKindName(SymbolKind K) {
  switch (K) {
  case SymbolKind::Variable: return "variable";
  case SymbolKind::Parameter: return "parameter";
  case SymbolKind::Function: return "function";
  case SymbolKind::Class: return "class";
  case SymbolKind::Return: return "return";
  case SymbolKind::Attribute: return "attribute";
  case SymbolKind::External: return "external";
  }
  return "?";
}

namespace {

/// One lexical scope during the build walk.
struct Scope {
  enum class Kind { Module, Function, Class };
  Kind K;
  Scope *Parent = nullptr;
  std::map<std::string, Symbol *> Names;
  ClassDef *Class = nullptr;      ///< For class scopes.
  FunctionDef *Func = nullptr;    ///< For function scopes.
  std::set<std::string> Globals;  ///< Names declared `global` here.
};

/// Symbol table construction walk.
class Builder {
public:
  Builder(ParsedFile &PF, SymbolTable &ST) : PF(PF), ST(ST) {}

  void run() {
    Scope ModScope{Scope::Kind::Module, nullptr, {}, nullptr, nullptr, {}};
    ModuleScope = &ModScope;
    walkStmts(PF.Mod->Body, ModScope);
  }

private:
  Symbol *define(Scope &S, const std::string &Name, SymbolKind K) {
    auto It = S.Names.find(Name);
    if (It != S.Names.end())
      return It->second;
    Symbol *Sym = ST.create(Name, K);
    S.Names.emplace(Name, Sym);
    return Sym;
  }

  /// Python-style lookup: starting scope, then enclosing scopes, but class
  /// scopes are skipped unless they are the starting scope.
  Symbol *resolve(Scope &From, const std::string &Name) {
    for (Scope *S = &From; S; S = S->Parent) {
      if (S != &From && S->K == Scope::Kind::Class)
        continue;
      auto It = S->Names.find(Name);
      if (It != S->Names.end())
        return It->second;
    }
    return nullptr;
  }

  /// Resolves a load; unknown names become External symbols at module
  /// scope (builtins like `range`, `len`, imported names...).
  Symbol *resolveOrExternal(Scope &From, const std::string &Name) {
    if (Symbol *Sym = resolve(From, Name))
      return Sym;
    return define(*ModuleScope, Name, SymbolKind::External);
  }

  void bindToken(Symbol *Sym, int Tok, const AstNode *Node) {
    if (Tok >= 0)
      Sym->OccTokens.push_back(Tok);
    if (Node)
      Sym->OccNodes.push_back(Node);
  }

  void walkStmts(const std::vector<Stmt *> &Stmts, Scope &S) {
    for (Stmt *St : Stmts)
      walkStmt(St, S);
  }

  void walkStmt(Stmt *St, Scope &S);
  void walkFunction(FunctionDef *F, Scope &S);
  void walkExpr(Expr *E, Scope &S);

  ParsedFile &PF;
  SymbolTable &ST;
  Scope *ModuleScope = nullptr;
  /// Innermost enclosing function scope (for return/yield binding).
  Scope *CurFunction = nullptr;
  /// Per-class attribute symbols, keyed by (class, attribute name).
  std::map<std::pair<ClassDef *, std::string>, Symbol *> ClassAttrs;
};

} // namespace

void Builder::walkFunction(FunctionDef *F, Scope &S) {
  bool IsMethod = S.K == Scope::Kind::Class;
  F->IsMethod = IsMethod;

  Symbol *FuncSym = define(S, F->Name, SymbolKind::Function);
  if (IsMethod)
    FuncSym->OwnerClass = S.Class;
  bindToken(FuncSym, F->NameTok, F);
  F->FuncSym = FuncSym;

  Symbol *RetSym = ST.create(F->Name, SymbolKind::Return);
  RetSym->AnnotationText = F->ReturnsText;
  RetSym->OwnerFunc = F;
  if (IsMethod)
    RetSym->OwnerClass = S.Class;
  // The FunctionDef node itself is an occurrence of the return symbol so
  // the GNN's symbol "supernode" receives the whole-signature context.
  bindToken(RetSym, F->NameTok, F);
  F->RetSym = RetSym;

  // Function scopes chain past any class scope (Python semantics).
  Scope *Parent = &S;
  while (Parent && Parent->K == Scope::Kind::Class)
    Parent = Parent->Parent;
  Scope FuncScope{Scope::Kind::Function, Parent, {}, nullptr, F, {}};
  if (IsMethod)
    FuncScope.Class = S.Class;

  for (ParamDecl *P : F->Params) {
    Symbol *PSym = define(FuncScope, P->Name, SymbolKind::Parameter);
    PSym->AnnotationText = P->AnnotationText;
    PSym->OwnerFunc = F;
    if (IsMethod)
      PSym->OwnerClass = S.Class;
    bindToken(PSym, P->NameTok, P);
    P->Sym = PSym;
    if (P->Default)
      walkExpr(P->Default, S); // defaults evaluate in the enclosing scope
  }

  Scope *SavedFunction = CurFunction;
  CurFunction = &FuncScope;
  walkStmts(F->Body, FuncScope);
  CurFunction = SavedFunction;
}

void Builder::walkStmt(Stmt *St, Scope &S) {
  switch (St->kind()) {
  case AstNode::NodeKind::FunctionDef:
    walkFunction(cast<FunctionDef>(St), S);
    return;
  case AstNode::NodeKind::ClassDef: {
    auto *C = cast<ClassDef>(St);
    Symbol *ClsSym = define(S, C->Name, SymbolKind::Class);
    bindToken(ClsSym, C->NameTok, C);
    C->ClassSym = ClsSym;
    Scope ClassScope{Scope::Kind::Class, &S, {}, C, nullptr, {}};
    walkStmts(C->Body, ClassScope);
    return;
  }
  case AstNode::NodeKind::AssignStmt: {
    auto *A = cast<AssignStmt>(St);
    if (A->Value)
      walkExpr(A->Value, S);
    walkExpr(A->Target, S);
    // Attach the annotation to the (single) target symbol, if any.
    if (!A->AnnotationText.empty()) {
      Symbol *Target = nullptr;
      if (auto *N = dyn_cast<NameExpr>(A->Target))
        Target = N->Sym;
      else if (auto *At = dyn_cast<AttributeExpr>(A->Target))
        Target = At->Sym;
      if (Target && Target->AnnotationText.empty())
        Target->AnnotationText = A->AnnotationText;
    }
    return;
  }
  case AstNode::NodeKind::ReturnStmt: {
    auto *R = cast<ReturnStmt>(St);
    if (R->Value)
      walkExpr(R->Value, S);
    if (CurFunction && CurFunction->Func && CurFunction->Func->RetSym)
      bindToken(CurFunction->Func->RetSym, R->FirstTok, R);
    return;
  }
  case AstNode::NodeKind::ForStmt: {
    auto *F = cast<ForStmt>(St);
    walkExpr(F->Iter, S);
    walkExpr(F->Target, S);
    walkStmts(F->Body, S);
    return;
  }
  case AstNode::NodeKind::IfStmt: {
    auto *I = cast<IfStmt>(St);
    walkExpr(I->Cond, S);
    walkStmts(I->Then, S);
    walkStmts(I->Else, S);
    return;
  }
  case AstNode::NodeKind::WhileStmt: {
    auto *W = cast<WhileStmt>(St);
    walkExpr(W->Cond, S);
    walkStmts(W->Body, S);
    return;
  }
  case AstNode::NodeKind::ImportStmt: {
    auto *I = cast<ImportStmt>(St);
    if (I->Names.empty()) {
      std::string Bound =
          !I->ModuleAlias.empty()
              ? I->ModuleAlias
              : I->ModuleName.substr(0, I->ModuleName.find('.'));
      if (!Bound.empty())
        define(S, Bound, SymbolKind::External);
    } else {
      for (const auto &[Name, Alias] : I->Names)
        define(S, Alias.empty() ? Name : Alias, SymbolKind::External);
    }
    return;
  }
  case AstNode::NodeKind::GlobalStmt:
    for (const std::string &Name : cast<GlobalStmt>(St)->Names) {
      S.Globals.insert(Name);
      define(*ModuleScope, Name, SymbolKind::Variable);
    }
    return;
  case AstNode::NodeKind::ExprStmt:
    walkExpr(cast<ExprStmt>(St)->E, S);
    return;
  case AstNode::NodeKind::RaiseStmt:
    if (Expr *E = cast<RaiseStmt>(St)->E)
      walkExpr(E, S);
    return;
  case AstNode::NodeKind::AssertStmt: {
    auto *A = cast<AssertStmt>(St);
    walkExpr(A->Cond, S);
    if (A->Msg)
      walkExpr(A->Msg, S);
    return;
  }
  case AstNode::NodeKind::DelStmt:
    walkExpr(cast<DelStmt>(St)->E, S);
    return;
  default:
    return; // Pass / Break / Continue have no symbols.
  }
}

void Builder::walkExpr(Expr *E, Scope &S) {
  if (auto *N = dyn_cast<NameExpr>(E)) {
    Symbol *Sym;
    if (N->IsStore) {
      // A store defines locally unless declared global here.
      if (S.Globals.count(N->Ident))
        Sym = define(*ModuleScope, N->Ident, SymbolKind::Variable);
      else
        Sym = define(S, N->Ident, SymbolKind::Variable);
    } else {
      Sym = resolveOrExternal(S, N->Ident);
    }
    N->Sym = Sym;
    bindToken(Sym, N->TokIdx, N);
    return;
  }
  if (auto *A = dyn_cast<AttributeExpr>(E)) {
    walkExpr(A->Value, S);
    // `self.attr` inside a method binds an attribute symbol of the class.
    auto *Base = dyn_cast<NameExpr>(A->Value);
    ClassDef *Cls = S.Class;
    if (Base && Base->Ident == "self" && Cls) {
      // Attribute symbols live in a per-class namespace keyed on the class
      // node; reuse the class symbol's scope via a side map.
      Symbol *&Slot = ClassAttrs[{Cls, A->Attr}];
      if (!Slot) {
        Slot = ST.create(A->Attr, SymbolKind::Attribute);
        Slot->OwnerClass = Cls;
      }
      A->Sym = Slot;
      bindToken(Slot, A->AttrTokIdx, A);
    }
    return;
  }
  Module::forEachChild(E, [&](const AstNode *C) {
    walkExpr(const_cast<Expr *>(cast<Expr>(C)), S);
  });
}

void typilus::buildSymbolTable(ParsedFile &PF, SymbolTable &ST) {
  assert(PF.Mod && "file must be parsed first");
  Builder(PF, ST).run();
}
