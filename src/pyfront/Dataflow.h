//===- pyfront/Dataflow.h - Use-def dataflow edges ----------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the two dataflow edge families of Table 1:
///   NEXT_LEXICAL_USE — each variable-bound token to its next lexical use;
///   NEXT_MAY_USE     — each variable-bound token to all *potential* next
///                      uses under control flow (branches fork the use
///                      frontier; loops feed it back once).
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_PYFRONT_DATAFLOW_H
#define TYPILUS_PYFRONT_DATAFLOW_H

#include "pyfront/SymbolTable.h"

#include <utility>
#include <vector>

namespace typilus {

/// Token-index pairs (From, To) for the two dataflow edge labels.
struct DataflowEdges {
  std::vector<std::pair<int, int>> NextLexicalUse;
  std::vector<std::pair<int, int>> NextMayUse;
};

/// Runs the dataflow analysis over \p PF. Requires a built symbol table.
DataflowEdges computeDataflow(const ParsedFile &PF, const SymbolTable &ST);

} // namespace typilus

#endif // TYPILUS_PYFRONT_DATAFLOW_H
