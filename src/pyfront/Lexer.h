//===- pyfront/Lexer.h - Python-subset lexer ---------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An indentation-aware lexer for the Python subset used throughout the
/// project. Produces a flat token vector terminated by Eof, with Indent /
/// Dedent pseudo-tokens driving block structure, Python-style implicit line
/// joining inside brackets, and `#` comments stripped.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_PYFRONT_LEXER_H
#define TYPILUS_PYFRONT_LEXER_H

#include "pyfront/Token.h"

#include <string>
#include <string_view>
#include <vector>

namespace typilus {

/// A lexer diagnostic (also reused by the parser).
struct Diagnostic {
  int Line = 0;
  std::string Message;
};

/// Renders \p D as "path:line: message" — the compiler-style form the
/// corpus ingestion walk logs for files it skips, so a reject report
/// points at the offending source line.
std::string formatDiagnostic(const std::string &Path, const Diagnostic &D);

/// Lexes \p Source into tokens. Errors are appended to \p Diags; lexing
/// continues past errors (an Error token is emitted).
std::vector<Token> lexSource(std::string_view Source,
                             std::vector<Diagnostic> &Diags);

} // namespace typilus

#endif // TYPILUS_PYFRONT_LEXER_H
