//===- pyfront/Ast.h - Python-subset abstract syntax tree --------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node classes for the Python subset. Nodes use LLVM-style kind tags
/// (see support/Casting.h) and are arena-allocated in their Module. Every
/// node records the token range it covers so the graph builder can attach
/// CHILD edges from non-terminals to token nodes. Type annotations are kept
/// as *strings only* — they deliberately have no AST/token presence visible
/// to the model, since the prediction task erases them (Sec. 6.1).
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_PYFRONT_AST_H
#define TYPILUS_PYFRONT_AST_H

#include "support/Casting.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace typilus {

struct Symbol;
class Module;

/// Base class of all AST nodes.
class AstNode {
public:
  enum class NodeKind {
    Module,
    // Statements.
    FunctionDef,
    ParamDecl,
    ClassDef,
    AssignStmt,
    ExprStmt,
    ReturnStmt,
    PassStmt,
    BreakStmt,
    ContinueStmt,
    IfStmt,
    WhileStmt,
    ForStmt,
    ImportStmt,
    GlobalStmt,
    RaiseStmt,
    AssertStmt,
    DelStmt,
    // Expressions.
    NameExpr,
    IntLit,
    FloatLit,
    StringLit,
    BoolLit,
    NoneLit,
    EllipsisLit,
    UnaryExpr,
    BinaryExpr,
    CallExpr,
    AttributeExpr,
    SubscriptExpr,
    ListExpr,
    TupleExpr,
    SetExpr,
    DictExpr,
    YieldExpr,
  };

  /// Nodes are owned and destroyed as `unique_ptr<AstNode>`, so the
  /// destructor must dispatch to the derived class (caught by the ASan
  /// CI job as a new-delete size mismatch when it did not).
  virtual ~AstNode() = default;

  NodeKind kind() const { return K; }
  /// Node id, dense within the owning Module (graph node mapping).
  int id() const { return Id; }

  /// Token range [FirstTok, LastTok] covered by this node (may be -1 for
  /// synthesised nodes).
  int FirstTok = -1;
  int LastTok = -1;

protected:
  explicit AstNode(NodeKind K) : K(K) {}

private:
  friend class Module;
  NodeKind K;
  int Id = -1;
};

/// Returns the rule name of \p K (e.g. "BinaryExpr"); used as the label of
/// non-terminal graph nodes.
const char *nodeKindName(AstNode::NodeKind K);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of expressions.
class Expr : public AstNode {
public:
  static bool classof(const AstNode *N) {
    return N->kind() >= NodeKind::NameExpr &&
           N->kind() <= NodeKind::YieldExpr;
  }

protected:
  using AstNode::AstNode;
};

/// An identifier use. `Sym` is filled by the symbol-table builder.
class NameExpr : public Expr {
public:
  NameExpr(std::string Id, int TokIdx)
      : Expr(NodeKind::NameExpr), Ident(std::move(Id)), TokIdx(TokIdx) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::NameExpr;
  }

  std::string Ident;
  int TokIdx;            ///< Index of the identifier token.
  Symbol *Sym = nullptr; ///< Resolved symbol (may stay null on error).
  bool IsStore = false;  ///< True if this is an assignment/for target.
};

class IntLit : public Expr {
public:
  explicit IntLit(long long V) : Expr(NodeKind::IntLit), Value(V) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::IntLit;
  }
  long long Value;
};

class FloatLit : public Expr {
public:
  explicit FloatLit(double V) : Expr(NodeKind::FloatLit), Value(V) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::FloatLit;
  }
  double Value;
};

class StringLit : public Expr {
public:
  StringLit(std::string V, bool IsBytes)
      : Expr(NodeKind::StringLit), Value(std::move(V)), IsBytes(IsBytes) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::StringLit;
  }
  std::string Value; ///< Raw lexeme including quotes.
  bool IsBytes;
};

class BoolLit : public Expr {
public:
  explicit BoolLit(bool V) : Expr(NodeKind::BoolLit), Value(V) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::BoolLit;
  }
  bool Value;
};

class NoneLit : public Expr {
public:
  NoneLit() : Expr(NodeKind::NoneLit) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::NoneLit;
  }
};

class EllipsisLit : public Expr {
public:
  EllipsisLit() : Expr(NodeKind::EllipsisLit) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::EllipsisLit;
  }
};

/// Unary operator kinds.
enum class UnaryOpKind { Neg, Pos, Not };

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOpKind Op, Expr *Operand)
      : Expr(NodeKind::UnaryExpr), Op(Op), Operand(Operand) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::UnaryExpr;
  }
  UnaryOpKind Op;
  Expr *Operand;
};

/// Binary operator kinds; comparisons and boolean connectives are folded in.
enum class BinOpKind {
  Add,
  Sub,
  Mult,
  Div,
  FloorDiv,
  Mod,
  Pow,
  BitAnd,
  BitOr,
  And,
  Or,
  Eq,
  NotEq,
  Lt,
  LtE,
  Gt,
  GtE,
  In,
  NotIn,
  Is,
  IsNot,
};

/// Returns a spelling like "+" or "and" for \p Op.
const char *binOpSpelling(BinOpKind Op);

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinOpKind Op, Expr *Lhs, Expr *Rhs)
      : Expr(NodeKind::BinaryExpr), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::BinaryExpr;
  }
  BinOpKind Op;
  Expr *Lhs;
  Expr *Rhs;
};

class CallExpr : public Expr {
public:
  explicit CallExpr(Expr *Callee) : Expr(NodeKind::CallExpr), Callee(Callee) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::CallExpr;
  }
  Expr *Callee;
  std::vector<Expr *> Args;
  /// Keyword arguments: names (paper: the GNN sees keyword-argument names),
  /// the token index of each name, and the value expressions.
  std::vector<std::string> KwNames;
  std::vector<int> KwNameToks;
  std::vector<Expr *> KwValues;
};

class AttributeExpr : public Expr {
public:
  AttributeExpr(Expr *Value, std::string Attr, int AttrTokIdx)
      : Expr(NodeKind::AttributeExpr), Value(Value), Attr(std::move(Attr)),
        AttrTokIdx(AttrTokIdx) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::AttributeExpr;
  }
  Expr *Value;
  std::string Attr;
  int AttrTokIdx;
  /// Resolved attribute symbol for `self.attr` inside methods, else null.
  Symbol *Sym = nullptr;
  bool IsStore = false;
};

class SubscriptExpr : public Expr {
public:
  SubscriptExpr(Expr *Value, Expr *Index)
      : Expr(NodeKind::SubscriptExpr), Value(Value), Index(Index) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::SubscriptExpr;
  }
  Expr *Value;
  Expr *Index;
};

class ListExpr : public Expr {
public:
  ListExpr() : Expr(NodeKind::ListExpr) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::ListExpr;
  }
  std::vector<Expr *> Elts;
};

class TupleExpr : public Expr {
public:
  TupleExpr() : Expr(NodeKind::TupleExpr) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::TupleExpr;
  }
  std::vector<Expr *> Elts;
};

class SetExpr : public Expr {
public:
  SetExpr() : Expr(NodeKind::SetExpr) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::SetExpr;
  }
  std::vector<Expr *> Elts;
};

class DictExpr : public Expr {
public:
  DictExpr() : Expr(NodeKind::DictExpr) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::DictExpr;
  }
  std::vector<Expr *> Keys;
  std::vector<Expr *> Values;
};

class YieldExpr : public Expr {
public:
  explicit YieldExpr(Expr *Value) : Expr(NodeKind::YieldExpr), Value(Value) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::YieldExpr;
  }
  Expr *Value; ///< May be null (`yield`).
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of statements.
class Stmt : public AstNode {
public:
  static bool classof(const AstNode *N) {
    return N->kind() >= NodeKind::FunctionDef &&
           N->kind() <= NodeKind::DelStmt;
  }

protected:
  using AstNode::AstNode;
};

/// A single function parameter declaration.
class ParamDecl : public Stmt {
public:
  ParamDecl(std::string Name, int NameTok)
      : Stmt(NodeKind::ParamDecl), Name(std::move(Name)), NameTok(NameTok) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::ParamDecl;
  }
  std::string Name;
  int NameTok;
  std::string AnnotationText; ///< "" when unannotated.
  Expr *Default = nullptr;
  Symbol *Sym = nullptr;
};

class FunctionDef : public Stmt {
public:
  FunctionDef(std::string Name, int NameTok)
      : Stmt(NodeKind::FunctionDef), Name(std::move(Name)), NameTok(NameTok) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::FunctionDef;
  }
  std::string Name;
  int NameTok;
  std::vector<ParamDecl *> Params;
  std::string ReturnsText; ///< "" when the return is unannotated.
  std::vector<Stmt *> Body;
  Symbol *FuncSym = nullptr;
  Symbol *RetSym = nullptr; ///< The function-return symbol (Sec. 5.1).
  bool IsMethod = false;    ///< Set when directly inside a class body.
};

class ClassDef : public Stmt {
public:
  ClassDef(std::string Name, int NameTok)
      : Stmt(NodeKind::ClassDef), Name(std::move(Name)), NameTok(NameTok) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::ClassDef;
  }
  std::string Name;
  int NameTok;
  std::vector<std::string> Bases;
  std::vector<Stmt *> Body;
  Symbol *ClassSym = nullptr;
};

/// Covers `x = e`, `x: T = e`, `x: T`, and augmented `x += e`.
class AssignStmt : public Stmt {
public:
  AssignStmt(Expr *Target, Expr *Value)
      : Stmt(NodeKind::AssignStmt), Target(Target), Value(Value) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::AssignStmt;
  }
  Expr *Target;
  Expr *Value;                ///< Null for a bare annotation `x: T`.
  std::string AnnotationText; ///< "" when unannotated.
  bool IsAug = false;
  BinOpKind AugOp = BinOpKind::Add;
};

class ExprStmt : public Stmt {
public:
  explicit ExprStmt(Expr *E) : Stmt(NodeKind::ExprStmt), E(E) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::ExprStmt;
  }
  Expr *E;
};

class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(Expr *Value)
      : Stmt(NodeKind::ReturnStmt), Value(Value) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::ReturnStmt;
  }
  Expr *Value; ///< May be null (`return`).
};

class PassStmt : public Stmt {
public:
  PassStmt() : Stmt(NodeKind::PassStmt) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::PassStmt;
  }
};

class BreakStmt : public Stmt {
public:
  BreakStmt() : Stmt(NodeKind::BreakStmt) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::BreakStmt;
  }
};

class ContinueStmt : public Stmt {
public:
  ContinueStmt() : Stmt(NodeKind::ContinueStmt) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::ContinueStmt;
  }
};

class IfStmt : public Stmt {
public:
  explicit IfStmt(Expr *Cond) : Stmt(NodeKind::IfStmt), Cond(Cond) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::IfStmt;
  }
  Expr *Cond;
  std::vector<Stmt *> Then;
  std::vector<Stmt *> Else; ///< `elif` chains nest as a single IfStmt here.
};

class WhileStmt : public Stmt {
public:
  explicit WhileStmt(Expr *Cond) : Stmt(NodeKind::WhileStmt), Cond(Cond) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::WhileStmt;
  }
  Expr *Cond;
  std::vector<Stmt *> Body;
};

class ForStmt : public Stmt {
public:
  ForStmt(Expr *Target, Expr *Iter)
      : Stmt(NodeKind::ForStmt), Target(Target), Iter(Iter) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::ForStmt;
  }
  Expr *Target;
  Expr *Iter;
  std::vector<Stmt *> Body;
};

class ImportStmt : public Stmt {
public:
  ImportStmt() : Stmt(NodeKind::ImportStmt) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::ImportStmt;
  }
  std::string ModuleName;
  std::string ModuleAlias; ///< `import m as a`; "" when absent.
  /// `from m import x as y` pairs; empty for plain `import m`.
  std::vector<std::pair<std::string, std::string>> Names;
};

class GlobalStmt : public Stmt {
public:
  GlobalStmt() : Stmt(NodeKind::GlobalStmt) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::GlobalStmt;
  }
  std::vector<std::string> Names;
};

class RaiseStmt : public Stmt {
public:
  explicit RaiseStmt(Expr *E) : Stmt(NodeKind::RaiseStmt), E(E) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::RaiseStmt;
  }
  Expr *E; ///< May be null (bare `raise`).
};

class AssertStmt : public Stmt {
public:
  AssertStmt(Expr *Cond, Expr *Msg)
      : Stmt(NodeKind::AssertStmt), Cond(Cond), Msg(Msg) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::AssertStmt;
  }
  Expr *Cond;
  Expr *Msg; ///< May be null.
};

class DelStmt : public Stmt {
public:
  explicit DelStmt(Expr *E) : Stmt(NodeKind::DelStmt), E(E) {}
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::DelStmt;
  }
  Expr *E;
};

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

/// A parsed file; owns all of its AST nodes.
class Module : public AstNode {
public:
  Module() : AstNode(NodeKind::Module) { setId(this); }
  static bool classof(const AstNode *N) {
    return N->kind() == NodeKind::Module;
  }

  std::vector<Stmt *> Body;

  /// Allocates a node in this module's arena and assigns it a dense id.
  template <typename T, typename... ArgTs> T *create(ArgTs &&...Args) {
    auto Owned = std::make_unique<T>(std::forward<ArgTs>(Args)...);
    T *Node = Owned.get();
    setId(Node);
    Arena.push_back(std::move(Owned));
    return Node;
  }

  /// All nodes in creation order; index == AstNode::id(). Arena[0] is this
  /// module itself (stored as a non-owning placeholder slot).
  size_t numNodes() const { return NextId; }

  /// Applies \p Fn to each direct child of \p N, in source order.
  static void forEachChild(const AstNode *N,
                           const std::function<void(const AstNode *)> &Fn);

private:
  void setId(AstNode *N) { N->Id = NextId++; }
  std::vector<std::unique_ptr<AstNode>> Arena;
  int NextId = 0;
};

} // namespace typilus

#endif // TYPILUS_PYFRONT_AST_H
