//===- lsp/LspServer.h - JSON-RPC language-server session ---------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The editor front-end over the PR-9 incremental loop: a JSON-RPC 2.0
/// session (Content-Length framing, lsp/Transport.h) that keeps one
/// Predictor's τmap in sync with the documents an editor has open.
/// `didOpen`/`didChange` route the full document text through
/// `Predictor::annotateIncremental` — tombstone the file's markers,
/// re-embed *only that file*, answer through the shared query kernel —
/// and publish the predictions two ways:
///
///  - `textDocument/publishDiagnostics`: one Hint per confident
///    prediction (an inlay-hint stand-in every client renders), one
///    Warning per confident disagreement with an existing annotation.
///    When the checker gate is on, a prediction whose substitution
///    introduces new type errors (the Sec. 6.3 protocol) is suppressed;
///  - `typilus/types`: a custom notification carrying every prediction
///    plus the FNV-1a digest `typilus_cli predict --source` prints for
///    the same text — the bit-identity contract, observable per edit.
///
/// `didClose` retires the document's markers. Methods dispatch through
/// the same serve::MethodRegistry the NDJSON daemon uses, with the
/// uniform unknown-method error (JSON-RPC MethodNotFound). The session
/// is single-threaded by design: one editor, one loop, no locks.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_LSP_LSPSERVER_H
#define TYPILUS_LSP_LSPSERVER_H

#include "core/Predictor.h"
#include "lsp/Transport.h"
#include "serve/Dispatch.h"
#include "support/Json.h"

#include <atomic>
#include <functional>
#include <memory>
#include <string>

namespace typilus {

class TypeHierarchy;

namespace lsp {

struct LspOptions {
  /// Predictions below this confidence are not published (neither as
  /// hints nor in disagreement warnings); typilus/types still carries
  /// them so clients can apply their own threshold.
  double MinConfidence = 0.5;
  /// Gate published predictions through checker/ (Sec. 6.3): substitute
  /// the predicted annotation, re-check, suppress on new errors. Files
  /// that fail the checker before substitution publish ungated.
  bool CheckerGate = true;
  /// pytype-like local inference inside the gate (CheckerOptions).
  bool InferLocals = false;
  /// Per-message body cap handed to FrameReader.
  size_t MaxFrameBytes = kDefaultMaxFrameBytes;
};

/// One JSON-RPC session over one predictor.
class LspServer {
public:
  /// Response sink: receives one fully framed message (header + body).
  using Send = std::function<void(std::string)>;

  /// \p P must outlive the server and have a universe
  /// (Predictor::universe()); loaded artifacts do.
  LspServer(Predictor &P, Send Out, LspOptions O = {});
  ~LspServer();

  LspServer(const LspServer &) = delete;
  LspServer &operator=(const LspServer &) = delete;

  /// Dispatches one decoded message body. \returns false once `exit`
  /// has been received (the session is over).
  bool handle(std::string_view Body);

  /// Reads frames off \p Fd and dispatches until `exit`, EOF or an
  /// unrecoverable transport error. \p Stop + \p WakeFd preempt a
  /// blocked read (the daemon's SIGTERM self-pipe, as in serveStream).
  /// \returns the process exit code the LSP spec mandates: 0 when
  /// `shutdown` preceded the end of the session, 1 otherwise.
  int run(int Fd, const std::atomic<bool> *Stop = nullptr, int WakeFd = -1);

  /// True once `shutdown` has been received.
  bool shutdownSeen() const { return ShutdownSeen; }

private:
  using Handler =
      std::function<void(const json::Value *Id, const json::Value *Params)>;

  void registerMethods();

  // Serialization helpers. Bodies are built by hand like the NDJSON
  // protocol's responses — the messages are flat and the writer stays
  // allocation-lean.
  void sendBody(std::string Body);
  void respond(const json::Value *Id, std::string_view ResultJson);
  void respondError(const json::Value *Id, int Code, std::string_view Msg);
  void notify(std::string_view Method, std::string_view ParamsJson);

  /// didOpen/didChange: annotate \p Text and publish.
  void annotate(const std::string &Uri, const std::string &Text);

  Predictor &P;
  Send Out;
  LspOptions Opts;
  serve::MethodRegistry<Handler> Methods;
  /// Built lazily from P.universe() on the first annotate (the gate's
  /// subtyping queries).
  std::unique_ptr<TypeHierarchy> Hierarchy;
  bool ShutdownSeen = false;
  bool Exited = false;
};

/// file:// URI -> filesystem path (percent-decoding applied); non-file
/// URIs pass through unchanged so digests still key on something stable.
std::string uriToPath(std::string_view Uri);
/// Filesystem path -> file:// URI (reserved bytes percent-encoded).
std::string pathToUri(std::string_view Path);

} // namespace lsp
} // namespace typilus

#endif // TYPILUS_LSP_LSPSERVER_H
