//===- lsp/LspServer.cpp - JSON-RPC language-server session --------------------===//

#include "lsp/LspServer.h"

#include "checker/Checker.h"
#include "pyfront/Parser.h"
#include "support/Str.h"
#include "typesys/Hierarchy.h"

#include <algorithm>
#include <exception>

using namespace typilus;
using namespace typilus::lsp;

//===----------------------------------------------------------------------===//
// URIs
//===----------------------------------------------------------------------===//

namespace {

int hexVal(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

} // namespace

std::string typilus::lsp::uriToPath(std::string_view Uri) {
  constexpr std::string_view Scheme = "file://";
  if (Uri.substr(0, Scheme.size()) != Scheme)
    return std::string(Uri);
  Uri.remove_prefix(Scheme.size());
  std::string Path;
  Path.reserve(Uri.size());
  for (size_t I = 0; I != Uri.size(); ++I) {
    if (Uri[I] == '%' && I + 2 < Uri.size()) {
      int Hi = hexVal(Uri[I + 1]), Lo = hexVal(Uri[I + 2]);
      if (Hi >= 0 && Lo >= 0) {
        Path.push_back(static_cast<char>(Hi * 16 + Lo));
        I += 2;
        continue;
      }
    }
    Path.push_back(Uri[I]);
  }
  return Path;
}

std::string typilus::lsp::pathToUri(std::string_view Path) {
  std::string Uri = "file://";
  for (char C : Path) {
    bool Plain = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                 (C >= '0' && C <= '9') || C == '/' || C == '-' || C == '.' ||
                 C == '_' || C == '~';
    if (Plain) {
      Uri.push_back(C);
    } else {
      static const char Hex[] = "0123456789ABCDEF";
      Uri.push_back('%');
      Uri.push_back(Hex[static_cast<unsigned char>(C) >> 4]);
      Uri.push_back(Hex[static_cast<unsigned char>(C) & 0xF]);
    }
  }
  return Uri;
}

//===----------------------------------------------------------------------===//
// Serialization helpers
//===----------------------------------------------------------------------===//

namespace {

/// Echoes a request id (number, string, or null for id-less errors).
void appendId(std::string &Out, const json::Value *Id) {
  if (!Id || Id->isNull())
    Out += "null";
  else if (Id->isString())
    json::appendQuoted(Out, Id->asString());
  else
    json::appendNumber(Out, Id->asNumber());
}

/// One LSP zero-length-tolerant range on a single line.
void appendRange(std::string &Out, int Line0, int Col0, int Len) {
  Out += "{\"start\":{\"line\":" + std::to_string(Line0) +
         ",\"character\":" + std::to_string(Col0) +
         "},\"end\":{\"line\":" + std::to_string(Line0) +
         ",\"character\":" + std::to_string(Col0 + Len) + "}}";
}

} // namespace

LspServer::LspServer(Predictor &P, Send Out, LspOptions O)
    : P(P), Out(std::move(Out)), Opts(O) {
  registerMethods();
}

LspServer::~LspServer() = default;

void LspServer::sendBody(std::string Body) { Out(frameMessage(Body)); }

void LspServer::respond(const json::Value *Id, std::string_view ResultJson) {
  std::string R = "{\"jsonrpc\":\"2.0\",\"id\":";
  appendId(R, Id);
  R += ",\"result\":";
  R += ResultJson;
  R += "}";
  sendBody(std::move(R));
}

void LspServer::respondError(const json::Value *Id, int Code,
                             std::string_view Msg) {
  std::string R = "{\"jsonrpc\":\"2.0\",\"id\":";
  appendId(R, Id);
  R += ",\"error\":{\"code\":" + std::to_string(Code) + ",\"message\":";
  json::appendQuoted(R, Msg);
  R += "}}";
  sendBody(std::move(R));
}

void LspServer::notify(std::string_view Method, std::string_view ParamsJson) {
  std::string R = "{\"jsonrpc\":\"2.0\",\"method\":";
  json::appendQuoted(R, Method);
  R += ",\"params\":";
  R += ParamsJson;
  R += "}";
  sendBody(std::move(R));
}

//===----------------------------------------------------------------------===//
// Methods
//===----------------------------------------------------------------------===//

void LspServer::registerMethods() {
  Methods.add("initialize", [this](const json::Value *Id, const json::Value *) {
    // Full-document sync: didChange carries the whole text, which is what
    // annotateIncremental re-embeds anyway (the unit of the τmap swap is
    // the file).
    respond(Id, "{\"capabilities\":{\"textDocumentSync\":1},"
                "\"serverInfo\":{\"name\":\"typilus_lsp\"}}");
  });
  Methods.add("initialized",
              [](const json::Value *, const json::Value *) {});
  Methods.add("shutdown", [this](const json::Value *Id, const json::Value *) {
    ShutdownSeen = true;
    respond(Id, "null");
  });
  Methods.add("exit", [this](const json::Value *, const json::Value *) {
    Exited = true;
  });

  auto DocText = [this](const json::Value *Params) {
    // didOpen carries textDocument.text; didChange carries the full text
    // as the last contentChanges element (sync kind 1).
    std::pair<std::string, std::string> UriText;
    if (!Params)
      return UriText;
    if (const json::Value *Doc = Params->find("textDocument")) {
      UriText.first = Doc->getString("uri", "");
      UriText.second = Doc->getString("text", "");
    }
    if (const json::Value *Changes = Params->find("contentChanges"))
      if (Changes->isArray() && !Changes->array().empty())
        UriText.second = Changes->array().back().getString("text", "");
    return UriText;
  };

  Methods.add("textDocument/didOpen",
              [this, DocText](const json::Value *, const json::Value *Params) {
                auto [Uri, Text] = DocText(Params);
                if (!Uri.empty())
                  annotate(Uri, Text);
              });
  Methods.add("textDocument/didChange",
              [this, DocText](const json::Value *, const json::Value *Params) {
                auto [Uri, Text] = DocText(Params);
                if (!Uri.empty())
                  annotate(Uri, Text);
              });
  Methods.add("textDocument/didClose",
              [this, DocText](const json::Value *, const json::Value *Params) {
                auto [Uri, Text] = DocText(Params);
                (void)Text;
                if (Uri.empty())
                  return;
                P.removeMarkersForFile(uriToPath(Uri));
                std::string D = "{\"uri\":";
                json::appendQuoted(D, Uri);
                D += ",\"diagnostics\":[]}";
                notify("textDocument/publishDiagnostics", D);
              });
}

//===----------------------------------------------------------------------===//
// Annotation
//===----------------------------------------------------------------------===//

void LspServer::annotate(const std::string &Uri, const std::string &Text) {
  std::string Path = uriToPath(Uri);
  std::vector<PredictionResult> Preds;
  try {
    Preds = P.annotateIncremental(Path, Text);
  } catch (const std::exception &E) {
    // Misconfiguration (no universe / non-kNN), not a per-edit state:
    // surface it as one Error diagnostic so the editor shows something.
    std::string D = "{\"uri\":";
    json::appendQuoted(D, Uri);
    D += ",\"diagnostics\":[{\"range\":";
    appendRange(D, 0, 0, 0);
    D += ",\"severity\":1,\"source\":\"typilus\",\"message\":";
    json::appendQuoted(D, E.what());
    D += "}]}";
    notify("textDocument/publishDiagnostics", D);
    return;
  }

  // Re-parse for positions and the checker gate. Symbol ids are
  // deterministic (Experiments.cpp relies on the same alignment), so
  // PredictionResult::SymbolId indexes this table.
  ParsedFile PF = parseFile(Path, Text);
  SymbolTable ST;
  buildSymbolTable(PF, ST);

  TypeUniverse *U = P.universe();
  std::unique_ptr<Checker> Gate;
  bool GateUsable = false;
  if (Opts.CheckerGate && U) {
    if (!Hierarchy)
      Hierarchy = std::make_unique<TypeHierarchy>(*U);
    Gate = std::make_unique<Checker>(*U, *Hierarchy,
                                     CheckerOptions{Opts.InferLocals});
    // Sec. 6.3 protocol: only programs that check before substitution
    // can blame a prediction for new errors.
    GateUsable = Gate->check(PF, ST).empty();
  }

  std::string Diags;   // publishDiagnostics entries
  std::string Types;   // typilus/types entries
  bool FirstDiag = true, FirstType = true;
  for (const PredictionResult &R : Preds) {
    Symbol *Sym = R.SymbolId >= 0 && static_cast<size_t>(R.SymbolId) < ST.size()
                      ? ST[static_cast<size_t>(R.SymbolId)]
                      : nullptr;
    int Line0 = 0, Col0 = 0;
    if (Sym && !Sym->OccTokens.empty()) {
      size_t Tok = static_cast<size_t>(Sym->OccTokens.front());
      if (Tok < PF.Tokens.size()) {
        Line0 = std::max(0, PF.Tokens[Tok].Line - 1);
        Col0 = std::max(0, PF.Tokens[Tok].Col - 1);
      }
    }

    TypeRef Top = R.top();
    bool Confident = Top && R.confidence() >= Opts.MinConfidence;
    bool Suppressed = false;
    if (Confident && GateUsable && Sym && Top != U->any()) {
      std::string Saved = Sym->AnnotationText;
      Sym->AnnotationText = Top->str();
      Suppressed = !Gate->check(PF, ST).empty();
      Sym->AnnotationText = Saved;
    }

    if (Confident && !Suppressed) {
      bool Disagrees = R.Truth && R.Truth != Top;
      if (!FirstDiag)
        Diags += ",";
      FirstDiag = false;
      Diags += "{\"range\":";
      appendRange(Diags, Line0, Col0,
                  static_cast<int>(R.SymbolName.size()));
      Diags += ",\"severity\":";
      Diags += Disagrees ? "2" : "4"; // Warning : Hint
      Diags += ",\"source\":\"typilus\",\"message\":";
      int Pct = static_cast<int>(R.confidence() * 100 + 0.5);
      std::string Msg = Disagrees
                            ? strformat("predicted %s (%d%%), annotated %s",
                                        Top->str().c_str(), Pct,
                                        R.Truth->str().c_str())
                            : strformat("type: %s (%d%%)",
                                        Top->str().c_str(), Pct);
      json::appendQuoted(Diags, Msg);
      Diags += "}";
    }

    if (!FirstType)
      Types += ",";
    FirstType = false;
    Types += "{\"symbol\":";
    json::appendQuoted(Types, R.SymbolName);
    Types += ",\"kind\":";
    json::appendQuoted(Types, symbolKindName(R.Kind));
    Types += ",\"target\":" + std::to_string(R.TargetIdx);
    Types += ",\"line\":" + std::to_string(Line0);
    Types += ",\"type\":";
    if (Top)
      json::appendQuoted(Types, Top->str());
    else
      Types += "null";
    Types += ",\"prob\":";
    json::appendNumber(Types, R.confidence());
    Types += Suppressed ? ",\"suppressed\":true}" : ",\"suppressed\":false}";
  }

  std::string D = "{\"uri\":";
  json::appendQuoted(D, Uri);
  D += ",\"diagnostics\":[" + Diags + "]}";
  notify("textDocument/publishDiagnostics", D);

  // The custom notification: every prediction plus the digest the CLI
  // and the NDJSON daemon print for this exact text — the per-edit
  // bit-identity probe CI asserts through.
  std::string T = "{\"uri\":";
  json::appendQuoted(T, Uri);
  T += ",\"path\":";
  json::appendQuoted(T, Path);
  T += ",\"digest\":";
  json::appendQuoted(T, strformat("%016llx", static_cast<unsigned long long>(
                                                 predictionDigest(Preds))));
  T += ",\"predictions\":[" + Types + "]}";
  notify("typilus/types", T);
}

//===----------------------------------------------------------------------===//
// Session loop
//===----------------------------------------------------------------------===//

bool LspServer::handle(std::string_view Body) {
  json::Value V;
  std::string Err;
  if (!json::parse(Body, V, &Err)) {
    respondError(nullptr, -32700, "parse error: " + Err);
    return !Exited;
  }
  if (!V.isObject()) {
    respondError(nullptr, -32600, "message must be a JSON object");
    return !Exited;
  }
  const json::Value *Id = V.find("id");
  std::string Method = V.getString("method", "");
  if (Method.empty()) {
    if (Id)
      respondError(Id, -32600, "request needs a \"method\"");
    return !Exited;
  }
  const Handler *H = Methods.find(Method);
  if (!H) {
    // Requests get MethodNotFound with the registry's uniform text;
    // unknown notifications are dropped, as the spec mandates.
    if (Id)
      respondError(Id, -32601, serve::unknownMethodError(Method));
    return !Exited;
  }
  (*H)(Id, V.find("params"));
  return !Exited;
}

int LspServer::run(int Fd, const std::atomic<bool> *Stop, int WakeFd) {
  FrameReader R(Fd, Opts.MaxFrameBytes, WakeFd);
  std::string Body;
  while (!Exited) {
    switch (R.next(Body)) {
    case FrameReader::Status::Message:
      handle(Body);
      break;
    case FrameReader::Status::TooLarge:
      respondError(nullptr, -32600, "message exceeds the frame size cap");
      break;
    case FrameReader::Status::Interrupted:
      if (Stop && Stop->load())
        return ShutdownSeen ? 0 : 1;
      break;
    case FrameReader::Status::Eof:
    case FrameReader::Status::Error:
      return ShutdownSeen ? 0 : 1;
    }
  }
  return ShutdownSeen ? 0 : 1;
}
