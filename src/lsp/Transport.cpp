//===- lsp/Transport.cpp - LSP base-protocol framing ---------------------------===//

#include "lsp/Transport.h"

#include <algorithm>
#include <cctype>
#include <cerrno>

#include <poll.h>
#include <unistd.h>

using namespace typilus;
using namespace typilus::lsp;

namespace {

/// Parses the header section (everything before the blank line) for
/// Content-Length. Header names are case-insensitive per the spec;
/// unknown headers (Content-Type, ...) are skipped. \returns false when
/// no parseable Content-Length is present — a framing violation the
/// reader cannot recover from.
bool parseContentLength(std::string_view Headers, size_t *Out) {
  while (!Headers.empty()) {
    size_t Eol = Headers.find('\n');
    std::string_view Line = Headers.substr(0, Eol);
    Headers = Eol == std::string_view::npos ? std::string_view()
                                            : Headers.substr(Eol + 1);
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    constexpr std::string_view Key = "content-length:";
    if (Line.size() <= Key.size())
      continue;
    bool Match = true;
    for (size_t I = 0; I != Key.size(); ++I)
      if (std::tolower(static_cast<unsigned char>(Line[I])) != Key[I]) {
        Match = false;
        break;
      }
    if (!Match)
      continue;
    Line.remove_prefix(Key.size());
    while (!Line.empty() && Line.front() == ' ')
      Line.remove_prefix(1);
    if (Line.empty())
      return false;
    size_t N = 0;
    for (char C : Line) {
      if (C < '0' || C > '9')
        return false;
      if (N > (SIZE_MAX - 9) / 10)
        return false;
      N = N * 10 + static_cast<size_t>(C - '0');
    }
    *Out = N;
    return true;
  }
  return false;
}

} // namespace

FrameReader::Status FrameReader::fill() {
  if (WakeFd >= 0) {
    struct pollfd P[2];
    P[0].fd = Fd;
    P[0].events = POLLIN;
    P[0].revents = 0;
    P[1].fd = WakeFd;
    P[1].events = POLLIN;
    P[1].revents = 0;
    int Rc = ::poll(P, 2, -1);
    if (Rc < 0)
      return errno == EINTR ? Status::Interrupted : Status::Error;
    if (P[1].revents != 0)
      return Status::Interrupted;
  }
  char Chunk[4096];
  ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
  if (N > 0) {
    Buf.append(Chunk, static_cast<size_t>(N));
    return Status::Message; // bytes arrived: caller rescans
  }
  if (N == 0) {
    SawEof = true;
    return Status::Eof;
  }
  return errno == EINTR ? Status::Interrupted : Status::Error;
}

FrameReader::Status FrameReader::next(std::string &Out) {
  for (;;) {
    // Finish dropping an oversized body before anything else, so the
    // reader stays frame-aligned after reporting TooLarge.
    if (DiscardLeft != 0) {
      size_t Take = std::min(DiscardLeft, Buf.size());
      Buf.erase(0, Take);
      DiscardLeft -= Take;
      if (DiscardLeft == 0)
        return Status::TooLarge;
      if (SawEof)
        return Status::Eof;
      Status S = fill();
      if (S != Status::Message)
        return S;
      continue;
    }

    if (!HaveHeader) {
      // The spec mandates CRLF; a bare-LF separator is accepted too so
      // hand-rolled test clients (printf without \r) still frame.
      size_t Crlf = Buf.find("\r\n\r\n");
      size_t Lf = Buf.find("\n\n");
      size_t HdrEnd = std::min(Crlf, Lf);
      if (HdrEnd == std::string::npos) {
        if (Buf.size() > kMaxHeaderBytes)
          return Status::Error;
        if (SawEof)
          return Status::Eof; // partial trailing frame: dropped
        Status S = fill();
        if (S != Status::Message)
          return S;
        continue;
      }
      size_t SepLen = HdrEnd == Crlf ? 4 : 2;
      if (!parseContentLength(
              std::string_view(Buf).substr(0, HdrEnd + SepLen / 2), &BodyLen))
        return Status::Error;
      Buf.erase(0, HdrEnd + SepLen);
      if (BodyLen > MaxBytes) {
        DiscardLeft = BodyLen;
        continue;
      }
      HaveHeader = true;
    }

    if (Buf.size() >= BodyLen) {
      Out.assign(Buf, 0, BodyLen);
      Buf.erase(0, BodyLen);
      HaveHeader = false;
      return Status::Message;
    }
    if (SawEof)
      return Status::Eof;
    Status S = fill();
    if (S != Status::Message)
      return S;
  }
}

std::string typilus::lsp::frameMessage(std::string_view Body) {
  std::string Out = "Content-Length: " + std::to_string(Body.size()) + "\r\n\r\n";
  Out.append(Body);
  return Out;
}
