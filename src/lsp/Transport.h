//===- lsp/Transport.h - LSP base-protocol framing ----------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LSP base protocol: messages are `Content-Length: N\r\n\r\n<body>`
/// frames over a byte stream (stdio or a socket). FrameReader is the
/// counterpart of support/Socket.h's LineReader for this framing — same
/// buffered-read structure, same wake-fd preemption, same hard size cap
/// with discard-and-continue recovery — so the daemon idioms (SIGTERM
/// self-pipe, drain on EOF) carry over to the LSP front-end unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_LSP_TRANSPORT_H
#define TYPILUS_LSP_TRANSPORT_H

#include <cstddef>
#include <string>
#include <string_view>

namespace typilus {
namespace lsp {

/// Default cap on one framed message body (editors send whole files on
/// didOpen/didChange, so this is generous where the NDJSON protocol's
/// per-line cap is tight).
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

/// Hard cap on the header section of one frame; a peer that never sends
/// the blank separator line cannot grow the buffer unboundedly.
inline constexpr size_t kMaxHeaderBytes = 16u << 10;

/// Buffered reader of Content-Length framed messages.
class FrameReader {
public:
  enum class Status {
    Message,     ///< \p Out holds one complete message body.
    Eof,         ///< Peer closed; a partial trailing frame is dropped.
    TooLarge,    ///< Body exceeded the cap and was discarded; the reader
                 ///< stays in sync for subsequent frames.
    Error,       ///< Read error or an unrecoverable framing violation
                 ///< (missing/garbled Content-Length, oversized headers).
    Interrupted, ///< read() hit EINTR or \p WakeFd became readable;
                 ///< calling next() again simply continues.
  };

  /// \p WakeFd (optional): a second descriptor polled alongside \p Fd;
  /// when it becomes readable, next() returns Interrupted instead of
  /// blocking in read() — the daemon passes its shutdown self-pipe here
  /// so SIGTERM preempts a blocked read without races.
  FrameReader(int Fd, size_t MaxBodyBytes = kDefaultMaxFrameBytes,
              int WakeFd = -1)
      : Fd(Fd), MaxBytes(MaxBodyBytes), WakeFd(WakeFd) {}

  /// Blocks until one of the Status cases resolves.
  Status next(std::string &Out);

private:
  /// Reads one chunk into Buf. Returns Message when bytes arrived (the
  /// caller rescans), or Eof/Error/Interrupted.
  Status fill();

  int Fd;
  size_t MaxBytes;
  int WakeFd;
  std::string Buf;           ///< Bytes read but not yet consumed.
  size_t BodyLen = 0;        ///< Parsed Content-Length of the frame in
                             ///< flight (valid when HaveHeader).
  bool HaveHeader = false;
  size_t DiscardLeft = 0;    ///< Oversized-body bytes still to drop.
  bool SawEof = false;
};

/// Wraps \p Body in the base-protocol framing:
/// "Content-Length: N\r\n\r\n" + body.
std::string frameMessage(std::string_view Body);

} // namespace lsp
} // namespace typilus

#endif // TYPILUS_LSP_TRANSPORT_H
