//===- checker/Checker.cpp - Optional type checker ------------------------------===//

#include "checker/Checker.h"

#include "support/Str.h"

#include <cassert>
#include <cctype>
#include <map>

using namespace typilus;

namespace {

/// Per-file checking pass.
class CheckImpl {
public:
  CheckImpl(TypeUniverse &U, const TypeHierarchy &H,
            const CheckerOptions &Opts, const ParsedFile &PF,
            const SymbolTable &ST)
      : U(U), H(H), Opts(Opts), PF(PF), ST(ST) {}

  std::vector<TypeError> run();

private:
  void error(const AstNode *N, const char *Code, std::string Msg) {
    int Line = 0;
    if (N && N->FirstTok >= 0 &&
        static_cast<size_t>(N->FirstTok) < PF.Tokens.size())
      Line = PF.Tokens[static_cast<size_t>(N->FirstTok)].Line;
    Errors.push_back(TypeError{Line, Code, std::move(Msg)});
  }

  TypeRef any() const { return U.any(); }

  /// Annotation of a parameter, read through its symbol so experiment
  /// overrides on the symbol table take effect.
  const std::string &paramAnnotation(const ParamDecl *P) const {
    return P->Sym ? P->Sym->AnnotationText : P->AnnotationText;
  }
  /// Return annotation of a function, via its return symbol.
  const std::string &returnAnnotation(const FunctionDef *F) const {
    return F->RetSym ? F->RetSym->AnnotationText : F->ReturnsText;
  }


  /// Declared (or inferred, in pytype mode) type of a symbol; Any when
  /// unknown.
  TypeRef typeOfSymbol(const Symbol *S) {
    if (!S)
      return any();
    auto It = Inferred.find(S);
    if (It != Inferred.end())
      return It->second;
    if (!S->AnnotationText.empty())
      if (TypeRef T = U.parse(S->AnnotationText))
        return T;
    return any();
  }

  /// True when a value of type \p Src may flow into a slot of \p Dst.
  bool compatible(TypeRef Src, TypeRef Dst) const {
    if (!Src || !Dst || Src == U.any() || Dst == U.any())
      return true;
    return H.isSubtype(Src, Dst);
  }

  bool isNumeric(TypeRef T) const {
    return T && H.isSubtype(T, U.parse("complex"));
  }
  bool isIterable(TypeRef T) const {
    if (!T || T == any())
      return true;
    if (T->name() == "Optional" || T->name() == "Union")
      return false; // must narrow before iterating
    return H.isSubtype(T, U.parse("Iterable")) || T->name() == "str" ||
           T->name() == "bytes" || T->name() == "range";
  }
  /// Element type when iterating a value of type \p T.
  TypeRef elementOf(TypeRef T) const {
    if (!T || T->args().empty()) {
      if (T && (T->name() == "str" || T->name() == "bytes"))
        return U.parse(T->name() == "str" ? "str" : "int");
      return any();
    }
    // Dict iterates keys; sequences iterate their first parameter.
    return T->args()[0];
  }

  TypeRef infer(const Expr *E);
  TypeRef inferCall(const CallExpr *C);
  TypeRef inferBinary(const BinaryExpr *B);
  TypeRef inferMethodCall(TypeRef Recv, const std::string &Method,
                          const CallExpr *C);

  void checkStmts(const std::vector<Stmt *> &Stmts);
  void checkStmt(const Stmt *S);
  void checkAssignTo(const Expr *Target, TypeRef ValueTy, const AstNode *Site);

  /// Collects local function/class signatures so calls can be checked.
  void collectDecls(const std::vector<Stmt *> &Stmts);

  TypeUniverse &U;
  const TypeHierarchy &H;
  const CheckerOptions &Opts;
  const ParsedFile &PF;
  const SymbolTable &ST;
  std::vector<TypeError> Errors;

  /// pytype-mode inferred types for unannotated symbols.
  std::map<const Symbol *, TypeRef> Inferred;
  /// Locally defined functions (incl. methods, keyed by name only — the
  /// subset has unique function names per file in practice).
  std::map<std::string, const FunctionDef *> Functions;
  /// Locally defined classes.
  std::map<std::string, const ClassDef *> Classes;
  const FunctionDef *CurFunction = nullptr;
};

} // namespace

void CheckImpl::collectDecls(const std::vector<Stmt *> &Stmts) {
  for (const Stmt *S : Stmts) {
    if (const auto *F = dyn_cast<FunctionDef>(S)) {
      Functions.emplace(F->Name, F);
      collectDecls(F->Body);
    } else if (const auto *C = dyn_cast<ClassDef>(S)) {
      Classes.emplace(C->Name, C);
      collectDecls(C->Body);
    }
  }
}

TypeRef CheckImpl::inferMethodCall(TypeRef Recv, const std::string &Method,
                                   const CallExpr *C) {
  if (!Recv || Recv == any())
    return any();
  const std::string &RN = Recv->name();
  // Builtin method table (a small slice of typeshed).
  if (RN == "str") {
    if (Method == "strip" || Method == "lower" || Method == "upper" ||
        Method == "title" || Method == "replace")
      return U.parse("str");
    if (Method == "split" || Method == "splitlines")
      return U.parse("List[str]");
    if (Method == "startswith" || Method == "endswith" ||
        Method == "isdigit")
      return U.parse("bool");
    if (Method == "find" || Method == "count")
      return U.parse("int");
    if (Method == "encode")
      return U.parse("bytes");
    return any();
  }
  if (RN == "bytes") {
    if (Method == "decode")
      return U.parse("str");
    return any();
  }
  if (RN == "List" || RN == "list") {
    TypeRef Elem = Recv->args().empty() ? any() : Recv->args()[0];
    if (Method == "append" || Method == "insert" || Method == "extend") {
      // list.append(x): x must fit the element type.
      if (Method == "append" && C->Args.size() == 1) {
        TypeRef ArgT = infer(C->Args[0]);
        if (!compatible(ArgT, Elem))
          error(C, "arg-type",
                strformat("argument to append has type \"%s\"; expected "
                          "\"%s\"",
                          ArgT->str().c_str(), Elem->str().c_str()));
      }
      return U.none();
    }
    if (Method == "pop")
      return Elem;
    if (Method == "index" || Method == "count")
      return U.parse("int");
    return any();
  }
  if (RN == "Dict" || RN == "dict") {
    TypeRef Val = Recv->args().size() == 2 ? Recv->args()[1] : any();
    if (Method == "get")
      return U.get("Optional", {Val});
    if (Method == "keys")
      return U.get("List", {Recv->args().empty() ? any() : Recv->args()[0]});
    if (Method == "values")
      return U.get("List", {Val});
    if (Method == "setdefault")
      return Val;
    return any();
  }
  if (RN == "Set" || RN == "set") {
    if (Method == "add" || Method == "discard")
      return U.none();
    return any();
  }
  // Locally defined class: use the method's return annotation.
  auto ClsIt = Classes.find(RN);
  if (ClsIt != Classes.end()) {
    for (const Stmt *S : ClsIt->second->Body)
      if (const auto *M = dyn_cast<FunctionDef>(S))
        if (M->Name == Method) {
          if (!returnAnnotation(M).empty())
            if (TypeRef T = U.parse(returnAnnotation(M)))
              return T;
          return any();
        }
    error(C, "attr-defined",
          strformat("\"%s\" has no method \"%s\"", RN.c_str(),
                    Method.c_str()));
    return any();
  }
  return any();
}

TypeRef CheckImpl::inferCall(const CallExpr *C) {
  // Method call?
  if (const auto *A = dyn_cast<AttributeExpr>(C->Callee)) {
    TypeRef Recv = infer(A->Value);
    return inferMethodCall(Recv, A->Attr, C);
  }
  const auto *N = dyn_cast<NameExpr>(C->Callee);
  if (!N)
    return any();
  const std::string &Name = N->Ident;

  // Builtin constructors / functions.
  static const std::map<std::string, std::string> Builtins = {
      {"len", "int"},        {"abs", "int"},     {"str", "str"},
      {"int", "int"},        {"float", "float"}, {"bool", "bool"},
      {"bytes", "bytes"},    {"list", "List"},   {"dict", "Dict"},
      {"set", "Set"},        {"tuple", "Tuple"}, {"sorted", "List"},
      {"range", "range"},    {"iter", "Iterator"},
      {"print", "None"},     {"min", "int"},     {"max", "int"},
      {"sum", "int"},        {"repr", "str"},    {"hash", "int"},
      {"id", "int"},         {"input", "str"},
  };
  auto BIt = Builtins.find(Name);
  if (BIt != Builtins.end())
    return U.parse(BIt->second);

  // Locally defined class constructor: check __init__ arguments.
  auto ClsIt = Classes.find(Name);
  if (ClsIt != Classes.end()) {
    for (const Stmt *S : ClsIt->second->Body)
      if (const auto *M = dyn_cast<FunctionDef>(S))
        if (M->Name == "__init__") {
          // Positional args map onto params[1:] (skipping self).
          size_t NumParams = M->Params.size();
          for (size_t I = 0; I != C->Args.size() && I + 1 < NumParams; ++I) {
            const ParamDecl *P = M->Params[I + 1];
            if (paramAnnotation(P).empty())
              continue;
            TypeRef Want = U.parse(paramAnnotation(P));
            TypeRef Got = infer(C->Args[I]);
            if (Want && !compatible(Got, Want))
              error(C, "arg-type",
                    strformat("argument %zu to %s() has type \"%s\"; "
                              "expected \"%s\"",
                              I + 1, Name.c_str(), Got->str().c_str(),
                              Want->str().c_str()));
          }
          break;
        }
    return U.parse(Name);
  }
  // Heuristic: imported PascalCase names are constructors of that type
  // (the paper's graphs treat calls by name too).
  if (!Name.empty() && std::isupper(static_cast<unsigned char>(Name[0])) &&
      N->Sym && N->Sym->Kind == SymbolKind::External)
    return U.parse(Name);

  // Locally defined function: check arguments, return its annotation.
  auto FIt = Functions.find(Name);
  if (FIt != Functions.end()) {
    const FunctionDef *F = FIt->second;
    size_t FirstParam = F->IsMethod ? 1 : 0;
    for (size_t I = 0; I != C->Args.size(); ++I) {
      if (FirstParam + I >= F->Params.size())
        break;
      const ParamDecl *P = F->Params[FirstParam + I];
      if (paramAnnotation(P).empty())
        continue;
      TypeRef Want = U.parse(paramAnnotation(P));
      TypeRef Got = infer(C->Args[I]);
      if (Want && !compatible(Got, Want))
        error(C, "arg-type",
              strformat("argument %zu to %s() has type \"%s\"; expected "
                        "\"%s\"",
                        I + 1, Name.c_str(), Got->str().c_str(),
                        Want->str().c_str()));
    }
    // Keyword arguments by name.
    for (size_t I = 0; I != C->KwNames.size(); ++I) {
      for (const ParamDecl *P : F->Params) {
        if (P->Name != C->KwNames[I] || paramAnnotation(P).empty())
          continue;
        TypeRef Want = U.parse(paramAnnotation(P));
        TypeRef Got = infer(C->KwValues[I]);
        if (Want && !compatible(Got, Want))
          error(C, "arg-type",
                strformat("argument \"%s\" to %s() has type \"%s\"; "
                          "expected \"%s\"",
                          P->Name.c_str(), Name.c_str(), Got->str().c_str(),
                          Want->str().c_str()));
      }
    }
    if (!F->ReturnsText.empty())
      if (TypeRef T = U.parse(F->ReturnsText))
        return T;
    return any();
  }
  return any();
}

TypeRef CheckImpl::inferBinary(const BinaryExpr *B) {
  switch (B->Op) {
  case BinOpKind::Eq:
  case BinOpKind::NotEq:
  case BinOpKind::Lt:
  case BinOpKind::LtE:
  case BinOpKind::Gt:
  case BinOpKind::GtE:
  case BinOpKind::In:
  case BinOpKind::NotIn:
  case BinOpKind::Is:
  case BinOpKind::IsNot:
    infer(B->Lhs);
    infer(B->Rhs);
    return U.parse("bool");
  case BinOpKind::And:
  case BinOpKind::Or: {
    TypeRef L = infer(B->Lhs), R = infer(B->Rhs);
    return L == R ? L : any();
  }
  default:
    break;
  }
  TypeRef L = infer(B->Lhs), R = infer(B->Rhs);
  if (L == any() || R == any())
    return any();
  // Numeric tower.
  if (isNumeric(L) && isNumeric(R)) {
    if (B->Op == BinOpKind::Div)
      return U.parse("float");
    return H.isSubtype(L, R) ? R : L;
  }
  // Sequence concatenation / repetition.
  if (B->Op == BinOpKind::Add) {
    if (L->name() == R->name() &&
        (L->name() == "str" || L->name() == "bytes" || L->name() == "List" ||
         L->name() == "Tuple"))
      return H.isSubtype(L, R) ? R : L;
    error(B, "operator",
          strformat("unsupported operand types for +: \"%s\" and \"%s\"",
                    L->str().c_str(), R->str().c_str()));
    return any();
  }
  if (B->Op == BinOpKind::Mult &&
      ((L->name() == "str" && R->name() == "int") ||
       (L->name() == "List" && R->name() == "int")))
    return L;
  if (B->Op == BinOpKind::Mod && L->name() == "str")
    return L; // printf-style formatting
  if (B->Op == BinOpKind::BitAnd || B->Op == BinOpKind::BitOr) {
    if (L->name() == "Set" && R->name() == "Set")
      return L;
    if (L->name() == "int" && R->name() == "int")
      return L;
  }
  error(B, "operator",
        strformat("unsupported operand types for %s: \"%s\" and \"%s\"",
                  binOpSpelling(B->Op), L->str().c_str(), R->str().c_str()));
  return any();
}

TypeRef CheckImpl::infer(const Expr *E) {
  if (!E)
    return any();
  switch (E->kind()) {
  case AstNode::NodeKind::IntLit:
    return U.parse("int");
  case AstNode::NodeKind::FloatLit:
    return U.parse("float");
  case AstNode::NodeKind::StringLit:
    return U.parse(cast<StringLit>(E)->IsBytes ? "bytes" : "str");
  case AstNode::NodeKind::BoolLit:
    return U.parse("bool");
  case AstNode::NodeKind::NoneLit:
    return U.none();
  case AstNode::NodeKind::EllipsisLit:
    return any();
  case AstNode::NodeKind::NameExpr:
    return typeOfSymbol(cast<NameExpr>(E)->Sym);
  case AstNode::NodeKind::UnaryExpr: {
    const auto *Un = cast<UnaryExpr>(E);
    TypeRef T = infer(Un->Operand);
    return Un->Op == UnaryOpKind::Not ? U.parse("bool") : T;
  }
  case AstNode::NodeKind::BinaryExpr:
    return inferBinary(cast<BinaryExpr>(E));
  case AstNode::NodeKind::CallExpr:
    return inferCall(cast<CallExpr>(E));
  case AstNode::NodeKind::AttributeExpr: {
    const auto *A = cast<AttributeExpr>(E);
    if (A->Sym)
      return typeOfSymbol(A->Sym);
    infer(A->Value);
    return any();
  }
  case AstNode::NodeKind::SubscriptExpr: {
    const auto *Sub = cast<SubscriptExpr>(E);
    TypeRef Recv = infer(Sub->Value);
    infer(Sub->Index);
    if (!Recv || Recv == any())
      return any();
    if (Recv->name() == "List" || Recv->name() == "Sequence" ||
        Recv->name() == "list")
      return Recv->args().empty() ? any() : Recv->args()[0];
    if (Recv->name() == "Dict" || Recv->name() == "dict")
      return Recv->args().size() == 2 ? Recv->args()[1] : any();
    if (Recv->name() == "str")
      return Recv;
    if (Recv->name() == "bytes")
      return U.parse("int");
    return any();
  }
  case AstNode::NodeKind::ListExpr: {
    const auto *L = cast<ListExpr>(E);
    TypeRef Elem = nullptr;
    for (const Expr *El : L->Elts) {
      TypeRef T = infer(El);
      Elem = !Elem ? T : (Elem == T ? Elem : any());
    }
    return U.get("List", {Elem ? Elem : any()});
  }
  case AstNode::NodeKind::SetExpr: {
    const auto *S = cast<SetExpr>(E);
    TypeRef Elem = nullptr;
    for (const Expr *El : S->Elts) {
      TypeRef T = infer(El);
      Elem = !Elem ? T : (Elem == T ? Elem : any());
    }
    return U.get("Set", {Elem ? Elem : any()});
  }
  case AstNode::NodeKind::DictExpr: {
    const auto *D = cast<DictExpr>(E);
    TypeRef K = nullptr, V = nullptr;
    for (size_t I = 0; I != D->Keys.size(); ++I) {
      TypeRef KT = infer(D->Keys[I]), VT = infer(D->Values[I]);
      K = !K ? KT : (K == KT ? K : any());
      V = !V ? VT : (V == VT ? V : any());
    }
    return U.get("Dict", {K ? K : any(), V ? V : any()});
  }
  case AstNode::NodeKind::TupleExpr: {
    const auto *T = cast<TupleExpr>(E);
    std::vector<TypeRef> Elts;
    for (const Expr *El : T->Elts)
      Elts.push_back(infer(El));
    if (Elts.empty())
      return U.parse("Tuple");
    return U.get("Tuple", std::move(Elts));
  }
  case AstNode::NodeKind::YieldExpr:
    infer(cast<YieldExpr>(E)->Value);
    return any();
  default:
    return any();
  }
}

void CheckImpl::checkAssignTo(const Expr *Target, TypeRef ValueTy,
                              const AstNode *Site) {
  if (const auto *N = dyn_cast<NameExpr>(Target)) {
    const Symbol *S = N->Sym;
    if (!S)
      return;
    TypeRef Declared = nullptr;
    if (!S->AnnotationText.empty())
      Declared = U.parse(S->AnnotationText);
    if (!Declared && Opts.InferLocals) {
      auto It = Inferred.find(S);
      if (It == Inferred.end()) {
        if (ValueTy && ValueTy != any() && ValueTy != U.none())
          Inferred.emplace(S, ValueTy);
        return;
      }
      Declared = It->second;
    }
    if (Declared && !compatible(ValueTy, Declared))
      error(Site, "assignment",
            strformat("incompatible types in assignment (expression has "
                      "type \"%s\", variable \"%s\" has type \"%s\")",
                      ValueTy->str().c_str(), S->Name.c_str(),
                      Declared->str().c_str()));
    return;
  }
  if (const auto *A = dyn_cast<AttributeExpr>(Target)) {
    if (A->Sym && !A->Sym->AnnotationText.empty()) {
      TypeRef Declared = U.parse(A->Sym->AnnotationText);
      if (Declared && !compatible(ValueTy, Declared))
        error(Site, "assignment",
              strformat("incompatible types in attribute assignment "
                        "(expression has type \"%s\", \"%s\" has type "
                        "\"%s\")",
                        ValueTy->str().c_str(), A->Attr.c_str(),
                        Declared->str().c_str()));
    }
    return;
  }
  if (const auto *T = dyn_cast<TupleExpr>(Target)) {
    for (size_t I = 0; I != T->Elts.size(); ++I) {
      TypeRef Elt = any();
      if (ValueTy && ValueTy->name() == "Tuple" &&
          I < ValueTy->args().size())
        Elt = ValueTy->args()[I];
      checkAssignTo(T->Elts[I], Elt, Site);
    }
  }
  // Subscript stores are unchecked (local reasoning only).
}

void CheckImpl::checkStmt(const Stmt *S) {
  switch (S->kind()) {
  case AstNode::NodeKind::AssignStmt: {
    const auto *A = cast<AssignStmt>(S);
    if (!A->Value)
      return; // bare declaration `x: T`
    TypeRef ValueTy = infer(A->Value);
    if (A->IsAug) {
      // x += e behaves like x = x + e.
      TypeRef TargetTy = infer(A->Target);
      if (TargetTy != any() && ValueTy != any() &&
          !(isNumeric(TargetTy) && isNumeric(ValueTy)) &&
          !(TargetTy->name() == ValueTy->name()) &&
          !(TargetTy->name() == "List"))
        error(S, "operator",
              strformat("unsupported operand types for %s=: \"%s\" and "
                        "\"%s\"",
                        binOpSpelling(A->AugOp), TargetTy->str().c_str(),
                        ValueTy->str().c_str()));
      return;
    }
    checkAssignTo(A->Target, ValueTy, S);
    return;
  }
  case AstNode::NodeKind::ExprStmt:
    infer(cast<ExprStmt>(S)->E);
    return;
  case AstNode::NodeKind::ReturnStmt: {
    const auto *R = cast<ReturnStmt>(S);
    TypeRef Got = R->Value ? infer(R->Value) : U.none();
    if (CurFunction && !returnAnnotation(CurFunction).empty()) {
      TypeRef Want = U.parse(returnAnnotation(CurFunction));
      if (Want && !compatible(Got, Want))
        error(S, "return-value",
              strformat("incompatible return value type (got \"%s\", "
                        "expected \"%s\")",
                        Got->str().c_str(), Want->str().c_str()));
    }
    return;
  }
  case AstNode::NodeKind::IfStmt: {
    const auto *I = cast<IfStmt>(S);
    infer(I->Cond);
    checkStmts(I->Then);
    checkStmts(I->Else);
    return;
  }
  case AstNode::NodeKind::WhileStmt: {
    const auto *W = cast<WhileStmt>(S);
    infer(W->Cond);
    checkStmts(W->Body);
    return;
  }
  case AstNode::NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(S);
    TypeRef IterTy = infer(F->Iter);
    if (!isIterable(IterTy))
      error(S, "not-iterable",
            strformat("\"%s\" object is not iterable",
                      IterTy->str().c_str()));
    checkAssignTo(F->Target, elementOf(IterTy), S);
    checkStmts(F->Body);
    return;
  }
  case AstNode::NodeKind::FunctionDef: {
    const auto *F = cast<FunctionDef>(S);
    const FunctionDef *Saved = CurFunction;
    CurFunction = F;
    for (const ParamDecl *P : F->Params)
      if (P->Default && !paramAnnotation(P).empty()) {
        TypeRef Want = U.parse(paramAnnotation(P));
        TypeRef Got = infer(P->Default);
        if (Want && !compatible(Got, Want))
          error(P, "assignment",
                strformat("incompatible default for parameter \"%s\" (got "
                          "\"%s\", expected \"%s\")",
                          P->Name.c_str(), Got->str().c_str(),
                          Want->str().c_str()));
      }
    checkStmts(F->Body);
    CurFunction = Saved;
    return;
  }
  case AstNode::NodeKind::ClassDef:
    checkStmts(cast<ClassDef>(S)->Body);
    return;
  case AstNode::NodeKind::RaiseStmt:
    if (const Expr *E = cast<RaiseStmt>(S)->E)
      infer(E);
    return;
  case AstNode::NodeKind::AssertStmt: {
    const auto *A = cast<AssertStmt>(S);
    infer(A->Cond);
    if (A->Msg)
      infer(A->Msg);
    return;
  }
  case AstNode::NodeKind::DelStmt:
    infer(cast<DelStmt>(S)->E);
    return;
  default:
    return;
  }
}

void CheckImpl::checkStmts(const std::vector<Stmt *> &Stmts) {
  for (const Stmt *S : Stmts)
    checkStmt(S);
}

std::vector<TypeError> CheckImpl::run() {
  collectDecls(PF.Mod->Body);
  checkStmts(PF.Mod->Body);
  return std::move(Errors);
}

std::vector<TypeError> Checker::check(const ParsedFile &PF,
                                      const SymbolTable &ST) {
  assert(PF.Mod && "checker needs a parsed module");
  return CheckImpl(U, H, Opts, PF, ST).run();
}
