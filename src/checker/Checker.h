//===- checker/Checker.h - Optional type checker --------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A local optional type checker over the pyfront AST, standing in for
/// mypy and pytype in the Sec. 6.3 experiment ("correctness modulo type
/// checker"). Two modes mirror the tools' philosophies:
///   - strict (mypy-like): trusts explicit annotations only; unannotated
///     symbols are Any, so fewer inconsistencies are detectable;
///   - inferring (pytype-like): additionally infers the types of
///     unannotated locals from their initialisers, catching more errors
///     (the paper: pytype "employs more powerful type inference").
/// Like the real tools, it reasons locally and reports type-related error
/// classes with mypy-style codes.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_CHECKER_CHECKER_H
#define TYPILUS_CHECKER_CHECKER_H

#include "pyfront/SymbolTable.h"
#include "typesys/Hierarchy.h"

#include <string>
#include <vector>

namespace typilus {

/// Checker configuration.
struct CheckerOptions {
  /// pytype-like local inference of unannotated symbols.
  bool InferLocals = false;
};

/// One reported type error.
struct TypeError {
  int Line = 0;
  std::string Code; ///< mypy-style class, e.g. "assignment", "arg-type".
  std::string Message;
};

/// The optional type checker. Stateless across files; cheap to construct.
class Checker {
public:
  Checker(TypeUniverse &U, const TypeHierarchy &H, CheckerOptions Opts = {})
      : U(U), H(H), Opts(Opts) {}

  /// Checks one parsed file with a built symbol table. Annotations are
  /// read from the symbol table (so callers may override them to test a
  /// prediction, as the Table 5 protocol does).
  std::vector<TypeError> check(const ParsedFile &PF, const SymbolTable &ST);

private:
  TypeUniverse &U;
  const TypeHierarchy &H;
  CheckerOptions Opts;
};

} // namespace typilus

#endif // TYPILUS_CHECKER_CHECKER_H
