//===- serve/Protocol.cpp - The serving wire protocol --------------------------===//

#include "serve/Protocol.h"

#include "pyfront/SymbolTable.h"
#include "serve/Dispatch.h"
#include "support/Json.h"
#include "support/Str.h"

using namespace typilus;
using namespace typilus::serve;

namespace {

/// The one method-name table: methodName, methodFromName and
/// parseRequest all read it.
constexpr std::pair<Method, const char *> kMethodNames[] = {
    {Method::Predict, "predict"},   {Method::Ping, "ping"},
    {Method::Stats, "stats"},       {Method::Reload, "reload"},
    {Method::Shutdown, "shutdown"},
};

} // namespace

const char *serve::methodName(Method M) {
  for (const auto &[Meth, Name] : kMethodNames)
    if (Meth == M)
      return Name;
  return "ping";
}

bool serve::methodFromName(std::string_view Name, Method *Out) {
  for (const auto &[Meth, MName] : kMethodNames)
    if (Name == MName) {
      *Out = Meth;
      return true;
    }
  return false;
}

bool serve::parseRequest(std::string_view Line, Request &Out,
                         std::string *Err) {
  Out = Request();
  json::Value V;
  if (!json::parse(Line, V, Err))
    return false;
  if (!V.isObject()) {
    if (Err)
      *Err = "request must be a JSON object";
    return false;
  }
  // Recover the id first so even a bad method/field error correlates.
  const json::Value *Id = V.find("id");
  if (!Id || !Id->isNumber()) {
    if (Err)
      *Err = "request needs a numeric \"id\"";
    return false;
  }
  Out.Id = Id->asInt();

  std::string M = V.getString("method", "");
  if (!methodFromName(M, &Out.M)) {
    if (Err)
      *Err = M.empty() ? "request needs a \"method\"" : unknownMethodError(M);
    return false;
  }

  if (Out.M == Method::Predict) {
    const json::Value *Src = V.find("source");
    if (!Src || !Src->isString()) {
      if (Err)
        *Err = "predict needs a string \"source\"";
      return false;
    }
    Out.Source = Src->asString();
    Out.Path = V.getString("path", "<request>");
    Out.Limit = static_cast<int>(V.getInt("limit", -1));
  }
  if (Out.M == Method::Stats)
    Out.Reset = V.getBool("reset", false);
  return true;
}

//===----------------------------------------------------------------------===//
// Response serialization
//===----------------------------------------------------------------------===//

namespace {

std::string head(int64_t Id, bool Ok) {
  std::string R = "{\"id\":" + std::to_string(Id);
  R += Ok ? ",\"ok\":true" : ",\"ok\":false";
  return R;
}

} // namespace

std::string serve::errorResponse(int64_t Id, std::string_view Error) {
  std::string R = head(Id, false);
  R += ",\"error\":";
  json::appendQuoted(R, Error);
  R += "}\n";
  return R;
}

std::string serve::pongResponse(int64_t Id) {
  return head(Id, true) +
         ",\"pong\":true,\"protocol\":" + std::to_string(kProtocolVersion) +
         "}\n";
}

std::string serve::statsResponse(int64_t Id, const ServerStats &S) {
  // Means are integer µs (totals / requests, rounded down): the wire
  // format stays stable however the counters are accumulated.
  uint64_t N = S.Requests ? S.Requests : 1;
  return head(Id, true) + ",\"requests\":" + std::to_string(S.Requests) +
         ",\"batches\":" + std::to_string(S.Batches) +
         ",\"max_coalesced\":" + std::to_string(S.MaxCoalesced) +
         ",\"collapsed\":" + std::to_string(S.Collapsed) +
         ",\"queue_wait_mean_us\":" + std::to_string(S.QueueWaitTotalUs / N) +
         ",\"queue_wait_max_us\":" + std::to_string(S.QueueWaitMaxUs) +
         ",\"predict_mean_us\":" + std::to_string(S.PredictTotalUs / N) +
         ",\"predict_max_us\":" + std::to_string(S.PredictMaxUs) +
         ",\"embed_mean_us\":" + std::to_string(S.EmbedTotalUs / N) +
         ",\"knn_mean_us\":" + std::to_string(S.KnnTotalUs / N) +
         ",\"cache_hits\":" + std::to_string(S.CacheHits) +
         ",\"cache_misses\":" + std::to_string(S.CacheMisses) +
         ",\"cache_evictions\":" + std::to_string(S.CacheEvictions) +
         ",\"overloaded\":" + std::to_string(S.Overloaded) +
         ",\"reloads\":" + std::to_string(S.Reloads) + "}\n";
}

std::string serve::shutdownResponse(int64_t Id) {
  return head(Id, true) + ",\"shutting_down\":true}\n";
}

std::string serve::reloadResponse(int64_t Id) {
  return head(Id, true) + ",\"reloaded\":true}\n";
}

std::string serve::overloadedResponse(int64_t Id, int MaxQueue) {
  return head(Id, false) +
         ",\"overloaded\":true,\"error\":\"overloaded: predict queue is at "
         "--max-queue (" +
         std::to_string(MaxQueue) + ")\"}\n";
}

std::string serve::predictResponse(int64_t Id, std::string_view Path,
                                   const std::vector<PredictionResult> &Preds,
                                   int Limit) {
  std::string R = head(Id, true);
  R += ",\"path\":";
  json::appendQuoted(R, Path);
  // The digest spans every candidate of every symbol regardless of
  // Limit, mirroring `typilus_cli predict` (whose --limit also only
  // truncates what is printed).
  R += ",\"digest\":";
  json::appendQuoted(R, strformat("%016llx", static_cast<unsigned long long>(
                                                 predictionDigest(Preds))));
  R += ",\"predictions\":[";
  bool FirstSym = true;
  for (const PredictionResult &P : Preds) {
    if (!FirstSym)
      R += ",";
    FirstSym = false;
    R += "{\"symbol\":";
    json::appendQuoted(R, P.SymbolName);
    R += ",\"kind\":";
    json::appendQuoted(R, symbolKindName(P.Kind));
    R += ",\"target\":" + std::to_string(P.TargetIdx);
    R += ",\"node\":" + std::to_string(P.NodeIdx);
    R += ",\"candidates\":[";
    size_t Keep = Limit >= 0
                      ? std::min(P.Candidates.size(), static_cast<size_t>(Limit))
                      : P.Candidates.size();
    for (size_t C = 0; C != Keep; ++C) {
      if (C)
        R += ",";
      R += "{\"type\":";
      json::appendQuoted(R, P.Candidates[C].Type->str());
      R += ",\"prob\":";
      json::appendNumber(R, P.Candidates[C].Prob);
      R += "}";
    }
    R += "]}";
  }
  R += "]}\n";
  return R;
}
