//===- serve/Server.cpp - Batched request pipeline -----------------------------===//

#include "serve/Server.h"

#include "corpus/Dataset.h"
#include "support/Socket.h"

#include <exception>
#include <map>
#include <string_view>
#include <utility>

using namespace typilus;
using namespace typilus::serve;

Server::Server(Predictor &P, TypeUniverse &U, ServerOptions O)
    : Pred(P), U(U), Opts(std::move(O)) {
  if (Opts.MaxBatch < 1)
    Opts.MaxBatch = 1;
  Dispatcher = std::thread([this] { dispatchLoop(); });
}

Server::~Server() { stop(); }

bool Server::submit(Request R, Respond Fn) {
  {
    std::lock_guard<std::mutex> L(Mu);
    if (Stopping)
      return false;
    Queue.push_back(Pending{std::move(R), std::move(Fn),
                            std::chrono::steady_clock::now()});
  }
  WakeCV.notify_one();
  return true;
}

void Server::stop() {
  // Exactly one caller claims the dispatcher thread; racing callers
  // return once Stopping is set (the claimant does the drain+join).
  std::thread ToJoin;
  {
    std::lock_guard<std::mutex> L(Mu);
    Stopping = true;
    if (Dispatcher.joinable())
      ToJoin = std::move(Dispatcher);
  }
  WakeCV.notify_all();
  if (ToJoin.joinable())
    ToJoin.join();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return Stats;
}

void Server::dispatchLoop() {
  for (;;) {
    std::vector<Pending> Popped;
    {
      std::unique_lock<std::mutex> L(Mu);
      WakeCV.wait(L, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty() && Stopping)
        return; // fully drained
      size_t Take =
          std::min(Queue.size(), static_cast<size_t>(Opts.MaxBatch));
      Popped.reserve(Take);
      for (size_t I = 0; I != Take; ++I) {
        Popped.push_back(std::move(Queue.front()));
        Queue.pop_front();
      }
    }

    // Preserve arrival order: coalesce runs of consecutive predict
    // requests, answer control requests at their position in between.
    std::vector<Pending> Run;
    for (Pending &P : Popped) {
      if (P.R.M == Method::Predict) {
        Run.push_back(std::move(P));
        continue;
      }
      if (!Run.empty()) {
        servePredicts(Run);
        Run.clear();
      }
      serveOne(P);
    }
    if (!Run.empty())
      servePredicts(Run);
  }
}

void Server::serveOne(Pending &P) {
  switch (P.R.M) {
  case Method::Ping:
    P.Fn(pongResponse(P.R.Id));
    break;
  case Method::Stats:
    P.Fn(statsResponse(P.R.Id, stats()));
    break;
  case Method::Shutdown: {
    P.Fn(shutdownResponse(P.R.Id));
    // Copy: the callback may destroy transport state the Pending holds.
    std::function<void()> Hook = Opts.OnShutdown;
    if (Hook)
      Hook();
    break;
  }
  case Method::Predict:
    break; // handled by servePredicts
  }
}

void Server::servePredicts(std::vector<Pending> &Batch) {
  // Per-request timing: queue wait ends when the batch starts being
  // served; the prediction clock covers parse + embed + kNN for the
  // whole batch and is attributed to each request it answered (that IS
  // the latency each caller saw for the predict phase).
  auto Dispatched = std::chrono::steady_clock::now();
  uint64_t QueueTotalUs = 0, QueueMaxUs = 0;
  for (const Pending &P : Batch) {
    uint64_t WaitUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Dispatched -
                                                              P.Enqueued)
            .count());
    QueueTotalUs += WaitUs;
    QueueMaxUs = std::max(QueueMaxUs, WaitUs);
  }

  // Collapse identical in-flight requests (same path + source): a fleet
  // of clients asking about the same file — the CI smoke's exact shape —
  // costs one prediction, not N. Each duplicate still gets its own
  // response under its own id, bit-identical to the representative's.
  std::vector<size_t> GroupOf(Batch.size());
  std::vector<size_t> Rep; // index of each group's first request
  std::map<std::pair<std::string_view, std::string_view>, size_t> Groups;
  for (size_t I = 0; I != Batch.size(); ++I) {
    auto Key = std::make_pair(std::string_view(Batch[I].R.Path),
                              std::string_view(Batch[I].R.Source));
    auto [It, New] = Groups.emplace(Key, Rep.size());
    if (New)
      Rep.push_back(I);
    GroupOf[I] = It->second;
  }

  // The dispatcher is the only thread interning into the universe
  // (buildExample resolves annotation types) and running the model, by
  // construction — parallelism comes from inside predictBatch.
  bool Failed = false;
  std::string Err;
  try {
    std::vector<FileExample> Examples;
    Examples.reserve(Rep.size());
    for (size_t G : Rep)
      Examples.push_back(
          buildExample(CorpusFile{Batch[G].R.Path, Batch[G].R.Source}, U, {}));
    std::vector<const FileExample *> Ptrs;
    Ptrs.reserve(Examples.size());
    for (const FileExample &E : Examples)
      Ptrs.push_back(&E);
    std::vector<std::vector<PredictionResult>> PerGroup =
        Pred.predictBatch(Ptrs);
    for (size_t I = 0; I != Batch.size(); ++I) {
      int Limit = Batch[I].R.Limit >= 0 ? Batch[I].R.Limit : Opts.Limit;
      Batch[I].Fn(predictResponse(Batch[I].R.Id, Batch[I].R.Path,
                                  PerGroup[GroupOf[I]], Limit));
    }
  } catch (const std::exception &E) {
    Failed = true;
    Err = E.what();
  } catch (...) {
    Failed = true;
    Err = "unknown prediction failure";
  }
  if (Failed) {
    // A poisoned batch must not take the daemon down; every request in
    // it gets an error response and serving continues.
    for (Pending &P : Batch)
      P.Fn(errorResponse(P.R.Id, "prediction failed: " + Err));
  }

  uint64_t PredictUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Dispatched)
          .count());

  std::lock_guard<std::mutex> L(Mu);
  Stats.Requests += Batch.size();
  Stats.Batches += 1;
  Stats.MaxCoalesced =
      std::max(Stats.MaxCoalesced, static_cast<uint64_t>(Batch.size()));
  Stats.Collapsed += Batch.size() - Rep.size();
  Stats.QueueWaitTotalUs += QueueTotalUs;
  Stats.QueueWaitMaxUs = std::max(Stats.QueueWaitMaxUs, QueueMaxUs);
  Stats.PredictTotalUs += PredictUs * Batch.size();
  Stats.PredictMaxUs = std::max(Stats.PredictMaxUs, PredictUs);
}

//===----------------------------------------------------------------------===//
// serveStream
//===----------------------------------------------------------------------===//

void serve::serveStream(int Fd, size_t MaxRequestBytes, Server &S,
                        std::function<void(std::string)> Send,
                        const std::atomic<bool> *Stop, int WakeFd) {
  LineReader R(Fd, MaxRequestBytes, WakeFd);
  std::string Line;
  for (;;) {
    LineReader::Status St = R.next(Line);
    if (St == LineReader::Status::Eof || St == LineReader::Status::Error)
      return;
    if (St == LineReader::Status::Interrupted) {
      if (Stop && Stop->load())
        return;
      continue;
    }
    if (St == LineReader::Status::TooLong) {
      Send(errorResponse(-1, "request exceeds " +
                                 std::to_string(MaxRequestBytes) +
                                 " bytes and was discarded"));
      continue;
    }
    if (Line.empty())
      continue;
    Request Req;
    std::string Err;
    if (!parseRequest(Line, Req, &Err)) {
      Send(errorResponse(Req.Id, Err));
      continue;
    }
    int64_t Id = Req.Id;
    bool WasShutdown = Req.M == Method::Shutdown;
    if (!S.submit(std::move(Req), Send)) {
      Send(errorResponse(Id, "server is shutting down"));
      return;
    }
    // The drain (and this stream's teardown) starts once the dispatcher
    // reaches the shutdown request; reading further would race it.
    if (WasShutdown)
      return;
  }
}
