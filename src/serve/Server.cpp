//===- serve/Server.cpp - Batched request pipeline -----------------------------===//

#include "serve/Server.h"

#include "support/Socket.h"

#include <algorithm>
#include <cerrno>
#include <exception>
#include <map>
#include <string_view>
#include <utility>

#include <poll.h>
#include <sys/socket.h>

using namespace typilus;
using namespace typilus::serve;

uint64_t serve::sourceDigest(std::string_view Source) {
  // FNV-1a, the same construction predictionDigest and corpus/Dedup use.
  uint64_t H = 1469598103934665603ull;
  for (char C : Source)
    H = (H ^ static_cast<unsigned char>(C)) * 1099511628211ull;
  return H;
}

Server::Server(Predictor &P, TypeUniverse &U, ServerOptions O)
    : Pred(&P), U(&U), Opts(std::move(O)) {
  if (Opts.MaxBatch < 1)
    Opts.MaxBatch = 1;
  if (Opts.CacheEntries < 0)
    Opts.CacheEntries = 0;
  if (Opts.MaxQueue < 0)
    Opts.MaxQueue = 0;
  // predictSources resolves the universe through the predictor; a
  // live-model predictor needs to be pointed at the caller's.
  P.setUniverse(U);
  registerMethods();
  Dispatcher = std::thread([this] { dispatchLoop(); });
}

Server::~Server() { stop(); }

bool Server::submit(Request R, Respond Fn) {
  int64_t Id = R.Id;
  bool Shed = false;
  {
    std::lock_guard<std::mutex> L(Mu);
    if (Stopping)
      return false;
    if (Opts.MaxQueue > 0 && R.M == Method::Predict &&
        Queue.size() >= static_cast<size_t>(Opts.MaxQueue)) {
      // Load shedding: answering now (on the submit thread) keeps the
      // connection usable and the dispatcher untouched; control
      // requests always pass so an overloaded daemon stays observable
      // and drainable.
      Stats.Overloaded += 1;
      Shed = true;
    } else {
      Queue.push_back(Pending{std::move(R), std::move(Fn),
                              std::chrono::steady_clock::now()});
    }
  }
  if (Shed) {
    Fn(overloadedResponse(Id, Opts.MaxQueue));
    return true;
  }
  WakeCV.notify_one();
  return true;
}

void Server::stop() {
  // Exactly one caller claims the dispatcher thread; racing callers
  // return once Stopping is set (the claimant does the drain+join).
  std::thread ToJoin;
  {
    std::lock_guard<std::mutex> L(Mu);
    Stopping = true;
    if (Dispatcher.joinable())
      ToJoin = std::move(Dispatcher);
  }
  WakeCV.notify_all();
  if (ToJoin.joinable())
    ToJoin.join();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return Stats;
}

void Server::dispatchLoop() {
  for (;;) {
    std::vector<Pending> Popped;
    {
      std::unique_lock<std::mutex> L(Mu);
      WakeCV.wait(L, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty() && Stopping)
        return; // fully drained
      size_t Take =
          std::min(Queue.size(), static_cast<size_t>(Opts.MaxBatch));
      Popped.reserve(Take);
      for (size_t I = 0; I != Take; ++I) {
        Popped.push_back(std::move(Queue.front()));
        Queue.pop_front();
      }
    }

    // Preserve arrival order: coalesce runs of consecutive predict
    // requests, answer control requests at their position in between.
    std::vector<Pending> Run;
    for (Pending &P : Popped) {
      if (P.R.M == Method::Predict) {
        Run.push_back(std::move(P));
        continue;
      }
      if (!Run.empty()) {
        servePredicts(Run);
        Run.clear();
      }
      serveOne(P);
    }
    if (!Run.empty())
      servePredicts(Run);
  }
}

void Server::registerMethods() {
  Methods.add(methodName(Method::Ping),
              [this](Pending &P) { P.Fn(pongResponse(P.R.Id)); });
  Methods.add(methodName(Method::Stats), [this](Pending &P) {
    // Snapshot and (optionally) reset under one lock so a concurrent
    // submit-side Overloaded bump lands in exactly one window.
    ServerStats Snapshot;
    {
      std::lock_guard<std::mutex> L(Mu);
      Snapshot = Stats;
      if (P.R.Reset)
        Stats = ServerStats();
    }
    P.Fn(statsResponse(P.R.Id, Snapshot));
  });
  Methods.add(methodName(Method::Reload),
              [this](Pending &P) { serveReload(P); });
  Methods.add(methodName(Method::Shutdown), [this](Pending &P) {
    P.Fn(shutdownResponse(P.R.Id));
    // Copy: the callback may destroy transport state the Pending holds.
    std::function<void()> Hook = Opts.OnShutdown;
    if (Hook)
      Hook();
  });
}

void Server::serveOne(Pending &P) {
  if (P.R.M == Method::Predict)
    return; // batched through servePredicts, never dispatched here
  if (const auto *H = Methods.find(methodName(P.R.M))) {
    (*H)(P);
    return;
  }
  // Unreachable while parseRequest and the table agree on the method
  // set; answering uniformly (rather than asserting) keeps a future
  // mismatch a protocol error instead of a crash.
  P.Fn(errorResponse(P.R.Id, unknownMethodError(methodName(P.R.M))));
}

void Server::serveReload(Pending &P) {
  if (!Opts.OnReload) {
    P.Fn(errorResponse(P.R.Id, "reload is not enabled on this server"));
    return;
  }
  std::string Err;
  std::shared_ptr<Predictor> NewP = Opts.OnReload(&Err);
  if (!NewP) {
    P.Fn(errorResponse(P.R.Id, "reload failed: " +
                                   (Err.empty() ? "unknown error" : Err)));
    return;
  }
  if (!NewP->universe()) {
    P.Fn(errorResponse(
        P.R.Id, "reload failed: the new predictor does not own a universe"));
    return;
  }
  // The swap and the cache invalidation are one atomic step as far as
  // prediction is concerned: both happen here, between batches, on the
  // only thread that reads them. Requests queued behind this one are
  // answered from the new artifact; requests served before it were
  // answered (and cached) from the old one, and that cache is gone.
  Pred = NewP.get();
  U = NewP->universe();
  OwnedPred = std::move(NewP);
  CacheLru.clear();
  CacheIdx.clear();
  {
    std::lock_guard<std::mutex> L(Mu);
    Stats.Reloads += 1;
  }
  P.Fn(reloadResponse(P.R.Id));
}

//===----------------------------------------------------------------------===//
// Response cache (dispatcher-only, so lock-free)
//===----------------------------------------------------------------------===//

namespace {

std::string cacheKey(const std::string &Path, uint64_t SourceDigest) {
  std::string K = Path;
  K.push_back('\0');
  K.append(reinterpret_cast<const char *>(&SourceDigest),
           sizeof(SourceDigest));
  return K;
}

} // namespace

std::shared_ptr<const std::vector<PredictionResult>>
Server::cacheFind(const std::string &Path, uint64_t SourceDigest) {
  if (Opts.CacheEntries <= 0)
    return nullptr;
  auto It = CacheIdx.find(cacheKey(Path, SourceDigest));
  if (It == CacheIdx.end())
    return nullptr;
  CacheLru.splice(CacheLru.begin(), CacheLru, It->second);
  return It->second->Preds;
}

uint64_t Server::cacheInsert(
    const std::string &Path, uint64_t SourceDigest,
    std::shared_ptr<const std::vector<PredictionResult>> P) {
  if (Opts.CacheEntries <= 0)
    return 0;
  std::string K = cacheKey(Path, SourceDigest);
  auto It = CacheIdx.find(K);
  if (It != CacheIdx.end()) {
    // Same key predicted twice (only possible after a miss raced a
    // duplicate into the same batch run twice — harmless): refresh.
    CacheLru.splice(CacheLru.begin(), CacheLru, It->second);
    It->second->Preds = std::move(P);
    return 0;
  }
  CacheLru.push_front(CacheEntry{Path, SourceDigest, std::move(P)});
  CacheIdx.emplace(std::move(K), CacheLru.begin());
  uint64_t Evicted = 0;
  while (CacheLru.size() > static_cast<size_t>(Opts.CacheEntries)) {
    const CacheEntry &Old = CacheLru.back();
    CacheIdx.erase(cacheKey(Old.Path, Old.SourceDigest));
    CacheLru.pop_back();
    ++Evicted;
  }
  return Evicted;
}

void Server::servePredicts(std::vector<Pending> &Batch) {
  // Per-request timing: queue wait ends when the batch starts being
  // served; the prediction clock covers parse + embed + kNN for the
  // whole batch and is attributed to each request it answered (that IS
  // the latency each caller saw for the predict phase).
  auto Dispatched = std::chrono::steady_clock::now();
  uint64_t QueueTotalUs = 0, QueueMaxUs = 0;
  for (const Pending &P : Batch) {
    uint64_t WaitUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Dispatched -
                                                              P.Enqueued)
            .count());
    QueueTotalUs += WaitUs;
    QueueMaxUs = std::max(QueueMaxUs, WaitUs);
  }

  // Collapse identical in-flight requests (same path + source): a fleet
  // of clients asking about the same file — the CI smoke's exact shape —
  // costs one prediction, not N. Each duplicate still gets its own
  // response under its own id, bit-identical to the representative's.
  std::vector<size_t> GroupOf(Batch.size());
  std::vector<size_t> Rep; // index of each group's first request
  std::map<std::pair<std::string_view, std::string_view>, size_t> Groups;
  for (size_t I = 0; I != Batch.size(); ++I) {
    auto Key = std::make_pair(std::string_view(Batch[I].R.Path),
                              std::string_view(Batch[I].R.Source));
    auto [It, New] = Groups.emplace(Key, Rep.size());
    if (New)
      Rep.push_back(I);
    GroupOf[I] = It->second;
  }

  // Cache probe: one lookup per distinct (path, source) group. Hits
  // skip embedding entirely; only the misses go to the predictor.
  bool CacheOn = Opts.CacheEntries > 0;
  std::vector<std::shared_ptr<const std::vector<PredictionResult>>> GroupPreds(
      Rep.size());
  std::vector<uint64_t> GroupDigest(Rep.size());
  std::vector<size_t> Miss;
  uint64_t Hits = 0, Evictions = 0;
  for (size_t G = 0; G != Rep.size(); ++G) {
    const Request &R = Batch[Rep[G]].R;
    GroupDigest[G] = sourceDigest(R.Source);
    GroupPreds[G] = cacheFind(R.Path, GroupDigest[G]);
    if (GroupPreds[G])
      ++Hits;
    else
      Miss.push_back(G);
  }

  // The dispatcher is the only thread interning into the universe
  // (predictSources' parse resolves annotation types) and running the
  // model, by construction — parallelism comes from inside predictBatch.
  // That also makes the predictor's embed/kNN clocks diffable here
  // without a race: nothing else advances them between these reads.
  uint64_t EmbedUs0 = Pred->embedMicros(), KnnUs0 = Pred->knnMicros();
  std::string Err;
  if (!Miss.empty()) {
    try {
      std::vector<CorpusFile> Sources;
      Sources.reserve(Miss.size());
      for (size_t G : Miss) {
        const Request &R = Batch[Rep[G]].R;
        Sources.push_back(CorpusFile{R.Path, R.Source});
      }
      // The shared in-memory-source entry point: the CLI's --source and
      // the LSP go through the same call, so their digests match the
      // daemon's by construction.
      std::vector<std::vector<PredictionResult>> Fresh =
          Pred->predictSources(Sources);
      for (size_t I = 0; I != Miss.size(); ++I) {
        size_t G = Miss[I];
        GroupPreds[G] = std::make_shared<const std::vector<PredictionResult>>(
            std::move(Fresh[I]));
        Evictions += cacheInsert(Batch[Rep[G]].R.Path, GroupDigest[G],
                                 GroupPreds[G]);
      }
    } catch (const std::exception &E) {
      Err = E.what();
    } catch (...) {
      Err = "unknown prediction failure";
    }
  }

  // Answer in arrival order. A poisoned batch must not take the daemon
  // down: requests whose group has no predictions (the failed misses)
  // get an error response, cache hits in the same batch still serve,
  // and serving continues.
  for (size_t I = 0; I != Batch.size(); ++I) {
    const auto &Preds = GroupPreds[GroupOf[I]];
    if (!Preds) {
      Batch[I].Fn(errorResponse(Batch[I].R.Id, "prediction failed: " + Err));
      continue;
    }
    int Limit = Batch[I].R.Limit >= 0 ? Batch[I].R.Limit : Opts.Limit;
    Batch[I].Fn(
        predictResponse(Batch[I].R.Id, Batch[I].R.Path, *Preds, Limit));
  }

  uint64_t PredictUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Dispatched)
          .count());
  uint64_t EmbedUs = Pred->embedMicros() - EmbedUs0;
  uint64_t KnnUs = Pred->knnMicros() - KnnUs0;

  std::lock_guard<std::mutex> L(Mu);
  Stats.Requests += Batch.size();
  Stats.Batches += 1;
  Stats.MaxCoalesced =
      std::max(Stats.MaxCoalesced, static_cast<uint64_t>(Batch.size()));
  Stats.Collapsed += Batch.size() - Rep.size();
  Stats.QueueWaitTotalUs += QueueTotalUs;
  Stats.QueueWaitMaxUs = std::max(Stats.QueueWaitMaxUs, QueueMaxUs);
  Stats.PredictTotalUs += PredictUs * Batch.size();
  Stats.PredictMaxUs = std::max(Stats.PredictMaxUs, PredictUs);
  Stats.EmbedTotalUs += EmbedUs * Batch.size();
  Stats.KnnTotalUs += KnnUs * Batch.size();
  if (CacheOn) {
    Stats.CacheHits += Hits;
    Stats.CacheMisses += Miss.size();
    Stats.CacheEvictions += Evictions;
  }
}

//===----------------------------------------------------------------------===//
// serveStream
//===----------------------------------------------------------------------===//

void serve::serveStream(int Fd, size_t MaxRequestBytes, Server &S,
                        std::function<void(std::string)> Send,
                        const std::atomic<bool> *Stop, int WakeFd,
                        const std::function<bool()> &OnWake) {
  LineReader R(Fd, MaxRequestBytes, WakeFd);
  std::string Line;
  for (;;) {
    LineReader::Status St = R.next(Line);
    if (St == LineReader::Status::Eof || St == LineReader::Status::Error)
      return;
    if (St == LineReader::Status::Interrupted) {
      if (Stop && Stop->load())
        return;
      // The wake hook drains whatever woke us (the daemon's self-pipe:
      // a SIGHUP reload lands here in stdio mode) — without it a
      // readable WakeFd would spin this loop.
      if (OnWake && OnWake())
        return;
      continue;
    }
    if (St == LineReader::Status::TooLong) {
      Send(errorResponse(-1, "request exceeds " +
                                 std::to_string(MaxRequestBytes) +
                                 " bytes and was discarded"));
      continue;
    }
    if (Line.empty())
      continue;
    Request Req;
    std::string Err;
    if (!parseRequest(Line, Req, &Err)) {
      Send(errorResponse(Req.Id, Err));
      continue;
    }
    int64_t Id = Req.Id;
    bool WasShutdown = Req.M == Method::Shutdown;
    if (!S.submit(std::move(Req), Send)) {
      Send(errorResponse(Id, "server is shutting down"));
      return;
    }
    // The drain (and this stream's teardown) starts once the dispatcher
    // reaches the shutdown request; reading further would race it.
    if (WasShutdown)
      return;
  }
}

//===----------------------------------------------------------------------===//
// acceptLoop (shared by the daemon's Unix and TCP transports and by the
// TCP-loopback tests/bench)
//===----------------------------------------------------------------------===//

namespace {

/// One client connection: the fd to answer on plus a write lock (the
/// reader thread answers protocol errors itself while the dispatcher
/// writes results).
struct Conn {
  FileDesc Owned;
  int Fd = -1;
  std::mutex WriteMu;
  std::atomic<bool> ReaderDone{false};
  std::atomic<bool> Dead{false};

  void send(const std::string &Line) {
    // A vanished (or SO_SNDTIMEO-expired) client is not an error worth
    // acting on: its requests still drain, their responses just go
    // nowhere. The Dead latch makes every response after the first
    // failed write drop instantly instead of re-waiting the timeout,
    // and EOFs the read side so a write-only client stops feeding the
    // queue it will never read answers from.
    if (Dead.load(std::memory_order_relaxed))
      return;
    std::lock_guard<std::mutex> L(WriteMu);
    if (Dead.load(std::memory_order_relaxed))
      return;
    if (!writeAll(Fd, Line)) {
      Dead = true;
      Owned.shutdownRead();
    }
  }
};

FileDesc acceptOn(int ListenFd) {
  for (;;) {
    int C = ::accept(ListenFd, nullptr, nullptr);
    if (C >= 0)
      return FileDesc(C);
    if (errno != EINTR)
      return FileDesc();
  }
}

} // namespace

void serve::acceptLoop(const std::vector<int> &ListenFds, Server &S,
                       const AcceptLoopOptions &O) {
  // Reader threads are detached; this counter (with its cv) is how the
  // drain waits for all of them, and dead connections are pruned on each
  // accept so a long-lived daemon's memory does not grow with its
  // connection history.
  std::mutex ConnsMu;
  std::condition_variable ReapCV;
  int ActiveReaders = 0;
  std::vector<std::shared_ptr<Conn>> Conns;

  std::vector<pollfd> Fds;
  Fds.reserve(ListenFds.size() + 1);
  for (int L : ListenFds)
    Fds.push_back(pollfd{L, POLLIN, 0});
  if (O.WakeFd >= 0)
    Fds.push_back(pollfd{O.WakeFd, POLLIN, 0});

  bool Accepting = true;
  while (Accepting) {
    for (pollfd &P : Fds)
      P.revents = 0;
    int N = ::poll(Fds.data(), static_cast<nfds_t>(Fds.size()), -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (O.WakeFd >= 0 && Fds.back().revents) {
      // The wake hook owns the pipe: it drains it and decides whether
      // this was a drain signal (true) or e.g. a reload (false).
      if (!O.OnWake || O.OnWake())
        break;
    }
    size_t Alive = 0;
    for (size_t I = 0; I != ListenFds.size(); ++I) {
      if (Fds[I].fd < 0)
        continue;
      ++Alive;
      if (!Fds[I].revents)
        continue;
      FileDesc C = acceptOn(Fds[I].fd);
      if (!C.valid()) {
        // Transient accept failures (aborted handshake, fd pressure)
        // retry on the next readiness; a dead listener is dropped from
        // the poll set so it cannot spin the loop.
        if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE ||
            errno == ENOMEM || errno == EAGAIN || errno == EWOULDBLOCK)
          continue;
        Fds[I].fd = -1;
        --Alive;
        continue;
      }
      auto Shared = std::make_shared<Conn>();
      Shared->Owned = std::move(C);
      Shared->Fd = Shared->Owned.fd();
      // A client that stops reading must not stall the dispatcher (or
      // the drain) behind a full socket buffer: after this much
      // back-pressure its response write fails and is dropped.
      if (O.SendTimeoutSeconds > 0)
        setSendTimeout(Shared->Fd, O.SendTimeoutSeconds);
      setTcpNoDelay(Shared->Fd); // no-op on Unix-domain connections
      {
        std::lock_guard<std::mutex> G(ConnsMu);
        // Prune connections whose reader finished and whose responses
        // all went out (ours is then the only reference left).
        Conns.erase(std::remove_if(Conns.begin(), Conns.end(),
                                   [](const std::shared_ptr<Conn> &P) {
                                     return P->ReaderDone.load() &&
                                            P.use_count() == 1;
                                   }),
                    Conns.end());
        Conns.push_back(Shared);
        ++ActiveReaders;
      }
      size_t MaxBytes = O.MaxRequestBytes;
      std::thread([Shared, &S, MaxBytes, &ConnsMu, &ReapCV, &ActiveReaders] {
        serveStream(Shared->Fd, MaxBytes, S,
                    [Shared](std::string Resp) { Shared->send(Resp); });
        Shared->ReaderDone = true;
        {
          // Notify under the lock: the drain destroys the cv right
          // after its wait returns, so the notify must complete before
          // this thread releases the mutex that wakes it.
          std::lock_guard<std::mutex> G(ConnsMu);
          --ActiveReaders;
          ReapCV.notify_all();
        }
      }).detach();
    }
    if (Alive == 0 && !ListenFds.empty())
      break; // every listener died; nothing left to accept
  }

  // Drain-first shutdown: the caller closes its listeners in
  // OnDrainStart (no new connections), we EOF the readers (write sides
  // stay open for in-flight responses), wait for them to finish
  // submitting, then finish the queue.
  if (O.OnDrainStart)
    O.OnDrainStart();
  {
    std::unique_lock<std::mutex> G(ConnsMu);
    for (auto &C : Conns)
      C->Owned.shutdownRead();
    ReapCV.wait(G, [&] { return ActiveReaders == 0; });
  }
  S.stop();
}
