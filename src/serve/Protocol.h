//===- serve/Protocol.h - The serving wire protocol ---------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The newline-delimited JSON protocol the daemon speaks (grammar in
/// docs/ARCHITECTURE.md "Serving"). One request per line, one response
/// per line, matched by `id`; `predict` responses carry the same FNV-1a
/// digest `typilus_cli predict` prints, so serving paths are
/// digest-comparable from the shell — the bit-identity contract CI
/// enforces.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SERVE_PROTOCOL_H
#define TYPILUS_SERVE_PROTOCOL_H

#include "core/Predictor.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace typilus {
namespace serve {

/// Protocol revision, echoed by ping. Bump on incompatible grammar
/// changes; clients may check it before issuing work.
inline constexpr int kProtocolVersion = 1;

/// Default cap on one request line; LineReader discards anything longer
/// and the daemon answers with an error (oversized-request guard).
inline constexpr size_t kDefaultMaxRequestBytes = 4u << 20;

enum class Method {
  Predict,  ///< Annotate one source file.
  Ping,     ///< Liveness + protocol version probe.
  Stats,    ///< Serving counters (requests, batches, coalescing, cache).
  Reload,   ///< Swap in a freshly loaded artifact (also SIGHUP).
  Shutdown, ///< Graceful stop: drain, respond, exit.
};

/// The wire name of \p M ("predict", "ping", ...). One table backs this,
/// methodFromName and parseRequest, so the spellings cannot drift.
const char *methodName(Method M);
/// Parses a wire name; \returns false on anything methodName never
/// produces.
bool methodFromName(std::string_view Name, Method *Out);

/// One parsed request line.
struct Request {
  int64_t Id = -1; ///< Echoed in the response; -1 when unrecoverable.
  Method M = Method::Ping;
  std::string Path;   ///< predict: file path used in results/digests.
  std::string Source; ///< predict: the file's contents.
  int Limit = -1;     ///< predict: candidate cap per symbol (-1 = all).
  bool Reset = false; ///< stats: zero the counters after reporting them.
};

/// Parses one request line. On failure \returns false, sets \p Err, and
/// leaves whatever id could be recovered in \p Out.Id so the error
/// response still correlates.
bool parseRequest(std::string_view Line, Request &Out, std::string *Err);

/// Serving counters, reported by the `stats` method.
struct ServerStats {
  uint64_t Requests = 0;     ///< Predict requests answered.
  uint64_t Batches = 0;      ///< Dispatches (== Requests when unbatched).
  uint64_t MaxCoalesced = 0; ///< Largest batch observed.
  uint64_t Collapsed = 0;    ///< Duplicate in-batch requests answered from
                             ///< another request's prediction.
  /// Per-request timing (µs), over predict requests. Queue wait is
  /// submit-to-dispatch; predict is the request's batch prediction time
  /// (parse + embed + kNN — shared by every request the batch coalesced,
  /// so the mean is per request, not per embed). Totals accumulate so
  /// the stats response can report running means alongside the maxima.
  uint64_t QueueWaitTotalUs = 0;
  uint64_t QueueWaitMaxUs = 0;
  uint64_t PredictTotalUs = 0;
  uint64_t PredictMaxUs = 0;
  /// The predict phase split per request: time inside the encoder
  /// (embedding query files) vs time probing the kNN index, from
  /// Predictor::embedMicros / knnMicros diffs around each batch.
  /// Attributed like PredictTotalUs — every request a batch coalesced
  /// saw its batch's full cost — so the running means sit next to
  /// predict_mean_us on the same scale. Cache hits add nothing to
  /// either: the split shows where a miss's latency actually goes
  /// (GNN forward pass vs index probe).
  uint64_t EmbedTotalUs = 0;
  uint64_t KnnTotalUs = 0;
  /// Response cache (keyed on path + FNV-1a source digest; see
  /// Server.h). Hits/misses count per-batch lookups — one per distinct
  /// (path, source) group, after collapsing — so a 50-duplicate batch
  /// that reuses a cached prediction is one hit, not fifty.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  /// Predict requests shed with an `overloaded` error because the queue
  /// was at --max-queue when they arrived.
  uint64_t Overloaded = 0;
  /// Artifact reloads that succeeded (each also invalidated the cache).
  uint64_t Reloads = 0;
};

// Response serializers. Every response is one JSON object terminated by
// '\n', with "id" and "ok" always present.
std::string errorResponse(int64_t Id, std::string_view Error);
std::string pongResponse(int64_t Id);
std::string statsResponse(int64_t Id, const ServerStats &S);
std::string shutdownResponse(int64_t Id);
std::string reloadResponse(int64_t Id);

/// The load-shedding response: `ok:false` with an `"overloaded":true`
/// marker so clients can tell "back off and retry" apart from request
/// errors without parsing the message text.
std::string overloadedResponse(int64_t Id, int MaxQueue);

/// The predict response: per-symbol candidate lists (capped at \p Limit
/// when >= 0) plus the digest over the *full* prediction set — the same
/// value `typilus_cli predict --source` prints for this file.
std::string predictResponse(int64_t Id, std::string_view Path,
                            const std::vector<PredictionResult> &Preds,
                            int Limit);

} // namespace serve
} // namespace typilus

#endif // TYPILUS_SERVE_PROTOCOL_H
