//===- serve/Server.h - Batched request pipeline ------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving core behind `typilus_serve`, transport-agnostic so tests
/// drive it in-process: reader threads submit parsed requests, a single
/// dispatcher thread pops them and *coalesces* consecutive predict
/// requests into one `Predictor::predictBatch` call — files embed
/// data-parallel through the PR-2 thread pool and one bulk τmap probe
/// answers the whole batch — after *collapsing* identical requests so N
/// clients asking about the same source pay for one prediction. The
/// dispatcher is the only thread touching the predictor
/// and the type universe, so no locks sit on the hot path and responses
/// are bit-identical to single-shot prediction for any thread count and
/// any batch composition.
///
/// Shutdown is drain-first: stop() refuses new submissions, finishes
/// every queued request (each gets its response) and joins the
/// dispatcher.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SERVE_SERVER_H
#define TYPILUS_SERVE_SERVER_H

#include "serve/Protocol.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace typilus {

class TypeUniverse;

namespace serve {

struct ServerOptions {
  /// Most predict requests coalesced into one dispatch (1 = serve one
  /// request at a time, the unbatched baseline bench/serve_throughput
  /// compares against).
  int MaxBatch = 16;
  /// Default per-symbol candidate cap for responses that do not set
  /// "limit" themselves (-1 = all candidates).
  int Limit = -1;
  /// Invoked on the dispatcher thread after a `shutdown` request has
  /// been answered; the transport layer uses it to begin its drain.
  std::function<void()> OnShutdown;
};

/// The batched request pipeline. Thread-safe entry: submit() may be
/// called from any number of reader threads.
class Server {
public:
  /// Response sink: receives one serialized response line. Invoked on
  /// the dispatcher thread (submit-side threads never block on
  /// prediction).
  using Respond = std::function<void(std::string)>;

  /// \p P must outlive the server; \p U is the universe \p P's types are
  /// interned in (a loaded predictor owns it — `P.universe()`). Only the
  /// dispatcher thread touches either.
  Server(Predictor &P, TypeUniverse &U, ServerOptions O = {});
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Enqueues one request; the response arrives through \p Fn.
  /// \returns false once stop() has begun (the request is not enqueued
  /// and \p Fn will not be called).
  bool submit(Request R, Respond Fn);

  /// Drains: no new submissions, every queued request is answered, then
  /// the dispatcher joins. Idempotent.
  void stop();

  ServerStats stats() const;

private:
  struct Pending {
    Request R;
    Respond Fn;
    /// Submit time; queue wait (submit -> batch dispatch) feeds the
    /// per-request timing the `stats` method reports.
    std::chrono::steady_clock::time_point Enqueued;
  };

  void dispatchLoop();
  void serveOne(Pending &P);
  void servePredicts(std::vector<Pending> &Batch);

  Predictor &Pred;
  TypeUniverse &U;
  ServerOptions Opts;

  mutable std::mutex Mu;
  std::condition_variable WakeCV;
  std::deque<Pending> Queue;
  bool Stopping = false;
  ServerStats Stats;
  std::thread Dispatcher;
};

/// Drives one NDJSON request stream (a connection or stdin): reads lines
/// off \p Fd, answers protocol errors — malformed JSON, missing fields,
/// lines over \p MaxRequestBytes — itself through \p Send, and submits
/// well-formed requests to \p S (whose responses also flow through
/// \p Send, from the dispatcher thread — \p Send must be thread-safe).
/// Returns on EOF or a read error, right after submitting a `shutdown`
/// request, or — when \p Stop is non-null — once *Stop reads true after
/// an interrupted read. \p WakeFd (see LineReader) makes that preemption
/// race-free: the stdio daemon passes its SIGTERM self-pipe so a signal
/// landing between reads still wakes the stream.
void serveStream(int Fd, size_t MaxRequestBytes, Server &S,
                 std::function<void(std::string)> Send,
                 const std::atomic<bool> *Stop = nullptr, int WakeFd = -1);

} // namespace serve
} // namespace typilus

#endif // TYPILUS_SERVE_SERVER_H
