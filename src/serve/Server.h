//===- serve/Server.h - Batched request pipeline ------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving core behind `typilus_serve`, transport-agnostic so tests
/// drive it in-process: reader threads submit parsed requests, a single
/// dispatcher thread pops them and *coalesces* consecutive predict
/// requests into one `Predictor::predictBatch` call — files embed
/// data-parallel through the PR-2 thread pool and one bulk τmap probe
/// answers the whole batch — after *collapsing* identical requests so N
/// clients asking about the same source pay for one prediction. The
/// dispatcher is the only thread touching the predictor
/// and the type universe, so no locks sit on the hot path and responses
/// are bit-identical to single-shot prediction for any thread count and
/// any batch composition.
///
/// On top of the batch pipeline sit three production behaviors, all
/// owned by the dispatcher so they stay lock-free and totally ordered
/// with prediction:
///
///  - a **response cache** keyed on (path, FNV-1a source digest) with
///    LRU eviction: a repeated request skips embedding entirely and its
///    response is re-serialized from the cached predictions — byte-
///    identical to the original miss for the same id and limit;
///  - **hot reload**: a `reload` request (or SIGHUP in the daemon)
///    swaps in a freshly loaded Predictor through ServerOptions::
///    OnReload. Because reload rides the request queue, requests
///    enqueued before it are answered from the old artifact and
///    requests after it from the new one — never a mix — and the cache
///    is invalidated in the same step;
///  - **backpressure**: with ServerOptions::MaxQueue set, a predict
///    arriving at a full queue is answered immediately (on the submit
///    thread) with an `overloaded` error instead of wedging the
///    dispatcher; control requests always pass.
///
/// Shutdown is drain-first: stop() refuses new submissions, finishes
/// every queued request (each gets its response) and joins the
/// dispatcher.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SERVE_SERVER_H
#define TYPILUS_SERVE_SERVER_H

#include "serve/Dispatch.h"
#include "serve/Protocol.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace typilus {

class TypeUniverse;

namespace serve {

struct ServerOptions {
  /// Most predict requests coalesced into one dispatch (1 = serve one
  /// request at a time, the unbatched baseline bench/serve_throughput
  /// compares against).
  int MaxBatch = 16;
  /// Default per-symbol candidate cap for responses that do not set
  /// "limit" themselves (-1 = all candidates).
  int Limit = -1;
  /// Response-cache capacity in distinct (path, source digest) entries;
  /// least-recently-used entries are evicted past it. 0 disables the
  /// cache (every request embeds, the PR-4 behavior — what the bench's
  /// batching comparison still measures).
  int CacheEntries = 1024;
  /// Queue bound for backpressure: a predict submitted while this many
  /// requests are already queued is shed with an immediate `overloaded`
  /// error response instead of being enqueued. 0 = unbounded. Control
  /// requests (ping/stats/reload/shutdown) are never shed, so probing
  /// and draining an overloaded daemon always works.
  int MaxQueue = 0;
  /// Invoked on the dispatcher thread after a `shutdown` request has
  /// been answered; the transport layer uses it to begin its drain.
  std::function<void()> OnShutdown;
  /// Loads a replacement predictor for a `reload` request; invoked on
  /// the dispatcher thread (prediction pauses while it runs — in-flight
  /// batches finished, queued ones waiting). The returned predictor
  /// must own its universe (`Predictor::load` artifacts do). Return
  /// null and set \p Err to keep serving the current artifact; unset
  /// leaves the method answering "reload is not enabled".
  std::function<std::shared_ptr<Predictor>(std::string *Err)> OnReload;
};

/// The batched request pipeline. Thread-safe entry: submit() may be
/// called from any number of reader threads.
class Server {
public:
  /// Response sink: receives one serialized response line. Invoked on
  /// the dispatcher thread (submit-side threads never block on
  /// prediction).
  using Respond = std::function<void(std::string)>;

  /// \p P must outlive the server; \p U is the universe \p P's types are
  /// interned in (a loaded predictor owns it — `P.universe()`). Only the
  /// dispatcher thread touches either.
  Server(Predictor &P, TypeUniverse &U, ServerOptions O = {});
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Enqueues one request; the response arrives through \p Fn.
  /// \returns false once stop() has begun (the request is not enqueued
  /// and \p Fn will not be called).
  bool submit(Request R, Respond Fn);

  /// Drains: no new submissions, every queued request is answered, then
  /// the dispatcher joins. Idempotent.
  void stop();

  ServerStats stats() const;

private:
  struct Pending {
    Request R;
    Respond Fn;
    /// Submit time; queue wait (submit -> batch dispatch) feeds the
    /// per-request timing the `stats` method reports.
    std::chrono::steady_clock::time_point Enqueued;
  };

  /// One cached prediction set. Shared-ptr so a response being serialized
  /// is unaffected by the entry's eviction mid-batch.
  struct CacheEntry {
    std::string Path;
    uint64_t SourceDigest;
    std::shared_ptr<const std::vector<PredictionResult>> Preds;
  };

  void dispatchLoop();
  /// Fills Methods with the control handlers (ping/stats/reload/
  /// shutdown); predict is not in the table — it dispatches through the
  /// coalescing batch path below, never one at a time.
  void registerMethods();
  void serveOne(Pending &P);
  void servePredicts(std::vector<Pending> &Batch);
  void serveReload(Pending &P);

  /// Cache lookup; moves a hit to the LRU front. Dispatcher-only.
  std::shared_ptr<const std::vector<PredictionResult>>
  cacheFind(const std::string &Path, uint64_t SourceDigest);
  /// Inserts a fresh prediction set, evicting LRU entries past the
  /// capacity. \returns evictions performed. Dispatcher-only.
  uint64_t cacheInsert(const std::string &Path, uint64_t SourceDigest,
                       std::shared_ptr<const std::vector<PredictionResult>> P);

  // The artifact being served. Plain pointers (not refs) because reload
  // swaps them; OwnedPred keeps a reloaded predictor (and the universe
  // it owns) alive until the next swap. Dispatcher-only after
  // construction.
  Predictor *Pred;
  TypeUniverse *U;
  std::shared_ptr<Predictor> OwnedPred;
  ServerOptions Opts;

  /// Control-method dispatch table (serve/Dispatch.h — the same surface
  /// the LSP registers its JSON-RPC handlers through). Handlers run on
  /// the dispatcher thread only.
  MethodRegistry<std::function<void(Pending &)>> Methods;

  // Response cache: LRU list (front = most recent) + index into it.
  // Dispatcher-only, so no lock; invalidated wholesale on reload.
  std::list<CacheEntry> CacheLru;
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> CacheIdx;

  mutable std::mutex Mu;
  std::condition_variable WakeCV;
  std::deque<Pending> Queue;
  bool Stopping = false;
  ServerStats Stats;
  std::thread Dispatcher;
};

/// FNV-1a over a request's source text — the cache key half that
/// changes when a file's contents do. Exposed for tests asserting
/// key semantics.
uint64_t sourceDigest(std::string_view Source);

/// Drives one NDJSON request stream (a connection or stdin): reads lines
/// off \p Fd, answers protocol errors — malformed JSON, missing fields,
/// lines over \p MaxRequestBytes — itself through \p Send, and submits
/// well-formed requests to \p S (whose responses also flow through
/// \p Send, from the dispatcher thread — \p Send must be thread-safe).
/// Returns on EOF or a read error, right after submitting a `shutdown`
/// request, or — when \p Stop is non-null — once *Stop reads true after
/// an interrupted read. \p WakeFd (see LineReader) makes that preemption
/// race-free: the stdio daemon passes its SIGTERM self-pipe so a signal
/// landing between reads still wakes the stream.
void serveStream(int Fd, size_t MaxRequestBytes, Server &S,
                 std::function<void(std::string)> Send,
                 const std::atomic<bool> *Stop = nullptr, int WakeFd = -1,
                 const std::function<bool()> &OnWake = nullptr);

/// The transport-side accept loop shared by the daemon's Unix-socket and
/// TCP modes (and by tests/bench driving a real TCP loopback): polls any
/// number of listening fds plus an optional wake pipe, accepts
/// connections, and drives serveStream on a detached reader thread per
/// connection. Returns after a drain: stop accepting, EOF every open
/// stream (write sides stay open), wait for readers, then
/// `Server::stop()` — every accepted request is answered.
struct AcceptLoopOptions {
  size_t MaxRequestBytes = kDefaultMaxRequestBytes;
  /// SO_SNDTIMEO per connection: after this much write backpressure
  /// from a client that stopped reading, its response is dropped and
  /// serving continues (0 = no timeout).
  int SendTimeoutSeconds = 30;
  /// Optional self-pipe polled alongside the listeners.
  int WakeFd = -1;
  /// Invoked (on the accept thread) whenever WakeFd becomes readable —
  /// the daemon drains the pipe and handles SIGHUP here. Return true to
  /// begin the drain and leave the loop.
  std::function<bool()> OnWake;
  /// Invoked when the drain begins, before open streams are EOF'd; the
  /// caller closes its listeners here so no connection can slip in
  /// between "stop accepting" and "drained".
  std::function<void()> OnDrainStart;
};
void acceptLoop(const std::vector<int> &ListenFds, Server &S,
                const AcceptLoopOptions &O);

} // namespace serve
} // namespace typilus

#endif // TYPILUS_SERVE_SERVER_H
