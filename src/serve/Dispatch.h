//===- serve/Dispatch.h - Method-registry dispatch ----------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one method-dispatch surface the serving tiers share: a small
/// ordered name -> handler table. The NDJSON daemon registers its
/// protocol methods (ping/stats/reload/shutdown) in it and the LSP
/// front-end registers its JSON-RPC methods in the same template, so
/// "look the method up, answer uniformly when it is unknown" is written
/// once. Registration order is preserved (names() lists it), lookups are
/// a linear scan — method tables have a handful of entries and the scan
/// beats a hash map's constant factor at this size.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SERVE_DISPATCH_H
#define TYPILUS_SERVE_DISPATCH_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace typilus {
namespace serve {

/// The uniform unknown-method message every dispatch surface answers
/// with (the NDJSON error response and the LSP's MethodNotFound share
/// this text; tests and clients match on it).
inline std::string unknownMethodError(std::string_view Name) {
  return "unknown method '" + std::string(Name) + "'";
}

/// An ordered method table: name -> handler.
template <typename Handler> class MethodRegistry {
public:
  /// Registers \p H under \p Name; a re-registration replaces the
  /// handler in place (keeping the original position).
  void add(std::string Name, Handler H) {
    for (auto &E : Table)
      if (E.first == Name) {
        E.second = std::move(H);
        return;
      }
    Table.emplace_back(std::move(Name), std::move(H));
  }

  /// \returns the handler registered under \p Name, or null.
  const Handler *find(std::string_view Name) const {
    for (const auto &E : Table)
      if (E.first == Name)
        return &E.second;
    return nullptr;
  }

  /// Registered names, in registration order.
  std::vector<std::string_view> names() const {
    std::vector<std::string_view> N;
    N.reserve(Table.size());
    for (const auto &E : Table)
      N.push_back(E.first);
    return N;
  }

  size_t size() const { return Table.size(); }

private:
  std::vector<std::pair<std::string, Handler>> Table;
};

} // namespace serve
} // namespace typilus

#endif // TYPILUS_SERVE_DISPATCH_H
