//===- graph/Builder.cpp - Typilus graph construction -----------------------===//

#include "graph/Graph.h"

#include "pyfront/Dataflow.h"
#include "support/Str.h"

#include <cassert>
#include <map>

using namespace typilus;

const char *typilus::edgeLabelName(EdgeLabel L) {
  switch (L) {
  case EdgeLabel::NextToken: return "NEXT_TOKEN";
  case EdgeLabel::Child: return "CHILD";
  case EdgeLabel::NextMayUse: return "NEXT_MAY_USE";
  case EdgeLabel::NextLexicalUse: return "NEXT_LEXICAL_USE";
  case EdgeLabel::AssignedFrom: return "ASSIGNED_FROM";
  case EdgeLabel::ReturnsTo: return "RETURNS_TO";
  case EdgeLabel::OccurrenceOf: return "OCCURRENCE_OF";
  case EdgeLabel::SubtokenOf: return "SUBTOKEN_OF";
  }
  return "?";
}

std::array<size_t, NumEdgeLabels> TypilusGraph::edgeCounts() const {
  std::array<size_t, NumEdgeLabels> Counts{};
  for (const GraphEdge &E : Edges)
    ++Counts[static_cast<size_t>(E.Label)];
  return Counts;
}

namespace {

/// Builds one file's graph.
class GraphBuilder {
public:
  GraphBuilder(const ParsedFile &PF, const SymbolTable &ST,
               const GraphBuildOptions &Opts)
      : PF(PF), ST(ST), Opts(Opts) {}

  TypilusGraph run();

private:
  int addNode(NodeCategory Cat, std::string Label) {
    G.Nodes.push_back(GraphNode{Cat, std::move(Label), -1, -1});
    return static_cast<int>(G.Nodes.size()) - 1;
  }
  void addEdge(int Src, int Dst, EdgeLabel L) {
    if (Src < 0 || Dst < 0 || Src == Dst)
      return;
    G.Edges.push_back(GraphEdge{Src, Dst, L});
  }

  /// Graph node for token index \p TokIdx, or -1 if that token is not part
  /// of the graph (layout/annotation token).
  int tokenNode(int TokIdx) const {
    if (TokIdx < 0 || static_cast<size_t>(TokIdx) >= TokNode.size())
      return -1;
    return TokNode[TokIdx];
  }
  int astNode(const AstNode *N) const {
    auto It = AstNodeIdx.find(N);
    return It == AstNodeIdx.end() ? -1 : It->second;
  }

  int vocabNode(const std::string &Subtoken) {
    auto It = VocabIdx.find(Subtoken);
    if (It != VocabIdx.end())
      return It->second;
    int Idx = addNode(NodeCategory::Vocabulary, Subtoken);
    VocabIdx.emplace(Subtoken, Idx);
    return Idx;
  }

  void buildTokenNodes();
  void buildAstNodes(const AstNode *N, int ParentIdx,
                     const FunctionDef *EnclosingFunc);
  void buildSymbolNodes();
  void buildDataflowEdges();

  const ParsedFile &PF;
  const SymbolTable &ST;
  const GraphBuildOptions &Opts;
  TypilusGraph G;
  std::vector<int> TokNode;                  // token idx -> node idx or -1
  std::map<const AstNode *, int> AstNodeIdx; // AST node -> node idx
  std::map<std::string, int> VocabIdx;       // subtoken -> node idx
  std::map<int, int> SymNode;                // symbol id -> node idx
};

} // namespace

void GraphBuilder::buildTokenNodes() {
  TokNode.assign(PF.Tokens.size(), -1);
  int PrevNode = -1;
  for (size_t I = 0; I != PF.Tokens.size(); ++I) {
    const Token &T = PF.Tokens[I];
    switch (T.Kind) {
    case TokKind::Eof:
    case TokKind::Newline:
    case TokKind::Indent:
    case TokKind::Dedent:
    case TokKind::Error:
      continue;
    default:
      break;
    }
    if (T.InAnnotation)
      continue; // Annotations are erased from the model's view.
    std::string Label = T.Text.empty() ? tokKindName(T.Kind) : T.Text;
    int Idx = addNode(NodeCategory::Token, Label);
    G.Nodes[Idx].TokenIdx = static_cast<int>(I);
    TokNode[I] = Idx;
    if (Opts.IncludeNextToken && PrevNode >= 0)
      addEdge(PrevNode, Idx, EdgeLabel::NextToken);
    PrevNode = Idx;
    // SUBTOKEN_OF: identifier tokens connect to their subtoken vocabulary
    // nodes (Table 1, [20]).
    if (Opts.IncludeSubtokenOf && T.Kind == TokKind::Identifier)
      for (const std::string &Sub : splitSubtokens(T.Text))
        addEdge(Idx, vocabNode(Sub), EdgeLabel::SubtokenOf);
  }
}

void GraphBuilder::buildAstNodes(const AstNode *N, int ParentIdx,
                                 const FunctionDef *EnclosingFunc) {
  // Leaf expressions whose whole content is a single token reuse the token
  // node instead of adding a duplicate non-terminal (keeps graphs compact,
  // like the paper's Fig. 3 where `foo` and `i` are token nodes).
  bool IsSingleTokenLeaf = false;
  switch (N->kind()) {
  case AstNode::NodeKind::NameExpr:
  case AstNode::NodeKind::IntLit:
  case AstNode::NodeKind::FloatLit:
  case AstNode::NodeKind::StringLit:
  case AstNode::NodeKind::BoolLit:
  case AstNode::NodeKind::NoneLit:
  case AstNode::NodeKind::EllipsisLit:
    IsSingleTokenLeaf = N->FirstTok >= 0 && N->FirstTok == N->LastTok;
    break;
  default:
    break;
  }

  int Idx;
  if (IsSingleTokenLeaf && tokenNode(N->FirstTok) >= 0) {
    Idx = tokenNode(N->FirstTok);
    AstNodeIdx[N] = Idx;
  } else {
    std::string Label = nodeKindName(N->kind());
    if (const auto *B = dyn_cast<BinaryExpr>(N))
      Label = strformat("BinOp_%s", binOpSpelling(B->Op));
    Idx = addNode(NodeCategory::NonTerminal, Label);
    AstNodeIdx[N] = Idx;
  }
  if (Opts.IncludeChild)
    addEdge(ParentIdx, Idx, EdgeLabel::Child);

  const FunctionDef *FuncHere = EnclosingFunc;
  if (const auto *F = dyn_cast<FunctionDef>(N))
    FuncHere = F;

  // RETURNS_TO: return/yield nodes point back at the function declaration.
  if (Opts.IncludeReturnsTo && EnclosingFunc) {
    if (isa<ReturnStmt>(N) || isa<YieldExpr>(N))
      addEdge(Idx, astNode(EnclosingFunc), EdgeLabel::ReturnsTo);
  }

  // Recurse into children first so ASSIGNED_FROM can reference them.
  std::vector<const AstNode *> Children;
  Module::forEachChild(N, [&](const AstNode *C) { Children.push_back(C); });
  for (const AstNode *C : Children)
    buildAstNodes(C, Idx, FuncHere);

  // CHILD edges from this node to its *direct* lexemes: tokens inside this
  // node's range that no child covers.
  if (Opts.IncludeChild && !IsSingleTokenLeaf && N->FirstTok >= 0) {
    for (int T = N->FirstTok; T <= N->LastTok; ++T) {
      int TN = tokenNode(T);
      if (TN < 0)
        continue;
      bool Covered = false;
      for (const AstNode *C : Children)
        if (C->FirstTok >= 0 && T >= C->FirstTok && T <= C->LastTok) {
          Covered = true;
          break;
        }
      if (!Covered)
        addEdge(Idx, TN, EdgeLabel::Child);
    }
  }

  // ASSIGNED_FROM: RHS -> LHS.
  if (Opts.IncludeAssignedFrom) {
    if (const auto *A = dyn_cast<AssignStmt>(N))
      if (A->Value)
        addEdge(astNode(A->Value), astNode(A->Target),
                EdgeLabel::AssignedFrom);
  }
}

void GraphBuilder::buildSymbolNodes() {
  for (const auto &SymPtr : ST.symbols()) {
    const Symbol &Sym = *SymPtr;
    if (Sym.OccTokens.empty() && Sym.OccNodes.empty())
      continue;
    int Idx = addNode(NodeCategory::SymbolNode, Sym.Name);
    G.Nodes[Idx].SymbolId = Sym.Id;
    SymNode[Sym.Id] = Idx;

    if (Opts.IncludeOccurrenceOf) {
      for (int T : Sym.OccTokens)
        addEdge(tokenNode(T), Idx, EdgeLabel::OccurrenceOf);
      for (const AstNode *N : Sym.OccNodes) {
        int NI = astNode(N);
        // Single-token occurrences already linked via their token node.
        if (NI >= 0 && (N->FirstTok != N->LastTok || tokenNode(N->FirstTok) != NI))
          addEdge(NI, Idx, EdgeLabel::OccurrenceOf);
      }
    }

    if (Sym.isPredictionTarget()) {
      Supernode S;
      S.NodeIdx = Idx;
      S.SymbolId = Sym.Id;
      S.Kind = Sym.Kind;
      S.Name = Sym.Name;
      S.AnnotationText = Sym.AnnotationText;
      G.Supernodes.push_back(std::move(S));
    }
  }
}

void GraphBuilder::buildDataflowEdges() {
  if (!Opts.IncludeNextUse)
    return;
  DataflowEdges DF = computeDataflow(PF, ST);
  for (auto [From, To] : DF.NextLexicalUse)
    addEdge(tokenNode(From), tokenNode(To), EdgeLabel::NextLexicalUse);
  for (auto [From, To] : DF.NextMayUse)
    addEdge(tokenNode(From), tokenNode(To), EdgeLabel::NextMayUse);
}

TypilusGraph GraphBuilder::run() {
  assert(PF.Mod && "file must be parsed");
  buildTokenNodes();
  buildAstNodes(PF.Mod.get(), /*ParentIdx=*/-1, /*EnclosingFunc=*/nullptr);
  buildSymbolNodes();
  buildDataflowEdges();
  return std::move(G);
}

TypilusGraph typilus::buildGraph(const ParsedFile &PF, const SymbolTable &ST,
                                 const GraphBuildOptions &Opts) {
  return GraphBuilder(PF, ST, Opts).run();
}
