//===- graph/Graph.h - Typilus program graphs ---------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program-graph representation of Sec. 5.1 / Table 1: four node
/// categories (token, non-terminal, vocabulary, symbol) and eight edge
/// labels. Symbol nodes are the "supernodes" whose final GNN states are the
/// type embeddings r_s.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_GRAPH_GRAPH_H
#define TYPILUS_GRAPH_GRAPH_H

#include "pyfront/SymbolTable.h"

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace typilus {

/// The four node categories of the Typilus graph (Sec. 5.1).
enum class NodeCategory {
  Token,       ///< A raw lexeme of the program.
  NonTerminal, ///< A syntax-tree node.
  Vocabulary,  ///< A unique subtoken shared by all identifiers containing it.
  SymbolNode,  ///< A unique symbol-table entry ("supernode").
};

/// The eight edge labels of Table 1.
enum class EdgeLabel {
  NextToken,
  Child,
  NextMayUse,
  NextLexicalUse,
  AssignedFrom,
  ReturnsTo,
  OccurrenceOf,
  SubtokenOf,
};

inline constexpr size_t NumEdgeLabels = 8;

/// Returns the paper's name for \p L, e.g. "NEXT_TOKEN".
const char *edgeLabelName(EdgeLabel L);

/// One graph node. `Label` carries the identifier information that Eq. 7
/// turns into the initial node state.
struct GraphNode {
  NodeCategory Category = NodeCategory::Token;
  std::string Label;
  int SymbolId = -1; ///< For SymbolNode: id in the file's SymbolTable.
  int TokenIdx = -1; ///< For Token: index into ParsedFile::Tokens.
};

/// A directed labelled edge.
struct GraphEdge {
  int Src = -1;
  int Dst = -1;
  EdgeLabel Label = EdgeLabel::NextToken;
};

/// A prediction target: one symbol supernode plus its ground truth.
struct Supernode {
  int NodeIdx = -1; ///< Graph node index of the symbol node.
  int SymbolId = -1;
  SymbolKind Kind = SymbolKind::Variable;
  std::string Name;
  std::string AnnotationText; ///< Ground truth ("" when unannotated).
};

/// The whole-file program graph.
struct TypilusGraph {
  std::vector<GraphNode> Nodes;
  std::vector<GraphEdge> Edges;
  std::vector<Supernode> Supernodes;

  size_t numNodes() const { return Nodes.size(); }
  size_t numEdges() const { return Edges.size(); }

  /// Edge count per label (Table 1 statistics).
  std::array<size_t, NumEdgeLabels> edgeCounts() const;
};

/// Which edge families to include; the Table 4 ablations toggle these.
struct GraphBuildOptions {
  bool IncludeNextToken = true;
  bool IncludeChild = true;
  bool IncludeNextUse = true; ///< NEXT_LEXICAL_USE and NEXT_MAY_USE.
  bool IncludeAssignedFrom = true;
  bool IncludeReturnsTo = true;
  bool IncludeOccurrenceOf = true;
  bool IncludeSubtokenOf = true;

  /// Named presets used by bench/table4_ablations.
  static GraphBuildOptions full() { return {}; }
  static GraphBuildOptions noSyntactic() {
    GraphBuildOptions O;
    O.IncludeNextToken = false;
    O.IncludeChild = false;
    return O;
  }
  static GraphBuildOptions noNextToken() {
    GraphBuildOptions O;
    O.IncludeNextToken = false;
    return O;
  }
  static GraphBuildOptions noChild() {
    GraphBuildOptions O;
    O.IncludeChild = false;
    return O;
  }
  static GraphBuildOptions noNextUse() {
    GraphBuildOptions O;
    O.IncludeNextUse = false;
    return O;
  }
};

/// Builds the Typilus graph for a parsed and symbol-resolved file.
/// Annotation tokens (flagged by the parser) are invisible to the graph.
TypilusGraph buildGraph(const ParsedFile &PF, const SymbolTable &ST,
                        const GraphBuildOptions &Opts = {});

} // namespace typilus

#endif // TYPILUS_GRAPH_GRAPH_H
