//===- knn/TypeMap.cpp - τmap, kNN indexes, Eq. 5 scoring --------------------===//

#include "knn/TypeMap.h"

#include "nn/Simd.h"
#include "support/Float16.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>

using namespace typilus;

const char *typilus::markerStoreName(MarkerStore S) {
  switch (S) {
  case MarkerStore::F32:
    return "f32";
  case MarkerStore::F16:
    return "f16";
  case MarkerStore::Int8:
    return "int8";
  }
  return "f32";
}

bool typilus::parseMarkerStore(std::string_view Name, MarkerStore *Out) {
  if (Name == "f32")
    *Out = MarkerStore::F32;
  else if (Name == "f16")
    *Out = MarkerStore::F16;
  else if (Name == "int8")
    *Out = MarkerStore::Int8;
  else
    return false;
  return true;
}

std::vector<ScoredType> typilus::scoreNeighbors(const TypeMap &Map,
                                                const NeighborList &Neighbors,
                                                double P) {
  // One pass over the neighbours; the distinct types (a handful for k~10)
  // accumulate in a flat array scanned linearly — no tree map, no rescans.
  std::vector<ScoredType> Result;
  Result.reserve(Neighbors.size());
  double Z = 0;
  for (auto [Idx, Dist] : Neighbors) {
    double W = std::pow(std::max(static_cast<double>(Dist), 1e-6), -P);
    TypeRef T = Map.type(static_cast<size_t>(Idx));
    Z += W;
    auto It = std::find_if(Result.begin(), Result.end(),
                           [T](const ScoredType &S) { return S.Type == T; });
    if (It == Result.end())
      Result.push_back(ScoredType{T, W});
    else
      It->Prob += W;
  }
  for (ScoredType &S : Result)
    S.Prob = Z > 0 ? S.Prob / Z : 0;
  std::sort(Result.begin(), Result.end(),
            [](const ScoredType &A, const ScoredType &B) {
              if (A.Prob != B.Prob)
                return A.Prob > B.Prob;
              return A.Type->str() < B.Type->str(); // deterministic ties
            });
  return Result;
}

//===----------------------------------------------------------------------===//
// TypeMap: storage, dedup, quantization
//===----------------------------------------------------------------------===//

float TypeMap::coord(size_t I, int Dim) const {
  size_t At = I * static_cast<size_t>(D) + static_cast<size_t>(Dim);
  switch (Store) {
  case MarkerStore::F32:
    return Flat[At];
  case MarkerStore::F16:
    return f16BitsToF32(FlatF16[At]);
  case MarkerStore::Int8:
    return Scales[I] * static_cast<float>(FlatI8[At]);
  }
  return 0.f;
}

void TypeMap::decodeEmbedding(size_t I, float *Out) const {
  size_t Base = I * static_cast<size_t>(D);
  switch (Store) {
  case MarkerStore::F32:
    std::memcpy(Out, Flat.data() + Base, static_cast<size_t>(D) * 4);
    return;
  case MarkerStore::F16:
    for (int K = 0; K != D; ++K)
      Out[K] = f16BitsToF32(FlatF16[Base + static_cast<size_t>(K)]);
    return;
  case MarkerStore::Int8:
    for (int K = 0; K != D; ++K)
      Out[K] =
          Scales[I] * static_cast<float>(FlatI8[Base + static_cast<size_t>(K)]);
    return;
  }
}

float TypeMap::l1DistanceTo(const float *Q, size_t I) const {
  const nn::simd::KernelTable &KT = nn::simd::active();
  size_t Base = I * static_cast<size_t>(D);
  switch (Store) {
  case MarkerStore::F32:
    return KT.L1(Q, Flat.data() + Base, D);
  case MarkerStore::F16:
    return KT.L1F16(Q, FlatF16.data() + Base, D);
  case MarkerStore::Int8:
    return KT.L1I8(Q, FlatI8.data() + Base, Scales[I], D);
  }
  return 0.f;
}

uint64_t TypeMap::rowHash(const void *Row, size_t NumBytes, float Scale,
                          TypeRef T) const {
  uint64_t H = 0xCBF29CE484222325ull;
  auto Mix = [&H](const void *Data, size_t N) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != N; ++I) {
      H ^= P[I];
      H *= 0x100000001B3ull;
    }
  };
  if (Store == MarkerStore::Int8)
    Mix(&Scale, sizeof(Scale));
  Mix(Row, NumBytes);
  H ^= reinterpret_cast<uintptr_t>(T);
  H *= 0x100000001B3ull;
  return H;
}

uint64_t TypeMap::storedHash(size_t I) const {
  size_t Base = I * static_cast<size_t>(D);
  switch (Store) {
  case MarkerStore::F32:
    return rowHash(Flat.data() + Base, static_cast<size_t>(D) * 4, 0.f,
                   Types[I]);
  case MarkerStore::F16:
    return rowHash(FlatF16.data() + Base, static_cast<size_t>(D) * 2, 0.f,
                   Types[I]);
  case MarkerStore::Int8:
    return rowHash(FlatI8.data() + Base, static_cast<size_t>(D), Scales[I],
                   Types[I]);
  }
  return 0;
}

void TypeMap::rebuildDedupIndex() {
  // Re-key over the current markers (which may include duplicates when a
  // pre-compaction artifact was loaded — first occurrences win, so later
  // adds dedupe against the loaded content without altering it).
  DedupIndex.clear();
  DedupIndexStale = false;
  size_t RowBytes = static_cast<size_t>(D) *
                    (Store == MarkerStore::F32   ? 4
                     : Store == MarkerStore::F16 ? 2
                                                 : 1);
  auto RowPtr = [this](size_t I) -> const void * {
    size_t Base = I * static_cast<size_t>(D);
    switch (Store) {
    case MarkerStore::F32:
      return Flat.data() + Base;
    case MarkerStore::F16:
      return FlatF16.data() + Base;
    case MarkerStore::Int8:
      return FlatI8.data() + Base;
    }
    return nullptr;
  };
  for (size_t I = 0; I != Types.size(); ++I) {
    std::vector<int> &Bucket = DedupIndex[storedHash(I)];
    bool Seen = false;
    for (int J : Bucket)
      if (Types[static_cast<size_t>(J)] == Types[I] &&
          (Store != MarkerStore::Int8 ||
           Scales[static_cast<size_t>(J)] == Scales[I]) &&
          std::memcmp(RowPtr(static_cast<size_t>(J)), RowPtr(I), RowBytes) ==
              0) {
        Seen = true;
        break;
      }
    if (!Seen)
      Bucket.push_back(static_cast<int>(I));
  }
}

float TypeMap::encodeI8Row(const float *Src, int8_t *Dst) const {
  float MaxAbs = 0.f;
  for (int K = 0; K != D; ++K)
    MaxAbs = std::max(MaxAbs, std::fabs(Src[K]));
  // All-zero (or non-finite-free degenerate) rows get scale 0 and all-zero
  // codes; decode reproduces them exactly.
  float Scale = MaxAbs == 0.f ? 0.f : MaxAbs / 127.f;
  for (int K = 0; K != D; ++K) {
    long Q = Scale == 0.f ? 0 : std::lround(Src[K] / Scale);
    Dst[K] = static_cast<int8_t>(std::min(127l, std::max(-127l, Q)));
  }
  return Scale;
}

int TypeMap::fileIdFor(std::string_view FileTag) {
  if (FileTag.empty())
    return -1;
  auto It = FileIdOf.find(std::string(FileTag));
  if (It != FileIdOf.end())
    return It->second;
  int Id = static_cast<int>(FileTags.size());
  FileTags.emplace_back(FileTag);
  FileIdOf.emplace(FileTags.back(), Id);
  return Id;
}

void TypeMap::tagRow(size_t I, int FileId) {
  FileOf[I] = FileId;
  if (FileId < 0)
    return;
  std::vector<int> &Rows = RowsOfFile[FileId];
  // Appends during a bulk fill are already ascending; resurrection can
  // land mid-list, so keep the list sorted with an ordered insert.
  auto At = std::lower_bound(Rows.begin(), Rows.end(), static_cast<int>(I));
  if (At == Rows.end() || *At != static_cast<int>(I))
    Rows.insert(At, static_cast<int>(I));
}

std::string_view TypeMap::fileTag(size_t I) const {
  int Id = FileOf[I];
  return Id < 0 ? std::string_view() : std::string_view(FileTags[Id]);
}

std::vector<int> TypeMap::markersForFile(std::string_view FileTag) const {
  auto It = FileIdOf.find(std::string(FileTag));
  if (It == FileIdOf.end())
    return {};
  auto Rows = RowsOfFile.find(It->second);
  return Rows == RowsOfFile.end() ? std::vector<int>() : Rows->second;
}

size_t TypeMap::removeMarkersForFile(std::string_view FileTag) {
  auto It = FileIdOf.find(std::string(FileTag));
  if (It == FileIdOf.end())
    return 0;
  auto Rows = RowsOfFile.find(It->second);
  if (Rows == RowsOfFile.end())
    return 0;
  size_t Removed = 0;
  for (int I : Rows->second)
    if (!Dead[static_cast<size_t>(I)]) {
      Dead[static_cast<size_t>(I)] = 1;
      ++NumDead;
      ++Removed;
    }
  // The file no longer owns live rows; a dead row re-tags on resurrection.
  RowsOfFile.erase(Rows);
  return Removed;
}

bool TypeMap::compact() {
  if (NumDead == 0)
    return false;
  size_t Next = 0;
  for (size_t I = 0; I != Types.size(); ++I) {
    if (Dead[I])
      continue;
    if (Next != I) {
      size_t DstBase = Next * static_cast<size_t>(D);
      size_t SrcBase = I * static_cast<size_t>(D);
      switch (Store) {
      case MarkerStore::F32:
        std::memmove(Flat.data() + DstBase, Flat.data() + SrcBase,
                     static_cast<size_t>(D) * 4);
        break;
      case MarkerStore::F16:
        std::memmove(FlatF16.data() + DstBase, FlatF16.data() + SrcBase,
                     static_cast<size_t>(D) * 2);
        break;
      case MarkerStore::Int8:
        std::memmove(FlatI8.data() + DstBase, FlatI8.data() + SrcBase,
                     static_cast<size_t>(D));
        Scales[Next] = Scales[I];
        break;
      }
      Types[Next] = Types[I];
      FileOf[Next] = FileOf[I];
    }
    ++Next;
  }
  size_t Coords = Next * static_cast<size_t>(D);
  switch (Store) {
  case MarkerStore::F32:
    Flat.resize(Coords);
    break;
  case MarkerStore::F16:
    FlatF16.resize(Coords);
    break;
  case MarkerStore::Int8:
    FlatI8.resize(Coords);
    Scales.resize(Next);
    break;
  }
  Types.resize(Next);
  FileOf.resize(Next);
  Dead.assign(Next, 0);
  NumDead = 0;
  RowsOfFile.clear();
  for (size_t I = 0; I != FileOf.size(); ++I)
    if (FileOf[I] >= 0)
      RowsOfFile[FileOf[I]].push_back(static_cast<int>(I));
  DedupIndex.clear();
  DedupIndexStale = true;
  return true;
}

bool TypeMap::add(const float *Embedding, TypeRef T) {
  return add(Embedding, T, std::string_view());
}

bool TypeMap::add(const float *Embedding, TypeRef T,
                  std::string_view FileTag) {
  if (DedupIndexStale)
    rebuildDedupIndex();
  // Encode the candidate into the store's representation first; dedup
  // compares encoded rows, so post-rounding collisions also collapse.
  std::vector<uint16_t> EncF16;
  std::vector<int8_t> EncI8;
  float Scale = 0.f;
  const void *Row = Embedding;
  size_t RowBytes = static_cast<size_t>(D) * 4;
  if (Store == MarkerStore::F16) {
    EncF16.resize(static_cast<size_t>(D));
    for (int K = 0; K != D; ++K)
      EncF16[static_cast<size_t>(K)] = f32ToF16Bits(Embedding[K]);
    Row = EncF16.data();
    RowBytes = static_cast<size_t>(D) * 2;
  } else if (Store == MarkerStore::Int8) {
    EncI8.resize(static_cast<size_t>(D));
    Scale = encodeI8Row(Embedding, EncI8.data());
    Row = EncI8.data();
    RowBytes = static_cast<size_t>(D);
  }
  auto StoredRow = [this](size_t I) -> const void * {
    size_t Base = I * static_cast<size_t>(D);
    switch (Store) {
    case MarkerStore::F32:
      return Flat.data() + Base;
    case MarkerStore::F16:
      return FlatF16.data() + Base;
    case MarkerStore::Int8:
      return FlatI8.data() + Base;
    }
    return nullptr;
  };
  std::vector<int> &Bucket = DedupIndex[rowHash(Row, RowBytes, Scale, T)];
  for (int I : Bucket)
    if (Types[static_cast<size_t>(I)] == T &&
        (Store != MarkerStore::Int8 ||
         Scales[static_cast<size_t>(I)] == Scale) &&
        std::memcmp(StoredRow(static_cast<size_t>(I)), Row, RowBytes) == 0) {
      if (Dead[static_cast<size_t>(I)]) {
        // Resurrect the tombstoned row in place: the marker layout (row
        // index, bytes, order) is exactly what it was before the removal,
        // so every index over the map — and every prediction — is
        // bit-identical to the pre-removal state.
        Dead[static_cast<size_t>(I)] = 0;
        --NumDead;
        tagRow(static_cast<size_t>(I), fileIdFor(FileTag));
        return true;
      }
      ++Dropped;
      return false;
    }
  Bucket.push_back(static_cast<int>(Types.size()));
  switch (Store) {
  case MarkerStore::F32:
    Flat.insert(Flat.end(), Embedding, Embedding + D);
    break;
  case MarkerStore::F16:
    FlatF16.insert(FlatF16.end(), EncF16.begin(), EncF16.end());
    break;
  case MarkerStore::Int8:
    FlatI8.insert(FlatI8.end(), EncI8.begin(), EncI8.end());
    Scales.push_back(Scale);
    break;
  }
  Types.push_back(T);
  FileOf.push_back(-1);
  Dead.push_back(0);
  tagRow(Types.size() - 1, fileIdFor(FileTag));
  return true;
}

void TypeMap::quantize(MarkerStore NewStore) {
  if (NewStore == Store)
    return;
  assert(Store == MarkerStore::F32 &&
         "quantize converts a freshly built f32 map; re-quantization of an "
         "already-quantized store is lossy-on-lossy and unsupported");
  assert(NumDead == 0 && "compact() before quantize()");
  size_t N = Types.size();
  if (NewStore == MarkerStore::F16) {
    // Software RNE encode always (support/Float16.h), so the artifact
    // bytes do not depend on the host's F16C availability.
    FlatF16.resize(Flat.size());
    for (size_t I = 0; I != Flat.size(); ++I)
      FlatF16[I] = f32ToF16Bits(Flat[I]);
  } else {
    FlatI8.resize(Flat.size());
    Scales.resize(N);
    for (size_t I = 0; I != N; ++I)
      Scales[I] =
          encodeI8Row(Flat.data() + I * static_cast<size_t>(D),
                      FlatI8.data() + I * static_cast<size_t>(D));
  }
  Flat.clear();
  Flat.shrink_to_fit();
  Store = NewStore;
  // Rounding can merge rows that were distinct in f32; the index keys are
  // stale either way.
  DedupIndex.clear();
  DedupIndexStale = true;
}

size_t TypeMap::subsampleCoreset(size_t MaxMarkers) {
  assert(Store == MarkerStore::F32 &&
         "subsample before quantize: k-center needs the exact coordinates");
  assert(NumDead == 0 && "compact() before subsampling");
  if (MaxMarkers == 0 || Types.size() <= MaxMarkers)
    return Types.size();

  // Group marker indices by type, in first-occurrence order of the types
  // (NOT interned-pointer order, which varies run to run).
  std::vector<TypeRef> TypeOrder;
  std::unordered_map<TypeRef, std::vector<int>> Groups;
  for (size_t I = 0; I != Types.size(); ++I) {
    std::vector<int> &G = Groups[Types[I]];
    if (G.empty())
      TypeOrder.push_back(Types[I]);
    G.push_back(static_cast<int>(I));
  }

  // Budget: one marker per type while the budget lasts (first-occurrence
  // order decides who misses out when MaxMarkers < #types), then the
  // remainder proportionally to each type's excess markers, leftovers
  // round-robin in type order.
  size_t NumTypes = TypeOrder.size();
  std::vector<size_t> Alloc(NumTypes, 0);
  size_t SumExcess = 0;
  for (size_t G = 0; G != NumTypes; ++G) {
    if (G < MaxMarkers)
      Alloc[G] = 1;
    SumExcess += Groups[TypeOrder[G]].size() - 1;
  }
  if (MaxMarkers > NumTypes && SumExcess > 0) {
    size_t Extra = MaxMarkers - NumTypes;
    size_t Given = 0;
    for (size_t G = 0; G != NumTypes; ++G) {
      size_t Excess = Groups[TypeOrder[G]].size() - 1;
      size_t Share = std::min(Excess, Extra * Excess / SumExcess);
      Alloc[G] += Share;
      Given += Share;
    }
    // Flooring leaves a few slots; hand them out one at a time to groups
    // that can still grow.
    while (Given < Extra) {
      bool Any = false;
      for (size_t G = 0; G != NumTypes && Given < Extra; ++G)
        if (Alloc[G] < Groups[TypeOrder[G]].size()) {
          ++Alloc[G];
          ++Given;
          Any = true;
        }
      if (!Any)
        break;
    }
  }

  // Greedy k-center within each type: seed with the type's first marker,
  // then repeatedly take the marker farthest (L1) from the chosen set.
  std::vector<int> Kept;
  Kept.reserve(MaxMarkers);
  for (size_t G = 0; G != NumTypes; ++G) {
    const std::vector<int> &Items = Groups[TypeOrder[G]];
    size_t Want = std::min(Alloc[G], Items.size());
    if (Want == 0)
      continue;
    if (Want == Items.size()) {
      Kept.insert(Kept.end(), Items.begin(), Items.end());
      continue;
    }
    std::vector<float> MinDist(Items.size(),
                               std::numeric_limits<float>::max());
    std::vector<char> Chosen(Items.size(), 0);
    size_t Last = 0;
    Chosen[0] = 1;
    Kept.push_back(Items[0]);
    for (size_t Picked = 1; Picked != Want; ++Picked) {
      const float *C =
          embedding(static_cast<size_t>(Items[Last]));
      size_t Best = SIZE_MAX;
      float BestDist = -1.f;
      for (size_t I = 0; I != Items.size(); ++I) {
        if (Chosen[I])
          continue;
        float Dist = l1DistanceTo(C, static_cast<size_t>(Items[I]));
        if (Dist < MinDist[I])
          MinDist[I] = Dist;
        // Strict > keeps ties on the lowest index — deterministic.
        if (MinDist[I] > BestDist) {
          BestDist = MinDist[I];
          Best = I;
        }
      }
      if (Best == SIZE_MAX)
        break;
      Chosen[Best] = 1;
      Kept.push_back(Items[Best]);
      Last = Best;
    }
  }

  // Rebuild in original marker order so survivors keep their relative
  // layout (and the result is independent of the per-type pick order).
  std::sort(Kept.begin(), Kept.end());
  std::vector<float> NewFlat;
  NewFlat.reserve(Kept.size() * static_cast<size_t>(D));
  std::vector<TypeRef> NewTypes;
  NewTypes.reserve(Kept.size());
  std::vector<int32_t> NewFileOf;
  NewFileOf.reserve(Kept.size());
  for (int I : Kept) {
    const float *Row = embedding(static_cast<size_t>(I));
    NewFlat.insert(NewFlat.end(), Row, Row + D);
    NewTypes.push_back(Types[static_cast<size_t>(I)]);
    NewFileOf.push_back(FileOf[static_cast<size_t>(I)]);
  }
  Flat = std::move(NewFlat);
  Types = std::move(NewTypes);
  FileOf = std::move(NewFileOf);
  Dead.assign(Types.size(), 0);
  RowsOfFile.clear();
  for (size_t I = 0; I != FileOf.size(); ++I)
    if (FileOf[I] >= 0)
      RowsOfFile[FileOf[I]].push_back(static_cast<int>(I));
  DedupIndex.clear();
  DedupIndexStale = true;
  return Types.size();
}

void TypeMap::save(ArchiveWriter &W,
                   const std::map<TypeRef, int> &TypeIds) const {
  assert(NumDead == 0 &&
         "tombstones are in-memory session state: compact() before save()");
  W.writeI32(D);
  W.writeU64(Types.size());
  switch (Store) {
  case MarkerStore::F32:
    // Exactly the historical byte stream — f32 artifacts stay
    // bit-identical across this change.
    W.writeF32Array(Flat.data(), Flat.size());
    break;
  case MarkerStore::F16:
    W.writeU16Array(FlatF16.data(), FlatF16.size());
    break;
  case MarkerStore::Int8:
    W.writeF32Array(Scales.data(), Scales.size());
    W.writeBytes(FlatI8.data(), FlatI8.size());
    break;
  }
  for (TypeRef T : Types)
    W.writeI32(TypeIds.at(T));
}

bool TypeMap::load(ArchiveCursor &C, const std::vector<TypeRef> &ById,
                   std::string *Err, MarkerStore S) {
  int32_t Dim = C.readI32();
  uint64_t Count = C.readU64();
  // Bound the marker count against the payload before any allocation, so
  // no adversarial count/dim pair can overflow the byte-size comparison
  // (same policy as nn::readTensor). Every marker costs its coordinate
  // bytes plus a 4-byte type id (plus the int8 scale).
  uint64_t CoordBytes = S == MarkerStore::F32   ? 4
                        : S == MarkerStore::F16 ? 2
                                                : 1;
  if (!C.ok() || Dim <= 0) {
    if (Err && Err->empty())
      *Err = "malformed type-map snapshot";
    return false;
  }
  uint64_t PerMarker = static_cast<uint64_t>(Dim) * CoordBytes + 4 +
                       (S == MarkerStore::Int8 ? 4 : 0);
  if (Count > C.remaining() / PerMarker) {
    if (Err && Err->empty())
      *Err = "malformed type-map snapshot";
    return false;
  }
  size_t Coords = static_cast<size_t>(Count) * static_cast<size_t>(Dim);
  std::vector<float> NewFlat;
  std::vector<uint16_t> NewF16;
  std::vector<int8_t> NewI8;
  std::vector<float> NewScales;
  switch (S) {
  case MarkerStore::F32:
    NewFlat.resize(Coords);
    C.readF32Array(NewFlat.data(), NewFlat.size());
    break;
  case MarkerStore::F16:
    NewF16.resize(Coords);
    C.readU16Array(NewF16.data(), NewF16.size());
    break;
  case MarkerStore::Int8:
    NewScales.resize(static_cast<size_t>(Count));
    C.readF32Array(NewScales.data(), NewScales.size());
    NewI8.resize(Coords);
    C.readBytes(NewI8.data(), NewI8.size());
    break;
  }
  std::vector<TypeRef> NewTypes;
  NewTypes.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I != Count; ++I) {
    int Idx = C.readI32();
    if (!C.ok() || Idx < 0 || static_cast<size_t>(Idx) >= ById.size()) {
      if (Err && Err->empty())
        *Err = "type-map marker references a type outside the type table";
      return false;
    }
    NewTypes.push_back(ById[static_cast<size_t>(Idx)]);
  }
  D = Dim;
  Store = S;
  Flat = std::move(NewFlat);
  FlatF16 = std::move(NewF16);
  FlatI8 = std::move(NewI8);
  Scales = std::move(NewScales);
  Types = std::move(NewTypes);
  // Tags and tombstones are never serialized: a loaded snapshot starts
  // with every marker live and untagged.
  FileOf.assign(Types.size(), -1);
  Dead.assign(Types.size(), 0);
  NumDead = 0;
  FileTags.clear();
  FileIdOf.clear();
  RowsOfFile.clear();
  // Loading stays a pure byte copy: the dedup index is marked stale and
  // rebuilt by the first add() — serving processes, which never insert,
  // never pay the O(N·D) re-keying or hold the index at all.
  DedupIndex.clear();
  DedupIndexStale = true;
  Dropped = 0;
  return true;
}

//===----------------------------------------------------------------------===//
// kNN indexes
//===----------------------------------------------------------------------===//

namespace {

/// The one neighbour order every index agrees on: (distance, index)
/// ascending — a *total* order (indices are distinct), so the top-k set
/// and its sorted layout are uniquely determined however they were
/// selected. That is what makes the blocked bounded-heap engine
/// bit-identical to the historical partial_sort.
inline bool neighborLess(const std::pair<int, float> &A,
                         const std::pair<int, float> &B) {
  if (A.second != B.second)
    return A.second < B.second;
  return A.first < B.first;
}

/// Marker rows per streamed tile: one tile's coordinates stay resident
/// while every query of the block scans it, so a query block reads the
/// marker array once from memory instead of once per query.
constexpr size_t kMarkerTile = 256;
/// Queries per block — also queryBatch's parallelFor grain, so tiny
/// batches form a handful of tile-sized tasks instead of one per query.
constexpr int64_t kQueryTile = 16;

/// Bounded max-heap push: keeps the K smallest candidates under
/// neighborLess, worst on top.
inline void pushBounded(NeighborList &H, int K, std::pair<int, float> Cand) {
  if (static_cast<int>(H.size()) < K) {
    H.push_back(Cand);
    std::push_heap(H.begin(), H.end(), neighborLess);
  } else if (neighborLess(Cand, H.front())) {
    std::pop_heap(H.begin(), H.end(), neighborLess);
    H.back() = Cand;
    std::push_heap(H.begin(), H.end(), neighborLess);
  }
}

} // namespace

void ExactIndex::queryBlock(const float *Qs, int64_t QBegin, int64_t QEnd,
                            int K, std::vector<NeighborList> &Heaps,
                            std::vector<NeighborList> &Results) const {
  const nn::simd::KernelTable &KT = nn::simd::active();
  const int64_t D = Map.dim();
  const size_t N = Map.size();
  const size_t NumQ = static_cast<size_t>(QEnd - QBegin);
  if (K <= 0)
    return; // Results entries stay default-empty, like the legacy Keep=0.
  if (Heaps.size() < NumQ)
    Heaps.resize(NumQ);
  for (size_t Q = 0; Q != NumQ; ++Q) {
    Heaps[Q].clear();
    Heaps[Q].reserve(static_cast<size_t>(K));
  }
  // Hoist the store dispatch out of the tile bodies: raw arrays + the
  // active kernel table, fetched once per block.
  const MarkerStore Store = Map.store();
  const float *F32 = Map.rawF32();
  const uint16_t *F16 = Map.rawF16();
  const int8_t *I8 = Map.rawI8();
  const float *Scales = Map.rawI8Scales();
  for (size_t MB = 0; MB < N; MB += kMarkerTile) {
    const size_t ME = std::min(N, MB + kMarkerTile);
    for (size_t Q = 0; Q != NumQ; ++Q) {
      const float *Query = Qs + (QBegin + static_cast<int64_t>(Q)) * D;
      NeighborList &H = Heaps[Q];
      switch (Store) {
      case MarkerStore::F32:
        for (size_t I = MB; I != ME; ++I)
          if (Map.isLive(I))
            pushBounded(H, K,
                        {static_cast<int>(I),
                         KT.L1(Query, F32 + I * static_cast<size_t>(D), D)});
        break;
      case MarkerStore::F16:
        for (size_t I = MB; I != ME; ++I)
          if (Map.isLive(I))
            pushBounded(
                H, K,
                {static_cast<int>(I),
                 KT.L1F16(Query, F16 + I * static_cast<size_t>(D), D)});
        break;
      case MarkerStore::Int8:
        for (size_t I = MB; I != ME; ++I)
          if (Map.isLive(I))
            pushBounded(H, K,
                        {static_cast<int>(I),
                         KT.L1I8(Query, I8 + I * static_cast<size_t>(D),
                                 Scales[I], D)});
        break;
      }
    }
  }
  for (size_t Q = 0; Q != NumQ; ++Q) {
    NeighborList &H = Heaps[Q];
    std::sort_heap(H.begin(), H.end(), neighborLess);
    Results[static_cast<size_t>(QBegin) + Q] = H;
  }
}

NeighborList ExactIndex::query(const float *Q, int K) const {
  std::vector<NeighborList> Results(1);
  std::vector<NeighborList> Heaps;
  queryBlock(Q, 0, 1, K, Heaps, Results);
  return std::move(Results.front());
}

NeighborList ExactIndex::queryLegacy(const float *Q, int K) const {
  NeighborList All;
  All.reserve(Map.size());
  for (size_t I = 0; I != Map.size(); ++I)
    if (Map.isLive(I))
      All.emplace_back(static_cast<int>(I), Map.l1DistanceTo(Q, I));
  size_t Keep = std::min<size_t>(static_cast<size_t>(K), All.size());
  std::partial_sort(All.begin(), All.begin() + static_cast<long>(Keep),
                    All.end(), [](const auto &A, const auto &B) {
                      if (A.second != B.second)
                        return A.second < B.second;
                      return A.first < B.first;
                    });
  All.resize(Keep);
  return All;
}

std::vector<NeighborList> ExactIndex::queryBatch(const float *Qs,
                                                 int64_t NumQueries, int K,
                                                 int MaxWays) const {
  std::vector<NeighborList> Results(static_cast<size_t>(NumQueries));
  parallelFor(
      0, NumQueries, kQueryTile,
      [&](int64_t Lo, int64_t Hi) {
        // Per-chunk scratch: the block heaps are reused across every
        // query tile of this chunk — no per-query allocation at all.
        std::vector<NeighborList> Heaps;
        for (int64_t QB = Lo; QB < Hi; QB += kQueryTile)
          queryBlock(Qs, QB, std::min(Hi, QB + kQueryTile), K, Heaps,
                     Results);
      },
      MaxWays);
  return Results;
}

AnnoyIndex::AnnoyIndex(const TypeMap &Map, int NumTrees, int LeafSize,
                       uint64_t Seed, int MaxWays)
    : Map(Map), LeafSize(LeafSize), NumIndexed(Map.size()) {
  // Derive an independent stream per tree up front; tree T's shape is then
  // a function of (Map, Seed, T) alone, so building the forest one pool
  // task per tree yields exactly the serial forest.
  Rng Base(Seed);
  std::vector<Rng> TreeRngs;
  TreeRngs.reserve(static_cast<size_t>(NumTrees));
  for (int T = 0; T != NumTrees; ++T)
    TreeRngs.push_back(Base.fork(static_cast<uint64_t>(T)));

  std::vector<int> All(Map.size());
  for (size_t I = 0; I != Map.size(); ++I)
    All[I] = static_cast<int>(I);

  std::vector<std::vector<BuildNode>> TreeNodes(
      static_cast<size_t>(NumTrees));
  std::vector<int> TreeRoots(static_cast<size_t>(NumTrees), -1);
  parallelFor(
      0, NumTrees, 1,
      [&](int64_t Lo, int64_t Hi) {
        for (int64_t T = Lo; T != Hi; ++T)
          TreeRoots[static_cast<size_t>(T)] =
              buildTree(TreeNodes[static_cast<size_t>(T)], All,
                        TreeRngs[static_cast<size_t>(T)], 0);
      },
      MaxWays);

  // Merge the per-tree node arrays, rebasing child links.
  size_t Total = 0;
  for (const auto &TN : TreeNodes)
    Total += TN.size();
  Nodes.reserve(Total);
  Roots.reserve(static_cast<size_t>(NumTrees));
  for (int T = 0; T != NumTrees; ++T) {
    int Offset = static_cast<int>(Nodes.size());
    for (BuildNode &N : TreeNodes[static_cast<size_t>(T)]) {
      if (N.Left >= 0)
        N.Left += Offset;
      if (N.Right >= 0)
        N.Right += Offset;
      Nodes.push_back(std::move(N));
    }
    Roots.push_back(TreeRoots[static_cast<size_t>(T)] + Offset);
  }
}

static_assert(sizeof(int) == 4,
              "index snapshots store adjacency as raw i32 runs");

void AnnoyIndex::save(ArchiveWriter &W) const {
  W.writeI32(LeafSize);
  W.writeU64(Nodes.size());
  for (const BuildNode &N : Nodes) {
    W.writeI32(N.SplitDim);
    W.writeF32(N.Threshold);
    W.writeI32(N.Left);
    W.writeI32(N.Right);
    W.writeU64(N.Items.size());
    // The leaf-item runs are the bulk of a forest snapshot; the array
    // writer's LE fast path emits the same bytes as the historical
    // per-item writeI32 loop in one append.
    W.writeI32Array(reinterpret_cast<const int32_t *>(N.Items.data()),
                    N.Items.size());
  }
  W.writeU64(Roots.size());
  W.writeI32Array(reinterpret_cast<const int32_t *>(Roots.data()),
                  Roots.size());
}

std::unique_ptr<AnnoyIndex> AnnoyIndex::load(ArchiveCursor &C,
                                             const TypeMap &Map,
                                             std::string *Err) {
  auto Fail = [&](const char *Why) {
    if (Err && Err->empty())
      *Err = std::string("malformed kNN index snapshot: ") + Why;
    return nullptr;
  };
  std::unique_ptr<AnnoyIndex> Idx(new AnnoyIndex(Map, LoadShellTag{}));
  Idx->NumIndexed = Map.size();
  Idx->LeafSize = C.readI32();
  uint64_t NumNodes = C.readU64();
  if (!C.ok() || NumNodes > C.remaining())
    return Fail("node count");
  Idx->Nodes.reserve(static_cast<size_t>(NumNodes));
  for (uint64_t I = 0; I != NumNodes; ++I) {
    BuildNode N;
    N.SplitDim = C.readI32();
    N.Threshold = C.readF32();
    N.Left = C.readI32();
    N.Right = C.readI32();
    uint64_t NumItems = C.readU64();
    if (!C.ok() || NumItems > C.remaining())
      return Fail("leaf payload");
    bool IsLeaf = N.SplitDim < 0;
    // buildTree appends children after their parent, so valid links are
    // strictly increasing; enforcing that here also rules out cycles (a
    // crafted self-link would otherwise make query() loop forever).
    if (!IsLeaf &&
        (N.SplitDim >= Map.dim() || static_cast<uint64_t>(N.Left) <= I ||
         static_cast<uint64_t>(N.Right) <= I || N.Left < 0 || N.Right < 0 ||
         static_cast<uint64_t>(N.Left) >= NumNodes ||
         static_cast<uint64_t>(N.Right) >= NumNodes))
      return Fail("split node links");
    N.Items.resize(static_cast<size_t>(NumItems));
    // Bulk read, then validate: same acceptance set as the historical
    // per-item loop, one bounds-checked copy instead of NumItems reads.
    C.readI32Array(reinterpret_cast<int32_t *>(N.Items.data()),
                   N.Items.size());
    if (!C.ok())
      return Fail("leaf payload");
    for (int It : N.Items)
      if (It < 0 || static_cast<size_t>(It) >= Map.size())
        return Fail("leaf item out of range");
    Idx->Nodes.push_back(std::move(N));
  }
  uint64_t NumRoots = C.readU64();
  if (!C.ok() || NumRoots > C.remaining())
    return Fail("root count");
  Idx->Roots.resize(static_cast<size_t>(NumRoots));
  C.readI32Array(reinterpret_cast<int32_t *>(Idx->Roots.data()),
                 Idx->Roots.size());
  if (!C.ok())
    return Fail("root count");
  for (int R : Idx->Roots)
    if (R < 0 || static_cast<uint64_t>(R) >= NumNodes)
      return Fail("root out of range");
  return Idx;
}

int AnnoyIndex::buildTree(std::vector<BuildNode> &Out, std::vector<int> Items,
                          Rng &R, int Depth) const {
  int Idx = static_cast<int>(Out.size());
  Out.emplace_back();
  if (static_cast<int>(Items.size()) <= LeafSize || Depth > 24) {
    Out[static_cast<size_t>(Idx)].Items = std::move(Items);
    return Idx;
  }
  // Annoy-style split: pick two random markers; split on the coordinate
  // where they are furthest apart, at their midpoint. Coordinates decode
  // through the store, so quantized maps grow the same kind of forest
  // (over their rounded coordinates).
  int D = Map.dim();
  size_t IA = static_cast<size_t>(Items[R.uniformInt(Items.size())]);
  size_t IB = static_cast<size_t>(Items[R.uniformInt(Items.size())]);
  int BestDim = 0;
  float BestSpread = -1;
  float ABest = 0, BBest = 0;
  for (int I = 0; I != D; ++I) {
    float AC = Map.coord(IA, I), BC = Map.coord(IB, I);
    float Spread = std::fabs(AC - BC);
    if (Spread > BestSpread) {
      BestSpread = Spread;
      BestDim = I;
      ABest = AC;
      BBest = BC;
    }
  }
  float Threshold = 0.5f * (ABest + BBest);
  std::vector<int> Left, Right;
  for (int It : Items) {
    if (Map.coord(static_cast<size_t>(It), BestDim) < Threshold)
      Left.push_back(It);
    else
      Right.push_back(It);
  }
  // Degenerate split (identical points): make a leaf.
  if (Left.empty() || Right.empty()) {
    Out[static_cast<size_t>(Idx)].Items = std::move(Items);
    return Idx;
  }
  int L = buildTree(Out, std::move(Left), R, Depth + 1);
  int Rt = buildTree(Out, std::move(Right), R, Depth + 1);
  Out[static_cast<size_t>(Idx)].SplitDim = BestDim;
  Out[static_cast<size_t>(Idx)].Threshold = Threshold;
  Out[static_cast<size_t>(Idx)].Left = L;
  Out[static_cast<size_t>(Idx)].Right = Rt;
  return Idx;
}

NeighborList AnnoyIndex::query(const float *Q, int K, int SearchK) const {
  if (Map.size() == 0)
    return {};
  if (SearchK < 0)
    SearchK = static_cast<int>(Roots.size()) * K * 4;
  // Best-first traversal over all trees: priority = margin to the split
  // plane (0 within the chosen side).
  using Entry = std::pair<float, int>; // (priority, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> Queue;
  for (int Root : Roots)
    Queue.emplace(0.f, Root);
  std::vector<char> Seen(Map.size(), 0);
  std::vector<int> Candidates;
  while (!Queue.empty() &&
         static_cast<int>(Candidates.size()) < SearchK) {
    auto [Prio, NodeIdx] = Queue.top();
    Queue.pop();
    const BuildNode &N = Nodes[static_cast<size_t>(NodeIdx)];
    if (N.SplitDim < 0) {
      // Tombstoned rows stay in the leaves until compact(); skipping them
      // here (a no-op on a tombstone-free map) is what makes removal
      // effective without touching the forest.
      for (int It : N.Items)
        if (!Seen[static_cast<size_t>(It)]) {
          Seen[static_cast<size_t>(It)] = 1;
          if (Map.isLive(static_cast<size_t>(It)))
            Candidates.push_back(It);
        }
      continue;
    }
    float Margin = Q[N.SplitDim] - N.Threshold;
    int Near = Margin < 0 ? N.Left : N.Right;
    int Far = Margin < 0 ? N.Right : N.Left;
    Queue.emplace(Prio, Near);
    Queue.emplace(Prio + std::fabs(Margin), Far);
  }
  // Exact re-rank of the candidate union (over the stored representation).
  NeighborList Result;
  Result.reserve(Candidates.size());
  for (int It : Candidates)
    Result.emplace_back(It, Map.l1DistanceTo(Q, static_cast<size_t>(It)));
  size_t Keep = std::min<size_t>(static_cast<size_t>(K), Result.size());
  std::partial_sort(Result.begin(), Result.begin() + static_cast<long>(Keep),
                    Result.end(), [](const auto &A, const auto &B) {
                      if (A.second != B.second)
                        return A.second < B.second;
                      return A.first < B.first;
                    });
  Result.resize(Keep);
  return Result;
}

std::vector<NeighborList> AnnoyIndex::queryBatch(const float *Qs,
                                                 int64_t NumQueries, int K,
                                                 int SearchK,
                                                 int MaxWays) const {
  std::vector<NeighborList> Results(static_cast<size_t>(NumQueries));
  const int D = Map.dim();
  parallelFor(
      0, NumQueries, 1,
      [&](int64_t Lo, int64_t Hi) {
        for (int64_t I = Lo; I != Hi; ++I)
          Results[static_cast<size_t>(I)] = query(Qs + I * D, K, SearchK);
      },
      MaxWays);
  return Results;
}

//===----------------------------------------------------------------------===//
// HnswIndex
//===----------------------------------------------------------------------===//

int HnswIndex::levelFor(size_t I) const {
  // One derived stream per row: level_I depends on (Seed, I) alone, so
  // neither insertion order nor thread count can perturb the hierarchy.
  Rng R = Rng(Seed).fork(static_cast<uint64_t>(I));
  double U = R.uniformReal();
  if (U < 1e-12)
    U = 1e-12;
  double ML = 1.0 / std::log(std::max(2.0, static_cast<double>(M)));
  int L = static_cast<int>(-std::log(U) * ML);
  return std::min(L, 32);
}

void HnswIndex::distanceMany(const float *Q, const int *Ids, size_t N,
                             float *Out) const {
  // The parallel half of the build/search contract: distances fan out
  // through the pool while every *selection* over them stays sequential.
  // Each distance is bit-identical for any thread count, so the chosen
  // neighbours — and therefore the graph — do not depend on the split.
  parallelFor(
      0, static_cast<int64_t>(N), 32,
      [&](int64_t Lo, int64_t Hi) {
        for (int64_t I = Lo; I != Hi; ++I)
          Out[I] = Map.l1DistanceTo(
              Q, static_cast<size_t>(Ids[static_cast<size_t>(I)]));
      },
      MaxWays);
}

void HnswIndex::searchLayer(const float *Q, int Ep, float EpDist, int Ef,
                            int Layer, SearchScratch &S,
                            std::vector<std::pair<float, int>> &Out) const {
  // (distance, index) pairs compare lexicographically — exactly the
  // neighbour tie-break order — so every heap decision is deterministic.
  using DistIdx = std::pair<float, int>;
  std::priority_queue<DistIdx, std::vector<DistIdx>, std::greater<>> Cand;
  std::priority_queue<DistIdx> Best; // worst of the kept Ef on top
  if (S.VisitedAt.size() < Nodes.size())
    S.VisitedAt.resize(Nodes.size(), 0);
  if (++S.Epoch == 0) { // epoch wrap: reset the marks once per 2^32 queries
    std::fill(S.VisitedAt.begin(), S.VisitedAt.end(), 0u);
    S.Epoch = 1;
  }
  S.VisitedAt[static_cast<size_t>(Ep)] = S.Epoch;
  Cand.emplace(EpDist, Ep);
  Best.emplace(EpDist, Ep);
  while (!Cand.empty()) {
    DistIdx C = Cand.top();
    if (static_cast<int>(Best.size()) == Ef && Best.top() < C)
      break;
    Cand.pop();
    const std::vector<int> &Links =
        Nodes[static_cast<size_t>(C.second)].Links[static_cast<size_t>(Layer)];
    S.Frontier.clear();
    for (int E : Links)
      if (S.VisitedAt[static_cast<size_t>(E)] != S.Epoch) {
        S.VisitedAt[static_cast<size_t>(E)] = S.Epoch;
        S.Frontier.push_back(E);
      }
    S.FrontierD.resize(S.Frontier.size());
    distanceMany(Q, S.Frontier.data(), S.Frontier.size(), S.FrontierD.data());
    for (size_t I = 0; I != S.Frontier.size(); ++I) {
      DistIdx Next{S.FrontierD[I], S.Frontier[I]};
      if (static_cast<int>(Best.size()) < Ef || Next < Best.top()) {
        Cand.push(Next);
        Best.push(Next);
        if (static_cast<int>(Best.size()) > Ef)
          Best.pop();
      }
    }
  }
  Out.resize(Best.size());
  for (size_t I = Best.size(); I-- > 0;) {
    Out[I] = Best.top();
    Best.pop();
  }
}

void HnswIndex::descendLayer(const float *Q, int &Ep, float &EpDist,
                             int Layer) const {
  bool Improved = true;
  while (Improved) {
    Improved = false;
    // The range binds to the entry point the round started from; strict
    // (distance, index) improvement keeps the walk deterministic.
    for (int E : Nodes[static_cast<size_t>(Ep)]
                     .Links[static_cast<size_t>(Layer)]) {
      float Dist = Map.l1DistanceTo(Q, static_cast<size_t>(E));
      if (std::pair<float, int>(Dist, E) < std::pair<float, int>(EpDist, Ep)) {
        EpDist = Dist;
        Ep = E;
        Improved = true;
      }
    }
  }
}

void HnswIndex::shrinkLinks(int NodeId, int Layer, int MaxLinks,
                            std::vector<float> &Decode) {
  Decode.resize(static_cast<size_t>(Map.dim()));
  Map.decodeEmbedding(static_cast<size_t>(NodeId), Decode.data());
  std::vector<int> &Links =
      Nodes[static_cast<size_t>(NodeId)].Links[static_cast<size_t>(Layer)];
  std::vector<float> Ds(Links.size());
  distanceMany(Decode.data(), Links.data(), Links.size(), Ds.data());
  std::vector<std::pair<float, int>> Scored(Links.size());
  for (size_t I = 0; I != Links.size(); ++I)
    Scored[I] = {Ds[I], Links[I]};
  std::sort(Scored.begin(), Scored.end()); // (distance, index) ascending
  Links.resize(static_cast<size_t>(MaxLinks));
  for (int I = 0; I != MaxLinks; ++I)
    Links[static_cast<size_t>(I)] = Scored[static_cast<size_t>(I)].second;
}

void HnswIndex::insert(size_t I, const float *Coords, SearchScratch &S) {
  int L = Nodes[I].Level;
  Nodes[I].Links.assign(static_cast<size_t>(L) + 1, {});
  if (EntryPoint < 0) {
    EntryPoint = static_cast<int>(I);
    MaxLevel = L;
    return;
  }
  int Ep = EntryPoint;
  float EpDist = Map.l1DistanceTo(Coords, static_cast<size_t>(Ep));
  for (int Layer = MaxLevel; Layer > L; --Layer)
    descendLayer(Coords, Ep, EpDist, Layer);
  std::vector<std::pair<float, int>> Found;
  std::vector<float> Decode;
  for (int Layer = std::min(L, MaxLevel); Layer >= 0; --Layer) {
    searchLayer(Coords, Ep, EpDist, EfConstruction, Layer, S, Found);
    int MaxLinks = Layer == 0 ? 2 * M : M;
    size_t Take = std::min<size_t>(static_cast<size_t>(MaxLinks),
                                   Found.size());
    std::vector<int> &Mine = Nodes[I].Links[static_cast<size_t>(Layer)];
    for (size_t J = 0; J != Take; ++J) {
      int Nb = Found[J].second;
      Mine.push_back(Nb);
      std::vector<int> &Theirs =
          Nodes[static_cast<size_t>(Nb)].Links[static_cast<size_t>(Layer)];
      Theirs.push_back(static_cast<int>(I));
      if (static_cast<int>(Theirs.size()) > MaxLinks)
        shrinkLinks(Nb, Layer, MaxLinks, Decode);
    }
    Ep = Found.front().second;
    EpDist = Found.front().first;
  }
  if (L > MaxLevel) {
    MaxLevel = L;
    EntryPoint = static_cast<int>(I);
  }
}

HnswIndex::HnswIndex(const TypeMap &Map, int M, int EfConstruction,
                     uint64_t Seed, int MaxWays)
    : Map(Map), M(std::max(2, M)),
      EfConstruction(std::max(8, EfConstruction)), Seed(Seed),
      MaxWays(MaxWays), NumIndexed(Map.size()) {
  size_t N = Map.size();
  Nodes.resize(N);
  // Levels first (a pure per-row function), then strict row-order
  // insertion: the graph is a function of (Map, Seed) alone. Tombstoned
  // rows enter the graph like Annoy keeps them in its leaves — they
  // route, and queries filter them from results.
  for (size_t I = 0; I != N; ++I)
    Nodes[I].Level = levelFor(I);
  SearchScratch S;
  std::vector<float> Coords(static_cast<size_t>(Map.dim()));
  for (size_t I = 0; I != N; ++I) {
    Map.decodeEmbedding(I, Coords.data());
    insert(I, Coords.data(), S);
  }
}

NeighborList HnswIndex::queryWithScratch(const float *Q, int K, int EfSearch,
                                         SearchScratch &S) const {
  if (EntryPoint < 0 || K <= 0)
    return {};
  int Ef = EfSearch < 0 ? std::max(4 * K, 64) : EfSearch;
  Ef = std::max(Ef, K);
  int Ep = EntryPoint;
  float EpDist = Map.l1DistanceTo(Q, static_cast<size_t>(Ep));
  for (int Layer = MaxLevel; Layer > 0; --Layer)
    descendLayer(Q, Ep, EpDist, Layer);
  std::vector<std::pair<float, int>> Found;
  searchLayer(Q, Ep, EpDist, Ef, 0, S, Found);
  // Found is already ascending under (distance, index) with exact
  // distances; keep the first K live rows (tombstones route but never
  // surface — same contract as the other indexes).
  NeighborList Result;
  Result.reserve(std::min<size_t>(static_cast<size_t>(K), Found.size()));
  for (const auto &[Dist, Idx] : Found) {
    if (!Map.isLive(static_cast<size_t>(Idx)))
      continue;
    Result.emplace_back(Idx, Dist);
    if (static_cast<int>(Result.size()) == K)
      break;
  }
  return Result;
}

NeighborList HnswIndex::query(const float *Q, int K, int EfSearch) const {
  SearchScratch S;
  return queryWithScratch(Q, K, EfSearch, S);
}

std::vector<NeighborList> HnswIndex::queryBatch(const float *Qs,
                                                int64_t NumQueries, int K,
                                                int EfSearch,
                                                int MaxWays) const {
  std::vector<NeighborList> Results(static_cast<size_t>(NumQueries));
  const int64_t D = Map.dim();
  parallelFor(
      0, NumQueries, 8,
      [&](int64_t Lo, int64_t Hi) {
        SearchScratch S; // reused across this chunk's queries
        for (int64_t I = Lo; I != Hi; ++I)
          Results[static_cast<size_t>(I)] =
              queryWithScratch(Qs + I * D, K, EfSearch, S);
      },
      MaxWays);
  return Results;
}

void HnswIndex::save(ArchiveWriter &W) const {
  W.writeI32(M);
  W.writeI32(EfConstruction);
  W.writeU64(Seed);
  W.writeI32(EntryPoint);
  W.writeI32(MaxLevel);
  W.writeU64(Nodes.size());
  for (const Node &N : Nodes) {
    W.writeI32(N.Level);
    for (const std::vector<int> &Links : N.Links) {
      W.writeU64(Links.size());
      W.writeI32Array(reinterpret_cast<const int32_t *>(Links.data()),
                      Links.size());
    }
  }
}

std::unique_ptr<HnswIndex> HnswIndex::load(ArchiveCursor &C,
                                           const TypeMap &Map,
                                           std::string *Err) {
  auto Fail = [&](const char *Why) {
    if (Err && Err->empty())
      *Err = std::string("malformed kNN index snapshot: ") + Why;
    return nullptr;
  };
  std::unique_ptr<HnswIndex> Idx(new HnswIndex(Map, LoadShellTag{}));
  Idx->NumIndexed = Map.size();
  Idx->M = C.readI32();
  Idx->EfConstruction = C.readI32();
  Idx->Seed = C.readU64();
  Idx->EntryPoint = C.readI32();
  Idx->MaxLevel = C.readI32();
  uint64_t NumNodes = C.readU64();
  if (!C.ok() || Idx->M < 2 || Idx->EfConstruction < 1)
    return Fail("graph params");
  // Node id == τmap row id: the graph must cover exactly the snapshot's
  // markers.
  if (NumNodes != Map.size())
    return Fail("node count");
  if (NumNodes == 0) {
    if (Idx->EntryPoint != -1 || Idx->MaxLevel != -1)
      return Fail("entry point");
    return Idx;
  }
  if (Idx->EntryPoint < 0 ||
      static_cast<uint64_t>(Idx->EntryPoint) >= NumNodes ||
      Idx->MaxLevel < 0 || Idx->MaxLevel > 32)
    return Fail("entry point");
  Idx->Nodes.resize(static_cast<size_t>(NumNodes));
  for (uint64_t I = 0; I != NumNodes; ++I) {
    Node &N = Idx->Nodes[static_cast<size_t>(I)];
    N.Level = C.readI32();
    if (!C.ok() || N.Level < 0 || N.Level > Idx->MaxLevel)
      return Fail("node level");
    N.Links.resize(static_cast<size_t>(N.Level) + 1);
    for (std::vector<int> &Links : N.Links) {
      uint64_t NumLinks = C.readU64();
      if (!C.ok() || NumLinks > C.remaining())
        return Fail("adjacency payload");
      Links.resize(static_cast<size_t>(NumLinks));
      C.readI32Array(reinterpret_cast<int32_t *>(Links.data()),
                     Links.size());
      if (!C.ok())
        return Fail("adjacency payload");
      for (int E : Links)
        if (E < 0 || static_cast<uint64_t>(E) >= NumNodes ||
            static_cast<uint64_t>(E) == I)
          return Fail("adjacency out of range");
    }
  }
  if (static_cast<size_t>(Idx->MaxLevel) !=
      static_cast<size_t>(
          Idx->Nodes[static_cast<size_t>(Idx->EntryPoint)].Level))
    return Fail("entry point");
  // Cross-node invariant (checkable only once every node is in): a link
  // at layer L must reach a node that *has* a layer L, or the search
  // would walk off the target's adjacency array.
  for (const Node &N : Idx->Nodes)
    for (size_t L = 0; L != N.Links.size(); ++L)
      for (int E : N.Links[L])
        if (static_cast<size_t>(
                Idx->Nodes[static_cast<size_t>(E)].Level) < L)
          return Fail("adjacency level");
  return Idx;
}
