//===- knn/TypeMap.cpp - τmap, kNN indexes, Eq. 5 scoring --------------------===//

#include "knn/TypeMap.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <queue>

using namespace typilus;

static float l1Distance(const float *A, const float *B, int D) {
  float Sum = 0;
  for (int I = 0; I != D; ++I)
    Sum += std::fabs(A[I] - B[I]);
  return Sum;
}

std::vector<ScoredType> typilus::scoreNeighbors(const TypeMap &Map,
                                                const NeighborList &Neighbors,
                                                double P) {
  // One pass over the neighbours; the distinct types (a handful for k~10)
  // accumulate in a flat array scanned linearly — no tree map, no rescans.
  std::vector<ScoredType> Result;
  Result.reserve(Neighbors.size());
  double Z = 0;
  for (auto [Idx, Dist] : Neighbors) {
    double W = std::pow(std::max(static_cast<double>(Dist), 1e-6), -P);
    TypeRef T = Map.type(static_cast<size_t>(Idx));
    Z += W;
    auto It = std::find_if(Result.begin(), Result.end(),
                           [T](const ScoredType &S) { return S.Type == T; });
    if (It == Result.end())
      Result.push_back(ScoredType{T, W});
    else
      It->Prob += W;
  }
  for (ScoredType &S : Result)
    S.Prob = Z > 0 ? S.Prob / Z : 0;
  std::sort(Result.begin(), Result.end(),
            [](const ScoredType &A, const ScoredType &B) {
              if (A.Prob != B.Prob)
                return A.Prob > B.Prob;
              return A.Type->str() < B.Type->str(); // deterministic ties
            });
  return Result;
}

uint64_t TypeMap::markerHash(const float *Embedding, TypeRef T) const {
  // FNV-1a over the embedding's byte pattern mixed with the interned
  // type pointer (stable within a process, which is all the index needs).
  uint64_t H = 0xCBF29CE484222325ull;
  const unsigned char *P = reinterpret_cast<const unsigned char *>(Embedding);
  for (size_t I = 0, N = static_cast<size_t>(D) * sizeof(float); I != N; ++I) {
    H ^= P[I];
    H *= 0x100000001B3ull;
  }
  H ^= reinterpret_cast<uintptr_t>(T);
  H *= 0x100000001B3ull;
  return H;
}

void TypeMap::rebuildDedupIndex() {
  // Re-key over the current markers (which may include duplicates when a
  // pre-compaction artifact was loaded — first occurrences win, so later
  // adds dedupe against the loaded content without altering it).
  DedupIndex.clear();
  DedupIndexStale = false;
  for (size_t I = 0; I != Types.size(); ++I) {
    std::vector<int> &Bucket = DedupIndex[markerHash(embedding(I), Types[I])];
    bool Seen = false;
    for (int J : Bucket)
      if (Types[static_cast<size_t>(J)] == Types[I] &&
          std::memcmp(embedding(static_cast<size_t>(J)), embedding(I),
                      static_cast<size_t>(D) * sizeof(float)) == 0) {
        Seen = true;
        break;
      }
    if (!Seen)
      Bucket.push_back(static_cast<int>(I));
  }
}

bool TypeMap::add(const float *Embedding, TypeRef T) {
  if (DedupIndexStale)
    rebuildDedupIndex();
  std::vector<int> &Bucket = DedupIndex[markerHash(Embedding, T)];
  for (int I : Bucket)
    if (Types[static_cast<size_t>(I)] == T &&
        std::memcmp(embedding(static_cast<size_t>(I)), Embedding,
                    static_cast<size_t>(D) * sizeof(float)) == 0) {
      ++Dropped;
      return false;
    }
  Bucket.push_back(static_cast<int>(Types.size()));
  Flat.insert(Flat.end(), Embedding, Embedding + D);
  Types.push_back(T);
  return true;
}

void TypeMap::save(ArchiveWriter &W,
                   const std::map<TypeRef, int> &TypeIds) const {
  W.writeI32(D);
  W.writeU64(Types.size());
  W.writeF32Array(Flat.data(), Flat.size());
  for (TypeRef T : Types)
    W.writeI32(TypeIds.at(T));
}

bool TypeMap::load(ArchiveCursor &C, const std::vector<TypeRef> &ById,
                   std::string *Err) {
  int32_t Dim = C.readI32();
  uint64_t Count = C.readU64();
  // Bound each factor against the payload before multiplying, so no
  // adversarial count/dim pair can overflow the byte-size comparison
  // into an allocation (same pattern as nn::readTensor).
  uint64_t Limit = C.remaining() / 4;
  if (!C.ok() || Dim <= 0 ||
      (Count > 0 && (static_cast<uint64_t>(Dim) > Limit ||
                     Count > Limit / static_cast<uint64_t>(Dim)))) {
    if (Err && Err->empty())
      *Err = "malformed type-map snapshot";
    return false;
  }
  std::vector<float> NewFlat(static_cast<size_t>(Count) *
                             static_cast<size_t>(Dim));
  C.readF32Array(NewFlat.data(), NewFlat.size());
  std::vector<TypeRef> NewTypes;
  NewTypes.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I != Count; ++I) {
    int Idx = C.readI32();
    if (!C.ok() || Idx < 0 || static_cast<size_t>(Idx) >= ById.size()) {
      if (Err && Err->empty())
        *Err = "type-map marker references a type outside the type table";
      return false;
    }
    NewTypes.push_back(ById[static_cast<size_t>(Idx)]);
  }
  D = Dim;
  Flat = std::move(NewFlat);
  Types = std::move(NewTypes);
  // Loading stays a pure byte copy: the dedup index is marked stale and
  // rebuilt by the first add() — serving processes, which never insert,
  // never pay the O(N·D) re-keying or hold the index at all.
  DedupIndex.clear();
  DedupIndexStale = true;
  Dropped = 0;
  return true;
}

NeighborList ExactIndex::query(const float *Q, int K) const {
  NeighborList All;
  All.reserve(Map.size());
  for (size_t I = 0; I != Map.size(); ++I)
    All.emplace_back(static_cast<int>(I),
                     l1Distance(Q, Map.embedding(I), Map.dim()));
  size_t Keep = std::min<size_t>(static_cast<size_t>(K), All.size());
  std::partial_sort(All.begin(), All.begin() + static_cast<long>(Keep),
                    All.end(), [](const auto &A, const auto &B) {
                      if (A.second != B.second)
                        return A.second < B.second;
                      return A.first < B.first;
                    });
  All.resize(Keep);
  return All;
}

std::vector<NeighborList> ExactIndex::queryBatch(const float *Qs,
                                                 int64_t NumQueries, int K,
                                                 int MaxWays) const {
  std::vector<NeighborList> Results(static_cast<size_t>(NumQueries));
  const int D = Map.dim();
  parallelFor(
      0, NumQueries, 1,
      [&](int64_t Lo, int64_t Hi) {
        for (int64_t I = Lo; I != Hi; ++I)
          Results[static_cast<size_t>(I)] = query(Qs + I * D, K);
      },
      MaxWays);
  return Results;
}

AnnoyIndex::AnnoyIndex(const TypeMap &Map, int NumTrees, int LeafSize,
                       uint64_t Seed, int MaxWays)
    : Map(Map), LeafSize(LeafSize) {
  // Derive an independent stream per tree up front; tree T's shape is then
  // a function of (Map, Seed, T) alone, so building the forest one pool
  // task per tree yields exactly the serial forest.
  Rng Base(Seed);
  std::vector<Rng> TreeRngs;
  TreeRngs.reserve(static_cast<size_t>(NumTrees));
  for (int T = 0; T != NumTrees; ++T)
    TreeRngs.push_back(Base.fork(static_cast<uint64_t>(T)));

  std::vector<int> All(Map.size());
  for (size_t I = 0; I != Map.size(); ++I)
    All[I] = static_cast<int>(I);

  std::vector<std::vector<BuildNode>> TreeNodes(
      static_cast<size_t>(NumTrees));
  std::vector<int> TreeRoots(static_cast<size_t>(NumTrees), -1);
  parallelFor(
      0, NumTrees, 1,
      [&](int64_t Lo, int64_t Hi) {
        for (int64_t T = Lo; T != Hi; ++T)
          TreeRoots[static_cast<size_t>(T)] =
              buildTree(TreeNodes[static_cast<size_t>(T)], All,
                        TreeRngs[static_cast<size_t>(T)], 0);
      },
      MaxWays);

  // Merge the per-tree node arrays, rebasing child links.
  size_t Total = 0;
  for (const auto &TN : TreeNodes)
    Total += TN.size();
  Nodes.reserve(Total);
  Roots.reserve(static_cast<size_t>(NumTrees));
  for (int T = 0; T != NumTrees; ++T) {
    int Offset = static_cast<int>(Nodes.size());
    for (BuildNode &N : TreeNodes[static_cast<size_t>(T)]) {
      if (N.Left >= 0)
        N.Left += Offset;
      if (N.Right >= 0)
        N.Right += Offset;
      Nodes.push_back(std::move(N));
    }
    Roots.push_back(TreeRoots[static_cast<size_t>(T)] + Offset);
  }
}

void AnnoyIndex::save(ArchiveWriter &W) const {
  W.writeI32(LeafSize);
  W.writeU64(Nodes.size());
  for (const BuildNode &N : Nodes) {
    W.writeI32(N.SplitDim);
    W.writeF32(N.Threshold);
    W.writeI32(N.Left);
    W.writeI32(N.Right);
    W.writeU64(N.Items.size());
    for (int It : N.Items)
      W.writeI32(It);
  }
  W.writeU64(Roots.size());
  for (int R : Roots)
    W.writeI32(R);
}

std::unique_ptr<AnnoyIndex> AnnoyIndex::load(ArchiveCursor &C,
                                             const TypeMap &Map,
                                             std::string *Err) {
  auto Fail = [&](const char *Why) {
    if (Err && Err->empty())
      *Err = std::string("malformed kNN index snapshot: ") + Why;
    return nullptr;
  };
  std::unique_ptr<AnnoyIndex> Idx(new AnnoyIndex(Map, LoadShellTag{}));
  Idx->LeafSize = C.readI32();
  uint64_t NumNodes = C.readU64();
  if (!C.ok() || NumNodes > C.remaining())
    return Fail("node count");
  Idx->Nodes.reserve(static_cast<size_t>(NumNodes));
  for (uint64_t I = 0; I != NumNodes; ++I) {
    BuildNode N;
    N.SplitDim = C.readI32();
    N.Threshold = C.readF32();
    N.Left = C.readI32();
    N.Right = C.readI32();
    uint64_t NumItems = C.readU64();
    if (!C.ok() || NumItems > C.remaining())
      return Fail("leaf payload");
    bool IsLeaf = N.SplitDim < 0;
    // buildTree appends children after their parent, so valid links are
    // strictly increasing; enforcing that here also rules out cycles (a
    // crafted self-link would otherwise make query() loop forever).
    if (!IsLeaf &&
        (N.SplitDim >= Map.dim() || static_cast<uint64_t>(N.Left) <= I ||
         static_cast<uint64_t>(N.Right) <= I || N.Left < 0 || N.Right < 0 ||
         static_cast<uint64_t>(N.Left) >= NumNodes ||
         static_cast<uint64_t>(N.Right) >= NumNodes))
      return Fail("split node links");
    N.Items.reserve(static_cast<size_t>(NumItems));
    for (uint64_t J = 0; J != NumItems; ++J) {
      int It = C.readI32();
      if (!C.ok() || It < 0 || static_cast<size_t>(It) >= Map.size())
        return Fail("leaf item out of range");
      N.Items.push_back(It);
    }
    Idx->Nodes.push_back(std::move(N));
  }
  uint64_t NumRoots = C.readU64();
  if (!C.ok() || NumRoots > C.remaining())
    return Fail("root count");
  for (uint64_t I = 0; I != NumRoots; ++I) {
    int R = C.readI32();
    if (!C.ok() || R < 0 || static_cast<uint64_t>(R) >= NumNodes)
      return Fail("root out of range");
    Idx->Roots.push_back(R);
  }
  return Idx;
}

int AnnoyIndex::buildTree(std::vector<BuildNode> &Out, std::vector<int> Items,
                          Rng &R, int Depth) const {
  int Idx = static_cast<int>(Out.size());
  Out.emplace_back();
  if (static_cast<int>(Items.size()) <= LeafSize || Depth > 24) {
    Out[static_cast<size_t>(Idx)].Items = std::move(Items);
    return Idx;
  }
  // Annoy-style split: pick two random markers; split on the coordinate
  // where they are furthest apart, at their midpoint.
  int D = Map.dim();
  const float *A = Map.embedding(
      static_cast<size_t>(Items[R.uniformInt(Items.size())]));
  const float *B = Map.embedding(
      static_cast<size_t>(Items[R.uniformInt(Items.size())]));
  int BestDim = 0;
  float BestSpread = -1;
  for (int I = 0; I != D; ++I) {
    float Spread = std::fabs(A[I] - B[I]);
    if (Spread > BestSpread) {
      BestSpread = Spread;
      BestDim = I;
    }
  }
  float Threshold = 0.5f * (A[BestDim] + B[BestDim]);
  std::vector<int> Left, Right;
  for (int It : Items) {
    if (Map.embedding(static_cast<size_t>(It))[BestDim] < Threshold)
      Left.push_back(It);
    else
      Right.push_back(It);
  }
  // Degenerate split (identical points): make a leaf.
  if (Left.empty() || Right.empty()) {
    Out[static_cast<size_t>(Idx)].Items = std::move(Items);
    return Idx;
  }
  int L = buildTree(Out, std::move(Left), R, Depth + 1);
  int Rt = buildTree(Out, std::move(Right), R, Depth + 1);
  Out[static_cast<size_t>(Idx)].SplitDim = BestDim;
  Out[static_cast<size_t>(Idx)].Threshold = Threshold;
  Out[static_cast<size_t>(Idx)].Left = L;
  Out[static_cast<size_t>(Idx)].Right = Rt;
  return Idx;
}

NeighborList AnnoyIndex::query(const float *Q, int K, int SearchK) const {
  if (Map.size() == 0)
    return {};
  if (SearchK < 0)
    SearchK = static_cast<int>(Roots.size()) * K * 4;
  // Best-first traversal over all trees: priority = margin to the split
  // plane (0 within the chosen side).
  using Entry = std::pair<float, int>; // (priority, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> Queue;
  for (int Root : Roots)
    Queue.emplace(0.f, Root);
  std::vector<char> Seen(Map.size(), 0);
  std::vector<int> Candidates;
  while (!Queue.empty() &&
         static_cast<int>(Candidates.size()) < SearchK) {
    auto [Prio, NodeIdx] = Queue.top();
    Queue.pop();
    const BuildNode &N = Nodes[static_cast<size_t>(NodeIdx)];
    if (N.SplitDim < 0) {
      for (int It : N.Items)
        if (!Seen[static_cast<size_t>(It)]) {
          Seen[static_cast<size_t>(It)] = 1;
          Candidates.push_back(It);
        }
      continue;
    }
    float Margin = Q[N.SplitDim] - N.Threshold;
    int Near = Margin < 0 ? N.Left : N.Right;
    int Far = Margin < 0 ? N.Right : N.Left;
    Queue.emplace(Prio, Near);
    Queue.emplace(Prio + std::fabs(Margin), Far);
  }
  // Exact re-rank of the candidate union.
  NeighborList Result;
  Result.reserve(Candidates.size());
  for (int It : Candidates)
    Result.emplace_back(
        It, l1Distance(Q, Map.embedding(static_cast<size_t>(It)), Map.dim()));
  size_t Keep = std::min<size_t>(static_cast<size_t>(K), Result.size());
  std::partial_sort(Result.begin(), Result.begin() + static_cast<long>(Keep),
                    Result.end(), [](const auto &A, const auto &B) {
                      if (A.second != B.second)
                        return A.second < B.second;
                      return A.first < B.first;
                    });
  Result.resize(Keep);
  return Result;
}

std::vector<NeighborList> AnnoyIndex::queryBatch(const float *Qs,
                                                 int64_t NumQueries, int K,
                                                 int SearchK,
                                                 int MaxWays) const {
  std::vector<NeighborList> Results(static_cast<size_t>(NumQueries));
  const int D = Map.dim();
  parallelFor(
      0, NumQueries, 1,
      [&](int64_t Lo, int64_t Hi) {
        for (int64_t I = Lo; I != Hi; ++I)
          Results[static_cast<size_t>(I)] = query(Qs + I * D, K, SearchK);
      },
      MaxWays);
  return Results;
}
