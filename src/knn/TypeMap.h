//===- knn/TypeMap.h - The τmap: type markers in the TypeSpace ----*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive type map of Sec. 4.2: a store of (type embedding, type)
/// markers. Predictions are kNN lookups scored by Eq. 5. Because the map is
/// data, not model weights, previously unseen types can be added without
/// retraining — the key open-vocabulary property of Typilus.
///
/// Index construction and bulk queries dispatch through the process-wide
/// ThreadPool: the forest is built one task per tree from per-tree derived
/// seeds (so the parallel build is identical to the serial one), and
/// `queryBatch` answers many queries concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_KNN_TYPEMAP_H
#define TYPILUS_KNN_TYPEMAP_H

#include "support/Archive.h"
#include "support/Rng.h"
#include "typesys/Type.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace typilus {

/// A store of D-dimensional type markers.
class TypeMap {
public:
  explicit TypeMap(int Dim) : D(Dim) {}

  /// Pre-allocates room for \p NumMarkers markers (bulk fills).
  void reserve(size_t NumMarkers) {
    Flat.reserve(Flat.size() + NumMarkers * static_cast<size_t>(D));
    Types.reserve(Types.size() + NumMarkers);
  }

  /// Adds a marker for \p T at \p Embedding (length D) — unless an
  /// identical (embedding, type) marker already exists, in which case
  /// the duplicate is dropped: it could never change a kNN answer's type
  /// mix, only crowd real neighbours out of the candidate list (the
  /// first step of τmap compaction; duplicates are common because
  /// generated and copied code embeds identically). \returns true when
  /// the marker was actually added.
  bool add(const float *Embedding, TypeRef T);

  /// Duplicates dropped by add() so far (compaction observability).
  size_t droppedDuplicates() const { return Dropped; }

  size_t size() const { return Types.size(); }
  int dim() const { return D; }
  const float *embedding(size_t I) const {
    return Flat.data() + I * static_cast<size_t>(D);
  }
  TypeRef type(size_t I) const { return Types[I]; }

  /// Appends dim + every marker (raw f32 embedding, dense type-table
  /// index) to the open chunk.
  void save(ArchiveWriter &W, const std::map<TypeRef, int> &TypeIds) const;
  /// Replaces *this with a snapshot written by save(); \p ById is the
  /// loaded type table.
  bool load(ArchiveCursor &C, const std::vector<TypeRef> &ById,
            std::string *Err);

private:
  /// Marker indices by embedding-bytes+type hash; collisions resolved by
  /// full comparison in add(). Built lazily: a loaded snapshot leaves it
  /// stale (serving processes never insert, so they never pay for it)
  /// and the first add() after load re-keys it over the loaded markers.
  std::unordered_map<uint64_t, std::vector<int>> DedupIndex;
  bool DedupIndexStale = false;

  uint64_t markerHash(const float *Embedding, TypeRef T) const;
  void rebuildDedupIndex();

  int D;
  std::vector<float> Flat;
  std::vector<TypeRef> Types;
  size_t Dropped = 0;
};

/// (marker index, L1 distance) pairs, ascending by distance.
using NeighborList = std::vector<std::pair<int, float>>;

/// A scored candidate type.
struct ScoredType {
  TypeRef Type = nullptr;
  double Prob = 0;
};

/// Eq. 5: P(s : τ) = (1/Z) Σ_i I(τ_i = τ) d_i^{-p} over the neighbours.
/// Returns candidates sorted by descending probability. Single pass over
/// the neighbour list, accumulating into a small flat map (k is ~10, the
/// distinct-type count smaller still).
std::vector<ScoredType> scoreNeighbors(const TypeMap &Map,
                                       const NeighborList &Neighbors,
                                       double P);

/// Exact L1 k-nearest-neighbour scan (the reference the approximate index
/// is validated against).
class ExactIndex {
public:
  explicit ExactIndex(const TypeMap &Map) : Map(Map) {}
  NeighborList query(const float *Q, int K) const;

  /// Answers \p NumQueries queries (rows of \p Qs, stride dim()) through
  /// the pool; \p MaxWays > 0 caps the parallelism.
  std::vector<NeighborList> queryBatch(const float *Qs, int64_t NumQueries,
                                       int K, int MaxWays = 0) const;

private:
  const TypeMap &Map;
};

/// An Annoy-style randomised kd-forest for L1 distance: each tree splits on
/// the coordinate of largest spread between two random markers; queries
/// descend all trees best-first and exactly re-rank the candidate union.
/// Trees are seeded independently (derived from \p Seed per tree) and built
/// one pool task per tree, so the forest does not depend on thread count.
class AnnoyIndex {
public:
  /// \p MaxWays > 0 caps the build parallelism (1 = fully serial).
  AnnoyIndex(const TypeMap &Map, int NumTrees = 8, int LeafSize = 16,
             uint64_t Seed = 0xA220, int MaxWays = 0);

  /// \p SearchK: number of candidates to inspect (defaults to
  /// NumTrees * K * 4, Annoy's heuristic).
  NeighborList query(const float *Q, int K, int SearchK = -1) const;

  /// Answers \p NumQueries queries (rows of \p Qs, stride dim()) through
  /// the pool; \p MaxWays > 0 caps the parallelism.
  std::vector<NeighborList> queryBatch(const float *Qs, int64_t NumQueries,
                                       int K, int SearchK = -1,
                                       int MaxWays = 0) const;

  /// Appends the built forest (leaf size, nodes, roots) to the open
  /// chunk so a serving process can skip the rebuild entirely.
  void save(ArchiveWriter &W) const;
  /// Reconstructs a forest written by save() over \p Map (which must be
  /// the snapshot saved alongside it). Queries on the loaded forest are
  /// bit-identical to queries on the original.
  static std::unique_ptr<AnnoyIndex> load(ArchiveCursor &C,
                                          const TypeMap &Map,
                                          std::string *Err);

private:
  /// Deserialization shell; load() fills the trees in. (Tagged so it does
  /// not collide with the building constructor's defaulted arguments.)
  struct LoadShellTag {};
  AnnoyIndex(const TypeMap &Map, LoadShellTag) : Map(Map), LeafSize(0) {}

  struct BuildNode {
    int SplitDim = -1;
    float Threshold = 0;
    int Left = -1, Right = -1;
    std::vector<int> Items; ///< Leaf payload.
  };
  /// Builds one subtree into \p Out; returns its index therein.
  int buildTree(std::vector<BuildNode> &Out, std::vector<int> Items, Rng &R,
                int Depth) const;

  const TypeMap &Map;
  int LeafSize;
  std::vector<BuildNode> Nodes;
  std::vector<int> Roots;
};

} // namespace typilus

#endif // TYPILUS_KNN_TYPEMAP_H
