//===- knn/TypeMap.h - The τmap: type markers in the TypeSpace ----*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive type map of Sec. 4.2: a store of (type embedding, type)
/// markers. Predictions are kNN lookups scored by Eq. 5. Because the map is
/// data, not model weights, previously unseen types can be added without
/// retraining — the key open-vocabulary property of Typilus.
///
/// Markers live in one of three storage formats (τmap compaction): exact
/// f32, IEEE binary16 (half the bytes, ~1e-3 relative rounding), or int8
/// with one f32 scale per marker (quarter the bytes). Distances dispatch
/// through the runtime SIMD kernel table (nn/Simd.h), which scans f16 and
/// int8 rows without materialising a decoded copy. `quantize` converts a
/// freshly built f32 map; `subsampleCoreset` bounds the marker count first
/// while keeping every type represented.
///
/// Index construction and bulk queries dispatch through the process-wide
/// ThreadPool: the forest is built one task per tree from per-tree derived
/// seeds (so the parallel build is identical to the serial one), and
/// `queryBatch` answers many queries concurrently.
///
/// The map is also *mutable* for the editor loop: markers may carry a file
/// tag, `removeMarkersForFile` tombstones a file's rows in place (queries
/// skip them), and re-adding an identical row resurrects the tombstone
/// rather than appending — so remove→re-add of unchanged content restores
/// the exact marker layout and every downstream prediction bit. `compact`
/// drops the dead rows (preserving live order) once the tombstone ratio
/// warrants paying for an index rebuild. Tags and tombstones are in-memory
/// session state only: they are never serialized, and `save` requires a
/// compacted map, so artifact bytes are unchanged by this machinery.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_KNN_TYPEMAP_H
#define TYPILUS_KNN_TYPEMAP_H

#include "support/Archive.h"
#include "support/Rng.h"
#include "typesys/Type.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace typilus {

/// How marker embeddings are stored. F32 is the exact representation the
/// trainer produces; F16 and Int8 (one f32 scale per marker) trade
/// per-coordinate precision for 2x/4x smaller artifacts and faster scans.
/// The numeric values are the serialized artifact encoding — append only.
enum class MarkerStore : uint8_t { F32 = 0, F16 = 1, Int8 = 2 };

/// "f32" | "f16" | "int8" (CLI flags, `inspect` output, bench labels).
const char *markerStoreName(MarkerStore S);
/// Parses markerStoreName()'s strings; \returns false on anything else.
bool parseMarkerStore(std::string_view Name, MarkerStore *Out);

/// A store of D-dimensional type markers.
class TypeMap {
public:
  explicit TypeMap(int Dim) : D(Dim) {}

  /// Pre-allocates room for \p TotalMarkers markers *in total* (bulk
  /// fills). Total, not incremental: calling it twice with the same bound
  /// is idempotent instead of doubling the reservation.
  void reserve(size_t TotalMarkers) {
    size_t Coords = TotalMarkers * static_cast<size_t>(D);
    switch (Store) {
    case MarkerStore::F32:
      Flat.reserve(Coords);
      break;
    case MarkerStore::F16:
      FlatF16.reserve(Coords);
      break;
    case MarkerStore::Int8:
      FlatI8.reserve(Coords);
      Scales.reserve(TotalMarkers);
      break;
    }
    Types.reserve(TotalMarkers);
    FileOf.reserve(TotalMarkers);
    Dead.reserve(TotalMarkers);
  }

  /// Markers the current reservation can hold (reserve() observability).
  size_t reservedMarkers() const { return Types.capacity(); }

  /// Adds a marker for \p T at \p Embedding (length D, f32; quantized
  /// stores encode it on the way in) — unless an identical stored
  /// (embedding, type) marker already exists, in which case the duplicate
  /// is dropped: it could never change a kNN answer's type mix, only
  /// crowd real neighbours out of the candidate list (the first step of
  /// τmap compaction; duplicates are common because generated and copied
  /// code embeds identically). On quantized stores the comparison is over
  /// the *encoded* row, so markers that collide after rounding also
  /// collapse. \returns true when the marker was actually added.
  bool add(const float *Embedding, TypeRef T);

  /// Like add(), but tags the marker as owned by \p FileTag so it can be
  /// tombstoned later via removeMarkersForFile(). Ownership is
  /// first-writer: a row deduplicated against an existing live marker
  /// keeps its original tag (or stays untagged). When the identical row
  /// exists but is *tombstoned*, the tombstone is cleared in place and the
  /// row re-tagged to \p FileTag — the marker layout, order and bytes are
  /// exactly what they were before the removal, which is what makes
  /// remove→re-add of unchanged content bit-identical end to end.
  bool add(const float *Embedding, TypeRef T, std::string_view FileTag);

  /// Duplicates dropped by add() so far (compaction observability).
  size_t droppedDuplicates() const { return Dropped; }

  /// Tombstones every live marker tagged \p FileTag. Tombstoned rows keep
  /// their storage (indices stay stable; queries skip them) until
  /// compact(). \returns the number of rows tombstoned.
  size_t removeMarkersForFile(std::string_view FileTag);

  /// Live marker rows tagged \p FileTag, ascending.
  std::vector<int> markersForFile(std::string_view FileTag) const;

  /// File tag of marker \p I; empty when untagged.
  std::string_view fileTag(size_t I) const;

  /// False iff marker \p I is tombstoned.
  bool isLive(size_t I) const { return !Dead[I]; }
  /// Markers that are not tombstoned (size() counts tombstones too).
  size_t liveSize() const { return Types.size() - NumDead; }
  /// Tombstoned rows currently held (compaction-policy observability).
  size_t deadMarkers() const { return NumDead; }
  /// Fraction of rows that are tombstones (0 for an empty map).
  double tombstoneRatio() const {
    return Types.empty()
               ? 0.0
               : static_cast<double>(NumDead) /
                     static_cast<double>(Types.size());
  }

  /// Drops tombstoned rows, preserving live-marker order. Indices shift,
  /// so any index built over the map must be rebuilt afterwards. \returns
  /// true when rows were actually dropped. A tombstone-free compacted map
  /// is byte-identical to one built fresh from the same live rows.
  bool compact();

  size_t size() const { return Types.size(); }
  int dim() const { return D; }
  MarkerStore store() const { return Store; }
  /// Bytes held by the marker coordinate arrays (artifact sizing).
  size_t storageBytes() const {
    return Flat.size() * 4 + FlatF16.size() * 2 + FlatI8.size() +
           Scales.size() * 4;
  }

  /// Direct row access — F32 store only (the trainer-side fast path).
  const float *embedding(size_t I) const {
    return Flat.data() + I * static_cast<size_t>(D);
  }
  /// Raw store arrays for index inner loops: the blocked scan hoists the
  /// per-row store dispatch out of its tile bodies and feeds these
  /// directly to the SIMD kernel table. Only the array matching store()
  /// is populated; the others are empty.
  const float *rawF32() const { return Flat.data(); }
  const uint16_t *rawF16() const { return FlatF16.data(); }
  const int8_t *rawI8() const { return FlatI8.data(); }
  const float *rawI8Scales() const { return Scales.data(); }
  /// Coordinate \p Dim of marker \p I, decoded from whatever store holds
  /// it (index construction probes single coordinates).
  float coord(size_t I, int Dim) const;
  /// Decodes marker \p I into \p Out (length D).
  void decodeEmbedding(size_t I, float *Out) const;
  /// L1 distance from f32 query \p Q to marker \p I, computed over the
  /// stored representation by the active SIMD kernel table — quantized
  /// rows are never materialised as f32.
  float l1DistanceTo(const float *Q, size_t I) const;
  TypeRef type(size_t I) const { return Types[I]; }

  /// Converts an F32 map to \p NewStore in place (no-op when already
  /// there). Quantization is a one-way, whole-map step taken after the
  /// map is filled and subsampled, before the index is built; the f16
  /// encoder is the software round-to-nearest-even path, so the encoded
  /// bytes are host-independent.
  void quantize(MarkerStore NewStore);

  /// Caps the map at \p MaxMarkers markers (F32 store only; a no-op when
  /// already within the bound or \p MaxMarkers is 0 = unlimited). Budget
  /// is split over the types present — every type keeps at least one
  /// marker while the budget allows, extra slots go proportionally to
  /// marker-rich types — and within a type markers are chosen by greedy
  /// k-center (farthest-point) under L1, so the survivors spread over the
  /// type's region of the TypeSpace instead of clumping. Deterministic:
  /// types are processed in first-occurrence order and survivors keep
  /// their relative order. \returns the new size.
  size_t subsampleCoreset(size_t MaxMarkers);

  /// Appends dim + every marker (stored-format coordinates, dense
  /// type-table index) to the open chunk. The payload layout follows
  /// store(): f32 maps write exactly the historical byte stream. File
  /// tags and tombstones are session state and are never written —
  /// compact() first; saving a map with tombstones is a programming error.
  void save(ArchiveWriter &W, const std::map<TypeRef, int> &TypeIds) const;
  /// Replaces *this with a snapshot written by save(); \p ById is the
  /// loaded type table and \p S the store the snapshot was written with
  /// (the caller knows it from the chunk tag).
  bool load(ArchiveCursor &C, const std::vector<TypeRef> &ById,
            std::string *Err, MarkerStore S = MarkerStore::F32);

private:
  /// Marker indices by stored-row-bytes+type hash; collisions resolved by
  /// full comparison in add(). Built lazily: a loaded snapshot leaves it
  /// stale (serving processes never insert, so they never pay for it)
  /// and the first add() after load re-keys it over the loaded markers.
  std::unordered_map<uint64_t, std::vector<int>> DedupIndex;
  bool DedupIndexStale = false;

  /// FNV-1a over a stored row's bytes (plus the int8 scale) mixed with
  /// the interned type pointer (stable within a process, which is all
  /// the index needs).
  uint64_t rowHash(const void *Row, size_t NumBytes, float Scale,
                   TypeRef T) const;
  uint64_t storedHash(size_t I) const;
  void rebuildDedupIndex();

  /// Encodes one f32 row for the Int8 store; \returns the row's scale.
  float encodeI8Row(const float *Src, int8_t *Dst) const;

  /// Interns \p FileTag into FileTags/FileIdOf; -1 for an empty tag.
  int fileIdFor(std::string_view FileTag);
  /// Registers live row \p I under file id \p FileId (sorted insert).
  void tagRow(size_t I, int FileId);

  int D;
  MarkerStore Store = MarkerStore::F32;
  std::vector<float> Flat;        ///< F32 store: D coords per marker.
  std::vector<uint16_t> FlatF16;  ///< F16 store: binary16 bit patterns.
  std::vector<int8_t> FlatI8;     ///< Int8 store: D codes per marker.
  std::vector<float> Scales;      ///< Int8 store: one scale per marker.
  std::vector<TypeRef> Types;
  std::vector<int32_t> FileOf;    ///< Owning file id per marker; -1 none.
  std::vector<char> Dead;         ///< 1 = tombstoned (queries skip it).
  size_t NumDead = 0;
  std::vector<std::string> FileTags;            ///< Interned tag strings.
  std::unordered_map<std::string, int> FileIdOf;
  /// Live rows per file id, ascending (removeMarkersForFile's worklist).
  std::unordered_map<int, std::vector<int>> RowsOfFile;
  size_t Dropped = 0;
};

/// (marker index, L1 distance) pairs, ascending by distance.
using NeighborList = std::vector<std::pair<int, float>>;

/// A scored candidate type.
struct ScoredType {
  TypeRef Type = nullptr;
  double Prob = 0;
};

/// Eq. 5: P(s : τ) = (1/Z) Σ_i I(τ_i = τ) d_i^{-p} over the neighbours.
/// Returns candidates sorted by descending probability. Single pass over
/// the neighbour list, accumulating into a small flat map (k is ~10, the
/// distinct-type count smaller still).
std::vector<ScoredType> scoreNeighbors(const TypeMap &Map,
                                       const NeighborList &Neighbors,
                                       double P);

/// Exact L1 k-nearest-neighbour scan (the reference the approximate
/// indexes are validated against). The engine is a cache-blocked
/// query×marker tiled scan: each marker tile is streamed once through
/// every query of a query block, each query keeps a fixed-size bounded
/// max-heap of the best k seen so far (no O(N) allocation per query),
/// and the tile bodies dispatch through the active SIMD kernel table
/// with the store switch hoisted out of the inner loops. Ties break
/// (distance, index) exactly like the historical partial_sort, so
/// results are bit-identical to queryLegacy for every store.
class ExactIndex {
public:
  explicit ExactIndex(const TypeMap &Map) : Map(Map) {}
  NeighborList query(const float *Q, int K) const;

  /// The historical scan — materialize an N-entry candidate list, then
  /// partial_sort. Kept as the bit-identity reference for tests and the
  /// knn_query bench baseline; production callers use query().
  NeighborList queryLegacy(const float *Q, int K) const;

  /// Answers \p NumQueries queries (rows of \p Qs, stride dim()) through
  /// the pool, partitioned in tile-sized grains with per-chunk reusable
  /// scratch; \p MaxWays > 0 caps the parallelism.
  std::vector<NeighborList> queryBatch(const float *Qs, int64_t NumQueries,
                                       int K, int MaxWays = 0) const;

private:
  /// Blocked engine over queries [QBegin, QEnd) of \p Qs. \p Heaps is
  /// caller-owned scratch (one bounded heap per query of the block),
  /// reused across blocks by queryBatch.
  void queryBlock(const float *Qs, int64_t QBegin, int64_t QEnd, int K,
                  std::vector<NeighborList> &Heaps,
                  std::vector<NeighborList> &Results) const;

  const TypeMap &Map;
};

/// An Annoy-style randomised kd-forest for L1 distance: each tree splits on
/// the coordinate of largest spread between two random markers; queries
/// descend all trees best-first and exactly re-rank the candidate union.
/// Trees are seeded independently (derived from \p Seed per tree) and built
/// one pool task per tree, so the forest does not depend on thread count.
class AnnoyIndex {
public:
  /// \p MaxWays > 0 caps the build parallelism (1 = fully serial).
  AnnoyIndex(const TypeMap &Map, int NumTrees = 8, int LeafSize = 16,
             uint64_t Seed = 0xA220, int MaxWays = 0);

  /// \p SearchK: number of candidates to inspect (defaults to
  /// NumTrees * K * 4, Annoy's heuristic).
  NeighborList query(const float *Q, int K, int SearchK = -1) const;

  /// Answers \p NumQueries queries (rows of \p Qs, stride dim()) through
  /// the pool; \p MaxWays > 0 caps the parallelism.
  std::vector<NeighborList> queryBatch(const float *Qs, int64_t NumQueries,
                                       int K, int SearchK = -1,
                                       int MaxWays = 0) const;

  /// Markers the forest was built (or loaded) over. Rows appended to the
  /// map afterwards are invisible to the forest; callers cover that delta
  /// with an exact scan of [indexedMarkers(), Map.size()) and merge (see
  /// Predictor::queryNeighbors) until the next rebuild.
  size_t indexedMarkers() const { return NumIndexed; }

  /// Appends the built forest (leaf size, nodes, roots) to the open
  /// chunk so a serving process can skip the rebuild entirely.
  void save(ArchiveWriter &W) const;
  /// Reconstructs a forest written by save() over \p Map (which must be
  /// the snapshot saved alongside it). Queries on the loaded forest are
  /// bit-identical to queries on the original.
  static std::unique_ptr<AnnoyIndex> load(ArchiveCursor &C,
                                          const TypeMap &Map,
                                          std::string *Err);

private:
  /// Deserialization shell; load() fills the trees in. (Tagged so it does
  /// not collide with the building constructor's defaulted arguments.)
  struct LoadShellTag {};
  AnnoyIndex(const TypeMap &Map, LoadShellTag) : Map(Map), LeafSize(0) {}

  struct BuildNode {
    int SplitDim = -1;
    float Threshold = 0;
    int Left = -1, Right = -1;
    std::vector<int> Items; ///< Leaf payload.
  };
  /// Builds one subtree into \p Out; returns its index therein.
  int buildTree(std::vector<BuildNode> &Out, std::vector<int> Items, Rng &R,
                int Depth) const;

  const TypeMap &Map;
  int LeafSize;
  size_t NumIndexed = 0;
  std::vector<BuildNode> Nodes;
  std::vector<int> Roots;
};

/// A deterministic HNSW (hierarchical navigable small-world) graph for L1
/// distance. Level assignment is a pure function of (Seed, row index),
/// rows are inserted in row order, and every selection step (beam
/// updates, neighbour pruning, tie-breaks) is sequential under the
/// (distance, index) order — candidate *distances* are evaluated in
/// parallel through the pool, but distances are bit-identical for any
/// thread count, so the built graph and every query answer are a
/// function of (Map, Seed) alone. Query cost is O(ef · M · log N)
/// distance evaluations — sublinear in marker count — with EfSearch as
/// the per-request latency/recall budget. Tombstoned rows keep routing
/// through the graph but never surface as results (same contract as the
/// other two indexes), and markers appended after the build are covered
/// by the caller's exact delta scan via indexedMarkers().
class HnswIndex {
public:
  /// \p M: max links per node per upper layer (layer 0 keeps 2M);
  /// \p EfConstruction: insertion beam width; \p MaxWays > 0 caps the
  /// build-time distance-evaluation parallelism (1 = fully serial).
  HnswIndex(const TypeMap &Map, int M = 16, int EfConstruction = 128,
            uint64_t Seed = 0x45317, int MaxWays = 0);

  /// \p EfSearch: layer-0 beam width, the query-time budget (candidates
  /// inspected per request). Defaults to max(4·K, 64); clamped to >= K.
  NeighborList query(const float *Q, int K, int EfSearch = -1) const;

  /// Answers \p NumQueries queries (rows of \p Qs, stride dim()) through
  /// the pool; \p MaxWays > 0 caps the parallelism.
  std::vector<NeighborList> queryBatch(const float *Qs, int64_t NumQueries,
                                       int K, int EfSearch = -1,
                                       int MaxWays = 0) const;

  /// Markers the graph was built (or loaded) over; rows appended later
  /// are invisible until a rebuild (same contract as AnnoyIndex).
  size_t indexedMarkers() const { return NumIndexed; }

  int m() const { return M; }
  int efConstruction() const { return EfConstruction; }

  /// Appends the built graph (params, entry point, per-node levels and
  /// adjacency) to the open chunk so serving processes skip the build.
  void save(ArchiveWriter &W) const;
  /// Reconstructs a graph written by save() over \p Map (which must be
  /// the snapshot saved alongside it). Queries on the loaded graph are
  /// bit-identical to queries on the original.
  static std::unique_ptr<HnswIndex> load(ArchiveCursor &C, const TypeMap &Map,
                                         std::string *Err);

private:
  struct LoadShellTag {};
  HnswIndex(const TypeMap &Map, LoadShellTag) : Map(Map) {}

  struct Node {
    int Level = 0;
    /// Links[L]: neighbour row indices at layer L, 0 <= L <= Level.
    std::vector<std::vector<int>> Links;
  };

  /// Reusable per-query search state (epoch-marked visited array: no
  /// O(N) clear per query).
  struct SearchScratch {
    std::vector<uint32_t> VisitedAt;
    uint32_t Epoch = 0;
    std::vector<int> Frontier;    ///< Unvisited neighbours this round.
    std::vector<float> FrontierD; ///< Their distances (parallel eval).
  };

  /// Beam search at \p Layer from entry point \p Ep: the best \p Ef
  /// (distance, index) pairs, ascending.
  void searchLayer(const float *Q, int Ep, float EpDist, int Ef, int Layer,
                   SearchScratch &S,
                   std::vector<std::pair<float, int>> &Out) const;
  /// Greedy descent at \p Layer (ef = 1).
  void descendLayer(const float *Q, int &Ep, float &EpDist, int Layer) const;
  /// Distances from \p Q to \p Ids through the pool (MaxWays-capped).
  void distanceMany(const float *Q, const int *Ids, size_t N,
                    float *Out) const;
  void insert(size_t I, const float *Coords, SearchScratch &S);
  /// Prunes node \p NodeId's layer-\p Layer links to the \p MaxLinks
  /// closest under (distance, index). \p Decode is reusable scratch for
  /// the node's own coordinates.
  void shrinkLinks(int NodeId, int Layer, int MaxLinks,
                   std::vector<float> &Decode);
  /// query() with caller-owned scratch (queryBatch reuses it per chunk).
  NeighborList queryWithScratch(const float *Q, int K, int EfSearch,
                                SearchScratch &S) const;
  /// Seeded geometric level for row \p I — pure in (Seed, I).
  int levelFor(size_t I) const;

  const TypeMap &Map;
  int M = 16;
  int EfConstruction = 128;
  uint64_t Seed = 0x45317;
  int MaxWays = 0;
  size_t NumIndexed = 0;
  int EntryPoint = -1;
  int MaxLevel = -1;
  std::vector<Node> Nodes;
};

} // namespace typilus

#endif // TYPILUS_KNN_TYPEMAP_H
