//===- nn/SimdAvx2.cpp - AVX2/FMA/F16C kernel table ---------------------------===//
//
// This translation unit — and only this one — is compiled with
// -mavx2 -mfma -mf16c (see nn/CMakeLists.txt). Nothing here may be called
// unless the runtime probe in Simd.cpp confirmed the CPU has all three.
//
// Determinism: every kernel computes each element with a fixed operation
// sequence for a given N. Remainder lanes mirror the vector lanes — fmaf
// where the lanes use vfmadd, the same exp polynomial evaluated scalar —
// so results do not depend on where parallel chunk boundaries fall.
//
//===----------------------------------------------------------------------===//

#include "nn/Simd.h"

#ifdef TYPILUS_SIMD_AVX2

#include "support/Float16.h"

#include <cmath>
#include <cstring>
#include <immintrin.h>

using namespace typilus;
using namespace typilus::nn;

namespace {

inline float hsum(__m256 V) {
  __m128 Lo = _mm_add_ps(_mm256_castps256_ps128(V),
                         _mm256_extractf128_ps(V, 1));
  Lo = _mm_add_ps(Lo, _mm_movehl_ps(Lo, Lo));
  Lo = _mm_add_ss(Lo, _mm_shuffle_ps(Lo, Lo, 1));
  return _mm_cvtss_f32(Lo);
}

inline float hmax(__m256 V) {
  __m128 Lo = _mm_max_ps(_mm256_castps256_ps128(V),
                         _mm256_extractf128_ps(V, 1));
  Lo = _mm_max_ps(Lo, _mm_movehl_ps(Lo, Lo));
  Lo = _mm_max_ss(Lo, _mm_shuffle_ps(Lo, Lo, 1));
  return _mm_cvtss_f32(Lo);
}

//===----------------------------------------------------------------------===//
// exp: Cephes-style polynomial, vector and scalar-mirror forms
//===----------------------------------------------------------------------===//

// Constants of the classic single-precision expf reduction
// (exp(x) = 2^n * exp(r), |r| <= ln2/2; 6th-order polynomial for exp(r)).
constexpr float ExpHi = 88.3762626647949f;
constexpr float ExpLo = -88.3762626647949f;
constexpr float Log2E = 1.44269504088896341f;
constexpr float ExpC1 = 0.693359375f;
constexpr float ExpC2 = -2.12194440e-4f;
constexpr float ExpP0 = 1.9875691500e-4f;
constexpr float ExpP1 = 1.3981999507e-3f;
constexpr float ExpP2 = 8.3334519073e-3f;
constexpr float ExpP3 = 4.1665795894e-2f;
constexpr float ExpP4 = 1.6666665459e-1f;
constexpr float ExpP5 = 5.0000001201e-1f;

inline __m256 expV(__m256 X) {
  X = _mm256_min_ps(_mm256_max_ps(X, _mm256_set1_ps(ExpLo)),
                    _mm256_set1_ps(ExpHi));
  __m256 Fx = _mm256_floor_ps(
      _mm256_fmadd_ps(X, _mm256_set1_ps(Log2E), _mm256_set1_ps(0.5f)));
  X = _mm256_fnmadd_ps(Fx, _mm256_set1_ps(ExpC1), X);
  X = _mm256_fnmadd_ps(Fx, _mm256_set1_ps(ExpC2), X);
  __m256 Z = _mm256_mul_ps(X, X);
  __m256 Y = _mm256_set1_ps(ExpP0);
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(ExpP1));
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(ExpP2));
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(ExpP3));
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(ExpP4));
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(ExpP5));
  Y = _mm256_fmadd_ps(Y, Z, _mm256_add_ps(X, _mm256_set1_ps(1.f)));
  __m256i N = _mm256_slli_epi32(
      _mm256_add_epi32(_mm256_cvttps_epi32(Fx), _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(Y, _mm256_castsi256_ps(N));
}

/// Scalar mirror of expV: identical operation sequence per element, so a
/// remainder lane produces the same bits a vector lane would have.
inline float expS(float X) {
  X = std::min(std::max(X, ExpLo), ExpHi);
  float Fx = std::floor(std::fmaf(X, Log2E, 0.5f));
  X = std::fmaf(-Fx, ExpC1, X);
  X = std::fmaf(-Fx, ExpC2, X);
  float Z = X * X;
  float Y = ExpP0;
  Y = std::fmaf(Y, X, ExpP1);
  Y = std::fmaf(Y, X, ExpP2);
  Y = std::fmaf(Y, X, ExpP3);
  Y = std::fmaf(Y, X, ExpP4);
  Y = std::fmaf(Y, X, ExpP5);
  Y = std::fmaf(Y, Z, X + 1.f);
  uint32_t Bits = static_cast<uint32_t>(static_cast<int32_t>(Fx) + 127) << 23;
  float Pow;
  std::memcpy(&Pow, &Bits, sizeof(Pow));
  return Y * Pow;
}

//===----------------------------------------------------------------------===//
// GEMM building blocks
//===----------------------------------------------------------------------===//

void axpyRow(float *Dst, float A, const float *X, int64_t N) {
  __m256 VA = _mm256_set1_ps(A);
  int64_t I = 0;
  for (; I + 8 <= N; I += 8)
    _mm256_storeu_ps(Dst + I, _mm256_fmadd_ps(VA, _mm256_loadu_ps(X + I),
                                              _mm256_loadu_ps(Dst + I)));
  for (; I != N; ++I)
    Dst[I] = std::fmaf(A, X[I], Dst[I]);
}

float dot(const float *A, const float *B, int64_t N) {
  __m256 Acc0 = _mm256_setzero_ps();
  __m256 Acc1 = _mm256_setzero_ps();
  int64_t I = 0;
  for (; I + 16 <= N; I += 16) {
    Acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(A + I), _mm256_loadu_ps(B + I),
                           Acc0);
    Acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(A + I + 8),
                           _mm256_loadu_ps(B + I + 8), Acc1);
  }
  for (; I + 8 <= N; I += 8)
    Acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(A + I), _mm256_loadu_ps(B + I),
                           Acc0);
  float Sum = hsum(_mm256_add_ps(Acc0, Acc1));
  for (; I != N; ++I)
    Sum = std::fmaf(A[I], B[I], Sum);
  return Sum;
}

//===----------------------------------------------------------------------===//
// L1 distance against the three marker encodings
//===----------------------------------------------------------------------===//

void l1Step(__m256 &Acc, __m256 Q, __m256 R) {
  const __m256 SignMask = _mm256_set1_ps(-0.0f);
  Acc = _mm256_add_ps(Acc, _mm256_andnot_ps(SignMask, _mm256_sub_ps(Q, R)));
}

float l1(const float *A, const float *B, int64_t N) {
  __m256 Acc = _mm256_setzero_ps();
  int64_t I = 0;
  for (; I + 8 <= N; I += 8)
    l1Step(Acc, _mm256_loadu_ps(A + I), _mm256_loadu_ps(B + I));
  float Sum = hsum(Acc);
  for (; I != N; ++I)
    Sum += std::fabs(A[I] - B[I]);
  return Sum;
}

float l1F16(const float *Q, const uint16_t *Row, int64_t N) {
  __m256 Acc = _mm256_setzero_ps();
  int64_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256 R = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Row + I)));
    l1Step(Acc, _mm256_loadu_ps(Q + I), R);
  }
  float Sum = hsum(Acc);
  // vcvtph2ps and the software decoder agree exactly (f16 -> f32 is
  // lossless), so the tail matches the lanes bit-for-bit.
  for (; I != N; ++I)
    Sum += std::fabs(Q[I] - f16BitsToF32(Row[I]));
  return Sum;
}

float l1I8(const float *Q, const int8_t *Row, float Scale, int64_t N) {
  __m256 VS = _mm256_set1_ps(Scale);
  __m256 Acc = _mm256_setzero_ps();
  int64_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256i W = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(Row + I)));
    __m256 R = _mm256_mul_ps(VS, _mm256_cvtepi32_ps(W));
    l1Step(Acc, _mm256_loadu_ps(Q + I), R);
  }
  float Sum = hsum(Acc);
  for (; I != N; ++I)
    Sum += std::fabs(Q[I] - Scale * static_cast<float>(Row[I]));
  return Sum;
}

//===----------------------------------------------------------------------===//
// Elementwise
//
// The non-reduction bodies below use the scalar table's exact per-element
// operation sequence (mul then add, never a fused contraction), so they
// are bit-identical to the scalar reference — SimdTest pins that.
//===----------------------------------------------------------------------===//

void add(float *Dst, const float *Src, int64_t N) {
  int64_t I = 0;
  for (; I + 8 <= N; I += 8)
    _mm256_storeu_ps(Dst + I, _mm256_add_ps(_mm256_loadu_ps(Dst + I),
                                            _mm256_loadu_ps(Src + I)));
  for (; I != N; ++I)
    Dst[I] += Src[I];
}

void sub(float *Dst, const float *Src, int64_t N) {
  int64_t I = 0;
  for (; I + 8 <= N; I += 8)
    _mm256_storeu_ps(Dst + I, _mm256_sub_ps(_mm256_loadu_ps(Dst + I),
                                            _mm256_loadu_ps(Src + I)));
  for (; I != N; ++I)
    Dst[I] -= Src[I];
}

void mul(float *Dst, const float *Src, int64_t N) {
  int64_t I = 0;
  for (; I + 8 <= N; I += 8)
    _mm256_storeu_ps(Dst + I, _mm256_mul_ps(_mm256_loadu_ps(Dst + I),
                                            _mm256_loadu_ps(Src + I)));
  for (; I != N; ++I)
    Dst[I] *= Src[I];
}

void scale(float *Dst, float S, int64_t N) {
  __m256 VS = _mm256_set1_ps(S);
  int64_t I = 0;
  for (; I + 8 <= N; I += 8)
    _mm256_storeu_ps(Dst + I, _mm256_mul_ps(_mm256_loadu_ps(Dst + I), VS));
  for (; I != N; ++I)
    Dst[I] *= S;
}

void mulAcc(float *Dst, const float *A, const float *B, int64_t N) {
  int64_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256 P = _mm256_mul_ps(_mm256_loadu_ps(A + I), _mm256_loadu_ps(B + I));
    _mm256_storeu_ps(Dst + I, _mm256_add_ps(_mm256_loadu_ps(Dst + I), P));
  }
  for (; I != N; ++I)
    Dst[I] += A[I] * B[I];
}

void sigmoid(float *X, int64_t N) {
  const __m256 One = _mm256_set1_ps(1.f);
  int64_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256 E = expV(_mm256_sub_ps(_mm256_setzero_ps(),
                                  _mm256_loadu_ps(X + I)));
    _mm256_storeu_ps(X + I, _mm256_div_ps(One, _mm256_add_ps(One, E)));
  }
  for (; I != N; ++I)
    X[I] = 1.f / (1.f + expS(0.f - X[I]));
}

void sigmoidBwd(float *DX, const float *DY, const float *Y, int64_t N) {
  const __m256 One = _mm256_set1_ps(1.f);
  int64_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256 VY = _mm256_loadu_ps(Y + I);
    __m256 T = _mm256_mul_ps(_mm256_loadu_ps(DY + I), VY);
    T = _mm256_mul_ps(T, _mm256_sub_ps(One, VY));
    _mm256_storeu_ps(DX + I, _mm256_add_ps(_mm256_loadu_ps(DX + I), T));
  }
  for (; I != N; ++I)
    DX[I] += DY[I] * Y[I] * (1.f - Y[I]);
}

void tanhFwd(float *X, int64_t N) {
  // tanh(x) = sign(x) * (1 - e) / (1 + e) with e = exp(-2|x|) in (0, 1]:
  // the reduction never overflows and the division is well-conditioned.
  const __m256 One = _mm256_set1_ps(1.f);
  const __m256 SignMask = _mm256_set1_ps(-0.0f);
  int64_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256 V = _mm256_loadu_ps(X + I);
    __m256 Sign = _mm256_and_ps(V, SignMask);
    __m256 Abs = _mm256_andnot_ps(SignMask, V);
    __m256 E = expV(_mm256_mul_ps(_mm256_set1_ps(-2.f), Abs));
    __m256 R = _mm256_div_ps(_mm256_sub_ps(One, E), _mm256_add_ps(One, E));
    _mm256_storeu_ps(X + I, _mm256_or_ps(R, Sign));
  }
  for (; I != N; ++I) {
    float Abs = std::fabs(X[I]);
    float E = expS(-2.f * Abs);
    float R = (1.f - E) / (1.f + E);
    X[I] = std::copysign(R, X[I]);
  }
}

void tanhBwd(float *DX, const float *DY, const float *Y, int64_t N) {
  const __m256 One = _mm256_set1_ps(1.f);
  int64_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256 VY = _mm256_loadu_ps(Y + I);
    __m256 T = _mm256_mul_ps(_mm256_loadu_ps(DY + I),
                             _mm256_sub_ps(One, _mm256_mul_ps(VY, VY)));
    _mm256_storeu_ps(DX + I, _mm256_add_ps(_mm256_loadu_ps(DX + I), T));
  }
  for (; I != N; ++I)
    DX[I] += DY[I] * (1.f - Y[I] * Y[I]);
}

void relu(float *X, int64_t N) {
  const __m256 Zero = _mm256_setzero_ps();
  int64_t I = 0;
  // maxps(x, 0) returns its second operand unless x compares greater —
  // exactly the scalar `x > 0 ? x : 0` for zeros and NaN alike.
  for (; I + 8 <= N; I += 8)
    _mm256_storeu_ps(X + I, _mm256_max_ps(_mm256_loadu_ps(X + I), Zero));
  for (; I != N; ++I)
    X[I] = X[I] > 0.f ? X[I] : 0.f;
}

void reluBwd(float *DX, const float *DY, const float *X, int64_t N) {
  const __m256 Zero = _mm256_setzero_ps();
  int64_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256 Mask = _mm256_cmp_ps(_mm256_loadu_ps(X + I), Zero, _CMP_GT_OQ);
    __m256 T = _mm256_and_ps(Mask, _mm256_loadu_ps(DY + I));
    _mm256_storeu_ps(DX + I, _mm256_add_ps(_mm256_loadu_ps(DX + I), T));
  }
  for (; I != N; ++I)
    DX[I] += X[I] > 0.f ? DY[I] : 0.f;
}

//===----------------------------------------------------------------------===//
// Softmax row
//===----------------------------------------------------------------------===//

void softmaxRow(float *Row, int64_t Cols) {
  // Max: float max is exact whatever the order, so this equals the scalar
  // sequential max bit-for-bit.
  float Max = Row[0];
  int64_t I = 1;
  if (Cols >= 9) {
    __m256 VM = _mm256_loadu_ps(Row);
    for (I = 8; I + 8 <= Cols; I += 8)
      VM = _mm256_max_ps(VM, _mm256_loadu_ps(Row + I));
    Max = hmax(VM);
  }
  for (; I < Cols; ++I)
    Max = std::max(Max, Row[I]);

  __m256 VMax = _mm256_set1_ps(Max);
  __m256 VAcc = _mm256_setzero_ps();
  int64_t C = 0;
  for (; C + 8 <= Cols; C += 8) {
    __m256 E = expV(_mm256_sub_ps(_mm256_loadu_ps(Row + C), VMax));
    _mm256_storeu_ps(Row + C, E);
    VAcc = _mm256_add_ps(VAcc, E);
  }
  float Sum = hsum(VAcc);
  for (; C != Cols; ++C) {
    float E = expS(Row[C] - Max);
    Row[C] = E;
    Sum += E;
  }

  __m256 VSum = _mm256_set1_ps(Sum);
  for (C = 0; C + 8 <= Cols; C += 8)
    _mm256_storeu_ps(Row + C, _mm256_div_ps(_mm256_loadu_ps(Row + C), VSum));
  for (; C != Cols; ++C)
    Row[C] /= Sum;
}

constexpr simd::KernelTable Avx2Table = {
    axpyRow, dot,     l1,         l1F16,   l1I8,    add,
    sub,     mul,     scale,      mulAcc,  sigmoid, sigmoidBwd,
    tanhFwd, tanhBwd, relu,       reluBwd, softmaxRow,
    simd::Isa::Avx2,
};

} // namespace

const simd::KernelTable &simd::avx2Table() { return Avx2Table; }

#endif // TYPILUS_SIMD_AVX2
