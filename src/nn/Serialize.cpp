//===- nn/Serialize.cpp - Tensor and parameter I/O ---------------------------===//

#include "nn/Serialize.h"

using namespace typilus;
using namespace typilus::nn;

void nn::writeTensor(ArchiveWriter &W, const Tensor &T) {
  W.writeU32(static_cast<uint32_t>(T.rank()));
  for (int I = 0; I != T.rank(); ++I)
    W.writeI64(T.dim(I));
  W.writeF32Array(T.data(), static_cast<size_t>(T.numel()));
}

bool nn::readTensor(ArchiveCursor &C, Tensor &Out) {
  uint32_t Rank = C.readU32();
  if (!C.ok() || Rank > 2)
    return false;
  int64_t Dims[2] = {0, 0};
  for (uint32_t I = 0; I != Rank; ++I)
    Dims[I] = C.readI64();
  // Reject sizes the remaining payload cannot possibly hold BEFORE
  // constructing the tensor (a corrupt dim must not allocate petabytes);
  // each dim is bounded first so the product cannot overflow.
  uint64_t Limit = C.remaining() / 4;
  if (!C.ok() || Dims[0] < 0 || Dims[1] < 0 ||
      static_cast<uint64_t>(Dims[0]) > Limit ||
      static_cast<uint64_t>(Dims[1]) > Limit ||
      (Rank == 2 && Dims[1] > 0 &&
       static_cast<uint64_t>(Dims[0]) > Limit / static_cast<uint64_t>(Dims[1])))
    return false;
  Tensor T = Rank == 2 ? Tensor(Dims[0], Dims[1])
             : Rank == 1 ? Tensor(Dims[0])
                         : Tensor();
  C.readF32Array(T.data(), static_cast<size_t>(T.numel()));
  if (!C.ok())
    return false;
  Out = std::move(T);
  return true;
}

void nn::writeParams(ArchiveWriter &W, const ParamSet &PS) {
  W.writeU64(PS.params().size());
  for (const Value &P : PS.params())
    writeTensor(W, P.val());
}

bool nn::readParams(ArchiveCursor &C, ParamSet &PS, std::string *Err) {
  uint64_t Count = C.readU64();
  if (!C.ok() || Count != PS.params().size()) {
    if (Err && Err->empty())
      *Err = "parameter count mismatch: artifact has " +
             std::to_string(Count) + ", model expects " +
             std::to_string(PS.params().size());
    return false;
  }
  // Stage every tensor first and commit only when all of them parsed and
  // shape-checked: a mid-stream failure must not leave the live model
  // half old weights, half artifact.
  std::vector<Tensor> Staged(PS.params().size());
  for (size_t I = 0; I != PS.params().size(); ++I) {
    if (!readTensor(C, Staged[I])) {
      if (Err && Err->empty())
        *Err = "malformed parameter tensor " + std::to_string(I);
      return false;
    }
    if (!Staged[I].sameShape(PS.params()[I].val())) {
      if (Err && Err->empty())
        *Err = "parameter " + std::to_string(I) +
               " shape mismatch between artifact and model";
      return false;
    }
  }
  for (size_t I = 0; I != PS.params().size(); ++I) {
    // Value handles share their node, so overwriting through a copy
    // updates the model's parameter in place.
    Value P = PS.params()[I];
    P.valMutable() = std::move(Staged[I]);
  }
  return true;
}
