//===- nn/Autograd.h - Reverse-mode automatic differentiation -----*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tape-free reverse-mode autograd over Tensor: each op allocates a Node
/// holding its result, its parents and a backward closure. `backward()`
/// topologically sorts the DAG from the loss and accumulates gradients.
/// This is the substrate for the GGNN, the biGRU baseline, the path encoder
/// and all three training losses of the paper (Eqs. 1, 3, 4).
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_NN_AUTOGRAD_H
#define TYPILUS_NN_AUTOGRAD_H

#include "nn/Tensor.h"

#include <functional>
#include <memory>
#include <vector>

namespace typilus {
namespace nn {

/// A node of the computation DAG.
class Node {
public:
  Tensor Val;
  Tensor Grad; ///< Allocated lazily by backward().
  /// True for parameters and for any node depending on one.
  bool NeedsGrad = false;
  std::vector<std::shared_ptr<Node>> Prev;
  /// Accumulates this node's Grad into its parents' Grads.
  std::function<void()> BackwardFn;

  void ensureGrad() {
    if (!Grad.sameShape(Val))
      Grad = Tensor::zerosLike(Val);
  }
};

/// Value handle; cheap to copy.
class Value {
public:
  Value() = default;
  explicit Value(std::shared_ptr<Node> N) : N(std::move(N)) {}

  /// A node that does not require gradients (inputs, masks...).
  static Value constant(Tensor T) {
    auto Nd = std::make_shared<Node>();
    Nd->Val = std::move(T);
    return Value(std::move(Nd));
  }
  /// A trainable parameter.
  static Value param(Tensor T) {
    auto Nd = std::make_shared<Node>();
    Nd->Val = std::move(T);
    Nd->NeedsGrad = true;
    return Value(std::move(Nd));
  }

  bool defined() const { return N != nullptr; }
  const Tensor &val() const { return N->Val; }
  Tensor &valMutable() { return N->Val; }
  Tensor &grad() const {
    N->ensureGrad();
    return N->Grad;
  }
  bool needsGrad() const { return N->NeedsGrad; }
  const std::shared_ptr<Node> &node() const { return N; }

private:
  std::shared_ptr<Node> N;
};

//===----------------------------------------------------------------------===//
// Ops. Unless noted, tensors are rank-2 [rows, cols].
//===----------------------------------------------------------------------===//

/// A + B; B may be rank-1 (a bias broadcast over A's rows).
Value add(Value A, Value B);
/// A - B (same shape).
Value sub(Value A, Value B);
/// Elementwise product (same shape).
Value mul(Value A, Value B);
/// S * A.
Value scale(Value A, float S);
/// [M,K] x [K,N].
Value matmul(Value A, Value B);
/// A x B^T with B stored [N,K] -> [M,N]. (Classification head, Eq. 1.)
Value matmulNT(Value A, Value B);
Value sigmoid(Value A);
Value tanhOp(Value A);
Value relu(Value A);
/// [N,K1] ++ [N,K2] -> [N,K1+K2].
Value concatCols(Value A, Value B);
/// Vertically stacks matrices with equal column counts.
Value concatRows(const std::vector<Value> &Parts);
/// Softmax(Scores)-weighted sum of Rows: ([K,1], [K,D]) -> [1,D].
/// (The code2seq-style self-weighted path average, Sec. 6.1.)
Value attentionPool(Value Scores, Value Rows);
/// Out[i] = A[Idx[i]].
Value gatherRows(Value A, std::vector<int> Idx);
/// Out[n] = elementwise max over {Msgs[e] : Dst[e] == n}; 0 when empty.
/// The GGNN message aggregation (the paper uses max pooling, Sec. 4.3).
/// \p Dst is only read during the forward pass (the backward keeps the
/// argmax table instead), so callers can reuse one list across timesteps.
Value scatterMax(Value Msgs, const std::vector<int> &Dst, int64_t NumRows);
/// Out[n] = mean over {Msgs[e] : Dst[e] == n}; 0 when empty.
Value scatterMean(Value Msgs, std::vector<int> Dst, int64_t NumRows);
/// Out = Base, then Out[Idx[m]] += Rows[m] for each m.
Value indexAddRows(Value Base, std::vector<int> Idx, Value Rows);
/// [N,D] -> [1,D] columnwise max.
Value reduceMaxRows(Value A);
/// Mean of all entries -> scalar [1].
Value meanAll(Value A);
/// Mean softmax cross-entropy over rows with Labels[i] >= 0 -> scalar [1].
Value softmaxCrossEntropy(Value Logits, std::vector<int> Labels);
/// Pairwise L1 distance matrix of the rows of A: [N,D] -> [N,N].
/// (The TypeSpace uses L1, Sec. 4.1.)
Value pairwiseL1(Value A);
/// The Typilus similarity loss L_SPACE (Eq. 3) over a precomputed distance
/// matrix. TypeIds[i] is the type label of row i (< 0 = unlabeled, skipped).
Value spaceLoss(Value Dists, const std::vector<int> &TypeIds, float Margin);

/// Runs reverse-mode accumulation from scalar \p Root.
void backward(Value Root);

/// Plain (non-differentiable) row-wise softmax helper for inference.
Tensor softmaxRows(const Tensor &Logits);

} // namespace nn
} // namespace typilus

#endif // TYPILUS_NN_AUTOGRAD_H
