//===- nn/Simd.h - Runtime-dispatched SIMD kernel table -----------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime ISA dispatch for the innermost float loops. The public kernels
/// (nn/Kernels.h) and the τmap distance scans (knn/TypeMap.cpp) fetch the
/// process-wide `KernelTable` once per call and run their chunk bodies
/// through it; the table is selected at startup by CPU detection (AVX2+FMA
/// +F16C on x86-64, NEON on aarch64) and can be forced back to scalar with
/// `setSimdEnabled(false)` (the CLI's `--no-simd`).
///
/// Determinism contract (see docs/ARCHITECTURE.md "Execution layer"):
///
///  - The scalar table is the reference: its entries are the historical
///    loops verbatim, so with SIMD off (or unavailable) every result is
///    bit-identical to pre-SIMD builds, for any thread count.
///  - The SIMD tables are validated against the scalar table by tolerance
///    (tests/NnTest.cpp SimdTest). They are still deterministic for any
///    thread count on a given build+CPU: remainder lanes mirror the vector
///    lanes' per-element operation sequence (fmaf for FMA lanes, the same
///    polynomial for exp), so an element's value never depends on where a
///    parallel chunk boundary fell.
///
/// Kernels here are chunk-level: no threading, no dispatch thresholds —
/// callers own both.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_NN_SIMD_H
#define TYPILUS_NN_SIMD_H

#include <cstdint>

namespace typilus {
namespace nn {
namespace simd {

enum class Isa { Scalar, Avx2, Neon };

/// The per-ISA entry points. All pointers are always non-null.
struct KernelTable {
  /// dst[i] += a * x[i] — the GEMM k-j inner tile and axpyAcc.
  void (*AxpyRow)(float *Dst, float A, const float *X, int64_t N);
  /// Contiguous dot product — the transposed-B GEMM inner loop.
  float (*Dot)(const float *A, const float *B, int64_t N);

  /// L1 distances against the three τmap marker encodings. The f16 row is
  /// raw binary16 bit patterns; the int8 row decodes as scale * v.
  float (*L1)(const float *A, const float *B, int64_t N);
  float (*L1F16)(const float *Q, const uint16_t *Row, int64_t N);
  float (*L1I8)(const float *Q, const int8_t *Row, float Scale, int64_t N);

  // Fused elementwise bodies (chunk of the nn/Kernels.h kernels).
  void (*Add)(float *Dst, const float *Src, int64_t N);
  void (*Sub)(float *Dst, const float *Src, int64_t N);
  void (*Mul)(float *Dst, const float *Src, int64_t N);
  void (*Scale)(float *Dst, float S, int64_t N);
  void (*MulAcc)(float *Dst, const float *A, const float *B, int64_t N);
  void (*Sigmoid)(float *X, int64_t N);
  void (*SigmoidBwd)(float *DX, const float *DY, const float *Y, int64_t N);
  void (*Tanh)(float *X, int64_t N);
  void (*TanhBwd)(float *DX, const float *DY, const float *Y, int64_t N);
  void (*Relu)(float *X, int64_t N);
  void (*ReluBwd)(float *DX, const float *DY, const float *X, int64_t N);

  /// One row of softmaxRowsInPlace: max-shift, exp, normalize.
  void (*SoftmaxRow)(float *Row, int64_t Cols);

  Isa WhichIsa = Isa::Scalar;
};

/// The table kernels currently dispatch through. Either the best
/// SIMD-capable table for this CPU or the scalar reference.
const KernelTable &active();

/// The scalar reference table (always available; what `--no-simd` pins).
const KernelTable &scalarTable();

/// True when a SIMD table exists for this build and CPU.
bool simdAvailable();

/// Routes active() to the SIMD table (true) or the scalar reference
/// (false). Enabling is a no-op when simdAvailable() is false. Thread-safe
/// but intended for startup (the CLI flag), not mid-computation flips.
void setSimdEnabled(bool Enabled);
bool simdEnabled();

Isa activeIsa();
const char *isaName(Isa I);

// Per-ISA table factories. Only defined when the matching translation
// unit is in the build (TYPILUS_SIMD_AVX2 / TYPILUS_SIMD_NEON); resolved
// through the detection logic in Simd.cpp, never called directly.
const KernelTable &avx2Table();
const KernelTable &neonTable();

} // namespace simd
} // namespace nn
} // namespace typilus

#endif // TYPILUS_NN_SIMD_H
