//===- nn/Tensor.h - Dense float tensors --------------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal dense float32 tensor (rank 1 or 2, row-major). Deliberately
/// simple: value semantics, bounds-checked accessors in debug builds, no
/// views. The raw compute kernels (GEMM and friends) live in nn/Kernels.h;
/// it is re-exported here since most tensor users also need gemm().
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_NN_TENSOR_H
#define TYPILUS_NN_TENSOR_H

#include "nn/Kernels.h"
#include "support/Rng.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace typilus {

/// Dense row-major float tensor of rank 1 or 2.
class Tensor {
public:
  Tensor() = default;

  /// Rank-1 zeros.
  explicit Tensor(int64_t N) : Shape{N}, Data(static_cast<size_t>(N), 0.f) {
    assert(N >= 0);
  }
  /// Rank-2 zeros.
  Tensor(int64_t Rows, int64_t Cols)
      : Shape{Rows, Cols}, Data(static_cast<size_t>(Rows * Cols), 0.f) {
    assert(Rows >= 0 && Cols >= 0);
  }

  static Tensor zerosLike(const Tensor &T) {
    Tensor R;
    R.Shape = T.Shape;
    R.Data.assign(T.Data.size(), 0.f);
    return R;
  }

  /// Gaussian init with std \p Scale.
  static Tensor randn(int64_t Rows, int64_t Cols, Rng &R, float Scale) {
    Tensor T(Rows, Cols);
    for (float &X : T.Data)
      X = static_cast<float>(R.normal()) * Scale;
    return T;
  }

  /// 1x1 scalar tensor.
  static Tensor scalar(float V) {
    Tensor T(1);
    T.Data[0] = V;
    return T;
  }

  int rank() const { return static_cast<int>(Shape.size()); }
  int64_t dim(int I) const {
    assert(I < rank());
    return Shape[static_cast<size_t>(I)];
  }
  /// Rows for rank-2, length for rank-1.
  int64_t rows() const { return Shape.empty() ? 0 : Shape[0]; }
  int64_t cols() const { return rank() == 2 ? Shape[1] : 1; }
  int64_t numel() const { return static_cast<int64_t>(Data.size()); }
  bool sameShape(const Tensor &O) const { return Shape == O.Shape; }

  float *data() { return Data.data(); }
  const float *data() const { return Data.data(); }

  float &operator[](int64_t I) {
    assert(I >= 0 && I < numel());
    return Data[static_cast<size_t>(I)];
  }
  float operator[](int64_t I) const {
    assert(I >= 0 && I < numel());
    return Data[static_cast<size_t>(I)];
  }
  float &at(int64_t R, int64_t C) {
    assert(rank() == 2 && R < Shape[0] && C < Shape[1]);
    return Data[static_cast<size_t>(R * Shape[1] + C)];
  }
  float at(int64_t R, int64_t C) const {
    assert(rank() == 2 && R < Shape[0] && C < Shape[1]);
    return Data[static_cast<size_t>(R * Shape[1] + C)];
  }

  void fill(float V) { Data.assign(Data.size(), V); }

  const std::vector<int64_t> &shape() const { return Shape; }

private:
  std::vector<int64_t> Shape;
  std::vector<float> Data;
};

} // namespace typilus

#endif // TYPILUS_NN_TENSOR_H
