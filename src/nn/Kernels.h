//===- nn/Kernels.h - Raw float tensor kernels --------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The raw float kernels the autograd ops (nn/Ops.cpp) are glued onto:
/// cache-blocked GEMM plus fused elementwise / row-structured routines over
/// contiguous buffers. Each kernel dispatches through the process-wide
/// ThreadPool above a size threshold.
///
/// Determinism contract: every kernel computes each output element with the
/// same floating-point operation sequence regardless of thread count, and
/// parallel chunks write disjoint outputs — so results are bit-identical
/// for any pool size. Kernels are free of autograd state and unit-testable
/// in isolation (tests/NnTest.cpp pins them against naive references).
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_NN_KERNELS_H
#define TYPILUS_NN_KERNELS_H

#include <cstdint>

namespace typilus {

/// C = alpha * op(A) * op(B) + beta * C, where op transposes when the flag
/// is set. Shapes: op(A) is MxK, op(B) is KxN, C is MxN. Cache-blocked and
/// row-parallel; per-element accumulation order (k ascending) is that of
/// the naive i-k-j kernel, so the result is bit-identical to it.
void gemm(bool TransA, bool TransB, int64_t M, int64_t N, int64_t K,
          float Alpha, const float *A, const float *B, float Beta, float *C);

namespace nn {
namespace kernels {

/// Elementwise kernels below this many elements run inline; at or above it
/// they chunk through the pool (chunking never changes per-element math).
constexpr int64_t ElementwiseGrain = 16384;
/// GEMMs with fewer multiply-adds than this run single-threaded.
constexpr int64_t GemmParallelFlops = 1 << 17;

/// Row grain for row-parallel loops over [Rows, D] matrices: chunks carry
/// at least ~ElementwiseGrain elements. Shared by the kernels and the ops
/// glue so dispatch thresholds stay in sync.
inline int64_t rowGrain(int64_t D) {
  int64_t G = ElementwiseGrain / (D > 0 ? D : 1);
  return G > 0 ? G : 1;
}

// Fused elementwise over contiguous buffers. `InPlace` mutate Dst; the
// `Acc` variants accumulate (Dst += ...), matching backward-pass use.
void addInPlace(float *Dst, const float *Src, int64_t N);  ///< dst += src
void subInPlace(float *Dst, const float *Src, int64_t N);  ///< dst -= src
void mulInPlace(float *Dst, const float *Src, int64_t N);  ///< dst *= src
void scaleInPlace(float *Dst, float S, int64_t N);         ///< dst *= s
void axpyAcc(float *Dst, float A, const float *X, int64_t N); ///< dst += a*x
void mulAcc(float *Dst, const float *A, const float *B,
            int64_t N); ///< dst += a*b

// Fused activations: forward transforms X in place; backward accumulates
// dX += dY * f'(...) given the forward output Y (or input X for relu).
void sigmoidForward(float *X, int64_t N);
void sigmoidBackwardAcc(float *DX, const float *DY, const float *Y,
                        int64_t N);
void tanhForward(float *X, int64_t N);
void tanhBackwardAcc(float *DX, const float *DY, const float *Y, int64_t N);
void reluForward(float *X, int64_t N);
void reluBackwardAcc(float *DX, const float *DY, const float *X, int64_t N);

// Row-structured kernels (row-major matrices; rows are independent and
// processed in parallel).

/// Out[i, :] = A[Idx[i], :] for i in [0, NumIdx).
void gatherRows(float *Out, const float *A, const int *Idx, int64_t NumIdx,
                int64_t D);
/// Row-wise softmax in place over an [Rows, Cols] matrix.
void softmaxRowsInPlace(float *X, int64_t Rows, int64_t Cols);
/// Out[i, j] = L1(A[i, :], A[j, :]) over an [R, D] matrix; Out is [R, R]
/// with a zero diagonal. Each unordered pair is computed once.
void pairwiseL1(float *Out, const float *A, int64_t R, int64_t D);

} // namespace kernels
} // namespace nn
} // namespace typilus

#endif // TYPILUS_NN_KERNELS_H
