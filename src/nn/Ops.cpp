//===- nn/Ops.cpp - Autograd op implementations ------------------------------===//
//
// Autograd glue only: each op wires the DAG (makeOut + backward closure)
// and delegates the float work to the kernels in nn/Kernels.cpp, which
// run blocked and pool-parallel above a size threshold. Ops whose natural
// backward accumulation has write conflicts across rows (repeated gather
// indices, scatter destinations, pairwise distances) keep their serial
// loops — in the exact seed order — so every op is bit-reproducible for
// any thread count.
//
//===----------------------------------------------------------------------===//

#include "nn/Autograd.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <unordered_set>

using namespace typilus;
using namespace typilus::nn;
using namespace typilus::nn::kernels;

namespace {

/// Creates the output node for an op with the given parents; wires
/// NeedsGrad. The backward closure is attached afterwards iff needed.
std::shared_ptr<Node> makeOut(Tensor Val,
                              std::initializer_list<Value> Parents) {
  auto Out = std::make_shared<Node>();
  Out->Val = std::move(Val);
  for (const Value &P : Parents) {
    assert(P.defined() && "op on undefined Value");
    Out->Prev.push_back(P.node());
    Out->NeedsGrad |= P.node()->NeedsGrad;
  }
  return Out;
}

} // namespace

Value nn::add(Value A, Value B) {
  const Tensor &TA = A.val(), &TB = B.val();
  Tensor Out = TA;
  if (TA.sameShape(TB)) {
    addInPlace(Out.data(), TB.data(), Out.numel());
  } else {
    // Bias broadcast: B is rank-1 of length cols(A).
    assert(TB.rank() == 1 && TB.rows() == TA.cols() && "bad add broadcast");
    int64_t Cols = TA.cols();
    parallelFor(0, TA.rows(), rowGrain(Cols), [&](int64_t Lo, int64_t Hi) {
      for (int64_t R = Lo; R != Hi; ++R)
        for (int64_t C = 0; C != Cols; ++C)
          Out.at(R, C) += TB[C];
    });
  }
  auto N = makeOut(std::move(Out), {A, B});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node(), NB = B.node();
    bool Broadcast = !TA.sameShape(TB);
    N->BackwardFn = [O, NA, NB, Broadcast] {
      if (NA->NeedsGrad) {
        NA->ensureGrad();
        addInPlace(NA->Grad.data(), O->Grad.data(), O->Grad.numel());
      }
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        if (!Broadcast) {
          addInPlace(NB->Grad.data(), O->Grad.data(), O->Grad.numel());
        } else {
          // Column sums; each column's contributions stay row-ascending.
          int64_t Rows = O->Grad.rows(), Cols = O->Grad.cols();
          parallelFor(0, Cols, 8, [&](int64_t Lo, int64_t Hi) {
            for (int64_t C = Lo; C != Hi; ++C)
              for (int64_t R = 0; R != Rows; ++R)
                NB->Grad[C] += O->Grad.at(R, C);
          });
        }
      }
    };
  }
  return Value(std::move(N));
}

Value nn::sub(Value A, Value B) {
  const Tensor &TA = A.val(), &TB = B.val();
  assert(TA.sameShape(TB) && "sub requires matching shapes");
  Tensor Out = TA;
  subInPlace(Out.data(), TB.data(), Out.numel());
  auto N = makeOut(std::move(Out), {A, B});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node(), NB = B.node();
    N->BackwardFn = [O, NA, NB] {
      if (NA->NeedsGrad) {
        NA->ensureGrad();
        addInPlace(NA->Grad.data(), O->Grad.data(), O->Grad.numel());
      }
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        subInPlace(NB->Grad.data(), O->Grad.data(), O->Grad.numel());
      }
    };
  }
  return Value(std::move(N));
}

Value nn::mul(Value A, Value B) {
  const Tensor &TA = A.val(), &TB = B.val();
  assert(TA.sameShape(TB) && "mul requires matching shapes");
  Tensor Out = TA;
  mulInPlace(Out.data(), TB.data(), Out.numel());
  auto N = makeOut(std::move(Out), {A, B});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node(), NB = B.node();
    N->BackwardFn = [O, NA, NB] {
      if (NA->NeedsGrad) {
        NA->ensureGrad();
        mulAcc(NA->Grad.data(), O->Grad.data(), NB->Val.data(),
               O->Grad.numel());
      }
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        mulAcc(NB->Grad.data(), O->Grad.data(), NA->Val.data(),
               O->Grad.numel());
      }
    };
  }
  return Value(std::move(N));
}

Value nn::scale(Value A, float S) {
  Tensor Out = A.val();
  scaleInPlace(Out.data(), S, Out.numel());
  auto N = makeOut(std::move(Out), {A});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node();
    N->BackwardFn = [O, NA, S] {
      NA->ensureGrad();
      axpyAcc(NA->Grad.data(), S, O->Grad.data(), O->Grad.numel());
    };
  }
  return Value(std::move(N));
}

Value nn::matmul(Value A, Value B) {
  const Tensor &TA = A.val(), &TB = B.val();
  assert(TA.rank() == 2 && TB.rank() == 2 && TA.cols() == TB.rows() &&
         "matmul shape mismatch");
  int64_t M = TA.rows(), K = TA.cols(), Nc = TB.cols();
  Tensor Out(M, Nc);
  gemm(false, false, M, Nc, K, 1.f, TA.data(), TB.data(), 0.f, Out.data());
  auto N = makeOut(std::move(Out), {A, B});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node(), NB = B.node();
    N->BackwardFn = [O, NA, NB, M, K, Nc] {
      if (NA->NeedsGrad) {
        NA->ensureGrad();
        // dA += dC * B^T : [M,Nc] x [Nc,K] with B stored [K,Nc] -> TransB.
        gemm(false, true, M, K, Nc, 1.f, O->Grad.data(), NB->Val.data(), 1.f,
             NA->Grad.data());
      }
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        // dB += A^T * dC.
        gemm(true, false, K, Nc, M, 1.f, NA->Val.data(), O->Grad.data(), 1.f,
             NB->Grad.data());
      }
    };
  }
  return Value(std::move(N));
}

Value nn::matmulNT(Value A, Value B) {
  const Tensor &TA = A.val(), &TB = B.val();
  assert(TA.rank() == 2 && TB.rank() == 2 && TA.cols() == TB.cols() &&
         "matmulNT shape mismatch");
  int64_t M = TA.rows(), K = TA.cols(), Nc = TB.rows();
  Tensor Out(M, Nc);
  gemm(false, true, M, Nc, K, 1.f, TA.data(), TB.data(), 0.f, Out.data());
  auto N = makeOut(std::move(Out), {A, B});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node(), NB = B.node();
    N->BackwardFn = [O, NA, NB, M, K, Nc] {
      if (NA->NeedsGrad) {
        NA->ensureGrad();
        // dA += dC * B : [M,Nc] x [Nc,K].
        gemm(false, false, M, K, Nc, 1.f, O->Grad.data(), NB->Val.data(), 1.f,
             NA->Grad.data());
      }
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        // dB += dC^T * A : [Nc,M] x [M,K].
        gemm(true, false, Nc, K, M, 1.f, O->Grad.data(), NA->Val.data(), 1.f,
             NB->Grad.data());
      }
    };
  }
  return Value(std::move(N));
}

namespace {

/// Unary activation glue: \p Fwd transforms the copied buffer in place;
/// \p Bwd accumulates dX given (dY, reference buffer) — the forward output
/// for sigmoid/tanh, the forward input for relu.
enum class ActRef { Output, Input };

template <typename FwdKernel, typename BwdKernel>
Value activation(Value A, FwdKernel Fwd, BwdKernel Bwd, ActRef Ref) {
  Tensor Out = A.val();
  Fwd(Out.data(), Out.numel());
  auto N = makeOut(std::move(Out), {A});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node();
    N->BackwardFn = [O, NA, Bwd, Ref] {
      NA->ensureGrad();
      const Tensor &RefT = Ref == ActRef::Output ? O->Val : NA->Val;
      Bwd(NA->Grad.data(), O->Grad.data(), RefT.data(), O->Grad.numel());
    };
  }
  return Value(std::move(N));
}

} // namespace

Value nn::sigmoid(Value A) {
  return activation(A, sigmoidForward, sigmoidBackwardAcc, ActRef::Output);
}

Value nn::tanhOp(Value A) {
  return activation(A, tanhForward, tanhBackwardAcc, ActRef::Output);
}

Value nn::relu(Value A) {
  return activation(A, reluForward, reluBackwardAcc, ActRef::Input);
}

Value nn::concatCols(Value A, Value B) {
  const Tensor &TA = A.val(), &TB = B.val();
  assert(TA.rank() == 2 && TB.rank() == 2 && TA.rows() == TB.rows() &&
         "concatCols shape mismatch");
  int64_t R = TA.rows(), CA = TA.cols(), CB = TB.cols();
  Tensor Out(R, CA + CB);
  parallelFor(0, R, rowGrain(CA + CB), [&](int64_t Lo, int64_t Hi) {
    for (int64_t I = Lo; I != Hi; ++I) {
      std::memcpy(&Out.at(I, 0), TA.data() + I * CA,
                  static_cast<size_t>(CA) * sizeof(float));
      std::memcpy(&Out.at(I, CA), TB.data() + I * CB,
                  static_cast<size_t>(CB) * sizeof(float));
    }
  });
  auto N = makeOut(std::move(Out), {A, B});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node(), NB = B.node();
    N->BackwardFn = [O, NA, NB, R, CA, CB] {
      if (NA->NeedsGrad) {
        NA->ensureGrad();
        parallelFor(0, R, rowGrain(CA), [&](int64_t Lo, int64_t Hi) {
          for (int64_t I = Lo; I != Hi; ++I)
            for (int64_t J = 0; J != CA; ++J)
              NA->Grad.at(I, J) += O->Grad.at(I, J);
        });
      }
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        parallelFor(0, R, rowGrain(CB), [&](int64_t Lo, int64_t Hi) {
          for (int64_t I = Lo; I != Hi; ++I)
            for (int64_t J = 0; J != CB; ++J)
              NB->Grad.at(I, J) += O->Grad.at(I, CA + J);
        });
      }
    };
  }
  return Value(std::move(N));
}

Value nn::concatRows(const std::vector<Value> &Parts) {
  assert(!Parts.empty() && "concatRows of nothing");
  int64_t D = Parts[0].val().cols();
  int64_t TotalRows = 0;
  for (const Value &P : Parts) {
    assert(P.val().rank() == 2 && P.val().cols() == D &&
           "concatRows column mismatch");
    TotalRows += P.val().rows();
  }
  Tensor Out(TotalRows, D);
  int64_t Row = 0;
  for (const Value &P : Parts) {
    const Tensor &T = P.val();
    // Equal column counts make each part one contiguous block.
    std::memcpy(Out.data() + Row * D, T.data(),
                static_cast<size_t>(T.numel()) * sizeof(float));
    Row += T.rows();
  }
  auto N = std::make_shared<Node>();
  N->Val = std::move(Out);
  for (const Value &P : Parts) {
    N->Prev.push_back(P.node());
    N->NeedsGrad |= P.node()->NeedsGrad;
  }
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto Parents = N->Prev;
    N->BackwardFn = [O, Parents, D] {
      int64_t Row = 0;
      for (const auto &P : Parents) {
        int64_t R = P->Val.rows();
        if (P->NeedsGrad) {
          P->ensureGrad();
          addInPlace(P->Grad.data(), O->Grad.data() + Row * D, R * D);
        }
        Row += R;
      }
    };
  }
  return Value(std::move(N));
}

Value nn::attentionPool(Value Scores, Value Rows) {
  const Tensor &TS = Scores.val(), &TR = Rows.val();
  assert(TS.rank() == 2 && TS.cols() == 1 && TS.rows() == TR.rows() &&
         "attentionPool shape mismatch");
  int64_t K = TR.rows(), D = TR.cols();
  // Softmax over the K scores. (K is the paths-per-symbol count — small —
  // so this op stays serial.)
  Tensor Alpha(K);
  float Max = TS.at(0, 0);
  for (int64_t I = 1; I != K; ++I)
    Max = std::max(Max, TS.at(I, 0));
  float Sum = 0;
  for (int64_t I = 0; I != K; ++I) {
    Alpha[I] = std::exp(TS.at(I, 0) - Max);
    Sum += Alpha[I];
  }
  for (int64_t I = 0; I != K; ++I)
    Alpha[I] /= Sum;
  Tensor Out(static_cast<int64_t>(1), D);
  for (int64_t I = 0; I != K; ++I)
    for (int64_t J = 0; J != D; ++J)
      Out.at(0, J) += Alpha[I] * TR.at(I, J);
  auto N = makeOut(std::move(Out), {Scores, Rows});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NS = Scores.node(), NR = Rows.node();
    N->BackwardFn = [O, NS, NR, Alpha = std::move(Alpha), K, D] {
      // dRows[i] = alpha_i * dOut.
      if (NR->NeedsGrad) {
        NR->ensureGrad();
        for (int64_t I = 0; I != K; ++I)
          for (int64_t J = 0; J != D; ++J)
            NR->Grad.at(I, J) += Alpha[I] * O->Grad.at(0, J);
      }
      // dScore_i = alpha_i * (g.r_i - sum_k alpha_k g.r_k).
      if (NS->NeedsGrad) {
        NS->ensureGrad();
        float Mix = 0;
        std::vector<float> GDotR(static_cast<size_t>(K), 0.f);
        for (int64_t I = 0; I != K; ++I) {
          float Dot = 0;
          for (int64_t J = 0; J != D; ++J)
            Dot += O->Grad.at(0, J) * NR->Val.at(I, J);
          GDotR[static_cast<size_t>(I)] = Dot;
          Mix += Alpha[I] * Dot;
        }
        for (int64_t I = 0; I != K; ++I)
          NS->Grad.at(I, 0) += Alpha[I] * (GDotR[static_cast<size_t>(I)] - Mix);
      }
    };
  }
  return Value(std::move(N));
}

Value nn::gatherRows(Value A, std::vector<int> Idx) {
  const Tensor &TA = A.val();
  assert(TA.rank() == 2 && "gatherRows needs a matrix");
  int64_t D = TA.cols();
#ifndef NDEBUG
  for (int I : Idx)
    assert(I >= 0 && I < TA.rows() && "gather index out of range");
#endif
  Tensor Out(static_cast<int64_t>(Idx.size()), D);
  kernels::gatherRows(Out.data(), TA.data(), Idx.data(),
                      static_cast<int64_t>(Idx.size()), D);
  auto N = makeOut(std::move(Out), {A});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node();
    // Backward scatters with possibly repeated indices: serial.
    N->BackwardFn = [O, NA, Idx = std::move(Idx), D] {
      NA->ensureGrad();
      for (size_t I = 0; I != Idx.size(); ++I)
        for (int64_t J = 0; J != D; ++J)
          NA->Grad.at(Idx[I], J) += O->Grad.at(static_cast<int64_t>(I), J);
    };
  }
  return Value(std::move(N));
}

Value nn::scatterMax(Value Msgs, const std::vector<int> &Dst,
                     int64_t NumRows) {
  const Tensor &TM = Msgs.val();
  assert(TM.rank() == 2 && TM.rows() == static_cast<int64_t>(Dst.size()) &&
         "scatterMax shape mismatch");
  int64_t D = TM.cols();
  Tensor Out(NumRows, D);
  // Argmax message per (row, dim); -1 = no message (output stays 0).
  // Destination-conflicting writes: serial, in edge order.
  std::vector<int> Arg(static_cast<size_t>(NumRows * D), -1);
  for (size_t E = 0; E != Dst.size(); ++E) {
    int Nd = Dst[E];
    assert(Nd >= 0 && Nd < NumRows && "scatter destination out of range");
    for (int64_t J = 0; J != D; ++J) {
      float V = TM.at(static_cast<int64_t>(E), J);
      int &Slot = Arg[static_cast<size_t>(Nd * D + J)];
      if (Slot < 0 || V > Out.at(Nd, J)) {
        Out.at(Nd, J) = V;
        Slot = static_cast<int>(E);
      }
    }
  }
  auto N = makeOut(std::move(Out), {Msgs});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NM = Msgs.node();
    N->BackwardFn = [O, NM, Arg = std::move(Arg), NumRows, D] {
      NM->ensureGrad();
      for (int64_t R = 0; R != NumRows; ++R)
        for (int64_t J = 0; J != D; ++J) {
          int E = Arg[static_cast<size_t>(R * D + J)];
          if (E >= 0)
            NM->Grad.at(E, J) += O->Grad.at(R, J);
        }
    };
  }
  return Value(std::move(N));
}

Value nn::scatterMean(Value Msgs, std::vector<int> Dst, int64_t NumRows) {
  const Tensor &TM = Msgs.val();
  assert(TM.rank() == 2 && TM.rows() == static_cast<int64_t>(Dst.size()) &&
         "scatterMean shape mismatch");
  int64_t D = TM.cols();
  Tensor Out(NumRows, D);
  std::vector<int> Count(static_cast<size_t>(NumRows), 0);
  for (size_t E = 0; E != Dst.size(); ++E) {
    assert(Dst[E] >= 0 && Dst[E] < NumRows && "scatter dest out of range");
    ++Count[static_cast<size_t>(Dst[E])];
    for (int64_t J = 0; J != D; ++J)
      Out.at(Dst[E], J) += TM.at(static_cast<int64_t>(E), J);
  }
  for (int64_t R = 0; R != NumRows; ++R)
    if (Count[static_cast<size_t>(R)] > 0)
      for (int64_t J = 0; J != D; ++J)
        Out.at(R, J) /= static_cast<float>(Count[static_cast<size_t>(R)]);
  auto N = makeOut(std::move(Out), {Msgs});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NM = Msgs.node();
    // Backward writes one distinct source row per message: row-parallel.
    N->BackwardFn = [O, NM, Dst = std::move(Dst), Count = std::move(Count),
                     D] {
      NM->ensureGrad();
      int64_t NumMsgs = static_cast<int64_t>(Dst.size());
      parallelFor(0, NumMsgs, rowGrain(D), [&](int64_t Lo, int64_t Hi) {
        for (int64_t E = Lo; E != Hi; ++E) {
          float Inv =
              1.f / static_cast<float>(Count[static_cast<size_t>(
                        Dst[static_cast<size_t>(E)])]);
          for (int64_t J = 0; J != D; ++J)
            NM->Grad.at(E, J) +=
                Inv * O->Grad.at(Dst[static_cast<size_t>(E)], J);
        }
      });
    };
  }
  return Value(std::move(N));
}

Value nn::indexAddRows(Value Base, std::vector<int> Idx, Value Rows) {
  const Tensor &TB = Base.val(), &TR = Rows.val();
  assert(TB.rank() == 2 && TR.rank() == 2 && TB.cols() == TR.cols() &&
         TR.rows() == static_cast<int64_t>(Idx.size()) &&
         "indexAddRows shape mismatch");
  int64_t D = TB.cols();
  Tensor Out = TB;
  // Possibly repeated destination indices: serial, in input order.
  for (size_t M = 0; M != Idx.size(); ++M) {
    assert(Idx[M] >= 0 && Idx[M] < TB.rows() && "index out of range");
    for (int64_t J = 0; J != D; ++J)
      Out.at(Idx[M], J) += TR.at(static_cast<int64_t>(M), J);
  }
  auto N = makeOut(std::move(Out), {Base, Rows});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NB = Base.node(), NR = Rows.node();
    N->BackwardFn = [O, NB, NR, Idx = std::move(Idx), D] {
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        addInPlace(NB->Grad.data(), O->Grad.data(), O->Grad.numel());
      }
      if (NR->NeedsGrad) {
        NR->ensureGrad();
        // One distinct output row per m: row-parallel gather.
        int64_t NumRows = static_cast<int64_t>(Idx.size());
        parallelFor(0, NumRows, rowGrain(D), [&](int64_t Lo, int64_t Hi) {
          for (int64_t M = Lo; M != Hi; ++M)
            for (int64_t J = 0; J != D; ++J)
              NR->Grad.at(M, J) +=
                  O->Grad.at(Idx[static_cast<size_t>(M)], J);
        });
      }
    };
  }
  return Value(std::move(N));
}

Value nn::reduceMaxRows(Value A) {
  const Tensor &TA = A.val();
  assert(TA.rank() == 2 && TA.rows() > 0 && "reduceMaxRows needs rows");
  int64_t R = TA.rows(), D = TA.cols();
  Tensor Out(static_cast<int64_t>(1), D);
  std::vector<int> Arg(static_cast<size_t>(D), 0);
  for (int64_t J = 0; J != D; ++J) {
    float Best = TA.at(0, J);
    for (int64_t I = 1; I != R; ++I)
      if (TA.at(I, J) > Best) {
        Best = TA.at(I, J);
        Arg[static_cast<size_t>(J)] = static_cast<int>(I);
      }
    Out.at(0, J) = Best;
  }
  auto N = makeOut(std::move(Out), {A});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node();
    N->BackwardFn = [O, NA, Arg = std::move(Arg), D] {
      NA->ensureGrad();
      for (int64_t J = 0; J != D; ++J)
        NA->Grad.at(Arg[static_cast<size_t>(J)], J) += O->Grad.at(0, J);
    };
  }
  return Value(std::move(N));
}

Value nn::meanAll(Value A) {
  const Tensor &TA = A.val();
  assert(TA.numel() > 0 && "meanAll of empty tensor");
  // Serial ascending sum: the reduction order is part of the determinism
  // contract (a tree reduction would change the loss bits).
  float Sum = 0;
  for (int64_t I = 0; I != TA.numel(); ++I)
    Sum += TA[I];
  float Inv = 1.f / static_cast<float>(TA.numel());
  auto N = makeOut(Tensor::scalar(Sum * Inv), {A});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node();
    N->BackwardFn = [O, NA, Inv] {
      NA->ensureGrad();
      float G = O->Grad[0] * Inv;
      parallelFor(0, NA->Grad.numel(), ElementwiseGrain,
                  [&](int64_t Lo, int64_t Hi) {
                    for (int64_t I = Lo; I != Hi; ++I)
                      NA->Grad[I] += G;
                  });
    };
  }
  return Value(std::move(N));
}

Tensor nn::softmaxRows(const Tensor &Logits) {
  assert(Logits.rank() == 2);
  Tensor Out = Logits;
  softmaxRowsInPlace(Out.data(), Out.rows(), Out.cols());
  return Out;
}

Value nn::softmaxCrossEntropy(Value Logits, std::vector<int> Labels) {
  const Tensor &TL = Logits.val();
  assert(TL.rank() == 2 &&
         TL.rows() == static_cast<int64_t>(Labels.size()) &&
         "softmaxCrossEntropy shape mismatch");
  Tensor Probs = softmaxRows(TL);
  int Valid = 0;
  float Loss = 0;
  for (size_t I = 0; I != Labels.size(); ++I) {
    if (Labels[I] < 0)
      continue;
    assert(Labels[I] < TL.cols() && "label out of range");
    ++Valid;
    Loss -= std::log(std::max(
        Probs.at(static_cast<int64_t>(I), Labels[I]), 1e-12f));
  }
  float Inv = Valid > 0 ? 1.f / static_cast<float>(Valid) : 0.f;
  auto N = makeOut(Tensor::scalar(Loss * Inv), {Logits});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NL = Logits.node();
    N->BackwardFn = [O, NL, Probs = std::move(Probs),
                     Labels = std::move(Labels), Inv] {
      NL->ensureGrad();
      float G = O->Grad[0] * Inv;
      int64_t Rows = static_cast<int64_t>(Labels.size());
      int64_t Cols = Probs.cols();
      parallelFor(0, Rows, rowGrain(Cols), [&](int64_t Lo, int64_t Hi) {
        for (int64_t R = Lo; R != Hi; ++R) {
          int Label = Labels[static_cast<size_t>(R)];
          if (Label < 0)
            continue;
          for (int64_t C = 0; C != Cols; ++C) {
            float Delta = C == Label ? 1.f : 0.f;
            NL->Grad.at(R, C) += G * (Probs.at(R, C) - Delta);
          }
        }
      });
    };
  }
  return Value(std::move(N));
}

Value nn::pairwiseL1(Value A) {
  const Tensor &TA = A.val();
  assert(TA.rank() == 2 && "pairwiseL1 needs a matrix");
  int64_t R = TA.rows(), D = TA.cols();
  Tensor Out(R, R);
  kernels::pairwiseL1(Out.data(), TA.data(), R, D);
  auto N = makeOut(std::move(Out), {A});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node();
    // Each ordered pair updates two rows: conflicting writes, kept serial
    // in the seed's order.
    N->BackwardFn = [O, NA, R, D] {
      NA->ensureGrad();
      for (int64_t I = 0; I != R; ++I)
        for (int64_t J = 0; J != R; ++J) {
          if (I == J)
            continue;
          float G = O->Grad.at(I, J);
          if (G == 0.f)
            continue;
          for (int64_t K = 0; K != D; ++K) {
            float Diff = NA->Val.at(I, K) - NA->Val.at(J, K);
            float Sign = Diff > 0.f ? 1.f : (Diff < 0.f ? -1.f : 0.f);
            NA->Grad.at(I, K) += G * Sign;
            NA->Grad.at(J, K) -= G * Sign;
          }
        }
    };
  }
  return Value(std::move(N));
}

Value nn::spaceLoss(Value Dists, const std::vector<int> &TypeIds,
                    float Margin) {
  const Tensor &TD = Dists.val();
  int64_t N = TD.rows();
  assert(TD.rank() == 2 && TD.cols() == N &&
         N == static_cast<int64_t>(TypeIds.size()) &&
         "spaceLoss shape mismatch");

  // Forward: per-sample P+ / P- selection (Eq. 3, Fig. 2); gradients flow
  // only through the selected distance entries. Each sample's selection
  // and partial loss are independent — computed in parallel into per-row
  // slots, then combined in ascending row order so the final loss sum is
  // bit-identical to the serial scan.
  struct Selection {
    int64_t Row;
    std::vector<int64_t> Pos, Neg;
  };
  std::vector<Selection> PerRow(static_cast<size_t>(N));
  std::vector<float> PerRowLoss(static_cast<size_t>(N), 0.f);
  std::vector<char> HasSel(static_cast<size_t>(N), 0);
  parallelFor(0, N, 8, [&](int64_t Lo, int64_t Hi) {
    for (int64_t I = Lo; I != Hi; ++I) {
      if (TypeIds[static_cast<size_t>(I)] < 0)
        continue;
      float DMaxPlus = -1, DMinMinus = -1;
      bool HasPlus = false, HasMinus = false;
      for (int64_t J = 0; J != N; ++J) {
        if (J == I || TypeIds[static_cast<size_t>(J)] < 0)
          continue;
        if (TypeIds[static_cast<size_t>(J)] ==
            TypeIds[static_cast<size_t>(I)]) {
          if (!HasPlus || TD.at(I, J) > DMaxPlus)
            DMaxPlus = TD.at(I, J);
          HasPlus = true;
        } else {
          if (!HasMinus || TD.at(I, J) < DMinMinus)
            DMinMinus = TD.at(I, J);
          HasMinus = true;
        }
      }
      if (!HasPlus || !HasMinus)
        continue;
      Selection S;
      S.Row = I;
      for (int64_t J = 0; J != N; ++J) {
        if (J == I || TypeIds[static_cast<size_t>(J)] < 0)
          continue;
        if (TypeIds[static_cast<size_t>(J)] ==
            TypeIds[static_cast<size_t>(I)]) {
          if (TD.at(I, J) > DMinMinus - Margin)
            S.Pos.push_back(J);
        } else if (TD.at(I, J) < DMaxPlus + Margin) {
          S.Neg.push_back(J);
        }
      }
      float LI = 0;
      if (!S.Pos.empty()) {
        float Sum = 0;
        for (int64_t J : S.Pos)
          Sum += TD.at(I, J);
        LI += Sum / static_cast<float>(S.Pos.size());
      }
      if (!S.Neg.empty()) {
        float Sum = 0;
        for (int64_t J : S.Neg)
          Sum += TD.at(I, J);
        LI -= Sum / static_cast<float>(S.Neg.size());
      }
      PerRowLoss[static_cast<size_t>(I)] = LI;
      PerRow[static_cast<size_t>(I)] = std::move(S);
      HasSel[static_cast<size_t>(I)] = 1;
    }
  });
  std::vector<Selection> Sel;
  float Loss = 0;
  for (int64_t I = 0; I != N; ++I)
    if (HasSel[static_cast<size_t>(I)]) {
      Loss += PerRowLoss[static_cast<size_t>(I)];
      Sel.push_back(std::move(PerRow[static_cast<size_t>(I)]));
    }
  float Inv = Sel.empty() ? 0.f : 1.f / static_cast<float>(Sel.size());
  auto Out = makeOut(Tensor::scalar(Loss * Inv), {Dists});
  if (Out->NeedsGrad) {
    Node *O = Out.get();
    auto ND = Dists.node();
    // Each selection touches only its own row of the distance-matrix
    // gradient: row-parallel.
    Out->BackwardFn = [O, ND, Sel = std::move(Sel), Inv] {
      ND->ensureGrad();
      float G = O->Grad[0] * Inv;
      int64_t NumSel = static_cast<int64_t>(Sel.size());
      parallelFor(0, NumSel, 8, [&](int64_t Lo, int64_t Hi) {
        for (int64_t K = Lo; K != Hi; ++K) {
          const Selection &S = Sel[static_cast<size_t>(K)];
          if (!S.Pos.empty()) {
            float W = G / static_cast<float>(S.Pos.size());
            for (int64_t J : S.Pos)
              ND->Grad.at(S.Row, J) += W;
          }
          if (!S.Neg.empty()) {
            float W = G / static_cast<float>(S.Neg.size());
            for (int64_t J : S.Neg)
              ND->Grad.at(S.Row, J) -= W;
          }
        }
      });
    };
  }
  return Value(std::move(Out));
}

void nn::backward(Value Root) {
  assert(Root.defined() && Root.val().numel() == 1 &&
         "backward from a non-scalar");
  // Iterative post-order topological sort.
  std::vector<Node *> Topo;
  std::unordered_set<Node *> Visited;
  std::vector<std::pair<Node *, size_t>> Stack;
  Stack.emplace_back(Root.node().get(), 0);
  Visited.insert(Root.node().get());
  while (!Stack.empty()) {
    auto &[N, NextChild] = Stack.back();
    if (NextChild < N->Prev.size()) {
      Node *C = N->Prev[NextChild++].get();
      if (C->NeedsGrad && Visited.insert(C).second)
        Stack.emplace_back(C, 0);
      continue;
    }
    Topo.push_back(N);
    Stack.pop_back();
  }
  Root.node()->ensureGrad();
  Root.node()->Grad[0] = 1.f;
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
    Node *N = *It;
    if (N->BackwardFn) {
      N->ensureGrad();
      N->BackwardFn();
    }
  }
}
