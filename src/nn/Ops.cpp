//===- nn/Ops.cpp - Autograd op implementations ------------------------------===//

#include "nn/Autograd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

using namespace typilus;
using namespace typilus::nn;

namespace {

/// Creates the output node for an op with the given parents; wires
/// NeedsGrad. The backward closure is attached afterwards iff needed.
std::shared_ptr<Node> makeOut(Tensor Val,
                              std::initializer_list<Value> Parents) {
  auto Out = std::make_shared<Node>();
  Out->Val = std::move(Val);
  for (const Value &P : Parents) {
    assert(P.defined() && "op on undefined Value");
    Out->Prev.push_back(P.node());
    Out->NeedsGrad |= P.node()->NeedsGrad;
  }
  return Out;
}

} // namespace

Value nn::add(Value A, Value B) {
  const Tensor &TA = A.val(), &TB = B.val();
  Tensor Out = TA;
  if (TA.sameShape(TB)) {
    for (int64_t I = 0; I != Out.numel(); ++I)
      Out[I] += TB[I];
  } else {
    // Bias broadcast: B is rank-1 of length cols(A).
    assert(TB.rank() == 1 && TB.rows() == TA.cols() && "bad add broadcast");
    for (int64_t R = 0; R != TA.rows(); ++R)
      for (int64_t C = 0; C != TA.cols(); ++C)
        Out.at(R, C) += TB[C];
  }
  auto N = makeOut(std::move(Out), {A, B});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node(), NB = B.node();
    bool Broadcast = !TA.sameShape(TB);
    N->BackwardFn = [O, NA, NB, Broadcast] {
      if (NA->NeedsGrad) {
        NA->ensureGrad();
        for (int64_t I = 0; I != O->Grad.numel(); ++I)
          NA->Grad[I] += O->Grad[I];
      }
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        if (!Broadcast) {
          for (int64_t I = 0; I != O->Grad.numel(); ++I)
            NB->Grad[I] += O->Grad[I];
        } else {
          int64_t Cols = O->Grad.cols();
          for (int64_t R = 0; R != O->Grad.rows(); ++R)
            for (int64_t C = 0; C != Cols; ++C)
              NB->Grad[C] += O->Grad.at(R, C);
        }
      }
    };
  }
  return Value(std::move(N));
}

Value nn::sub(Value A, Value B) {
  const Tensor &TA = A.val(), &TB = B.val();
  assert(TA.sameShape(TB) && "sub requires matching shapes");
  Tensor Out = TA;
  for (int64_t I = 0; I != Out.numel(); ++I)
    Out[I] -= TB[I];
  auto N = makeOut(std::move(Out), {A, B});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node(), NB = B.node();
    N->BackwardFn = [O, NA, NB] {
      if (NA->NeedsGrad) {
        NA->ensureGrad();
        for (int64_t I = 0; I != O->Grad.numel(); ++I)
          NA->Grad[I] += O->Grad[I];
      }
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        for (int64_t I = 0; I != O->Grad.numel(); ++I)
          NB->Grad[I] -= O->Grad[I];
      }
    };
  }
  return Value(std::move(N));
}

Value nn::mul(Value A, Value B) {
  const Tensor &TA = A.val(), &TB = B.val();
  assert(TA.sameShape(TB) && "mul requires matching shapes");
  Tensor Out = TA;
  for (int64_t I = 0; I != Out.numel(); ++I)
    Out[I] *= TB[I];
  auto N = makeOut(std::move(Out), {A, B});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node(), NB = B.node();
    N->BackwardFn = [O, NA, NB] {
      if (NA->NeedsGrad) {
        NA->ensureGrad();
        for (int64_t I = 0; I != O->Grad.numel(); ++I)
          NA->Grad[I] += O->Grad[I] * NB->Val[I];
      }
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        for (int64_t I = 0; I != O->Grad.numel(); ++I)
          NB->Grad[I] += O->Grad[I] * NA->Val[I];
      }
    };
  }
  return Value(std::move(N));
}

Value nn::scale(Value A, float S) {
  Tensor Out = A.val();
  for (int64_t I = 0; I != Out.numel(); ++I)
    Out[I] *= S;
  auto N = makeOut(std::move(Out), {A});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node();
    N->BackwardFn = [O, NA, S] {
      NA->ensureGrad();
      for (int64_t I = 0; I != O->Grad.numel(); ++I)
        NA->Grad[I] += S * O->Grad[I];
    };
  }
  return Value(std::move(N));
}

Value nn::matmul(Value A, Value B) {
  const Tensor &TA = A.val(), &TB = B.val();
  assert(TA.rank() == 2 && TB.rank() == 2 && TA.cols() == TB.rows() &&
         "matmul shape mismatch");
  int64_t M = TA.rows(), K = TA.cols(), Nc = TB.cols();
  Tensor Out(M, Nc);
  gemm(false, false, M, Nc, K, 1.f, TA.data(), TB.data(), 0.f, Out.data());
  auto N = makeOut(std::move(Out), {A, B});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node(), NB = B.node();
    N->BackwardFn = [O, NA, NB, M, K, Nc] {
      if (NA->NeedsGrad) {
        NA->ensureGrad();
        // dA += dC * B^T : [M,Nc] x [Nc,K] with B stored [K,Nc] -> TransB.
        gemm(false, true, M, K, Nc, 1.f, O->Grad.data(), NB->Val.data(), 1.f,
             NA->Grad.data());
      }
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        // dB += A^T * dC.
        gemm(true, false, K, Nc, M, 1.f, NA->Val.data(), O->Grad.data(), 1.f,
             NB->Grad.data());
      }
    };
  }
  return Value(std::move(N));
}

Value nn::matmulNT(Value A, Value B) {
  const Tensor &TA = A.val(), &TB = B.val();
  assert(TA.rank() == 2 && TB.rank() == 2 && TA.cols() == TB.cols() &&
         "matmulNT shape mismatch");
  int64_t M = TA.rows(), K = TA.cols(), Nc = TB.rows();
  Tensor Out(M, Nc);
  gemm(false, true, M, Nc, K, 1.f, TA.data(), TB.data(), 0.f, Out.data());
  auto N = makeOut(std::move(Out), {A, B});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node(), NB = B.node();
    N->BackwardFn = [O, NA, NB, M, K, Nc] {
      if (NA->NeedsGrad) {
        NA->ensureGrad();
        // dA += dC * B : [M,Nc] x [Nc,K].
        gemm(false, false, M, K, Nc, 1.f, O->Grad.data(), NB->Val.data(), 1.f,
             NA->Grad.data());
      }
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        // dB += dC^T * A : [Nc,M] x [M,K].
        gemm(true, false, Nc, K, M, 1.f, O->Grad.data(), NA->Val.data(), 1.f,
             NB->Grad.data());
      }
    };
  }
  return Value(std::move(N));
}

namespace {

template <typename FwdFn, typename GradFn>
Value elementwise(Value A, FwdFn Fwd, GradFn Gr) {
  Tensor Out = A.val();
  for (int64_t I = 0; I != Out.numel(); ++I)
    Out[I] = Fwd(Out[I]);
  auto N = makeOut(std::move(Out), {A});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node();
    N->BackwardFn = [O, NA, Gr] {
      NA->ensureGrad();
      for (int64_t I = 0; I != O->Grad.numel(); ++I)
        NA->Grad[I] += O->Grad[I] * Gr(O->Val[I], NA->Val[I]);
    };
  }
  return Value(std::move(N));
}

} // namespace

Value nn::sigmoid(Value A) {
  return elementwise(
      A, [](float X) { return 1.f / (1.f + std::exp(-X)); },
      [](float Y, float) { return Y * (1.f - Y); });
}

Value nn::tanhOp(Value A) {
  return elementwise(
      A, [](float X) { return std::tanh(X); },
      [](float Y, float) { return 1.f - Y * Y; });
}

Value nn::relu(Value A) {
  return elementwise(
      A, [](float X) { return X > 0.f ? X : 0.f; },
      [](float, float X) { return X > 0.f ? 1.f : 0.f; });
}

Value nn::concatCols(Value A, Value B) {
  const Tensor &TA = A.val(), &TB = B.val();
  assert(TA.rank() == 2 && TB.rank() == 2 && TA.rows() == TB.rows() &&
         "concatCols shape mismatch");
  int64_t R = TA.rows(), CA = TA.cols(), CB = TB.cols();
  Tensor Out(R, CA + CB);
  for (int64_t I = 0; I != R; ++I) {
    for (int64_t J = 0; J != CA; ++J)
      Out.at(I, J) = TA.at(I, J);
    for (int64_t J = 0; J != CB; ++J)
      Out.at(I, CA + J) = TB.at(I, J);
  }
  auto N = makeOut(std::move(Out), {A, B});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node(), NB = B.node();
    N->BackwardFn = [O, NA, NB, R, CA, CB] {
      if (NA->NeedsGrad) {
        NA->ensureGrad();
        for (int64_t I = 0; I != R; ++I)
          for (int64_t J = 0; J != CA; ++J)
            NA->Grad.at(I, J) += O->Grad.at(I, J);
      }
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        for (int64_t I = 0; I != R; ++I)
          for (int64_t J = 0; J != CB; ++J)
            NB->Grad.at(I, J) += O->Grad.at(I, CA + J);
      }
    };
  }
  return Value(std::move(N));
}

Value nn::concatRows(const std::vector<Value> &Parts) {
  assert(!Parts.empty() && "concatRows of nothing");
  int64_t D = Parts[0].val().cols();
  int64_t TotalRows = 0;
  for (const Value &P : Parts) {
    assert(P.val().rank() == 2 && P.val().cols() == D &&
           "concatRows column mismatch");
    TotalRows += P.val().rows();
  }
  Tensor Out(TotalRows, D);
  int64_t Row = 0;
  for (const Value &P : Parts) {
    const Tensor &T = P.val();
    for (int64_t I = 0; I != T.rows(); ++I, ++Row)
      for (int64_t J = 0; J != D; ++J)
        Out.at(Row, J) = T.at(I, J);
  }
  auto N = std::make_shared<Node>();
  N->Val = std::move(Out);
  for (const Value &P : Parts) {
    N->Prev.push_back(P.node());
    N->NeedsGrad |= P.node()->NeedsGrad;
  }
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto Parents = N->Prev;
    N->BackwardFn = [O, Parents, D] {
      int64_t Row = 0;
      for (const auto &P : Parents) {
        int64_t R = P->Val.rows();
        if (P->NeedsGrad) {
          P->ensureGrad();
          for (int64_t I = 0; I != R; ++I)
            for (int64_t J = 0; J != D; ++J)
              P->Grad.at(I, J) += O->Grad.at(Row + I, J);
        }
        Row += R;
      }
    };
  }
  return Value(std::move(N));
}

Value nn::attentionPool(Value Scores, Value Rows) {
  const Tensor &TS = Scores.val(), &TR = Rows.val();
  assert(TS.rank() == 2 && TS.cols() == 1 && TS.rows() == TR.rows() &&
         "attentionPool shape mismatch");
  int64_t K = TR.rows(), D = TR.cols();
  // Softmax over the K scores.
  Tensor Alpha(K);
  float Max = TS.at(0, 0);
  for (int64_t I = 1; I != K; ++I)
    Max = std::max(Max, TS.at(I, 0));
  float Sum = 0;
  for (int64_t I = 0; I != K; ++I) {
    Alpha[I] = std::exp(TS.at(I, 0) - Max);
    Sum += Alpha[I];
  }
  for (int64_t I = 0; I != K; ++I)
    Alpha[I] /= Sum;
  Tensor Out(static_cast<int64_t>(1), D);
  for (int64_t I = 0; I != K; ++I)
    for (int64_t J = 0; J != D; ++J)
      Out.at(0, J) += Alpha[I] * TR.at(I, J);
  auto N = makeOut(std::move(Out), {Scores, Rows});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NS = Scores.node(), NR = Rows.node();
    N->BackwardFn = [O, NS, NR, Alpha = std::move(Alpha), K, D] {
      // dRows[i] = alpha_i * dOut.
      if (NR->NeedsGrad) {
        NR->ensureGrad();
        for (int64_t I = 0; I != K; ++I)
          for (int64_t J = 0; J != D; ++J)
            NR->Grad.at(I, J) += Alpha[I] * O->Grad.at(0, J);
      }
      // dScore_i = alpha_i * (g.r_i - sum_k alpha_k g.r_k).
      if (NS->NeedsGrad) {
        NS->ensureGrad();
        float Mix = 0;
        std::vector<float> GDotR(static_cast<size_t>(K), 0.f);
        for (int64_t I = 0; I != K; ++I) {
          float Dot = 0;
          for (int64_t J = 0; J != D; ++J)
            Dot += O->Grad.at(0, J) * NR->Val.at(I, J);
          GDotR[static_cast<size_t>(I)] = Dot;
          Mix += Alpha[I] * Dot;
        }
        for (int64_t I = 0; I != K; ++I)
          NS->Grad.at(I, 0) += Alpha[I] * (GDotR[static_cast<size_t>(I)] - Mix);
      }
    };
  }
  return Value(std::move(N));
}

Value nn::gatherRows(Value A, std::vector<int> Idx) {
  const Tensor &TA = A.val();
  assert(TA.rank() == 2 && "gatherRows needs a matrix");
  int64_t D = TA.cols();
  Tensor Out(static_cast<int64_t>(Idx.size()), D);
  for (size_t I = 0; I != Idx.size(); ++I) {
    assert(Idx[I] >= 0 && Idx[I] < TA.rows() && "gather index out of range");
    for (int64_t J = 0; J != D; ++J)
      Out.at(static_cast<int64_t>(I), J) = TA.at(Idx[I], J);
  }
  auto N = makeOut(std::move(Out), {A});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node();
    N->BackwardFn = [O, NA, Idx = std::move(Idx), D] {
      NA->ensureGrad();
      for (size_t I = 0; I != Idx.size(); ++I)
        for (int64_t J = 0; J != D; ++J)
          NA->Grad.at(Idx[I], J) += O->Grad.at(static_cast<int64_t>(I), J);
    };
  }
  return Value(std::move(N));
}

Value nn::scatterMax(Value Msgs, std::vector<int> Dst, int64_t NumRows) {
  const Tensor &TM = Msgs.val();
  assert(TM.rank() == 2 && TM.rows() == static_cast<int64_t>(Dst.size()) &&
         "scatterMax shape mismatch");
  int64_t D = TM.cols();
  Tensor Out(NumRows, D);
  // Argmax message per (row, dim); -1 = no message (output stays 0).
  std::vector<int> Arg(static_cast<size_t>(NumRows * D), -1);
  for (size_t E = 0; E != Dst.size(); ++E) {
    int Nd = Dst[E];
    assert(Nd >= 0 && Nd < NumRows && "scatter destination out of range");
    for (int64_t J = 0; J != D; ++J) {
      float V = TM.at(static_cast<int64_t>(E), J);
      int &Slot = Arg[static_cast<size_t>(Nd * D + J)];
      if (Slot < 0 || V > Out.at(Nd, J)) {
        Out.at(Nd, J) = V;
        Slot = static_cast<int>(E);
      }
    }
  }
  auto N = makeOut(std::move(Out), {Msgs});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NM = Msgs.node();
    N->BackwardFn = [O, NM, Arg = std::move(Arg), NumRows, D] {
      NM->ensureGrad();
      for (int64_t R = 0; R != NumRows; ++R)
        for (int64_t J = 0; J != D; ++J) {
          int E = Arg[static_cast<size_t>(R * D + J)];
          if (E >= 0)
            NM->Grad.at(E, J) += O->Grad.at(R, J);
        }
    };
  }
  return Value(std::move(N));
}

Value nn::scatterMean(Value Msgs, std::vector<int> Dst, int64_t NumRows) {
  const Tensor &TM = Msgs.val();
  assert(TM.rank() == 2 && TM.rows() == static_cast<int64_t>(Dst.size()) &&
         "scatterMean shape mismatch");
  int64_t D = TM.cols();
  Tensor Out(NumRows, D);
  std::vector<int> Count(static_cast<size_t>(NumRows), 0);
  for (size_t E = 0; E != Dst.size(); ++E) {
    assert(Dst[E] >= 0 && Dst[E] < NumRows && "scatter dest out of range");
    ++Count[static_cast<size_t>(Dst[E])];
    for (int64_t J = 0; J != D; ++J)
      Out.at(Dst[E], J) += TM.at(static_cast<int64_t>(E), J);
  }
  for (int64_t R = 0; R != NumRows; ++R)
    if (Count[static_cast<size_t>(R)] > 0)
      for (int64_t J = 0; J != D; ++J)
        Out.at(R, J) /= static_cast<float>(Count[static_cast<size_t>(R)]);
  auto N = makeOut(std::move(Out), {Msgs});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NM = Msgs.node();
    N->BackwardFn = [O, NM, Dst = std::move(Dst), Count = std::move(Count),
                     D] {
      NM->ensureGrad();
      for (size_t E = 0; E != Dst.size(); ++E) {
        float Inv = 1.f / static_cast<float>(Count[static_cast<size_t>(Dst[E])]);
        for (int64_t J = 0; J != D; ++J)
          NM->Grad.at(static_cast<int64_t>(E), J) +=
              Inv * O->Grad.at(Dst[E], J);
      }
    };
  }
  return Value(std::move(N));
}

Value nn::indexAddRows(Value Base, std::vector<int> Idx, Value Rows) {
  const Tensor &TB = Base.val(), &TR = Rows.val();
  assert(TB.rank() == 2 && TR.rank() == 2 && TB.cols() == TR.cols() &&
         TR.rows() == static_cast<int64_t>(Idx.size()) &&
         "indexAddRows shape mismatch");
  int64_t D = TB.cols();
  Tensor Out = TB;
  for (size_t M = 0; M != Idx.size(); ++M) {
    assert(Idx[M] >= 0 && Idx[M] < TB.rows() && "index out of range");
    for (int64_t J = 0; J != D; ++J)
      Out.at(Idx[M], J) += TR.at(static_cast<int64_t>(M), J);
  }
  auto N = makeOut(std::move(Out), {Base, Rows});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NB = Base.node(), NR = Rows.node();
    N->BackwardFn = [O, NB, NR, Idx = std::move(Idx), D] {
      if (NB->NeedsGrad) {
        NB->ensureGrad();
        for (int64_t I = 0; I != O->Grad.numel(); ++I)
          NB->Grad[I] += O->Grad[I];
      }
      if (NR->NeedsGrad) {
        NR->ensureGrad();
        for (size_t M = 0; M != Idx.size(); ++M)
          for (int64_t J = 0; J != D; ++J)
            NR->Grad.at(static_cast<int64_t>(M), J) += O->Grad.at(Idx[M], J);
      }
    };
  }
  return Value(std::move(N));
}

Value nn::reduceMaxRows(Value A) {
  const Tensor &TA = A.val();
  assert(TA.rank() == 2 && TA.rows() > 0 && "reduceMaxRows needs rows");
  int64_t R = TA.rows(), D = TA.cols();
  Tensor Out(static_cast<int64_t>(1), D);
  std::vector<int> Arg(static_cast<size_t>(D), 0);
  for (int64_t J = 0; J != D; ++J) {
    float Best = TA.at(0, J);
    for (int64_t I = 1; I != R; ++I)
      if (TA.at(I, J) > Best) {
        Best = TA.at(I, J);
        Arg[static_cast<size_t>(J)] = static_cast<int>(I);
      }
    Out.at(0, J) = Best;
  }
  auto N = makeOut(std::move(Out), {A});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node();
    N->BackwardFn = [O, NA, Arg = std::move(Arg), D] {
      NA->ensureGrad();
      for (int64_t J = 0; J != D; ++J)
        NA->Grad.at(Arg[static_cast<size_t>(J)], J) += O->Grad.at(0, J);
    };
  }
  return Value(std::move(N));
}

Value nn::meanAll(Value A) {
  const Tensor &TA = A.val();
  assert(TA.numel() > 0 && "meanAll of empty tensor");
  float Sum = 0;
  for (int64_t I = 0; I != TA.numel(); ++I)
    Sum += TA[I];
  float Inv = 1.f / static_cast<float>(TA.numel());
  auto N = makeOut(Tensor::scalar(Sum * Inv), {A});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node();
    N->BackwardFn = [O, NA, Inv] {
      NA->ensureGrad();
      float G = O->Grad[0] * Inv;
      for (int64_t I = 0; I != NA->Grad.numel(); ++I)
        NA->Grad[I] += G;
    };
  }
  return Value(std::move(N));
}

Tensor nn::softmaxRows(const Tensor &Logits) {
  assert(Logits.rank() == 2);
  Tensor Out = Logits;
  for (int64_t R = 0; R != Out.rows(); ++R) {
    float Max = Out.at(R, 0);
    for (int64_t C = 1; C != Out.cols(); ++C)
      Max = std::max(Max, Out.at(R, C));
    float Sum = 0;
    for (int64_t C = 0; C != Out.cols(); ++C) {
      float E = std::exp(Out.at(R, C) - Max);
      Out.at(R, C) = E;
      Sum += E;
    }
    for (int64_t C = 0; C != Out.cols(); ++C)
      Out.at(R, C) /= Sum;
  }
  return Out;
}

Value nn::softmaxCrossEntropy(Value Logits, std::vector<int> Labels) {
  const Tensor &TL = Logits.val();
  assert(TL.rank() == 2 &&
         TL.rows() == static_cast<int64_t>(Labels.size()) &&
         "softmaxCrossEntropy shape mismatch");
  Tensor Probs = softmaxRows(TL);
  int Valid = 0;
  float Loss = 0;
  for (size_t I = 0; I != Labels.size(); ++I) {
    if (Labels[I] < 0)
      continue;
    assert(Labels[I] < TL.cols() && "label out of range");
    ++Valid;
    Loss -= std::log(std::max(
        Probs.at(static_cast<int64_t>(I), Labels[I]), 1e-12f));
  }
  float Inv = Valid > 0 ? 1.f / static_cast<float>(Valid) : 0.f;
  auto N = makeOut(Tensor::scalar(Loss * Inv), {Logits});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NL = Logits.node();
    N->BackwardFn = [O, NL, Probs = std::move(Probs),
                     Labels = std::move(Labels), Inv] {
      NL->ensureGrad();
      float G = O->Grad[0] * Inv;
      for (size_t I = 0; I != Labels.size(); ++I) {
        if (Labels[I] < 0)
          continue;
        int64_t R = static_cast<int64_t>(I);
        for (int64_t C = 0; C != Probs.cols(); ++C) {
          float Delta = C == Labels[I] ? 1.f : 0.f;
          NL->Grad.at(R, C) += G * (Probs.at(R, C) - Delta);
        }
      }
    };
  }
  return Value(std::move(N));
}

Value nn::pairwiseL1(Value A) {
  const Tensor &TA = A.val();
  assert(TA.rank() == 2 && "pairwiseL1 needs a matrix");
  int64_t R = TA.rows(), D = TA.cols();
  Tensor Out(R, R);
  for (int64_t I = 0; I != R; ++I)
    for (int64_t J = I + 1; J != R; ++J) {
      float Sum = 0;
      for (int64_t K = 0; K != D; ++K)
        Sum += std::fabs(TA.at(I, K) - TA.at(J, K));
      Out.at(I, J) = Sum;
      Out.at(J, I) = Sum;
    }
  auto N = makeOut(std::move(Out), {A});
  if (N->NeedsGrad) {
    Node *O = N.get();
    auto NA = A.node();
    N->BackwardFn = [O, NA, R, D] {
      NA->ensureGrad();
      for (int64_t I = 0; I != R; ++I)
        for (int64_t J = 0; J != R; ++J) {
          if (I == J)
            continue;
          float G = O->Grad.at(I, J);
          if (G == 0.f)
            continue;
          for (int64_t K = 0; K != D; ++K) {
            float Diff = NA->Val.at(I, K) - NA->Val.at(J, K);
            float Sign = Diff > 0.f ? 1.f : (Diff < 0.f ? -1.f : 0.f);
            NA->Grad.at(I, K) += G * Sign;
            NA->Grad.at(J, K) -= G * Sign;
          }
        }
    };
  }
  return Value(std::move(N));
}

Value nn::spaceLoss(Value Dists, const std::vector<int> &TypeIds,
                    float Margin) {
  const Tensor &TD = Dists.val();
  int64_t N = TD.rows();
  assert(TD.rank() == 2 && TD.cols() == N &&
         N == static_cast<int64_t>(TypeIds.size()) &&
         "spaceLoss shape mismatch");

  // Forward: per-sample P+ / P- selection (Eq. 3, Fig. 2); gradients flow
  // only through the selected distance entries.
  struct Selection {
    int64_t Row;
    std::vector<int64_t> Pos, Neg;
  };
  std::vector<Selection> Sel;
  float Loss = 0;
  for (int64_t I = 0; I != N; ++I) {
    if (TypeIds[I] < 0)
      continue;
    float DMaxPlus = -1, DMinMinus = -1;
    bool HasPlus = false, HasMinus = false;
    for (int64_t J = 0; J != N; ++J) {
      if (J == I || TypeIds[J] < 0)
        continue;
      if (TypeIds[J] == TypeIds[I]) {
        if (!HasPlus || TD.at(I, J) > DMaxPlus)
          DMaxPlus = TD.at(I, J);
        HasPlus = true;
      } else {
        if (!HasMinus || TD.at(I, J) < DMinMinus)
          DMinMinus = TD.at(I, J);
        HasMinus = true;
      }
    }
    if (!HasPlus || !HasMinus)
      continue;
    Selection S;
    S.Row = I;
    for (int64_t J = 0; J != N; ++J) {
      if (J == I || TypeIds[J] < 0)
        continue;
      if (TypeIds[J] == TypeIds[I]) {
        if (TD.at(I, J) > DMinMinus - Margin)
          S.Pos.push_back(J);
      } else if (TD.at(I, J) < DMaxPlus + Margin) {
        S.Neg.push_back(J);
      }
    }
    float LI = 0;
    if (!S.Pos.empty()) {
      float Sum = 0;
      for (int64_t J : S.Pos)
        Sum += TD.at(I, J);
      LI += Sum / static_cast<float>(S.Pos.size());
    }
    if (!S.Neg.empty()) {
      float Sum = 0;
      for (int64_t J : S.Neg)
        Sum += TD.at(I, J);
      LI -= Sum / static_cast<float>(S.Neg.size());
    }
    Loss += LI;
    Sel.push_back(std::move(S));
  }
  float Inv = Sel.empty() ? 0.f : 1.f / static_cast<float>(Sel.size());
  auto Out = makeOut(Tensor::scalar(Loss * Inv), {Dists});
  if (Out->NeedsGrad) {
    Node *O = Out.get();
    auto ND = Dists.node();
    Out->BackwardFn = [O, ND, Sel = std::move(Sel), Inv] {
      ND->ensureGrad();
      float G = O->Grad[0] * Inv;
      for (const auto &S : Sel) {
        if (!S.Pos.empty()) {
          float W = G / static_cast<float>(S.Pos.size());
          for (int64_t J : S.Pos)
            ND->Grad.at(S.Row, J) += W;
        }
        if (!S.Neg.empty()) {
          float W = G / static_cast<float>(S.Neg.size());
          for (int64_t J : S.Neg)
            ND->Grad.at(S.Row, J) -= W;
        }
      }
    };
  }
  return Value(std::move(Out));
}

void nn::backward(Value Root) {
  assert(Root.defined() && Root.val().numel() == 1 &&
         "backward from a non-scalar");
  // Iterative post-order topological sort.
  std::vector<Node *> Topo;
  std::unordered_set<Node *> Visited;
  std::vector<std::pair<Node *, size_t>> Stack;
  Stack.emplace_back(Root.node().get(), 0);
  Visited.insert(Root.node().get());
  while (!Stack.empty()) {
    auto &[N, NextChild] = Stack.back();
    if (NextChild < N->Prev.size()) {
      Node *C = N->Prev[NextChild++].get();
      if (C->NeedsGrad && Visited.insert(C).second)
        Stack.emplace_back(C, 0);
      continue;
    }
    Topo.push_back(N);
    Stack.pop_back();
  }
  Root.node()->ensureGrad();
  Root.node()->Grad[0] = 1.f;
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
    Node *N = *It;
    if (N->BackwardFn) {
      N->ensureGrad();
      N->BackwardFn();
    }
  }
}
