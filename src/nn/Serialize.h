//===- nn/Serialize.h - Tensor and parameter I/O ------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Archive I/O for the nn layer: single tensors, whole parameter sets and
/// the Adam moment state. Round-trips are bit-exact — tensors are stored
/// as the raw IEEE-754 bit patterns — which is what makes saved models
/// reproduce the in-process ones to the last ulp.
///
/// Parameters are serialized positionally: a model reconstructs its
/// ParamSet from its config (registration order is deterministic) and
/// `readParams` then overwrites each tensor in order, rejecting any shape
/// drift with a clear error.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_NN_SERIALIZE_H
#define TYPILUS_NN_SERIALIZE_H

#include "nn/Layers.h"
#include "support/Archive.h"

#include <string>

namespace typilus {
namespace nn {

/// Appends \p T (rank, dims, raw f32 data) to the open chunk.
void writeTensor(ArchiveWriter &W, const Tensor &T);

/// Reads one tensor written by writeTensor. \returns false (leaving \p Out
/// untouched) on malformed input.
bool readTensor(ArchiveCursor &C, Tensor &Out);

/// Appends every parameter of \p PS (count-prefixed) to the open chunk.
void writeParams(ArchiveWriter &W, const ParamSet &PS);

/// Overwrites \p PS's parameter values in registration order. Fails with
/// \p Err on count or shape mismatches — the saved artifact belongs to a
/// model with a different architecture or vocabulary.
bool readParams(ArchiveCursor &C, ParamSet &PS, std::string *Err);

} // namespace nn
} // namespace typilus

#endif // TYPILUS_NN_SERIALIZE_H
