//===- nn/Layers.h - Neural network layers ------------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterised layers built from autograd ops: Linear, Embedding, the GRU
/// cell used both by the GGNN state updates and the DeepTyper biGRU
/// baseline (Sec. 4.3 / Sec. 6.1), and a character-level CNN encoder for
/// the Table 4 node-representation ablation.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_NN_LAYERS_H
#define TYPILUS_NN_LAYERS_H

#include "nn/Autograd.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace typilus {
namespace nn {

/// Collects trainable parameters for the optimizer.
class ParamSet {
public:
  /// Registers a new parameter initialised to \p T.
  Value make(Tensor T) {
    Value V = Value::param(std::move(T));
    Params.push_back(V);
    return V;
  }

  const std::vector<Value> &params() const { return Params; }
  size_t numParams() const;
  void zeroGrads();

private:
  std::vector<Value> Params;
};

/// Fully connected layer: X W + b.
class Linear {
public:
  Linear() = default;
  Linear(int64_t In, int64_t Out, ParamSet &PS, Rng &R);

  Value apply(Value X) const { return add(matmul(X, W), B); }

  Value W, B;
};

/// Lookup table of row embeddings.
class Embedding {
public:
  Embedding() = default;
  Embedding(int64_t Vocab, int64_t Dim, ParamSet &PS, Rng &R);

  /// Rows for the given ids: [|Ids|, Dim].
  Value rows(std::vector<int> Ids) const { return gatherRows(W, std::move(Ids)); }

  Value W;
};

/// A standard GRU cell; `step` maps (X:[N,In], H:[N,Hid]) -> H':[N,Hid].
class GruCell {
public:
  GruCell() = default;
  GruCell(int64_t In, int64_t Hid, ParamSet &PS, Rng &R);

  Value step(Value X, Value H) const;

  int64_t hiddenDim() const { return Hid; }

private:
  Value Wr, Ur, Br;
  Value Wz, Uz, Bz;
  Value Wn, Un, Bn;
  int64_t Hid = 0;
};

/// Character-level 1-D CNN word encoder (Kim et al. 2016 style): byte
/// embeddings, width-3 convolution, ReLU, max-over-time. Used by the
/// "Full Model - Character" row of Table 4.
class CharCnn {
public:
  CharCnn() = default;
  CharCnn(int64_t CharDim, int64_t OutDim, ParamSet &PS, Rng &R);

  /// Encodes \p Word into a [1, OutDim] vector.
  Value encode(const std::string &Word) const;

  /// Encodes all \p Words at once into a [|Words|, OutDim] matrix: every
  /// word's convolution windows are stacked and pushed through one
  /// embedding-gather + one GEMM, then max-pooled per word. Row i equals
  /// encode(Words[i]) bit-for-bit.
  Value encodeBatch(const std::vector<std::string> &Words) const;

private:
  Embedding CharEmb; ///< 128 ASCII codepoints + 1 pad row.
  Linear Conv;       ///< [3*CharDim -> OutDim].
  int64_t CharDim = 0;
};

} // namespace nn
} // namespace typilus

#endif // TYPILUS_NN_LAYERS_H
