//===- nn/Kernels.cpp - Raw float tensor kernels ------------------------------===//

#include "nn/Kernels.h"

#include "nn/Simd.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace typilus;
using namespace typilus::nn;

//===----------------------------------------------------------------------===//
// GEMM
//===----------------------------------------------------------------------===//

namespace {

/// Column-tile width for the j-contiguous cases: one C-row tile plus the
/// matching B columns stay cache-resident while p streams. Tiling j does
/// not touch the per-element accumulation order (k stays ascending).
constexpr int64_t GemmColTile = 512;

/// Row grain so each parallel chunk carries at least ~GemmParallelFlops
/// multiply-adds.
int64_t gemmRowGrain(int64_t N, int64_t K) {
  int64_t FlopsPerRow = std::max<int64_t>(1, N * K);
  return std::max<int64_t>(1, kernels::GemmParallelFlops / FlopsPerRow);
}

/// Rows [RB, RE) of C for the non-transposed-B cases (A indexed by row i).
/// ALoad(i, p) abstracts over TransA. The j-tile inner loop runs through
/// \p KT (an axpy over the contiguous B row).
template <typename ALoadFn>
void gemmRowsKJ(const simd::KernelTable &KT, int64_t RB, int64_t RE,
                int64_t N, int64_t K, float Alpha, ALoadFn ALoad,
                const float *B, int64_t Ldb, float *C) {
  for (int64_t I = RB; I != RE; ++I) {
    float *CRow = C + I * N;
    for (int64_t JB = 0; JB < N; JB += GemmColTile) {
      int64_t JE = std::min(N, JB + GemmColTile);
      for (int64_t P = 0; P != K; ++P) {
        float AIP = Alpha * ALoad(I, P);
        if (AIP == 0.f)
          continue;
        KT.AxpyRow(CRow + JB, AIP, B + P * Ldb + JB, JE - JB);
      }
    }
  }
}

/// Rows [RB, RE) of C for the transposed-B, non-transposed-A case: both
/// the A row and the B row are contiguous, so the inner loop is \p KT's
/// dot product.
void gemmRowsDotContig(const simd::KernelTable &KT, int64_t RB, int64_t RE,
                       int64_t N, int64_t K, float Alpha, const float *A,
                       int64_t Lda, const float *B, int64_t Ldb, float *C) {
  for (int64_t I = RB; I != RE; ++I)
    for (int64_t J = 0; J != N; ++J)
      C[I * N + J] += Alpha * KT.Dot(A + I * Lda, B + J * Ldb, K);
}

/// Rows [RB, RE) of C for the transposed-A, transposed-B case. The A
/// access is strided, so this stays a scalar loop on every ISA (it is
/// bit-identical to the historical kernel by construction).
void gemmRowsDotStrided(int64_t RB, int64_t RE, int64_t N, int64_t K,
                        float Alpha, const float *A, int64_t Lda,
                        const float *B, int64_t Ldb, float *C) {
  for (int64_t I = RB; I != RE; ++I)
    for (int64_t J = 0; J != N; ++J) {
      const float *BRow = B + J * Ldb;
      float Sum = 0.f;
      for (int64_t P = 0; P != K; ++P)
        Sum += A[P * Lda + I] * BRow[P];
      C[I * N + J] += Alpha * Sum;
    }
}

} // namespace

void typilus::gemm(bool TransA, bool TransB, int64_t M, int64_t N, int64_t K,
                   float Alpha, const float *A, const float *B, float Beta,
                   float *C) {
  if (Beta == 0.f)
    std::memset(C, 0, static_cast<size_t>(M * N) * sizeof(float));
  else if (Beta != 1.f)
    for (int64_t I = 0; I != M * N; ++I)
      C[I] *= Beta;

  // Leading dimensions of the stored matrices.
  const int64_t Lda = TransA ? M : K;
  const int64_t Ldb = TransB ? K : N;

  // All four cases are parallelized over rows of C: each output row is
  // produced by exactly one chunk with a fixed per-element operation
  // sequence (k ascending through the active kernel table), so the result
  // is bit-identical for any thread count. With the scalar table it is
  // also bit-identical to the naive i-k-j kernel.
  const simd::KernelTable &KT = simd::active();
  const int64_t Grain = gemmRowGrain(N, K);
  auto ANorm = [A, Lda](int64_t I, int64_t P) { return A[I * Lda + P]; };
  auto ATrans = [A, Lda](int64_t I, int64_t P) { return A[P * Lda + I]; };

  if (!TransB) {
    if (!TransA)
      parallelFor(0, M, Grain, [&](int64_t RB, int64_t RE) {
        gemmRowsKJ(KT, RB, RE, N, K, Alpha, ANorm, B, Ldb, C);
      });
    else
      parallelFor(0, M, Grain, [&](int64_t RB, int64_t RE) {
        gemmRowsKJ(KT, RB, RE, N, K, Alpha, ATrans, B, Ldb, C);
      });
    return;
  }
  if (!TransA)
    parallelFor(0, M, Grain, [&](int64_t RB, int64_t RE) {
      gemmRowsDotContig(KT, RB, RE, N, K, Alpha, A, Lda, B, Ldb, C);
    });
  else
    parallelFor(0, M, Grain, [&](int64_t RB, int64_t RE) {
      gemmRowsDotStrided(RB, RE, N, K, Alpha, A, Lda, B, Ldb, C);
    });
}

//===----------------------------------------------------------------------===//
// Fused elementwise kernels
//===----------------------------------------------------------------------===//

namespace {

/// Chunks [0, N) through the pool above the elementwise grain. Chunking is
/// safe for any per-element map: outputs are disjoint, and every table's
/// kernels compute each element independently of where the chunk (and
/// therefore vector-lane) boundaries fall.
template <typename Fn> void forChunks(int64_t N, Fn Body) {
  parallelFor(0, N, kernels::ElementwiseGrain,
              [&](int64_t Lo, int64_t Hi) { Body(Lo, Hi); });
}

} // namespace

void kernels::addInPlace(float *Dst, const float *Src, int64_t N) {
  const simd::KernelTable &KT = simd::active();
  forChunks(N, [&](int64_t Lo, int64_t Hi) {
    KT.Add(Dst + Lo, Src + Lo, Hi - Lo);
  });
}

void kernels::subInPlace(float *Dst, const float *Src, int64_t N) {
  const simd::KernelTable &KT = simd::active();
  forChunks(N, [&](int64_t Lo, int64_t Hi) {
    KT.Sub(Dst + Lo, Src + Lo, Hi - Lo);
  });
}

void kernels::mulInPlace(float *Dst, const float *Src, int64_t N) {
  const simd::KernelTable &KT = simd::active();
  forChunks(N, [&](int64_t Lo, int64_t Hi) {
    KT.Mul(Dst + Lo, Src + Lo, Hi - Lo);
  });
}

void kernels::scaleInPlace(float *Dst, float S, int64_t N) {
  const simd::KernelTable &KT = simd::active();
  forChunks(N, [&](int64_t Lo, int64_t Hi) {
    KT.Scale(Dst + Lo, S, Hi - Lo);
  });
}

void kernels::axpyAcc(float *Dst, float A, const float *X, int64_t N) {
  const simd::KernelTable &KT = simd::active();
  forChunks(N, [&](int64_t Lo, int64_t Hi) {
    KT.AxpyRow(Dst + Lo, A, X + Lo, Hi - Lo);
  });
}

void kernels::mulAcc(float *Dst, const float *A, const float *B, int64_t N) {
  const simd::KernelTable &KT = simd::active();
  forChunks(N, [&](int64_t Lo, int64_t Hi) {
    KT.MulAcc(Dst + Lo, A + Lo, B + Lo, Hi - Lo);
  });
}

void kernels::sigmoidForward(float *X, int64_t N) {
  const simd::KernelTable &KT = simd::active();
  forChunks(N, [&](int64_t Lo, int64_t Hi) { KT.Sigmoid(X + Lo, Hi - Lo); });
}

void kernels::sigmoidBackwardAcc(float *DX, const float *DY, const float *Y,
                                 int64_t N) {
  const simd::KernelTable &KT = simd::active();
  forChunks(N, [&](int64_t Lo, int64_t Hi) {
    KT.SigmoidBwd(DX + Lo, DY + Lo, Y + Lo, Hi - Lo);
  });
}

void kernels::tanhForward(float *X, int64_t N) {
  const simd::KernelTable &KT = simd::active();
  forChunks(N, [&](int64_t Lo, int64_t Hi) { KT.Tanh(X + Lo, Hi - Lo); });
}

void kernels::tanhBackwardAcc(float *DX, const float *DY, const float *Y,
                              int64_t N) {
  const simd::KernelTable &KT = simd::active();
  forChunks(N, [&](int64_t Lo, int64_t Hi) {
    KT.TanhBwd(DX + Lo, DY + Lo, Y + Lo, Hi - Lo);
  });
}

void kernels::reluForward(float *X, int64_t N) {
  const simd::KernelTable &KT = simd::active();
  forChunks(N, [&](int64_t Lo, int64_t Hi) { KT.Relu(X + Lo, Hi - Lo); });
}

void kernels::reluBackwardAcc(float *DX, const float *DY, const float *X,
                              int64_t N) {
  const simd::KernelTable &KT = simd::active();
  forChunks(N, [&](int64_t Lo, int64_t Hi) {
    KT.ReluBwd(DX + Lo, DY + Lo, X + Lo, Hi - Lo);
  });
}

//===----------------------------------------------------------------------===//
// Row-structured kernels
//===----------------------------------------------------------------------===//

void kernels::gatherRows(float *Out, const float *A, const int *Idx,
                         int64_t NumIdx, int64_t D) {
  parallelFor(0, NumIdx, rowGrain(D), [&](int64_t Lo, int64_t Hi) {
    for (int64_t I = Lo; I != Hi; ++I)
      std::memcpy(Out + I * D, A + static_cast<int64_t>(Idx[I]) * D,
                  static_cast<size_t>(D) * sizeof(float));
  });
}

void kernels::softmaxRowsInPlace(float *X, int64_t Rows, int64_t Cols) {
  const simd::KernelTable &KT = simd::active();
  parallelFor(0, Rows, rowGrain(Cols), [&](int64_t Lo, int64_t Hi) {
    for (int64_t R = Lo; R != Hi; ++R)
      KT.SoftmaxRow(X + R * Cols, Cols);
  });
}

void kernels::pairwiseL1(float *Out, const float *A, int64_t R, int64_t D) {
  // Iteration I fills row I for J > I plus the mirror cells (J, I): each
  // cell is written by exactly one iteration (min of its coordinates), so
  // chunks over I write disjoint outputs.
  const simd::KernelTable &KT = simd::active();
  int64_t Grain = std::max<int64_t>(
      1, GemmParallelFlops / std::max<int64_t>(1, R * D));
  parallelFor(0, R, Grain, [&](int64_t Lo, int64_t Hi) {
    for (int64_t I = Lo; I != Hi; ++I) {
      Out[I * R + I] = 0.f;
      const float *AI = A + I * D;
      for (int64_t J = I + 1; J != R; ++J) {
        float Sum = KT.L1(AI, A + J * D, D);
        Out[I * R + J] = Sum;
        Out[J * R + I] = Sum;
      }
    }
  });
}
