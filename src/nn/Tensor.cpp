//===- nn/Tensor.cpp - Dense float tensors ----------------------------------===//

#include "nn/Tensor.h"

#include <cstring>

using namespace typilus;

void typilus::gemm(bool TransA, bool TransB, int64_t M, int64_t N, int64_t K,
                   float Alpha, const float *A, const float *B, float Beta,
                   float *C) {
  if (Beta == 0.f)
    std::memset(C, 0, static_cast<size_t>(M * N) * sizeof(float));
  else if (Beta != 1.f)
    for (int64_t I = 0; I != M * N; ++I)
      C[I] *= Beta;

  // Leading dimensions of the stored matrices.
  const int64_t Lda = TransA ? M : K;
  const int64_t Ldb = TransB ? K : N;

  // i-k-j loop order keeps the inner loop contiguous over B and C for the
  // common non-transposed case, which GCC auto-vectorises well.
  if (!TransA && !TransB) {
    for (int64_t I = 0; I != M; ++I)
      for (int64_t P = 0; P != K; ++P) {
        float AIP = Alpha * A[I * Lda + P];
        if (AIP == 0.f)
          continue;
        const float *BRow = B + P * Ldb;
        float *CRow = C + I * N;
        for (int64_t J = 0; J != N; ++J)
          CRow[J] += AIP * BRow[J];
      }
    return;
  }
  if (TransA && !TransB) {
    for (int64_t P = 0; P != K; ++P)
      for (int64_t I = 0; I != M; ++I) {
        float AIP = Alpha * A[P * Lda + I];
        if (AIP == 0.f)
          continue;
        const float *BRow = B + P * Ldb;
        float *CRow = C + I * N;
        for (int64_t J = 0; J != N; ++J)
          CRow[J] += AIP * BRow[J];
      }
    return;
  }
  if (!TransA && TransB) {
    for (int64_t I = 0; I != M; ++I)
      for (int64_t J = 0; J != N; ++J) {
        const float *ARow = A + I * Lda;
        const float *BRow = B + J * Ldb;
        float Sum = 0.f;
        for (int64_t P = 0; P != K; ++P)
          Sum += ARow[P] * BRow[P];
        C[I * N + J] += Alpha * Sum;
      }
    return;
  }
  // TransA && TransB (rare; used only in some backward paths).
  for (int64_t I = 0; I != M; ++I)
    for (int64_t J = 0; J != N; ++J) {
      float Sum = 0.f;
      for (int64_t P = 0; P != K; ++P)
        Sum += A[P * Lda + I] * B[J * Ldb + P];
      C[I * N + J] += Alpha * Sum;
    }
}
