//===- nn/Optim.h - Adam optimizer ---------------------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adam with optional gradient clipping — the optimizer used for all model
/// variants. Deterministic: no internal randomness.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_NN_OPTIM_H
#define TYPILUS_NN_OPTIM_H

#include "nn/Layers.h"
#include "support/Archive.h"

#include <string>
#include <vector>

namespace typilus {
namespace nn {

/// Adam (Kingma & Ba 2015).
class Adam {
public:
  explicit Adam(ParamSet &PS, float Lr = 1e-3f, float ClipNorm = 5.f);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step();

  /// Appends the optimizer state (step count, hyper-parameters, both
  /// moment vectors) to the open chunk — together with the parameters
  /// this is everything a training checkpoint needs to resume exactly.
  void save(ArchiveWriter &W) const;
  /// Restores state written by save(). Fails with \p Err when the moment
  /// tensors do not match this optimizer's parameter shapes.
  bool load(ArchiveCursor &C, std::string *Err);

  float learningRate() const { return Lr; }
  void setLearningRate(float NewLr) { Lr = NewLr; }

private:
  ParamSet &PS;
  std::vector<Tensor> M, V;
  float Lr;
  float ClipNorm;
  float Beta1 = 0.9f, Beta2 = 0.999f, Eps = 1e-8f;
  int T = 0;
};

} // namespace nn
} // namespace typilus

#endif // TYPILUS_NN_OPTIM_H
