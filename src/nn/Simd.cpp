//===- nn/Simd.cpp - Scalar reference table + ISA dispatch --------------------===//

#include "nn/Simd.h"

#include "support/Float16.h"

#include <atomic>
#include <cmath>

using namespace typilus;
using namespace typilus::nn;

//===----------------------------------------------------------------------===//
// Scalar reference kernels
//
// These are the historical nn/Kernels.cpp and knn/TypeMap.cpp inner loops,
// verbatim. They are the determinism reference: the NnTest equivalence
// suite pins the public kernels against naive references *through this
// table*, and the SIMD tables are tolerance-tested against it.
//===----------------------------------------------------------------------===//

namespace {

void scalarAxpyRow(float *Dst, float A, const float *X, int64_t N) {
  for (int64_t I = 0; I != N; ++I)
    Dst[I] += A * X[I];
}

float scalarDot(const float *A, const float *B, int64_t N) {
  float Sum = 0.f;
  for (int64_t I = 0; I != N; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

float scalarL1(const float *A, const float *B, int64_t N) {
  float Sum = 0;
  for (int64_t I = 0; I != N; ++I)
    Sum += std::fabs(A[I] - B[I]);
  return Sum;
}

float scalarL1F16(const float *Q, const uint16_t *Row, int64_t N) {
  float Sum = 0;
  for (int64_t I = 0; I != N; ++I)
    Sum += std::fabs(Q[I] - f16BitsToF32(Row[I]));
  return Sum;
}

float scalarL1I8(const float *Q, const int8_t *Row, float Scale, int64_t N) {
  float Sum = 0;
  for (int64_t I = 0; I != N; ++I)
    Sum += std::fabs(Q[I] - Scale * static_cast<float>(Row[I]));
  return Sum;
}

void scalarAdd(float *Dst, const float *Src, int64_t N) {
  for (int64_t I = 0; I != N; ++I)
    Dst[I] += Src[I];
}

void scalarSub(float *Dst, const float *Src, int64_t N) {
  for (int64_t I = 0; I != N; ++I)
    Dst[I] -= Src[I];
}

void scalarMul(float *Dst, const float *Src, int64_t N) {
  for (int64_t I = 0; I != N; ++I)
    Dst[I] *= Src[I];
}

void scalarScale(float *Dst, float S, int64_t N) {
  for (int64_t I = 0; I != N; ++I)
    Dst[I] *= S;
}

void scalarMulAcc(float *Dst, const float *A, const float *B, int64_t N) {
  for (int64_t I = 0; I != N; ++I)
    Dst[I] += A[I] * B[I];
}

void scalarSigmoid(float *X, int64_t N) {
  for (int64_t I = 0; I != N; ++I)
    X[I] = 1.f / (1.f + std::exp(-X[I]));
}

void scalarSigmoidBwd(float *DX, const float *DY, const float *Y, int64_t N) {
  for (int64_t I = 0; I != N; ++I)
    DX[I] += DY[I] * Y[I] * (1.f - Y[I]);
}

void scalarTanh(float *X, int64_t N) {
  for (int64_t I = 0; I != N; ++I)
    X[I] = std::tanh(X[I]);
}

void scalarTanhBwd(float *DX, const float *DY, const float *Y, int64_t N) {
  for (int64_t I = 0; I != N; ++I)
    DX[I] += DY[I] * (1.f - Y[I] * Y[I]);
}

void scalarRelu(float *X, int64_t N) {
  for (int64_t I = 0; I != N; ++I)
    X[I] = X[I] > 0.f ? X[I] : 0.f;
}

void scalarReluBwd(float *DX, const float *DY, const float *X, int64_t N) {
  for (int64_t I = 0; I != N; ++I)
    DX[I] += X[I] > 0.f ? DY[I] : 0.f;
}

void scalarSoftmaxRow(float *Row, int64_t Cols) {
  float Max = Row[0];
  for (int64_t C = 1; C != Cols; ++C)
    Max = std::max(Max, Row[C]);
  float Sum = 0;
  for (int64_t C = 0; C != Cols; ++C) {
    float E = std::exp(Row[C] - Max);
    Row[C] = E;
    Sum += E;
  }
  for (int64_t C = 0; C != Cols; ++C)
    Row[C] /= Sum;
}

constexpr simd::KernelTable ScalarTable = {
    scalarAxpyRow, scalarDot,        scalarL1,   scalarL1F16,
    scalarL1I8,    scalarAdd,        scalarSub,  scalarMul,
    scalarScale,   scalarMulAcc,     scalarSigmoid, scalarSigmoidBwd,
    scalarTanh,    scalarTanhBwd,    scalarRelu, scalarReluBwd,
    scalarSoftmaxRow, simd::Isa::Scalar,
};

} // namespace

//===----------------------------------------------------------------------===//
// Detection and dispatch state
//===----------------------------------------------------------------------===//

namespace {

/// The best table this build + CPU supports; null when only scalar exists.
const simd::KernelTable *bestSimdTable() {
#ifdef TYPILUS_SIMD_AVX2
  // FMA and F16C ship together with AVX2 on every real core, but the
  // kernels use all three, so gate on all three.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
      __builtin_cpu_supports("f16c"))
    return &simd::avx2Table();
#endif
#ifdef TYPILUS_SIMD_NEON
  return &simd::neonTable(); // baseline on aarch64, no probe needed
#endif
  return nullptr;
}

std::atomic<const simd::KernelTable *> &activePtr() {
  static std::atomic<const simd::KernelTable *> P{
      bestSimdTable() ? bestSimdTable() : &ScalarTable};
  return P;
}

} // namespace

const simd::KernelTable &simd::active() {
  return *activePtr().load(std::memory_order_acquire);
}

const simd::KernelTable &simd::scalarTable() { return ScalarTable; }

bool simd::simdAvailable() { return bestSimdTable() != nullptr; }

void simd::setSimdEnabled(bool Enabled) {
  const KernelTable *Best = bestSimdTable();
  activePtr().store(Enabled && Best ? Best : &ScalarTable,
                    std::memory_order_release);
}

bool simd::simdEnabled() { return active().WhichIsa != Isa::Scalar; }

simd::Isa simd::activeIsa() { return active().WhichIsa; }

const char *simd::isaName(Isa I) {
  switch (I) {
  case Isa::Scalar:
    return "scalar";
  case Isa::Avx2:
    return "avx2";
  case Isa::Neon:
    return "neon";
  }
  return "scalar";
}
