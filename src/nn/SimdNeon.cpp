//===- nn/SimdNeon.cpp - NEON kernel table (aarch64) --------------------------===//
//
// NEON is baseline on aarch64, so no runtime probe and no special compile
// flags are needed. The table starts from the scalar reference and
// overrides the straightforward f32 loops; the transcendental kernels
// (sigmoid/tanh/softmax) and the quantized-row decoders stay on the
// scalar entries — vectorizing those is only worth doing against hardware
// this project's CI can actually measure and tolerance-test on.
//
//===----------------------------------------------------------------------===//

#include "nn/Simd.h"

#ifdef TYPILUS_SIMD_NEON

#include <arm_neon.h>
#include <cmath>

using namespace typilus;
using namespace typilus::nn;

namespace {

void axpyRow(float *Dst, float A, const float *X, int64_t N) {
  float32x4_t VA = vdupq_n_f32(A);
  int64_t I = 0;
  for (; I + 4 <= N; I += 4)
    vst1q_f32(Dst + I, vfmaq_f32(vld1q_f32(Dst + I), VA, vld1q_f32(X + I)));
  for (; I != N; ++I)
    Dst[I] = std::fmaf(A, X[I], Dst[I]); // fused, like the vfmaq lanes
}

float dot(const float *A, const float *B, int64_t N) {
  float32x4_t Acc = vdupq_n_f32(0.f);
  int64_t I = 0;
  for (; I + 4 <= N; I += 4)
    Acc = vfmaq_f32(Acc, vld1q_f32(A + I), vld1q_f32(B + I));
  float Sum = vaddvq_f32(Acc);
  for (; I != N; ++I)
    Sum = std::fmaf(A[I], B[I], Sum);
  return Sum;
}

float l1(const float *A, const float *B, int64_t N) {
  float32x4_t Acc = vdupq_n_f32(0.f);
  int64_t I = 0;
  for (; I + 4 <= N; I += 4)
    Acc = vaddq_f32(Acc, vabdq_f32(vld1q_f32(A + I), vld1q_f32(B + I)));
  float Sum = vaddvq_f32(Acc);
  for (; I != N; ++I)
    Sum += std::fabs(A[I] - B[I]);
  return Sum;
}

void add(float *Dst, const float *Src, int64_t N) {
  int64_t I = 0;
  for (; I + 4 <= N; I += 4)
    vst1q_f32(Dst + I, vaddq_f32(vld1q_f32(Dst + I), vld1q_f32(Src + I)));
  for (; I != N; ++I)
    Dst[I] += Src[I];
}

void sub(float *Dst, const float *Src, int64_t N) {
  int64_t I = 0;
  for (; I + 4 <= N; I += 4)
    vst1q_f32(Dst + I, vsubq_f32(vld1q_f32(Dst + I), vld1q_f32(Src + I)));
  for (; I != N; ++I)
    Dst[I] -= Src[I];
}

void mul(float *Dst, const float *Src, int64_t N) {
  int64_t I = 0;
  for (; I + 4 <= N; I += 4)
    vst1q_f32(Dst + I, vmulq_f32(vld1q_f32(Dst + I), vld1q_f32(Src + I)));
  for (; I != N; ++I)
    Dst[I] *= Src[I];
}

void scale(float *Dst, float S, int64_t N) {
  float32x4_t VS = vdupq_n_f32(S);
  int64_t I = 0;
  for (; I + 4 <= N; I += 4)
    vst1q_f32(Dst + I, vmulq_f32(vld1q_f32(Dst + I), VS));
  for (; I != N; ++I)
    Dst[I] *= S;
}

void mulAcc(float *Dst, const float *A, const float *B, int64_t N) {
  int64_t I = 0;
  // mul then add (not vfmaq): bit-identical to the scalar reference.
  for (; I + 4 <= N; I += 4)
    vst1q_f32(Dst + I,
              vaddq_f32(vld1q_f32(Dst + I),
                        vmulq_f32(vld1q_f32(A + I), vld1q_f32(B + I))));
  for (; I != N; ++I)
    Dst[I] += A[I] * B[I];
}

void sigmoidBwd(float *DX, const float *DY, const float *Y, int64_t N) {
  float32x4_t One = vdupq_n_f32(1.f);
  int64_t I = 0;
  for (; I + 4 <= N; I += 4) {
    float32x4_t VY = vld1q_f32(Y + I);
    float32x4_t T = vmulq_f32(vld1q_f32(DY + I), VY);
    T = vmulq_f32(T, vsubq_f32(One, VY));
    vst1q_f32(DX + I, vaddq_f32(vld1q_f32(DX + I), T));
  }
  for (; I != N; ++I)
    DX[I] += DY[I] * Y[I] * (1.f - Y[I]);
}

void tanhBwd(float *DX, const float *DY, const float *Y, int64_t N) {
  float32x4_t One = vdupq_n_f32(1.f);
  int64_t I = 0;
  for (; I + 4 <= N; I += 4) {
    float32x4_t VY = vld1q_f32(Y + I);
    float32x4_t T = vmulq_f32(vld1q_f32(DY + I),
                              vsubq_f32(One, vmulq_f32(VY, VY)));
    vst1q_f32(DX + I, vaddq_f32(vld1q_f32(DX + I), T));
  }
  for (; I != N; ++I)
    DX[I] += DY[I] * (1.f - Y[I] * Y[I]);
}

void relu(float *X, int64_t N) {
  float32x4_t Zero = vdupq_n_f32(0.f);
  int64_t I = 0;
  for (; I + 4 <= N; I += 4)
    vst1q_f32(X + I, vmaxq_f32(vld1q_f32(X + I), Zero));
  for (; I != N; ++I)
    X[I] = X[I] > 0.f ? X[I] : 0.f;
}

void reluBwd(float *DX, const float *DY, const float *X, int64_t N) {
  float32x4_t Zero = vdupq_n_f32(0.f);
  int64_t I = 0;
  for (; I + 4 <= N; I += 4) {
    uint32x4_t Mask = vcgtq_f32(vld1q_f32(X + I), Zero);
    float32x4_t T = vreinterpretq_f32_u32(
        vandq_u32(Mask, vreinterpretq_u32_f32(vld1q_f32(DY + I))));
    vst1q_f32(DX + I, vaddq_f32(vld1q_f32(DX + I), T));
  }
  for (; I != N; ++I)
    DX[I] += X[I] > 0.f ? DY[I] : 0.f;
}

} // namespace

const simd::KernelTable &simd::neonTable() {
  static const KernelTable T = [] {
    KernelTable N = scalarTable();
    N.AxpyRow = axpyRow;
    N.Dot = dot;
    N.L1 = l1;
    N.Add = add;
    N.Sub = sub;
    N.Mul = mul;
    N.Scale = scale;
    N.MulAcc = mulAcc;
    N.SigmoidBwd = sigmoidBwd;
    N.TanhBwd = tanhBwd;
    N.Relu = relu;
    N.ReluBwd = reluBwd;
    N.WhichIsa = Isa::Neon;
    return N;
  }();
  return T;
}

#endif // TYPILUS_SIMD_NEON
