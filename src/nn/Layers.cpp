//===- nn/Layers.cpp - Neural network layers ---------------------------------===//

#include "nn/Layers.h"

#include <cassert>
#include <cmath>

using namespace typilus;
using namespace typilus::nn;

size_t ParamSet::numParams() const {
  size_t N = 0;
  for (const Value &P : Params)
    N += static_cast<size_t>(P.val().numel());
  return N;
}

void ParamSet::zeroGrads() {
  for (Value &P : Params)
    P.grad().fill(0.f);
}

Linear::Linear(int64_t In, int64_t Out, ParamSet &PS, Rng &R) {
  float Scale = 1.f / std::sqrt(static_cast<float>(In));
  W = PS.make(Tensor::randn(In, Out, R, Scale));
  B = PS.make(Tensor(Out));
}

Embedding::Embedding(int64_t Vocab, int64_t Dim, ParamSet &PS, Rng &R) {
  W = PS.make(Tensor::randn(Vocab, Dim, R, 0.1f));
}

GruCell::GruCell(int64_t In, int64_t HidDim, ParamSet &PS, Rng &R)
    : Hid(HidDim) {
  float SIn = 1.f / std::sqrt(static_cast<float>(In));
  float SHid = 1.f / std::sqrt(static_cast<float>(HidDim));
  Wr = PS.make(Tensor::randn(In, HidDim, R, SIn));
  Ur = PS.make(Tensor::randn(HidDim, HidDim, R, SHid));
  Br = PS.make(Tensor(HidDim));
  Wz = PS.make(Tensor::randn(In, HidDim, R, SIn));
  Uz = PS.make(Tensor::randn(HidDim, HidDim, R, SHid));
  Bz = PS.make(Tensor(HidDim));
  Wn = PS.make(Tensor::randn(In, HidDim, R, SIn));
  Un = PS.make(Tensor::randn(HidDim, HidDim, R, SHid));
  Bn = PS.make(Tensor(HidDim));
}

Value GruCell::step(Value X, Value H) const {
  assert(X.val().rows() == H.val().rows() && "GRU batch mismatch");
  Value Rt = sigmoid(add(add(matmul(X, Wr), matmul(H, Ur)), Br));
  Value Zt = sigmoid(add(add(matmul(X, Wz), matmul(H, Uz)), Bz));
  Value Nt = tanhOp(add(add(matmul(X, Wn), mul(Rt, matmul(H, Un))), Bn));
  // h' = z*h + (1-z)*n.
  Tensor Ones(H.val().rows(), Hid);
  Ones.fill(1.f);
  Value OneMinusZ = sub(Value::constant(std::move(Ones)), Zt);
  return add(mul(Zt, H), mul(OneMinusZ, Nt));
}

CharCnn::CharCnn(int64_t CharDimIn, int64_t OutDim, ParamSet &PS, Rng &R)
    : CharDim(CharDimIn) {
  CharEmb = Embedding(129, CharDimIn, PS, R); // 0..127 ASCII; 128 = pad
  Conv = Linear(3 * CharDimIn, OutDim, PS, R);
}

Value CharCnn::encodeBatch(const std::vector<std::string> &Words) const {
  assert(!Words.empty() && "encodeBatch of nothing");
  // Stack every word's padded characters and width-3 windows into one
  // index set; Owner maps each window row back to its word.
  std::vector<int> Ids, Left, Mid, Right, Owner;
  for (size_t W = 0; W != Words.size(); ++W) {
    int Base = static_cast<int>(Ids.size());
    Ids.push_back(128);
    for (char C : Words[W])
      Ids.push_back(static_cast<unsigned char>(C) & 0x7F);
    Ids.push_back(128);
    int L = static_cast<int>(Ids.size()) - Base;
    bool Any = false;
    for (int I = 1; I + 1 < L; ++I) {
      Left.push_back(Base + I - 1);
      Mid.push_back(Base + I);
      Right.push_back(Base + I + 1);
      Owner.push_back(static_cast<int>(W));
      Any = true;
    }
    if (!Any) { // Empty word: a single pad-only window.
      Left.push_back(Base);
      Mid.push_back(Base);
      Right.push_back(Base + 1);
      Owner.push_back(static_cast<int>(W));
    }
  }
  Value Emb = CharEmb.rows(std::move(Ids));
  Value Win = concatCols(concatCols(gatherRows(Emb, std::move(Left)),
                                    gatherRows(Emb, std::move(Mid))),
                         gatherRows(Emb, std::move(Right)));
  // Per-word max-over-time == reduceMaxRows over each word's window block.
  return scatterMax(relu(Conv.apply(Win)), std::move(Owner),
                    static_cast<int64_t>(Words.size()));
}

Value CharCnn::encode(const std::string &Word) const {
  // Pad with one sentinel on each side so every character anchors a window.
  std::vector<int> Ids;
  Ids.push_back(128);
  for (char C : Word)
    Ids.push_back(static_cast<unsigned char>(C) & 0x7F);
  Ids.push_back(128);
  int L = static_cast<int>(Ids.size());
  Value Emb = CharEmb.rows(Ids); // [L, CharDim]
  // Windows of size 3 centred on positions 1..L-2.
  std::vector<int> Left, Mid, Right;
  for (int I = 1; I + 1 < L; ++I) {
    Left.push_back(I - 1);
    Mid.push_back(I);
    Right.push_back(I + 1);
  }
  if (Left.empty()) { // Empty word: a single pad-only window.
    Left = {0};
    Mid = {0};
    Right = {1};
  }
  Value Win = concatCols(concatCols(gatherRows(Emb, Left), gatherRows(Emb, Mid)),
                         gatherRows(Emb, Right));
  return reduceMaxRows(relu(Conv.apply(Win)));
}
