//===- nn/Optim.cpp - Adam optimizer -----------------------------------------===//

#include "nn/Optim.h"

#include "nn/Serialize.h"

#include <cmath>

using namespace typilus;
using namespace typilus::nn;

void Adam::save(ArchiveWriter &W) const {
  W.writeI32(T);
  W.writeF32(Lr);
  W.writeF32(ClipNorm);
  W.writeU64(M.size());
  for (size_t I = 0; I != M.size(); ++I) {
    writeTensor(W, M[I]);
    writeTensor(W, V[I]);
  }
}

bool Adam::load(ArchiveCursor &C, std::string *Err) {
  int32_t NewT = C.readI32();
  float NewLr = C.readF32();
  float NewClip = C.readF32();
  uint64_t Count = C.readU64();
  if (!C.ok() || Count != M.size()) {
    if (Err && Err->empty())
      *Err = "optimizer state does not match the model's parameter count";
    return false;
  }
  std::vector<Tensor> NewM(M.size()), NewV(V.size());
  for (size_t I = 0; I != M.size(); ++I) {
    if (!readTensor(C, NewM[I]) || !readTensor(C, NewV[I]) ||
        !NewM[I].sameShape(M[I]) || !NewV[I].sameShape(V[I])) {
      if (Err && Err->empty())
        *Err = "optimizer moment " + std::to_string(I) +
               " does not match the model's parameter shapes";
      return false;
    }
  }
  T = NewT;
  Lr = NewLr;
  ClipNorm = NewClip;
  M = std::move(NewM);
  V = std::move(NewV);
  return true;
}

Adam::Adam(ParamSet &PS, float Lr, float ClipNorm)
    : PS(PS), Lr(Lr), ClipNorm(ClipNorm) {
  for (const Value &P : PS.params()) {
    M.push_back(Tensor::zerosLike(P.val()));
    V.push_back(Tensor::zerosLike(P.val()));
  }
}

void Adam::step() {
  ++T;
  // Global-norm gradient clipping.
  double NormSq = 0;
  for (const Value &P : PS.params()) {
    const Tensor &G = P.grad();
    for (int64_t I = 0; I != G.numel(); ++I)
      NormSq += static_cast<double>(G[I]) * G[I];
  }
  float Scale = 1.f;
  if (ClipNorm > 0 && NormSq > ClipNorm * ClipNorm)
    Scale = ClipNorm / static_cast<float>(std::sqrt(NormSq));

  float C1 = 1.f - std::pow(Beta1, static_cast<float>(T));
  float C2 = 1.f - std::pow(Beta2, static_cast<float>(T));
  for (size_t I = 0; I != PS.params().size(); ++I) {
    Value P = PS.params()[I];
    Tensor &G = P.grad();
    Tensor &W = P.valMutable();
    for (int64_t J = 0; J != W.numel(); ++J) {
      float Gj = G[J] * Scale;
      M[I][J] = Beta1 * M[I][J] + (1.f - Beta1) * Gj;
      V[I][J] = Beta2 * V[I][J] + (1.f - Beta2) * Gj * Gj;
      float MHat = M[I][J] / C1;
      float VHat = V[I][J] / C2;
      W[J] -= Lr * MHat / (std::sqrt(VHat) + Eps);
    }
    G.fill(0.f);
  }
}
