//===- support/Socket.h - Unix-domain sockets and line IO ---------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport under the serving daemon (docs/ARCHITECTURE.md
/// "Serving"): RAII file descriptors, a Unix-domain stream listener, a
/// client connector, and a buffered newline-delimited reader with a hard
/// per-line cap (the protocol's oversized-request guard). POSIX-only,
/// like the rest of the build; everything reports failures through
/// `std::string *Err` out-parameters instead of exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SUPPORT_SOCKET_H
#define TYPILUS_SUPPORT_SOCKET_H

#include <cstddef>
#include <string>
#include <string_view>

namespace typilus {

/// Move-only owner of one POSIX file descriptor.
class FileDesc {
public:
  FileDesc() = default;
  explicit FileDesc(int Fd) : Fd(Fd) {}
  ~FileDesc() { reset(); }

  FileDesc(FileDesc &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  FileDesc &operator=(FileDesc &&O) noexcept {
    if (this != &O) {
      reset();
      Fd = O.Fd;
      O.Fd = -1;
    }
    return *this;
  }
  FileDesc(const FileDesc &) = delete;
  FileDesc &operator=(const FileDesc &) = delete;

  int fd() const { return Fd; }
  bool valid() const { return Fd >= 0; }
  /// Closes the descriptor (idempotent).
  void reset();
  /// `shutdown(SHUT_RD)`: wakes a blocked reader with EOF while keeping
  /// the write side open — the daemon's drain-on-SIGTERM primitive.
  void shutdownRead();

private:
  int Fd = -1;
};

/// A listening Unix-domain stream socket bound to a filesystem path.
class UnixListener {
public:
  UnixListener() = default;
  ~UnixListener();

  UnixListener(const UnixListener &) = delete;
  UnixListener &operator=(const UnixListener &) = delete;

  /// Binds and listens on \p Path (unlinking a stale socket file first).
  /// Paths longer than sockaddr_un allows are rejected.
  bool listenOn(const std::string &Path, std::string *Err);

  /// Accepts one connection; blocks. \returns an invalid FileDesc on
  /// error or after close(). EINTR is retried.
  FileDesc acceptConn();

  /// Closes the listening socket (acceptConn unblocks) and removes the
  /// socket file.
  void close();

  int fd() const { return Listen.fd(); }
  const std::string &path() const { return BoundPath; }

private:
  FileDesc Listen;
  std::string BoundPath;
};

/// Connects to a Unix-domain listener at \p Path.
bool connectUnix(const std::string &Path, FileDesc &Out, std::string *Err);

/// Writes all of \p Data to \p Fd, retrying partial writes and EINTR.
/// SIGPIPE is suppressed for sockets (MSG_NOSIGNAL). \returns false on
/// any other error (e.g. the peer vanished, or a send timeout set with
/// setSendTimeout expired).
bool writeAll(int Fd, std::string_view Data);

/// Caps how long one send() to \p Fd may block (SO_SNDTIMEO). The
/// daemon sets this on every connection so a client that stops reading
/// cannot stall the dispatcher: after \p Seconds of back-pressure the
/// write fails, the slow client forfeits that response, and serving
/// continues.
bool setSendTimeout(int Fd, int Seconds);

/// Buffered reader of '\n'-terminated lines with a hard per-line byte
/// cap. An overlong line is discarded through its terminating newline
/// (unbounded input cannot exhaust memory) and reported as TooLong; the
/// reader stays usable for subsequent lines.
class LineReader {
public:
  enum class Status {
    Line,        ///< \p Out holds one complete line (newline stripped).
    Eof,         ///< Peer closed; unterminated trailing bytes are dropped.
    TooLong,     ///< Line exceeded the cap and was discarded.
    Error,       ///< Read error (connection reset, ...).
    Interrupted, ///< read() hit EINTR; caller decides whether to resume
                 ///< (the daemon checks its stop flag here) — calling
                 ///< next() again simply continues.
  };

  /// \p WakeFd (optional): a second descriptor polled alongside \p Fd;
  /// when it becomes readable, next() returns Interrupted instead of
  /// blocking in read() — the daemon passes its shutdown self-pipe here
  /// so SIGTERM preempts a blocked stdin read without races.
  LineReader(int Fd, size_t MaxLineBytes, int WakeFd = -1)
      : Fd(Fd), MaxBytes(MaxLineBytes), WakeFd(WakeFd) {}

  /// Blocks until one of the Status cases resolves.
  Status next(std::string &Out);

private:
  int Fd;
  size_t MaxBytes;
  int WakeFd;
  std::string Buf;     ///< Bytes read but not yet consumed.
  size_t Scanned = 0;  ///< Prefix of Buf already searched for '\n'.
  bool Discarding = false;
  bool SawEof = false;
};

} // namespace typilus

#endif // TYPILUS_SUPPORT_SOCKET_H
