//===- support/Socket.h - Unix-domain sockets and line IO ---------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport under the serving daemon (docs/ARCHITECTURE.md
/// "Serving"): RAII file descriptors, Unix-domain and TCP stream
/// listeners, client connectors, and a buffered newline-delimited reader
/// with a hard per-line cap (the protocol's oversized-request guard).
/// POSIX-only, like the rest of the build; everything reports failures
/// through `std::string *Err` out-parameters instead of exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SUPPORT_SOCKET_H
#define TYPILUS_SUPPORT_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace typilus {

/// Move-only owner of one POSIX file descriptor.
class FileDesc {
public:
  FileDesc() = default;
  explicit FileDesc(int Fd) : Fd(Fd) {}
  ~FileDesc() { reset(); }

  FileDesc(FileDesc &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  FileDesc &operator=(FileDesc &&O) noexcept {
    if (this != &O) {
      reset();
      Fd = O.Fd;
      O.Fd = -1;
    }
    return *this;
  }
  FileDesc(const FileDesc &) = delete;
  FileDesc &operator=(const FileDesc &) = delete;

  int fd() const { return Fd; }
  bool valid() const { return Fd >= 0; }
  /// Closes the descriptor (idempotent).
  void reset();
  /// `shutdown(SHUT_RD)`: wakes a blocked reader with EOF while keeping
  /// the write side open — the daemon's drain-on-SIGTERM primitive.
  void shutdownRead();

private:
  int Fd = -1;
};

/// A listening Unix-domain stream socket bound to a filesystem path.
class UnixListener {
public:
  UnixListener() = default;
  ~UnixListener();

  UnixListener(const UnixListener &) = delete;
  UnixListener &operator=(const UnixListener &) = delete;

  /// Binds and listens on \p Path (unlinking a stale socket file first).
  /// Paths longer than sockaddr_un allows are rejected.
  bool listenOn(const std::string &Path, std::string *Err);

  /// Accepts one connection; blocks. \returns an invalid FileDesc on
  /// error or after close(). EINTR is retried.
  FileDesc acceptConn();

  /// Closes the listening socket (acceptConn unblocks) and removes the
  /// socket file.
  void close();

  int fd() const { return Listen.fd(); }
  const std::string &path() const { return BoundPath; }

private:
  FileDesc Listen;
  std::string BoundPath;
};

/// Connects to a Unix-domain listener at \p Path.
bool connectUnix(const std::string &Path, FileDesc &Out, std::string *Err);

/// A listening TCP socket (IPv4). The serving daemon's `--port`
/// transport; identical accept surface to UnixListener so the daemon's
/// accept loop is shared between the two.
class TcpListener {
public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener &) = delete;
  TcpListener &operator=(const TcpListener &) = delete;

  /// Binds \p Host:\p Port (SO_REUSEADDR) and listens. \p Host must be a
  /// dotted-quad address ("127.0.0.1", "0.0.0.0"); \p Port 0 picks an
  /// ephemeral port — port() reports the one actually bound (how tests
  /// and the bench avoid clashes).
  bool listenOn(const std::string &Host, uint16_t Port, std::string *Err);

  /// Accepts one connection; blocks. \returns an invalid FileDesc on
  /// error or after close(). EINTR is retried.
  FileDesc acceptConn();

  /// Closes the listening socket (acceptConn unblocks).
  void close();

  int fd() const { return Listen.fd(); }
  uint16_t port() const { return BoundPort; }

private:
  FileDesc Listen;
  uint16_t BoundPort = 0;
};

/// Connects to a TCP listener at \p Host:\p Port (IPv4 dotted-quad).
bool connectTcp(const std::string &Host, uint16_t Port, FileDesc &Out,
                std::string *Err);

/// Disables Nagle on a TCP connection so one-line responses leave
/// immediately instead of waiting out the coalescing timer. A no-op
/// failure on non-TCP fds (the shared accept loop calls it on Unix
/// connections too).
void setTcpNoDelay(int Fd);

/// Writes all of \p Data to \p Fd, retrying partial writes and EINTR.
/// SIGPIPE is suppressed for sockets (MSG_NOSIGNAL). \returns false on
/// any other error (e.g. the peer vanished, or a send timeout set with
/// setSendTimeout expired).
bool writeAll(int Fd, std::string_view Data);

/// Caps how long one send() to \p Fd may block (SO_SNDTIMEO). The
/// daemon sets this on every connection so a client that stops reading
/// cannot stall the dispatcher: after \p Seconds of back-pressure the
/// write fails, the slow client forfeits that response, and serving
/// continues.
bool setSendTimeout(int Fd, int Seconds);

/// Buffered reader of '\n'-terminated lines with a hard per-line byte
/// cap. An overlong line is discarded through its terminating newline
/// (unbounded input cannot exhaust memory) and reported as TooLong; the
/// reader stays usable for subsequent lines.
class LineReader {
public:
  enum class Status {
    Line,        ///< \p Out holds one complete line (newline stripped).
    Eof,         ///< Peer closed; unterminated trailing bytes are dropped.
    TooLong,     ///< Line exceeded the cap and was discarded.
    Error,       ///< Read error (connection reset, ...).
    Interrupted, ///< read() hit EINTR; caller decides whether to resume
                 ///< (the daemon checks its stop flag here) — calling
                 ///< next() again simply continues.
  };

  /// \p WakeFd (optional): a second descriptor polled alongside \p Fd;
  /// when it becomes readable, next() returns Interrupted instead of
  /// blocking in read() — the daemon passes its shutdown self-pipe here
  /// so SIGTERM preempts a blocked stdin read without races.
  LineReader(int Fd, size_t MaxLineBytes, int WakeFd = -1)
      : Fd(Fd), MaxBytes(MaxLineBytes), WakeFd(WakeFd) {}

  /// Blocks until one of the Status cases resolves.
  Status next(std::string &Out);

private:
  int Fd;
  size_t MaxBytes;
  int WakeFd;
  std::string Buf;     ///< Bytes read but not yet consumed.
  size_t Scanned = 0;  ///< Prefix of Buf already searched for '\n'.
  bool Discarding = false;
  bool SawEof = false;
};

} // namespace typilus

#endif // TYPILUS_SUPPORT_SOCKET_H
