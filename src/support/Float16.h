//===- support/Float16.h - IEEE binary16 conversion ---------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Software IEEE-754 binary16 <-> binary32 conversion for the quantized
/// τmap marker store (knn/TypeMap.h). Quantization always goes through
/// these routines — never through hardware F16C — so the stored bytes are
/// identical on every host. Decoding is exact (every f16 is representable
/// as an f32), so the software decoder and `vcvtph2ps` agree bit-for-bit
/// and the SIMD distance kernels may use either.
///
/// Encoding rounds to nearest, ties to even — the same mode the hardware
/// uses — and handles subnormals, infinities and NaN.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SUPPORT_FLOAT16_H
#define TYPILUS_SUPPORT_FLOAT16_H

#include <cstdint>
#include <cstring>

namespace typilus {

/// Decodes one binary16 bit pattern. Exact.
inline float f16BitsToF32(uint16_t H) {
  uint32_t Sign = static_cast<uint32_t>(H & 0x8000u) << 16;
  uint32_t Exp = (H >> 10) & 0x1Fu;
  uint32_t Man = H & 0x3FFu;
  uint32_t Bits;
  if (Exp == 0) {
    if (Man == 0) {
      Bits = Sign; // signed zero
    } else {
      // Subnormal: value = Man * 2^-24. Normalize so the leading 1 sits at
      // bit 10, tracking the shift in the exponent.
      int Shift = 0;
      while (!(Man & 0x400u)) {
        Man <<= 1;
        ++Shift;
      }
      Man &= 0x3FFu;
      Bits = Sign | (static_cast<uint32_t>(113 - Shift) << 23) | (Man << 13);
    }
  } else if (Exp == 31) {
    Bits = Sign | 0x7F800000u | (Man << 13); // inf / NaN (payload widened)
  } else {
    Bits = Sign | ((Exp + 112) << 23) | (Man << 13);
  }
  float F;
  std::memcpy(&F, &Bits, sizeof(F));
  return F;
}

/// Encodes \p F as binary16, rounding to nearest with ties to even.
inline uint16_t f32ToF16Bits(float F) {
  uint32_t X;
  std::memcpy(&X, &F, sizeof(X));
  uint32_t Sign = (X >> 16) & 0x8000u;
  uint32_t ExpF = (X >> 23) & 0xFFu;
  uint32_t Man = X & 0x7FFFFFu;
  if (ExpF == 0xFFu) // inf / NaN (keep NaN quiet with a nonzero payload)
    return static_cast<uint16_t>(Sign | 0x7C00u |
                                 (Man ? 0x200u | (Man >> 13) : 0u));
  int32_t Exp = static_cast<int32_t>(ExpF) - 127 + 15;
  if (Exp >= 31) // overflows f16 even before rounding
    return static_cast<uint16_t>(Sign | 0x7C00u);
  if (Exp <= 0) {
    // Subnormal (or underflow to zero): shift the 24-bit significand —
    // implicit bit restored — down to the 10-bit subnormal field.
    if (Exp < -10)
      return static_cast<uint16_t>(Sign);
    uint32_t M = Man | 0x800000u;
    int Shift = 14 - Exp;
    uint32_t Half = M >> Shift;
    uint32_t Rem = M & ((1u << Shift) - 1u);
    uint32_t Mid = 1u << (Shift - 1);
    if (Rem > Mid || (Rem == Mid && (Half & 1u)))
      ++Half; // a carry into exponent 1 yields the right pattern anyway
    return static_cast<uint16_t>(Sign | Half);
  }
  // Normal: drop 13 mantissa bits with round-to-nearest-even. A mantissa
  // carry propagates into the exponent, and 30 -> 31 correctly lands on
  // the infinity pattern (values just under 2^16 round up past f16 max).
  uint32_t Half = (static_cast<uint32_t>(Exp) << 10) | (Man >> 13);
  uint32_t Rem = Man & 0x1FFFu;
  if (Rem > 0x1000u || (Rem == 0x1000u && (Half & 1u)))
    ++Half;
  return static_cast<uint16_t>(Sign | Half);
}

} // namespace typilus

#endif // TYPILUS_SUPPORT_FLOAT16_H
