//===- support/Json.cpp - Minimal JSON reader/writer ---------------------------===//

#include "support/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace typilus;
using namespace typilus::json;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

const Value *Value::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Members)
    if (Name == Key)
      return &V;
  return nullptr;
}

int64_t Value::getInt(std::string_view Key, int64_t Default) const {
  const Value *V = find(Key);
  return V && V->isNumber() ? V->asInt() : Default;
}

std::string Value::getString(std::string_view Key,
                             std::string_view Default) const {
  const Value *V = find(Key);
  return V && V->isString() ? V->asString() : std::string(Default);
}

bool Value::getBool(std::string_view Key, bool Default) const {
  const Value *V = find(Key);
  return V && V->isBool() ? V->asBool() : Default;
}

Value Value::makeBool(bool V) {
  Value R;
  R.K = Kind::Bool;
  R.B = V;
  return R;
}

Value Value::makeNumber(double V) {
  Value R;
  R.K = Kind::Number;
  R.Num = V;
  return R;
}

Value Value::makeString(std::string V) {
  Value R;
  R.K = Kind::String;
  R.Str = std::move(V);
  return R;
}

Value Value::makeArray(std::vector<Value> V) {
  Value R;
  R.K = Kind::Array;
  R.Arr = std::move(V);
  return R;
}

Value Value::makeObject(std::vector<std::pair<std::string, Value>> V) {
  Value R;
  R.K = Kind::Object;
  R.Members = std::move(V);
  return R;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Strict single-pass recursive-descent parser. Position-carrying so error
/// messages name the byte offset.
class Parser {
public:
  Parser(std::string_view Text, int MaxDepth) : T(Text), Limit(MaxDepth) {}

  bool run(Value &Out, std::string *Err) {
    Error.clear();
    if (!parseValue(Out, 0))
      return fail(Err);
    skipWs();
    if (Pos != T.size()) {
      Error = "trailing garbage";
      return fail(Err);
    }
    return true;
  }

private:
  bool fail(std::string *Err) {
    if (Error.empty())
      return true;
    if (Err)
      *Err = "invalid JSON at byte " + std::to_string(Pos) + ": " + Error;
    return false;
  }

  void skipWs() {
    while (Pos < T.size() && (T[Pos] == ' ' || T[Pos] == '\t' ||
                              T[Pos] == '\n' || T[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < T.size() && T[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool expect(char C, const char *What) {
    if (eat(C))
      return true;
    Error = std::string("expected ") + What;
    return false;
  }

  bool literal(std::string_view Word) {
    if (T.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool parseValue(Value &Out, int Depth) {
    if (Depth > Limit) {
      Error = "nesting too deep";
      return false;
    }
    skipWs();
    if (Pos >= T.size()) {
      Error = "unexpected end of input";
      return false;
    }
    char C = T[Pos];
    switch (C) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value::makeString(std::move(S));
      return true;
    }
    case 't':
      if (literal("true")) {
        Out = Value::makeBool(true);
        return true;
      }
      break;
    case 'f':
      if (literal("false")) {
        Out = Value::makeBool(false);
        return true;
      }
      break;
    case 'n':
      if (literal("null")) {
        Out = Value::makeNull();
        return true;
      }
      break;
    default:
      if (C == '-' || (C >= '0' && C <= '9'))
        return parseNumber(Out);
      break;
    }
    Error = "unexpected character";
    return false;
  }

  bool parseObject(Value &Out, int Depth) {
    ++Pos; // '{'
    std::vector<std::pair<std::string, Value>> Members;
    skipWs();
    if (eat('}')) {
      Out = Value::makeObject(std::move(Members));
      return true;
    }
    for (;;) {
      skipWs();
      if (Pos >= T.size() || T[Pos] != '"') {
        Error = "expected object key";
        return false;
      }
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!expect(':', "':' after object key"))
        return false;
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Members.emplace_back(std::move(Key), std::move(V));
      if (eat(','))
        continue;
      if (!expect('}', "',' or '}' in object"))
        return false;
      Out = Value::makeObject(std::move(Members));
      return true;
    }
  }

  bool parseArray(Value &Out, int Depth) {
    ++Pos; // '['
    std::vector<Value> Elems;
    skipWs();
    if (eat(']')) {
      Out = Value::makeArray(std::move(Elems));
      return true;
    }
    for (;;) {
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Elems.push_back(std::move(V));
      if (eat(','))
        continue;
      if (!expect(']', "',' or ']' in array"))
        return false;
      Out = Value::makeArray(std::move(Elems));
      return true;
    }
  }

  /// Appends \p Code as UTF-8.
  static void appendUtf8(std::string &S, uint32_t Code) {
    if (Code < 0x80) {
      S.push_back(static_cast<char>(Code));
    } else if (Code < 0x800) {
      S.push_back(static_cast<char>(0xC0 | (Code >> 6)));
      S.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    } else if (Code < 0x10000) {
      S.push_back(static_cast<char>(0xE0 | (Code >> 12)));
      S.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
      S.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    } else {
      S.push_back(static_cast<char>(0xF0 | (Code >> 18)));
      S.push_back(static_cast<char>(0x80 | ((Code >> 12) & 0x3F)));
      S.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
      S.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    }
  }

  bool parseHex4(uint32_t &Out) {
    if (Pos + 4 > T.size()) {
      Error = "truncated \\u escape";
      return false;
    }
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = T[Pos + static_cast<size_t>(I)];
      uint32_t D;
      if (C >= '0' && C <= '9')
        D = static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        D = static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        D = static_cast<uint32_t>(C - 'A' + 10);
      else {
        Error = "bad \\u escape";
        return false;
      }
      Out = Out * 16 + D;
    }
    Pos += 4;
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    for (;;) {
      if (Pos >= T.size()) {
        Error = "unterminated string";
        return false;
      }
      unsigned char C = static_cast<unsigned char>(T[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20) {
        Error = "raw control character in string";
        return false;
      }
      if (C != '\\') {
        Out.push_back(static_cast<char>(C));
        ++Pos;
        continue;
      }
      ++Pos; // '\'
      if (Pos >= T.size()) {
        Error = "truncated escape";
        return false;
      }
      char E = T[Pos++];
      switch (E) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '/':
        Out.push_back('/');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        uint32_t Code;
        if (!parseHex4(Code))
          return false;
        // Combine a surrogate pair; a lone surrogate becomes U+FFFD
        // without swallowing whatever follows it.
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          size_t Mark = Pos;
          uint32_t Low = 0;
          bool HaveLow = false;
          if (Pos + 1 < T.size() && T[Pos] == '\\' && T[Pos + 1] == 'u') {
            Pos += 2;
            if (!parseHex4(Low))
              return false;
            HaveLow = true;
          }
          if (HaveLow && Low >= 0xDC00 && Low <= 0xDFFF) {
            Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
          } else {
            // Unpaired high surrogate: emit the replacement char and
            // reprocess the lookahead escape (if any) on its own.
            Code = 0xFFFD;
            Pos = Mark;
          }
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          Code = 0xFFFD;
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        Error = "unknown escape";
        return false;
      }
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < T.size() && T[Pos] == '-')
      ++Pos;
    auto Digits = [&] {
      size_t N = 0;
      while (Pos < T.size() && T[Pos] >= '0' && T[Pos] <= '9') {
        ++Pos;
        ++N;
      }
      return N;
    };
    size_t IntDigits = Digits();
    if (IntDigits == 0) {
      Error = "malformed number";
      return false;
    }
    // JSON forbids leading zeros ("01"), which strtod would accept.
    if (IntDigits > 1 && T[Start + (T[Start] == '-' ? 1 : 0)] == '0') {
      Error = "leading zero in number";
      return false;
    }
    if (Pos < T.size() && T[Pos] == '.') {
      ++Pos;
      if (Digits() == 0) {
        Error = "malformed number";
        return false;
      }
    }
    if (Pos < T.size() && (T[Pos] == 'e' || T[Pos] == 'E')) {
      ++Pos;
      if (Pos < T.size() && (T[Pos] == '+' || T[Pos] == '-'))
        ++Pos;
      if (Digits() == 0) {
        Error = "malformed number";
        return false;
      }
    }
    // The token is exactly [Start, Pos); strtod needs a terminated copy.
    std::string Tok(T.substr(Start, Pos - Start));
    Out = Value::makeNumber(std::strtod(Tok.c_str(), nullptr));
    return true;
  }

  std::string_view T;
  size_t Pos = 0;
  int Limit;
  std::string Error;
};

} // namespace

bool json::parse(std::string_view Text, Value &Out, std::string *Err,
                 int MaxDepth) {
  return Parser(Text, MaxDepth).run(Out, Err);
}

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

void json::appendQuoted(std::string &Out, std::string_view S) {
  Out.push_back('"');
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  Out.push_back('"');
}

std::string json::quoted(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  appendQuoted(Out, S);
  return Out;
}

void json::appendNumber(std::string &Out, double V) {
  if (!std::isfinite(V)) {
    Out += "null";
    return;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}
