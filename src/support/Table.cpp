//===- support/Table.cpp - ASCII table / CSV rendering ---------------------===//

#include "support/Table.h"

#include "support/Str.h"

#include <algorithm>

using namespace typilus;

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void TextTable::addNumericRow(const std::string &Label,
                              const std::vector<double> &Nums, int Precision) {
  std::vector<std::string> Cells;
  Cells.push_back(Label);
  for (double N : Nums)
    Cells.push_back(strformat("%.*f", Precision, N));
  addRow(std::move(Cells));
}

static std::string padTo(const std::string &S, size_t Width) {
  std::string Result = S;
  while (Result.size() < Width)
    Result.push_back(' ');
  return Result;
}

std::string TextTable::renderAscii() const {
  size_t NumCols = Header.size();
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());
  std::vector<size_t> Widths(NumCols, 0);
  auto Measure = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Measure(Header);
  for (const auto &Row : Rows)
    Measure(Row);

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I != NumCols; ++I) {
      if (I != 0)
        Line += "  ";
      Line += padTo(I < Row.size() ? Row[I] : std::string(), Widths[I]);
    }
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line + "\n";
  };

  std::string Result;
  if (!Header.empty()) {
    Result += RenderRow(Header);
    size_t Total = 0;
    for (size_t I = 0; I != NumCols; ++I)
      Total += Widths[I] + (I != 0 ? 2 : 0);
    Result += std::string(Total, '-') + "\n";
  }
  for (const auto &Row : Rows)
    Result += RenderRow(Row);
  return Result;
}

static std::string csvEscape(const std::string &Field) {
  if (Field.find_first_of(",\"\n") == std::string::npos)
    return Field;
  std::string Result = "\"";
  for (char C : Field) {
    if (C == '"')
      Result += '"';
    Result += C;
  }
  Result += '"';
  return Result;
}

std::string TextTable::renderCsv() const {
  std::string Result;
  auto RenderRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I) {
      if (I != 0)
        Result += ',';
      Result += csvEscape(Row[I]);
    }
    Result += '\n';
  };
  if (!Header.empty())
    RenderRow(Header);
  for (const auto &Row : Rows)
    RenderRow(Row);
  return Result;
}
