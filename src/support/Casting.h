//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ----------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-rolled opt-in RTTI in the style of LLVM's llvm/Support/Casting.h.
/// A class hierarchy participates by exposing a kind tag and a static
/// `classof(const Base *)` predicate on each subclass.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SUPPORT_CASTING_H
#define TYPILUS_SUPPORT_CASTING_H

#include <cassert>

namespace typilus {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts on kind mismatch.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible kind");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible kind");
  return static_cast<const To *>(Val);
}

/// Downcast that returns nullptr on kind mismatch.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace typilus

#endif // TYPILUS_SUPPORT_CASTING_H
