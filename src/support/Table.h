//===- support/Table.h - ASCII table / CSV rendering -------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal text-table builder used by the benchmark harness to print the
/// paper's tables and figure series. Renders either an aligned ASCII table
/// or CSV (for the figure benches whose output is a data series).
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SUPPORT_TABLE_H
#define TYPILUS_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace typilus {

/// Builds and renders a rectangular text table.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row. Rows may be ragged; missing cells render empty.
  void addRow(std::vector<std::string> Cells);

  /// Convenience: appends a row where the first cell is a label and the
  /// remaining cells are fixed-precision numbers.
  void addNumericRow(const std::string &Label, const std::vector<double> &Nums,
                     int Precision = 1);

  /// Renders an aligned ASCII table with a header separator.
  std::string renderAscii() const;

  /// Renders RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  std::string renderCsv() const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace typilus

#endif // TYPILUS_SUPPORT_TABLE_H
