//===- support/Zipf.h - Zipf-distributed sampling ----------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Zipf(s) sampler over ranks 0..N-1. Sec. 6 of the paper observes that
/// type annotations follow a fat-tailed Zipfian distribution (top-10 types
/// cover about half the data; 32% of annotations use rare types). The corpus
/// generator uses this sampler to reproduce that skew.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SUPPORT_ZIPF_H
#define TYPILUS_SUPPORT_ZIPF_H

#include "support/Rng.h"

#include <cstddef>
#include <vector>

namespace typilus {

/// Samples ranks 0..N-1 with probability proportional to 1/(rank+1)^S.
class ZipfSampler {
public:
  /// \param N number of ranks; \param S skew exponent (1.0 is classic Zipf).
  ZipfSampler(size_t N, double S);

  /// Draws one rank using \p R.
  size_t sample(Rng &R) const;

  /// Probability mass of \p Rank.
  double pmf(size_t Rank) const;

  size_t size() const { return Cdf.size(); }

private:
  std::vector<double> Cdf; // Inclusive cumulative probabilities.
};

} // namespace typilus

#endif // TYPILUS_SUPPORT_ZIPF_H
