//===- support/Str.cpp - String utilities ---------------------------------===//

#include "support/Str.h"

#include <cassert>
#include <cctype>
#include <cstdarg>
#include <cstdio>

using namespace typilus;

std::vector<std::string> typilus::splitSubtokens(std::string_view Identifier) {
  std::vector<std::string> Result;
  std::string Current;
  auto Flush = [&] {
    if (!Current.empty()) {
      Result.push_back(toLower(Current));
      Current.clear();
    }
  };
  for (size_t I = 0, E = Identifier.size(); I != E; ++I) {
    char C = Identifier[I];
    if (C == '_' || !std::isalnum(static_cast<unsigned char>(C))) {
      Flush();
      continue;
    }
    bool IsUpper = std::isupper(static_cast<unsigned char>(C));
    bool IsDigit = std::isdigit(static_cast<unsigned char>(C));
    if (!Current.empty()) {
      char Prev = Current.back();
      bool PrevUpper = std::isupper(static_cast<unsigned char>(Prev));
      bool PrevDigit = std::isdigit(static_cast<unsigned char>(Prev));
      // Boundary cases: aB, 1a, a1 and the "HTTPResponse" case where an
      // upper-case run ends before a lower-case letter.
      bool NextIsLower =
          I + 1 < E && std::islower(static_cast<unsigned char>(Identifier[I + 1]));
      if ((IsUpper && !PrevUpper) || (IsDigit != PrevDigit) ||
          (IsUpper && PrevUpper && NextIsLower))
        Flush();
    }
    Current.push_back(C);
  }
  Flush();
  return Result;
}

std::string typilus::toLower(std::string_view S) {
  std::string Result(S);
  for (char &C : Result)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Result;
}

std::string typilus::join(const std::vector<std::string> &Parts,
                          std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

bool typilus::isAllDigits(std::string_view S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
  return true;
}

std::vector<std::string> typilus::splitChar(std::string_view S, char Sep) {
  std::vector<std::string> Result;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Result.emplace_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Result;
}

std::string_view typilus::trim(std::string_view S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

std::string typilus::strformat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  assert(Len >= 0 && "invalid format string");
  std::string Result(static_cast<size_t>(Len), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}
