//===- support/ThreadPool.h - Deterministic parallel execution ----*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution layer every parallel hot path dispatches through: a
/// fixed-size worker pool with a `parallelFor` that statically partitions
/// the iteration space into contiguous chunks. Chunk *boundaries* depend
/// only on the range and the way count — never on scheduling — and every
/// kernel built on top writes disjoint outputs per chunk with an unchanged
/// per-element arithmetic order, so results are bit-identical for any
/// thread count (including 1, which runs inline with zero overhead).
///
/// Nested `parallelFor` calls from inside a worker run serially inline
/// (no deadlock, no oversubscription). Exceptions thrown by chunk bodies
/// are captured and the first one is rethrown on the calling thread.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SUPPORT_THREADPOOL_H
#define TYPILUS_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace typilus {

/// A fixed-size pool of worker threads executing chunked loops.
class ThreadPool {
public:
  /// \p NumThreads total ways of parallelism including the calling thread;
  /// 0 means `hardware_concurrency` (at least 1). A pool of 1 spawns no
  /// workers and runs everything inline.
  explicit ThreadPool(int NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total ways of parallelism (workers + the calling thread).
  int numThreads() const { return static_cast<int>(Workers.size()) + 1; }

  /// Runs \p Fn(ChunkBegin, ChunkEnd) over a static partition of
  /// [Begin, End). At most ceil((End-Begin)/Grain) chunks are formed,
  /// capped at numThreads() (and at \p MaxWays when positive), and split
  /// as evenly as possible into contiguous ranges. Ranges of at most
  /// \p Grain elements — and all nested calls — run inline serially.
  /// Blocks until every chunk finished; rethrows the first exception.
  void parallelFor(int64_t Begin, int64_t End, int64_t Grain,
                   const std::function<void(int64_t, int64_t)> &Fn,
                   int MaxWays = 0);

  /// True while the current thread is executing inside a parallelFor
  /// (worker or participating caller). Nested calls run serially.
  static bool insideParallelRegion();

private:
  /// One in-flight parallelFor. Chunk ranges are a pure function of
  /// (Begin, End, NumChunks); the atomic only hands out chunk *indices*.
  /// Shared-owned: a worker that wakes after the caller already collected
  /// the results may still probe NextChunk, so the job must outlive the
  /// caller's stack frame.
  struct Job {
    const std::function<void(int64_t, int64_t)> *Fn = nullptr;
    int64_t Begin = 0, End = 0;
    int64_t NumChunks = 0;
    std::atomic<int64_t> NextChunk{0};
    std::atomic<int64_t> DoneChunks{0};
    std::exception_ptr Error;
    std::mutex ErrorMutex;
  };

  void workerLoop();
  void runChunks(Job &J);

  std::vector<std::thread> Workers;
  std::mutex Mutex; ///< Guards Current/JobSeq/Stop and the CVs.
  std::condition_variable WakeCV; ///< Workers wait here for a job.
  std::condition_variable DoneCV; ///< The caller waits here for completion.
  std::mutex SubmitMutex;         ///< One top-level job at a time.
  std::shared_ptr<Job> Current;
  uint64_t JobSeq = 0;
  bool Stop = false;
};

/// The process-wide pool used by the tensor kernels, the kNN index and the
/// training/prediction loops. Created lazily at the configured size.
ThreadPool &globalPool();

/// Resizes the process-wide pool (0 = hardware_concurrency). Takes effect
/// on the next globalPool() call; must not race with in-flight parallel
/// work. `setGlobalNumThreads(1)` makes every dispatch run serially inline.
void setGlobalNumThreads(int NumThreads);

/// The configured way count of the process-wide pool.
int globalNumThreads();

/// Convenience: globalPool().parallelFor(...).
inline void parallelFor(int64_t Begin, int64_t End, int64_t Grain,
                        const std::function<void(int64_t, int64_t)> &Fn,
                        int MaxWays = 0) {
  globalPool().parallelFor(Begin, End, Grain, Fn, MaxWays);
}

} // namespace typilus

#endif // TYPILUS_SUPPORT_THREADPOOL_H
