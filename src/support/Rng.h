//===- support/Rng.h - Deterministic random numbers -------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (SplitMix64) used everywhere instead of
/// std::mt19937 so that experiments are bit-reproducible across standard
/// library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SUPPORT_RNG_H
#define TYPILUS_SUPPORT_RNG_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace typilus {

/// Deterministic SplitMix64 pseudo-random number generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Z = (State += 0x9E3779B97F4A7C15ull);
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound). \p Bound must be > 0.
  uint64_t uniformInt(uint64_t Bound) {
    assert(Bound > 0 && "uniformInt bound must be positive");
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t uniformRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(uniformInt(
                    static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniformReal() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability \p P of returning true.
  bool flip(double P) { return uniformReal() < P; }

  /// Standard normal deviate (Box-Muller).
  double normal() {
    double U1 = uniformReal(), U2 = uniformReal();
    if (U1 < 1e-300)
      U1 = 1e-300;
    return std::sqrt(-2.0 * std::log(U1)) * std::cos(6.283185307179586 * U2);
  }

  /// Picks a uniformly random element of \p V, which must be non-empty.
  template <typename T> const T &pick(const std::vector<T> &V) {
    assert(!V.empty() && "pick from empty vector");
    return V[uniformInt(V.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &V) {
    for (size_t I = V.size(); I > 1; --I)
      std::swap(V[I - 1], V[uniformInt(I)]);
  }

  /// Forks an independent stream; deterministic in (this stream, Salt).
  Rng fork(uint64_t Salt) {
    return Rng(next() ^ (Salt * 0xD1B54A32D192ED03ull + 0x2545F4914F6CDD1Dull));
  }

  /// The raw stream position, for checkpoint/artifact serialization:
  /// restoring it with setState resumes the exact same number sequence.
  uint64_t state() const { return State; }
  void setState(uint64_t S) { State = S; }

private:
  uint64_t State;
};

} // namespace typilus

#endif // TYPILUS_SUPPORT_RNG_H
