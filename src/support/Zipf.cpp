//===- support/Zipf.cpp - Zipf-distributed sampling ------------------------===//

#include "support/Zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace typilus;

ZipfSampler::ZipfSampler(size_t N, double S) {
  assert(N > 0 && "Zipf over empty support");
  Cdf.resize(N);
  double Total = 0;
  for (size_t I = 0; I != N; ++I) {
    Total += 1.0 / std::pow(static_cast<double>(I + 1), S);
    Cdf[I] = Total;
  }
  for (double &C : Cdf)
    C /= Total;
}

size_t ZipfSampler::sample(Rng &R) const {
  double U = R.uniformReal();
  auto It = std::lower_bound(Cdf.begin(), Cdf.end(), U);
  if (It == Cdf.end())
    return Cdf.size() - 1;
  return static_cast<size_t>(It - Cdf.begin());
}

double ZipfSampler::pmf(size_t Rank) const {
  assert(Rank < Cdf.size() && "rank out of range");
  if (Rank == 0)
    return Cdf[0];
  return Cdf[Rank] - Cdf[Rank - 1];
}
