//===- support/Str.h - String utilities -------------------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers used across the project, most importantly the identifier
/// subtokenisation that Typilus relies on (Sec. 4.3, Eq. 7 of the paper):
/// identifiers are split on camelCase, PascalCase and snake_case boundaries
/// into lower-cased "subtokens".
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SUPPORT_STR_H
#define TYPILUS_SUPPORT_STR_H

#include <string>
#include <string_view>
#include <vector>

namespace typilus {

/// Splits an identifier into lower-cased subtokens on camelCase,
/// PascalCase, snake_case and digit boundaries.
///
/// Examples: "numNodes" -> {"num", "nodes"}; "get_HTTPResponse2" ->
/// {"get", "http", "response", "2"}. Returns an empty vector for an
/// identifier with no alphanumeric content.
std::vector<std::string> splitSubtokens(std::string_view Identifier);

/// Lower-cases ASCII characters of \p S.
std::string toLower(std::string_view S);

/// Joins \p Parts with \p Sep in between.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Returns true if \p S consists only of ASCII decimal digits (and is
/// non-empty).
bool isAllDigits(std::string_view S);

/// Splits \p S on the single character \p Sep. Empty fields are kept.
std::vector<std::string> splitChar(std::string_view S, char Sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view S);

/// printf-style formatting into a std::string.
std::string strformat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace typilus

#endif // TYPILUS_SUPPORT_STR_H
