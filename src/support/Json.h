//===- support/Json.h - Minimal JSON reader/writer ----------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON substrate of the serving protocol (docs/ARCHITECTURE.md
/// "Serving"): a small DOM value, a strict recursive-descent parser with
/// depth and size guards, and string-literal emission. Follows the
/// codebase's error style — no exceptions, `std::string *Err`
/// out-parameters — and is deliberately tiny: the protocol needs flat
/// objects of scalars plus one nested candidates array, not a framework.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SUPPORT_JSON_H
#define TYPILUS_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace typilus {
namespace json {

/// One parsed JSON value. Object members preserve source order and are
/// looked up linearly (protocol objects have a handful of keys).
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  /// The number truncated toward zero (request ids, limits).
  int64_t asInt() const { return static_cast<int64_t>(Num); }
  const std::string &asString() const { return Str; }
  const std::vector<Value> &array() const { return Arr; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }

  /// First member named \p Key, or null when absent / not an object.
  const Value *find(std::string_view Key) const;

  /// Typed member accessors with defaults (absent or wrongly-typed members
  /// yield the default — callers validate presence with find()).
  int64_t getInt(std::string_view Key, int64_t Default) const;
  std::string getString(std::string_view Key, std::string_view Default) const;
  bool getBool(std::string_view Key, bool Default) const;

  static Value makeNull() { return Value(); }
  static Value makeBool(bool V);
  static Value makeNumber(double V);
  static Value makeString(std::string V);
  static Value makeArray(std::vector<Value> V);
  static Value makeObject(std::vector<std::pair<std::string, Value>> V);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Parses exactly one JSON value spanning all of \p Text (trailing
/// whitespace allowed, trailing garbage rejected). Nesting is capped at
/// \p MaxDepth. \returns false and sets \p Err on malformed input.
bool parse(std::string_view Text, Value &Out, std::string *Err,
           int MaxDepth = 64);

/// Appends \p S as a JSON string literal (quotes included) to \p Out,
/// escaping quotes, backslashes and control characters.
void appendQuoted(std::string &Out, std::string_view S);

/// appendQuoted into a fresh string.
std::string quoted(std::string_view S);

/// Appends \p V in shortest round-trip form ("%.17g"; NaN/Inf, which JSON
/// cannot carry, are emitted as null).
void appendNumber(std::string &Out, double V);

} // namespace json
} // namespace typilus

#endif // TYPILUS_SUPPORT_JSON_H
