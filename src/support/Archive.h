//===- support/Archive.h - Versioned binary artifact format ------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serialization substrate for every durable artifact (model
/// snapshots, τmap indexes, training checkpoints): a chunked, versioned,
/// endian-stable binary container with a per-chunk CRC32.
///
/// Layout:
///
///   "TYPA"            4-byte magic
///   u32               container version (the framing itself)
///   u32               payload format version (what the chunks mean)
///   repeated chunks:
///     tag             4 bytes, e.g. "parm"
///     u64             payload size in bytes
///     payload         `size` bytes
///     u32             CRC32 of the payload
///
/// All integers are little-endian regardless of host byte order; floats
/// are stored as the little-endian bytes of their IEEE-754 bit pattern.
/// Readers locate chunks by tag, so writers may append new chunk kinds
/// without breaking old readers; changing the *meaning* of an existing
/// chunk requires bumping the payload format version (see
/// docs/ARCHITECTURE.md "Artifacts & versioning").
///
/// Error handling is exception-free to match the rest of the codebase:
/// the reader and cursors carry sticky failure state, and file-level
/// entry points report through an `std::string *Err` out-parameter.
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_SUPPORT_ARCHIVE_H
#define TYPILUS_SUPPORT_ARCHIVE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace typilus {

/// CRC32 (IEEE 802.3 polynomial, the zlib convention) of \p Size bytes.
uint32_t crc32(const void *Data, size_t Size);

/// Builds one archive in memory; write chunks, then flush to a file.
class ArchiveWriter {
public:
  /// \p FormatVersion is the payload format version stamped in the header.
  /// \p Magic selects the 4-byte container family ("TYPA" for model
  /// artifacts and checkpoints, "TYPS" for corpus shards); readers only
  /// accept archives written with the magic they expect.
  explicit ArchiveWriter(uint32_t FormatVersion, const char *Magic = "TYPA");

  /// Opens a chunk tagged \p Tag (exactly 4 characters). Chunks cannot
  /// nest; every beginChunk must be paired with endChunk.
  void beginChunk(const char *Tag);
  void endChunk();

  /// Scalar writers append to the open chunk. Little-endian always.
  void writeU8(uint8_t V);
  void writeU32(uint32_t V);
  void writeU64(uint64_t V);
  void writeI32(int32_t V) { writeU32(static_cast<uint32_t>(V)); }
  void writeI64(int64_t V) { writeU64(static_cast<uint64_t>(V)); }
  void writeF32(float V);
  void writeF64(double V);
  /// u64 byte length + raw bytes.
  void writeStr(std::string_view S);
  /// Raw run of \p N floats (no length prefix; pair with a count field).
  void writeF32Array(const float *Data, size_t N);
  /// Raw run of \p N u16 values (the f16 marker store's bit patterns).
  void writeU16Array(const uint16_t *Data, size_t N);
  /// Raw run of \p N i32 values (index adjacency/leaf-item runs). Byte
  /// stream identical to N writeI32 calls.
  void writeI32Array(const int32_t *Data, size_t N);
  /// Raw run of \p N bytes (no length prefix; pair with a count field).
  void writeBytes(const void *Data, size_t N);

  /// Flushes the whole archive to \p Path. Must not be mid-chunk.
  /// \returns false and sets \p Err on I/O failure.
  bool writeFile(const std::string &Path, std::string *Err) const;

  /// The serialized archive (for in-memory round-trips and tests).
  const std::string &bytes() const;

private:
  std::string Buf;       ///< Header + finished chunks.
  std::string ChunkBuf;  ///< Payload of the chunk being written.
  bool InChunk = false;
};

/// Reads scalars out of one chunk's payload. Under-runs and malformed
/// values set a sticky failure flag instead of reading garbage: always
/// check ok() after the last read of a chunk.
class ArchiveCursor {
public:
  ArchiveCursor() = default;
  ArchiveCursor(const uint8_t *Data, size_t Size) : Data(Data), End(Size) {}

  uint8_t readU8();
  uint32_t readU32();
  uint64_t readU64();
  int32_t readI32() { return static_cast<int32_t>(readU32()); }
  int64_t readI64() { return static_cast<int64_t>(readU64()); }
  float readF32();
  double readF64();
  std::string readStr();
  /// Reads exactly \p N floats into \p Out (which must hold N).
  void readF32Array(float *Out, size_t N);
  /// Reads exactly \p N u16 values into \p Out (which must hold N).
  void readU16Array(uint16_t *Out, size_t N);
  /// Reads exactly \p N i32 values into \p Out (which must hold N).
  void readI32Array(int32_t *Out, size_t N);
  /// Reads exactly \p N raw bytes into \p Out (which must hold N).
  void readBytes(void *Out, size_t N);

  bool ok() const { return !Failed; }
  size_t remaining() const { return End - Pos; }
  /// True when every byte has been consumed and no read failed — the
  /// "this chunk parsed cleanly" check loaders end with.
  bool atEnd() const { return ok() && Pos == End; }

private:
  bool take(void *Out, size_t N);

  const uint8_t *Data = nullptr;
  size_t Pos = 0, End = 0;
  bool Failed = false;
};

/// Opens an archive, validates the framing and checksums, serves chunks.
class ArchiveReader {
public:
  /// One chunk's directory entry (also the `inspect` listing).
  struct ChunkInfo {
    std::string Tag;
    size_t Size = 0;   ///< Payload bytes.
    size_t Offset = 0; ///< Payload offset within the archive.
  };

  /// Reads and validates \p Path: magic, container version, chunk framing
  /// and every chunk's CRC32. \returns false and sets \p Err on any
  /// truncation, corruption or version mismatch. \p Magic must match the
  /// writer's container family (see ArchiveWriter).
  bool openFile(const std::string &Path, std::string *Err,
                const char *Magic = "TYPA");
  /// Same, over an in-memory archive (tests).
  bool openBytes(std::string Bytes, std::string *Err,
                 const char *Magic = "TYPA");

  /// The payload format version stamped by the writer.
  uint32_t formatVersion() const { return FormatVersion; }

  bool hasChunk(std::string_view Tag) const;
  /// Cursor over the payload of the first chunk tagged \p Tag. When the
  /// chunk is missing, sets \p Err and returns a failed cursor.
  ArchiveCursor chunk(std::string_view Tag, std::string *Err) const;

  /// Directory of all chunks, in file order.
  const std::vector<ChunkInfo> &chunks() const { return Dir; }

private:
  bool parse(std::string *Err, const char *Magic);

  std::string Buf;
  std::vector<ChunkInfo> Dir;
  uint32_t FormatVersion = 0;
};

} // namespace typilus

#endif // TYPILUS_SUPPORT_ARCHIVE_H
