//===- support/ThreadPool.cpp - Deterministic parallel execution -------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <memory>

using namespace typilus;

namespace {

/// Set while the current thread executes chunks (worker or participating
/// caller); nested parallelFor calls check it and run inline.
thread_local bool InsideRegion = false;

/// The static partition: chunk \p C of \p NumChunks over [Begin, End),
/// contiguous and as even as possible (the first Rem chunks get one extra
/// element). Depends only on its arguments — never on scheduling.
std::pair<int64_t, int64_t> chunkRange(int64_t Begin, int64_t End,
                                       int64_t NumChunks, int64_t C) {
  int64_t N = End - Begin;
  int64_t Q = N / NumChunks, Rem = N % NumChunks;
  int64_t Lo = Begin + C * Q + std::min(C, Rem);
  int64_t Hi = Lo + Q + (C < Rem ? 1 : 0);
  return {Lo, Hi};
}

} // namespace

bool ThreadPool::insideParallelRegion() { return InsideRegion; }

ThreadPool::ThreadPool(int NumThreads) {
  if (NumThreads <= 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(static_cast<size_t>(NumThreads - 1));
  for (int I = 1; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stop = true;
  }
  WakeCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  InsideRegion = true; // workers only ever run inside a region
  uint64_t SeenSeq = 0;
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    WakeCV.wait(Lock, [&] { return Stop || (Current && JobSeq != SeenSeq); });
    if (Stop)
      return;
    SeenSeq = JobSeq;
    std::shared_ptr<Job> J = Current; // keep alive past the caller's frame
    Lock.unlock();
    runChunks(*J);
    J.reset();
    Lock.lock();
  }
}

void ThreadPool::runChunks(Job &J) {
  for (;;) {
    int64_t C = J.NextChunk.fetch_add(1, std::memory_order_relaxed);
    if (C >= J.NumChunks)
      return;
    auto [Lo, Hi] = chunkRange(J.Begin, J.End, J.NumChunks, C);
    try {
      (*J.Fn)(Lo, Hi);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(J.ErrorMutex);
      if (!J.Error)
        J.Error = std::current_exception();
    }
    if (J.DoneChunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        J.NumChunks) {
      // Take the pool mutex so the caller can't miss the notification
      // between checking the predicate and sleeping.
      std::lock_guard<std::mutex> Lock(Mutex);
      DoneCV.notify_all();
    }
  }
}

void ThreadPool::parallelFor(int64_t Begin, int64_t End, int64_t Grain,
                             const std::function<void(int64_t, int64_t)> &Fn,
                             int MaxWays) {
  if (End <= Begin)
    return;
  Grain = std::max<int64_t>(1, Grain);
  int64_t N = End - Begin;
  int64_t Ways = numThreads();
  if (MaxWays > 0)
    Ways = std::min<int64_t>(Ways, MaxWays);
  int64_t NumChunks = std::min(Ways, (N + Grain - 1) / Grain);
  if (NumChunks <= 1 || InsideRegion || Workers.empty()) {
    // Serial path: same partition (one chunk), same arithmetic.
    bool Restore = InsideRegion;
    InsideRegion = true;
    try {
      Fn(Begin, End);
    } catch (...) {
      InsideRegion = Restore;
      throw;
    }
    InsideRegion = Restore;
    return;
  }

  std::lock_guard<std::mutex> SubmitLock(SubmitMutex);
  auto J = std::make_shared<Job>();
  J->Fn = &Fn;
  J->Begin = Begin;
  J->End = End;
  J->NumChunks = NumChunks;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Current = J;
    ++JobSeq;
  }
  WakeCV.notify_all();

  // The caller participates, then waits until every chunk completed. (A
  // straggler worker may still probe the drained chunk counter afterwards;
  // the shared_ptr it copied keeps the job alive for that.)
  InsideRegion = true;
  runChunks(*J);
  InsideRegion = false;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    DoneCV.wait(Lock, [&] {
      return J->DoneChunks.load(std::memory_order_acquire) == J->NumChunks;
    });
    Current.reset();
  }
  if (J->Error)
    std::rethrow_exception(J->Error);
}

//===----------------------------------------------------------------------===//
// Process-wide pool
//===----------------------------------------------------------------------===//

namespace {
std::mutex GlobalMutex;
std::unique_ptr<ThreadPool> Global;
int GlobalConfigured = 0; // 0 = hardware_concurrency
} // namespace

ThreadPool &typilus::globalPool() {
  std::lock_guard<std::mutex> Lock(GlobalMutex);
  if (!Global)
    Global = std::make_unique<ThreadPool>(GlobalConfigured);
  return *Global;
}

void typilus::setGlobalNumThreads(int NumThreads) {
  std::lock_guard<std::mutex> Lock(GlobalMutex);
  if (Global && Global->numThreads() ==
                    (NumThreads <= 0
                         ? static_cast<int>(std::max(
                               1u, std::thread::hardware_concurrency()))
                         : NumThreads))
    return; // already the right size; keep the warm pool
  Global.reset();
  GlobalConfigured = NumThreads;
}

int typilus::globalNumThreads() { return globalPool().numThreads(); }
