//===- support/Archive.cpp - Versioned binary artifact format ----------------===//

#include "support/Archive.h"

#include <cassert>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace typilus;

/// Container framing version: bump only when the byte layout of the
/// header/chunk framing itself changes (payload meaning changes bump the
/// writer-supplied format version instead).
static constexpr uint32_t kContainerVersion = 1;

uint32_t typilus::crc32(const void *Data, size_t Size) {
  // Bitwise CRC32 (reflected, poly 0xEDB88320) with a lazily built table.
  static const auto Table = [] {
    std::vector<uint32_t> T(256);
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t Crc = 0xFFFFFFFFu;
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Size; ++I)
    Crc = Table[(Crc ^ P[I]) & 0xFF] ^ (Crc >> 8);
  return Crc ^ 0xFFFFFFFFu;
}

//===----------------------------------------------------------------------===//
// Little-endian primitives
//===----------------------------------------------------------------------===//

static void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

static void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

/// The format is little-endian; on (the overwhelmingly common) LE hosts
/// float runs can be copied wholesale instead of element by element.
static bool hostIsLittleEndian() {
  uint32_t Probe = 1;
  unsigned char First;
  std::memcpy(&First, &Probe, 1);
  return First == 1;
}

//===----------------------------------------------------------------------===//
// ArchiveWriter
//===----------------------------------------------------------------------===//

ArchiveWriter::ArchiveWriter(uint32_t FormatVersion, const char *Magic) {
  assert(std::strlen(Magic) == 4 && "archive magic is exactly 4 characters");
  Buf.append(Magic, 4);
  putU32(Buf, kContainerVersion);
  putU32(Buf, FormatVersion);
}

void ArchiveWriter::beginChunk(const char *Tag) {
  assert(!InChunk && "chunks cannot nest");
  assert(std::strlen(Tag) == 4 && "chunk tags are exactly 4 characters");
  Buf.append(Tag, 4);
  InChunk = true;
  ChunkBuf.clear();
}

void ArchiveWriter::endChunk() {
  assert(InChunk && "endChunk without beginChunk");
  putU64(Buf, ChunkBuf.size());
  Buf.append(ChunkBuf);
  putU32(Buf, crc32(ChunkBuf.data(), ChunkBuf.size()));
  InChunk = false;
  ChunkBuf.clear();
}

void ArchiveWriter::writeU8(uint8_t V) {
  assert(InChunk && "writes go inside a chunk");
  ChunkBuf.push_back(static_cast<char>(V));
}

void ArchiveWriter::writeU32(uint32_t V) {
  assert(InChunk && "writes go inside a chunk");
  putU32(ChunkBuf, V);
}

void ArchiveWriter::writeU64(uint64_t V) {
  assert(InChunk && "writes go inside a chunk");
  putU64(ChunkBuf, V);
}

void ArchiveWriter::writeF32(float V) {
  uint32_t Bits;
  std::memcpy(&Bits, &V, 4);
  writeU32(Bits);
}

void ArchiveWriter::writeF64(double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, 8);
  writeU64(Bits);
}

void ArchiveWriter::writeStr(std::string_view S) {
  writeU64(S.size());
  assert(InChunk);
  ChunkBuf.append(S.data(), S.size());
}

void ArchiveWriter::writeF32Array(const float *Data, size_t N) {
  // The parm/tmap chunks are megabytes of raw f32 — the bulk of every
  // artifact — so this is the save-throughput hot path.
  if (hostIsLittleEndian()) {
    assert(InChunk && "writes go inside a chunk");
    ChunkBuf.append(reinterpret_cast<const char *>(Data), N * 4);
    return;
  }
  for (size_t I = 0; I != N; ++I)
    writeF32(Data[I]);
}

void ArchiveWriter::writeU16Array(const uint16_t *Data, size_t N) {
  // Same hot path as writeF32Array — the f16 marker store is half of a
  // quantized artifact's bytes.
  if (hostIsLittleEndian()) {
    assert(InChunk && "writes go inside a chunk");
    ChunkBuf.append(reinterpret_cast<const char *>(Data), N * 2);
    return;
  }
  assert(InChunk && "writes go inside a chunk");
  for (size_t I = 0; I != N; ++I) {
    ChunkBuf.push_back(static_cast<char>(Data[I] & 0xFF));
    ChunkBuf.push_back(static_cast<char>((Data[I] >> 8) & 0xFF));
  }
}

void ArchiveWriter::writeI32Array(const int32_t *Data, size_t N) {
  // The kNN index snapshots (Annoy leaf items, HNSW adjacency) are long
  // i32 runs; bulk-append on LE hosts like the f32/u16 marker arrays.
  if (hostIsLittleEndian()) {
    assert(InChunk && "writes go inside a chunk");
    ChunkBuf.append(reinterpret_cast<const char *>(Data), N * 4);
    return;
  }
  for (size_t I = 0; I != N; ++I)
    writeI32(Data[I]);
}

void ArchiveWriter::writeBytes(const void *Data, size_t N) {
  assert(InChunk && "writes go inside a chunk");
  ChunkBuf.append(static_cast<const char *>(Data), N);
}

const std::string &ArchiveWriter::bytes() const {
  assert(!InChunk && "finish the open chunk before reading bytes()");
  return Buf;
}

bool ArchiveWriter::writeFile(const std::string &Path,
                              std::string *Err) const {
  assert(!InChunk && "finish the open chunk before writeFile");
  // Write to a sibling temp file and rename over the target, so a crash
  // mid-write never destroys the previous good artifact — checkpoints
  // overwrite the same path after every epoch and must survive exactly
  // the interruptions they exist for.
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Tmp + "' for writing";
    return false;
  }
  bool Ok = std::fwrite(Buf.data(), 1, Buf.size(), F) == Buf.size();
#if defined(__unix__) || defined(__APPLE__)
  // The rename only makes the replacement atomic if the temp file's data
  // reached disk first; without the fsync a power loss right after the
  // rename leaves the path pointing at garbage AND the old file gone.
  Ok = std::fflush(F) == 0 && fsync(fileno(F)) == 0 && Ok;
#endif
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok) {
    std::remove(Tmp.c_str());
    if (Err)
      *Err = "short write to '" + Tmp + "'";
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    if (Err)
      *Err = "cannot replace '" + Path + "'";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// ArchiveCursor
//===----------------------------------------------------------------------===//

bool ArchiveCursor::take(void *Out, size_t N) {
  if (Failed || End - Pos < N) {
    Failed = true;
    std::memset(Out, 0, N);
    return false;
  }
  std::memcpy(Out, Data + Pos, N);
  Pos += N;
  return true;
}

uint8_t ArchiveCursor::readU8() {
  uint8_t V = 0;
  take(&V, 1);
  return V;
}

uint32_t ArchiveCursor::readU32() {
  uint8_t B[4] = {};
  take(B, 4);
  return static_cast<uint32_t>(B[0]) | static_cast<uint32_t>(B[1]) << 8 |
         static_cast<uint32_t>(B[2]) << 16 | static_cast<uint32_t>(B[3]) << 24;
}

uint64_t ArchiveCursor::readU64() {
  uint64_t V = 0;
  uint8_t B[8] = {};
  take(B, 8);
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | B[I];
  return V;
}

float ArchiveCursor::readF32() {
  uint32_t Bits = readU32();
  float V;
  std::memcpy(&V, &Bits, 4);
  return V;
}

double ArchiveCursor::readF64() {
  uint64_t Bits = readU64();
  double V;
  std::memcpy(&V, &Bits, 8);
  return V;
}

std::string ArchiveCursor::readStr() {
  uint64_t N = readU64();
  if (Failed || End - Pos < N) {
    Failed = true;
    return {};
  }
  std::string S(reinterpret_cast<const char *>(Data + Pos),
                static_cast<size_t>(N));
  Pos += static_cast<size_t>(N);
  return S;
}

void ArchiveCursor::readF32Array(float *Out, size_t N) {
  if (hostIsLittleEndian()) {
    take(Out, N * 4); // one bounds-checked bulk copy (load hot path)
    return;
  }
  for (size_t I = 0; I != N; ++I)
    Out[I] = readF32();
}

void ArchiveCursor::readU16Array(uint16_t *Out, size_t N) {
  if (hostIsLittleEndian()) {
    take(Out, N * 2); // one bounds-checked bulk copy (load hot path)
    return;
  }
  for (size_t I = 0; I != N; ++I) {
    uint8_t B[2] = {};
    take(B, 2);
    Out[I] = static_cast<uint16_t>(B[0] | (B[1] << 8));
  }
}

void ArchiveCursor::readI32Array(int32_t *Out, size_t N) {
  if (hostIsLittleEndian()) {
    take(Out, N * 4); // one bounds-checked bulk copy (load hot path)
    return;
  }
  for (size_t I = 0; I != N; ++I)
    Out[I] = readI32();
}

void ArchiveCursor::readBytes(void *Out, size_t N) { take(Out, N); }

//===----------------------------------------------------------------------===//
// ArchiveReader
//===----------------------------------------------------------------------===//

bool ArchiveReader::openFile(const std::string &Path, std::string *Err,
                             const char *Magic) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "' for reading";
    return false;
  }
  std::string Bytes;
  char Tmp[1 << 16];
  size_t N;
  while ((N = std::fread(Tmp, 1, sizeof(Tmp), F)) > 0)
    Bytes.append(Tmp, N);
  bool ReadOk = !std::ferror(F);
  std::fclose(F);
  if (!ReadOk) {
    if (Err)
      *Err = "read error on '" + Path + "'";
    return false;
  }
  return openBytes(std::move(Bytes), Err, Magic);
}

bool ArchiveReader::openBytes(std::string Bytes, std::string *Err,
                              const char *Magic) {
  Buf = std::move(Bytes);
  Dir.clear();
  return parse(Err, Magic);
}

bool ArchiveReader::parse(std::string *Err, const char *Magic) {
  auto Fail = [&](const std::string &Why) {
    if (Err)
      *Err = "invalid artifact: " + Why;
    Dir.clear();
    return false;
  };
  assert(std::strlen(Magic) == 4 && "archive magic is exactly 4 characters");
  const uint8_t *P = reinterpret_cast<const uint8_t *>(Buf.data());
  if (Buf.size() < 12)
    return Fail("truncated header");
  if (std::memcmp(P, Magic, 4) != 0)
    return Fail(std::string("bad magic (not a Typilus '") + Magic +
                "' archive)");
  ArchiveCursor Head(P + 4, 8);
  uint32_t Container = Head.readU32();
  FormatVersion = Head.readU32();
  if (Container != kContainerVersion)
    return Fail("container version " + std::to_string(Container) +
                " (this build reads version " +
                std::to_string(kContainerVersion) + ")");
  size_t Pos = 12;
  while (Pos != Buf.size()) {
    if (Buf.size() - Pos < 4 + 8)
      return Fail("truncated chunk header");
    ChunkInfo CI;
    CI.Tag.assign(Buf.data() + Pos, 4);
    ArchiveCursor SizeCur(P + Pos + 4, 8);
    uint64_t Size = SizeCur.readU64();
    Pos += 12;
    // Two-step bound check so an adversarial 2^64-ish size cannot
    // overflow `Size + 4` past the real comparison.
    if (Size > Buf.size() - Pos || Buf.size() - Pos - Size < 4)
      return Fail("truncated chunk '" + CI.Tag + "'");
    CI.Offset = Pos;
    CI.Size = static_cast<size_t>(Size);
    ArchiveCursor CrcCur(P + Pos + Size, 4);
    uint32_t Stored = CrcCur.readU32();
    if (crc32(P + Pos, CI.Size) != Stored)
      return Fail("checksum mismatch in chunk '" + CI.Tag + "'");
    Dir.push_back(std::move(CI));
    Pos += static_cast<size_t>(Size) + 4;
  }
  return true;
}

bool ArchiveReader::hasChunk(std::string_view Tag) const {
  for (const ChunkInfo &C : Dir)
    if (C.Tag == Tag)
      return true;
  return false;
}

ArchiveCursor ArchiveReader::chunk(std::string_view Tag,
                                   std::string *Err) const {
  for (const ChunkInfo &C : Dir)
    if (C.Tag == Tag)
      return ArchiveCursor(
          reinterpret_cast<const uint8_t *>(Buf.data()) + C.Offset, C.Size);
  if (Err)
    *Err = "invalid artifact: missing chunk '" + std::string(Tag) + "'";
  ArchiveCursor Bad(nullptr, 0);
  Bad.readU8(); // poison: a missing chunk is a failed cursor
  return Bad;
}
