//===- support/Socket.cpp - Unix-domain sockets and line IO --------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace typilus;

//===----------------------------------------------------------------------===//
// FileDesc
//===----------------------------------------------------------------------===//

void FileDesc::reset() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void FileDesc::shutdownRead() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RD);
}

//===----------------------------------------------------------------------===//
// UnixListener / connectUnix
//===----------------------------------------------------------------------===//

namespace {

bool fillSockaddr(const std::string &Path, sockaddr_un &Addr,
                  std::string *Err) {
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path '" + Path + "' is empty or longer than " +
             std::to_string(sizeof(Addr.sun_path) - 1) + " bytes";
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

std::string errnoString(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

} // namespace

UnixListener::~UnixListener() { close(); }

bool UnixListener::listenOn(const std::string &Path, std::string *Err) {
  sockaddr_un Addr;
  if (!fillSockaddr(Path, Addr, Err))
    return false;
  FileDesc S(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!S.valid()) {
    if (Err)
      *Err = errnoString("socket");
    return false;
  }
  // A previous daemon's socket file would make bind fail with EADDRINUSE;
  // it is dead weight once no process listens on it.
  ::unlink(Path.c_str());
  if (::bind(S.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (Err)
      *Err = errnoString(("bind '" + Path + "'").c_str());
    return false;
  }
  if (::listen(S.fd(), 64) != 0) {
    if (Err)
      *Err = errnoString("listen");
    return false;
  }
  Listen = std::move(S);
  BoundPath = Path;
  return true;
}

FileDesc UnixListener::acceptConn() {
  for (;;) {
    int C = ::accept(Listen.fd(), nullptr, nullptr);
    if (C >= 0)
      return FileDesc(C);
    if (errno != EINTR)
      return FileDesc();
  }
}

void UnixListener::close() {
  Listen.reset();
  if (!BoundPath.empty()) {
    ::unlink(BoundPath.c_str());
    BoundPath.clear();
  }
}

bool typilus::connectUnix(const std::string &Path, FileDesc &Out,
                          std::string *Err) {
  sockaddr_un Addr;
  if (!fillSockaddr(Path, Addr, Err))
    return false;
  FileDesc S(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!S.valid()) {
    if (Err)
      *Err = errnoString("socket");
    return false;
  }
  if (::connect(S.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    if (Err)
      *Err = errnoString(("connect '" + Path + "'").c_str());
    return false;
  }
  Out = std::move(S);
  return true;
}

//===----------------------------------------------------------------------===//
// TcpListener / connectTcp
//===----------------------------------------------------------------------===//

namespace {

bool fillInetAddr(const std::string &Host, uint16_t Port, sockaddr_in &Addr,
                  std::string *Err) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Err)
      *Err = "'" + Host + "' is not an IPv4 address";
    return false;
  }
  return true;
}

} // namespace

TcpListener::~TcpListener() { close(); }

bool TcpListener::listenOn(const std::string &Host, uint16_t Port,
                           std::string *Err) {
  sockaddr_in Addr;
  if (!fillInetAddr(Host, Port, Addr, Err))
    return false;
  FileDesc S(::socket(AF_INET, SOCK_STREAM, 0));
  if (!S.valid()) {
    if (Err)
      *Err = errnoString("socket");
    return false;
  }
  // Without SO_REUSEADDR a daemon restart would fight its predecessor's
  // TIME_WAIT connections for the port.
  int One = 1;
  ::setsockopt(S.fd(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(S.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (Err)
      *Err = errnoString(
          ("bind " + Host + ":" + std::to_string(Port)).c_str());
    return false;
  }
  if (::listen(S.fd(), 64) != 0) {
    if (Err)
      *Err = errnoString("listen");
    return false;
  }
  // Port 0 delegated the choice to the kernel; read back what it picked.
  sockaddr_in Bound;
  socklen_t Len = sizeof(Bound);
  if (::getsockname(S.fd(), reinterpret_cast<sockaddr *>(&Bound), &Len) != 0) {
    if (Err)
      *Err = errnoString("getsockname");
    return false;
  }
  Listen = std::move(S);
  BoundPort = ntohs(Bound.sin_port);
  return true;
}

FileDesc TcpListener::acceptConn() {
  for (;;) {
    int C = ::accept(Listen.fd(), nullptr, nullptr);
    if (C >= 0)
      return FileDesc(C);
    if (errno != EINTR)
      return FileDesc();
  }
}

void TcpListener::close() {
  Listen.reset();
  BoundPort = 0;
}

bool typilus::connectTcp(const std::string &Host, uint16_t Port, FileDesc &Out,
                         std::string *Err) {
  sockaddr_in Addr;
  if (!fillInetAddr(Host, Port, Addr, Err))
    return false;
  FileDesc S(::socket(AF_INET, SOCK_STREAM, 0));
  if (!S.valid()) {
    if (Err)
      *Err = errnoString("socket");
    return false;
  }
  if (::connect(S.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    if (Err)
      *Err = errnoString(
          ("connect " + Host + ":" + std::to_string(Port)).c_str());
    return false;
  }
  setTcpNoDelay(S.fd());
  Out = std::move(S);
  return true;
}

void typilus::setTcpNoDelay(int Fd) {
  int One = 1;
  // Fails with ENOTSUP/EOPNOTSUPP on Unix-domain sockets; by design.
  (void)::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

//===----------------------------------------------------------------------===//
// writeAll / LineReader
//===----------------------------------------------------------------------===//

bool typilus::writeAll(int Fd, std::string_view Data) {
  while (!Data.empty()) {
    // send(MSG_NOSIGNAL) keeps a vanished peer an error instead of a
    // process-killing SIGPIPE; plain files/pipes (stdio mode) get write().
    ssize_t N = ::send(Fd, Data.data(), Data.size(), MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK)
      N = ::write(Fd, Data.data(), Data.size());
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false; // includes EAGAIN from an expired SO_SNDTIMEO
    }
    Data.remove_prefix(static_cast<size_t>(N));
  }
  return true;
}

bool typilus::setSendTimeout(int Fd, int Seconds) {
  timeval TV;
  TV.tv_sec = Seconds;
  TV.tv_usec = 0;
  return ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &TV, sizeof(TV)) == 0;
}

LineReader::Status LineReader::next(std::string &Out) {
  for (;;) {
    // Scan only bytes not seen before; Buf never exceeds MaxBytes + one
    // read chunk even against a peer that streams forever without '\n'.
    size_t NL = Buf.find('\n', Scanned);
    if (NL != std::string::npos) {
      if (Discarding) {
        Buf.erase(0, NL + 1);
        Scanned = 0;
        Discarding = false;
        return Status::TooLong;
      }
      Out.assign(Buf, 0, NL);
      if (!Out.empty() && Out.back() == '\r')
        Out.pop_back();
      Buf.erase(0, NL + 1);
      Scanned = 0;
      return Status::Line;
    }
    Scanned = Buf.size();
    if (!Discarding && Buf.size() > MaxBytes) {
      Buf.clear();
      Scanned = 0;
      Discarding = true;
    } else if (Discarding) {
      Buf.clear();
      Scanned = 0;
    }
    if (SawEof) { // drained the buffer and the fd: partial line is dropped
      if (Discarding) {
        Discarding = false; // report once; the next call is a clean Eof
        return Status::TooLong;
      }
      return Status::Eof;
    }

    if (WakeFd >= 0) {
      // Wait for data or the wake-up; a signal delivered between reads
      // would otherwise be lost (read() only EINTRs when in progress).
      pollfd P[2];
      P[0] = pollfd{Fd, POLLIN, 0};
      P[1] = pollfd{WakeFd, POLLIN, 0};
      int R = ::poll(P, 2, -1);
      if (R < 0 && errno != EINTR)
        return Status::Error;
      if (R < 0 || P[1].revents)
        return Status::Interrupted;
      // fall through to read(): P[0] is readable (or hung up → EOF)
    }
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        return Status::Interrupted;
      return Status::Error;
    }
    if (N == 0) {
      SawEof = true;
      continue;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}
