//===- tools/typilus_lsp.cpp - The language-server daemon ----------------------===//
//
// Typilus as an editor language server: load one model artifact, then
// speak LSP (JSON-RPC 2.0 over Content-Length frames) on stdio or a
// Unix-domain socket. Every didOpen/didChange runs the incremental loop
// — tombstone the file's τmap markers, re-embed only that file, answer
// through the shared kNN kernel — and publishes predicted types as
// diagnostics plus a `typilus/types` notification whose digest matches
// `typilus_cli predict --source` on the same text.
//
//   typilus_lsp --model model.typilus --stdio
//   typilus_lsp --model model.typilus --socket /tmp/typilus-lsp.sock
//
// SIGTERM/SIGINT end the session cleanly (exit 0 after a client
// `shutdown`, 1 otherwise, per the LSP spec).
//
//===----------------------------------------------------------------------===//

#include "lsp/LspServer.h"
#include "nn/Simd.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <poll.h>
#include <unistd.h>

using namespace typilus;
using namespace typilus::lsp;

namespace {

struct Options {
  std::string ModelPath;
  std::string SocketPath;
  bool Stdio = false;
  int Threads = 0;
  int EfSearch = 0; ///< --ef-search: HNSW query budget (0 = default).
  double MinConfidence = 0.5;
  bool NoCheckerGate = false;
  bool InferLocals = false;
  bool NoSimd = false;
};

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --model PATH (--stdio | --socket PATH) [options]\n"
      "\n"
      "LSP server over a saved artifact: didOpen/didChange re-embed only\n"
      "the edited file and publish predicted types as diagnostics (and a\n"
      "typilus/types notification carrying the prediction digest).\n"
      "Options:\n"
      "  --threads N           pool size (0 = hardware, 1 = serial)\n"
      "  --ef-search N         HNSW per-request query budget (0 = the\n"
      "                        index default; other indexes ignore it)\n"
      "  --min-confidence X    publish threshold (default 0.5)\n"
      "  --no-checker-gate     publish without the Sec. 6.3 checker gate\n"
      "  --infer-locals        pytype-like inference inside the gate\n"
      "  --no-simd             pin the scalar reference kernels\n",
      Argv0);
  return 2;
}

bool parseOptions(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&](const char *What) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s expects a value\n", What);
        return nullptr;
      }
      return Argv[++I];
    };
    const char *V = nullptr;
    if (A == "--model") {
      if (!(V = Next("--model")))
        return false;
      O.ModelPath = V;
    } else if (A == "--socket") {
      if (!(V = Next("--socket")))
        return false;
      O.SocketPath = V;
    } else if (A == "--stdio") {
      O.Stdio = true;
    } else if (A == "--threads") {
      if (!(V = Next("--threads")))
        return false;
      O.Threads = std::atoi(V);
    } else if (A == "--ef-search") {
      if (!(V = Next("--ef-search")))
        return false;
      O.EfSearch = std::atoi(V);
    } else if (A == "--min-confidence") {
      if (!(V = Next("--min-confidence")))
        return false;
      O.MinConfidence = std::atof(V);
    } else if (A == "--no-checker-gate") {
      O.NoCheckerGate = true;
    } else if (A == "--infer-locals") {
      O.InferLocals = true;
    } else if (A == "--no-simd") {
      O.NoSimd = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      return false;
    }
  }
  return true;
}

// SIGTERM/SIGINT: one self-pipe wakes a blocked frame read (the same
// idiom typilus_serve uses for its line reads).
int GWakePipe[2] = {-1, -1};
std::atomic<bool> GStop{false};

void onTermSignal(int) {
  bool Expected = false;
  if (GStop.compare_exchange_strong(Expected, true)) {
    char B = 1;
    (void)!write(GWakePipe[1], &B, 1);
  }
}

int runStdio(Predictor &P, const LspOptions &LO) {
  LspServer S(P,
              [](std::string Frame) { (void)writeAll(STDOUT_FILENO, Frame); },
              LO);
  return S.run(STDIN_FILENO, &GStop, GWakePipe[0]);
}

int runSocket(Predictor &P, const LspOptions &LO, const std::string &Path) {
  UnixListener L;
  std::string Err;
  if (!L.listenOn(Path, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::fprintf(stderr, "typilus_lsp: listening on %s\n", Path.c_str());
  // One editor session at a time: LSP clients own their server process,
  // and the τmap mutation state is per-session by design.
  int Rc = 1;
  while (!GStop.load()) {
    struct pollfd Pfd[2];
    Pfd[0].fd = L.fd();
    Pfd[0].events = POLLIN;
    Pfd[0].revents = 0;
    Pfd[1].fd = GWakePipe[0];
    Pfd[1].events = POLLIN;
    Pfd[1].revents = 0;
    if (::poll(Pfd, 2, -1) < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Pfd[1].revents != 0 || GStop.load())
      break;
    FileDesc Conn = L.acceptConn();
    if (!Conn.valid())
      continue;
    int Fd = Conn.fd();
    LspServer S(P,
                [Fd](std::string Frame) { (void)writeAll(Fd, Frame); }, LO);
    Rc = S.run(Fd, &GStop, GWakePipe[0]);
  }
  L.close();
  return Rc;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseOptions(Argc, Argv, O))
    return 2;
  if (O.NoSimd)
    nn::simd::setSimdEnabled(false);
  if (O.ModelPath.empty() || (O.Stdio == !O.SocketPath.empty()))
    return usage(Argv[0]);

  if (::pipe(GWakePipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onTermSignal;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);

  setGlobalNumThreads(O.Threads);

  std::string Err;
  std::unique_ptr<Predictor> P = Predictor::load(O.ModelPath, &Err);
  if (!P) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  KnnOptions KO = P->knnOptions();
  KO.NumThreads = O.Threads;
  if (O.EfSearch > 0)
    KO.EfSearch = O.EfSearch;
  P->setKnnOptions(KO);
  const ModelConfig &MC = P->model().config();
  // stdout is the protocol channel; human chatter goes to stderr.
  std::fprintf(stderr, "typilus_lsp: loaded %s (%s/%s, D=%d%s)\n",
               O.ModelPath.c_str(), encoderKindName(MC.Encoder),
               lossKindName(MC.Loss), MC.HiddenDim,
               P->isKnn() ? ", kNN" : ", classifier");

  LspOptions LO;
  LO.MinConfidence = O.MinConfidence;
  LO.CheckerGate = !O.NoCheckerGate;
  LO.InferLocals = O.InferLocals;

  return O.Stdio ? runStdio(*P, LO) : runSocket(*P, LO, O.SocketPath);
}
