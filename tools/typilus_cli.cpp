//===- tools/typilus_cli.cpp - Train-once / serve-many command line ------------===//
//
// The deployment workflow of Fig. 1 as a command line: `train` fits a
// model and writes a versioned artifact; `predict` loads that artifact in
// a fresh process — no training corpus, no retraining — and serves type
// predictions; `inspect` prints what an artifact contains; `save`
// rewrites an artifact (e.g. switching the kNN index between Annoy and
// exact). Both train and predict print a digest of the test-split
// predictions, so train-once/serve-many bit-identity is checkable from
// the shell:
//
//   typilus_cli train --files 40 --epochs 4 --out model.typilus
//   typilus_cli predict --model model.typilus
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "corpus/Ingest.h"
#include "corpus/ShardedDataset.h"
#include "nn/Simd.h"
#include "serve/Protocol.h"
#include "support/Archive.h"
#include "support/Json.h"
#include "support/Socket.h"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace typilus;

namespace {

//===----------------------------------------------------------------------===//
// Option parsing
//===----------------------------------------------------------------------===//

struct Options {
  std::string Out;        ///< --out: artifact to write.
  std::string ModelPath;  ///< --model: artifact to read.
  std::string Checkpoint; ///< --checkpoint: checkpoint file for train.
  bool Resume = false;    ///< --resume: continue from --checkpoint.
  int CheckpointEvery = 0; ///< --checkpoint-every: steps between saves.
  std::string ShardDir;   ///< --shards: shard-set directory to stream.
  std::string OutDir;     ///< shard: --out-dir to write the shard set.
  int ShardFiles = 32;    ///< shard: --shard-files per shard.
  std::string FromDir;    ///< shard: --from-dir, ingest a real .py tree.
  bool NoPrefetch = false; ///< --no-prefetch: disable shard read-ahead.
  std::vector<std::string> Sources; ///< --source: real .py files to predict.
  std::string Split = "test";       ///< --split for predict.
  std::string Socket;               ///< client: daemon socket path.
  std::string Tcp;                  ///< client: daemon HOST:PORT.
  int Repeat = 1;                   ///< client: concurrent sends per source.
  bool Ping = false;                ///< client: liveness probe only.
  bool Shutdown = false;            ///< client: ask the daemon to drain.
  bool Reload = false;              ///< client: hot-reload the artifact.
  int Files = 60;
  int Udts = 40;
  int Epochs = 8;
  int Hidden = 32;
  int Limit = 10;
  int Threads = 0;
  int K = 10;
  double P = 1.0;
  bool HaveK = false, HaveP = false;
  bool Exact = false, AnnoyFlag = false; ///< Aliases for --index.
  std::string IndexName;   ///< --index: exact | annoy | hnsw.
  int EfSearch = 0;        ///< --ef-search: HNSW query budget (0 = default).
  std::string TmapStore;       ///< --tmap-store: f32 | f16 | int8.
  long TmapMaxMarkers = 0;     ///< --tmap-max-markers: coreset cap (0 = off).
  bool NoSimd = false;         ///< --no-simd: pin the scalar kernel table.
  bool Verbose = false;
  std::string Encoder = "graph";
  std::string Loss = "typilus";
  uint64_t Seed = 20200613;
};

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> [options]\n"
      "\n"
      "commands:\n"
      "  train    train on the synthetic corpus and write an artifact\n"
      "           --out PATH [--files N] [--udts N] [--epochs N]\n"
      "           [--hidden D] [--encoder graph|seq|path|names]\n"
      "           [--loss typilus|space|class] [--index exact|annoy|hnsw]\n"
      "           [--ef-search N] [--k N] [--p F]\n"
      "           [--threads N] [--seed S] [--checkpoint PATH] [--resume]\n"
      "           [--checkpoint-every STEPS] [--shards DIR] [--verbose]\n"
      "           [--tmap-store f32|f16|int8] [--tmap-max-markers N]\n"
      "           [--no-prefetch]\n"
      "           (--shards streams a `typilus shard` set instead of\n"
      "           regenerating the corpus; RAM is bounded by shard\n"
      "           residency and digests match the in-memory path;\n"
      "           shards decode ahead of demand unless --no-prefetch —\n"
      "           digests are identical either way;\n"
      "           --tmap-store quantizes the τmap markers and\n"
      "           --tmap-max-markers caps them by coreset subsampling)\n"
      "  shard    preprocess a corpus into a shard set\n"
      "           --out-dir DIR [--files N] [--udts N] [--seed S]\n"
      "           [--shard-files N] [--threads N] [--from-dir TREE]\n"
      "           (--from-dir ingests a real .py tree instead of the\n"
      "           synthetic corpus: files the parser rejects are skipped\n"
      "           and reported with file:line context, never fatal;\n"
      "           --threads builds shard chunks in parallel with bytes\n"
      "           identical to the serial build)\n"
      "  predict  load an artifact and predict, no training data needed\n"
      "           --model PATH [--split train|valid|test] [--limit N]\n"
      "           [--source FILE.py]... [--shards DIR] [--threads N]\n"
      "           [--no-prefetch] [--ef-search N]\n"
      "  inspect  print an artifact's chunks, config and vocabularies\n"
      "           --model PATH\n"
      "  save     rewrite an artifact, optionally changing kNN options\n"
      "           --model PATH --out PATH [--index exact|annoy|hnsw]\n"
      "           [--ef-search N] [--k N] [--p F]\n"
      "           [--tmap-store f16|int8]  (quantize an f32 τmap in place)\n"
      "  client   talk to a running typilus_serve daemon\n"
      "           (--socket PATH | --tcp HOST:PORT)\n"
      "           (--source FILE.py... [--repeat N] [--limit N]\n"
      "           | --ping | --reload | --shutdown)\n"
      "\n"
      "global options:\n"
      "  --no-simd  pin the scalar reference kernels (bit-reproducible\n"
      "             across hosts; the default SIMD path is deterministic\n"
      "             per host but may differ from scalar in the last ulps)\n",
      Argv0);
  return 2;
}

bool parseOptions(int Argc, char **Argv, Options &O) {
  for (int I = 2; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&](const char *What) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s expects a value\n", What);
        return nullptr;
      }
      return Argv[++I];
    };
    const char *V = nullptr;
    if (A == "--out") {
      if (!(V = Next("--out"))) return false;
      O.Out = V;
    } else if (A == "--model") {
      if (!(V = Next("--model"))) return false;
      O.ModelPath = V;
    } else if (A == "--checkpoint") {
      if (!(V = Next("--checkpoint"))) return false;
      O.Checkpoint = V;
    } else if (A == "--resume") {
      O.Resume = true;
    } else if (A == "--checkpoint-every") {
      if (!(V = Next("--checkpoint-every"))) return false;
      O.CheckpointEvery = std::atoi(V);
    } else if (A == "--shards") {
      if (!(V = Next("--shards"))) return false;
      O.ShardDir = V;
    } else if (A == "--out-dir") {
      if (!(V = Next("--out-dir"))) return false;
      O.OutDir = V;
    } else if (A == "--shard-files") {
      if (!(V = Next("--shard-files"))) return false;
      O.ShardFiles = std::atoi(V);
    } else if (A == "--from-dir") {
      if (!(V = Next("--from-dir"))) return false;
      O.FromDir = V;
    } else if (A == "--no-prefetch") {
      O.NoPrefetch = true;
    } else if (A == "--source") {
      if (!(V = Next("--source"))) return false;
      O.Sources.push_back(V);
    } else if (A == "--split") {
      if (!(V = Next("--split"))) return false;
      O.Split = V;
    } else if (A == "--files") {
      if (!(V = Next("--files"))) return false;
      O.Files = std::atoi(V);
    } else if (A == "--udts") {
      if (!(V = Next("--udts"))) return false;
      O.Udts = std::atoi(V);
    } else if (A == "--epochs") {
      if (!(V = Next("--epochs"))) return false;
      O.Epochs = std::atoi(V);
    } else if (A == "--hidden") {
      if (!(V = Next("--hidden"))) return false;
      O.Hidden = std::atoi(V);
    } else if (A == "--limit") {
      if (!(V = Next("--limit"))) return false;
      O.Limit = std::atoi(V);
    } else if (A == "--threads") {
      if (!(V = Next("--threads"))) return false;
      O.Threads = std::atoi(V);
    } else if (A == "--k") {
      if (!(V = Next("--k"))) return false;
      O.K = std::atoi(V);
      O.HaveK = true;
    } else if (A == "--p") {
      if (!(V = Next("--p"))) return false;
      O.P = std::atof(V);
      O.HaveP = true;
    } else if (A == "--seed") {
      if (!(V = Next("--seed"))) return false;
      O.Seed = std::strtoull(V, nullptr, 10);
    } else if (A == "--encoder") {
      if (!(V = Next("--encoder"))) return false;
      O.Encoder = V;
    } else if (A == "--loss") {
      if (!(V = Next("--loss"))) return false;
      O.Loss = V;
    } else if (A == "--socket") {
      if (!(V = Next("--socket"))) return false;
      O.Socket = V;
    } else if (A == "--tcp") {
      if (!(V = Next("--tcp"))) return false;
      O.Tcp = V;
    } else if (A == "--repeat") {
      if (!(V = Next("--repeat"))) return false;
      O.Repeat = std::atoi(V);
    } else if (A == "--ping") {
      O.Ping = true;
    } else if (A == "--shutdown") {
      O.Shutdown = true;
    } else if (A == "--reload") {
      O.Reload = true;
    } else if (A == "--exact") {
      O.Exact = true;
    } else if (A == "--annoy") {
      O.AnnoyFlag = true;
    } else if (A == "--index") {
      if (!(V = Next("--index"))) return false;
      O.IndexName = V;
    } else if (A == "--ef-search") {
      if (!(V = Next("--ef-search"))) return false;
      O.EfSearch = std::atoi(V);
    } else if (A == "--tmap-store") {
      if (!(V = Next("--tmap-store"))) return false;
      O.TmapStore = V;
    } else if (A == "--tmap-max-markers") {
      if (!(V = Next("--tmap-max-markers"))) return false;
      O.TmapMaxMarkers = std::atol(V);
    } else if (A == "--no-simd") {
      O.NoSimd = true;
    } else if (A == "--verbose") {
      O.Verbose = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      return false;
    }
  }
  return true;
}

int fail(const std::string &Err) {
  std::fprintf(stderr, "error: %s\n", Err.c_str());
  return 1;
}

/// Resolves the index spelling into one KnnIndexKind. `--index NAME` is
/// the canonical form; `--exact` / `--annoy` predate it and stay as
/// aliases. \returns false on conflicting or unknown spellings.
bool resolveIndexKind(const Options &O, KnnIndexKind Default,
                      KnnIndexKind *Out, std::string *Err) {
  if ((!O.IndexName.empty() && (O.Exact || O.AnnoyFlag)) ||
      (O.Exact && O.AnnoyFlag)) {
    *Err = "--index, --exact and --annoy are mutually exclusive";
    return false;
  }
  if (!O.IndexName.empty()) {
    if (!parseKnnIndexKind(O.IndexName, Out)) {
      *Err = "--index expects exact, annoy or hnsw; got '" + O.IndexName + "'";
      return false;
    }
    return true;
  }
  *Out = O.Exact ? KnnIndexKind::Exact
                 : O.AnnoyFlag ? KnnIndexKind::Annoy : Default;
  return true;
}

//===----------------------------------------------------------------------===//
// The corpus recipe chunk ("corp"): enough of the generation and split
// configuration for `predict` to rebuild the exact dataset the model was
// trained on, so accuracy is reportable without shipping the corpus.
//===----------------------------------------------------------------------===//

void writeCorpusRecipe(ArchiveWriter &W, const CorpusConfig &CC,
                       const DatasetConfig &DC) {
  W.beginChunk("corp");
  W.writeI32(CC.NumFiles);
  W.writeI32(CC.NumUdts);
  W.writeF64(CC.ZipfSkew);
  W.writeF64(CC.NameNoise);
  W.writeI32(CC.MinFuncsPerFile);
  W.writeI32(CC.MaxFuncsPerFile);
  W.writeF64(CC.DuplicateFraction);
  W.writeU64(CC.Seed);
  W.writeF64(DC.TrainFrac);
  W.writeF64(DC.ValidFrac);
  W.writeU8(DC.RunDedup ? 1 : 0);
  W.writeF64(DC.DedupThreshold);
  W.writeU64(DC.SplitSeed);
  W.writeI32(DC.CommonThreshold);
  W.endChunk();
}

bool readCorpusRecipe(const ArchiveReader &R, CorpusConfig &CC,
                      DatasetConfig &DC, std::string *Err) {
  ArchiveCursor C = R.chunk("corp", Err);
  CC.NumFiles = C.readI32();
  CC.NumUdts = C.readI32();
  CC.ZipfSkew = C.readF64();
  CC.NameNoise = C.readF64();
  CC.MinFuncsPerFile = C.readI32();
  CC.MaxFuncsPerFile = C.readI32();
  CC.DuplicateFraction = C.readF64();
  CC.Seed = C.readU64();
  DC.TrainFrac = C.readF64();
  DC.ValidFrac = C.readF64();
  DC.RunDedup = C.readU8() != 0;
  DC.DedupThreshold = C.readF64();
  DC.SplitSeed = C.readU64();
  DC.CommonThreshold = C.readI32();
  if (!C.atEnd()) {
    if (Err && Err->empty())
      *Err = "malformed corpus recipe chunk";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Prediction digest + printing
//===----------------------------------------------------------------------===//

/// The FNV-1a prediction digest (core/Predictor.h) — shared with the
/// serving daemon, whose responses carry the same value for the same
/// file, making serving paths digest-comparable from the shell.
uint64_t digest(const std::vector<PredictionResult> &Preds) {
  return predictionDigest(Preds);
}

void printPredictions(const std::vector<PredictionResult> &Preds, int Limit) {
  int Shown = 0;
  for (const PredictionResult &P : Preds) {
    if (Limit >= 0 && Shown++ == Limit) {
      std::printf("  ... (%zu more)\n", Preds.size() - static_cast<size_t>(Limit));
      break;
    }
    std::printf("  %-18s %-20s %-10s -> %-20s (p=%.3f)%s%s\n",
                P.FilePath.c_str(), P.SymbolName.c_str(),
                symbolKindName(P.Kind),
                P.top() ? P.top()->str().c_str() : "?", P.confidence(),
                P.Truth ? "  truth " : "",
                P.Truth ? P.Truth->str().c_str() : "");
  }
}

void printSummary(const std::vector<PredictionResult> &Preds,
                  TypeUniverse &U) {
  size_t Exact = 0, Up = 0, Total = 0;
  for (const PredictionResult &P : Preds) {
    if (!P.Truth)
      continue;
    ++Total;
    TypeRef Top = P.top();
    Exact += Top == P.Truth;
    Up += Top && U.erase(Top) == U.erase(P.Truth);
  }
  if (Total > 0)
    std::printf("%zu predictions: %.1f%% exact, %.1f%% up-to-parametric\n",
                Total, 100.0 * static_cast<double>(Exact) / Total,
                100.0 * static_cast<double>(Up) / Total);
}

const std::vector<FileExample> *splitOf(const Dataset &DS,
                                        const std::string &Name) {
  if (Name == "train")
    return &DS.Train;
  if (Name == "valid")
    return &DS.Valid;
  if (Name == "test")
    return &DS.Test;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// train
//===----------------------------------------------------------------------===//

int cmdTrain(const Options &O) {
  if (O.Out.empty() && O.Checkpoint.empty())
    return fail("train needs --out PATH (or at least --checkpoint PATH)");

  ModelConfig MC;
  if (O.Encoder == "graph")
    MC.Encoder = EncoderKind::Graph;
  else if (O.Encoder == "seq")
    MC.Encoder = EncoderKind::Seq;
  else if (O.Encoder == "path")
    MC.Encoder = EncoderKind::Path;
  else if (O.Encoder == "names")
    MC.Encoder = EncoderKind::NamesOnly;
  else
    return fail("unknown encoder '" + O.Encoder + "'");
  if (O.Loss == "typilus")
    MC.Loss = LossKind::Typilus;
  else if (O.Loss == "space")
    MC.Loss = LossKind::Space;
  else if (O.Loss == "class")
    MC.Loss = LossKind::Class;
  else
    return fail("unknown loss '" + O.Loss + "'");
  MC.HiddenDim = O.Hidden;

  // The data substrate: the in-memory workbench, or — with --shards — a
  // streamed shard set whose decoded residency is bounded by the LRU,
  // not the corpus. Both run through the same ExampleSource consumers,
  // so the printed digests are bit-identical between the two (CI holds
  // them equal).
  CorpusConfig CC;
  CC.NumFiles = O.Files;
  CC.NumUdts = O.Udts;
  CC.Seed = O.Seed;
  DatasetConfig DC;
  bool HaveRecipe = false;

  Workbench WB;
  TypeUniverse ShardU;
  std::unique_ptr<ShardedDataset> SD;
  std::unique_ptr<VectorExampleSource> VTrain, VValid, VTest;
  std::unique_ptr<ConcatExampleSource> VMap;
  ExampleSource *TrainSrc, *MapSrc, *TestSrc;
  TypeUniverse *U;
  std::string Err;
  if (O.ShardDir.empty()) {
    std::printf("generating %d synthetic files...\n", CC.NumFiles);
    WB = Workbench::make(CC, DC);
    std::printf(
        "dataset: %zu train / %zu valid / %zu test files, %zu targets\n",
        WB.DS.Train.size(), WB.DS.Valid.size(), WB.DS.Test.size(),
        WB.DS.numTargets());
    VTrain = std::make_unique<VectorExampleSource>(WB.DS.Train);
    VValid = std::make_unique<VectorExampleSource>(WB.DS.Valid);
    VTest = std::make_unique<VectorExampleSource>(WB.DS.Test);
    VMap = std::make_unique<ConcatExampleSource>(
        std::vector<ExampleSource *>{VTrain.get(), VValid.get()});
    TrainSrc = VTrain.get();
    MapSrc = VMap.get();
    TestSrc = VTest.get();
    U = WB.U.get();
    HaveRecipe = true;
  } else {
    ShardedDatasetOptions SDO;
    SDO.Prefetch = !O.NoPrefetch;
    SD = ShardedDataset::open(O.ShardDir, ShardU, SDO, &Err);
    if (!SD)
      return fail(Err);
    std::printf("shard set %s: %zu train / %zu valid / %zu test files, "
                "%zu targets\n",
                O.ShardDir.c_str(), SD->numFiles(SplitKind::Train),
                SD->numFiles(SplitKind::Valid), SD->numFiles(SplitKind::Test),
                SD->numTargets(SplitKind::Train) +
                    SD->numTargets(SplitKind::Valid) +
                    SD->numTargets(SplitKind::Test));
    TrainSrc = &SD->split(SplitKind::Train);
    MapSrc = &SD->trainValid();
    TestSrc = &SD->split(SplitKind::Test);
    U = &ShardU;
    // `typilus shard` stores the corpus recipe in the manifest, so the
    // trained artifact keeps it and `predict` works recipe-driven.
    ArchiveReader MR;
    if (MR.openFile(O.ShardDir + "/" + kShardManifestName, &Err,
                    kShardMagic) &&
        MR.hasChunk("corp"))
      HaveRecipe = readCorpusRecipe(MR, CC, DC, &Err);
    if (!HaveRecipe)
      std::fprintf(stderr, "warning: shard manifest has no corpus recipe; "
                           "the artifact will need --source or --shards "
                           "to predict\n");
  }

  TrainOptions TO;
  TO.Epochs = O.Epochs;
  TO.NumThreads = O.Threads;
  TO.Verbose = O.Verbose;
  TO.CheckpointPath = O.Checkpoint;
  TO.CheckpointEverySteps = O.CheckpointEvery;

  std::unique_ptr<TypeModel> Model = makeModel(MC, *TrainSrc, *U);
  Trainer T(*Model, TO);
  if (O.Resume) {
    if (O.Checkpoint.empty())
      return fail("--resume needs --checkpoint PATH");
    if (!T.resumeFrom(O.Checkpoint, &Err))
      return fail(Err);
    std::printf("resumed from %s at epoch %d/%d\n", O.Checkpoint.c_str(),
                T.epochsDone(), TO.Epochs);
  }
  std::printf("training %s/%s for %d epochs...\n", encoderKindName(MC.Encoder),
              lossKindName(MC.Loss), TO.Epochs - T.epochsDone());
  double Loss = T.run(*TrainSrc);
  if (std::isnan(Loss))
    return fail("checkpoint does not match this corpus/split "
                "(regenerate with the original --files/--seed)");
  std::printf("final mean loss: %.4f\n", Loss);

  // Build the serving predictor: τmap over train+valid for Space/Typilus
  // models, plain classifier otherwise.
  KnnOptions KO;
  if (O.HaveK)
    KO.K = O.K;
  if (O.HaveP)
    KO.P = O.P;
  if (!resolveIndexKind(O, KnnIndexKind::Annoy, &KO.Index, &Err))
    return fail(Err);
  if (O.EfSearch > 0)
    KO.EfSearch = O.EfSearch;
  KO.NumThreads = O.Threads;
  if (!O.TmapStore.empty() && !parseMarkerStore(O.TmapStore, &KO.Store))
    return fail("--tmap-store expects f32, f16 or int8; got '" + O.TmapStore +
                "'");
  if (O.TmapMaxMarkers < 0)
    return fail("--tmap-max-markers expects a non-negative count");
  KO.MaxMarkers = static_cast<size_t>(O.TmapMaxMarkers);
  Predictor P = MC.Loss == LossKind::Class
                    ? Predictor::classifier(*Model)
                    : Predictor::knn(*Model, *MapSrc, KO);
  if (P.isKnn())
    std::printf("τmap: %zu markers (%s store, %s index, %zu duplicates "
                "dropped)\n",
                P.typeMap().size(), markerStoreName(P.typeMap().store()),
                knnIndexName(KO.Index), P.typeMap().droppedDuplicates());

  if (!O.Out.empty()) {
    ArchiveWriter W(P.artifactVersion());
    P.writeArtifact(W, *U);
    if (HaveRecipe)
      writeCorpusRecipe(W, CC, DC);
    if (!W.writeFile(O.Out, &Err))
      return fail(Err);
    std::printf("artifact written: %s (%zu bytes)\n", O.Out.c_str(),
                W.bytes().size());
  }

  // The same-process predictions `predict` must reproduce bit-for-bit.
  auto Preds = P.predictAll(*TestSrc);
  printSummary(Preds, *U);
  if (SD)
    std::printf("prefetch: %s, %zu hits / %zu misses, wait %" PRIu64
                " us, decode stall %" PRIu64 " us (%zu shard decodes)\n",
                SD->prefetchEnabled() ? "on" : "off", SD->prefetchHits(),
                SD->prefetchMisses(), SD->prefetchWaitMicros(),
                SD->decodeStallMicros(), SD->decodeCount());
  std::printf("test-split digest: %016" PRIx64 "\n", digest(Preds));
  return 0;
}

//===----------------------------------------------------------------------===//
// shard
//===----------------------------------------------------------------------===//

/// Upfront `shard` argument validation: fail with a specific message
/// before any corpus work instead of mid-build. Creates \p Dir if
/// missing and proves it is writable with a probe file.
bool validateShardArgs(const Options &O, std::string *Err) {
  if (O.ShardFiles < 1) {
    *Err = "--shard-files expects a positive file count; got " +
           std::to_string(O.ShardFiles);
    return false;
  }
  if (::mkdir(O.OutDir.c_str(), 0777) != 0 && errno != EEXIST) {
    *Err = "cannot create --out-dir '" + O.OutDir + "'";
    return false;
  }
  std::string Probe = O.OutDir + "/.typilus-writable";
  std::FILE *F = std::fopen(Probe.c_str(), "wb");
  if (!F) {
    *Err = "--out-dir '" + O.OutDir + "' is not writable";
    return false;
  }
  std::fclose(F);
  ::remove(Probe.c_str());
  return true;
}

int cmdShard(const Options &O) {
  if (O.OutDir.empty())
    return fail("shard needs --out-dir DIR");
  std::string Err;
  if (!validateShardArgs(O, &Err))
    return fail(Err);

  CorpusConfig CC;
  CC.NumFiles = O.Files;
  CC.NumUdts = O.Udts;
  CC.Seed = O.Seed;
  DatasetConfig DC;

  std::vector<CorpusFile> Files;
  std::vector<UdtSpec> Udts;
  bool HaveRecipe = O.FromDir.empty();
  if (HaveRecipe) {
    std::printf("generating %d synthetic files...\n", CC.NumFiles);
    CorpusGenerator Gen(CC);
    Files = Gen.generate();
    Udts = Gen.udts();
  } else {
    // Real-tree ingestion: walk --from-dir for .py files, keeping what
    // the parser accepts. Rejects are reported, never fatal — a crawl
    // always contains Python beyond the supported subset.
    IngestReport Rep;
    if (!collectPyTree(O.FromDir, Files, Rep, &Err))
      return fail(Err);
    for (const IngestReject &Rej : Rep.Rejects)
      std::fprintf(stderr, "skipped: %s\n", Rej.Reason.c_str());
    std::printf("ingested %s: %zu .py files seen, %zu accepted, %zu "
                "parser-rejected, %zu unreadable\n",
                O.FromDir.c_str(), Rep.FilesSeen, Rep.FilesAccepted,
                Rep.Rejects.size(), Rep.FilesUnreadable);
    if (Files.empty())
      return fail("no ingestible .py files under '" + O.FromDir + "'");
  }

  TypeUniverse U;
  ShardBuildOptions SO;
  SO.Dir = O.OutDir;
  SO.FilesPerShard = O.ShardFiles;
  SO.NumThreads = O.Threads;
  // An ingested tree has no generation recipe; `train` then warns that
  // the artifact will need --source or --shards to predict.
  if (HaveRecipe)
    SO.ManifestExtra = [&](ArchiveWriter &W) { writeCorpusRecipe(W, CC, DC); };
  ShardBuildStats Stats;
  if (!buildShards(Files, Udts, U, /*Hierarchy=*/nullptr, DC, SO, &Err,
                   &Stats))
    return fail(Err);
  std::printf("dedup: %zu near-duplicate files dropped (%zu of %zu kept)\n",
              Stats.DedupDropped, Stats.FilesSharded, Stats.FilesIn);

  // Reopen through the reader: validates what was just written and gives
  // the user the manifest view of it.
  TypeUniverse CheckU;
  std::unique_ptr<ShardedDataset> SD =
      ShardedDataset::open(O.OutDir, CheckU, &Err);
  if (!SD)
    return fail("shard set written but does not read back: " + Err);
  std::printf("shard set written: %s (%zu shards, %d files/shard; %zu train "
              "/ %zu valid / %zu test files, %zu targets)\n",
              O.OutDir.c_str(), Stats.ShardsWritten, SO.FilesPerShard,
              SD->numFiles(SplitKind::Train), SD->numFiles(SplitKind::Valid),
              SD->numFiles(SplitKind::Test),
              SD->numTargets(SplitKind::Train) +
                  SD->numTargets(SplitKind::Valid) +
                  SD->numTargets(SplitKind::Test));
  return 0;
}

//===----------------------------------------------------------------------===//
// predict
//===----------------------------------------------------------------------===//

int cmdPredict(const Options &O) {
  if (O.ModelPath.empty())
    return fail("predict needs --model PATH");
  ArchiveReader R;
  std::string Err;
  if (!R.openFile(O.ModelPath, &Err))
    return fail(Err);
  std::unique_ptr<Predictor> P = Predictor::load(R, &Err);
  if (!P)
    return fail(Err);
  KnnOptions KO = P->knnOptions();
  KO.NumThreads = O.Threads;
  if (O.EfSearch > 0)
    KO.EfSearch = O.EfSearch; // query-time budget only; no index rebuild
  P->setKnnOptions(KO);
  TypeUniverse &U = *P->universe();
  const ModelConfig &MC = P->model().config();
  std::printf("loaded %s (%s/%s, D=%d%s)\n", O.ModelPath.c_str(),
              encoderKindName(MC.Encoder), lossKindName(MC.Loss), MC.HiddenDim,
              P->isKnn() ? ", kNN" : ", classifier");

  // Real source files given: serve them directly.
  if (!O.Sources.empty()) {
    for (const std::string &Src : O.Sources) {
      std::ifstream In(Src);
      if (!In)
        return fail("cannot read '" + Src + "'");
      std::ostringstream SS;
      SS << In.rdbuf();
      FileExample Ex =
          buildExample(CorpusFile{Src, SS.str()}, U, GraphBuildOptions{});
      auto Preds = P->predictFile(Ex);
      std::printf("%s: %zu annotatable symbols\n", Src.c_str(), Preds.size());
      printPredictions(Preds, O.Limit);
      // The per-file digest a typilus_serve response for this source must
      // match bit for bit (CI's daemon smoke compares the two).
      std::printf("%s digest: %016" PRIx64 "\n", Src.c_str(), digest(Preds));
    }
    return 0;
  }

  // A shard set given: stream the requested split through the artifact —
  // no corpus regeneration, residency bounded by the shard LRU. Types
  // intern into the artifact's universe, so truth and prediction
  // TypeRefs match and the digest equals the in-memory path's.
  if (!O.ShardDir.empty()) {
    ShardedDatasetOptions SDO;
    SDO.Prefetch = !O.NoPrefetch;
    std::unique_ptr<ShardedDataset> SD =
        ShardedDataset::open(O.ShardDir, U, SDO, &Err);
    if (!SD)
      return fail(Err);
    SplitKind SK;
    if (O.Split == "train")
      SK = SplitKind::Train;
    else if (O.Split == "valid")
      SK = SplitKind::Valid;
    else if (O.Split == "test")
      SK = SplitKind::Test;
    else
      return fail("unknown split '" + O.Split + "'");
    auto Preds = P->predictAll(SD->split(SK));
    std::printf("%s split: %zu files (streamed from %s)\n", O.Split.c_str(),
                SD->numFiles(SK), O.ShardDir.c_str());
    printPredictions(Preds, O.Limit);
    printSummary(Preds, U);
    if (O.Split == "test")
      std::printf("test-split digest: %016" PRIx64 "\n", digest(Preds));
    return 0;
  }

  // Otherwise rebuild the recipe split and report accuracy + digest.
  CorpusConfig CC;
  DatasetConfig DC;
  if (!readCorpusRecipe(R, CC, DC, &Err))
    return fail(Err + (R.hasChunk("corp")
                           ? ""
                           : " (artifact has no corpus recipe; use --source)"));
  CorpusGenerator Gen(CC);
  std::vector<CorpusFile> Files = Gen.generate();
  // Resolve the dataset's types inside the artifact's universe so truth
  // and prediction TypeRefs are the same interned pointers.
  Dataset DS = buildDataset(Files, Gen.udts(), U, /*Hierarchy=*/nullptr, DC);
  const std::vector<FileExample> *Split = splitOf(DS, O.Split);
  if (!Split)
    return fail("unknown split '" + O.Split + "'");
  auto Preds = P->predictAll(*Split);
  std::printf("%s split: %zu files\n", O.Split.c_str(), Split->size());
  printPredictions(Preds, O.Limit);
  printSummary(Preds, U);
  if (O.Split == "test")
    std::printf("test-split digest: %016" PRIx64 "\n", digest(Preds));
  return 0;
}

//===----------------------------------------------------------------------===//
// inspect
//===----------------------------------------------------------------------===//

int cmdInspect(const Options &O) {
  if (O.ModelPath.empty())
    return fail("inspect needs --model PATH");
  ArchiveReader R;
  std::string Err;
  if (!R.openFile(O.ModelPath, &Err))
    return fail(Err);
  std::printf("%s: format version %u, %zu chunks\n", O.ModelPath.c_str(),
              R.formatVersion(), R.chunks().size());
  for (const ArchiveReader::ChunkInfo &C : R.chunks())
    std::printf("  %-6s %10zu bytes  (crc ok)\n", C.Tag.c_str(), C.Size);

  std::unique_ptr<Predictor> P = Predictor::load(R, &Err);
  if (!P)
    return fail(Err);
  const ModelConfig &MC = P->model().config();
  std::printf("model: encoder=%s loss=%s hidden=%d timesteps=%d seed=%" PRIu64
              "\n",
              encoderKindName(MC.Encoder), lossKindName(MC.Loss), MC.HiddenDim,
              MC.TimeSteps, MC.Seed);
  std::printf("vocabularies: %zu labels, %zu full types, %zu erased types, "
              "%zu interned types, %zu parameters\n",
              P->model().labelVocab().size(), P->model().typeVocabs().Full.size(),
              P->model().typeVocabs().Erased.size(), P->universe()->size(),
              P->model().params().numParams());
  if (P->isKnn()) {
    std::printf("τmap: %zu markers (%s store, %zu bytes), k=%d, p=%.2f, "
                "%s index\n",
                P->typeMap().size(), markerStoreName(P->typeMap().store()),
                P->typeMap().storageBytes(), P->knnOptions().K,
                P->knnOptions().P, knnIndexName(P->knnOptions().Index));
    if (const HnswIndex *H = P->hnswIndex())
      std::printf("hnsw graph: %zu nodes, M=%d, efConstruction=%d, "
                  "efSearch=%s\n",
                  H->indexedMarkers(), H->m(), H->efConstruction(),
                  P->knnOptions().EfSearch > 0
                      ? std::to_string(P->knnOptions().EfSearch).c_str()
                      : "default");
  } else {
    std::printf("classifier over the closed type vocabulary\n");
  }
  if (R.hasChunk("corp")) {
    CorpusConfig CC;
    DatasetConfig DC;
    if (readCorpusRecipe(R, CC, DC, &Err))
      std::printf("corpus recipe: %d files, %d UDTs, seed %" PRIu64 "\n",
                  CC.NumFiles, CC.NumUdts, CC.Seed);
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// save (rewrite / re-index)
//===----------------------------------------------------------------------===//

int cmdSave(const Options &O) {
  if (O.ModelPath.empty() || O.Out.empty())
    return fail("save needs --model PATH and --out PATH");
  ArchiveReader R;
  std::string Err;
  if (!R.openFile(O.ModelPath, &Err))
    return fail(Err);
  std::unique_ptr<Predictor> P = Predictor::load(R, &Err);
  if (!P)
    return fail(Err);

  KnnOptions KO = P->knnOptions();
  if (O.HaveK)
    KO.K = O.K;
  if (O.HaveP)
    KO.P = O.P;
  if (!resolveIndexKind(O, KO.Index, &KO.Index, &Err))
    return fail(Err);
  if (O.EfSearch > 0)
    KO.EfSearch = O.EfSearch;
  P->setKnnOptions(KO); // rebuilds the index when the kind flips
  if (!O.TmapStore.empty()) {
    MarkerStore S;
    if (!parseMarkerStore(O.TmapStore, &S))
      return fail("--tmap-store expects f32, f16 or int8; got '" +
                  O.TmapStore + "'");
    if (!P->setMarkerStore(S, &Err))
      return fail(Err);
  }

  ArchiveWriter W(P->artifactVersion());
  P->writeArtifact(W, *P->universe());
  if (R.hasChunk("corp")) {
    CorpusConfig CC;
    DatasetConfig DC;
    if (!readCorpusRecipe(R, CC, DC, &Err))
      return fail(Err);
    writeCorpusRecipe(W, CC, DC);
  }
  if (!W.writeFile(O.Out, &Err))
    return fail(Err);
  std::string IndexNote =
      P->isKnn() ? std::string(", ") + knnIndexName(KO.Index) + " index" : "";
  std::printf("rewritten: %s -> %s (%zu bytes%s)\n", O.ModelPath.c_str(),
              O.Out.c_str(), W.bytes().size(), IndexNote.c_str());
  return 0;
}

//===----------------------------------------------------------------------===//
// client (talk to a typilus_serve daemon)
//===----------------------------------------------------------------------===//

/// Splits "--tcp HOST:PORT" at the last ':' (plain IPv4 / hostnames).
bool parseHostPort(const std::string &Spec, std::string &Host, uint16_t &Port,
                   std::string *Err) {
  size_t Colon = Spec.rfind(':');
  long P = Colon == std::string::npos
               ? -1
               : std::atol(Spec.c_str() + Colon + 1);
  if (Colon == 0 || P < 1 || P > 65535) {
    if (Err)
      *Err = "--tcp expects HOST:PORT, got '" + Spec + "'";
    return false;
  }
  Host = Spec.substr(0, Colon);
  Port = static_cast<uint16_t>(P);
  return true;
}

/// Sends one request line over its own connection (Unix socket or TCP,
/// whichever the options name) and reads one response.
bool roundTrip(const Options &O, const std::string &RequestLine,
               std::string &ResponseLine, std::string *Err) {
  FileDesc Fd;
  if (!O.Tcp.empty()) {
    std::string Host;
    uint16_t Port = 0;
    if (!parseHostPort(O.Tcp, Host, Port, Err) ||
        !connectTcp(Host, Port, Fd, Err))
      return false;
  } else if (!connectUnix(O.Socket, Fd, Err)) {
    return false;
  }
  if (!writeAll(Fd.fd(), RequestLine)) {
    if (Err)
      *Err = "write failed (daemon gone?)";
    return false;
  }
  // Responses dwarf requests (up to 10 candidates per symbol), so the
  // client-side line cap is far above the daemon's request cap.
  LineReader R(Fd.fd(), /*MaxLineBytes=*/256u << 20);
  LineReader::Status St;
  do
    St = R.next(ResponseLine);
  while (St == LineReader::Status::Interrupted);
  if (St != LineReader::Status::Line) {
    if (Err)
      *Err = "no response (daemon gone?)";
    return false;
  }
  return true;
}

int cmdClient(const Options &O) {
  if (O.Socket.empty() == O.Tcp.empty())
    return fail("client needs exactly one of --socket PATH / --tcp HOST:PORT");

  if (O.Ping || O.Shutdown || O.Reload) {
    const char *Method = O.Ping ? "ping" : O.Reload ? "reload" : "shutdown";
    std::string Resp, Err;
    if (!roundTrip(O, std::string("{\"id\":0,\"method\":\"") + Method + "\"}\n",
                   Resp, &Err))
      return fail(Err);
    json::Value V;
    if (!json::parse(Resp, V, &Err))
      return fail("malformed response: " + Err);
    if (!V.getBool("ok", false))
      return fail("daemon error: " + V.getString("error", "unknown"));
    std::printf("%s ok%s\n", Method,
                O.Ping ? (" (protocol " +
                          std::to_string(V.getInt("protocol", 0)) + ")")
                             .c_str()
                       : "");
    return 0;
  }

  if (O.Sources.empty())
    return fail(
        "client needs --source FILE.py (or --ping / --reload / --shutdown)");
  int Repeat = O.Repeat < 1 ? 1 : O.Repeat;

  // One job per (source × repeat), each over its own connection, all in
  // flight at once — the concurrent load the daemon's request queue
  // coalesces into batches.
  struct Job {
    std::string Path;
    std::string Request;
    std::string Response;
    std::string Error;
    bool Ok = false;
  };
  std::vector<Job> Jobs;
  for (const std::string &Src : O.Sources) {
    std::ifstream In(Src);
    if (!In)
      return fail("cannot read '" + Src + "'");
    std::ostringstream SS;
    SS << In.rdbuf();
    std::string Req = "{\"id\":" + std::to_string(Jobs.size()) +
                      ",\"method\":\"predict\",\"path\":" + json::quoted(Src) +
                      ",\"limit\":" + std::to_string(O.Limit) +
                      ",\"source\":" + json::quoted(SS.str()) + "}\n";
    for (int R = 0; R != Repeat; ++R)
      Jobs.push_back(Job{Src, Req, "", "", false});
  }

  std::vector<std::thread> Threads;
  Threads.reserve(Jobs.size());
  for (Job &J : Jobs)
    Threads.emplace_back([&J, &O] {
      J.Ok = roundTrip(O, J.Request, J.Response, &J.Error);
    });
  for (std::thread &T : Threads)
    T.join();

  int Failures = 0;
  for (Job &J : Jobs) {
    json::Value V;
    std::string Err;
    if (!J.Ok || !json::parse(J.Response, V, &Err)) {
      std::fprintf(stderr, "error: %s: %s\n", J.Path.c_str(),
                   J.Ok ? ("malformed response: " + Err).c_str()
                        : J.Error.c_str());
      ++Failures;
      continue;
    }
    if (!V.getBool("ok", false)) {
      std::fprintf(stderr, "error: %s: %s\n", J.Path.c_str(),
                   V.getString("error", "unknown").c_str());
      ++Failures;
      continue;
    }
    const json::Value *Preds = V.find("predictions");
    size_t N = Preds && Preds->isArray() ? Preds->array().size() : 0;
    // Same "<path> digest: <hex>" shape `predict --source` prints, so the
    // two serving paths diff cleanly.
    std::printf("%s digest: %s (%zu symbols)\n", J.Path.c_str(),
                V.getString("digest", "?").c_str(), N);
    if (O.Verbose && Preds)
      for (const json::Value &P : Preds->array()) {
        const json::Value *Cands = P.find("candidates");
        const json::Value *Top = Cands && Cands->isArray() &&
                                         !Cands->array().empty()
                                     ? &Cands->array().front()
                                     : nullptr;
        const json::Value *Prob = Top ? Top->find("prob") : nullptr;
        std::printf("  %-20s %-10s -> %-20s (p=%.3f)\n",
                    P.getString("symbol", "?").c_str(),
                    P.getString("kind", "?").c_str(),
                    Top ? Top->getString("type", "?").c_str() : "?",
                    Prob && Prob->isNumber() ? Prob->asNumber() : 0.0);
      }
  }
  return Failures ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Cmd = Argv[1];
  Options O;
  if (!parseOptions(Argc, Argv, O))
    return 2;
  if (O.NoSimd)
    nn::simd::setSimdEnabled(false);

  if (Cmd == "train")
    return cmdTrain(O);
  if (Cmd == "shard")
    return cmdShard(O);
  if (Cmd == "predict")
    return cmdPredict(O);
  if (Cmd == "inspect")
    return cmdInspect(O);
  if (Cmd == "save")
    return cmdSave(O);
  if (Cmd == "client")
    return cmdClient(O);
  return usage(Argv[0]);
}
