//===- tools/typilus_serve.cpp - The serving daemon ----------------------------===//
//
// The deployment story of Fig. 1 as a long-lived process: load one model
// artifact at startup (~ms thanks to the Annoy snapshot), then answer
// newline-delimited JSON predict requests over a Unix-domain socket — or
// stdin/stdout with --stdio — until SIGTERM. Concurrent requests coalesce
// into batches served through Predictor::predictBatch, so responses are
// bit-identical to one-shot `typilus_cli predict` while the pipeline
// amortizes encoder and index work across requests.
//
//   typilus_serve --model model.typilus --socket /tmp/typilus.sock
//   typilus_cli client --socket /tmp/typilus.sock --source file.py
//
// Shutdown (SIGTERM/SIGINT or a `shutdown` request) drains: accepting
// stops, queued requests are answered, connections close, exit 0.
//
//===----------------------------------------------------------------------===//

#include "corpus/Dataset.h"
#include "serve/Server.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

using namespace typilus;
using namespace typilus::serve;

namespace {

struct Options {
  std::string ModelPath;
  std::string SocketPath;
  bool Stdio = false;
  int Threads = 0;
  int MaxBatch = 16;
  long MaxRequestBytes = static_cast<long>(kDefaultMaxRequestBytes);
  int Limit = -1;
};

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --model PATH (--socket PATH | --stdio) [options]\n"
      "\n"
      "Long-lived serving daemon: loads the artifact once and answers\n"
      "newline-delimited JSON predict requests (protocol grammar in\n"
      "docs/ARCHITECTURE.md). Options:\n"
      "  --threads N            pool size (0 = hardware, 1 = serial)\n"
      "  --max-batch N          requests coalesced per dispatch (default 16)\n"
      "  --max-request-bytes N  per-line cap (default 4194304)\n"
      "  --limit N              default candidates per symbol (-1 = all)\n",
      Argv0);
  return 2;
}

bool parseOptions(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&](const char *What) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s expects a value\n", What);
        return nullptr;
      }
      return Argv[++I];
    };
    const char *V = nullptr;
    if (A == "--model") {
      if (!(V = Next("--model")))
        return false;
      O.ModelPath = V;
    } else if (A == "--socket") {
      if (!(V = Next("--socket")))
        return false;
      O.SocketPath = V;
    } else if (A == "--stdio") {
      O.Stdio = true;
    } else if (A == "--threads") {
      if (!(V = Next("--threads")))
        return false;
      O.Threads = std::atoi(V);
    } else if (A == "--max-batch") {
      if (!(V = Next("--max-batch")))
        return false;
      O.MaxBatch = std::atoi(V);
    } else if (A == "--max-request-bytes") {
      if (!(V = Next("--max-request-bytes")))
        return false;
      O.MaxRequestBytes = std::atol(V);
    } else if (A == "--limit") {
      if (!(V = Next("--limit")))
        return false;
      O.Limit = std::atoi(V);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Shutdown signaling: a self-pipe so SIGTERM/SIGINT (and the protocol's
// `shutdown` method, from the dispatcher thread) wake the poll() loop
// with nothing async-signal-unsafe in the handler.
//===----------------------------------------------------------------------===//

int GShutdownPipe[2] = {-1, -1};
std::atomic<bool> GStop{false};

void requestStop() {
  bool Expected = false;
  if (GStop.compare_exchange_strong(Expected, true)) {
    char B = 1;
    // The pipe outlives every writer; a full pipe still wakes the poller.
    (void)!write(GShutdownPipe[1], &B, 1);
  }
}

void onSignal(int) { requestStop(); }

//===----------------------------------------------------------------------===//
// Connection handling
//===----------------------------------------------------------------------===//

/// One client connection: the fd to answer on plus a write lock (the
/// reader thread answers protocol errors itself while the dispatcher
/// writes results). `Owned` is set in socket mode only — stdio borrows
/// stdout and must not close it.
struct Conn {
  FileDesc Owned;
  int Fd = -1;
  std::mutex WriteMu;
  std::atomic<bool> ReaderDone{false};

  void send(const std::string &Line) {
    std::lock_guard<std::mutex> L(WriteMu);
    // A vanished client is not an error worth acting on: its requests
    // still drain, their responses just go nowhere.
    (void)writeAll(Fd, Line);
  }
};

//===----------------------------------------------------------------------===//
// Modes (both drive serve::serveStream; only the transport differs)
//===----------------------------------------------------------------------===//

int runStdio(Server &S, const Options &O) {
  auto C = std::make_shared<Conn>();
  C->Fd = STDOUT_FILENO; // borrowed, never closed
  serveStream(STDIN_FILENO, static_cast<size_t>(O.MaxRequestBytes), S,
              [C](std::string Resp) { C->send(Resp); }, &GStop,
              /*WakeFd=*/GShutdownPipe[0]);
  S.stop(); // drain: every submitted request is answered
  return 0;
}

int runSocket(Server &S, const Options &O) {
  UnixListener L;
  std::string Err;
  if (!L.listenOn(O.SocketPath, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::printf("typilus_serve: listening on %s\n", O.SocketPath.c_str());
  std::fflush(stdout);

  // Reader threads are detached; this counter (with its cv) is how the
  // drain waits for all of them, and dead connections are pruned on each
  // accept so a long-lived daemon's memory does not grow with its
  // connection history.
  std::mutex ConnsMu;
  std::condition_variable ReapCV;
  int ActiveReaders = 0;
  std::vector<std::shared_ptr<Conn>> Conns;

  pollfd Fds[2];
  Fds[0].fd = L.fd();
  Fds[0].events = POLLIN;
  Fds[1].fd = GShutdownPipe[0];
  Fds[1].events = POLLIN;
  while (!GStop.load()) {
    Fds[0].revents = Fds[1].revents = 0;
    int N = ::poll(Fds, 2, -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Fds[1].revents || GStop.load())
      break;
    if (!Fds[0].revents)
      continue;
    FileDesc C = L.acceptConn();
    if (!C.valid())
      continue;
    auto Shared = std::make_shared<Conn>();
    Shared->Owned = std::move(C);
    Shared->Fd = Shared->Owned.fd();
    // A client that stops reading must not stall the dispatcher (or the
    // SIGTERM drain) behind a full socket buffer: after this much
    // back-pressure its response write fails and is dropped.
    setSendTimeout(Shared->Fd, /*Seconds=*/30);
    {
      std::lock_guard<std::mutex> G(ConnsMu);
      // Prune connections whose reader finished and whose responses all
      // went out (ours is then the only reference left).
      Conns.erase(std::remove_if(Conns.begin(), Conns.end(),
                                 [](const std::shared_ptr<Conn> &P) {
                                   return P->ReaderDone.load() &&
                                          P.use_count() == 1;
                                 }),
                  Conns.end());
      Conns.push_back(Shared);
      ++ActiveReaders;
    }
    std::thread([Shared, &S, &O, &ConnsMu, &ReapCV, &ActiveReaders] {
      serveStream(Shared->Fd, static_cast<size_t>(O.MaxRequestBytes), S,
                  [Shared](std::string Resp) { Shared->send(Resp); });
      Shared->ReaderDone = true;
      {
        // Notify under the lock: the drain destroys the cv right after
        // its wait returns, so the notify must complete before this
        // thread releases the mutex that wakes it.
        std::lock_guard<std::mutex> G(ConnsMu);
        --ActiveReaders;
        ReapCV.notify_all();
      }
    }).detach();
  }

  // Drain-first shutdown: stop accepting, EOF the readers (write sides
  // stay open for in-flight responses), wait for them to finish
  // submitting, finish the queue, then close.
  L.close();
  {
    std::unique_lock<std::mutex> G(ConnsMu);
    for (auto &C : Conns)
      C->Owned.shutdownRead();
    ReapCV.wait(G, [&] { return ActiveReaders == 0; });
  }
  S.stop();
  std::printf("typilus_serve: drained, exiting\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseOptions(Argc, Argv, O))
    return 2;
  if (O.ModelPath.empty() || (O.SocketPath.empty() && !O.Stdio) ||
      (!O.SocketPath.empty() && O.Stdio))
    return usage(Argv[0]);

  if (::pipe(GShutdownPipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSignal;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);

  setGlobalNumThreads(O.Threads);

  std::string Err;
  std::unique_ptr<Predictor> P = Predictor::load(O.ModelPath, &Err);
  if (!P) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  KnnOptions KO = P->knnOptions();
  KO.NumThreads = O.Threads;
  P->setKnnOptions(KO);
  const ModelConfig &MC = P->model().config();
  // In stdio mode stdout IS the response channel — NDJSON only; human
  // chatter goes to stderr there.
  std::fprintf(O.Stdio ? stderr : stdout,
               "typilus_serve: loaded %s (%s/%s, D=%d%s, max-batch %d)\n",
               O.ModelPath.c_str(), encoderKindName(MC.Encoder),
               lossKindName(MC.Loss), MC.HiddenDim,
               P->isKnn() ? ", kNN" : ", classifier", O.MaxBatch);
  std::fflush(O.Stdio ? stderr : stdout);

  ServerOptions SO;
  SO.MaxBatch = O.MaxBatch;
  SO.Limit = O.Limit;
  SO.OnShutdown = [] { requestStop(); };
  Server S(*P, *P->universe(), SO);

  int Rc = O.Stdio ? runStdio(S, O) : runSocket(S, O);
  S.stop();
  return Rc;
}
