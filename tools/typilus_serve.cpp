//===- tools/typilus_serve.cpp - The serving daemon ----------------------------===//
//
// The deployment story of Fig. 1 as a long-lived process: load one model
// artifact at startup (~ms thanks to the Annoy snapshot), then answer
// newline-delimited JSON predict requests over a Unix-domain socket, TCP
// (--port), or stdin/stdout with --stdio — until SIGTERM. Concurrent
// requests coalesce into batches served through Predictor::predictBatch,
// repeated (path, source) requests answer from an LRU response cache,
// and SIGHUP (or a `reload` request) hot-swaps a freshly loaded artifact
// without dropping queued requests. Responses are bit-identical to
// one-shot `typilus_cli predict` on every transport.
//
//   typilus_serve --model model.typilus --socket /tmp/typilus.sock
//   typilus_serve --model model.typilus --port 8401
//   typilus_cli client --tcp 127.0.0.1:8401 --source file.py
//
// Shutdown (SIGTERM/SIGINT or a `shutdown` request) drains: accepting
// stops, queued requests are answered, connections close, exit 0.
//
//===----------------------------------------------------------------------===//

#include "corpus/Dataset.h"
#include "nn/Simd.h"
#include "serve/Server.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

using namespace typilus;
using namespace typilus::serve;

namespace {

struct Options {
  std::string ModelPath;
  std::string SocketPath;
  std::string Host = "127.0.0.1";
  int Port = -1; ///< -1 = no TCP transport.
  bool Stdio = false;
  int Threads = 0;
  int MaxBatch = 16;
  long MaxRequestBytes = static_cast<long>(kDefaultMaxRequestBytes);
  int Limit = -1;
  int CacheEntries = 1024;
  int MaxQueue = 0;
  int EfSearch = 0;    ///< --ef-search: HNSW query budget (0 = default).
  bool NoSimd = false; ///< --no-simd: pin the scalar kernel table.
};

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --model PATH (--socket PATH | --port N | --stdio) "
      "[options]\n"
      "\n"
      "Long-lived serving daemon: loads the artifact once and answers\n"
      "newline-delimited JSON predict requests (protocol grammar in\n"
      "docs/ARCHITECTURE.md). --socket and --port may be combined; both\n"
      "transports share one pipeline and one cache. SIGHUP reloads the\n"
      "artifact from --model without dropping queued requests. Options:\n"
      "  --host ADDR            TCP bind address (default 127.0.0.1)\n"
      "  --threads N            pool size (0 = hardware, 1 = serial)\n"
      "  --max-batch N          requests coalesced per dispatch (default 16)\n"
      "  --max-request-bytes N  per-line cap (default 4194304)\n"
      "  --limit N              default candidates per symbol (-1 = all)\n"
      "  --cache-entries N      response-cache capacity in distinct\n"
      "                         (path, source) entries (default 1024,\n"
      "                         0 = off)\n"
      "  --max-queue N          shed predicts with an `overloaded` error\n"
      "                         past this queue depth (default 0 = off)\n"
      "  --ef-search N          HNSW per-request query budget (layer-0\n"
      "                         beam width; 0 = the index default,\n"
      "                         max(4k, 64); other indexes ignore it)\n"
      "  --no-simd              pin the scalar reference kernels\n"
      "                         (bit-reproducible across hosts)\n",
      Argv0);
  return 2;
}

bool parseOptions(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&](const char *What) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s expects a value\n", What);
        return nullptr;
      }
      return Argv[++I];
    };
    const char *V = nullptr;
    if (A == "--model") {
      if (!(V = Next("--model")))
        return false;
      O.ModelPath = V;
    } else if (A == "--socket") {
      if (!(V = Next("--socket")))
        return false;
      O.SocketPath = V;
    } else if (A == "--port") {
      if (!(V = Next("--port")))
        return false;
      O.Port = std::atoi(V);
    } else if (A == "--host") {
      if (!(V = Next("--host")))
        return false;
      O.Host = V;
    } else if (A == "--stdio") {
      O.Stdio = true;
    } else if (A == "--threads") {
      if (!(V = Next("--threads")))
        return false;
      O.Threads = std::atoi(V);
    } else if (A == "--max-batch") {
      if (!(V = Next("--max-batch")))
        return false;
      O.MaxBatch = std::atoi(V);
    } else if (A == "--max-request-bytes") {
      if (!(V = Next("--max-request-bytes")))
        return false;
      O.MaxRequestBytes = std::atol(V);
    } else if (A == "--limit") {
      if (!(V = Next("--limit")))
        return false;
      O.Limit = std::atoi(V);
    } else if (A == "--cache-entries") {
      if (!(V = Next("--cache-entries")))
        return false;
      O.CacheEntries = std::atoi(V);
    } else if (A == "--max-queue") {
      if (!(V = Next("--max-queue")))
        return false;
      O.MaxQueue = std::atoi(V);
    } else if (A == "--ef-search") {
      if (!(V = Next("--ef-search")))
        return false;
      O.EfSearch = std::atoi(V);
    } else if (A == "--no-simd") {
      O.NoSimd = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Signal handling: one self-pipe wakes the accept loop (or the stdio
// LineReader) for both SIGTERM/SIGINT (drain + exit) and SIGHUP (hot
// reload), with nothing async-signal-unsafe in the handlers. The wake
// hooks drain the pipe and read these flags to decide which it was.
//===----------------------------------------------------------------------===//

int GWakePipe[2] = {-1, -1};
std::atomic<bool> GStop{false};
std::atomic<bool> GReload{false};

void pokePipe() {
  char B = 1;
  // The pipe outlives every writer; a full pipe still wakes the poller.
  (void)!write(GWakePipe[1], &B, 1);
}

void requestStop() {
  bool Expected = false;
  if (GStop.compare_exchange_strong(Expected, true))
    pokePipe();
}

void onTermSignal(int) { requestStop(); }

void onHupSignal(int) {
  bool Expected = false;
  if (GReload.compare_exchange_strong(Expected, true))
    pokePipe();
}

void drainWakePipe() {
  char Buf[64];
  (void)!read(GWakePipe[0], Buf, sizeof(Buf));
}

/// Submits a reload request on behalf of a SIGHUP (no client, no id);
/// the outcome is logged instead of answered.
void submitSignalReload(Server &S) {
  Request R;
  R.Id = -1;
  R.M = Method::Reload;
  S.submit(std::move(R), [](std::string Resp) {
    std::fprintf(stderr, "typilus_serve: SIGHUP reload: %s", Resp.c_str());
  });
}

/// Shared SIGTERM/SIGHUP dispatch for both transports' wake hooks.
/// \returns true when the daemon should begin its drain.
bool handleWake(Server &S) {
  drainWakePipe();
  if (GStop.load())
    return true;
  if (GReload.exchange(false))
    submitSignalReload(S);
  return false;
}

//===----------------------------------------------------------------------===//
// Modes (all drive serve::serveStream; only the transport differs)
//===----------------------------------------------------------------------===//

int runStdio(Server &S, const Options &O) {
  // stdout is borrowed, never closed; a write lock serializes the
  // reader's protocol errors with the dispatcher's responses.
  auto WriteMu = std::make_shared<std::mutex>();
  serveStream(
      STDIN_FILENO, static_cast<size_t>(O.MaxRequestBytes), S,
      [WriteMu](std::string Resp) {
        std::lock_guard<std::mutex> L(*WriteMu);
        (void)writeAll(STDOUT_FILENO, Resp);
      },
      &GStop, /*WakeFd=*/GWakePipe[0], /*OnWake=*/[&S] { return handleWake(S); });
  S.stop(); // drain: every submitted request is answered
  return 0;
}

int runListeners(Server &S, const Options &O) {
  UnixListener UL;
  TcpListener TL;
  std::vector<int> ListenFds;
  std::string Err;
  if (!O.SocketPath.empty()) {
    if (!UL.listenOn(O.SocketPath, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    ListenFds.push_back(UL.fd());
    std::printf("typilus_serve: listening on %s\n", O.SocketPath.c_str());
  }
  if (O.Port >= 0) {
    if (!TL.listenOn(O.Host, static_cast<uint16_t>(O.Port), &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    ListenFds.push_back(TL.fd());
    std::printf("typilus_serve: listening on %s:%u\n", O.Host.c_str(),
                static_cast<unsigned>(TL.port()));
  }
  std::fflush(stdout);

  AcceptLoopOptions AO;
  AO.MaxRequestBytes = static_cast<size_t>(O.MaxRequestBytes);
  AO.WakeFd = GWakePipe[0];
  AO.OnWake = [&S] { return handleWake(S); };
  AO.OnDrainStart = [&UL, &TL] {
    UL.close();
    TL.close();
  };
  acceptLoop(ListenFds, S, AO);
  std::printf("typilus_serve: drained, exiting\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseOptions(Argc, Argv, O))
    return 2;
  if (O.NoSimd)
    nn::simd::setSimdEnabled(false);
  bool HaveListener = !O.SocketPath.empty() || O.Port >= 0;
  if (O.ModelPath.empty() || (!HaveListener && !O.Stdio) ||
      (HaveListener && O.Stdio))
    return usage(Argv[0]);

  if (::pipe(GWakePipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onTermSignal;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
  SA.sa_handler = onHupSignal;
  sigaction(SIGHUP, &SA, nullptr);

  setGlobalNumThreads(O.Threads);

  std::string Err;
  std::unique_ptr<Predictor> P = Predictor::load(O.ModelPath, &Err);
  if (!P) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  KnnOptions KO = P->knnOptions();
  KO.NumThreads = O.Threads;
  if (O.EfSearch > 0)
    KO.EfSearch = O.EfSearch;
  P->setKnnOptions(KO);
  const ModelConfig &MC = P->model().config();
  // In stdio mode stdout IS the response channel — NDJSON only; human
  // chatter goes to stderr there.
  std::fprintf(O.Stdio ? stderr : stdout,
               "typilus_serve: loaded %s (%s/%s, D=%d%s, max-batch %d, "
               "cache %d, max-queue %d)\n",
               O.ModelPath.c_str(), encoderKindName(MC.Encoder),
               lossKindName(MC.Loss), MC.HiddenDim,
               P->isKnn() ? ", kNN" : ", classifier", O.MaxBatch,
               O.CacheEntries, O.MaxQueue);
  std::fflush(O.Stdio ? stderr : stdout);

  ServerOptions SO;
  SO.MaxBatch = O.MaxBatch;
  SO.Limit = O.Limit;
  SO.CacheEntries = O.CacheEntries;
  SO.MaxQueue = O.MaxQueue;
  SO.OnShutdown = [] { requestStop(); };
  // Hot reload: re-read the artifact from the path given at startup.
  // Runs on the dispatcher thread; failure keeps the current artifact.
  std::string ModelPath = O.ModelPath;
  int Threads = O.Threads;
  int EfSearch = O.EfSearch;
  SO.OnReload = [ModelPath, Threads, EfSearch,
                 Stdio = O.Stdio](std::string *Err) -> std::shared_ptr<Predictor> {
    std::shared_ptr<Predictor> NewP = Predictor::load(ModelPath, Err);
    if (!NewP)
      return nullptr;
    KnnOptions KO = NewP->knnOptions();
    KO.NumThreads = Threads;
    if (EfSearch > 0)
      KO.EfSearch = EfSearch;
    NewP->setKnnOptions(KO);
    std::fprintf(Stdio ? stderr : stdout, "typilus_serve: reloaded %s\n",
                 ModelPath.c_str());
    std::fflush(Stdio ? stderr : stdout);
    return NewP;
  };
  Server S(*P, *P->universe(), SO);

  int Rc = O.Stdio ? runStdio(S, O) : runListeners(S, O);
  S.stop();
  return Rc;
}
