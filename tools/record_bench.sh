#!/usr/bin/env sh
# Runs one bench binary and records its output as BENCH_<name>.json at the
# repo root, wrapped with the provenance documented in docs/BENCHMARKS.md.
#
# Usage: tools/record_bench.sh <bench-name> [-- <extra binary args>]
# Env:   TYPILUS_BENCH_FILES / TYPILUS_BENCH_EPOCHS scale the experiment;
#        BUILD_DIR overrides the build tree (default: build).
set -eu

[ $# -ge 1 ] || { echo "usage: $0 <bench-name> [-- <args>]" >&2; exit 2; }
NAME=$1; shift
[ "${1:-}" = "--" ] && shift

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
case ${BUILD_DIR:-build} in
  /*) BIN="${BUILD_DIR}/bench/$NAME" ;;
  *) BIN="$ROOT/${BUILD_DIR:-build}/bench/$NAME" ;;
esac
[ -x "$BIN" ] || { echo "error: $BIN not built (cmake --build build)" >&2; exit 1; }

# A Debug-build number is not a benchmark. Read the build type straight
# from the build tree's cache (the configure default is RelWithDebInfo, so
# Debug only happens on purpose) and refuse to record it unless the caller
# explicitly overrides; the recording then says so in its provenance.
BDIR=$(CDPATH= cd -- "$(dirname -- "$BIN")/.." && pwd)
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BDIR/CMakeCache.txt" 2>/dev/null | head -1)
BUILD_TYPE=${BUILD_TYPE:-unknown}
case $BUILD_TYPE in
  [Dd]ebug)
    if [ "${TYPILUS_BENCH_ALLOW_DEBUG:-0}" != 1 ]; then
      echo "error: $BDIR is a Debug build; refusing to record timings." >&2
      echo "       Rebuild with -DCMAKE_BUILD_TYPE=RelWithDebInfo, or set" >&2
      echo "       TYPILUS_BENCH_ALLOW_DEBUG=1 to record anyway (the JSON" >&2
      echo "       will be marked build_type=Debug)." >&2
      exit 3
    fi
    echo "warning: recording from a Debug build (TYPILUS_BENCH_ALLOW_DEBUG=1); timings are not comparable" >&2
    ;;
esac

OUT="$ROOT/BENCH_$NAME.json"
TMP=$(mktemp)
# Same directory as $OUT so the final rename is an atomic same-device mv.
OUTTMP=$(mktemp "$OUT.XXXXXX")
trap 'rm -f "$TMP" "$OUTTMP"' EXIT

# Record the scale the bench *actually* runs at: BenchScale::fromEnv
# (src/core/Experiments.cpp) atoi's the env vars and clamps to >=20 files
# and >=1 epoch. Mirror that so the provenance never misstates the run.
# atoi() for env-var inputs: skip leading whitespace and an optional '+',
# then take leading digits; anything else (including negatives, which the
# clamps below lift anyway) parses as 0.
digits_or_zero() {
  D=$(printf '%s' "${1:-}" |
    sed -e 's/^[[:space:]]*//' -e 's/^+//' -e 's/[^0-9].*$//')
  echo "${D:-0}"
}
FILES=${TYPILUS_BENCH_FILES+$(digits_or_zero "$TYPILUS_BENCH_FILES")}
FILES=${FILES:-120}
[ "$FILES" -ge 20 ] || FILES=20
EPOCHS=${TYPILUS_BENCH_EPOCHS+$(digits_or_zero "$TYPILUS_BENCH_EPOCHS")}
EPOCHS=${EPOCHS:-16}
[ "$EPOCHS" -ge 1 ] || EPOCHS=1

# A failing (or signal-killed) bench must propagate its exit status and
# leave any previous BENCH_*.json untouched — an empty or truncated
# recording is worse than a stale one.
START=$(date +%s)
STATUS=0
"$BIN" "$@" > "$TMP" 2>&1 || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  cat "$TMP" >&2
  echo "error: $NAME exited with status $STATUS; $OUT left untouched" >&2
  exit "$STATUS"
fi
if ! [ -s "$TMP" ]; then
  echo "error: $NAME exited 0 but produced no output; $OUT left untouched" >&2
  exit 1
fi
ELAPSED=$(( $(date +%s) - START ))
cat "$TMP"

# JSON-string-escapes stdin: backslash, quote, tab, and newlines; any
# other control characters (JSON forbids them raw) are dropped.
json_escape() {
  tr -d '\000-\010\013-\037' |
    sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' -e "s/$(printf '\t')/\\\\t/g" |
    awk '{printf "%s\\n", $0}' | sed -e 's/\\n$//'
}

CPU=$(sed -n 's/^model name[^:]*: //p' /proc/cpuinfo 2>/dev/null | head -1 | json_escape)
CORES=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)
COMPILER=$(c++ --version 2>/dev/null | head -1 | json_escape)
GIT=$(git -C "$ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)

# Compose into a temp file and rename: a failure in any command
# substitution below (under set -e) can no longer leave $OUT truncated,
# and the previous recording survives until the new one is complete.
cat > "$OUTTMP" <<EOF
{
  "bench": "$NAME",
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "scale": {
    "files": $FILES,
    "epochs": $EPOCHS
  },
  "elapsed_seconds": $ELAPSED,
  "host": {
    "cpu": "$CPU",
    "cores": $CORES,
    "compiler": "$COMPILER",
    "build_type": "$(printf '%s' "$BUILD_TYPE" | json_escape)"
  },
  "git": "$GIT",
  "output": "$(json_escape < "$TMP")\\n"
}
EOF
[ -s "$OUTTMP" ] || { echo "error: empty recording; $OUT left untouched" >&2; exit 1; }
mv -f "$OUTTMP" "$OUT"
echo "recorded $OUT (${ELAPSED}s)" >&2
