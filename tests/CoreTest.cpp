//===- tests/CoreTest.cpp - core/ integration tests ----------------------------===//
//
// Integration tests over the whole pipeline: corpus -> dataset -> training
// -> τmap -> kNN prediction -> evaluation, plus the open-vocabulary
// property that is Typilus's central claim.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace typilus;

namespace {

/// One small trained workbench shared by the suite (kept deliberately
/// tiny: ~30 files, 6 epochs — these are integration tests, not benches).
class CoreTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    CorpusConfig CC;
    CC.NumFiles = 30;
    DatasetConfig DC;
    WB = new Workbench(Workbench::make(CC, DC));
    ModelConfig MC;
    MC.HiddenDim = 16;
    MC.TimeSteps = 2;
    TrainOptions TO;
    TO.Epochs = 6;
    Run = new ModelRun(trainAndEvaluate(*WB, MC, TO));
  }
  static void TearDownTestSuite() {
    delete Run;
    delete WB;
    Run = nullptr;
    WB = nullptr;
  }

  static Workbench *WB;
  static ModelRun *Run;
};

Workbench *CoreTest::WB = nullptr;
ModelRun *CoreTest::Run = nullptr;

} // namespace

TEST_F(CoreTest, TrainingBeatsChance) {
  // Even a tiny model must clearly beat the majority-class baseline on
  // this corpus (int is ~22% of annotations).
  EXPECT_GT(Run->Summary.ExactAll, 25.0);
}

TEST_F(CoreTest, PredictionsCoverEveryTestTarget) {
  size_t Expected = 0;
  for (const FileExample &F : WB->DS.Test)
    Expected += F.Targets.size();
  EXPECT_EQ(Run->Preds.size(), Expected);
  EXPECT_EQ(Run->Js.size(), Expected);
}

TEST_F(CoreTest, ConfidencesAreProbabilities) {
  for (const PredictionResult &P : Run->Preds) {
    EXPECT_GE(P.confidence(), 0.0);
    EXPECT_LE(P.confidence(), 1.0 + 1e-9);
    double Sum = 0;
    for (const ScoredType &S : P.Candidates)
      Sum += S.Prob;
    EXPECT_LE(Sum, 1.0 + 1e-6);
  }
}

TEST_F(CoreTest, JudgingIsConsistent) {
  for (const Judged &J : Run->Js) {
    if (J.Exact) {
      EXPECT_TRUE(J.UpToParametric) << "exact implies up-to-parametric";
      EXPECT_TRUE(J.Neutral) << "exact implies neutral";
    }
  }
}

TEST_F(CoreTest, PrCurveIsMonotoneInRecall) {
  auto Curve = prCurve(Run->Js, Criterion::Exact, 10);
  ASSERT_FALSE(Curve.empty());
  // Recall decreases (weakly) as the threshold rises.
  for (size_t I = 1; I != Curve.size(); ++I)
    EXPECT_LE(Curve[I].Recall, Curve[I - 1].Recall + 1e-9);
  // The zero-threshold point predicts everything.
  EXPECT_NEAR(Curve.front().Recall, 1.0, 1e-9);
}

TEST_F(CoreTest, HighConfidencePredictionsAreMorePrecise) {
  auto Curve = prCurve(Run->Js, Criterion::Exact, 10);
  EXPECT_GE(Curve.back().Precision + 0.05, Curve.front().Precision)
      << "precision should not collapse at high confidence";
}

TEST_F(CoreTest, BucketsPartitionTheTestSet) {
  auto Buckets = bucketByAnnotationCount(Run->Js, {2, 10, 1000000});
  size_t Total = 0;
  for (const Bucket &B : Buckets)
    Total += B.Num;
  EXPECT_EQ(Total, Run->Js.size());
}

TEST_F(CoreTest, SummarizeKindPartitions) {
  size_t Total = 0;
  for (SymbolKind K : {SymbolKind::Variable, SymbolKind::Parameter,
                       SymbolKind::Return, SymbolKind::Attribute})
    Total += summarizeKind(Run->Js, K).Count;
  EXPECT_EQ(Total, Run->Js.size());
}

//===----------------------------------------------------------------------===//
// The open-vocabulary property (Sec. 4.2)
//===----------------------------------------------------------------------===//

TEST_F(CoreTest, UnseenTypeBecomesPredictableViaMarkers) {
  // A type absent from training and from the τmap cannot be predicted;
  // adding a single marker (no retraining) makes it predictable for a
  // structurally similar symbol.
  const char *Code =
      "def open_channel(quic_stream: QuicStream) -> bool:\n"
      "    status = quic_stream.get_enabled()\n"
      "    return status\n"
      "def close_channel(quic_stream: QuicStream) -> bool:\n"
      "    return quic_stream.get_enabled()\n";
  CorpusFile File{"unseen.py", Code};
  FileExample Ex = buildExample(File, *WB->U, GraphBuildOptions{});
  TypeRef Unseen = WB->U->parse("QuicStream");
  ASSERT_EQ(WB->DS.TrainTypeCounts.count(Unseen), 0u);

  std::vector<const FileExample *> MapFiles;
  for (const FileExample &F : WB->DS.Train)
    MapFiles.push_back(&F);
  KnnOptions KO;
  KO.P = 4.0;
  Predictor P = Predictor::knn(*Run->Model, MapFiles, KO);

  // Before: the unseen type cannot be the top prediction anywhere.
  for (const PredictionResult &Pred : P.predictFile(Ex))
    EXPECT_NE(Pred.top(), Unseen);

  // Adapt: one marker from the first parameter occurrence.
  std::vector<const Target *> Targets;
  nn::Value Emb = Run->Model->embed({&Ex}, &Targets);
  int MarkerRow = -1;
  for (size_t I = 0; I != Targets.size(); ++I)
    if (Targets[I]->Kind == SymbolKind::Parameter && MarkerRow < 0)
      MarkerRow = static_cast<int>(I);
  ASSERT_GE(MarkerRow, 0);
  P.addMarker(Emb.val().data() + MarkerRow * Emb.val().cols(), Unseen);

  // After: the *other* QuicStream parameter resolves to the new type.
  bool Predicted = false;
  for (const PredictionResult &Pred : P.predictFile(Ex))
    if (Pred.Kind == SymbolKind::Parameter &&
        Pred.NodeIdx != Targets[static_cast<size_t>(MarkerRow)]->NodeIdx)
      Predicted |= Pred.top() == Unseen;
  EXPECT_TRUE(Predicted) << "open-vocabulary adaptation failed";
}

//===----------------------------------------------------------------------===//
// Checker experiment protocol
//===----------------------------------------------------------------------===//

TEST_F(CoreTest, CheckerExperimentRunsAndCategorises) {
  auto Outcomes =
      runCheckerExperiment(*WB, Run->Preds, /*InferLocals=*/false,
                           /*StripProb=*/0.5, /*Seed=*/3);
  ASSERT_FALSE(Outcomes.empty());
  size_t Eps = 0, Prime = 0, Same = 0;
  for (const CheckOutcome &O : Outcomes) {
    switch (O.Kind) {
    case CheckOutcome::Case::EpsToTau: ++Eps; break;
    case CheckOutcome::Case::TauToTauPrime: ++Prime; break;
    case CheckOutcome::Case::TauToTau: ++Same; break;
    }
  }
  EXPECT_GT(Eps, 0u);
  EXPECT_GT(Prime + Same, 0u);
}

TEST_F(CoreTest, IdenticalResubstitutionNeverFails) {
  // τ→τ substitutions re-insert the original annotation: by construction
  // they must pass (the paper's sanity row at 100%).
  auto Outcomes = runCheckerExperiment(*WB, Run->Preds, false, 0.0, 3);
  for (const CheckOutcome &O : Outcomes)
    if (O.Kind == CheckOutcome::Case::TauToTau) {
      EXPECT_FALSE(O.CausesError);
    }
}

TEST_F(CoreTest, InferringCheckerFlagsAtLeastAsMuch) {
  auto Strict = runCheckerExperiment(*WB, Run->Preds, false, 0.9, 3);
  auto Infer = runCheckerExperiment(*WB, Run->Preds, true, 0.9, 3);
  ASSERT_EQ(Strict.size(), Infer.size());
  size_t StrictErr = 0, InferErr = 0;
  for (size_t I = 0; I != Strict.size(); ++I) {
    StrictErr += Strict[I].CausesError;
    InferErr += Infer[I].CausesError;
  }
  EXPECT_GE(InferErr, StrictErr);
}

//===----------------------------------------------------------------------===//
// Classifier path
//===----------------------------------------------------------------------===//

TEST_F(CoreTest, ClassifierPredictorProducesRankedCandidates) {
  ModelConfig MC;
  MC.Loss = LossKind::Class;
  MC.HiddenDim = 16;
  MC.TimeSteps = 2;
  TrainOptions TO;
  TO.Epochs = 2;
  ModelRun CRun = trainAndEvaluate(*WB, MC, TO);
  ASSERT_FALSE(CRun.Preds.empty());
  for (const PredictionResult &P : CRun.Preds) {
    ASSERT_FALSE(P.Candidates.empty());
    for (size_t I = 1; I < P.Candidates.size(); ++I)
      EXPECT_GE(P.Candidates[I - 1].Prob, P.Candidates[I].Prob);
  }
}

//===----------------------------------------------------------------------===//
// Parallel-training determinism (the execution layer)
//===----------------------------------------------------------------------===//

TEST_F(CoreTest, ParallelTrainingLossIsBitIdenticalToSerial) {
  // The execution layer's contract: every kernel is bit-reproducible
  // across thread counts, so NumThreads=4 must reproduce the serial
  // training trajectory exactly — same final loss, same weights.
  ModelConfig MC;
  MC.HiddenDim = 16;
  MC.TimeSteps = 2;
  auto TrainOnce = [&](int NumThreads) {
    TrainOptions TO;
    TO.Epochs = 2;
    TO.NumThreads = NumThreads;
    std::unique_ptr<TypeModel> M = makeModel(MC, WB->DS, *WB->U);
    double Loss = trainModel(*M, WB->DS.Train, TO);
    std::vector<float> Weights;
    for (const nn::Value &P : M->params().params())
      for (int64_t I = 0; I != P.val().numel(); ++I)
        Weights.push_back(P.val()[I]);
    return std::make_pair(Loss, Weights);
  };
  auto Serial = TrainOnce(1);
  auto Parallel = TrainOnce(4);
  EXPECT_EQ(Serial.first, Parallel.first) << "final losses diverged";
  ASSERT_EQ(Serial.second.size(), Parallel.second.size());
  for (size_t I = 0; I != Serial.second.size(); ++I)
    ASSERT_EQ(Serial.second[I], Parallel.second[I]) << "weight " << I;
}

//===----------------------------------------------------------------------===//
// The incremental editor loop (annotateIncremental / predictSource)
//===----------------------------------------------------------------------===//

namespace {

/// Source text of the workbench file at \p Path (the corpus keeps every
/// generated file's text alongside the built examples).
const CorpusFile *sourceOf(const Workbench &WB, const std::string &Path) {
  for (const CorpusFile &F : WB.Files)
    if (F.Path == Path)
      return &F;
  return nullptr;
}

/// A kNN predictor over the train split, wired for the editor loop:
/// universe attached so predictSource/annotateIncremental can parse.
Predictor makeEditorPredictor(Workbench &WB, ModelRun &Run,
                              const KnnOptions &KO = {}) {
  std::vector<const FileExample *> MapFiles;
  for (const FileExample &F : WB.DS.Train)
    MapFiles.push_back(&F);
  Predictor P = Predictor::knn(*Run.Model, MapFiles, KO);
  P.setUniverse(*WB.U);
  return P;
}

} // namespace

TEST_F(CoreTest, PredictSourceMatchesPredictFile) {
  // The single in-memory-source entry point (CLI --source, serve daemon,
  // LSP) must agree bit-for-bit with predictFile over the prebuilt
  // example of the same content.
  Predictor P = makeEditorPredictor(*WB, *Run);
  const FileExample &F = WB->DS.Test.front();
  const CorpusFile *CF = sourceOf(*WB, F.Path);
  ASSERT_NE(CF, nullptr);
  auto ViaFile = P.predictFile(F);
  auto ViaSource = P.predictSource(CF->Path, CF->Source);
  ASSERT_FALSE(ViaFile.empty());
  EXPECT_EQ(predictionDigest(ViaFile), predictionDigest(ViaSource));
}

TEST_F(CoreTest, AnnotateIncrementalReEmbedsExactlyOneFile) {
  // The didChange contract: one edit = one encoder pass, regardless of
  // how many files seeded the τmap.
  Predictor P = makeEditorPredictor(*WB, *Run);
  const CorpusFile *CF = sourceOf(*WB, WB->DS.Test.front().Path);
  ASSERT_NE(CF, nullptr);
  uint64_t Before = P.embedCalls();
  auto Preds = P.annotateIncremental(CF->Path, CF->Source);
  EXPECT_EQ(P.embedCalls(), Before + 1);
  EXPECT_FALSE(Preds.empty());
  // A second edit of the same file is again exactly one pass.
  P.annotateIncremental(CF->Path, CF->Source);
  EXPECT_EQ(P.embedCalls(), Before + 2);
}

TEST_F(CoreTest, FirstAnnotateMatchesPredictSourceDigest) {
  // A file the τmap has never seen: annotateIncremental's answers come
  // from the same query kernel over the same markers as predictSource,
  // so the digests agree — the LSP smoke test's acceptance criterion.
  Predictor P = makeEditorPredictor(*WB, *Run);
  const CorpusFile *CF = sourceOf(*WB, WB->DS.Test.front().Path);
  ASSERT_NE(CF, nullptr);
  uint64_t Expect = predictionDigest(P.predictSource(CF->Path, CF->Source));
  uint64_t Got = predictionDigest(P.annotateIncremental(CF->Path, CF->Source));
  EXPECT_EQ(Got, Expect);
}

TEST_F(CoreTest, RemoveReAddRestoresPredictionsBitIdentically) {
  // The tentpole contract: retiring a train file's markers and re-adding
  // identical content resurrects the tombstoned rows in place, so a
  // probe file's predictions are bit-identical to the pre-edit state.
  Predictor P = makeEditorPredictor(*WB, *Run);
  const std::string &TrainPath = WB->DS.Train.front().Path;
  const CorpusFile *TrainSrc = sourceOf(*WB, TrainPath);
  const CorpusFile *Probe = sourceOf(*WB, WB->DS.Test.front().Path);
  ASSERT_NE(TrainSrc, nullptr);
  ASSERT_NE(Probe, nullptr);

  uint64_t D0 = predictionDigest(P.predictSource(Probe->Path, Probe->Source));
  size_t Size0 = P.typeMap().size();
  ASSERT_EQ(P.typeMap().deadMarkers(), 0u);

  ASSERT_GT(P.removeMarkersForFile(TrainPath), 0u);
  EXPECT_LT(P.typeMap().liveSize(), Size0);
  uint64_t DMid = predictionDigest(P.predictSource(Probe->Path, Probe->Source));
  EXPECT_NE(DMid, D0) << "removing a train file's markers should be visible";

  P.annotateIncremental(TrainPath, TrainSrc->Source);
  EXPECT_EQ(P.typeMap().size(), Size0) << "re-add must resurrect, not append";
  EXPECT_EQ(P.typeMap().deadMarkers(), 0u);
  uint64_t D1 = predictionDigest(P.predictSource(Probe->Path, Probe->Source));
  EXPECT_EQ(D1, D0);
}

TEST_F(CoreTest, ExplicitCompactionEqualsFreshBuild) {
  // The session-close scenario: an artifact's τmap (the survivor files),
  // plus two editor-opened files appended on top. Closing those files
  // and compacting must return the whole serving surface bit-identically
  // to a predictor freshly built over the survivors alone. (The opened
  // files go last so dedup ownership of shared rows stays with the
  // artifact — exactly the order the editor loop produces.)
  ASSERT_GE(WB->DS.Train.size(), 3u);
  std::vector<const FileExample *> Survivors, MapFiles;
  for (size_t I = 2; I != WB->DS.Train.size(); ++I)
    Survivors.push_back(&WB->DS.Train[I]);
  MapFiles = Survivors;
  MapFiles.push_back(&WB->DS.Train[0]);
  MapFiles.push_back(&WB->DS.Train[1]);
  KnnOptions KO;
  KO.CompactRatio = 0; // compact by hand, not by policy
  Predictor P = Predictor::knn(*Run->Model, MapFiles, KO);
  P.setUniverse(*WB->U);
  ASSERT_GT(P.removeMarkersForFile(WB->DS.Train[0].Path), 0u);
  ASSERT_GT(P.removeMarkersForFile(WB->DS.Train[1].Path), 0u);
  ASSERT_TRUE(P.compactMarkers());
  ASSERT_FALSE(P.compactMarkers()) << "second compact must be a no-op";

  Predictor Fresh = Predictor::knn(*Run->Model, Survivors, KO);
  ASSERT_EQ(P.typeMap().size(), Fresh.typeMap().size());
  uint64_t DP = predictionDigest(P.predictAll(WB->DS.Test));
  uint64_t DF = predictionDigest(Fresh.predictAll(WB->DS.Test));
  EXPECT_EQ(DP, DF);
}

TEST_F(CoreTest, CompactRatioPolicyTriggersRebuild) {
  // With an aggressive policy, a single removal pushes the tombstone
  // ratio over the threshold and maybeCompact folds the map eagerly.
  KnnOptions KO;
  KO.CompactRatio = 0.01;
  Predictor P = makeEditorPredictor(*WB, *Run, KO);
  ASSERT_GT(P.removeMarkersForFile(WB->DS.Train.front().Path), 0u);
  EXPECT_EQ(P.typeMap().deadMarkers(), 0u)
      << "policy compaction should have dropped every tombstone";
}

TEST_F(CoreTest, ParallelKnnPredictorMatchesSerial) {
  std::vector<const FileExample *> MapFiles;
  for (const FileExample &F : WB->DS.Train)
    MapFiles.push_back(&F);
  KnnOptions Serial;
  Serial.NumThreads = 1;
  KnnOptions Parallel;
  Parallel.NumThreads = 4;
  Predictor PS = Predictor::knn(*Run->Model, MapFiles, Serial);
  Predictor PP = Predictor::knn(*Run->Model, MapFiles, Parallel);
  ASSERT_EQ(PS.typeMap().size(), PP.typeMap().size());
  auto RS = PS.predictAll(WB->DS.Test);
  auto RP = PP.predictAll(WB->DS.Test);
  ASSERT_EQ(RS.size(), RP.size());
  for (size_t I = 0; I != RS.size(); ++I) {
    EXPECT_EQ(RS[I].top(), RP[I].top());
    EXPECT_EQ(RS[I].confidence(), RP[I].confidence());
  }
}
