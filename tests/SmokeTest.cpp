//===- tests/SmokeTest.cpp - End-to-end pipeline smoke test -----------------===//
//
// Runs the quickstart path at a tiny scale: generate a synthetic corpus,
// build graphs and splits, train one epoch, predict over the test split
// and judge the predictions. Catches pipeline-level breaks that the
// per-module suites cannot see.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include <gtest/gtest.h>

using namespace typilus;

namespace {

Workbench makeTinyWorkbench() {
  CorpusConfig CC;
  CC.NumFiles = 12;
  CC.NumUdts = 8;
  DatasetConfig DC;
  DC.CommonThreshold = 2;
  return Workbench::make(CC, DC);
}

} // namespace

TEST(SmokeTest, QuickstartPipeline) {
  Workbench WB = makeTinyWorkbench();
  ASSERT_FALSE(WB.Files.empty());
  ASSERT_FALSE(WB.DS.Train.empty());
  ASSERT_FALSE(WB.DS.Test.empty());

  // Every file example must carry a graph with at least its AST nodes.
  for (const FileExample &FE : WB.DS.Train)
    EXPECT_GT(FE.Graph.numNodes(), 0u);

  ModelConfig MC;
  MC.HiddenDim = 8;
  MC.TimeSteps = 2;

  TrainOptions TO;
  TO.Epochs = 1;
  TO.BatchFiles = 4;

  ModelRun Run = trainAndEvaluate(WB, MC, TO);
  ASSERT_NE(Run.Model, nullptr);
  ASSERT_FALSE(Run.Preds.empty());
  ASSERT_EQ(Run.Preds.size(), Run.Js.size());

  // One epoch on a tiny corpus proves the pipeline runs, not that it is
  // accurate — only sanity-check the summary's invariants.
  EXPECT_EQ(Run.Summary.Count, Run.Js.size());
  EXPECT_GE(Run.Summary.ExactAll, 0.0);
  EXPECT_LE(Run.Summary.ExactAll, 100.0);
  EXPECT_GE(Run.Summary.Neutral, 0.0);
  EXPECT_LE(Run.Summary.Neutral, 100.0);

  // Every prediction's candidates must be sorted by descending probability.
  for (const PredictionResult &PR : Run.Preds)
    for (size_t I = 1; I < PR.Candidates.size(); ++I)
      EXPECT_GE(PR.Candidates[I - 1].Prob, PR.Candidates[I].Prob);
}

TEST(SmokeTest, CheckerExperimentRuns) {
  Workbench WB = makeTinyWorkbench();

  ModelConfig MC;
  MC.HiddenDim = 8;
  MC.TimeSteps = 2;

  TrainOptions TO;
  TO.Epochs = 1;

  ModelRun Run = trainAndEvaluate(WB, MC, TO);
  std::vector<CheckOutcome> Outcomes =
      runCheckerExperiment(WB, Run.Preds, /*InferLocals=*/false,
                           /*StripProb=*/0.5, /*Seed=*/7);
  for (const CheckOutcome &O : Outcomes) {
    ASSERT_NE(O.Pred, nullptr);
    EXPECT_GE(O.Confidence, 0.0);
  }
}
