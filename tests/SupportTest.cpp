//===- tests/SupportTest.cpp - support/ unit tests --------------------------===//

#include "support/Archive.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/Socket.h"
#include "support/Str.h"
#include "support/Table.h"
#include "support/Zipf.h"

#include <gtest/gtest.h>

#include <map>

#include <sys/socket.h>
#include <unistd.h>

using namespace typilus;

//===----------------------------------------------------------------------===//
// splitSubtokens
//===----------------------------------------------------------------------===//

TEST(StrTest, SplitsCamelCase) {
  EXPECT_EQ(splitSubtokens("numNodes"),
            (std::vector<std::string>{"num", "nodes"}));
}

TEST(StrTest, SplitsPascalCase) {
  EXPECT_EQ(splitSubtokens("TextFileReader"),
            (std::vector<std::string>{"text", "file", "reader"}));
}

TEST(StrTest, SplitsSnakeCase) {
  EXPECT_EQ(splitSubtokens("get_node_count"),
            (std::vector<std::string>{"get", "node", "count"}));
}

TEST(StrTest, SplitsUpperAcronymBeforeLower) {
  EXPECT_EQ(splitSubtokens("HTTPResponse"),
            (std::vector<std::string>{"http", "response"}));
}

TEST(StrTest, SplitsDigitBoundaries) {
  EXPECT_EQ(splitSubtokens("conv2d"),
            (std::vector<std::string>{"conv", "2", "d"}));
}

TEST(StrTest, SplitsMixedStyles) {
  EXPECT_EQ(splitSubtokens("get_HTTPResponse2"),
            (std::vector<std::string>{"get", "http", "response", "2"}));
}

TEST(StrTest, HandlesLeadingTrailingUnderscores) {
  EXPECT_EQ(splitSubtokens("__init__"), (std::vector<std::string>{"init"}));
}

TEST(StrTest, EmptyIdentifierYieldsNothing) {
  EXPECT_TRUE(splitSubtokens("").empty());
  EXPECT_TRUE(splitSubtokens("___").empty());
}

TEST(StrTest, SingleLetterIdentifier) {
  EXPECT_EQ(splitSubtokens("i"), (std::vector<std::string>{"i"}));
}

TEST(StrTest, AllCapsIdentifier) {
  EXPECT_EQ(splitSubtokens("MAX_SIZE"),
            (std::vector<std::string>{"max", "size"}));
}

//===----------------------------------------------------------------------===//
// Misc string helpers
//===----------------------------------------------------------------------===//

TEST(StrTest, JoinAndSplit) {
  std::vector<std::string> Parts{"a", "b", "c"};
  EXPECT_EQ(join(Parts, ", "), "a, b, c");
  EXPECT_EQ(splitChar("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
}

TEST(StrTest, Trim) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StrTest, Strformat) {
  EXPECT_EQ(strformat("%d-%s-%.2f", 7, "ab", 1.5), "7-ab-1.50");
}

TEST(StrTest, IsAllDigits) {
  EXPECT_TRUE(isAllDigits("0123"));
  EXPECT_FALSE(isAllDigits("12a"));
  EXPECT_FALSE(isAllDigits(""));
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForFixedSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, UniformIntStaysInBounds) {
  Rng R(1);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.uniformInt(17), 17u);
}

TEST(RngTest, UniformRealStaysInUnit) {
  Rng R(2);
  for (int I = 0; I != 1000; ++I) {
    double X = R.uniformReal();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.uniformRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, NormalHasRoughlyZeroMeanUnitVar) {
  Rng R(4);
  double Sum = 0, SumSq = 0;
  const int N = 20000;
  for (int I = 0; I != N; ++I) {
    double X = R.normal();
    Sum += X;
    SumSq += X * X;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.05);
  EXPECT_NEAR(SumSq / N, 1.0, 0.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(5);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7};
  auto Sorted = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Sorted);
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng R(6);
  Rng A = R.fork(1), B = R.fork(2);
  EXPECT_NE(A.next(), B.next());
}

//===----------------------------------------------------------------------===//
// ZipfSampler
//===----------------------------------------------------------------------===//

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler Z(100, 1.1);
  double Sum = 0;
  for (size_t I = 0; I != 100; ++I)
    Sum += Z.pmf(I);
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroIsMostLikely) {
  ZipfSampler Z(50, 1.0);
  EXPECT_GT(Z.pmf(0), Z.pmf(1));
  EXPECT_GT(Z.pmf(1), Z.pmf(10));
}

TEST(ZipfTest, EmpiricalSkewMatchesHead) {
  // The head rank should dominate: empirically rank 0 must be drawn more
  // often than rank 5.
  ZipfSampler Z(30, 1.2);
  Rng R(7);
  std::map<size_t, int> Counts;
  for (int I = 0; I != 20000; ++I)
    ++Counts[Z.sample(R)];
  EXPECT_GT(Counts[0], Counts[5]);
  EXPECT_GT(Counts[0], 20000 / 30);
}

TEST(ZipfTest, SamplesStayInRange) {
  ZipfSampler Z(10, 0.9);
  Rng R(8);
  for (int I = 0; I != 5000; ++I)
    EXPECT_LT(Z.sample(R), 10u);
}

//===----------------------------------------------------------------------===//
// TextTable
//===----------------------------------------------------------------------===//

TEST(TableTest, RendersAlignedAscii) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "22"});
  std::string Out = T.renderAscii();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  // The separator line is present.
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(TableTest, NumericRowFormatsPrecision) {
  TextTable T;
  T.addNumericRow("row", {1.234, 5.0}, 2);
  std::string Out = T.renderAscii();
  EXPECT_NE(Out.find("1.23"), std::string::npos);
  EXPECT_NE(Out.find("5.00"), std::string::npos);
}

TEST(TableTest, CsvEscapesCommasAndQuotes) {
  TextTable T;
  T.setHeader({"a", "b"});
  T.addRow({"x,y", "he said \"hi\""});
  std::string Out = T.renderCsv();
  EXPECT_NE(Out.find("\"x,y\""), std::string::npos);
  EXPECT_NE(Out.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, RaggedRowsRenderEmptyCells) {
  TextTable T;
  T.setHeader({"a", "b", "c"});
  T.addRow({"only"});
  EXPECT_EQ(T.numRows(), 1u);
  EXPECT_FALSE(T.renderAscii().empty());
}

//===----------------------------------------------------------------------===//
// ThreadPool / parallelFor (the execution layer)
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <stdexcept>

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  const int64_t N = 10007; // prime, so chunks are uneven
  std::vector<std::atomic<int>> Hits(N);
  for (auto &H : Hits)
    H = 0;
  Pool.parallelFor(0, N, 16, [&](int64_t Lo, int64_t Hi) {
    ASSERT_LE(Lo, Hi);
    for (int64_t I = Lo; I != Hi; ++I)
      ++Hits[static_cast<size_t>(I)];
  });
  for (int64_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[static_cast<size_t>(I)].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, ChunksRespectGrainAndAreContiguous) {
  ThreadPool Pool(4);
  std::mutex M;
  std::vector<std::pair<int64_t, int64_t>> Chunks;
  Pool.parallelFor(100, 200, 10, [&](int64_t Lo, int64_t Hi) {
    std::lock_guard<std::mutex> G(M);
    Chunks.emplace_back(Lo, Hi);
  });
  ASSERT_FALSE(Chunks.empty());
  EXPECT_LE(Chunks.size(), 4u); // capped at the way count
  std::sort(Chunks.begin(), Chunks.end());
  EXPECT_EQ(Chunks.front().first, 100);
  EXPECT_EQ(Chunks.back().second, 200);
  for (size_t I = 1; I != Chunks.size(); ++I)
    EXPECT_EQ(Chunks[I].first, Chunks[I - 1].second) << "gap or overlap";
}

TEST(ThreadPoolTest, EmptyAndSmallRanges) {
  ThreadPool Pool(4);
  int Calls = 0;
  Pool.parallelFor(5, 5, 1, [&](int64_t, int64_t) { ++Calls; });
  EXPECT_EQ(Calls, 0); // empty range never invokes the body
  Pool.parallelFor(3, 7, 100, [&](int64_t Lo, int64_t Hi) {
    ++Calls;
    EXPECT_EQ(Lo, 3);
    EXPECT_EQ(Hi, 7);
  });
  EXPECT_EQ(Calls, 1); // below one grain: a single inline chunk
}

TEST(ThreadPoolTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool Pool(4);
  std::atomic<int64_t> Total{0};
  Pool.parallelFor(0, 8, 1, [&](int64_t Lo, int64_t Hi) {
    for (int64_t I = Lo; I != Hi; ++I) {
      EXPECT_TRUE(ThreadPool::insideParallelRegion());
      // The nested loop must execute inline (single chunk) and complete.
      int NestedCalls = 0;
      Pool.parallelFor(0, 100, 1, [&](int64_t NLo, int64_t NHi) {
        ++NestedCalls;
        Total += NHi - NLo;
      });
      EXPECT_EQ(NestedCalls, 1);
    }
  });
  EXPECT_EQ(Total.load(), 8 * 100);
  EXPECT_FALSE(ThreadPool::insideParallelRegion());
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool Pool(4);
  EXPECT_THROW(
      Pool.parallelFor(0, 1000, 10,
                       [](int64_t Lo, int64_t) {
                         if (Lo == 0)
                           throw std::runtime_error("chunk failed");
                       }),
      std::runtime_error);
  // The pool survives and stays usable after a throwing job.
  std::atomic<int64_t> Sum{0};
  Pool.parallelFor(0, 100, 10, [&](int64_t Lo, int64_t Hi) {
    for (int64_t I = Lo; I != Hi; ++I)
      Sum += I;
  });
  EXPECT_EQ(Sum.load(), 99 * 100 / 2);
  // Serial pools propagate too (inline path).
  ThreadPool Serial(1);
  EXPECT_THROW(Serial.parallelFor(0, 10, 1,
                                  [](int64_t, int64_t) {
                                    throw std::logic_error("inline");
                                  }),
               std::logic_error);
  EXPECT_FALSE(ThreadPool::insideParallelRegion());
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.numThreads(), 1);
  int Calls = 0;
  Pool.parallelFor(0, 100000, 1, [&](int64_t Lo, int64_t Hi) {
    ++Calls;
    EXPECT_EQ(Lo, 0);
    EXPECT_EQ(Hi, 100000);
  });
  EXPECT_EQ(Calls, 1);
}

TEST(ThreadPoolTest, MaxWaysCapsParallelism) {
  ThreadPool Pool(4);
  std::mutex M;
  int Chunks = 0;
  Pool.parallelFor(
      0, 1000, 1,
      [&](int64_t, int64_t) {
        std::lock_guard<std::mutex> G(M);
        ++Chunks;
      },
      /*MaxWays=*/2);
  EXPECT_LE(Chunks, 2);
  EXPECT_GE(Chunks, 1);
}

TEST(ThreadPoolTest, GlobalPoolIsConfigurable) {
  setGlobalNumThreads(2);
  EXPECT_EQ(globalNumThreads(), 2);
  std::atomic<int64_t> Sum{0};
  typilus::parallelFor(0, 256, 16, [&](int64_t Lo, int64_t Hi) {
    for (int64_t I = Lo; I != Hi; ++I)
      Sum += 1;
  });
  EXPECT_EQ(Sum.load(), 256);
  setGlobalNumThreads(0); // back to the hardware default
  EXPECT_GE(globalNumThreads(), 1);
}

//===----------------------------------------------------------------------===//
// Archive (the artifact substrate)
//===----------------------------------------------------------------------===//

TEST(ArchiveTest, Crc32MatchesTheStandardCheckValue) {
  // The canonical CRC-32 check: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(ArchiveTest, ScalarsAndStringsRoundTrip) {
  ArchiveWriter W(7);
  W.beginChunk("test");
  W.writeU8(200);
  W.writeU32(0xDEADBEEFu);
  W.writeU64(0x0123456789ABCDEFull);
  W.writeI32(-42);
  W.writeI64(-1234567890123ll);
  W.writeF32(3.25f);
  W.writeF64(-2.5e-300);
  W.writeStr("hello archive");
  float Xs[3] = {1.f, -0.f, 2.5f};
  W.writeF32Array(Xs, 3);
  W.endChunk();

  ArchiveReader R;
  std::string Err;
  ASSERT_TRUE(R.openBytes(W.bytes(), &Err)) << Err;
  EXPECT_EQ(R.formatVersion(), 7u);
  ASSERT_TRUE(R.hasChunk("test"));
  ArchiveCursor C = R.chunk("test", &Err);
  EXPECT_EQ(C.readU8(), 200);
  EXPECT_EQ(C.readU32(), 0xDEADBEEFu);
  EXPECT_EQ(C.readU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(C.readI32(), -42);
  EXPECT_EQ(C.readI64(), -1234567890123ll);
  EXPECT_EQ(C.readF32(), 3.25f);
  EXPECT_EQ(C.readF64(), -2.5e-300);
  EXPECT_EQ(C.readStr(), "hello archive");
  float Ys[3] = {};
  C.readF32Array(Ys, 3);
  EXPECT_EQ(Ys[0], 1.f);
  EXPECT_EQ(Ys[2], 2.5f);
  EXPECT_TRUE(C.atEnd());
}

TEST(ArchiveTest, ChunksAreLocatedByTagInAnyOrder) {
  ArchiveWriter W(1);
  W.beginChunk("aaaa");
  W.writeU32(1);
  W.endChunk();
  W.beginChunk("bbbb");
  W.writeU32(2);
  W.endChunk();
  ArchiveReader R;
  std::string Err;
  ASSERT_TRUE(R.openBytes(W.bytes(), &Err)) << Err;
  ASSERT_EQ(R.chunks().size(), 2u);
  EXPECT_EQ(R.chunk("bbbb", nullptr).readU32(), 2u);
  EXPECT_EQ(R.chunk("aaaa", nullptr).readU32(), 1u);
}

TEST(ArchiveTest, MissingChunkFailsWithClearError) {
  ArchiveWriter W(1);
  W.beginChunk("aaaa");
  W.endChunk();
  ArchiveReader R;
  std::string Err;
  ASSERT_TRUE(R.openBytes(W.bytes(), &Err)) << Err;
  ArchiveCursor C = R.chunk("nope", &Err);
  EXPECT_FALSE(C.ok());
  EXPECT_NE(Err.find("missing chunk 'nope'"), std::string::npos) << Err;
}

TEST(ArchiveTest, CursorOverrunIsStickyNotUndefined) {
  ArchiveWriter W(1);
  W.beginChunk("tiny");
  W.writeU8(5);
  W.endChunk();
  ArchiveReader R;
  std::string Err;
  ASSERT_TRUE(R.openBytes(W.bytes(), &Err)) << Err;
  ArchiveCursor C = R.chunk("tiny", &Err);
  EXPECT_EQ(C.readU8(), 5);
  EXPECT_EQ(C.readU64(), 0u); // past the end: zero, and...
  EXPECT_FALSE(C.ok());       // ...the cursor is marked failed
  EXPECT_FALSE(C.atEnd());
}

TEST(ArchiveTest, CorruptPayloadIsRejectedByChecksum) {
  ArchiveWriter W(1);
  W.beginChunk("data");
  for (int I = 0; I != 64; ++I)
    W.writeU32(static_cast<uint32_t>(I));
  W.endChunk();
  std::string Bytes = W.bytes();
  Bytes[Bytes.size() / 2] ^= 0x40; // flip one bit mid-payload
  ArchiveReader R;
  std::string Err;
  EXPECT_FALSE(R.openBytes(Bytes, &Err));
  EXPECT_NE(Err.find("checksum mismatch"), std::string::npos) << Err;
}

TEST(ArchiveTest, TruncationIsRejected) {
  ArchiveWriter W(1);
  W.beginChunk("data");
  W.writeU64(99);
  W.endChunk();
  std::string Bytes = W.bytes();
  ArchiveReader R;
  std::string Err;
  EXPECT_FALSE(R.openBytes(Bytes.substr(0, Bytes.size() - 3), &Err));
  EXPECT_NE(Err.find("truncated"), std::string::npos) << Err;
  EXPECT_FALSE(R.openBytes(Bytes.substr(0, 6), &Err));
  EXPECT_NE(Err.find("truncated"), std::string::npos) << Err;
}

TEST(ArchiveTest, ForeignBytesAreRejected) {
  ArchiveReader R;
  std::string Err;
  EXPECT_FALSE(R.openBytes("definitely not an artifact", &Err));
  EXPECT_NE(Err.find("bad magic"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// json
//===----------------------------------------------------------------------===//

TEST(JsonTest, ParsesScalars) {
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse("42", V, &Err)) << Err;
  EXPECT_TRUE(V.isNumber());
  EXPECT_EQ(V.asInt(), 42);
  ASSERT_TRUE(json::parse("-3.5e2", V, &Err)) << Err;
  EXPECT_DOUBLE_EQ(V.asNumber(), -350.0);
  ASSERT_TRUE(json::parse("true", V, &Err));
  EXPECT_TRUE(V.isBool() && V.asBool());
  ASSERT_TRUE(json::parse("null", V, &Err));
  EXPECT_TRUE(V.isNull());
  ASSERT_TRUE(json::parse("\"hi\"", V, &Err));
  EXPECT_EQ(V.asString(), "hi");
}

TEST(JsonTest, ParsesNestedObject) {
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(
      R"({"id": 7, "method": "predict", "opts": {"k": [1, 2, 3]}})", V, &Err))
      << Err;
  EXPECT_EQ(V.getInt("id", -1), 7);
  EXPECT_EQ(V.getString("method", ""), "predict");
  const json::Value *Opts = V.find("opts");
  ASSERT_NE(Opts, nullptr);
  const json::Value *K = Opts->find("k");
  ASSERT_NE(K, nullptr);
  ASSERT_TRUE(K->isArray());
  ASSERT_EQ(K->array().size(), 3u);
  EXPECT_EQ(K->array()[2].asInt(), 3);
}

TEST(JsonTest, StringEscapes) {
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(R"("a\nb\t\"q\"\\\u0041\u00e9")", V, &Err)) << Err;
  EXPECT_EQ(V.asString(), "a\nb\t\"q\"\\A\xc3\xa9");
  // Surrogate pair -> one astral code point.
  ASSERT_TRUE(json::parse(R"("\ud83d\ude00")", V, &Err)) << Err;
  EXPECT_EQ(V.asString(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, LoneSurrogatesBecomeReplacementWithoutSwallowing) {
  json::Value V;
  std::string Err;
  // Unpaired high surrogate followed by an ordinary escape: U+FFFD, then
  // the 'A' must survive.
  ASSERT_TRUE(json::parse(R"("\ud83dA")", V, &Err)) << Err;
  EXPECT_EQ(V.asString(), "\xef\xbf\xbd"
                          "A");
  // ...including when what follows is itself a \u escape (it must be
  // decoded on its own, not consumed as a bogus low half).
  ASSERT_TRUE(json::parse("\"\\ud83d\\u0041B\"", V, &Err)) << Err;
  EXPECT_EQ(V.asString(), "\xef\xbf\xbd"
                          "AB");
  // Two high surrogates in a row: two replacement chars.
  ASSERT_TRUE(json::parse(R"("\ud83d\ud83dx")", V, &Err)) << Err;
  EXPECT_EQ(V.asString(), "\xef\xbf\xbd\xef\xbf\xbd"
                          "x");
  // Lone low surrogate.
  ASSERT_TRUE(json::parse(R"("\ude00x")", V, &Err)) << Err;
  EXPECT_EQ(V.asString(), "\xef\xbf\xbd"
                          "x");
}

TEST(JsonTest, QuotedRoundTripsThroughParse) {
  const std::string Raw = "line1\nline2\t\"quoted\" \\slash\x01 end";
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(json::quoted(Raw), V, &Err)) << Err;
  EXPECT_EQ(V.asString(), Raw);
}

TEST(JsonTest, RejectsMalformedInput) {
  json::Value V;
  std::string Err;
  for (const char *Bad :
       {"", "{", "{\"a\":}", "[1,]", "{\"a\" 1}", "tru", "\"unterminated",
        "01", "1.", "nan", "{\"a\":1} trailing", "\"bad \x01 ctrl\""}) {
    EXPECT_FALSE(json::parse(Bad, V, &Err)) << "accepted: " << Bad;
    EXPECT_FALSE(Err.empty());
  }
}

TEST(JsonTest, RejectsTooDeepNesting) {
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  json::Value V;
  std::string Err;
  EXPECT_FALSE(json::parse(Deep, V, &Err, /*MaxDepth=*/64));
  EXPECT_NE(Err.find("deep"), std::string::npos) << Err;
  EXPECT_TRUE(json::parse(Deep, V, &Err, /*MaxDepth=*/128)) << Err;
}

TEST(JsonTest, NumberFormattingRoundTrips) {
  std::string Out;
  json::appendNumber(Out, 0.1);
  json::Value V;
  ASSERT_TRUE(json::parse(Out, V, nullptr));
  EXPECT_EQ(V.asNumber(), 0.1); // %.17g is bit-exact for doubles
}

//===----------------------------------------------------------------------===//
// LineReader (over a socketpair, as the daemon uses it)
//===----------------------------------------------------------------------===//

namespace {

struct SocketPair {
  int A = -1, B = -1;
  SocketPair() {
    int Fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    A = Fds[0];
    B = Fds[1];
  }
  ~SocketPair() {
    if (A >= 0)
      close(A);
    if (B >= 0)
      close(B);
  }
  void closeA() {
    close(A);
    A = -1;
  }
};

} // namespace

TEST(LineReaderTest, SplitsLinesAcrossReads) {
  SocketPair SP;
  ASSERT_TRUE(writeAll(SP.A, "first\nsec"));
  ASSERT_TRUE(writeAll(SP.A, "ond\r\nthird\n"));
  SP.closeA();
  LineReader R(SP.B, 1024);
  std::string L;
  ASSERT_EQ(R.next(L), LineReader::Status::Line);
  EXPECT_EQ(L, "first");
  ASSERT_EQ(R.next(L), LineReader::Status::Line);
  EXPECT_EQ(L, "second"); // \r\n normalized
  ASSERT_EQ(R.next(L), LineReader::Status::Line);
  EXPECT_EQ(L, "third");
  EXPECT_EQ(R.next(L), LineReader::Status::Eof);
}

TEST(LineReaderTest, OversizedLineIsDiscardedAndReaderRecovers) {
  SocketPair SP;
  std::string Huge(5000, 'x');
  ASSERT_TRUE(writeAll(SP.A, Huge + "\nok\n"));
  SP.closeA();
  LineReader R(SP.B, 64);
  std::string L;
  ASSERT_EQ(R.next(L), LineReader::Status::TooLong);
  ASSERT_EQ(R.next(L), LineReader::Status::Line);
  EXPECT_EQ(L, "ok");
  EXPECT_EQ(R.next(L), LineReader::Status::Eof);
}

TEST(LineReaderTest, MidLineDisconnectIsEof) {
  SocketPair SP;
  ASSERT_TRUE(writeAll(SP.A, "complete\n{\"id\":1,\"method\":"));
  SP.closeA(); // client dies mid-request
  LineReader R(SP.B, 1024);
  std::string L;
  ASSERT_EQ(R.next(L), LineReader::Status::Line);
  EXPECT_EQ(L, "complete");
  EXPECT_EQ(R.next(L), LineReader::Status::Eof);
  EXPECT_EQ(R.next(L), LineReader::Status::Eof); // stays Eof
}

TEST(LineReaderTest, OversizedLineTruncatedByEofReportsOnce) {
  SocketPair SP;
  ASSERT_TRUE(writeAll(SP.A, std::string(5000, 'y'))); // no newline ever
  SP.closeA();
  LineReader R(SP.B, 64);
  std::string L;
  EXPECT_EQ(R.next(L), LineReader::Status::TooLong);
  EXPECT_EQ(R.next(L), LineReader::Status::Eof);
}
