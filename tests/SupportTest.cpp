//===- tests/SupportTest.cpp - support/ unit tests --------------------------===//

#include "support/Rng.h"
#include "support/Str.h"
#include "support/Table.h"
#include "support/Zipf.h"

#include <gtest/gtest.h>

#include <map>

using namespace typilus;

//===----------------------------------------------------------------------===//
// splitSubtokens
//===----------------------------------------------------------------------===//

TEST(StrTest, SplitsCamelCase) {
  EXPECT_EQ(splitSubtokens("numNodes"),
            (std::vector<std::string>{"num", "nodes"}));
}

TEST(StrTest, SplitsPascalCase) {
  EXPECT_EQ(splitSubtokens("TextFileReader"),
            (std::vector<std::string>{"text", "file", "reader"}));
}

TEST(StrTest, SplitsSnakeCase) {
  EXPECT_EQ(splitSubtokens("get_node_count"),
            (std::vector<std::string>{"get", "node", "count"}));
}

TEST(StrTest, SplitsUpperAcronymBeforeLower) {
  EXPECT_EQ(splitSubtokens("HTTPResponse"),
            (std::vector<std::string>{"http", "response"}));
}

TEST(StrTest, SplitsDigitBoundaries) {
  EXPECT_EQ(splitSubtokens("conv2d"),
            (std::vector<std::string>{"conv", "2", "d"}));
}

TEST(StrTest, SplitsMixedStyles) {
  EXPECT_EQ(splitSubtokens("get_HTTPResponse2"),
            (std::vector<std::string>{"get", "http", "response", "2"}));
}

TEST(StrTest, HandlesLeadingTrailingUnderscores) {
  EXPECT_EQ(splitSubtokens("__init__"), (std::vector<std::string>{"init"}));
}

TEST(StrTest, EmptyIdentifierYieldsNothing) {
  EXPECT_TRUE(splitSubtokens("").empty());
  EXPECT_TRUE(splitSubtokens("___").empty());
}

TEST(StrTest, SingleLetterIdentifier) {
  EXPECT_EQ(splitSubtokens("i"), (std::vector<std::string>{"i"}));
}

TEST(StrTest, AllCapsIdentifier) {
  EXPECT_EQ(splitSubtokens("MAX_SIZE"),
            (std::vector<std::string>{"max", "size"}));
}

//===----------------------------------------------------------------------===//
// Misc string helpers
//===----------------------------------------------------------------------===//

TEST(StrTest, JoinAndSplit) {
  std::vector<std::string> Parts{"a", "b", "c"};
  EXPECT_EQ(join(Parts, ", "), "a, b, c");
  EXPECT_EQ(splitChar("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
}

TEST(StrTest, Trim) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StrTest, Strformat) {
  EXPECT_EQ(strformat("%d-%s-%.2f", 7, "ab", 1.5), "7-ab-1.50");
}

TEST(StrTest, IsAllDigits) {
  EXPECT_TRUE(isAllDigits("0123"));
  EXPECT_FALSE(isAllDigits("12a"));
  EXPECT_FALSE(isAllDigits(""));
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForFixedSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, UniformIntStaysInBounds) {
  Rng R(1);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.uniformInt(17), 17u);
}

TEST(RngTest, UniformRealStaysInUnit) {
  Rng R(2);
  for (int I = 0; I != 1000; ++I) {
    double X = R.uniformReal();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.uniformRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, NormalHasRoughlyZeroMeanUnitVar) {
  Rng R(4);
  double Sum = 0, SumSq = 0;
  const int N = 20000;
  for (int I = 0; I != N; ++I) {
    double X = R.normal();
    Sum += X;
    SumSq += X * X;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.05);
  EXPECT_NEAR(SumSq / N, 1.0, 0.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(5);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7};
  auto Sorted = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Sorted);
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng R(6);
  Rng A = R.fork(1), B = R.fork(2);
  EXPECT_NE(A.next(), B.next());
}

//===----------------------------------------------------------------------===//
// ZipfSampler
//===----------------------------------------------------------------------===//

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler Z(100, 1.1);
  double Sum = 0;
  for (size_t I = 0; I != 100; ++I)
    Sum += Z.pmf(I);
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroIsMostLikely) {
  ZipfSampler Z(50, 1.0);
  EXPECT_GT(Z.pmf(0), Z.pmf(1));
  EXPECT_GT(Z.pmf(1), Z.pmf(10));
}

TEST(ZipfTest, EmpiricalSkewMatchesHead) {
  // The head rank should dominate: empirically rank 0 must be drawn more
  // often than rank 5.
  ZipfSampler Z(30, 1.2);
  Rng R(7);
  std::map<size_t, int> Counts;
  for (int I = 0; I != 20000; ++I)
    ++Counts[Z.sample(R)];
  EXPECT_GT(Counts[0], Counts[5]);
  EXPECT_GT(Counts[0], 20000 / 30);
}

TEST(ZipfTest, SamplesStayInRange) {
  ZipfSampler Z(10, 0.9);
  Rng R(8);
  for (int I = 0; I != 5000; ++I)
    EXPECT_LT(Z.sample(R), 10u);
}

//===----------------------------------------------------------------------===//
// TextTable
//===----------------------------------------------------------------------===//

TEST(TableTest, RendersAlignedAscii) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "22"});
  std::string Out = T.renderAscii();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  // The separator line is present.
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(TableTest, NumericRowFormatsPrecision) {
  TextTable T;
  T.addNumericRow("row", {1.234, 5.0}, 2);
  std::string Out = T.renderAscii();
  EXPECT_NE(Out.find("1.23"), std::string::npos);
  EXPECT_NE(Out.find("5.00"), std::string::npos);
}

TEST(TableTest, CsvEscapesCommasAndQuotes) {
  TextTable T;
  T.setHeader({"a", "b"});
  T.addRow({"x,y", "he said \"hi\""});
  std::string Out = T.renderCsv();
  EXPECT_NE(Out.find("\"x,y\""), std::string::npos);
  EXPECT_NE(Out.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, RaggedRowsRenderEmptyCells) {
  TextTable T;
  T.setHeader({"a", "b", "c"});
  T.addRow({"only"});
  EXPECT_EQ(T.numRows(), 1u);
  EXPECT_FALSE(T.renderAscii().empty());
}
