//===- tests/NnTest.cpp - autograd gradient checks & layer tests -------------===//
//
// Property tests: every autograd op is validated against central finite
// differences; layers and the optimizer are checked on toy problems.
//
//===----------------------------------------------------------------------===//

#include "nn/Autograd.h"
#include "nn/Layers.h"
#include "nn/Optim.h"
#include "nn/Simd.h"
#include "support/Float16.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <vector>

using namespace typilus;
using namespace typilus::nn;

namespace {

/// Pins the kernel dispatch to one table for a test's lifetime and
/// restores the startup selection afterwards.
struct SimdGuard {
  explicit SimdGuard(bool Enabled) : Was(simd::simdEnabled()) {
    simd::setSimdEnabled(Enabled);
  }
  ~SimdGuard() { simd::setSimdEnabled(Was); }
  bool Was;
};

/// Fills \p T with values away from kinks (|x| >= 0.1) so relu/abs/max
/// gradients are stable under finite differences.
Tensor randomAwayFromKinks(int64_t Rows, int64_t Cols, Rng &R) {
  Tensor T = Cols > 0 ? Tensor(Rows, Cols) : Tensor(Rows);
  for (int64_t I = 0; I != T.numel(); ++I) {
    float V = static_cast<float>(R.normal());
    if (std::fabs(V) < 0.1f)
      V = V < 0 ? V - 0.15f : V + 0.15f;
    T[I] = V;
  }
  return T;
}

/// Checks d(F(P))/dP against central differences for every coordinate.
void checkGrad(const std::function<Value(Value)> &F, const Tensor &T0,
               float RelTol = 5e-2f) {
  Value P = Value::param(T0);
  Value Loss = F(P);
  ASSERT_EQ(Loss.val().numel(), 1);
  backward(Loss);
  Tensor Analytic = P.grad();

  const float Eps = 1e-2f;
  for (int64_t I = 0; I != T0.numel(); ++I) {
    Tensor TP = T0, TM = T0;
    TP[I] += Eps;
    TM[I] -= Eps;
    float LP = F(Value::param(TP)).val()[0];
    float LM = F(Value::param(TM)).val()[0];
    float Numeric = (LP - LM) / (2 * Eps);
    float Tol = RelTol * std::max(1.f, std::fabs(Numeric));
    EXPECT_NEAR(Analytic[I], Numeric, Tol)
        << "coordinate " << I << " of " << T0.numel();
  }
}

/// Reduces an arbitrary-shaped output to a scalar through a fixed random
/// projection so gradcheck exercises all coordinates.
std::function<Value(Value)> scalarized(std::function<Value(Value)> F,
                                       const Tensor &ProbeShape, Rng &R) {
  Value Out = F(Value::param(ProbeShape));
  Tensor W = Tensor::zerosLike(Out.val());
  for (int64_t I = 0; I != W.numel(); ++I)
    W[I] = static_cast<float>(R.normal());
  return [F = std::move(F), W = std::move(W)](Value P) {
    return meanAll(mul(F(P), Value::constant(W)));
  };
}

} // namespace

//===----------------------------------------------------------------------===//
// Elementwise and linear-algebra ops
//===----------------------------------------------------------------------===//

TEST(GradCheck, AddSameShape) {
  Rng R(1);
  Tensor A = randomAwayFromKinks(3, 4, R);
  Tensor B = randomAwayFromKinks(3, 4, R);
  checkGrad(scalarized(
                [&](Value P) { return add(P, Value::constant(B)); }, A, R),
            A);
  // And through the second operand.
  checkGrad(scalarized(
                [&](Value P) { return add(Value::constant(A), P); }, B, R),
            B);
}

TEST(GradCheck, AddBiasBroadcast) {
  Rng R(2);
  Tensor A = randomAwayFromKinks(3, 4, R);
  Tensor Bias = randomAwayFromKinks(4, 0, R);
  checkGrad(scalarized(
                [&](Value P) { return add(Value::constant(A), P); }, Bias, R),
            Bias);
}

TEST(GradCheck, SubAndMul) {
  Rng R(3);
  Tensor A = randomAwayFromKinks(2, 5, R);
  Tensor B = randomAwayFromKinks(2, 5, R);
  checkGrad(scalarized(
                [&](Value P) { return sub(P, Value::constant(B)); }, A, R),
            A);
  checkGrad(scalarized(
                [&](Value P) { return mul(P, Value::constant(B)); }, A, R),
            A);
  checkGrad(scalarized(
                [&](Value P) { return mul(Value::constant(A), P); }, B, R),
            B);
}

TEST(GradCheck, Scale) {
  Rng R(4);
  Tensor A = randomAwayFromKinks(3, 3, R);
  checkGrad(scalarized([](Value P) { return scale(P, -2.5f); }, A, R), A);
}

TEST(GradCheck, MatmulBothSides) {
  Rng R(5);
  Tensor A = randomAwayFromKinks(3, 4, R);
  Tensor B = randomAwayFromKinks(4, 2, R);
  checkGrad(scalarized(
                [&](Value P) { return matmul(P, Value::constant(B)); }, A, R),
            A);
  checkGrad(scalarized(
                [&](Value P) { return matmul(Value::constant(A), P); }, B, R),
            B);
}

TEST(GradCheck, MatmulNTBothSides) {
  Rng R(6);
  Tensor A = randomAwayFromKinks(3, 4, R);
  Tensor B = randomAwayFromKinks(5, 4, R); // used transposed
  checkGrad(scalarized(
                [&](Value P) { return matmulNT(P, Value::constant(B)); }, A,
                R),
            A);
  checkGrad(scalarized(
                [&](Value P) { return matmulNT(Value::constant(A), P); }, B,
                R),
            B);
}

TEST(GradCheck, Activations) {
  Rng R(7);
  Tensor A = randomAwayFromKinks(4, 3, R);
  checkGrad(scalarized([](Value P) { return sigmoid(P); }, A, R), A);
  checkGrad(scalarized([](Value P) { return tanhOp(P); }, A, R), A);
  checkGrad(scalarized([](Value P) { return relu(P); }, A, R), A);
}

TEST(GradCheck, ConcatCols) {
  Rng R(8);
  Tensor A = randomAwayFromKinks(3, 2, R);
  Tensor B = randomAwayFromKinks(3, 4, R);
  checkGrad(scalarized(
                [&](Value P) { return concatCols(P, Value::constant(B)); }, A,
                R),
            A);
  checkGrad(scalarized(
                [&](Value P) { return concatCols(Value::constant(A), P); }, B,
                R),
            B);
}

//===----------------------------------------------------------------------===//
// Gather / scatter ops
//===----------------------------------------------------------------------===//

TEST(GradCheck, GatherRowsWithRepeats) {
  Rng R(9);
  Tensor A = randomAwayFromKinks(4, 3, R);
  std::vector<int> Idx{2, 0, 2, 3, 2};
  checkGrad(scalarized([&](Value P) { return gatherRows(P, Idx); }, A, R), A);
}

TEST(GradCheck, ScatterMax) {
  Rng R(10);
  Tensor Msgs = randomAwayFromKinks(6, 3, R);
  std::vector<int> Dst{0, 1, 1, 2, 0, 2};
  checkGrad(scalarized(
                [&](Value P) { return scatterMax(P, Dst, 4); }, Msgs, R),
            Msgs);
}

TEST(GradCheck, ScatterMean) {
  Rng R(11);
  Tensor Msgs = randomAwayFromKinks(5, 2, R);
  std::vector<int> Dst{0, 0, 2, 2, 2};
  checkGrad(scalarized(
                [&](Value P) { return scatterMean(P, Dst, 3); }, Msgs, R),
            Msgs);
}

TEST(GradCheck, IndexAddRows) {
  Rng R(12);
  Tensor Base = randomAwayFromKinks(4, 3, R);
  Tensor Rows = randomAwayFromKinks(3, 3, R);
  std::vector<int> Idx{1, 3, 1};
  checkGrad(scalarized(
                [&](Value P) {
                  return indexAddRows(P, Idx, Value::constant(Rows));
                },
                Base, R),
            Base);
  checkGrad(scalarized(
                [&](Value P) {
                  return indexAddRows(Value::constant(Base), Idx, P);
                },
                Rows, R),
            Rows);
}

TEST(GradCheck, ReduceMaxRows) {
  Rng R(13);
  Tensor A = randomAwayFromKinks(5, 4, R);
  checkGrad(scalarized([](Value P) { return reduceMaxRows(P); }, A, R), A);
}

TEST(GradCheck, MeanAll) {
  Rng R(14);
  Tensor A = randomAwayFromKinks(3, 7, R);
  checkGrad([](Value P) { return meanAll(P); }, A);
}

//===----------------------------------------------------------------------===//
// Losses
//===----------------------------------------------------------------------===//

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng R(15);
  Tensor Logits = randomAwayFromKinks(4, 3, R);
  std::vector<int> Labels{0, 2, -1, 1}; // one ignored row
  checkGrad([&](Value P) { return softmaxCrossEntropy(P, Labels); }, Logits);
}

TEST(GradCheck, PairwiseL1) {
  Rng R(16);
  Tensor A = randomAwayFromKinks(4, 3, R);
  checkGrad(scalarized([](Value P) { return pairwiseL1(P); }, A, R), A,
            8e-2f);
}

TEST(GradCheck, SpaceLossThroughEmbeddings) {
  Rng R(17);
  Tensor A = randomAwayFromKinks(6, 3, R);
  std::vector<int> Types{0, 0, 1, 1, 2, 0};
  checkGrad(
      [&](Value P) { return spaceLoss(pairwiseL1(P), Types, 0.5f); }, A,
      8e-2f);
}

TEST(SpaceLossTest, ZeroWhenNoValidSamples) {
  // A single labeled point has no same-type partner: loss must be 0.
  Tensor A(2, 3);
  A.fill(1.f);
  A.at(1, 0) = 3.f;
  std::vector<int> Types{0, 1};
  Value L = spaceLoss(pairwiseL1(Value::param(A)), Types, 1.f);
  EXPECT_FLOAT_EQ(L.val()[0], 0.f);
}

TEST(SpaceLossTest, PullsSameTypePointsTogether) {
  // Two same-type points far apart, one different point nearby: the loss
  // must be positive (P+ non-empty with larger distance than d-min - m).
  Tensor A(3, 2);
  A.at(0, 0) = 0.f;
  A.at(1, 0) = 10.f; // same type as row 0, far away
  A.at(2, 0) = 1.f;  // different type, close to row 0
  std::vector<int> Types{0, 0, 1};
  Value L = spaceLoss(pairwiseL1(Value::constant(A)), Types, 1.f);
  EXPECT_GT(L.val()[0], 0.f);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng R(18);
  Tensor Logits = randomAwayFromKinks(5, 7, R);
  Tensor P = softmaxRows(Logits);
  for (int64_t I = 0; I != P.rows(); ++I) {
    float Sum = 0;
    for (int64_t J = 0; J != P.cols(); ++J) {
      Sum += P.at(I, J);
      EXPECT_GE(P.at(I, J), 0.f);
    }
    EXPECT_NEAR(Sum, 1.f, 1e-5f);
  }
}

//===----------------------------------------------------------------------===//
// Layers
//===----------------------------------------------------------------------===//

TEST(GradCheck, GruCellStep) {
  Rng R(19);
  ParamSet PS;
  GruCell Cell(3, 4, PS, R);
  Tensor X0 = randomAwayFromKinks(2, 3, R);
  Tensor H0 = randomAwayFromKinks(2, 4, R);
  checkGrad(scalarized(
                [&](Value P) {
                  return Cell.step(P, Value::constant(H0));
                },
                X0, R),
            X0, 8e-2f);
  checkGrad(scalarized(
                [&](Value P) {
                  return Cell.step(Value::constant(X0), P);
                },
                H0, R),
            H0, 8e-2f);
}

TEST(LayersTest, LinearShapes) {
  Rng R(20);
  ParamSet PS;
  Linear L(5, 3, PS, R);
  Value Out = L.apply(Value::constant(Tensor(4, 5)));
  EXPECT_EQ(Out.val().rows(), 4);
  EXPECT_EQ(Out.val().cols(), 3);
  EXPECT_EQ(PS.params().size(), 2u);
}

TEST(LayersTest, EmbeddingLooksUpRows) {
  Rng R(21);
  ParamSet PS;
  Embedding E(10, 4, PS, R);
  Value Out = E.rows({3, 3, 7});
  EXPECT_EQ(Out.val().rows(), 3);
  for (int64_t J = 0; J != 4; ++J)
    EXPECT_FLOAT_EQ(Out.val().at(0, J), Out.val().at(1, J));
}

TEST(LayersTest, CharCnnEncodesWords) {
  Rng R(22);
  ParamSet PS;
  CharCnn C(8, 16, PS, R);
  Value A = C.encode("loss");
  Value B = C.encode("");
  EXPECT_EQ(A.val().rows(), 1);
  EXPECT_EQ(A.val().cols(), 16);
  EXPECT_EQ(B.val().cols(), 16);
  for (int64_t I = 0; I != A.val().numel(); ++I)
    EXPECT_TRUE(std::isfinite(A.val()[I]));
}

TEST(LayersTest, CharCnnGradientsFlow) {
  Rng R(23);
  ParamSet PS;
  CharCnn C(4, 6, PS, R);
  Value Loss = meanAll(C.encode("abc"));
  backward(Loss);
  // At least one parameter received gradient signal.
  double Total = 0;
  for (const Value &P : PS.params()) {
    const Tensor &G = P.grad();
    for (int64_t I = 0; I != G.numel(); ++I)
      Total += std::fabs(G[I]);
  }
  EXPECT_GT(Total, 0.0);
}

//===----------------------------------------------------------------------===//
// Optimizer
//===----------------------------------------------------------------------===//

TEST(AdamTest, SolvesLeastSquares) {
  Rng R(24);
  ParamSet PS;
  // Fit y = x * Wtrue with a linear model.
  Tensor WTrue = Tensor::randn(3, 2, R, 1.f);
  Tensor X = Tensor::randn(16, 3, R, 1.f);
  Tensor Y(16, 2);
  gemm(false, false, 16, 2, 3, 1.f, X.data(), WTrue.data(), 0.f, Y.data());

  Value W = PS.make(Tensor::randn(3, 2, R, 0.5f));
  Adam Opt(PS, 5e-2f);
  float FirstLoss = -1, LastLoss = -1;
  for (int Step = 0; Step != 300; ++Step) {
    Value Pred = matmul(Value::constant(X), W);
    Value Diff = sub(Pred, Value::constant(Y));
    Value Loss = meanAll(mul(Diff, Diff));
    if (Step == 0)
      FirstLoss = Loss.val()[0];
    LastLoss = Loss.val()[0];
    PS.zeroGrads();
    backward(Loss);
    Opt.step();
  }
  EXPECT_LT(LastLoss, FirstLoss * 0.01f);
}

TEST(AdamTest, GradientsAreZeroedAfterStep) {
  Rng R(25);
  ParamSet PS;
  Value W = PS.make(Tensor::randn(2, 2, R, 1.f));
  Adam Opt(PS, 1e-3f);
  Value Loss = meanAll(mul(W, W));
  backward(Loss);
  Opt.step();
  const Tensor &G = W.grad();
  for (int64_t I = 0; I != G.numel(); ++I)
    EXPECT_FLOAT_EQ(G[I], 0.f);
}

TEST(AdamTest, ClippingBoundsUpdateMagnitude) {
  Rng R(26);
  ParamSet PS;
  Value W = PS.make(Tensor::randn(4, 4, R, 1.f));
  Tensor Before = W.val();
  Adam Opt(PS, 1e-1f, /*ClipNorm=*/1e-3f);
  Value Loss = scale(meanAll(mul(W, W)), 1e6f); // huge gradients
  backward(Loss);
  Opt.step();
  // Adam's per-coordinate step is bounded by ~Lr regardless, but clipping
  // must additionally have kept things finite.
  for (int64_t I = 0; I != W.val().numel(); ++I) {
    EXPECT_TRUE(std::isfinite(W.val()[I]));
    EXPECT_NEAR(W.val()[I], Before[I], 0.2f);
  }
}

//===----------------------------------------------------------------------===//
// Backward-pass plumbing
//===----------------------------------------------------------------------===//

TEST(BackwardTest, DiamondDependencyAccumulates) {
  // L = mean((P + P) * P) — P participates through multiple paths.
  Tensor T(2, 2);
  T.at(0, 0) = 1;
  T.at(0, 1) = 2;
  T.at(1, 0) = 3;
  T.at(1, 1) = 4;
  checkGrad([](Value P) { return meanAll(mul(add(P, P), P)); }, T);
}

TEST(BackwardTest, ConstantsReceiveNoGradient) {
  Value C = Value::constant(Tensor(2, 2));
  Rng R(27);
  Value P = Value::param(Tensor::randn(2, 2, R, 1.f));
  Value L = meanAll(mul(add(C, P), P));
  backward(L);
  EXPECT_FALSE(C.needsGrad());
}

TEST(BackwardTest, DeepChainStaysFinite) {
  // A 200-step chain (like an unrolled RNN) must not blow the stack or
  // produce NaNs thanks to iterative topo sort.
  Rng R(28);
  Value X = Value::param(Tensor::randn(1, 8, R, 0.1f));
  Value H = X;
  for (int I = 0; I != 200; ++I)
    H = tanhOp(scale(H, 1.01f));
  Value L = meanAll(H);
  backward(L);
  const Tensor &G = X.grad();
  for (int64_t I = 0; I != G.numel(); ++I)
    EXPECT_TRUE(std::isfinite(G[I]));
}

TEST(GradCheck, ConcatRows) {
  Rng R(29);
  Tensor A = randomAwayFromKinks(2, 3, R);
  Tensor B = randomAwayFromKinks(3, 3, R);
  checkGrad(scalarized(
                [&](Value P) {
                  return concatRows({P, Value::constant(B)});
                },
                A, R),
            A);
  checkGrad(scalarized(
                [&](Value P) {
                  return concatRows({Value::constant(A), P});
                },
                B, R),
            B);
}

TEST(GradCheck, AttentionPoolBothInputs) {
  Rng R(30);
  Tensor S = randomAwayFromKinks(4, 1, R);
  Tensor Rows = randomAwayFromKinks(4, 3, R);
  checkGrad(scalarized(
                [&](Value P) {
                  return attentionPool(P, Value::constant(Rows));
                },
                S, R),
            S, 8e-2f);
  checkGrad(scalarized(
                [&](Value P) {
                  return attentionPool(Value::constant(S), P);
                },
                Rows, R),
            Rows, 8e-2f);
}

TEST(AttentionPoolTest, UniformScoresAverageRows) {
  Tensor S(3, 1); // all-equal scores -> plain mean
  Tensor Rows(3, 2);
  Rows.at(0, 0) = 3.f;
  Rows.at(1, 0) = 6.f;
  Rows.at(2, 0) = 9.f;
  Value Out = attentionPool(Value::constant(S), Value::constant(Rows));
  EXPECT_NEAR(Out.val().at(0, 0), 6.f, 1e-5f);
}

//===----------------------------------------------------------------------===//
// Kernel determinism: the blocked/parallel kernels must be bit-identical
// to naive references for every thread count (the execution layer's
// core guarantee; see docs/ARCHITECTURE.md).
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

namespace {

/// The seed's naive GEMM, kept verbatim as the bit-level reference.
void naiveGemm(bool TransA, bool TransB, int64_t M, int64_t N, int64_t K,
               float Alpha, const float *A, const float *B, float Beta,
               float *C) {
  if (Beta == 0.f)
    std::fill(C, C + M * N, 0.f);
  else if (Beta != 1.f)
    for (int64_t I = 0; I != M * N; ++I)
      C[I] *= Beta;
  const int64_t Lda = TransA ? M : K;
  const int64_t Ldb = TransB ? K : N;
  for (int64_t I = 0; I != M; ++I)
    for (int64_t J = 0; J != N; ++J) {
      // Per-element k-ascending accumulation in the i-k-j kernel's order.
      for (int64_t P = 0; P != K; ++P) {
        float AV = TransA ? A[P * Lda + I] : A[I * Lda + P];
        float BV = TransB ? B[J * Ldb + P] : B[P * Ldb + J];
        if (TransB)
          continue; // dot-product cases handled below
        float AIP = Alpha * AV;
        if (AIP == 0.f)
          continue;
        C[I * N + J] += AIP * BV;
      }
      if (TransB) {
        float Sum = 0.f;
        for (int64_t P = 0; P != K; ++P) {
          float AV = TransA ? A[P * Lda + I] : A[I * Lda + P];
          Sum += AV * B[J * Ldb + P];
        }
        C[I * N + J] += Alpha * Sum;
      }
    }
}

Tensor randomTensor(int64_t Rows, int64_t Cols, Rng &R) {
  Tensor T(Rows, Cols);
  for (int64_t I = 0; I != T.numel(); ++I)
    T[I] = static_cast<float>(R.normal());
  return T;
}

} // namespace

TEST(KernelTest, GemmBitIdenticalToNaiveAllTransposes) {
  // Bit-identity to the naive kernel is the *scalar reference's* contract
  // (the SIMD tables reassociate through FMA and are tolerance-tested by
  // SimdTest below); pin the scalar table for this test.
  SimdGuard Scalar(false);
  Rng R(41);
  const int64_t M = 37, N = 29, K = 53; // odd sizes stress the tiling
  for (bool TA : {false, true})
    for (bool TB : {false, true}) {
      Tensor A = TA ? randomTensor(K, M, R) : randomTensor(M, K, R);
      Tensor B = TB ? randomTensor(N, K, R) : randomTensor(K, N, R);
      Tensor Want(M, N), Got(M, N);
      for (int64_t I = 0; I != Want.numel(); ++I)
        Want[I] = Got[I] = static_cast<float>(R.normal());
      naiveGemm(TA, TB, M, N, K, 1.5f, A.data(), B.data(), 1.f, Want.data());
      for (int Threads : {1, 4}) {
        Tensor Out = Got;
        setGlobalNumThreads(Threads);
        gemm(TA, TB, M, N, K, 1.5f, A.data(), B.data(), 1.f, Out.data());
        for (int64_t I = 0; I != Out.numel(); ++I)
          EXPECT_EQ(Out[I], Want[I])
              << "TA=" << TA << " TB=" << TB << " threads=" << Threads
              << " elem " << I;
      }
    }
  setGlobalNumThreads(0);
}

TEST(KernelTest, MatmulForwardBackwardBitIdenticalAcrossThreads) {
  // Large enough to cross the parallel-dispatch thresholds.
  Rng R(42);
  Tensor A0 = randomTensor(96, 64, R);
  Tensor B0 = randomTensor(64, 80, R);
  Tensor BT0 = randomTensor(80, 64, R); // for matmulNT
  auto Run = [&](int Threads) {
    setGlobalNumThreads(Threads);
    Value A = Value::param(A0), B = Value::param(B0), BT = Value::param(BT0);
    Value Out = matmul(A, B);
    Value OutNT = matmulNT(A, BT);
    Value Loss = meanAll(add(mul(Out, Out), mul(OutNT, OutNT)));
    backward(Loss);
    return std::make_tuple(Out.val(), OutNT.val(), A.grad(), B.grad(),
                           BT.grad(), Loss.val()[0]);
  };
  auto Serial = Run(1);
  auto Parallel = Run(4);
  setGlobalNumThreads(0);
  EXPECT_EQ(std::get<5>(Serial), std::get<5>(Parallel)) << "loss diverged";
  auto ExpectSame = [](const Tensor &X, const Tensor &Y, const char *What) {
    ASSERT_EQ(X.numel(), Y.numel());
    for (int64_t I = 0; I != X.numel(); ++I)
      ASSERT_EQ(X[I], Y[I]) << What << " elem " << I;
  };
  ExpectSame(std::get<0>(Serial), std::get<0>(Parallel), "matmul fwd");
  ExpectSame(std::get<1>(Serial), std::get<1>(Parallel), "matmulNT fwd");
  ExpectSame(std::get<2>(Serial), std::get<2>(Parallel), "dA");
  ExpectSame(std::get<3>(Serial), std::get<3>(Parallel), "dB");
  ExpectSame(std::get<4>(Serial), std::get<4>(Parallel), "dBT");
}

TEST(KernelTest, ElementwiseAndLossOpsBitIdenticalAcrossThreads) {
  Rng R(43);
  Tensor X0 = randomTensor(128, 160, R); // > ElementwiseGrain elements
  std::vector<int> Types(128);
  for (size_t I = 0; I != Types.size(); ++I)
    Types[I] = static_cast<int>(I % 5);
  auto Run = [&](int Threads) {
    setGlobalNumThreads(Threads);
    Value X = Value::param(X0);
    Value H = tanhOp(sigmoid(relu(X)));
    Value Loss = add(spaceLoss(pairwiseL1(H), Types, 1.f),
                     meanAll(mul(H, H)));
    backward(Loss);
    return std::make_pair(Loss.val()[0], X.grad());
  };
  auto Serial = Run(1);
  auto Parallel = Run(4);
  setGlobalNumThreads(0);
  EXPECT_EQ(Serial.first, Parallel.first);
  ASSERT_EQ(Serial.second.numel(), Parallel.second.numel());
  for (int64_t I = 0; I != Serial.second.numel(); ++I)
    ASSERT_EQ(Serial.second[I], Parallel.second[I]) << "grad elem " << I;
}

TEST(KernelTest, CharCnnBatchMatchesPerWordEncode) {
  Rng R(44);
  ParamSet PS;
  CharCnn C(8, 16, PS, R);
  std::vector<std::string> Words{"loss", "x", "", "gradient", "loss2"};
  Value Batched = C.encodeBatch(Words);
  ASSERT_EQ(Batched.val().rows(), static_cast<int64_t>(Words.size()));
  for (size_t W = 0; W != Words.size(); ++W) {
    Value One = C.encode(Words[W]);
    for (int64_t J = 0; J != One.val().cols(); ++J)
      EXPECT_EQ(Batched.val().at(static_cast<int64_t>(W), J),
                One.val().at(0, J))
          << "word " << W << " dim " << J;
  }
}

//===----------------------------------------------------------------------===//
// SIMD-vs-scalar tolerance suite
//
// The scalar table is the reference (pinned bit-identical above); the
// SIMD table may reassociate reductions and use FMA / polynomial exp, so
// each kernel gets an explicit error budget: results must agree within
// MaxUlp units-in-the-last-place OR an absolute epsilon (the epsilon
// covers well-conditioned cancellation, e.g. tanh near zero). Sizes sweep
// through every dispatch width: sub-vector, exact multiples, and
// remainder lanes of both the 8-wide AVX2 and 4-wide NEON paths.
//===----------------------------------------------------------------------===//

namespace {

int64_t ulpDiff(float A, float B) {
  if (A == B)
    return 0;
  int32_t IA, IB;
  std::memcpy(&IA, &A, 4);
  std::memcpy(&IB, &B, 4);
  // Map the sign-magnitude float encoding onto a monotonic integer line.
  if (IA < 0)
    IA = std::numeric_limits<int32_t>::min() - IA;
  if (IB < 0)
    IB = std::numeric_limits<int32_t>::min() - IB;
  return std::llabs(static_cast<int64_t>(IA) - static_cast<int64_t>(IB));
}

void expectClose(float Got, float Want, int64_t MaxUlp, float Atol,
                 const char *What, int64_t N, int64_t I) {
  if (std::fabs(Got - Want) <= Atol)
    return;
  EXPECT_LE(ulpDiff(Got, Want), MaxUlp)
      << What << " N=" << N << " elem " << I << ": got " << Got << " want "
      << Want;
}

/// The dispatch widths under test: around the 4- and 8-lane boundaries,
/// plus chunk-sized runs.
const std::vector<int64_t> &simdSizes() {
  static const std::vector<int64_t> S{1,  2,  3,  4,  5,  7,   8,   9,
                                      15, 16, 17, 31, 32, 33,  63,  64,
                                      65, 100, 255, 1000};
  return S;
}

std::vector<float> randomVec(int64_t N, Rng &R, float Scale = 1.f) {
  std::vector<float> V(static_cast<size_t>(N));
  for (float &X : V)
    X = Scale * static_cast<float>(R.normal());
  return V;
}

class SimdTest : public ::testing::Test {
protected:
  void SetUp() override {
    if (!simd::simdAvailable())
      GTEST_SKIP() << "no SIMD table in this build/CPU";
  }
  const simd::KernelTable &S = simd::scalarTable();
  const simd::KernelTable &V = simd::active(); // probe-selected table
};

} // namespace

TEST_F(SimdTest, ElementwiseKernelsBitIdenticalToScalar) {
  // These kernels use the scalar per-element operation sequence inside
  // the vector lanes (mul then add, compare-and-mask), so the budget is
  // exactly zero ulp.
  Rng R(71);
  for (int64_t N : simdSizes()) {
    auto A = randomVec(N, R), B = randomVec(N, R);
    auto D1 = randomVec(N, R);
    auto D2 = D1;
    auto Check = [&](const char *What) {
      for (int64_t I = 0; I != N; ++I)
        EXPECT_EQ(D1[static_cast<size_t>(I)], D2[static_cast<size_t>(I)])
            << What << " N=" << N << " elem " << I;
    };
    S.Add(D1.data(), A.data(), N);
    V.Add(D2.data(), A.data(), N);
    Check("add");
    S.Sub(D1.data(), A.data(), N);
    V.Sub(D2.data(), A.data(), N);
    Check("sub");
    S.Mul(D1.data(), A.data(), N);
    V.Mul(D2.data(), A.data(), N);
    Check("mul");
    S.Scale(D1.data(), 1.25f, N);
    V.Scale(D2.data(), 1.25f, N);
    Check("scale");
    S.MulAcc(D1.data(), A.data(), B.data(), N);
    V.MulAcc(D2.data(), A.data(), B.data(), N);
    Check("mulAcc");
    S.Relu(D1.data(), N);
    V.Relu(D2.data(), N);
    Check("relu");
    S.ReluBwd(D1.data(), A.data(), B.data(), N);
    V.ReluBwd(D2.data(), A.data(), B.data(), N);
    Check("reluBwd");
    S.SigmoidBwd(D1.data(), A.data(), B.data(), N);
    V.SigmoidBwd(D2.data(), A.data(), B.data(), N);
    Check("sigmoidBwd");
    S.TanhBwd(D1.data(), A.data(), B.data(), N);
    V.TanhBwd(D2.data(), A.data(), B.data(), N);
    Check("tanhBwd");
  }
}

TEST_F(SimdTest, AxpyRowWithinOneFmaRounding) {
  // FMA skips one rounding of the product; near-cancelling dst + a*x can
  // turn that into many ulp of a tiny result, so the budget is one fused
  // rounding in absolute terms with a tight ulp bound elsewhere.
  Rng R(72);
  for (int64_t N : simdSizes()) {
    auto X = randomVec(N, R);
    auto D1 = randomVec(N, R);
    auto D2 = D1;
    S.AxpyRow(D1.data(), 0.7f, X.data(), N);
    V.AxpyRow(D2.data(), 0.7f, X.data(), N);
    for (int64_t I = 0; I != N; ++I)
      expectClose(D2[static_cast<size_t>(I)], D1[static_cast<size_t>(I)],
                  /*MaxUlp=*/4, /*Atol=*/1e-6f, "axpyRow", N, I);
  }
}

TEST_F(SimdTest, ReductionsWithinBudget) {
  Rng R(73);
  for (int64_t N : simdSizes()) {
    auto A = randomVec(N, R), B = randomVec(N, R);
    expectClose(V.Dot(A.data(), B.data(), N), S.Dot(A.data(), B.data(), N),
                /*MaxUlp=*/256, /*Atol=*/1e-3f, "dot", N, -1);
    expectClose(V.L1(A.data(), B.data(), N), S.L1(A.data(), B.data(), N),
                /*MaxUlp=*/64, /*Atol=*/1e-4f, "l1", N, -1);
  }
}

TEST_F(SimdTest, QuantizedRowDistancesMatchScalarDecode) {
  Rng R(74);
  for (int64_t N : simdSizes()) {
    auto Q = randomVec(N, R);
    auto Src = randomVec(N, R);
    std::vector<uint16_t> H(static_cast<size_t>(N));
    std::vector<int8_t> I8(static_cast<size_t>(N));
    float MaxAbs = 0.f;
    for (int64_t I = 0; I != N; ++I)
      MaxAbs = std::max(MaxAbs, std::fabs(Src[static_cast<size_t>(I)]));
    float Scale = MaxAbs / 127.f;
    for (int64_t I = 0; I != N; ++I) {
      H[static_cast<size_t>(I)] = f32ToF16Bits(Src[static_cast<size_t>(I)]);
      long Ticks = std::lround(Src[static_cast<size_t>(I)] / Scale);
      I8[static_cast<size_t>(I)] = static_cast<int8_t>(
          std::max(-127l, std::min(127l, Ticks)));
    }
    // Decode is exact on both sides, so only summation order differs.
    expectClose(V.L1F16(Q.data(), H.data(), N),
                S.L1F16(Q.data(), H.data(), N),
                /*MaxUlp=*/64, /*Atol=*/1e-4f, "l1f16", N, -1);
    expectClose(V.L1I8(Q.data(), I8.data(), Scale, N),
                S.L1I8(Q.data(), I8.data(), Scale, N),
                /*MaxUlp=*/64, /*Atol=*/1e-4f, "l1i8", N, -1);
  }
}

TEST_F(SimdTest, ActivationsWithinBudget) {
  Rng R(75);
  for (int64_t N : simdSizes()) {
    // 4x-scaled inputs reach the saturating tails of both activations.
    auto X = randomVec(N, R, 4.f);
    auto X1 = X, X2 = X;
    S.Sigmoid(X1.data(), N);
    V.Sigmoid(X2.data(), N);
    for (int64_t I = 0; I != N; ++I)
      expectClose(X2[static_cast<size_t>(I)], X1[static_cast<size_t>(I)],
                  /*MaxUlp=*/256, /*Atol=*/1e-5f, "sigmoid", N, I);
    X1 = X;
    X2 = X;
    S.Tanh(X1.data(), N);
    V.Tanh(X2.data(), N);
    for (int64_t I = 0; I != N; ++I)
      expectClose(X2[static_cast<size_t>(I)], X1[static_cast<size_t>(I)],
                  /*MaxUlp=*/512, /*Atol=*/1e-5f, "tanh", N, I);
  }
}

TEST_F(SimdTest, SoftmaxRowWithinBudgetAndNormalized) {
  Rng R(76);
  for (int64_t N : simdSizes()) {
    auto X = randomVec(N, R, 3.f);
    auto X1 = X, X2 = X;
    S.SoftmaxRow(X1.data(), N);
    V.SoftmaxRow(X2.data(), N);
    double Sum = 0;
    for (int64_t I = 0; I != N; ++I) {
      expectClose(X2[static_cast<size_t>(I)], X1[static_cast<size_t>(I)],
                  /*MaxUlp=*/256, /*Atol=*/1e-5f, "softmaxRow", N, I);
      Sum += X2[static_cast<size_t>(I)];
    }
    EXPECT_NEAR(Sum, 1.0, 1e-4) << "softmax row must stay normalized, N=" << N;
  }
}

TEST_F(SimdTest, SimdPathIsThreadCountDeterministic) {
  // The SIMD contract is weaker than the scalar one only in *which* bits:
  // for a fixed build+CPU the result must still not depend on the thread
  // count. Remainder lanes mirror the vector lanes' operation sequence,
  // so chunk boundaries (which move with the pool size) cannot show
  // through. Exercised at the public-kernel level where chunking lives.
  Rng R(77);
  const int64_t N = 64 * 1024; // several ElementwiseGrain chunks
  auto X = randomVec(N, R);
  auto Run = [&](int Threads) {
    auto Y = X;
    setGlobalNumThreads(Threads);
    kernels::sigmoidForward(Y.data(), N);
    kernels::scaleInPlace(Y.data(), 1.1f, N);
    kernels::tanhForward(Y.data(), N);
    return Y;
  };
  auto One = Run(1);
  auto Four = Run(4);
  setGlobalNumThreads(0);
  for (int64_t I = 0; I != N; ++I)
    ASSERT_EQ(One[static_cast<size_t>(I)], Four[static_cast<size_t>(I)])
        << "elem " << I;
}
