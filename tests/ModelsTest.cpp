//===- tests/ModelsTest.cpp - models/ unit tests -------------------------------===//

#include "corpus/Dataset.h"
#include "corpus/Generator.h"
#include "models/Model.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace typilus;

namespace {

/// Small shared dataset; built once per suite (cheap: ~20 files).
class ModelsTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    U = new TypeUniverse();
    CorpusConfig C;
    C.NumFiles = 20;
    CorpusGenerator G(C);
    DatasetConfig DC;
    DC.RunDedup = false;
    DS = new Dataset(buildDataset(G.generate(), G.udts(), *U, nullptr, DC));
  }
  static void TearDownTestSuite() {
    delete DS;
    delete U;
    DS = nullptr;
    U = nullptr;
  }

  static TypeModel makeModelFor(EncoderKind E, LossKind L,
                                NodeRepKind R = NodeRepKind::Subtoken) {
    std::vector<const TypilusGraph *> Graphs;
    for (const FileExample &F : DS->Train)
      Graphs.push_back(&F.Graph);
    LabelVocab V = LabelVocab::build(
        Graphs, R == NodeRepKind::WholeToken ? LabelVocab::Mode::WholeLabel
                                             : LabelVocab::Mode::Subtoken);
    TypeVocabs TV;
    for (const FileExample &F : DS->Train)
      for (const Target &T : F.Targets) {
        TV.Full.add(T.Type);
        TV.Erased.add(T.ErasedType);
      }
    ModelConfig MC;
    MC.Encoder = E;
    MC.Loss = L;
    MC.NodeRep = R;
    MC.HiddenDim = 16;
    MC.TimeSteps = 2;
    return TypeModel(MC, std::move(V), std::move(TV));
  }

  static TypeUniverse *U;
  static Dataset *DS;
};

TypeUniverse *ModelsTest::U = nullptr;
Dataset *ModelsTest::DS = nullptr;

size_t totalTargets(const std::vector<const FileExample *> &Files) {
  size_t N = 0;
  for (const FileExample *F : Files)
    N += F->Targets.size();
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Vocabularies
//===----------------------------------------------------------------------===//

TEST_F(ModelsTest, SubtokenVocabSharesSubwords) {
  std::vector<const TypilusGraph *> Graphs{&DS->Train[0].Graph};
  LabelVocab V = LabelVocab::build(Graphs, LabelVocab::Mode::Subtoken, 1);
  auto A = V.idsOf("numItems");
  auto B = V.idsOf("item_count");
  ASSERT_EQ(A.size(), 2u);
  ASSERT_EQ(B.size(), 2u);
  // Unknown subtokens map to 0, known ones to positive ids.
  for (int Id : V.idsOf("zzzzunseenzzz"))
    EXPECT_EQ(Id, 0);
}

TEST_F(ModelsTest, WholeLabelVocabKeepsLexemes) {
  std::vector<const TypilusGraph *> Graphs{&DS->Train[0].Graph};
  LabelVocab V = LabelVocab::build(Graphs, LabelVocab::Mode::WholeLabel, 1);
  EXPECT_EQ(V.idsOf("whatever_label").size(), 1u);
}

TEST_F(ModelsTest, TypeIdMapIsDenseAndStable) {
  TypeIdMap M;
  TypeRef A = U->parse("int"), B = U->parse("str");
  EXPECT_EQ(M.add(A), 0);
  EXPECT_EQ(M.add(B), 1);
  EXPECT_EQ(M.add(A), 0);
  EXPECT_EQ(M.lookup(B), 1);
  EXPECT_EQ(M.lookup(U->parse("float")), -1);
  EXPECT_EQ(M.type(1), B);
}

//===----------------------------------------------------------------------===//
// Encoders: shapes, determinism, gradient flow
//===----------------------------------------------------------------------===//

TEST_F(ModelsTest, GraphEncoderEmbedsAllTargets) {
  TypeModel M = makeModelFor(EncoderKind::Graph, LossKind::Typilus);
  std::vector<const FileExample *> Files{&DS->Train[0], &DS->Train[1]};
  std::vector<const Target *> Targets;
  nn::Value Emb = M.embed(Files, &Targets);
  ASSERT_TRUE(Emb.defined());
  EXPECT_EQ(static_cast<size_t>(Emb.val().rows()), totalTargets(Files));
  EXPECT_EQ(Emb.val().cols(), 16);
  EXPECT_EQ(Targets.size(), totalTargets(Files));
  for (int64_t I = 0; I != Emb.val().numel(); ++I)
    EXPECT_TRUE(std::isfinite(Emb.val()[I]));
}

TEST_F(ModelsTest, SeqEncoderEmbedsAllTargets) {
  TypeModel M = makeModelFor(EncoderKind::Seq, LossKind::Space);
  std::vector<const FileExample *> Files{&DS->Train[0]};
  std::vector<const Target *> Targets;
  nn::Value Emb = M.embed(Files, &Targets);
  ASSERT_TRUE(Emb.defined());
  EXPECT_EQ(static_cast<size_t>(Emb.val().rows()), totalTargets(Files));
}

TEST_F(ModelsTest, PathEncoderEmbedsAllTargets) {
  TypeModel M = makeModelFor(EncoderKind::Path, LossKind::Space);
  std::vector<const FileExample *> Files{&DS->Train[0]};
  std::vector<const Target *> Targets;
  nn::Value Emb = M.embed(Files, &Targets);
  ASSERT_TRUE(Emb.defined());
  EXPECT_EQ(static_cast<size_t>(Emb.val().rows()), totalTargets(Files));
}

TEST_F(ModelsTest, NamesOnlyEncoderEmbedsAllTargets) {
  TypeModel M = makeModelFor(EncoderKind::NamesOnly, LossKind::Typilus);
  std::vector<const FileExample *> Files{&DS->Train[0]};
  std::vector<const Target *> Targets;
  nn::Value Emb = M.embed(Files, &Targets);
  ASSERT_TRUE(Emb.defined());
  EXPECT_EQ(static_cast<size_t>(Emb.val().rows()), totalTargets(Files));
}

TEST_F(ModelsTest, CharacterRepresentationWorks) {
  TypeModel M = makeModelFor(EncoderKind::Graph, LossKind::Typilus,
                             NodeRepKind::Character);
  std::vector<const FileExample *> Files{&DS->Train[0]};
  std::vector<const Target *> Targets;
  nn::Value Emb = M.embed(Files, &Targets);
  ASSERT_TRUE(Emb.defined());
  for (int64_t I = 0; I != Emb.val().numel(); ++I)
    EXPECT_TRUE(std::isfinite(Emb.val()[I]));
}

TEST_F(ModelsTest, EmbeddingsAreDeterministic) {
  TypeModel A = makeModelFor(EncoderKind::Graph, LossKind::Typilus);
  TypeModel B = makeModelFor(EncoderKind::Graph, LossKind::Typilus);
  std::vector<const FileExample *> Files{&DS->Train[0]};
  nn::Value EA = A.embed(Files, nullptr);
  nn::Value EB = B.embed(Files, nullptr);
  ASSERT_EQ(EA.val().numel(), EB.val().numel());
  for (int64_t I = 0; I != EA.val().numel(); ++I)
    EXPECT_FLOAT_EQ(EA.val()[I], EB.val()[I]);
}

//===----------------------------------------------------------------------===//
// Losses
//===----------------------------------------------------------------------===//

TEST_F(ModelsTest, AllLossesAreFiniteAndBackpropagate) {
  for (LossKind L :
       {LossKind::Class, LossKind::Space, LossKind::Typilus}) {
    TypeModel M = makeModelFor(EncoderKind::Graph, L);
    std::vector<const FileExample *> Files{&DS->Train[0], &DS->Train[1]};
    std::vector<const Target *> Targets;
    nn::Value Emb = M.embed(Files, &Targets);
    nn::Value Loss = M.loss(Emb, Targets);
    ASSERT_TRUE(std::isfinite(Loss.val()[0]))
        << "loss " << lossKindName(L);
    M.params().zeroGrads();
    nn::backward(Loss);
    double GradMass = 0;
    for (const nn::Value &P : M.params().params()) {
      const Tensor &G = P.grad();
      for (int64_t I = 0; I != G.numel(); ++I)
        GradMass += std::fabs(G[I]);
    }
    EXPECT_GT(GradMass, 0.0) << "no gradient for loss " << lossKindName(L);
  }
}

TEST_F(ModelsTest, OneTrainingStepReducesLoss) {
  TypeModel M = makeModelFor(EncoderKind::Graph, LossKind::Typilus);
  nn::Adam Opt(M.params(), 5e-3f);
  std::vector<const FileExample *> Files{&DS->Train[0], &DS->Train[1]};
  std::vector<const Target *> Targets;
  float First = 0, Last = 0;
  for (int Step = 0; Step != 8; ++Step) {
    Targets.clear();
    nn::Value Emb = M.embed(Files, &Targets);
    nn::Value Loss = M.loss(Emb, Targets);
    if (Step == 0)
      First = Loss.val()[0];
    Last = Loss.val()[0];
    M.params().zeroGrads();
    nn::backward(Loss);
    Opt.step();
  }
  EXPECT_LT(Last, First);
}

TEST_F(ModelsTest, ClassProbsAreDistributions) {
  TypeModel M = makeModelFor(EncoderKind::Graph, LossKind::Class);
  std::vector<const FileExample *> Files{&DS->Train[0]};
  nn::Value Emb = M.embed(Files, nullptr);
  Tensor Probs = M.classProbs(Emb);
  for (int64_t R = 0; R != Probs.rows(); ++R) {
    float Sum = 0;
    for (int64_t C = 0; C != Probs.cols(); ++C)
      Sum += Probs.at(R, C);
    EXPECT_NEAR(Sum, 1.f, 1e-4f);
  }
}
