//===- tests/KnnTest.cpp - knn/ unit & property tests --------------------------===//

#include "knn/TypeMap.h"
#include "support/Float16.h"
#include "support/Str.h"
#include "support/Rng.h"
#include "typesys/Type.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

using namespace typilus;

namespace {

/// A random map of N markers over T types in D dims.
struct MapFixture {
  TypeUniverse U;
  TypeMap Map;
  std::vector<std::vector<float>> Points;

  MapFixture(int N, int NumTypes, int D, uint64_t Seed) : Map(D) {
    Rng R(Seed);
    for (int I = 0; I != N; ++I) {
      std::vector<float> P(static_cast<size_t>(D));
      for (float &X : P)
        X = static_cast<float>(R.normal());
      TypeRef T = U.get(strformat("T%d", static_cast<int>(
                                             R.uniformInt(NumTypes))));
      Map.add(P.data(), T);
      Points.push_back(std::move(P));
    }
  }
};

} // namespace

TEST(ExactIndexTest, FindsSelfAtDistanceZero) {
  MapFixture F(50, 5, 8, 1);
  ExactIndex Idx(F.Map);
  for (size_t I = 0; I != 10; ++I) {
    auto N = Idx.query(F.Points[I].data(), 1);
    ASSERT_EQ(N.size(), 1u);
    EXPECT_EQ(N[0].first, static_cast<int>(I));
    EXPECT_FLOAT_EQ(N[0].second, 0.f);
  }
}

TEST(ExactIndexTest, DistancesAreSorted) {
  MapFixture F(100, 5, 8, 2);
  ExactIndex Idx(F.Map);
  auto N = Idx.query(F.Points[3].data(), 20);
  ASSERT_EQ(N.size(), 20u);
  for (size_t I = 1; I != N.size(); ++I)
    EXPECT_LE(N[I - 1].second, N[I].second);
}

TEST(ExactIndexTest, KLargerThanMapIsClamped) {
  MapFixture F(5, 2, 4, 3);
  ExactIndex Idx(F.Map);
  EXPECT_EQ(Idx.query(F.Points[0].data(), 50).size(), 5u);
}

TEST(AnnoyIndexTest, HighRecallVsExact) {
  MapFixture F(2000, 20, 16, 4);
  ExactIndex Exact(F.Map);
  AnnoyIndex Annoy(F.Map);
  Rng R(5);
  double Recall = 0;
  const int Queries = 50, K = 10;
  for (int Q = 0; Q != Queries; ++Q) {
    std::vector<float> P(16);
    for (float &X : P)
      X = static_cast<float>(R.normal());
    auto Truth = Exact.query(P.data(), K);
    auto Approx = Annoy.query(P.data(), K);
    std::set<int> TruthSet;
    for (auto [I, D] : Truth)
      TruthSet.insert(I);
    int Hits = 0;
    for (auto [I, D] : Approx)
      Hits += TruthSet.count(I);
    Recall += static_cast<double>(Hits) / K;
  }
  Recall /= Queries;
  EXPECT_GE(Recall, 0.8) << "Annoy-style forest recall too low";
}

TEST(AnnoyIndexTest, ReturnedDistancesAreTrueL1) {
  MapFixture F(300, 5, 8, 6);
  AnnoyIndex Annoy(F.Map);
  auto N = Annoy.query(F.Points[7].data(), 5);
  ASSERT_FALSE(N.empty());
  for (auto [Idx, Dist] : N) {
    float True = 0;
    for (int D = 0; D != 8; ++D)
      True += std::fabs(F.Points[7][static_cast<size_t>(D)] -
                        F.Map.embedding(static_cast<size_t>(Idx))[D]);
    EXPECT_NEAR(Dist, True, 1e-4f);
  }
}

TEST(AnnoyIndexTest, DeterministicForFixedSeed) {
  MapFixture F(500, 10, 8, 7);
  AnnoyIndex A(F.Map, 8, 16, 42), B(F.Map, 8, 16, 42);
  auto NA = A.query(F.Points[0].data(), 10);
  auto NB = B.query(F.Points[0].data(), 10);
  ASSERT_EQ(NA.size(), NB.size());
  for (size_t I = 0; I != NA.size(); ++I)
    EXPECT_EQ(NA[I].first, NB[I].first);
}

TEST(AnnoyIndexTest, EmptyMapYieldsNothing) {
  TypeUniverse U;
  TypeMap Map(4);
  AnnoyIndex Annoy(Map);
  std::vector<float> Q(4, 0.f);
  EXPECT_TRUE(Annoy.query(Q.data(), 5).empty());
}

//===----------------------------------------------------------------------===//
// Eq. 5 scoring
//===----------------------------------------------------------------------===//

TEST(ScoringTest, ProbabilitiesSumToOne) {
  TypeUniverse U;
  TypeMap Map(2);
  float A[2] = {0, 0}, B[2] = {1, 1}, C[2] = {2, 2};
  Map.add(A, U.parse("int"));
  Map.add(B, U.parse("str"));
  Map.add(C, U.parse("int"));
  NeighborList N{{0, 0.5f}, {1, 1.0f}, {2, 2.0f}};
  auto Scored = scoreNeighbors(Map, N, 1.0);
  double Sum = 0;
  for (const ScoredType &S : Scored)
    Sum += S.Prob;
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

TEST(ScoringTest, SameTypeNeighborsAggregate) {
  TypeUniverse U;
  TypeMap Map(1);
  // Distinct embeddings: identical (embedding, type) pairs would be
  // deduped on insert (crafted distances below are what the test pins).
  float X0[1] = {0}, X1[1] = {1}, X2[1] = {2};
  Map.add(X0, U.parse("int"));
  Map.add(X1, U.parse("int"));
  Map.add(X2, U.parse("str"));
  NeighborList N{{0, 1.0f}, {1, 1.0f}, {2, 1.0f}};
  auto Scored = scoreNeighbors(Map, N, 1.0);
  ASSERT_EQ(Scored.size(), 2u);
  EXPECT_EQ(Scored[0].Type, U.parse("int"));
  EXPECT_NEAR(Scored[0].Prob, 2.0 / 3.0, 1e-9);
}

TEST(ScoringTest, LargePSharpensTowardsNearest) {
  // p -> inf approaches 1-NN: the closest neighbour's type must win even
  // when outnumbered.
  TypeUniverse U;
  TypeMap Map(1);
  float X0[1] = {0}, X1[1] = {1}, X2[1] = {2}, X3[1] = {3};
  Map.add(X0, U.parse("int")); // closest
  Map.add(X1, U.parse("str"));
  Map.add(X2, U.parse("str"));
  Map.add(X3, U.parse("str"));
  NeighborList N{{0, 0.1f}, {1, 1.0f}, {2, 1.0f}, {3, 1.0f}};
  auto Sharp = scoreNeighbors(Map, N, 6.0);
  EXPECT_EQ(Sharp[0].Type, U.parse("int"));
  // With p ~ 0 it degenerates to majority voting.
  auto Flat = scoreNeighbors(Map, N, 0.001);
  EXPECT_EQ(Flat[0].Type, U.parse("str"));
}

TEST(ScoringTest, ZeroDistanceIsHandled) {
  TypeUniverse U;
  TypeMap Map(1);
  float X[1] = {0};
  Map.add(X, U.parse("int"));
  NeighborList N{{0, 0.0f}};
  auto Scored = scoreNeighbors(Map, N, 2.0);
  ASSERT_EQ(Scored.size(), 1u);
  EXPECT_NEAR(Scored[0].Prob, 1.0, 1e-9);
  EXPECT_TRUE(std::isfinite(Scored[0].Prob));
}

TEST(ScoringTest, DeterministicTieBreaking) {
  TypeUniverse U;
  TypeMap Map(1);
  float X[1] = {0};
  Map.add(X, U.parse("str"));
  Map.add(X, U.parse("int"));
  NeighborList N{{0, 1.0f}, {1, 1.0f}};
  auto S1 = scoreNeighbors(Map, N, 1.0);
  auto S2 = scoreNeighbors(Map, N, 1.0);
  EXPECT_EQ(S1[0].Type, S2[0].Type);
  EXPECT_EQ(S1[0].Type, U.parse("int")); // lexicographic tie-break
}

//===----------------------------------------------------------------------===//
// Parallel build / batch queries (the execution layer)
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

TEST(AnnoyIndexTest, ParallelBuildIsIdenticalToSerial) {
  MapFixture F(1200, 12, 8, 11);
  setGlobalNumThreads(1);
  AnnoyIndex Serial(F.Map, 8, 16, 42);
  setGlobalNumThreads(4);
  AnnoyIndex Parallel(F.Map, 8, 16, 42);
  setGlobalNumThreads(0);
  // Identical forests answer every query identically.
  for (size_t Q = 0; Q != 25; ++Q) {
    auto NA = Serial.query(F.Points[Q].data(), 10);
    auto NB = Parallel.query(F.Points[Q].data(), 10);
    ASSERT_EQ(NA.size(), NB.size());
    for (size_t I = 0; I != NA.size(); ++I) {
      EXPECT_EQ(NA[I].first, NB[I].first);
      EXPECT_EQ(NA[I].second, NB[I].second);
    }
  }
}

TEST(AnnoyIndexTest, QueryBatchMatchesIndividualQueries) {
  MapFixture F(800, 10, 8, 12);
  AnnoyIndex Annoy(F.Map, 8, 16, 7);
  // Pack the first 30 points as a contiguous query block.
  std::vector<float> Qs;
  const int NumQ = 30, D = 8;
  for (int Q = 0; Q != NumQ; ++Q)
    Qs.insert(Qs.end(), F.Points[static_cast<size_t>(Q)].begin(),
              F.Points[static_cast<size_t>(Q)].end());
  auto Batch = Annoy.queryBatch(Qs.data(), NumQ, 5);
  ASSERT_EQ(Batch.size(), static_cast<size_t>(NumQ));
  for (int Q = 0; Q != NumQ; ++Q) {
    auto One = Annoy.query(Qs.data() + Q * D, 5);
    ASSERT_EQ(Batch[static_cast<size_t>(Q)].size(), One.size());
    for (size_t I = 0; I != One.size(); ++I) {
      EXPECT_EQ(Batch[static_cast<size_t>(Q)][I].first, One[I].first);
      EXPECT_EQ(Batch[static_cast<size_t>(Q)][I].second, One[I].second);
    }
  }
}

TEST(ExactIndexTest, QueryBatchMatchesIndividualQueries) {
  MapFixture F(400, 6, 8, 13);
  ExactIndex Exact(F.Map);
  std::vector<float> Qs;
  const int NumQ = 20, D = 8;
  for (int Q = 0; Q != NumQ; ++Q)
    Qs.insert(Qs.end(), F.Points[static_cast<size_t>(Q)].begin(),
              F.Points[static_cast<size_t>(Q)].end());
  auto Batch = Exact.queryBatch(Qs.data(), NumQ, 7);
  ASSERT_EQ(Batch.size(), static_cast<size_t>(NumQ));
  for (int Q = 0; Q != NumQ; ++Q) {
    auto One = Exact.query(Qs.data() + Q * D, 7);
    ASSERT_EQ(Batch[static_cast<size_t>(Q)], One);
  }
}

TEST(TypeMapTest, IdenticalMarkersDedupeOnInsert) {
  TypeUniverse U;
  TypeMap Map(2);
  float A[2] = {1.f, 2.f}, B[2] = {1.f, 2.f}, C[2] = {3.f, 4.f};
  EXPECT_TRUE(Map.add(A, U.parse("int")));
  // Same embedding bytes + same type: dropped, count does not grow.
  EXPECT_FALSE(Map.add(B, U.parse("int")));
  EXPECT_EQ(Map.size(), 1u);
  EXPECT_EQ(Map.droppedDuplicates(), 1u);
  // Same embedding, different type: a real marker.
  EXPECT_TRUE(Map.add(A, U.parse("str")));
  // Different embedding, same type: a real marker.
  EXPECT_TRUE(Map.add(C, U.parse("int")));
  EXPECT_EQ(Map.size(), 3u);
  // Duplicates of the later inserts are dropped too.
  EXPECT_FALSE(Map.add(C, U.parse("int")));
  EXPECT_EQ(Map.size(), 3u);
  EXPECT_EQ(Map.droppedDuplicates(), 2u);
}

TEST(TypeMapTest, DedupSurvivesSnapshotRoundTrip) {
  TypeUniverse U;
  TypeMap Map(2);
  float A[2] = {1.f, 2.f};
  Map.add(A, U.parse("int"));

  std::map<TypeRef, int> TypeIds{{U.parse("int"), 0}};
  std::vector<TypeRef> ById{U.parse("int")};
  ArchiveWriter W(1);
  W.beginChunk("tmap");
  Map.save(W, TypeIds);
  W.endChunk();
  ArchiveReader R;
  std::string Err;
  ASSERT_TRUE(R.openBytes(W.bytes(), &Err)) << Err;
  ArchiveCursor C = R.chunk("tmap", &Err);
  TypeMap Loaded(2);
  ASSERT_TRUE(Loaded.load(C, ById, &Err)) << Err;
  ASSERT_EQ(Loaded.size(), 1u);
  // The loaded map dedupes against its snapshotted markers.
  EXPECT_FALSE(Loaded.add(A, U.parse("int")));
  EXPECT_EQ(Loaded.size(), 1u);
}

TEST(TypeMapTest, ReserveKeepsContentsIntact) {
  TypeUniverse U;
  TypeMap Map(3);
  float A[3] = {1, 2, 3};
  Map.add(A, U.parse("int"));
  Map.reserve(1000);
  EXPECT_EQ(Map.size(), 1u);
  EXPECT_FLOAT_EQ(Map.embedding(0)[1], 2.f);
  float B[3] = {4, 5, 6};
  Map.add(B, U.parse("str"));
  EXPECT_EQ(Map.size(), 2u);
  EXPECT_FLOAT_EQ(Map.embedding(1)[2], 6.f);
}

TEST(TypeMapTest, ReserveIsTotalAndIdempotent) {
  TypeUniverse U;
  TypeMap Map(3);
  // reserve() takes a *total* marker bound, so repeating the same call
  // must not grow the reservation (the historical incremental semantics
  // doubled it on every call).
  Map.reserve(100);
  size_t Cap = Map.reservedMarkers();
  EXPECT_GE(Cap, 100u);
  Map.reserve(100);
  EXPECT_EQ(Map.reservedMarkers(), Cap);
  // A smaller bound never shrinks an existing reservation.
  Map.reserve(10);
  EXPECT_EQ(Map.reservedMarkers(), Cap);
}

//===----------------------------------------------------------------------===//
// Quantized marker stores (f16 / int8)
//===----------------------------------------------------------------------===//

namespace {

/// L1 between a query and the *decoded* coordinates of marker I — the
/// reference l1DistanceTo must agree with on every store.
float decodedL1(const TypeMap &Map, const float *Q, size_t I) {
  std::vector<float> Row(static_cast<size_t>(Map.dim()));
  Map.decodeEmbedding(I, Row.data());
  float Sum = 0;
  for (int D = 0; D != Map.dim(); ++D)
    Sum += std::fabs(Q[static_cast<size_t>(D)] - Row[static_cast<size_t>(D)]);
  return Sum;
}

} // namespace

TEST(QuantizedMapTest, F16CoordsAreRoundToNearestEven) {
  MapFixture F(64, 4, 8, 11);
  TypeMap Q = F.Map; // quantize a copy; keep the f32 original
  Q.quantize(MarkerStore::F16);
  EXPECT_EQ(Q.store(), MarkerStore::F16);
  ASSERT_EQ(Q.size(), F.Map.size());
  for (size_t I = 0; I != Q.size(); ++I)
    for (int D = 0; D != 8; ++D) {
      float Orig = F.Map.embedding(I)[D];
      // Exactly one binary16 rounding, nothing else.
      EXPECT_EQ(Q.coord(I, D), f16BitsToF32(f32ToF16Bits(Orig)));
      EXPECT_NEAR(Q.coord(I, D), Orig, 1e-3f * std::max(1.f, std::fabs(Orig)));
    }
}

TEST(QuantizedMapTest, Int8CoordsWithinHalfScaleStep) {
  MapFixture F(64, 4, 8, 12);
  TypeMap Q = F.Map;
  Q.quantize(MarkerStore::Int8);
  EXPECT_EQ(Q.store(), MarkerStore::Int8);
  for (size_t I = 0; I != Q.size(); ++I) {
    float MaxAbs = 0;
    for (int D = 0; D != 8; ++D)
      MaxAbs = std::max(MaxAbs, std::fabs(F.Map.embedding(I)[D]));
    float Scale = MaxAbs / 127.f;
    for (int D = 0; D != 8; ++D)
      // Round-to-nearest against a per-marker scale: the decode error is
      // at most half a quantization step.
      EXPECT_NEAR(Q.coord(I, D), F.Map.embedding(I)[D], 0.5f * Scale + 1e-6f);
  }
}

TEST(QuantizedMapTest, DistancesMatchDecodedCoordinates) {
  MapFixture F(128, 6, 16, 13);
  for (MarkerStore S : {MarkerStore::F16, MarkerStore::Int8}) {
    TypeMap Q = F.Map;
    Q.quantize(S);
    Rng R(14);
    std::vector<float> Query(16);
    for (int T = 0; T != 10; ++T) {
      for (float &X : Query)
        X = static_cast<float>(R.normal());
      for (size_t I = 0; I < Q.size(); I += 7)
        EXPECT_NEAR(Q.l1DistanceTo(Query.data(), I),
                    decodedL1(Q, Query.data(), I), 1e-3f)
            << markerStoreName(S) << " marker " << I;
    }
  }
}

TEST(QuantizedMapTest, SnapshotRoundTripIsExact) {
  MapFixture F(50, 5, 8, 15);
  for (MarkerStore S : {MarkerStore::F16, MarkerStore::Int8}) {
    TypeMap Q = F.Map;
    Q.quantize(S);

    std::map<TypeRef, int> TypeIds;
    std::vector<TypeRef> ById;
    for (size_t I = 0; I != Q.size(); ++I)
      TypeIds.emplace(Q.type(I), 0);
    int Next = 0;
    for (auto &[T, Id] : TypeIds) {
      Id = Next++;
      ById.push_back(T);
    }

    ArchiveWriter W(2);
    W.beginChunk("tmap");
    Q.save(W, TypeIds);
    W.endChunk();
    ArchiveReader R;
    std::string Err;
    ASSERT_TRUE(R.openBytes(W.bytes(), &Err)) << Err;
    ArchiveCursor C = R.chunk("tmap", &Err);
    TypeMap Loaded(8);
    ASSERT_TRUE(Loaded.load(C, ById, &Err, S)) << Err;
    ASSERT_TRUE(C.atEnd()) << "trailing bytes in a "
                           << markerStoreName(S) << " snapshot";
    ASSERT_EQ(Loaded.size(), Q.size());
    EXPECT_EQ(Loaded.store(), S);
    for (size_t I = 0; I != Q.size(); ++I) {
      EXPECT_EQ(Loaded.type(I), ById[static_cast<size_t>(TypeIds.at(Q.type(I)))]);
      for (int D = 0; D != 8; ++D)
        // Bit-exact: quantized coordinates serialize as their stored
        // encoding, never through a decode/re-encode.
        EXPECT_EQ(Loaded.coord(I, D), Q.coord(I, D))
            << markerStoreName(S) << " marker " << I << " dim " << D;
    }
  }
}

TEST(QuantizedMapTest, AddEncodesAndDedupesOnStoredBytes) {
  TypeUniverse U;
  TypeMap Map(2);
  float A[2] = {1.0f, 2.0f};
  Map.add(A, U.parse("int"));
  Map.quantize(MarkerStore::F16);

  // A fresh point inserts (encoded on the way in)...
  float B[2] = {3.0f, 4.0f};
  EXPECT_TRUE(Map.add(B, U.parse("int")));
  EXPECT_EQ(Map.store(), MarkerStore::F16);
  EXPECT_EQ(Map.size(), 2u);
  // ...an exact duplicate is dropped...
  EXPECT_FALSE(Map.add(B, U.parse("int")));
  // ...and so is a point that only collides after f16 rounding (1e-5 is
  // far below half a ulp of 3.0 in binary16, which is ~1e-3).
  float BNudged[2] = {3.00001f, 4.0f};
  ASSERT_EQ(f32ToF16Bits(BNudged[0]), f32ToF16Bits(B[0]));
  EXPECT_FALSE(Map.add(BNudged, U.parse("int")));
  EXPECT_EQ(Map.size(), 2u);
  EXPECT_EQ(Map.droppedDuplicates(), 2u);
}

TEST(QuantizedMapTest, QueryQualityCloseToF32) {
  // kNN answers over quantized stores must stay close to the exact-store
  // answers: the Fig. 6 accuracy-delta guarantee, in miniature.
  MapFixture F(1000, 10, 16, 16);
  ExactIndex Truth(F.Map);
  Rng R(17);
  const int Queries = 40, K = 10;
  for (MarkerStore S : {MarkerStore::F16, MarkerStore::Int8}) {
    TypeMap Q = F.Map;
    Q.quantize(S);
    ExactIndex Approx(Q);
    double Recall = 0;
    for (int T = 0; T != Queries; ++T) {
      std::vector<float> P(16);
      for (float &X : P)
        X = static_cast<float>(R.normal());
      auto Want = Truth.query(P.data(), K);
      auto Got = Approx.query(P.data(), K);
      std::set<int> WantSet;
      for (auto [I, D] : Want)
        WantSet.insert(I);
      int Hits = 0;
      for (auto [I, D] : Got)
        Hits += WantSet.count(I);
      Recall += static_cast<double>(Hits) / K;
    }
    Recall /= Queries;
    EXPECT_GE(Recall, S == MarkerStore::F16 ? 0.97 : 0.85)
        << markerStoreName(S) << " neighbour recall degraded too far";
  }
}

//===----------------------------------------------------------------------===//
// Coreset subsampling
//===----------------------------------------------------------------------===//

TEST(CoresetTest, BoundRespectedAndEveryTypeKept) {
  MapFixture F(500, 10, 8, 18);
  std::set<TypeRef> AllTypes;
  for (size_t I = 0; I != F.Map.size(); ++I)
    AllTypes.insert(F.Map.type(I));

  size_t NewSize = F.Map.subsampleCoreset(60);
  EXPECT_EQ(NewSize, F.Map.size());
  EXPECT_LE(F.Map.size(), 60u);
  EXPECT_GE(F.Map.size(), AllTypes.size());
  std::set<TypeRef> KeptTypes;
  for (size_t I = 0; I != F.Map.size(); ++I)
    KeptTypes.insert(F.Map.type(I));
  EXPECT_EQ(KeptTypes, AllTypes) << "subsampling lost a type entirely";
}

TEST(CoresetTest, DeterministicAcrossRuns) {
  MapFixture A(300, 8, 8, 19), B(300, 8, 8, 19);
  A.Map.subsampleCoreset(50);
  B.Map.subsampleCoreset(50);
  ASSERT_EQ(A.Map.size(), B.Map.size());
  for (size_t I = 0; I != A.Map.size(); ++I) {
    EXPECT_EQ(A.Map.type(I)->str(), B.Map.type(I)->str());
    for (int D = 0; D != 8; ++D)
      EXPECT_EQ(A.Map.embedding(I)[D], B.Map.embedding(I)[D]);
  }
}

TEST(CoresetTest, NoOpWithinBoundOrUnlimited) {
  MapFixture F(40, 4, 8, 20);
  EXPECT_EQ(F.Map.subsampleCoreset(0), 40u);   // 0 = unlimited
  EXPECT_EQ(F.Map.subsampleCoreset(100), 40u); // already within bound
  EXPECT_EQ(F.Map.size(), 40u);
  // Survivors after a real cut still dedupe correctly on insert.
  F.Map.subsampleCoreset(20);
  std::vector<float> Row(8);
  for (int D = 0; D != 8; ++D)
    Row[static_cast<size_t>(D)] = F.Map.embedding(0)[D];
  EXPECT_FALSE(F.Map.add(Row.data(), F.Map.type(0)));
}

//===----------------------------------------------------------------------===//
// τmap mutation (file tags, tombstones, compaction) — the editor loop
//===----------------------------------------------------------------------===//

namespace {

/// Random tagged markers in per-file blocks (block order makes the
/// compacted layout directly comparable to a fresh build).
struct TaggedMapFixture {
  TypeUniverse U;
  TypeMap Map;
  std::vector<std::string> Files;
  std::vector<std::vector<float>> Points;
  std::vector<TypeRef> MarkTypes;
  std::vector<std::string> Tags; ///< Owning file per marker.

  TaggedMapFixture(int NumFiles, int PerFile, int NumTypes, int D,
                   uint64_t Seed)
      : Map(D) {
    Rng R(Seed);
    for (int F = 0; F != NumFiles; ++F) {
      std::string Tag = strformat("proj/f%02d.py", F);
      Files.push_back(Tag);
      for (int I = 0; I != PerFile; ++I) {
        std::vector<float> P(static_cast<size_t>(D));
        for (float &X : P)
          X = static_cast<float>(R.normal());
        TypeRef T = U.get(
            strformat("T%d", static_cast<int>(R.uniformInt(NumTypes))));
        Map.add(P.data(), T, Tag);
        Points.push_back(std::move(P));
        MarkTypes.push_back(T);
        Tags.push_back(Tag);
      }
    }
  }
};

} // namespace

TEST(TypeMapMutationTest, FileTagsAndRangeBookkeeping) {
  TaggedMapFixture F(4, 10, 5, 8, 21);
  ASSERT_EQ(F.Map.size(), 40u);
  EXPECT_EQ(F.Map.liveSize(), 40u);
  EXPECT_EQ(F.Map.deadMarkers(), 0u);
  EXPECT_EQ(F.Map.tombstoneRatio(), 0.0);

  // Every row knows its owner; per-file ranges are ascending and exact.
  for (size_t I = 0; I != F.Map.size(); ++I)
    EXPECT_EQ(F.Map.fileTag(I), F.Tags[I]) << "row " << I;
  for (const std::string &File : F.Files) {
    std::vector<int> Rows = F.Map.markersForFile(File);
    ASSERT_EQ(Rows.size(), 10u);
    for (size_t I = 1; I != Rows.size(); ++I)
      EXPECT_LT(Rows[I - 1], Rows[I]);
    for (int Row : Rows)
      EXPECT_EQ(F.Map.fileTag(static_cast<size_t>(Row)), File);
  }

  // Untagged adds stay untagged and invisible to file queries.
  TypeUniverse U2;
  TypeMap Plain(2);
  float A[2] = {1, 2};
  Plain.add(A, U2.parse("int"));
  EXPECT_EQ(Plain.fileTag(0), "");
  EXPECT_TRUE(Plain.markersForFile("anything.py").empty());

  // Removal tombstones exactly the file's rows, in place.
  size_t Removed = F.Map.removeMarkersForFile(F.Files[1]);
  EXPECT_EQ(Removed, 10u);
  EXPECT_EQ(F.Map.size(), 40u) << "tombstoning must not move rows";
  EXPECT_EQ(F.Map.liveSize(), 30u);
  EXPECT_EQ(F.Map.deadMarkers(), 10u);
  EXPECT_NEAR(F.Map.tombstoneRatio(), 0.25, 1e-12);
  EXPECT_TRUE(F.Map.markersForFile(F.Files[1]).empty());
  for (size_t I = 0; I != F.Map.size(); ++I)
    EXPECT_EQ(F.Map.isLive(I), F.Tags[I] != F.Files[1]) << "row " << I;
  // Removing again is a no-op.
  EXPECT_EQ(F.Map.removeMarkersForFile(F.Files[1]), 0u);
}

TEST(TypeMapMutationTest, RemoveReAddResurrectsBitIdentically) {
  TaggedMapFixture F(3, 12, 4, 8, 22);
  // Snapshot the full marker layout.
  std::vector<TypeRef> TypesBefore;
  std::vector<float> CoordsBefore;
  for (size_t I = 0; I != F.Map.size(); ++I) {
    TypesBefore.push_back(F.Map.type(I));
    for (int D = 0; D != 8; ++D)
      CoordsBefore.push_back(F.Map.embedding(I)[D]);
  }

  ASSERT_EQ(F.Map.removeMarkersForFile(F.Files[1]), 12u);
  // Re-add the identical content: every add resurrects (returns true)
  // instead of appending.
  for (size_t I = 12; I != 24; ++I)
    EXPECT_TRUE(F.Map.add(F.Points[I].data(), F.MarkTypes[I], F.Files[1]))
        << "row " << I << " did not resurrect";

  ASSERT_EQ(F.Map.size(), 36u) << "resurrection must not append";
  EXPECT_EQ(F.Map.liveSize(), 36u);
  EXPECT_EQ(F.Map.deadMarkers(), 0u);
  for (size_t I = 0; I != F.Map.size(); ++I) {
    EXPECT_EQ(F.Map.type(I), TypesBefore[I]) << "row " << I;
    EXPECT_EQ(F.Map.fileTag(I), F.Tags[I]) << "row " << I;
    for (int D = 0; D != 8; ++D)
      EXPECT_EQ(F.Map.embedding(I)[D],
                CoordsBefore[I * 8 + static_cast<size_t>(D)])
          << "row " << I << " dim " << D;
  }
  std::vector<int> Rows = F.Map.markersForFile(F.Files[1]);
  ASSERT_EQ(Rows.size(), 12u);
  EXPECT_EQ(Rows.front(), 12);
  EXPECT_EQ(Rows.back(), 23);

  // A live duplicate still drops (first-writer ownership).
  EXPECT_FALSE(F.Map.add(F.Points[0].data(), F.MarkTypes[0], "elsewhere.py"));
  EXPECT_EQ(F.Map.fileTag(0), F.Files[0]);
}

TEST(TypeMapMutationTest, TombstoneThenCompactEqualsFreshBuild) {
  TaggedMapFixture F(4, 15, 6, 8, 23);
  ASSERT_EQ(F.Map.removeMarkersForFile(F.Files[2]), 15u);
  EXPECT_TRUE(F.Map.compact());
  EXPECT_FALSE(F.Map.compact()) << "compact without tombstones must no-op";
  EXPECT_EQ(F.Map.deadMarkers(), 0u);

  // Fresh build over the surviving files only, same order.
  TypeMap Fresh(8);
  for (size_t I = 0; I != F.Points.size(); ++I)
    if (F.Tags[I] != F.Files[2])
      Fresh.add(F.Points[I].data(), F.MarkTypes[I], F.Tags[I]);

  ASSERT_EQ(F.Map.size(), Fresh.size());
  for (size_t I = 0; I != Fresh.size(); ++I) {
    EXPECT_EQ(F.Map.type(I), Fresh.type(I)) << "row " << I;
    EXPECT_EQ(F.Map.fileTag(I), Fresh.fileTag(I)) << "row " << I;
    for (int D = 0; D != 8; ++D)
      EXPECT_EQ(F.Map.embedding(I)[D], Fresh.embedding(I)[D])
          << "row " << I << " dim " << D;
  }
  // Per-file bookkeeping matches the fresh build's.
  for (const std::string &File : F.Files)
    EXPECT_EQ(F.Map.markersForFile(File), Fresh.markersForFile(File)) << File;
  // Dedup state after compaction matches too: an existing row still drops.
  EXPECT_FALSE(F.Map.add(F.Points[0].data(), F.MarkTypes[0], F.Files[0]));

  // Identical maps build identical forests: every query agrees bit-wise.
  AnnoyIndex IdxA(F.Map, 8, 16, 42), IdxB(Fresh, 8, 16, 42);
  for (size_t Q = 0; Q != 20; ++Q) {
    auto NA = IdxA.query(F.Points[Q].data(), 10);
    auto NB = IdxB.query(F.Points[Q].data(), 10);
    ASSERT_EQ(NA.size(), NB.size());
    for (size_t I = 0; I != NA.size(); ++I) {
      EXPECT_EQ(NA[I].first, NB[I].first);
      EXPECT_EQ(NA[I].second, NB[I].second);
    }
  }
}

TEST(TypeMapMutationTest, CompactWorksOnQuantizedStores) {
  // The LSP mutates *loaded* artifacts, which may be f16/int8: compaction
  // must preserve the stored (encoded) bytes of the survivors.
  for (MarkerStore S : {MarkerStore::F16, MarkerStore::Int8}) {
    TaggedMapFixture F(3, 8, 4, 8, 24);
    TypeMap Q = F.Map;
    Q.quantize(S);
    // Re-tag rows (quantize keeps tags; this asserts it).
    for (size_t I = 0; I != Q.size(); ++I)
      EXPECT_EQ(Q.fileTag(I), F.Tags[I]);

    std::vector<float> Before;
    std::vector<TypeRef> TypesBefore;
    for (size_t I = 0; I != Q.size(); ++I)
      if (F.Tags[I] != F.Files[0]) {
        TypesBefore.push_back(Q.type(I));
        for (int D = 0; D != 8; ++D)
          Before.push_back(Q.coord(I, D));
      }

    ASSERT_EQ(Q.removeMarkersForFile(F.Files[0]), 8u);
    ASSERT_TRUE(Q.compact());
    ASSERT_EQ(Q.size(), 16u);
    EXPECT_EQ(Q.store(), S);
    size_t Pos = 0;
    for (size_t I = 0; I != Q.size(); ++I) {
      EXPECT_EQ(Q.type(I), TypesBefore[I]) << markerStoreName(S);
      for (int D = 0; D != 8; ++D)
        EXPECT_EQ(Q.coord(I, D), Before[Pos++])
            << markerStoreName(S) << " row " << I << " dim " << D;
    }
  }
}

TEST(TypeMapMutationTest, DeadRowsSkippedInQueries) {
  TaggedMapFixture F(4, 25, 6, 8, 25);
  ExactIndex Exact(F.Map);
  AnnoyIndex Annoy(F.Map, 8, 16, 42);

  // Self-queries resolve to the marker itself while it is live.
  auto Self = Exact.query(F.Points[30].data(), 1);
  ASSERT_EQ(Self.size(), 1u);
  ASSERT_EQ(Self[0].first, 30);
  std::string Victim = F.Tags[30];

  ASSERT_GT(F.Map.removeMarkersForFile(Victim), 0u);
  // Neither index returns a tombstoned row — including through indexes
  // built before the removal.
  for (size_t Q = 0; Q < F.Points.size(); Q += 9) {
    for (auto [I, D] : Exact.query(F.Points[Q].data(), 10)) {
      EXPECT_TRUE(F.Map.isLive(static_cast<size_t>(I)));
      EXPECT_NE(F.Map.fileTag(static_cast<size_t>(I)), Victim);
    }
    for (auto [I, D] : Annoy.query(F.Points[Q].data(), 10)) {
      EXPECT_TRUE(F.Map.isLive(static_cast<size_t>(I)));
      EXPECT_NE(F.Map.fileTag(static_cast<size_t>(I)), Victim);
    }
  }
  // The dead self-marker's slot is answered by some other live row.
  auto After = Exact.query(F.Points[30].data(), 1);
  ASSERT_EQ(After.size(), 1u);
  EXPECT_NE(After[0].first, 30);
}

TEST(TypeMapMutationTest, TagsSurviveCoresetEviction) {
  // Per-file bookkeeping must stay exact through subsampleCoreset's row
  // remapping (serving artifacts are subsampled before the LSP mutates
  // them).
  TaggedMapFixture F(2, 100, 6, 8, 26);
  F.Map.subsampleCoreset(40);
  ASSERT_LE(F.Map.size(), 40u);

  for (const std::string &File : F.Files) {
    std::vector<int> Rows = F.Map.markersForFile(File);
    std::vector<int> Expect;
    for (size_t I = 0; I != F.Map.size(); ++I)
      if (F.Map.fileTag(I) == File)
        Expect.push_back(static_cast<int>(I));
    EXPECT_EQ(Rows, Expect) << File;
  }
  // Removal after eviction retires exactly the surviving tagged rows.
  size_t TaggedA = F.Map.markersForFile(F.Files[0]).size();
  EXPECT_EQ(F.Map.removeMarkersForFile(F.Files[0]), TaggedA);
  EXPECT_EQ(F.Map.liveSize(), F.Map.size() - TaggedA);
}

//===----------------------------------------------------------------------===//
// Blocked exact top-k: bit-identical to the legacy full-sort scan
//===----------------------------------------------------------------------===//

TEST(ExactIndexTest, BlockedScanMatchesLegacyBitForBit) {
  // The blocked engine replaces materialize + partial_sort with a tiled
  // scan and a bounded heap; (distance, index) is a total order, so the
  // selected set — and its order — must be the legacy result exactly,
  // on every marker store and at any thread count.
  MapFixture F(1500, 12, 16, 31);
  Rng R(32);
  const int NumQ = 40, D = 16;
  std::vector<float> Qs;
  for (int Q = 0; Q != NumQ; ++Q) {
    if (Q < 10) { // self-queries exercise exact-zero distances
      Qs.insert(Qs.end(), F.Points[static_cast<size_t>(Q)].begin(),
                F.Points[static_cast<size_t>(Q)].end());
      continue;
    }
    for (int I = 0; I != D; ++I)
      Qs.push_back(static_cast<float>(R.normal()));
  }

  for (MarkerStore S :
       {MarkerStore::F32, MarkerStore::F16, MarkerStore::Int8}) {
    TypeMap Map = F.Map;
    if (S != MarkerStore::F32)
      Map.quantize(S);
    ExactIndex Idx(Map);
    for (int K : {1, 10, 64, 2000}) { // 2000 > N: clamped, full sort
      for (int Q = 0; Q != NumQ; ++Q) {
        auto Blocked = Idx.query(Qs.data() + Q * D, K);
        auto Legacy = Idx.queryLegacy(Qs.data() + Q * D, K);
        ASSERT_EQ(Blocked, Legacy)
            << markerStoreName(S) << " query " << Q << " K=" << K;
      }
      for (int Threads : {1, 4}) {
        setGlobalNumThreads(Threads);
        auto Batch = Idx.queryBatch(Qs.data(), NumQ, K);
        setGlobalNumThreads(0);
        ASSERT_EQ(Batch.size(), static_cast<size_t>(NumQ));
        for (int Q = 0; Q != NumQ; ++Q)
          ASSERT_EQ(Batch[static_cast<size_t>(Q)],
                    Idx.queryLegacy(Qs.data() + Q * D, K))
              << markerStoreName(S) << " batch query " << Q << " K=" << K
              << " threads=" << Threads;
      }
    }
  }
}

TEST(ExactIndexTest, BlockedScanHandlesDegenerateK) {
  MapFixture F(50, 5, 8, 34);
  ExactIndex Idx(F.Map);
  EXPECT_TRUE(Idx.query(F.Points[0].data(), 0).empty());
  auto Batch = Idx.queryBatch(F.Points[0].data(), 1, 0);
  ASSERT_EQ(Batch.size(), 1u);
  EXPECT_TRUE(Batch[0].empty());
}

//===----------------------------------------------------------------------===//
// HNSW graph index (deterministic build, budgeted query)
//===----------------------------------------------------------------------===//

TEST(HnswIndexTest, EmptyMapYieldsNothing) {
  TypeUniverse U;
  TypeMap Map(4);
  HnswIndex H(Map);
  std::vector<float> Q(4, 0.f);
  EXPECT_TRUE(H.query(Q.data(), 5).empty());
}

TEST(HnswIndexTest, HighRecallVsExactAndAtLeastAnnoy) {
  // The acceptance guardrail: at the default build parameters and a
  // bounded per-query budget, recall@10 against the exact scan must
  // clear 0.95 — and not trail the Annoy forest's at its defaults.
  MapFixture F(2000, 20, 16, 4);
  ExactIndex Exact(F.Map);
  AnnoyIndex Annoy(F.Map);
  HnswIndex Hnsw(F.Map);
  Rng R(5);
  double AnnoyRecall = 0, HnswRecall = 0;
  const int Queries = 50, K = 10;
  for (int Q = 0; Q != Queries; ++Q) {
    std::vector<float> P(16);
    for (float &X : P)
      X = static_cast<float>(R.normal());
    auto Truth = Exact.query(P.data(), K);
    std::set<int> TruthSet;
    for (auto [I, D] : Truth)
      TruthSet.insert(I);
    int AnnoyHits = 0, HnswHits = 0;
    for (auto [I, D] : Annoy.query(P.data(), K))
      AnnoyHits += TruthSet.count(I);
    for (auto [I, D] : Hnsw.query(P.data(), K, /*EfSearch=*/128))
      HnswHits += TruthSet.count(I);
    AnnoyRecall += static_cast<double>(AnnoyHits) / K;
    HnswRecall += static_cast<double>(HnswHits) / K;
  }
  AnnoyRecall /= Queries;
  HnswRecall /= Queries;
  EXPECT_GE(HnswRecall, 0.95) << "HNSW recall@10 below the guardrail";
  EXPECT_GE(HnswRecall, AnnoyRecall)
      << "HNSW must not trail the Annoy forest at default parameters";
}

TEST(HnswIndexTest, ReturnedDistancesAreTrueL1) {
  MapFixture F(300, 5, 8, 6);
  HnswIndex H(F.Map);
  auto N = H.query(F.Points[7].data(), 5);
  ASSERT_FALSE(N.empty());
  for (auto [Idx, Dist] : N) {
    float True = 0;
    for (int D = 0; D != 8; ++D)
      True += std::fabs(F.Points[7][static_cast<size_t>(D)] -
                        F.Map.embedding(static_cast<size_t>(Idx))[D]);
    EXPECT_NEAR(Dist, True, 1e-4f);
  }
}

TEST(HnswIndexTest, BuildIsDeterministicAcrossThreadCounts) {
  // The graph is a function of (Map, Seed) alone: insertion order is
  // sequential and only candidate distance evaluation fans out, so any
  // thread count builds byte-identical adjacency — asserted through
  // query identity, the observable that matters.
  MapFixture F(900, 10, 8, 35);
  setGlobalNumThreads(1);
  HnswIndex Serial(F.Map, 16, 128, 42);
  setGlobalNumThreads(4);
  HnswIndex Parallel(F.Map, 16, 128, 42);
  setGlobalNumThreads(0);
  for (size_t Q = 0; Q != 30; ++Q) {
    auto NA = Serial.query(F.Points[Q].data(), 10);
    auto NB = Parallel.query(F.Points[Q].data(), 10);
    ASSERT_EQ(NA, NB) << "query " << Q;
  }
}

TEST(HnswIndexTest, QueryBatchMatchesIndividualQueries) {
  MapFixture F(800, 10, 8, 36);
  HnswIndex H(F.Map, 16, 128, 7);
  std::vector<float> Qs;
  const int NumQ = 30, D = 8;
  for (int Q = 0; Q != NumQ; ++Q)
    Qs.insert(Qs.end(), F.Points[static_cast<size_t>(Q)].begin(),
              F.Points[static_cast<size_t>(Q)].end());
  for (int Threads : {1, 4}) {
    setGlobalNumThreads(Threads);
    auto Batch = H.queryBatch(Qs.data(), NumQ, 5);
    setGlobalNumThreads(0);
    ASSERT_EQ(Batch.size(), static_cast<size_t>(NumQ));
    for (int Q = 0; Q != NumQ; ++Q)
      ASSERT_EQ(Batch[static_cast<size_t>(Q)], H.query(Qs.data() + Q * D, 5))
          << "query " << Q << " threads=" << Threads;
  }
}

TEST(HnswIndexTest, EfSearchTradesRecallMonotonically) {
  // The per-request budget is a real knob: a clamped-to-K beam may miss,
  // a generous one must not do worse. (Weak monotonicity only — equal
  // recalls are fine on easy data.)
  MapFixture F(1500, 12, 16, 37);
  ExactIndex Exact(F.Map);
  HnswIndex H(F.Map);
  Rng R(38);
  const int Queries = 30, K = 10;
  double RecallAt[2] = {0, 0}; // EfSearch = K (floor) vs 256
  for (int Q = 0; Q != Queries; ++Q) {
    std::vector<float> P(16);
    for (float &X : P)
      X = static_cast<float>(R.normal());
    std::set<int> TruthSet;
    for (auto [I, D] : Exact.query(P.data(), K))
      TruthSet.insert(I);
    int E = 0;
    for (int Ef : {K, 256}) {
      int Hits = 0;
      for (auto [I, D] : H.query(P.data(), K, Ef))
        Hits += TruthSet.count(I);
      RecallAt[E++] += static_cast<double>(Hits) / K;
    }
  }
  EXPECT_GE(RecallAt[1], RecallAt[0]);
  EXPECT_GE(RecallAt[1] / Queries, 0.95);
}

TEST(HnswIndexTest, DeadRowsAreSkipped) {
  TaggedMapFixture F(4, 25, 6, 8, 27);
  HnswIndex H(F.Map, 16, 128, 42);
  std::string Victim = F.Tags[30];
  ASSERT_GT(F.Map.removeMarkersForFile(Victim), 0u);
  // An index built before the removal routes through dead rows but never
  // surfaces one.
  for (size_t Q = 0; Q < F.Points.size(); Q += 9) {
    auto N = H.query(F.Points[Q].data(), 10);
    ASSERT_FALSE(N.empty());
    for (auto [I, D] : N) {
      EXPECT_TRUE(F.Map.isLive(static_cast<size_t>(I)));
      EXPECT_NE(F.Map.fileTag(static_cast<size_t>(I)), Victim);
    }
  }
}

TEST(HnswIndexTest, SnapshotRoundTripIsQueryIdentical) {
  MapFixture F(600, 8, 8, 33);
  HnswIndex Built(F.Map, 16, 128, 42);
  ArchiveWriter W(3);
  W.beginChunk("hnsw");
  Built.save(W);
  W.endChunk();
  ArchiveReader R;
  std::string Err;
  ASSERT_TRUE(R.openBytes(W.bytes(), &Err)) << Err;
  ArchiveCursor C = R.chunk("hnsw", &Err);
  std::unique_ptr<HnswIndex> Loaded = HnswIndex::load(C, F.Map, &Err);
  ASSERT_NE(Loaded, nullptr) << Err;
  ASSERT_TRUE(C.atEnd()) << "trailing bytes in the hnsw snapshot";
  EXPECT_EQ(Loaded->indexedMarkers(), Built.indexedMarkers());
  EXPECT_EQ(Loaded->m(), Built.m());
  EXPECT_EQ(Loaded->efConstruction(), Built.efConstruction());
  for (size_t Q = 0; Q != 25; ++Q)
    for (int Ef : {-1, 32, 200})
      ASSERT_EQ(Loaded->query(F.Points[Q].data(), 10, Ef),
                Built.query(F.Points[Q].data(), 10, Ef))
          << "query " << Q << " ef " << Ef;
}
